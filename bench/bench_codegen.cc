// Micro-benchmark: AOT native kernels (tier 2) vs bytecode VM vs tree-walking
// interpreter on real kernel execution.
//
// Measures wall-clock time of a conv2d + fused relu epilogue and a vectorized
// dense kernel on all three tiers, single-threaded, plus the native module
// cache's cold-compile vs warm-hit cost. Emits machine-readable JSON lines via
// PrintBenchJson into BENCH_vm.json (`native_*` rows); the smoke gate picks up
// the `*speedup*` fields automatically, enforcing that the native tier is never
// slower than the VM it sits above.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/codegen/native.h"
#include "src/interp/interp.h"
#include "src/lower/lower.h"
#include "src/support/random.h"
#include "src/topi/nn.h"
#include "src/topi/schedules.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

struct HostBuf {
  std::vector<char> bytes;
  DataType dtype;
  int64_t elems = 0;
  BufferBinding Bind() { return BufferBinding{bytes.data(), dtype, elems}; }
};

HostBuf RandomBuf(int64_t elems, DataType dtype, uint64_t seed) {
  HostBuf b;
  b.dtype = dtype;
  b.elems = elems;
  b.bytes.assign(static_cast<size_t>(elems * InterpElementBytes(dtype)), 0);
  Rng rng(seed);
  float* p = reinterpret_cast<float*>(b.bytes.data());
  for (int64_t i = 0; i < elems; ++i) {
    p[i] = static_cast<float>(rng.UniformReal() * 2.0 - 1.0);
  }
  return b;
}

int64_t NumElems(const Tensor& t) {
  int64_t n = 1;
  for (const Expr& e : t.shape()) {
    n *= get_const_int(e);
  }
  return n;
}

struct BuiltKernel {
  LoweredFunc func;
  std::vector<HostBuf> bufs;
  std::vector<BufferBinding> Bindings() {
    std::vector<BufferBinding> bind;
    for (HostBuf& b : bufs) {
      bind.push_back(b.Bind());
    }
    return bind;
  }
};

BuiltKernel BuildConvRelu() {
  bool smoke = bench::BenchSmokeMode();
  topi::OpWorkload wl;
  wl.kind = "conv2d";
  wl.n = 1;
  wl.ic = smoke ? 8 : 16;
  wl.h = wl.w = smoke ? 14 : 28;
  wl.oc = smoke ? 8 : 32;
  wl.k = 3;
  wl.stride = 1;
  wl.pad = 1;
  Tensor data = placeholder(
      {make_int(wl.n), make_int(wl.ic), make_int(wl.h), make_int(wl.w)},
      DataType::Float32(), "data");
  Tensor kern = placeholder(
      {make_int(wl.oc), make_int(wl.ic), make_int(wl.k), make_int(wl.k)},
      DataType::Float32(), "kern");
  Tensor conv = topi::Conv2dNCHW(data, kern, wl.stride, wl.pad);
  Tensor out = topi::Relu(conv);
  Target cpu = Target::ArmA53();
  topi::Config config = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  config["parallel"] = 0;
  Schedule s = topi::ScheduleFusedGroup(cpu, {out}, conv, config, &wl);
  BuiltKernel k;
  k.func = Lower(s, {data, kern, out}, "native_conv_relu");
  k.bufs = {RandomBuf(NumElems(data), DataType::Float32(), 1),
            RandomBuf(NumElems(kern), DataType::Float32(), 2),
            RandomBuf(NumElems(out), DataType::Float32(), 3)};
  return k;
}

BuiltKernel BuildDense() {
  bool smoke = bench::BenchSmokeMode();
  topi::OpWorkload wl;
  wl.kind = "dense";
  wl.n = smoke ? 4 : 16;
  wl.k = smoke ? 64 : 256;
  wl.oc = smoke ? 64 : 256;
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  Target cpu = Target::ArmA53();
  topi::Config config = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  config["parallel"] = 0;
  config["vectorize"] = 1;
  Schedule s = topi::ApplyOpSchedule(wl, cpu, built, config);
  BuiltKernel k;
  k.func = Lower(s, built.Args(), "native_dense");
  for (size_t i = 0; i < built.Args().size(); ++i) {
    k.bufs.push_back(RandomBuf(NumElems(built.Args()[i]), DataType::Float32(), 10 + i));
  }
  return k;
}

// Times one workload on all three tiers. Native compilation happens before the
// timed region (the module cache makes it a once-per-content cost in serving,
// not a per-run one; the cache row below measures it separately).
void BenchThreeTiers(const std::string& name, BuiltKernel k, int repeats) {
  std::vector<BufferBinding> bind = k.Bindings();
  std::shared_ptr<const vm::Program> prog = vm::CompileToProgram(k.func);
  codegen::NativeKernel native =
      codegen::CompileNativeKernel(k.func, LoopSpecializeOptions{});
  if (prog == nullptr || !native) {
    std::printf("%s: VM or native compile failed, skipping\n", name.c_str());
    return;
  }
  vm::ExecOptions serial;
  serial.num_threads = 1;
  double interp_ms = bench::MeasureMs([&] { RunLoweredInterp(k.func, bind); }, repeats);
  double vm_ms = bench::MeasureMs([&] { vm::Run(*prog, bind, serial); }, repeats);
  double native_ms =
      bench::MeasureMs([&] { codegen::RunNativeKernel(native, bind); }, repeats);
  bench::PrintBenchJson("native_" + name,
                        {{"interp_ms", interp_ms},
                         {"vm_ms", vm_ms},
                         {"native_ms", native_ms},
                         {"native_speedup_vs_vm", vm_ms / native_ms},
                         {"native_speedup_vs_interp", interp_ms / native_ms}});
}

// Cold compile (emit + system compiler + dlopen) vs warm in-process cache hit for
// the same function: the ratio is the cost the content-addressed cache removes
// from every run after the first.
void BenchCompileCache() {
  BuiltKernel k = BuildDense();
  // A fresh cache dir forces a real cold compile: the in-process registry alone
  // is not enough, since the disk cache (and dlopen's path dedup) would satisfy
  // the "cold" request with the .so the three-tier sweep above already built.
  char dir_template[] = "/tmp/tvmcpp_bench_codegen_XXXXXX";
  const char* fresh_dir = mkdtemp(dir_template);
  const char* saved = std::getenv("TVMCPP_NATIVE_CACHE");
  std::string saved_value = saved == nullptr ? "" : saved;
  if (fresh_dir != nullptr) {
    setenv("TVMCPP_NATIVE_CACHE", fresh_dir, 1);
  }
  codegen::ClearNativeModuleRegistryForTesting();
  bench::WallTimer cold;
  codegen::NativeKernel first =
      codegen::CompileNativeKernel(k.func, LoopSpecializeOptions{});
  double cold_ms = cold.Ms();
  if (!first) {
    std::printf("native_compile_cache: compile failed, skipping\n");
    return;
  }
  bench::WallTimer warm;
  const int hits = 50;
  for (int i = 0; i < hits; ++i) {
    codegen::CompileNativeKernel(k.func, LoopSpecializeOptions{});
  }
  double warm_ms = warm.Ms() / hits;
  if (saved == nullptr) {
    unsetenv("TVMCPP_NATIVE_CACHE");
  } else {
    setenv("TVMCPP_NATIVE_CACHE", saved_value.c_str(), 1);
  }
  if (fresh_dir != nullptr) {
    std::system(("rm -rf " + std::string(fresh_dir)).c_str());
  }
  bench::PrintBenchJson("native_compile_cache",
                        {{"cold_compile_ms", cold_ms},
                         {"warm_hit_ms", warm_ms},
                         {"cache_hit_speedup", cold_ms / warm_ms}});
}

}  // namespace
}  // namespace tvmcpp

int main() {
  using namespace tvmcpp;
  bench::OpenDefaultBenchJsonSink(TVMCPP_SOURCE_DIR "/BENCH_vm.json");
  std::printf("AOT native kernels vs bytecode VM vs interpreter (wall clock)\n\n");
  // TVMCPP_BENCH_SMOKE=1 (the CI sanity gate) shrinks workloads and repeats so the
  // sweep finishes in seconds; trajectory runs use the full sizes.
  const int repeats = bench::BenchSmokeMode() ? 3 : 10;
  BenchThreeTiers("conv2d_relu", BuildConvRelu(), repeats);
  BenchThreeTiers("dense", BuildDense(), repeats);
  BenchCompileCache();
  return 0;
}
