// Ablation: cost-model design choices of Section 5.2 — rank vs regression objective,
// and measurement batch size — measured as best config found at a fixed trial budget.
#include <chrono>

#include "bench/common.h"

using namespace tvmcpp;
using namespace tvmcpp::autotune;

int main() {
  std::printf("Ablation: ML cost model design choices (C7 conv2d, Titan X model)\n\n");
  topi::OpWorkload wl = frontend::ResnetConvWorkloads()[6];
  Target t = Target::TitanX();

  TextTable table({"objective", "batch", "trials", "best found (ms)", "tune time (s)"});
  for (GbtObjective obj : {GbtObjective::kRank, GbtObjective::kRegression}) {
    for (int batch : {8, 16, 32}) {
      TuningTask task(wl, t, 55);
      TuneOptions opt;
      opt.num_trials = 160;
      opt.batch_size = batch;
      opt.objective = obj;
      opt.seed = 12;
      auto start = std::chrono::steady_clock::now();
      TuneResult r = Tune(&task, TunerKind::kMlBased, opt);
      double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      table.AddRow({obj == GbtObjective::kRank ? "rank (paper default)" : "regression",
                    std::to_string(batch), std::to_string(opt.num_trials),
                    TextTable::Num(task.TrueCost(r.best_config) * 1e3),
                    TextTable::Num(wall, 2)});
    }
  }
  table.Print();
  std::printf("\n(The paper chooses the rank objective: the explorer only needs relative"
              " order, and gradient boosting with rank loss trains fast.)\n");
  return 0;
}
