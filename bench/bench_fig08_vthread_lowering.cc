// Figure 8: virtual-thread lowering — a threaded program becomes one instruction stream
// with explicit dependence-token synchronization that the DAE hardware interprets.
// This bench shows the transformation and the resulting stream composition.
#include <cstdio>

#include "src/ir/printer.h"
#include "src/lower/lower.h"
#include "src/runtime/target.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"
#include "src/vdla/vdla.h"

using namespace tvmcpp;

int main() {
  std::printf("Figure 8: virtual thread lowering to a single synchronized stream\n\n");
  // A 2-vthread accumulate over on-chip buffers, like the figure's example.
  const int n = 16, steps = 8;
  Tensor A = placeholder({make_int(steps), make_int(2 * n)}, DataType::Float32(), "A");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(steps)), "k");
  Tensor C = compute({make_int(2 * n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({rk->var, i[0]}), {rk});
                     },
                     "C");
  Schedule s = create_schedule({C});
  Tensor CL = s->cache_write(C, "vdla.acc_buffer");
  Stage sc = (*s)[C];
  IterVar vt, xi;
  sc->split(sc->leaf_iter_vars[0], n, &vt, &xi);
  sc->bind(vt, thread_axis("vthread"));
  (*s)[CL]->compute_at(sc, xi);
  Tensor AL = s->cache_read(A, "vdla.inp_buffer", {CL.op()});
  (*s)[AL]->compute_at((*s)[CL], (*s)[CL]->leaf_iter_vars[1]);

  LoweredFunc f = Lower(s, {A, C}, "vthread_demo");
  std::printf("-- high-level virtual-thread program --\n%s\n", ToString(f.body).c_str());

  Stmt lowered = InjectVirtualThreads(f.body);
  std::printf("-- after vthread injection (single stream) --\n%s\n",
              ToString(lowered).c_str());

  VdlaProgram prog = BuildVdlaProgram(f, Target::Vdla());
  int pushes = 0, pops = 0, loads = 0, computes = 0;
  for (const VdlaInsn& i : prog) {
    pushes += i.op == VdlaInsn::Op::kPushDep;
    pops += i.op == VdlaInsn::Op::kPopDep;
    loads += i.op == VdlaInsn::Op::kDmaLoad;
    computes += i.op == VdlaInsn::Op::kGemm || i.op == VdlaInsn::Op::kAlu ||
                i.op == VdlaInsn::Op::kFill;
  }
  std::printf("final instruction stream: %zu instructions\n", prog.size());
  std::printf("  dma loads: %d, compute ops: %d, push_dep: %d, pop_dep: %d\n", loads,
              computes, pushes, pops);
  std::printf("  (every pop pairs with an earlier push: %s)\n",
              pushes == pops ? "yes" : "NO - BUG");
  return pushes == pops ? 0 : 1;
}
