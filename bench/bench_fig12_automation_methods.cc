// Figure 12 + Table 1: comparison of automation methods on a ResNet-18 conv2d operator
// (C7) on the Titan X model: ML-based model vs blackbox genetic algorithm vs random
// search, with cuDNN as the baseline to beat.
// Paper result: the ML-based optimizer finds better configs much faster and crosses the
// cuDNN line within a few hundred trials.
#include "bench/common.h"

using namespace tvmcpp;
using namespace tvmcpp::autotune;

int main() {
  std::printf("Figure 12: automation methods on C7 conv2d (28x28, 128->256, 3x3 s2)\n\n");
  topi::OpWorkload wl = frontend::ResnetConvWorkloads()[6];  // C7
  Target t = Target::TitanX();
  double cudnn = baselines::OperatorSeconds(baselines::Library::kCudnn, wl, t);

  TuneOptions opt;
  opt.num_trials = 400;
  opt.batch_size = 16;
  opt.seed = 5;

  struct Row {
    std::string name;
    TunerKind kind;
    TuneResult result;
  };
  std::vector<Row> rows = {{"TVM: ML-based model", TunerKind::kMlBased, {}},
                           {"TVM: blackbox genetic", TunerKind::kGenetic, {}},
                           {"TVM: random search", TunerKind::kRandom, {}}};
  for (Row& r : rows) {
    TuningTask task(wl, t, 77);
    r.result = Tune(&task, r.kind, opt);
  }

  std::printf("schedule space: %lld configs; cuDNN baseline: %.3f ms\n",
              static_cast<long long>(TuningTask(wl, t).size()), cudnn * 1e3);
  std::printf("speedup relative to cuDNN (higher is better), by number of trials:\n\n");
  TextTable table({"trials", rows[0].name, rows[1].name, rows[2].name});
  for (int checkpoint : {25, 50, 100, 200, 300, 400}) {
    std::vector<std::string> row{std::to_string(checkpoint)};
    for (const Row& r : rows) {
      size_t i = std::min<size_t>(static_cast<size_t>(checkpoint), r.result.history.size());
      double best = i > 0 ? r.result.history[i - 1].best_seconds : 1.0;
      row.push_back(TextTable::Num(cudnn / best, 2) + "x");
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf("\nTable 1: comparison of automation methods\n");
  TextTable t1({"method", "category data cost", "model bias", "need hardware info",
                "learn from history", "best found (ms)"});
  t1.AddRow({"blackbox auto-tuning (random)", "high", "none", "no", "no",
             TextTable::Num(rows[2].result.best_seconds * 1e3)});
  t1.AddRow({"blackbox genetic algorithm", "high", "none", "no", "no",
             TextTable::Num(rows[1].result.best_seconds * 1e3)});
  t1.AddRow({"predefined cost model", "none", "high", "yes", "no", "(n/a: see sim/)"});
  t1.AddRow({"ML-based cost model (TVM)", "low", "low", "no", "yes",
             TextTable::Num(rows[0].result.best_seconds * 1e3)});
  t1.Print();
  return 0;
}
