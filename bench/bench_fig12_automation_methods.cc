// Figure 12 + Table 1: comparison of automation methods — ML-based cost model vs
// blackbox genetic algorithm vs random search — now on *real* measurement: every
// trial lowers the config, compiles it to bytecode, and times the vm::Program
// wall-clock on this host's CPU, exactly the loop the paper ran on device fleets.
// The baseline to beat is the untuned default schedule (what compilation picks on
// a tuning-cache miss), measured the same way.
// Paper result: the ML-guided optimizer reaches good configs in far fewer trials
// than blackbox methods. Numbers here are host-dependent wall-clock, so this bench
// reports to stdout only (no BENCH_*.json trajectory rows).
#include <algorithm>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/runtime/threadpool.h"

using namespace tvmcpp;
using namespace tvmcpp::autotune;

int main() {
  const bool smoke = bench::BenchSmokeMode();
  // Small enough that a few hundred real trials finish in minutes; the smoke
  // variant shrinks the workload and budget to CI scale.
  topi::OpWorkload wl = smoke ? topi::OpWorkload{"conv2d", 1, 8, 8, 8, 16, 3, 1, 1}
                              : topi::OpWorkload{"conv2d", 1, 14, 14, 16, 32, 3, 1, 1};
  Target t = Target::ArmA53();
  ThreadPool workers(smoke ? 2 : 4);

  TuneOptions opt;
  opt.num_trials = smoke ? 16 : 96;
  opt.batch_size = smoke ? 8 : 16;
  opt.seed = 5;
  opt.workers = &workers;

  std::printf("Figure 12: automation methods on conv2d %dx%d, %d->%d, 3x3 s%d (%s)\n\n",
              wl.h, wl.w, wl.ic, wl.oc, wl.stride,
              smoke ? "smoke budget" : "real measurement");

  struct Row {
    std::string name;
    TunerKind kind;
    TuneResult result;
  };
  std::vector<Row> rows = {{"TVM: ML-based model", TunerKind::kMlBased, {}},
                           {"TVM: blackbox genetic", TunerKind::kGenetic, {}},
                           {"TVM: random search", TunerKind::kRandom, {}}};
  double baseline = 0;
  for (Row& r : rows) {
    TuningTask task(wl, t, 77);
    r.result = Tune(&task, r.kind, opt);
    if (baseline == 0) {
      // The untuned default schedule, timed by the same measurer (it is trial 0
      // of every method, so this costs nothing extra).
      baseline = task.Measure(task.space().IndexOf(topi::DefaultConfig(task.space())));
      std::printf("schedule space: %lld configs; untuned default: %.3f ms (%s)\n",
                  static_cast<long long>(task.size()), baseline * 1e3,
                  task.measure_options().use_sim ? "sim model" : "wall-clock");
    }
  }
  std::printf("speedup over the untuned default (higher is better), by trials:\n\n");
  TextTable table({"trials", rows[0].name, rows[1].name, rows[2].name});
  std::vector<int> checkpoints =
      smoke ? std::vector<int>{4, 8, 16} : std::vector<int>{8, 16, 32, 64, 96};
  for (int checkpoint : checkpoints) {
    std::vector<std::string> row{std::to_string(checkpoint)};
    for (const Row& r : rows) {
      size_t i = std::min<size_t>(static_cast<size_t>(checkpoint), r.result.history.size());
      double best = i > 0 ? r.result.history[i - 1].best_seconds : baseline;
      row.push_back(TextTable::Num(baseline / best, 2) + "x");
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf("\nTable 1: comparison of automation methods\n");
  TextTable t1({"method", "category data cost", "model bias", "need hardware info",
                "learn from history", "best found (ms)"});
  t1.AddRow({"blackbox auto-tuning (random)", "high", "none", "no", "no",
             TextTable::Num(rows[2].result.best_seconds * 1e3)});
  t1.AddRow({"blackbox genetic algorithm", "high", "none", "no", "no",
             TextTable::Num(rows[1].result.best_seconds * 1e3)});
  t1.AddRow({"predefined cost model", "none", "high", "yes", "no", "(n/a: see sim/)"});
  t1.AddRow({"ML-based cost model (TVM)", "low", "low", "no", "yes",
             TextTable::Num(rows[0].result.best_seconds * 1e3)});
  t1.Print();
  return 0;
}
