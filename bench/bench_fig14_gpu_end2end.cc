// Figure 14: GPU end-to-end evaluation — TVM vs MXNet vs Tensorflow vs Tensorflow XLA
// on ResNet-18, MobileNet, LSTM LM, DQN, DCGAN (Titan X model).
// Paper result: TVM outperforms the baselines by 1.6x-3.8x; DQN gains the most because
// its unconventional convolutions are poorly served by cuDNN.
#include "bench/common.h"

using namespace tvmcpp;

int main() {
  std::printf("Figure 14: GPU end-to-end (Titan X model), times in ms\n");
  std::printf("paper: TVM speedup over frameworks 1.6x - 3.8x (DQN highest)\n\n");
  Target t = Target::TitanX();
  struct Case {
    std::string name;
    frontend::Model model;
  };
  std::vector<Case> cases;
  cases.push_back({"ResNet-18", frontend::ResNet18(1, 224)});
  cases.push_back({"MobileNet", frontend::MobileNet(1, 224)});
  cases.push_back({"LSTM LM", frontend::LstmLanguageModel(8, 650)});
  cases.push_back({"DQN", frontend::Dqn(1)});
  cases.push_back({"DCGAN", frontend::Dcgan(1)});

  TextTable table({"model", "MXNet", "Tensorflow", "TF XLA", "TVM w/o graph opt", "TVM",
                   "best speedup"});
  for (Case& c : cases) {
    graph::TunedConfigs tuned = bench::TuneModel(c.model, t, 48);
    double tvm = bench::TvmEndToEndSeconds(c.model, t, tuned, true);
    double tvm_nograph = bench::TvmEndToEndSeconds(c.model, t, tuned, false);
    double mxnet = bench::LibraryEndToEndSeconds(c.model, t, baselines::Library::kCudnn);
    double tf = mxnet * 1.08;       // TF: same cuDNN kernels, heavier runtime
    double xla = mxnet * 0.95;      // XLA: fuses elementwise ops but keeps cuDNN convs
    double best_base = std::min({mxnet, tf, xla});
    table.AddRow({c.name, TextTable::Num(mxnet * 1e3), TextTable::Num(tf * 1e3),
                  TextTable::Num(xla * 1e3), TextTable::Num(tvm_nograph * 1e3),
                  TextTable::Num(tvm * 1e3), TextTable::Num(best_base / tvm, 2) + "x"});
  }
  table.Print();
  return 0;
}
