// Figure 18: ultra low-precision (2-bit activation, 1-bit weight) conv2d on ARM vs the
// hand-optimized Caffe2 bit-serial library, single- and multi-threaded TVM.
// Paper result: single-threaded TVM beats the baseline, especially on the 1x1 stride-2
// layers (C5, C8, C11) that the baseline is not optimized for; multi-threading adds more
// (less for the low-intensity 1x1 layers C3, C5).
#include "bench/common.h"
#include "src/lowp/lowp.h"

using namespace tvmcpp;

int main() {
  std::printf("Figure 18: low-precision conv (A=2bit, W=1bit) on ARM, relative speedup vs"
              " single-threaded Caffe2 baseline\n\n");
  Target t = Target::ArmA53();
  TextTable table({"op", "baseline (ms)", "TVM 1-thread (ms)", "TVM 4-thread (ms)",
                   "speedup 1T", "speedup 4T"});
  auto convs = frontend::ResnetConvWorkloads();
  for (size_t i = 1; i < convs.size(); ++i) {  // C2..C12 as in the figure
    topi::OpWorkload wl = convs[i];
    wl.dtype = DataType::Int(2);
    double base = baselines::OperatorSeconds(baselines::Library::kCaffe2LowP, wl, t);
    double tvm1 = lowp::EstimateBitserialSeconds(wl, 2, 1, 1, true);
    double tvm4 = lowp::EstimateBitserialSeconds(wl, 2, 1, 4, true);
    table.AddRow({"C" + std::to_string(i + 1), TextTable::Num(base * 1e3),
                  TextTable::Num(tvm1 * 1e3), TextTable::Num(tvm4 * 1e3),
                  TextTable::Num(base / tvm1, 2) + "x",
                  TextTable::Num(base / tvm4, 2) + "x"});
  }
  table.Print();
  std::printf("\n(1x1 layers C3/C5/C8/C11 show the paper's pattern: large single-thread"
              " wins where the baseline is unoptimized, smaller multi-thread scaling for"
              " the low-intensity ones)\n");
  return 0;
}
