// Serving throughput/latency benchmark: wall-clock req/s and p50/p99 latency of the
// InferenceServer at queue depths 1/4/16 against the serialized baseline (back-to-back
// CompiledGraph::Run on one RunContext — the pre-serving execution mode).
//
// Emits JSON lines via PrintBenchJson to stdout and BENCH_serve.json at the repo root
// (TVMCPP_BENCH_JSON overrides the path). Request-level speedup needs multiple cores;
// on a single-core host the depth-16 speedup degenerates toward 1x (reported as-is).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/serve/serve.h"

namespace tvmcpp {
namespace {

// Conv + relu chain sized so one request is a few milliseconds of kernel work:
// large enough that scheduling overhead is amortized, small enough that the full
// depth sweep stays quick.
graph::Graph MakeModelGraph() {
  graph::Graph g;
  int data = g.AddInput("data", {1, 8, 16, 16});
  int w1 = g.AddConst("w1", {16, 8, 3, 3});
  int w2 = g.AddConst("w2", {16, 16, 3, 3});
  int w3 = g.AddConst("w3", {16, 16, 1, 1});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int r1 = g.AddOp("relu", "relu1", {c1});
  int c2 = g.AddOp("conv2d", "conv2", {r1, w2}, {{"stride", 1}, {"pad", 1}});
  int r2 = g.AddOp("relu", "relu2", {c2});
  g.outputs = {g.AddOp("conv2d", "conv3", {r2, w3}, {{"stride", 1}, {"pad", 0}})};
  return g;
}

std::shared_ptr<graph::CompiledGraph> MakeModel() {
  auto model = std::make_shared<graph::CompiledGraph>(MakeModelGraph(),
                                                      Target::ArmA53(),
                                                      graph::CompileOptions{});
  model->SetParam("w1", NDArray::Random({16, 8, 3, 3}, DataType::Float32(), 1));
  model->SetParam("w2", NDArray::Random({16, 16, 3, 3}, DataType::Float32(), 2));
  model->SetParam("w3", NDArray::Random({16, 16, 1, 1}, DataType::Float32(), 3));
  return model;
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0;
  }
  std::sort(xs.begin(), xs.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[idx];
}

struct RunResult {
  double req_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

// Serialized baseline: the pre-serving mode — one RunContext, back-to-back Run()
// calls, default engine context (global worker pool for kParallel chunks).
RunResult RunSerialBaseline(const std::shared_ptr<graph::CompiledGraph>& model,
                            const std::vector<NDArray>& inputs) {
  graph::RunContext ctx(model);
  std::vector<double> lat_ms;
  bench::WallTimer total;
  for (const NDArray& input : inputs) {
    bench::WallTimer t;
    ctx.SetInput("data", input);
    model->Run(&ctx);
    lat_ms.push_back(t.Ms());
  }
  RunResult r;
  r.req_per_s = static_cast<double>(inputs.size()) / (total.Ms() / 1e3);
  r.p50_ms = Percentile(lat_ms, 0.50);
  r.p99_ms = Percentile(lat_ms, 0.99);
  return r;
}

// Closed-loop client with `depth` outstanding requests: keeps exactly `depth`
// submissions in flight, so queue depth at the server tracks the target depth.
// Per-request latency is the server-side queue wait + kernel time.
RunResult RunServed(serve::InferenceServer* server,
                    const std::shared_ptr<graph::CompiledGraph>& model,
                    const std::vector<NDArray>& inputs, int depth) {
  std::deque<std::future<serve::InferenceResponse>> inflight;
  std::vector<double> lat_ms;
  bench::WallTimer total;
  size_t next = 0;
  while (next < inputs.size() || !inflight.empty()) {
    while (next < inputs.size() && static_cast<int>(inflight.size()) < depth) {
      serve::InferenceRequest req;
      req.inputs["data"] = inputs[next++];
      inflight.push_back(server->Submit(model, std::move(req)));
    }
    serve::InferenceResponse resp = inflight.front().get();
    inflight.pop_front();
    lat_ms.push_back(resp.queue_ms + resp.run_ms);
  }
  RunResult r;
  r.req_per_s = static_cast<double>(inputs.size()) / (total.Ms() / 1e3);
  r.p50_ms = Percentile(lat_ms, 0.50);
  r.p99_ms = Percentile(lat_ms, 0.99);
  return r;
}

}  // namespace
}  // namespace tvmcpp

int main() {
  using namespace tvmcpp;
  const char* sink = std::getenv("TVMCPP_BENCH_JSON");
  bench::OpenBenchJsonSink(sink != nullptr ? sink
                                           : TVMCPP_SOURCE_DIR "/BENCH_serve.json");

  std::shared_ptr<graph::CompiledGraph> model = MakeModel();
  const int kRequests = 48;
  std::vector<NDArray> inputs;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(NDArray::Random({1, 8, 16, 16}, DataType::Float32(),
                                     static_cast<uint64_t>(100 + i)));
  }

  // Warm up compiled programs and page in buffers.
  {
    graph::RunContext warm(model);
    warm.SetInput("data", inputs[0]);
    model->Run(&warm);
  }

  RunResult base = RunSerialBaseline(model, inputs);
  bench::PrintBenchJson("serve_serialized_baseline",
                        {{"requests", kRequests},
                         {"req_per_s", base.req_per_s},
                         {"p50_ms", base.p50_ms},
                         {"p99_ms", base.p99_ms}});

  serve::InferenceServer server{serve::ServerOptions{}};
  for (int depth : {1, 4, 16}) {
    RunResult r = RunServed(&server, model, inputs, depth);
    bench::PrintBenchJson(
        "serve_depth_" + std::to_string(depth),
        {{"requests", kRequests},
         {"workers", server.num_workers()},
         {"depth", depth},
         {"req_per_s", r.req_per_s},
         {"p50_ms", r.p50_ms},
         {"p99_ms", r.p99_ms},
         {"baseline_req_per_s", base.req_per_s},
         {"speedup_vs_serialized", r.req_per_s / base.req_per_s}});
  }
  serve::ServerStats stats = server.stats();
  bench::PrintBenchJson("serve_policy",
                        {{"accepted", static_cast<double>(stats.accepted)},
                         {"chunked_runs", static_cast<double>(stats.chunked_runs)},
                         {"serial_runs", static_cast<double>(stats.serial_runs)}});
  return 0;
}
