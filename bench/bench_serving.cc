// Serving throughput/latency benchmark: wall-clock req/s and p50/p99 latency of the
// InferenceServer at queue depths 1/4/16 against the serialized baseline (back-to-back
// CompiledGraph::Run on one RunContext — the pre-serving execution mode), then a
// batched-vs-unbatched depth sweep on a dispatch-bound model.
//
// Dynamic batching amortizes *per-request dispatch* (pool job, RunContext buffer
// allocation, scheduling policy, kernel launches), so its win shows on models whose
// kernels are small relative to that overhead — the second sweep uses a short
// dense chain (~tens of microseconds of kernel work per request) for exactly the
// regime the paper's batch-size amortization argument targets. On the conv model of
// the first sweep (hundreds of ms per request) batching is wall-clock-neutral on one
// core: the VM executes identical per-row instruction streams plus a per-element
// batch-offset index add (a native backend would hoist it; see ROADMAP loop
// specialization), so those numbers are not repeated here.
//
// A final open-loop sweep (serve_openloop_2x) offers Poisson arrivals at 2x the
// measured closed-loop capacity with a mixed request population — 20% interactive
// (high priority, tight deadline) and 80% batch (low priority, loose deadline) —
// and reports per-class latency percentiles and shed/deadline-miss counts. The
// SLA claim under test: priority scheduling + admission control keep the
// interactive p99 inside its deadline while the overload is absorbed by shedding
// the batch class, instead of every request timing out FIFO-style.
//
// Emits JSON lines via PrintBenchJson to stdout and BENCH_serve.json at the repo root
// (TVMCPP_BENCH_JSON overrides the path). Request-level speedup needs multiple cores;
// on a single-core host the depth-16 speedup degenerates toward 1x (reported as-is).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/serve/serve.h"
#include "src/support/random.h"

namespace tvmcpp {
namespace {

// Conv + relu chain sized so one request is a few milliseconds of kernel work:
// large enough that scheduling overhead is amortized, small enough that the full
// depth sweep stays quick.
graph::Graph MakeModelGraph() {
  graph::Graph g;
  int data = g.AddInput("data", {1, 8, 16, 16});
  int w1 = g.AddConst("w1", {16, 8, 3, 3});
  int w2 = g.AddConst("w2", {16, 16, 3, 3});
  int w3 = g.AddConst("w3", {16, 16, 1, 1});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int r1 = g.AddOp("relu", "relu1", {c1});
  int c2 = g.AddOp("conv2d", "conv2", {r1, w2}, {{"stride", 1}, {"pad", 1}});
  int r2 = g.AddOp("relu", "relu2", {c2});
  g.outputs = {g.AddOp("conv2d", "conv3", {r2, w3}, {{"stride", 1}, {"pad", 0}})};
  return g;
}

std::shared_ptr<graph::CompiledGraph> MakeModel() {
  auto model = std::make_shared<graph::CompiledGraph>(MakeModelGraph(),
                                                      Target::ArmA53(),
                                                      graph::CompileOptions{});
  model->SetParam("w1", NDArray::Random({16, 8, 3, 3}, DataType::Float32(), 1));
  model->SetParam("w2", NDArray::Random({16, 16, 3, 3}, DataType::Float32(), 2));
  model->SetParam("w3", NDArray::Random({16, 16, 1, 1}, DataType::Float32(), 3));
  return model;
}

// Dispatch-bound model for the batching sweep: a short dense+relu chain whose
// per-request kernel work (tens of microseconds) is comparable to the per-request
// dispatch overhead batching amortizes.
std::shared_ptr<graph::CompiledGraph> MakeDispatchBoundModel() {
  graph::Graph g;
  int x = g.AddInput("data", {1, 8});
  for (int l = 0; l < 4; ++l) {
    int w = g.AddConst("w" + std::to_string(l), {8, 8});
    x = g.AddOp("dense", "d" + std::to_string(l), {x, w});
    x = g.AddOp("relu", "r" + std::to_string(l), {x});
  }
  g.outputs = {x};
  auto model = std::make_shared<graph::CompiledGraph>(std::move(g), Target::ArmA53(),
                                                      graph::CompileOptions{});
  for (int l = 0; l < 4; ++l) {
    model->SetParam("w" + std::to_string(l),
                    NDArray::Random({8, 8}, DataType::Float32(),
                                    static_cast<uint64_t>(10 + l)));
  }
  return model;
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0;
  }
  std::sort(xs.begin(), xs.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[idx];
}

struct RunResult {
  double req_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

// Serialized baseline: the pre-serving mode — one RunContext, back-to-back Run()
// calls, default engine context (global worker pool for kParallel chunks).
RunResult RunSerialBaseline(const std::shared_ptr<graph::CompiledGraph>& model,
                            const std::vector<NDArray>& inputs) {
  graph::RunContext ctx(model);
  std::vector<double> lat_ms;
  bench::WallTimer total;
  for (const NDArray& input : inputs) {
    bench::WallTimer t;
    ctx.SetInput("data", input);
    model->Run(&ctx);
    lat_ms.push_back(t.Ms());
  }
  RunResult r;
  r.req_per_s = static_cast<double>(inputs.size()) / (total.Ms() / 1e3);
  r.p50_ms = Percentile(lat_ms, 0.50);
  r.p99_ms = Percentile(lat_ms, 0.99);
  return r;
}

// Closed-loop client with `depth` outstanding requests: keeps exactly `depth`
// submissions in flight, so queue depth at the server tracks the target depth.
// Per-request latency is the server-side queue wait + kernel time.
RunResult RunServed(serve::InferenceServer* server,
                    const std::shared_ptr<graph::CompiledGraph>& model,
                    const std::vector<NDArray>& inputs, int depth) {
  std::deque<std::future<serve::InferenceResponse>> inflight;
  std::vector<double> lat_ms;
  bench::WallTimer total;
  size_t next = 0;
  while (next < inputs.size() || !inflight.empty()) {
    while (next < inputs.size() && static_cast<int>(inflight.size()) < depth) {
      serve::InferenceRequest req;
      req.inputs["data"] = inputs[next++];
      inflight.push_back(server->Submit(model, std::move(req)));
    }
    serve::InferenceResponse resp = inflight.front().get();
    inflight.pop_front();
    lat_ms.push_back(resp.queue_ms + resp.run_ms);
  }
  RunResult r;
  r.req_per_s = static_cast<double>(inputs.size()) / (total.Ms() / 1e3);
  r.p50_ms = Percentile(lat_ms, 0.50);
  r.p99_ms = Percentile(lat_ms, 0.99);
  return r;
}

}  // namespace
}  // namespace tvmcpp

int main() {
  using namespace tvmcpp;
  bench::OpenDefaultBenchJsonSink(TVMCPP_SOURCE_DIR "/BENCH_serve.json");

  std::shared_ptr<graph::CompiledGraph> model = MakeModel();
  const int kRequests = 48;
  std::vector<NDArray> inputs;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(NDArray::Random({1, 8, 16, 16}, DataType::Float32(),
                                     static_cast<uint64_t>(100 + i)));
  }

  // Warm up compiled programs and page in buffers.
  {
    graph::RunContext warm(model);
    warm.SetInput("data", inputs[0]);
    model->Run(&warm);
  }

  RunResult base = RunSerialBaseline(model, inputs);
  bench::PrintBenchJson("serve_serialized_baseline",
                        {{"requests", kRequests},
                         {"req_per_s", base.req_per_s},
                         {"p50_ms", base.p50_ms},
                         {"p99_ms", base.p99_ms}});

  serve::InferenceServer server{serve::ServerOptions{}};
  double capacity_req_per_s = 0;
  for (int depth : {1, 4, 16}) {
    RunResult r = RunServed(&server, model, inputs, depth);
    capacity_req_per_s = std::max(capacity_req_per_s, r.req_per_s);
    bench::PrintBenchJson(
        "serve_depth_" + std::to_string(depth),
        {{"requests", kRequests},
         {"workers", server.num_workers()},
         {"depth", depth},
         {"req_per_s", r.req_per_s},
         {"p50_ms", r.p50_ms},
         {"p99_ms", r.p99_ms},
         {"baseline_req_per_s", base.req_per_s},
         {"speedup_vs_serialized", r.req_per_s / base.req_per_s}});
  }
  serve::ServerStats stats = server.stats();
  bench::PrintBenchJson("serve_policy",
                        {{"accepted", static_cast<double>(stats.accepted)},
                         {"chunked_runs", static_cast<double>(stats.chunked_runs)},
                         {"serial_runs", static_cast<double>(stats.serial_runs)}});

  // Batched-vs-unbatched sweep on the dispatch-bound model: one unbatched and one
  // batching server, same closed-loop client at each depth. batch_timeout_ms is 0 —
  // the scheduler coalesces whatever the queue already holds and never lingers,
  // which is the right policy for closed-loop clients (a linger would idle the
  // server while the client waits on responses).
  std::shared_ptr<graph::CompiledGraph> small = MakeDispatchBoundModel();
  const int kSmallRequests = 4000;
  std::vector<NDArray> small_inputs;
  for (int i = 0; i < kSmallRequests; ++i) {
    small_inputs.push_back(NDArray::Random({1, 8}, DataType::Float32(),
                                           static_cast<uint64_t>(500 + i)));
  }
  serve::ServerOptions unbatched_opts;
  unbatched_opts.max_batch = 1;
  serve::InferenceServer unbatched_server{unbatched_opts};
  serve::ServerOptions batched_opts;
  batched_opts.max_batch = 8;
  batched_opts.batch_timeout_ms = 0;
  serve::InferenceServer batched_server{batched_opts};
  // Warm-up (untimed): compiles the batched model variants so lazy compilation
  // doesn't bill the first timed batches. Snapshot the stats so the policy line
  // below reports the timed sweep only.
  RunServed(&batched_server, small, small_inputs, 16);
  RunServed(&unbatched_server, small, small_inputs, 16);
  serve::ServerStats warm = batched_server.stats();
  for (int depth : {1, 4, 16}) {
    RunResult u = RunServed(&unbatched_server, small, small_inputs, depth);
    RunResult r = RunServed(&batched_server, small, small_inputs, depth);
    bench::PrintBenchJson(
        "serve_batched_depth_" + std::to_string(depth),
        {{"requests", kSmallRequests},
         {"workers", batched_server.num_workers()},
         {"depth", depth},
         {"max_batch", batched_opts.max_batch},
         {"batch_timeout_ms", batched_opts.batch_timeout_ms},
         {"req_per_s", r.req_per_s},
         {"p50_ms", r.p50_ms},
         {"p99_ms", r.p99_ms},
         {"unbatched_req_per_s", u.req_per_s},
         {"unbatched_p50_ms", u.p50_ms},
         {"unbatched_p99_ms", u.p99_ms},
         {"speedup_vs_unbatched", r.req_per_s / u.req_per_s}});
  }
  serve::ServerStats bstats = batched_server.stats();
  double batches = static_cast<double>(bstats.batches - warm.batches);
  double batched_requests =
      static_cast<double>(bstats.batched_requests - warm.batched_requests);
  bench::PrintBenchJson(
      "serve_batched_policy",
      {{"batches", batches},
       {"batched_requests", batched_requests},
       {"mean_batch_size", batches > 0 ? batched_requests / batches : 0.0},
       {"full_batches",
        static_cast<double>(bstats.full_batches - warm.full_batches)},
       {"timeout_batches",
        static_cast<double>(bstats.timeout_batches - warm.timeout_batches)}});

  // Open-loop Poisson overload: offer 2x the measured closed-loop capacity on
  // the conv model, 20% interactive (priority 10, tight deadline) / 80% batch
  // (priority 0, loose deadline). Unlike the closed-loop clients above, arrivals
  // do not wait for completions, so the server must actively shed to keep the
  // interactive class inside its SLA. max_batch=1 keeps the row interpretable:
  // the mechanisms under test are priority pop order, deadline sweep, and
  // admission control, not batch amortization.
  {
    serve::ServerOptions sla_opts;
    sla_opts.max_batch = 1;
    sla_opts.queue_capacity = 256;  // large enough that Submit never blocks
    sla_opts.enable_shedding = 1;
    serve::InferenceServer sla_server{sla_opts};
    // Per-worker service time estimate from measured capacity; deadlines are
    // multiples of it so the row stays meaningful across host speeds.
    double svc_est_ms =
        1e3 * static_cast<double>(sla_server.num_workers()) / capacity_req_per_s;
    const double interactive_deadline_ms = 6.0 * svc_est_ms;
    const double batch_deadline_ms = 12.0 * svc_est_ms;
    const double lambda_per_s = 2.0 * capacity_req_per_s;
    const int kOpen = bench::BenchSmokeMode() ? 60 : 240;
    // Untimed closed-loop warm-up: admission control sheds only once its
    // service-time EWMA is primed.
    RunServed(&sla_server, model, inputs, 4);

    Rng gen(0x0A21);
    std::vector<std::future<serve::InferenceResponse>> inflight;
    inflight.reserve(static_cast<size_t>(kOpen));
    std::vector<bool> is_interactive(static_cast<size_t>(kOpen));
    auto start = std::chrono::steady_clock::now();
    double next_arrival_s = 0;
    for (int i = 0; i < kOpen; ++i) {
      next_arrival_s += -std::log(1.0 - gen.UniformReal()) / lambda_per_s;
      std::this_thread::sleep_until(
          start + std::chrono::duration<double>(next_arrival_s));
      bool interactive = (i % 5) == 0;  // exactly 20%
      is_interactive[static_cast<size_t>(i)] = interactive;
      serve::InferenceRequest req;
      req.inputs["data"] = inputs[static_cast<size_t>(i) % inputs.size()];
      req.priority = interactive ? 10 : 0;
      req.deadline_ms = interactive ? interactive_deadline_ms : batch_deadline_ms;
      inflight.push_back(sla_server.Submit(model, std::move(req)));
    }
    struct ClassAgg {
      std::vector<double> ok_lat_ms;
      double ok = 0, shed = 0, missed = 0, other = 0;
    };
    ClassAgg agg[2];  // [0]=batch, [1]=interactive
    for (int i = 0; i < kOpen; ++i) {
      serve::InferenceResponse resp = inflight[static_cast<size_t>(i)].get();
      ClassAgg& a = agg[is_interactive[static_cast<size_t>(i)] ? 1 : 0];
      switch (resp.status.code) {
        case serve::StatusCode::kOk:
          a.ok += 1;
          a.ok_lat_ms.push_back(resp.queue_ms + resp.run_ms);
          break;
        case serve::StatusCode::kShed:
          a.shed += 1;
          break;
        case serve::StatusCode::kDeadlineExceeded:
          a.missed += 1;
          break;
        default:
          a.other += 1;
          break;
      }
    }
    double interactive_p99 = Percentile(agg[1].ok_lat_ms, 0.99);
    bench::PrintBenchJson(
        "serve_openloop_2x",
        {{"requests", kOpen},
         {"workers", sla_server.num_workers()},
         {"capacity_req_per_s", capacity_req_per_s},
         {"offered_req_per_s", lambda_per_s},
         {"interactive_deadline_ms", interactive_deadline_ms},
         {"interactive_ok", agg[1].ok},
         {"interactive_shed", agg[1].shed},
         {"interactive_deadline_missed", agg[1].missed},
         {"interactive_p50_ms", Percentile(agg[1].ok_lat_ms, 0.50)},
         {"interactive_p99_ms", interactive_p99},
         {"interactive_p99_within_deadline",
          interactive_p99 <= interactive_deadline_ms ? 1.0 : 0.0},
         {"batch_deadline_ms", batch_deadline_ms},
         {"batch_ok", agg[0].ok},
         {"batch_shed", agg[0].shed},
         {"batch_deadline_missed", agg[0].missed},
         {"batch_p50_ms", Percentile(agg[0].ok_lat_ms, 0.50)},
         {"batch_p99_ms", Percentile(agg[0].ok_lat_ms, 0.99)},
         {"other_failures", agg[0].other + agg[1].other}});
  }
  return 0;
}
