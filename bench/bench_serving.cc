// Serving throughput/latency benchmark: wall-clock req/s and p50/p99 latency of the
// InferenceServer at queue depths 1/4/16 against the serialized baseline (back-to-back
// CompiledGraph::Run on one RunContext — the pre-serving execution mode), then a
// batched-vs-unbatched depth sweep on a dispatch-bound model.
//
// Dynamic batching amortizes *per-request dispatch* (pool job, RunContext buffer
// allocation, scheduling policy, kernel launches), so its win shows on models whose
// kernels are small relative to that overhead — the second sweep uses a short
// dense chain (~tens of microseconds of kernel work per request) for exactly the
// regime the paper's batch-size amortization argument targets. On the conv model of
// the first sweep (hundreds of ms per request) batching is wall-clock-neutral on one
// core: the VM executes identical per-row instruction streams plus a per-element
// batch-offset index add (a native backend would hoist it; see ROADMAP loop
// specialization), so those numbers are not repeated here.
//
// Emits JSON lines via PrintBenchJson to stdout and BENCH_serve.json at the repo root
// (TVMCPP_BENCH_JSON overrides the path). Request-level speedup needs multiple cores;
// on a single-core host the depth-16 speedup degenerates toward 1x (reported as-is).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/serve/serve.h"

namespace tvmcpp {
namespace {

// Conv + relu chain sized so one request is a few milliseconds of kernel work:
// large enough that scheduling overhead is amortized, small enough that the full
// depth sweep stays quick.
graph::Graph MakeModelGraph() {
  graph::Graph g;
  int data = g.AddInput("data", {1, 8, 16, 16});
  int w1 = g.AddConst("w1", {16, 8, 3, 3});
  int w2 = g.AddConst("w2", {16, 16, 3, 3});
  int w3 = g.AddConst("w3", {16, 16, 1, 1});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int r1 = g.AddOp("relu", "relu1", {c1});
  int c2 = g.AddOp("conv2d", "conv2", {r1, w2}, {{"stride", 1}, {"pad", 1}});
  int r2 = g.AddOp("relu", "relu2", {c2});
  g.outputs = {g.AddOp("conv2d", "conv3", {r2, w3}, {{"stride", 1}, {"pad", 0}})};
  return g;
}

std::shared_ptr<graph::CompiledGraph> MakeModel() {
  auto model = std::make_shared<graph::CompiledGraph>(MakeModelGraph(),
                                                      Target::ArmA53(),
                                                      graph::CompileOptions{});
  model->SetParam("w1", NDArray::Random({16, 8, 3, 3}, DataType::Float32(), 1));
  model->SetParam("w2", NDArray::Random({16, 16, 3, 3}, DataType::Float32(), 2));
  model->SetParam("w3", NDArray::Random({16, 16, 1, 1}, DataType::Float32(), 3));
  return model;
}

// Dispatch-bound model for the batching sweep: a short dense+relu chain whose
// per-request kernel work (tens of microseconds) is comparable to the per-request
// dispatch overhead batching amortizes.
std::shared_ptr<graph::CompiledGraph> MakeDispatchBoundModel() {
  graph::Graph g;
  int x = g.AddInput("data", {1, 8});
  for (int l = 0; l < 4; ++l) {
    int w = g.AddConst("w" + std::to_string(l), {8, 8});
    x = g.AddOp("dense", "d" + std::to_string(l), {x, w});
    x = g.AddOp("relu", "r" + std::to_string(l), {x});
  }
  g.outputs = {x};
  auto model = std::make_shared<graph::CompiledGraph>(std::move(g), Target::ArmA53(),
                                                      graph::CompileOptions{});
  for (int l = 0; l < 4; ++l) {
    model->SetParam("w" + std::to_string(l),
                    NDArray::Random({8, 8}, DataType::Float32(),
                                    static_cast<uint64_t>(10 + l)));
  }
  return model;
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0;
  }
  std::sort(xs.begin(), xs.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[idx];
}

struct RunResult {
  double req_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

// Serialized baseline: the pre-serving mode — one RunContext, back-to-back Run()
// calls, default engine context (global worker pool for kParallel chunks).
RunResult RunSerialBaseline(const std::shared_ptr<graph::CompiledGraph>& model,
                            const std::vector<NDArray>& inputs) {
  graph::RunContext ctx(model);
  std::vector<double> lat_ms;
  bench::WallTimer total;
  for (const NDArray& input : inputs) {
    bench::WallTimer t;
    ctx.SetInput("data", input);
    model->Run(&ctx);
    lat_ms.push_back(t.Ms());
  }
  RunResult r;
  r.req_per_s = static_cast<double>(inputs.size()) / (total.Ms() / 1e3);
  r.p50_ms = Percentile(lat_ms, 0.50);
  r.p99_ms = Percentile(lat_ms, 0.99);
  return r;
}

// Closed-loop client with `depth` outstanding requests: keeps exactly `depth`
// submissions in flight, so queue depth at the server tracks the target depth.
// Per-request latency is the server-side queue wait + kernel time.
RunResult RunServed(serve::InferenceServer* server,
                    const std::shared_ptr<graph::CompiledGraph>& model,
                    const std::vector<NDArray>& inputs, int depth) {
  std::deque<std::future<serve::InferenceResponse>> inflight;
  std::vector<double> lat_ms;
  bench::WallTimer total;
  size_t next = 0;
  while (next < inputs.size() || !inflight.empty()) {
    while (next < inputs.size() && static_cast<int>(inflight.size()) < depth) {
      serve::InferenceRequest req;
      req.inputs["data"] = inputs[next++];
      inflight.push_back(server->Submit(model, std::move(req)));
    }
    serve::InferenceResponse resp = inflight.front().get();
    inflight.pop_front();
    lat_ms.push_back(resp.queue_ms + resp.run_ms);
  }
  RunResult r;
  r.req_per_s = static_cast<double>(inputs.size()) / (total.Ms() / 1e3);
  r.p50_ms = Percentile(lat_ms, 0.50);
  r.p99_ms = Percentile(lat_ms, 0.99);
  return r;
}

}  // namespace
}  // namespace tvmcpp

int main() {
  using namespace tvmcpp;
  bench::OpenDefaultBenchJsonSink(TVMCPP_SOURCE_DIR "/BENCH_serve.json");

  std::shared_ptr<graph::CompiledGraph> model = MakeModel();
  const int kRequests = 48;
  std::vector<NDArray> inputs;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(NDArray::Random({1, 8, 16, 16}, DataType::Float32(),
                                     static_cast<uint64_t>(100 + i)));
  }

  // Warm up compiled programs and page in buffers.
  {
    graph::RunContext warm(model);
    warm.SetInput("data", inputs[0]);
    model->Run(&warm);
  }

  RunResult base = RunSerialBaseline(model, inputs);
  bench::PrintBenchJson("serve_serialized_baseline",
                        {{"requests", kRequests},
                         {"req_per_s", base.req_per_s},
                         {"p50_ms", base.p50_ms},
                         {"p99_ms", base.p99_ms}});

  serve::InferenceServer server{serve::ServerOptions{}};
  for (int depth : {1, 4, 16}) {
    RunResult r = RunServed(&server, model, inputs, depth);
    bench::PrintBenchJson(
        "serve_depth_" + std::to_string(depth),
        {{"requests", kRequests},
         {"workers", server.num_workers()},
         {"depth", depth},
         {"req_per_s", r.req_per_s},
         {"p50_ms", r.p50_ms},
         {"p99_ms", r.p99_ms},
         {"baseline_req_per_s", base.req_per_s},
         {"speedup_vs_serialized", r.req_per_s / base.req_per_s}});
  }
  serve::ServerStats stats = server.stats();
  bench::PrintBenchJson("serve_policy",
                        {{"accepted", static_cast<double>(stats.accepted)},
                         {"chunked_runs", static_cast<double>(stats.chunked_runs)},
                         {"serial_runs", static_cast<double>(stats.serial_runs)}});

  // Batched-vs-unbatched sweep on the dispatch-bound model: one unbatched and one
  // batching server, same closed-loop client at each depth. batch_timeout_ms is 0 —
  // the scheduler coalesces whatever the queue already holds and never lingers,
  // which is the right policy for closed-loop clients (a linger would idle the
  // server while the client waits on responses).
  std::shared_ptr<graph::CompiledGraph> small = MakeDispatchBoundModel();
  const int kSmallRequests = 4000;
  std::vector<NDArray> small_inputs;
  for (int i = 0; i < kSmallRequests; ++i) {
    small_inputs.push_back(NDArray::Random({1, 8}, DataType::Float32(),
                                           static_cast<uint64_t>(500 + i)));
  }
  serve::ServerOptions unbatched_opts;
  unbatched_opts.max_batch = 1;
  serve::InferenceServer unbatched_server{unbatched_opts};
  serve::ServerOptions batched_opts;
  batched_opts.max_batch = 8;
  batched_opts.batch_timeout_ms = 0;
  serve::InferenceServer batched_server{batched_opts};
  // Warm-up (untimed): compiles the batched model variants so lazy compilation
  // doesn't bill the first timed batches. Snapshot the stats so the policy line
  // below reports the timed sweep only.
  RunServed(&batched_server, small, small_inputs, 16);
  RunServed(&unbatched_server, small, small_inputs, 16);
  serve::ServerStats warm = batched_server.stats();
  for (int depth : {1, 4, 16}) {
    RunResult u = RunServed(&unbatched_server, small, small_inputs, depth);
    RunResult r = RunServed(&batched_server, small, small_inputs, depth);
    bench::PrintBenchJson(
        "serve_batched_depth_" + std::to_string(depth),
        {{"requests", kSmallRequests},
         {"workers", batched_server.num_workers()},
         {"depth", depth},
         {"max_batch", batched_opts.max_batch},
         {"batch_timeout_ms", batched_opts.batch_timeout_ms},
         {"req_per_s", r.req_per_s},
         {"p50_ms", r.p50_ms},
         {"p99_ms", r.p99_ms},
         {"unbatched_req_per_s", u.req_per_s},
         {"unbatched_p50_ms", u.p50_ms},
         {"unbatched_p99_ms", u.p99_ms},
         {"speedup_vs_unbatched", r.req_per_s / u.req_per_s}});
  }
  serve::ServerStats bstats = batched_server.stats();
  double batches = static_cast<double>(bstats.batches - warm.batches);
  double batched_requests =
      static_cast<double>(bstats.batched_requests - warm.batched_requests);
  bench::PrintBenchJson(
      "serve_batched_policy",
      {{"batches", batches},
       {"batched_requests", batched_requests},
       {"mean_batch_size", batches > 0 ? batched_requests / batches : 0.0},
       {"full_batches",
        static_cast<double>(bstats.full_batches - warm.full_batches)},
       {"timeout_batches",
        static_cast<double>(bstats.timeout_batches - warm.timeout_batches)}});
  return 0;
}
