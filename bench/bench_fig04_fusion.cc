// Figure 4: performance of fused vs non-fused operations on the (simulated) Titan X.
// Paper result: fusion yields 1.2x-2.0x speedup by removing intermediate memory traffic.
#include "bench/common.h"

using namespace tvmcpp;

namespace {

// conv+bn+relu on 1x128x28x28 with 1x1x128x256 kernel (the paper's first workload).
frontend::Model ConvBnRelu(int c_in, int c_out, int hw, int k, bool depthwise) {
  frontend::Model m;
  m.input_shape = {1, c_in, hw, hw};
  int data = m.graph.AddInput("data", m.input_shape);
  int w = m.graph.AddConst("w", depthwise ? std::vector<int64_t>{c_in, 1, k, k}
                                          : std::vector<int64_t>{c_out, c_in, k, k});
  int conv = m.graph.AddOp(depthwise ? "depthwise_conv2d" : "conv2d", "conv", {data, w},
                           {{"stride", 1}, {"pad", k / 2}});
  int ch = depthwise ? c_in : c_out;
  int scale = m.graph.AddConst("scale", {ch});
  int shift = m.graph.AddConst("shift", {ch});
  int bn = m.graph.AddOp("batch_norm", "bn", {conv, scale, shift});
  int relu = m.graph.AddOp("relu", "relu", {bn});
  m.graph.outputs = {relu};
  return m;
}

// rnn/lstm cell: dense gates + elementwise epilogue.
frontend::Model RnnCell(int hidden, int gates) {
  frontend::Model m;
  m.input_shape = {1, hidden};
  int x = m.graph.AddInput("data", m.input_shape);
  int w = m.graph.AddConst("w", {gates * hidden, hidden});
  int g = m.graph.AddOp("dense", "gates", {x, w});
  int t = m.graph.AddOp("tanh", "tanh", {g});
  int s = m.graph.AddOp("sigmoid", "sig", {t});
  m.graph.outputs = {s};
  return m;
}

}  // namespace

int main() {
  std::printf("Figure 4: fused vs non-fused operator performance (Titan X model)\n");
  std::printf("paper: relative speedup w/ fusion between ~1.2x and ~2.0x\n\n");
  Target t = Target::TitanX();
  struct Case {
    std::string name;
    frontend::Model model;
  };
  std::vector<Case> cases;
  cases.push_back({"conv+bn+relu 128x28x28 (1x1x256)", ConvBnRelu(128, 256, 28, 1, false)});
  cases.push_back({"dwconv+bn+relu 512x14x14 (3x3)", ConvBnRelu(512, 512, 14, 3, true)});
  cases.push_back({"rnn cell hidden:128", RnnCell(128, 1)});
  cases.push_back({"lstm cell hidden:128", RnnCell(128, 4)});

  TextTable table({"workload", "w/o fusion (ms)", "w/ fusion (ms)", "relative speedup"});
  for (Case& c : cases) {
    graph::TunedConfigs tuned = bench::TuneModel(c.model, t, 48);
    double unfused = bench::TvmEndToEndSeconds(c.model, t, tuned, /*fusion=*/false);
    double fused = bench::TvmEndToEndSeconds(c.model, t, tuned, /*fusion=*/true);
    table.AddRow({c.name, TextTable::Num(unfused * 1e3), TextTable::Num(fused * 1e3),
                  TextTable::Num(unfused / fused, 2) + "x"});
  }
  table.Print();
  return 0;
}
