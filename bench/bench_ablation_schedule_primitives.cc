// Ablation: contribution of individual schedule primitives (Section 4's table in
// Figure 6) — starting from a naive schedule and adding tiling, vectorization/
// parallelism (CPU) or shared-memory cooperation and vthreads (GPU) one at a time.
#include "bench/common.h"
#include "src/sim/machine.h"

using namespace tvmcpp;

int main() {
  std::printf("Ablation: schedule primitives on matmul 1024 (lower = better, ms)\n\n");
  topi::OpWorkload wl;
  wl.kind = "dense";
  wl.n = 1024;
  wl.oc = 1024;
  wl.k = 1024;

  {
    Target t = Target::ArmA53();
    autotune::TuningTask task(wl, t, 3);
    const topi::ConfigSpace& space = task.space();
    auto cost_where = [&](std::function<bool(const topi::Config&)> pred) {
      double best = 1e30;
      for (int64_t i = 0; i < space.size(); ++i) {
        topi::Config c = space.At(i);
        if (pred(c)) {
          best = std::min(best, task.TrueCost(i));
        }
      }
      return best;
    };
    TextTable table({"CPU schedule", "best time (ms)"});
    table.AddRow({"tiling only", TextTable::Num(cost_where([](const topi::Config& c) {
                                   return c.at("vectorize") == 0 && c.at("parallel") == 0;
                                 }) * 1e3)});
    table.AddRow({"+ vectorize", TextTable::Num(cost_where([](const topi::Config& c) {
                                   return c.at("vectorize") == 1 && c.at("parallel") == 0;
                                 }) * 1e3)});
    table.AddRow({"+ parallel", TextTable::Num(cost_where([](const topi::Config& c) {
                                  return c.at("vectorize") == 1 && c.at("parallel") == 1;
                                }) * 1e3)});
    table.Print();
  }
  std::printf("\n");
  {
    Target t = Target::TitanX();
    autotune::TuningTask task(wl, t, 3);
    const topi::ConfigSpace& space = task.space();
    auto cost_where = [&](std::function<bool(const topi::Config&)> pred) {
      double best = 1e30;
      for (int64_t i = 0; i < space.size(); ++i) {
        topi::Config c = space.At(i);
        if (pred(c)) {
          best = std::min(best, task.TrueCost(i));
        }
      }
      return best;
    };
    TextTable table({"GPU schedule", "best time (ms)"});
    table.AddRow({"thread binding only", TextTable::Num(cost_where([](const topi::Config& c) {
                                           return c.at("use_shared") == 0 &&
                                                  c.at("vthread") == 1;
                                         }) * 1e3)});
    table.AddRow({"+ shared memory scope (coop fetch)",
                  TextTable::Num(cost_where([](const topi::Config& c) {
                    return c.at("use_shared") == 1 && c.at("vthread") == 1;
                  }) * 1e3)});
    table.AddRow({"+ virtual threads", TextTable::Num(cost_where([](const topi::Config& c) {
                                         return c.at("use_shared") == 1 &&
                                                c.at("vthread") > 1;
                                       }) * 1e3)});
    table.Print();
  }
  return 0;
}
