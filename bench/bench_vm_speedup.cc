// Micro-benchmark: bytecode VM vs tree-walking interpreter on real kernel execution.
//
// Measures wall-clock time (not the machine model) of a conv2d + fused relu epilogue
// and a dense kernel, single-threaded, then parallel-for scaling of the VM across
// worker counts. Emits machine-readable JSON lines via PrintBenchJson.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/interp/interp.h"
#include "src/lower/lower.h"
#include "src/support/random.h"
#include "src/topi/nn.h"
#include "src/topi/schedules.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

struct HostBuf {
  std::vector<char> bytes;
  DataType dtype;
  int64_t elems = 0;
  BufferBinding Bind() { return BufferBinding{bytes.data(), dtype, elems}; }
};

HostBuf RandomBuf(int64_t elems, DataType dtype, uint64_t seed) {
  HostBuf b;
  b.dtype = dtype;
  b.elems = elems;
  b.bytes.assign(static_cast<size_t>(elems * InterpElementBytes(dtype)), 0);
  Rng rng(seed);
  float* p = reinterpret_cast<float*>(b.bytes.data());
  for (int64_t i = 0; i < elems; ++i) {
    p[i] = static_cast<float>(rng.UniformReal() * 2.0 - 1.0);
  }
  return b;
}

int64_t NumElems(const Tensor& t) {
  int64_t n = 1;
  for (const Expr& e : t.shape()) {
    n *= get_const_int(e);
  }
  return n;
}

struct BuiltKernel {
  LoweredFunc func;
  std::vector<HostBuf> bufs;
  std::vector<BufferBinding> Bindings() {
    std::vector<BufferBinding> bind;
    for (HostBuf& b : bufs) {
      bind.push_back(b.Bind());
    }
    return bind;
  }
};

BuiltKernel BuildConvRelu(bool parallel) {
  bool smoke = bench::BenchSmokeMode();
  topi::OpWorkload wl;
  wl.kind = "conv2d";
  wl.n = 1;
  wl.ic = smoke ? 8 : 16;
  wl.h = wl.w = smoke ? 14 : 28;
  wl.oc = smoke ? 8 : 32;
  wl.k = 3;
  wl.stride = 1;
  wl.pad = 1;
  Tensor data = placeholder(
      {make_int(wl.n), make_int(wl.ic), make_int(wl.h), make_int(wl.w)},
      DataType::Float32(), "data");
  Tensor kern = placeholder(
      {make_int(wl.oc), make_int(wl.ic), make_int(wl.k), make_int(wl.k)},
      DataType::Float32(), "kern");
  Tensor conv = topi::Conv2dNCHW(data, kern, wl.stride, wl.pad);
  Tensor out = topi::Relu(conv);
  Target cpu = Target::ArmA53();
  topi::Config config = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  config["parallel"] = parallel ? 1 : 0;
  Schedule s = topi::ScheduleFusedGroup(cpu, {out}, conv, config, &wl);
  BuiltKernel k;
  k.func = Lower(s, {data, kern, out}, parallel ? "conv_relu_par" : "conv_relu");
  k.bufs = {RandomBuf(NumElems(data), DataType::Float32(), 1),
            RandomBuf(NumElems(kern), DataType::Float32(), 2),
            RandomBuf(NumElems(out), DataType::Float32(), 3)};
  return k;
}

BuiltKernel BuildDense(int64_t vectorize = -1) {
  bool smoke = bench::BenchSmokeMode();
  topi::OpWorkload wl;
  wl.kind = "dense";
  wl.n = smoke ? 4 : 16;
  wl.k = smoke ? 64 : 256;
  wl.oc = smoke ? 64 : 256;
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  Target cpu = Target::ArmA53();
  topi::Config config = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  config["parallel"] = 0;
  if (vectorize >= 0) {
    config["vectorize"] = vectorize;
  }
  Schedule s = topi::ApplyOpSchedule(wl, cpu, built, config);
  BuiltKernel k;
  k.func = Lower(s, built.Args(), "dense");
  for (size_t i = 0; i < built.Args().size(); ++i) {
    k.bufs.push_back(RandomBuf(NumElems(built.Args()[i]), DataType::Float32(), 10 + i));
  }
  return k;
}

// Elementwise chain with an explicitly vectorized (or serial) inner axis, for the
// vector-opcode vs scalar-opcode VM comparison.
BuiltKernel BuildElementwise(bool vectorize) {
  const int n = bench::BenchSmokeMode() ? 1 << 12 : 1 << 16;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(n)}, DataType::Float32(), "B");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       Expr a = A({i[0]});
                       Expr b = B({i[0]});
                       return a * b + max(a, b) * make_float(0.5);
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage st = (*s)[C];
  IterVar o, i;
  st->split(st->leaf_iter_vars[0], 16, &o, &i);
  if (vectorize) {
    st->vectorize(i);
  }
  BuiltKernel k;
  k.func = Lower(s, {A, B, C}, vectorize ? "elementwise_vec" : "elementwise_scalar");
  k.bufs = {RandomBuf(n, DataType::Float32(), 20), RandomBuf(n, DataType::Float32(), 21),
            RandomBuf(n, DataType::Float32(), 22)};
  return k;
}

void BenchKernel(const std::string& name, BuiltKernel k, int repeats) {
  std::vector<BufferBinding> bind = k.Bindings();
  std::shared_ptr<const vm::Program> prog = vm::CompileToProgram(k.func);
  if (prog == nullptr) {
    std::printf("%s: VM compile failed, skipping\n", name.c_str());
    return;
  }
  vm::ExecOptions serial;
  serial.num_threads = 1;
  double interp_ms = bench::MeasureMs([&] { RunLoweredInterp(k.func, bind); }, repeats);
  double vm_ms = bench::MeasureMs([&] { vm::Run(*prog, bind, serial); }, repeats);
  bench::PrintBenchJson("vm_speedup_" + name, {{"interp_ms", interp_ms},
                                               {"vm_ms", vm_ms},
                                               {"speedup", interp_ms / vm_ms}});
}

void BenchParallelScaling(int repeats) {
  BuiltKernel k = BuildConvRelu(/*parallel=*/true);
  std::vector<BufferBinding> bind = k.Bindings();
  std::shared_ptr<const vm::Program> prog = vm::CompileToProgram(k.func);
  if (prog == nullptr || !vm::ProgramHasParallel(*prog)) {
    std::printf("parallel kernel unavailable, skipping scaling bench\n");
    return;
  }
  std::vector<std::pair<std::string, double>> fields;
  double ms1 = 0;
  for (int threads : {1, 2, 4}) {
    vm::ExecOptions opts;
    opts.num_threads = threads;
    double ms = bench::MeasureMs([&] { vm::Run(*prog, bind, opts); }, repeats);
    if (threads == 1) {
      ms1 = ms;
    }
    fields.emplace_back("vm_ms_" + std::to_string(threads) + "t", ms);
  }
  fields.emplace_back("scaling_4t", ms1 / fields.back().second);
  bench::PrintBenchJson("vm_parallel_conv2d_relu", fields);
}

// Vector opcodes vs scalar iteration on the same workload: both configs run on the
// VM; only the vectorize knob differs.
void BenchVectorize(const std::string& name, BuiltKernel scalar, BuiltKernel vec,
                    int repeats) {
  std::shared_ptr<const vm::Program> sprog = vm::CompileToProgram(scalar.func);
  std::shared_ptr<const vm::Program> vprog = vm::CompileToProgram(vec.func);
  if (sprog == nullptr || vprog == nullptr || !vm::ProgramHasVector(*vprog)) {
    std::printf("%s: vectorized VM program unavailable, skipping\n", name.c_str());
    return;
  }
  std::vector<BufferBinding> sbind = scalar.Bindings();
  std::vector<BufferBinding> vbind = vec.Bindings();
  vm::ExecOptions serial;
  serial.num_threads = 1;
  double scalar_ms = bench::MeasureMs([&] { vm::Run(*sprog, sbind, serial); }, repeats);
  double vec_ms = bench::MeasureMs([&] { vm::Run(*vprog, vbind, serial); }, repeats);
  bench::PrintBenchJson("vm_vectorize_" + name,
                        {{"scalar_vm_ms", scalar_ms},
                         {"vector_vm_ms", vec_ms},
                         {"vec_speedup", scalar_ms / vec_ms}});
}

}  // namespace
}  // namespace tvmcpp

int main() {
  using namespace tvmcpp;
  bench::OpenDefaultBenchJsonSink(TVMCPP_SOURCE_DIR "/BENCH_vm.json");
  std::printf("bytecode VM vs tree-walking interpreter (wall clock)\n\n");
  // TVMCPP_BENCH_SMOKE=1 (the CI sanity gate) shrinks workloads and repeats so the
  // sweep finishes in seconds; trajectory runs use the full sizes.
  const int repeats = bench::BenchSmokeMode() ? 2 : 5;
  BenchKernel("conv2d_relu", BuildConvRelu(/*parallel=*/false), repeats);
  BenchKernel("dense", BuildDense(), repeats);
  BenchParallelScaling(repeats);
  std::printf("\nSIMD vector opcodes vs scalar VM iteration\n\n");
  BenchVectorize("elementwise", BuildElementwise(false), BuildElementwise(true),
                 repeats);
  BenchVectorize("dense", BuildDense(/*vectorize=*/0), BuildDense(/*vectorize=*/1),
                 repeats);
  return 0;
}
