// Figure 9: decoupled access-execute pipeline vs a monolithic design.
// Paper result: the DAE pipeline hides most memory latency ("execution savings").
#include "bench/common.h"
#include "src/vdla/vdla.h"

// Reuse the example's schedule builder by inclusion (kept standalone intentionally).
#include <vector>

#include "src/lower/lower.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"

using namespace tvmcpp;

namespace {

LoweredFunc VdlaMatmul(int n, int vthreads) {
  Tensor A = placeholder({make_int(n), make_int(n)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(n), make_int(n)}, DataType::Float32(), "B");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(n)), "rk");
  Tensor C = compute({make_int(n), make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({i[0], rk->var}) * B({rk->var, i[1]}), {rk});
                     },
                     "C");
  const int tile = std::min(n, 128);
  Schedule s = create_schedule({C});
  Tensor CL = s->cache_write(C, "vdla.acc_buffer");
  Stage sc = (*s)[C];
  IterVar yo, xo, yi, xi;
  sc->tile(sc->leaf_iter_vars[0], sc->leaf_iter_vars[1], tile, tile, &yo, &xo, &yi, &xi);
  if (vthreads > 1 && (n / tile) % vthreads == 0) {
    IterVar vt, rest;
    sc->split(yo, (n / tile) / vthreads, &vt, &rest);
    sc->bind(vt, thread_axis("vthread"));
  }
  (*s)[CL]->compute_at(sc, xo);
  Stage scl = (*s)[CL];
  IterVar ci0 = scl->leaf_iter_vars[0], ci1 = scl->leaf_iter_vars[1];
  IterVar ko, ki;
  scl->split(scl->leaf_iter_vars[2], 32, &ko, &ki);
  IterVar c0o, c0i, c1o, c1i, kio, kii;
  scl->split(ci0, 16, &c0o, &c0i);
  scl->split(ci1, 16, &c1o, &c1i);
  scl->split(ki, 16, &kio, &kii);
  scl->reorder({ko, c0o, c1o, kio, c0i, c1i, kii});
  Tensor AL = s->cache_read(A, "vdla.inp_buffer", {CL.op()});
  Tensor BL = s->cache_read(B, "vdla.wgt_buffer", {CL.op()});
  (*s)[AL]->compute_at(scl, ko);
  (*s)[BL]->compute_at(scl, ko);
  Tensor w = placeholder({make_int(16), make_int(16)}, DataType::Float32(), "w");
  Tensor x = placeholder({make_int(16), make_int(16)}, DataType::Float32(), "x");
  IterVar k16 = reduce_axis(Range(make_int(0), make_int(16)), "k");
  Tensor y = compute({make_int(16), make_int(16)},
                     [&](const std::vector<Var>& i) {
                       return sum(w({i[0], k16->var}) * x({k16->var, i[1]}), {k16});
                     },
                     "gemm16");
  scl->tensorize(c0i, decl_tensor_intrin(y, kGemmIntrin, kFillZeroIntrin, kGemmIntrin));
  return Lower(s, {A, B, C}, "vdla_mm");
}

}  // namespace

namespace tvmcpp {
namespace bench {
LoweredFunc BuildVdlaMatmulForBench(int n, int vthreads) { return VdlaMatmul(n, vthreads); }
}  // namespace bench
}  // namespace tvmcpp

int main() {
  std::printf("Figure 9: decoupled access-execute vs monolithic pipeline (VDLA)\n");
  std::printf("paper: DAE + fine-grained tokens hides most memory access latency\n\n");
  Target t = Target::Vdla();
  TextTable table({"matmul size", "monolithic (cycles)", "DAE pipeline (cycles)",
                   "execution savings", "compute util (mono -> DAE)"});
  for (int n : {256, 512}) {
    LoweredFunc f = VdlaMatmul(n, 2);
    VdlaProgram prog = BuildVdlaProgram(f, t);
    VdlaRunStats mono = SimulateVdla(prog, t, /*pipelined=*/false);
    VdlaRunStats dae = SimulateVdla(prog, t, /*pipelined=*/true);
    table.AddRow({std::to_string(n), TextTable::Num(mono.cycles, 0),
                  TextTable::Num(dae.cycles, 0),
                  TextTable::Num(100 * (1 - dae.cycles / mono.cycles), 1) + "%",
                  TextTable::Num(100 * mono.ComputeUtilization(), 1) + "% -> " +
                      TextTable::Num(100 * dae.ComputeUtilization(), 1) + "%"});
  }
  table.Print();
  return 0;
}
