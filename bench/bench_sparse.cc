// Sparse vs dense SpMM on real VM execution (wall clock, not the machine model).
//
// Sweeps pruning levels 50/80/90/95/99% on one dense-layer shape: the dense
// kernel multiplies by the zeros, the sparse kernel (CSR, ELL-bounded te
// compute) skips them, and the row-blocked hand-lowered kernel additionally
// nnz-balances its kParallel blocks. Every row reports both absolute times and
// the sparse/dense ratio.
//
// Field naming is deliberate: "sparse_speedup_vs_dense" — dense time over the
// row-blocked CSR kernel, the dedicated SpMM workload kernel — appears only at
// >= 90% sparsity, where skipping zeros must genuinely win; those fields are
// gated >= 1.0x by tools/bench_smoke.sh. Below 90% the same number rides under
// "sparse_vs_dense_ratio", which the gate ignores. The fusable te ELL kernel is
// reported as "ell_vs_dense_ratio" at every level, never gated: its per-step
// guard + indptr reloads cost several dense steps each, so it only breaks even
// around 90% and wins clearly above — exactly the trade the row-block kernel
// exists to avoid.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/interp/interp.h"
#include "src/lower/lower.h"
#include "src/runtime/csr.h"
#include "src/runtime/target.h"
#include "src/support/random.h"
#include "src/topi/schedules.h"
#include "src/topi/sparse.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

struct HostBuf {
  std::vector<char> bytes;
  DataType dtype;
  int64_t elems = 0;
  BufferBinding Bind() { return BufferBinding{bytes.data(), dtype, elems}; }
};

HostBuf RandomBuf(int64_t elems, uint64_t seed) {
  HostBuf b;
  b.dtype = DataType::Float32();
  b.elems = elems;
  b.bytes.assign(static_cast<size_t>(elems) * sizeof(float), 0);
  Rng rng(seed);
  float* p = reinterpret_cast<float*>(b.bytes.data());
  for (int64_t i = 0; i < elems; ++i) {
    p[i] = static_cast<float>(rng.UniformReal() * 2.0 - 1.0);
  }
  return b;
}

HostBuf FromNDArray(const NDArray& nd) {
  HostBuf b;
  b.dtype = nd.dtype();
  b.elems = nd.NumElements();
  b.bytes.assign(nd.Data<char>(), nd.Data<char>() + nd.ByteSize());
  return b;
}

HostBuf ZeroBuf(int64_t elems, DataType dtype) {
  HostBuf b;
  b.dtype = dtype;
  b.elems = elems;
  b.bytes.assign(static_cast<size_t>(elems * InterpElementBytes(dtype)), 0);
  return b;
}

// Compiled-to-VM kernel with its measurement buffers.
struct VmKernel {
  std::shared_ptr<const vm::Program> prog;
  std::vector<HostBuf> bufs;
  double MeasureMs(int repeats) {
    std::vector<BufferBinding> bind;
    for (HostBuf& b : bufs) {
      bind.push_back(b.Bind());
    }
    vm::ExecOptions serial;
    serial.num_threads = 1;  // both sides single-threaded: a kernel-vs-kernel race
    return bench::MeasureMs([&] { vm::Run(*prog, bind, serial); }, repeats, 1);
  }
};

VmKernel CompileOp(const topi::OpWorkload& wl, std::vector<HostBuf> bufs) {
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  Target cpu = Target::ArmA53();
  topi::Config config = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  Schedule s = topi::ApplyOpSchedule(wl, cpu, built, config);
  LoweredFunc f = Lower(s, built.Args(), wl.kind + "_bench");
  VmKernel k;
  k.prog = vm::CompileToProgram(f, {});
  CHECK(k.prog != nullptr) << "VM rejected " << wl.kind;
  k.bufs = std::move(bufs);
  return k;
}

void BenchSparsity(double sparsity, int64_t batch, int64_t in_dim, int64_t out_dim,
                   int repeats) {
  runtime::CSRMatrix csr = runtime::RandomCsr(
      out_dim, in_dim, sparsity, DataType::Float32(),
      1234 + static_cast<uint64_t>(sparsity * 100));

  topi::OpWorkload swl;
  swl.kind = "sparse_dense";
  swl.n = batch;
  swl.k = in_dim;
  swl.oc = static_cast<int>(out_dim);
  swl.nnz = csr.nnz;
  swl.max_row_nnz = csr.max_row_nnz;
  std::vector<HostBuf> sparse_bufs;
  sparse_bufs.push_back(RandomBuf(batch * in_dim, 77));
  sparse_bufs.push_back(FromNDArray(csr.data));
  sparse_bufs.push_back(FromNDArray(csr.indices));
  sparse_bufs.push_back(FromNDArray(csr.indptr));
  sparse_bufs.push_back(ZeroBuf(batch * out_dim, DataType::Float32()));
  VmKernel sparse = CompileOp(swl, std::move(sparse_bufs));

  topi::OpWorkload dwl;
  dwl.kind = "dense";
  dwl.n = batch;
  dwl.k = in_dim;
  dwl.oc = static_cast<int>(out_dim);
  std::vector<HostBuf> dense_bufs;
  dense_bufs.push_back(RandomBuf(batch * in_dim, 77));
  dense_bufs.push_back(FromNDArray(csr.ToDense()));  // zeros materialized
  dense_bufs.push_back(ZeroBuf(batch * out_dim, DataType::Float32()));
  VmKernel dense = CompileOp(dwl, std::move(dense_bufs));

  // The nnz-balanced row-block kernel (serial here too; its parallel win is a
  // load-balance property, the serial race shows pure per-nonzero overhead).
  const int kBlocks = 8;
  std::vector<int32_t> starts = csr.NnzBalancedRowBlocks(kBlocks);
  LoweredFunc block_f =
      topi::SpMMCSRRowBlocks(batch, in_dim, out_dim, csr.alloc_len(), kBlocks,
                             DataType::Float32(), "spmm_blocks_bench");
  VmKernel blocks;
  blocks.prog = vm::CompileToProgram(block_f, {});
  CHECK(blocks.prog != nullptr);
  blocks.bufs.push_back(RandomBuf(batch * in_dim, 77));
  blocks.bufs.push_back(FromNDArray(csr.data));
  blocks.bufs.push_back(FromNDArray(csr.indices));
  blocks.bufs.push_back(FromNDArray(csr.indptr));
  HostBuf sb = ZeroBuf(static_cast<int64_t>(starts.size()), DataType::Int32());
  std::memcpy(sb.bytes.data(), starts.data(), starts.size() * sizeof(int32_t));
  blocks.bufs.push_back(std::move(sb));
  blocks.bufs.push_back(ZeroBuf(batch * out_dim, DataType::Float32()));

  double dense_ms = dense.MeasureMs(repeats);
  double ell_ms = sparse.MeasureMs(repeats);
  double blocks_ms = blocks.MeasureMs(repeats);

  int pct = static_cast<int>(sparsity * 100 + 0.5);
  std::printf("%2d%% sparse (nnz %lld, max row %lld): dense %.3f ms  ell %.3f ms"
              "  rowblock %.3f ms  speedup %.2fx\n",
              pct, static_cast<long long>(csr.nnz),
              static_cast<long long>(csr.max_row_nnz), dense_ms, ell_ms,
              blocks_ms, dense_ms / blocks_ms);
  std::vector<std::pair<std::string, double>> fields = {
      {"sparsity", sparsity},
      {"nnz", static_cast<double>(csr.nnz)},
      {"max_row_nnz", static_cast<double>(csr.max_row_nnz)},
      {"dense_vm_ms", dense_ms},
      {"ell_vm_ms", ell_ms},
      {"rowblock_vm_ms", blocks_ms},
  };
  // Gated >= 1.0x only where skipping zeros must win (see file comment).
  if (pct >= 90) {
    fields.emplace_back("sparse_speedup_vs_dense", dense_ms / blocks_ms);
  } else {
    fields.emplace_back("sparse_vs_dense_ratio", dense_ms / blocks_ms);
  }
  fields.emplace_back("ell_vs_dense_ratio", dense_ms / ell_ms);
  bench::PrintBenchJson("sparse_spmm_s" + std::to_string(pct), fields);
}

}  // namespace
}  // namespace tvmcpp

int main() {
  using namespace tvmcpp;
  bench::OpenDefaultBenchJsonSink(TVMCPP_SOURCE_DIR "/BENCH_sparse.json");
  std::printf("CSR sparse_dense vs dense (VM wall clock, single-threaded)\n\n");
  const bool smoke = bench::BenchSmokeMode();
  const int repeats = smoke ? 3 : 10;
  const int64_t batch = smoke ? 2 : 4;
  const int64_t dim = smoke ? 256 : 512;
  for (double sparsity : {0.5, 0.8, 0.9, 0.95, 0.99}) {
    BenchSparsity(sparsity, batch, dim, dim, repeats);
  }
  return 0;
}
