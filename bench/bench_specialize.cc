// Loop-specialization sweep: specialized vs unspecialized VM on the workloads the
// pass pipeline targets (ISSUE 5 / ROADMAP "JIT-style loop specialization").
//
//   * conv2d 3x3 — the small fixed-extent inner reduction (ky/kx extent 3) that full
//     unrolling + constant folding collapses, plus invariant hoisting and strength
//     reduction on the surviving input-channel loop.
//   * scalar dense — invariant row offsets hoisted out of the k loop.
//   * batched dense chain (the bench_serving dispatch-bound model, rebatched) — the
//     per-element batch-offset adds introduced by RebatchGraph hoist to once per
//     row, exercising the CompileOptions::specialize inheritance path.
//
// Both variants run the same bytecode engine; only LoopSpecializeOptions differ
// (Disabled() vs FromEnv()). Rows land in BENCH_vm.json next to the vm_speedup
// trajectory (the upsert-by-name sink keeps one line per bench across re-runs).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/interp/interp.h"
#include "src/lower/lower.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/support/random.h"
#include "src/topi/nn.h"
#include "src/topi/schedules.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

struct HostBuf {
  std::vector<char> bytes;
  DataType dtype;
  int64_t elems = 0;
  BufferBinding Bind() { return BufferBinding{bytes.data(), dtype, elems}; }
};

HostBuf RandomBuf(int64_t elems, DataType dtype, uint64_t seed) {
  HostBuf b;
  b.dtype = dtype;
  b.elems = elems;
  b.bytes.assign(static_cast<size_t>(elems * InterpElementBytes(dtype)), 0);
  Rng rng(seed);
  float* p = reinterpret_cast<float*>(b.bytes.data());
  for (int64_t i = 0; i < elems; ++i) {
    p[i] = static_cast<float>(rng.UniformReal() * 2.0 - 1.0);
  }
  return b;
}

int64_t NumElems(const Tensor& t) {
  int64_t n = 1;
  for (const Expr& e : t.shape()) {
    n *= get_const_int(e);
  }
  return n;
}

struct BuiltKernel {
  LoweredFunc func;
  std::vector<HostBuf> bufs;
  std::vector<BufferBinding> Bindings() {
    std::vector<BufferBinding> bind;
    for (HostBuf& b : bufs) {
      bind.push_back(b.Bind());
    }
    return bind;
  }
};

// conv2d with a 3x3 window: the inner reduction loops (ky, kx, extent 3) sit well
// under the unroll threshold.
BuiltKernel BuildConv3x3() {
  bool smoke = bench::BenchSmokeMode();
  topi::OpWorkload wl;
  wl.kind = "conv2d";
  wl.n = 1;
  wl.ic = smoke ? 8 : 16;
  wl.h = wl.w = smoke ? 14 : 28;
  wl.oc = smoke ? 8 : 32;
  wl.k = 3;
  wl.stride = 1;
  wl.pad = 1;
  Tensor data = placeholder(
      {make_int(wl.n), make_int(wl.ic), make_int(wl.h), make_int(wl.w)},
      DataType::Float32(), "data");
  Tensor kern = placeholder(
      {make_int(wl.oc), make_int(wl.ic), make_int(wl.k), make_int(wl.k)},
      DataType::Float32(), "kern");
  Tensor conv = topi::Conv2dNCHW(data, kern, wl.stride, wl.pad);
  Tensor out = topi::Relu(conv);
  Target cpu = Target::ArmA53();
  topi::Config config = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  config["parallel"] = 0;
  // The real fused-group schedule (tiled output, fused relu epilogue): its small
  // inner tile loops and the 3x3 reduction window are what full unrolling targets.
  Schedule s = topi::ScheduleFusedGroup(cpu, {out}, conv, config, &wl);
  BuiltKernel k;
  k.func = Lower(s, {data, kern, out}, "conv3x3_relu");
  k.bufs = {RandomBuf(NumElems(data), DataType::Float32(), 1),
            RandomBuf(NumElems(kern), DataType::Float32(), 2),
            RandomBuf(NumElems(out), DataType::Float32(), 3)};
  return k;
}

// Scalar dense: no vectorization, so the k loop's invariant row offsets are the
// whole index-arithmetic story.
BuiltKernel BuildScalarDense() {
  bool smoke = bench::BenchSmokeMode();
  topi::OpWorkload wl;
  wl.kind = "dense";
  wl.n = smoke ? 4 : 16;
  wl.k = smoke ? 64 : 256;
  wl.oc = smoke ? 64 : 256;
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  Target cpu = Target::ArmA53();
  topi::Config config = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  config["parallel"] = 0;
  config["vectorize"] = 0;
  Schedule s = topi::ApplyOpSchedule(wl, cpu, built, config);
  BuiltKernel k;
  k.func = Lower(s, built.Args(), "dense_scalar");
  for (size_t i = 0; i < built.Args().size(); ++i) {
    k.bufs.push_back(RandomBuf(NumElems(built.Args()[i]), DataType::Float32(), 10 + i));
  }
  return k;
}

void BenchKernelSpecialize(const std::string& name, BuiltKernel k, int repeats) {
  std::vector<BufferBinding> bind = k.Bindings();
  std::shared_ptr<const vm::Program> base =
      vm::CompileToProgram(k.func, LoopSpecializeOptions::Disabled());
  std::shared_ptr<const vm::Program> spec =
      vm::CompileToProgram(k.func, LoopSpecializeOptions{});
  if (base == nullptr || spec == nullptr) {
    std::printf("%s: VM compile failed, skipping\n", name.c_str());
    return;
  }
  vm::ExecOptions serial;
  serial.num_threads = 1;
  double base_ms = bench::MeasureMs([&] { vm::Run(*base, bind, serial); }, repeats);
  double spec_ms = bench::MeasureMs([&] { vm::Run(*spec, bind, serial); }, repeats);
  vm::ProgramStats bs = vm::GetProgramStats(*base);
  vm::ProgramStats ss = vm::GetProgramStats(*spec);
  bench::PrintBenchJson(
      "specialize_" + name,
      {{"base_vm_ms", base_ms},
       {"spec_vm_ms", spec_ms},
       {"spec_speedup", base_ms / spec_ms},
       {"instr_base", static_cast<double>(bs.num_instructions)},
       {"instr_spec", static_cast<double>(ss.num_instructions)},
       {"unrolled_loops", static_cast<double>(ss.unrolled_loops)},
       {"hoisted_lets", static_cast<double>(ss.hoisted_lets)},
       {"strength_reduced", static_cast<double>(ss.strength_reduced)},
       {"peephole_removed", static_cast<double>(ss.peephole_removed)}});
}

// The bench_serving dispatch-bound dense chain, compiled with and without loop
// specialization and rebatched: batched rows pay the RebatchGraph batch-offset adds
// the hoister removes. Both models share bitwise-identical weights.
std::shared_ptr<graph::CompiledGraph> MakeDenseChain(bool specialize) {
  graph::Graph g;
  int x = g.AddInput("data", {1, 8});
  for (int l = 0; l < 4; ++l) {
    int w = g.AddConst("w" + std::to_string(l), {8, 8});
    x = g.AddOp("dense", "d" + std::to_string(l), {x, w});
    x = g.AddOp("relu", "r" + std::to_string(l), {x});
  }
  g.outputs = {x};
  graph::CompileOptions options;
  options.specialize = specialize ? LoopSpecializeOptions{}
                                  : LoopSpecializeOptions::Disabled();
  auto model = std::make_shared<graph::CompiledGraph>(std::move(g), Target::ArmA53(),
                                                      options);
  for (int l = 0; l < 4; ++l) {
    model->SetParam("w" + std::to_string(l),
                    NDArray::Random({8, 8}, DataType::Float32(),
                                    static_cast<uint64_t>(10 + l)));
  }
  return model;
}

void BenchBatchedDenseChain(int repeats) {
  const int batch = 8;
  // Rebatched() inherits CompileOptions (including `specialize`) from the base
  // model — the plumbing this row exists to exercise.
  std::shared_ptr<graph::CompiledGraph> base = MakeDenseChain(false)->Rebatched(batch);
  std::shared_ptr<graph::CompiledGraph> spec = MakeDenseChain(true)->Rebatched(batch);
  NDArray input = NDArray::Random({batch, 8}, DataType::Float32(), 99);
  const int iters = bench::BenchSmokeMode() ? 200 : 2000;
  auto run_many = [&](const std::shared_ptr<graph::CompiledGraph>& model) {
    graph::RunContext ctx(model);
    ctx.SetInput("data", input);
    vm::ExecOptions serial;
    serial.num_threads = 1;
    for (int i = 0; i < iters; ++i) {
      model->Run(&ctx, serial);
    }
  };
  double base_ms = bench::MeasureMs([&] { run_many(base); }, repeats);
  double spec_ms = bench::MeasureMs([&] { run_many(spec); }, repeats);
  bench::PrintBenchJson("specialize_batched_dense_chain",
                        {{"batch", batch},
                         {"iters", static_cast<double>(iters)},
                         {"base_vm_ms", base_ms},
                         {"spec_vm_ms", spec_ms},
                         {"spec_speedup", base_ms / spec_ms}});
}

}  // namespace
}  // namespace tvmcpp

int main() {
  using namespace tvmcpp;
  bench::OpenDefaultBenchJsonSink(TVMCPP_SOURCE_DIR "/BENCH_vm.json");
  std::printf("loop specialization: specialized vs unspecialized VM (wall clock)\n\n");
  const int repeats = bench::BenchSmokeMode() ? 2 : 5;
  BenchKernelSpecialize("conv2d_3x3", BuildConv3x3(), repeats);
  BenchKernelSpecialize("dense_scalar", BuildScalarDense(), repeats);
  BenchBatchedDenseChain(repeats);
  return 0;
}
