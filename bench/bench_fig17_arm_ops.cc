// Figure 17: per-operator ARM A53 comparison vs Tensorflow Lite for C1-C12 and D1-D9.
// Paper result: TVM generates kernels that outperform the hand-optimized TFLite versions
// for both conv2d and (especially) the newer depthwise conv2d operators.
#include "bench/common.h"

using namespace tvmcpp;

int main() {
  std::printf("Figure 17: per-operator ARM A53 relative speedup vs TFLite\n\n");
  Target t = Target::ArmA53();
  TextTable conv({"op", "TFLite (ms)", "TVM (ms)", "relative speedup"});
  auto convs = frontend::ResnetConvWorkloads();
  for (size_t i = 0; i < convs.size(); ++i) {
    const topi::OpWorkload& wl = convs[i];
    double tfl = baselines::OperatorSeconds(baselines::Library::kTFLite, wl, t);
    double tvm = bench::TuneOp(wl, t, 48, 41).first;
    conv.AddRow({"C" + std::to_string(i + 1), TextTable::Num(tfl * 1e3),
                 TextTable::Num(tvm * 1e3), TextTable::Num(tfl / tvm, 2) + "x"});
  }
  conv.Print();
  std::printf("\n");
  TextTable dw({"op", "TFLite (ms)", "TVM (ms)", "relative speedup"});
  auto dws = frontend::MobilenetDepthwiseWorkloads();
  for (size_t i = 0; i < dws.size(); ++i) {
    const topi::OpWorkload& wl = dws[i];
    double tfl = baselines::OperatorSeconds(baselines::Library::kTFLite, wl, t);
    double tvm = bench::TuneOp(wl, t, 48, 43).first;
    dw.AddRow({"D" + std::to_string(i + 1), TextTable::Num(tfl * 1e3),
               TextTable::Num(tvm * 1e3), TextTable::Num(tfl / tvm, 2) + "x"});
  }
  dw.Print();
  return 0;
}
