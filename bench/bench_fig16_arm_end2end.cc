// Figure 16: ARM Cortex-A53 end-to-end evaluation of TVM vs Tensorflow Lite on
// ResNet-18, MobileNet and DQN.
// Paper result: TVM outperforms TFLite on all three workloads.
#include "bench/common.h"

using namespace tvmcpp;

int main() {
  std::printf("Figure 16: ARM A53 end-to-end (times in ms)\n");
  std::printf("paper: TVM beats TFLite on ResNet-18, MobileNet and DQN\n\n");
  Target t = Target::ArmA53();
  struct Case {
    std::string name;
    frontend::Model model;
  };
  std::vector<Case> cases;
  cases.push_back({"ResNet-18", frontend::ResNet18(1, 224)});
  cases.push_back({"MobileNet", frontend::MobileNet(1, 224)});
  cases.push_back({"DQN", frontend::Dqn(1)});

  TextTable table({"model", "Tensorflow Lite", "TVM w/o graph opt", "TVM", "speedup"});
  for (Case& c : cases) {
    graph::TunedConfigs tuned = bench::TuneModel(c.model, t, 48);
    double tvm = bench::TvmEndToEndSeconds(c.model, t, tuned, true);
    double tvm_nograph = bench::TvmEndToEndSeconds(c.model, t, tuned, false);
    double tflite = bench::LibraryEndToEndSeconds(c.model, t, baselines::Library::kTFLite);
    table.AddRow({c.name, TextTable::Num(tflite * 1e3), TextTable::Num(tvm_nograph * 1e3),
                  TextTable::Num(tvm * 1e3), TextTable::Num(tflite / tvm, 2) + "x"});
  }
  table.Print();
  return 0;
}
