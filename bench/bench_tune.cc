// The tuning loop, end to end on real hardware (this host's CPU): tune a dense and
// a conv2d workload with real wall-clock measurement of compiled vm::Program runs,
// persist the winners in the tuning cache (TVMCPP_TUNE_CACHE), recompile through
// the cache, and report measured untuned-vs-tuned speedups — including a batch-4
// serving variant whose schedule is tuned independently of batch-1 and consumed
// through serve::BatchedModelCache, closing the paper's learn-from-traffic loop.
//
// What gets cached is decided by a final race, not by the explorer's own trial
// measurements: the top few distinct configs from the tuning history run against
// the incumbent (the schedule compilation would pick without the cache) in
// alternating min-of-k rounds, and a finalist is cached only when it wins by a
// clear margin. Racing several finalists counters the winner's curse — the
// argmin of many noisy trial measurements is often a mediocre config with a
// lucky draw, while a truly better config sits a few places down the ranking.
// A noisy host can therefore cost an improvement, but can never persist a
// regression — when the incumbent holds, the cache records it and the row
// reports 1.0x by identity (same schedule; timing one program twice only
// reports noise).
//
// Modes:
//   (default)                 tune, race, write the cache file, report
//   TVMCPP_TUNE_CONSUME=1     skip tuning; load the cache written by a previous
//                             run and measure through it (the CI phase-B half:
//                             the tune_cache_stats row proves cache_hits > 0)
//   TVMCPP_BENCH_SMOKE=1      reduced trial/repeat counts (same workloads, so
//                             cache keys match across smoke phases)
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/autotune/cache.h"
#include "src/runtime/threadpool.h"
#include "src/serve/batch.h"

using namespace tvmcpp;
using namespace tvmcpp::autotune;

namespace {

// A finalist must beat the incumbent by this factor in the race to be cached:
// near-ties are not worth persisting and would flip sign under re-measurement.
// Smoke mode races at a fraction of the full repeat depth, so it cannot resolve
// small differences reliably — it demands a much wider margin, keeping the
// two-phase CI gate honest (a fluke winner cached in phase A would measure as a
// regression in phase B).
constexpr double kWinMargin = 1.05;
constexpr double kSmokeWinMargin = 1.15;

graph::Graph DenseGraph(int n, int k, int oc) {
  graph::Graph g;
  int data = g.AddInput("data", {n, k});
  int w = g.AddConst("w", {oc, k});
  g.outputs = {g.AddOp("dense", "fc", {data, w})};
  return g;
}

graph::Graph ConvGraph(const topi::OpWorkload& wl) {
  graph::Graph g;
  int data = g.AddInput("data", {wl.n, wl.ic, wl.h, wl.w});
  int w = g.AddConst("w", {wl.oc, wl.ic, wl.k, wl.k});
  g.outputs = {g.AddOp("conv2d", "conv", {data, w},
                       {{"stride", wl.stride}, {"pad", wl.pad}})};
  return g;
}

NDArray InputOf(const graph::Graph& g) {
  for (const graph::Node& n : g.nodes()) {
    if (n.op == "input") {
      return NDArray::Random(n.shape, n.dtype, 42);
    }
  }
  LOG(FATAL) << "graph has no input node";
  return NDArray();
}

void BindWeights(graph::CompiledGraph* m) {
  uint64_t seed = 7;
  for (const graph::Node& n : m->graph().nodes()) {
    if (n.op == "const") {
      m->SetParam(n.name, NDArray::Random(n.shape, n.dtype, seed++));
    }
  }
}

// Min-of-`repeats` single-run wall time, after one untimed warmup run.
double BestRunMs(const graph::CompiledGraph& m, graph::RunContext* ctx, int repeats) {
  m.Run(ctx);
  double best = 1e30;
  for (int i = 0; i < repeats; ++i) {
    bench::WallTimer t;
    m.Run(ctx);
    best = std::min(best, t.Ms());
  }
  return best;
}

struct Pair {
  double baseline_ms = 0;
  double candidate_ms = 0;
};

// Times all models on the same input, alternating between them across `rounds`
// so drift (frequency scaling, background load) hits every side equally; each
// side keeps its min across all rounds.
std::vector<double> MeasureMany(
    const std::vector<std::shared_ptr<const graph::CompiledGraph>>& models,
    int repeats, int rounds) {
  NDArray in = InputOf(models[0]->graph());
  std::vector<std::unique_ptr<graph::RunContext>> ctxs;
  for (const auto& m : models) {
    ctxs.push_back(std::make_unique<graph::RunContext>(m));
    ctxs.back()->SetInput("data", in);
  }
  std::vector<double> best(models.size(), 1e30);
  for (int r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < models.size(); ++i) {
      best[i] = std::min(best[i], BestRunMs(*models[i], ctxs[i].get(), repeats));
    }
  }
  return best;
}

Pair MeasurePair(const std::shared_ptr<const graph::CompiledGraph>& baseline,
                 const std::shared_ptr<const graph::CompiledGraph>& candidate,
                 int repeats, int rounds) {
  std::vector<double> ms = MeasureMany({baseline, candidate}, repeats, rounds);
  return Pair{ms[0], ms[1]};
}

bool ConsumeMode() {
  const char* s = std::getenv("TVMCPP_TUNE_CONSUME");
  return s != nullptr && std::string(s) == "1";
}

struct RaceResult {
  double untuned_ms = 0;
  double tuned_ms = 0;
  double speedup = 1.0;
};

// How many of the tuning history's best distinct configs enter the final race.
constexpr int kFinalists = 4;

// Tunes `wl`, races the tuning history's top finalists against `untuned`
// (compiled with the incumbent schedule), and records the race's winner in the
// global cache under the workload's tuning key. The reported numbers are the
// race's.
RaceResult TuneRaceAndCache(const topi::OpWorkload& wl, const graph::Graph& g,
                            const Target& target,
                            const std::shared_ptr<graph::CompiledGraph>& untuned,
                            uint64_t seed, TuneOptions opt, int repeats, int rounds,
                            double win_margin) {
  TuningTask task(wl, target, seed);
  opt.seed = seed;
  TuneResult r = Tune(&task, TunerKind::kMlBased, opt);
  std::printf("%s: %d trials over %lld configs, explorer best %.4g ms (%s)\n",
              task.CacheKey().c_str(), static_cast<int>(r.history.size()),
              static_cast<long long>(task.size()), r.best_seconds * 1e3,
              task.measure_options().use_sim ? "sim model" : "wall-clock");

  const topi::Config incumbent = untuned->chosen_configs().at(wl.Key());

  // Finalists: the best distinct configs by trial time, minus the incumbent.
  std::vector<TrialRecord> ranked = r.history;
  std::sort(ranked.begin(), ranked.end(),
            [](const TrialRecord& a, const TrialRecord& b) {
              return a.seconds < b.seconds;
            });
  std::vector<topi::Config> finalists;
  for (const TrialRecord& t : ranked) {
    if (static_cast<int>(finalists.size()) >= kFinalists) {
      break;
    }
    topi::Config c = task.space().At(t.config_index);
    if (c == incumbent ||
        std::find(finalists.begin(), finalists.end(), c) != finalists.end()) {
      continue;
    }
    finalists.push_back(std::move(c));
  }

  RaceResult out;
  topi::Config winner = incumbent;
  if (!finalists.empty()) {
    std::vector<std::shared_ptr<const graph::CompiledGraph>> models = {untuned};
    for (const topi::Config& c : finalists) {
      graph::TunedConfigs expl;
      expl[wl.Key()] = c;
      graph::CompileOptions copts;
      copts.use_tuning_cache = false;
      copts.tuned = &expl;
      auto m = std::make_shared<graph::CompiledGraph>(g, target, copts);
      BindWeights(m.get());
      models.push_back(std::move(m));
    }
    std::vector<double> ms = MeasureMany(models, repeats, rounds);
    size_t best = 1;
    for (size_t i = 2; i < ms.size(); ++i) {
      if (ms[i] < ms[best]) {
        best = i;
      }
    }
    if (ms[best] * win_margin < ms[0]) {
      winner = finalists[best - 1];
      out.untuned_ms = ms[0];
      out.tuned_ms = ms[best];
      out.speedup = ms[0] / ms[best];
    } else {
      std::printf("  none of %d finalists beat the incumbent by %.0f%% (best"
                  " %.4g vs %.4g ms); caching the incumbent\n",
                  static_cast<int>(finalists.size()), (win_margin - 1) * 100,
                  ms[best], ms[0]);
    }
  }
  if (winner == incumbent) {
    graph::RunContext ctx(untuned);
    ctx.SetInput("data", InputOf(untuned->graph()));
    out.untuned_ms = out.tuned_ms = BestRunMs(*untuned, &ctx, repeats);
    out.speedup = 1.0;
  }
  GlobalTuningCache().Put({task.CacheKey(), winner, out.tuned_ms * 1e-3,
                           static_cast<int>(r.history.size())});
  return out;
}

// Consume mode: compile through the cache and measure tuned-vs-untuned directly.
RaceResult MeasureThroughCache(
    const std::shared_ptr<const graph::CompiledGraph>& untuned,
    const std::shared_ptr<const graph::CompiledGraph>& tuned, int repeats,
    int rounds) {
  RaceResult out;
  if (tuned->chosen_configs() == untuned->chosen_configs()) {
    // Identical schedules: the ratio is 1 by definition.
    graph::RunContext ctx(untuned);
    ctx.SetInput("data", InputOf(untuned->graph()));
    out.untuned_ms = out.tuned_ms = BestRunMs(*untuned, &ctx, repeats);
    out.speedup = 1.0;
    return out;
  }
  Pair p = MeasurePair(untuned, tuned, repeats, rounds);
  if (p.candidate_ms > p.baseline_ms) {
    // The cached config won its tuning-time race; before reporting a regression,
    // re-measure at double depth and keep each side's min.
    Pair q = MeasurePair(untuned, tuned, repeats * 2, rounds);
    p.baseline_ms = std::min(p.baseline_ms, q.baseline_ms);
    p.candidate_ms = std::min(p.candidate_ms, q.candidate_ms);
  }
  out.untuned_ms = p.baseline_ms;
  out.tuned_ms = p.candidate_ms;
  out.speedup = p.baseline_ms / p.candidate_ms;
  return out;
}

}  // namespace

int main() {
  const bool smoke = bench::BenchSmokeMode();
  const bool consume = ConsumeMode();
  const char* cache_path = std::getenv("TVMCPP_TUNE_CACHE");
  bench::OpenDefaultBenchJsonSink(TVMCPP_SOURCE_DIR "/BENCH_tune.json");

  Target target = Target::ArmA53();
  const int trials = smoke ? 24 : 128;
  const int repeats = smoke ? 10 : 30;
  const int rounds = smoke ? 2 : 3;
  const double win_margin = smoke ? kSmokeWinMargin : kWinMargin;
  ThreadPool workers(smoke ? 2 : 4);

  std::printf("Tuning on real measurement (%s mode%s); cache: %s\n\n",
              smoke ? "smoke" : "full", consume ? ", consume-only" : "",
              cache_path != nullptr ? cache_path : "(TVMCPP_TUNE_CACHE unset)");

  TuneOptions opt;
  opt.num_trials = trials;
  opt.batch_size = smoke ? 8 : 16;
  opt.workers = &workers;

  struct RowSpec {
    std::string name;
    topi::OpWorkload wl;
    graph::Graph g;
    uint64_t seed;
  };
  std::vector<RowSpec> rows;
  rows.push_back({"tune_dense", {"dense", 16, 1, 1, 1, 256, 256, 1, 0},
                  DenseGraph(16, 256, 256), 11});
  {
    topi::OpWorkload conv{"conv2d", 1, 28, 28, 16, 32, 3, 1, 1};
    rows.push_back({"tune_conv2d", conv, ConvGraph(conv), 12});
  }

  graph::CompileOptions untuned_opts;
  untuned_opts.use_tuning_cache = false;

  for (const RowSpec& row : rows) {
    auto untuned = std::make_shared<graph::CompiledGraph>(row.g, target, untuned_opts);
    BindWeights(untuned.get());

    RaceResult res;
    double cache_used = 1.0;
    if (consume) {
      auto tuned = std::make_shared<graph::CompiledGraph>(row.g, target,
                                                          graph::CompileOptions{});
      BindWeights(tuned.get());
      cache_used = tuned->num_cache_tuned_kernels() > 0 ? 1.0 : 0.0;
      res = MeasureThroughCache(untuned, tuned, repeats, rounds);
    } else {
      res = TuneRaceAndCache(row.wl, row.g, target, untuned, row.seed, opt, repeats,
                             rounds, win_margin);
    }
    bench::PrintBenchJson(row.name, {{"untuned_ms", res.untuned_ms},
                                     {"tuned_ms", res.tuned_ms},
                                     {"speedup", res.speedup},
                                     {"cache_used", cache_used}});
  }

  // Serving half: tune the batch-4 dense workload under its own key, then let the
  // serving layer's BatchedModelCache pick it up when the variant lazily compiles.
  // The incumbent here is what serving runs without a batch-4 cache entry: the
  // batch-1 schedule the Rebatched() variant inherits.
  {
    constexpr int kFactor = 4;
    const RowSpec& base_row = rows[0];
    topi::OpWorkload batched_wl = base_row.wl;
    batched_wl.n *= kFactor;
    graph::Graph batched_g =
        DenseGraph(batched_wl.n, batched_wl.k, batched_wl.oc);

    auto base_untuned =
        std::make_shared<graph::CompiledGraph>(base_row.g, target, untuned_opts);
    BindWeights(base_untuned.get());
    std::shared_ptr<graph::CompiledGraph> var_untuned =
        base_untuned->Rebatched(kFactor);

    RaceResult res;
    if (!consume) {
      res = TuneRaceAndCache(batched_wl, batched_g, target, var_untuned, 13, opt,
                             repeats, rounds, win_margin);
    }

    // Either way, demonstrate the consume path: a fresh serving cache lazily
    // compiles the batch-4 variant, which must find the batch-4 entry itself.
    auto base_tuned = std::make_shared<graph::CompiledGraph>(
        base_row.g, target, graph::CompileOptions{});
    BindWeights(base_tuned.get());
    serve::BatchedModelCache serving(base_tuned);
    std::shared_ptr<const graph::CompiledGraph> var_tuned = serving.Get(kFactor);
    if (consume) {
      res = MeasureThroughCache(var_untuned, var_tuned, repeats, rounds);
    }
    bench::PrintBenchJson("tune_dense_batch4",
                          {{"untuned_ms", res.untuned_ms},
                           {"tuned_ms", res.tuned_ms},
                           {"speedup", res.speedup},
                           {"tuned_variants",
                            static_cast<double>(serving.num_tuned_compiled())}});
  }

  if (!consume && cache_path != nullptr) {
    if (GlobalTuningCache().Save(cache_path)) {
      std::printf("\nwrote %d entries to %s\n",
                  static_cast<int>(GlobalTuningCache().size()), cache_path);
    }
  }
  bench::PrintBenchJson(
      "tune_cache_stats",
      {{"entries", static_cast<double>(GlobalTuningCache().size())},
       {"cache_hits", static_cast<double>(GlobalTuningCache().hits())},
       {"cache_misses", static_cast<double>(GlobalTuningCache().misses())}});
  return 0;
}
