// Figure 7: matrix multiplication with and without cooperative shared-memory fetching
// vs. cuBLAS on the (simulated) Titan X.
// Paper result: cooperative fetching substantially narrows the gap to cuBLAS; without it
// TVM is several times slower.
#include "bench/common.h"

using namespace tvmcpp;

int main() {
  std::printf("Figure 7: cooperative shared memory fetching on matmul (Titan X model)\n");
  std::printf("paper: TVM w/ coop ~ cuBLAS; TVM w/o coop ~2-3x slower\n\n");
  Target t = Target::TitanX();
  TextTable table({"matrix size", "cuBLAS (ms)", "TVM w/o coop (ms)", "TVM (ms)"});
  for (int n : {1024, 2048}) {
    topi::OpWorkload wl;
    wl.kind = "dense";
    wl.n = n;
    wl.oc = n;
    wl.k = n;
    // TVM: tuned over the full space.
    auto [tvm_s, cfg] = bench::TuneOp(wl, t, 96, 17);
    // w/o coop: best config with use_shared forced off.
    autotune::TuningTask task(wl, t, 18);
    double best_noshare = 1e30;
    const topi::ConfigSpace& space = task.space();
    for (int64_t i = 0; i < space.size(); ++i) {
      topi::Config c = space.At(i);
      if (c["use_shared"] != 0) {
        continue;
      }
      best_noshare = std::min(best_noshare, task.TrueCost(i));
    }
    double cublas = baselines::OperatorSeconds(baselines::Library::kCudnn, wl, t);
    table.AddRow({std::to_string(n), TextTable::Num(cublas * 1e3),
                  TextTable::Num(best_noshare * 1e3), TextTable::Num(tvm_s * 1e3)});
  }
  table.Print();
  return 0;
}
