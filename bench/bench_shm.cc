// Shared-memory transport benchmark: K forked client processes submitting
// through the shm ring (zero-copy descriptors, futex completion) versus the
// same number of in-process closed-loop Submit() threads against the same
// InferenceServer. Reports req/s and p50/p99 per side and their ratio.
//
// The shm side pays descriptor encode/decode, futex wake/wait, and poller
// dispatch per request but moves zero tensor bytes; on a single-core host the
// two sides time-slice one CPU, so the ratio measures per-request transport
// overhead, not parallel speedup. The ratio field is deliberately named
// *_ratio (not *speedup*) so the CI smoke gate does not gate on it.
//
// Children report per-request latencies and their start/stop timestamps over
// pipes; CLOCK_MONOTONIC is process-agnostic, so the parent computes the
// aggregate throughput window as max(end) - min(start).
//
// Emits one JSON line (serve_shm_2proc) to stdout and BENCH_serve.json.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/common.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/serve/serve.h"
#include "src/serve/shm_client.h"
#include "src/serve/shm_server.h"

namespace tvmcpp {
namespace {

constexpr int kClients = 2;

// Same conv chain as tests/test_shm.cc: ~1 ms of kernel work per request, so
// per-request transport overhead is visible but not the whole measurement.
graph::Graph MakeChainGraph() {
  graph::Graph g;
  int data = g.AddInput("data", {1, 4, 8, 8});
  int w1 = g.AddConst("w1", {8, 4, 3, 3});
  int w2 = g.AddConst("w2", {8, 8, 1, 1});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int r1 = g.AddOp("relu", "relu1", {c1});
  g.outputs = {g.AddOp("conv2d", "conv2", {r1, w2}, {{"stride", 1}, {"pad", 0}})};
  return g;
}

std::shared_ptr<graph::CompiledGraph> MakeChainModel() {
  auto model = std::make_shared<graph::CompiledGraph>(MakeChainGraph(), Target::ArmA53(),
                                                      graph::CompileOptions{});
  model->SetParam("w1", NDArray::Random({8, 4, 3, 3}, DataType::Float32(), 11));
  model->SetParam("w2", NDArray::Random({8, 8, 1, 1}, DataType::Float32(), 12));
  return model;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

// Child body: closed-loop shm client. Writes [start_ms, end_ms, lat...] as
// raw doubles to `fd` and exits 0, or exits nonzero on any fault.
int RunShmChild(const std::string& arena_name, int reps, int fd) {
  serve::Status st;
  auto client = serve::ShmClient::Connect(arena_name, &st, /*attach_timeout_ms=*/30000);
  if (client == nullptr) return 2;
  serve::ShmModelMeta mm;
  int64_t deadline = serve::ShmMonotonicMs() + 30000;
  while (!client->GetModelMeta("chain", &mm)) {
    if (serve::ShmMonotonicMs() >= deadline) return 3;
    usleep(2000);
  }
  NDArray in = client->AllocTensor(mm.inputs[0].shape, mm.inputs[0].dtype);
  if (!in.defined()) return 4;
  in.CopyFrom(NDArray::Random(mm.inputs[0].shape, mm.inputs[0].dtype, 77));

  std::vector<double> lat;
  lat.reserve(static_cast<size_t>(reps));
  bench::WallTimer clock;
  double start_ms = serve::ShmMonotonicMs();
  for (int r = 0; r < reps; ++r) {
    std::vector<NDArray> outs;
    clock.Reset();
    serve::Status s = client->Call("chain", {{mm.inputs[0].name, in}}, &outs);
    if (!s.ok()) return 5;
    lat.push_back(clock.Ms());
  }
  double end_ms = serve::ShmMonotonicMs();
  if (client->staged_inputs() != 0) return 6;  // the hot loop must be copy-free

  std::vector<double> msg;
  msg.push_back(start_ms);
  msg.push_back(end_ms);
  msg.insert(msg.end(), lat.begin(), lat.end());
  size_t bytes = msg.size() * sizeof(double);
  const char* p = reinterpret_cast<const char*>(msg.data());
  while (bytes > 0) {
    ssize_t n = write(fd, p, bytes);
    if (n <= 0) return 7;
    p += n;
    bytes -= static_cast<size_t>(n);
  }
  close(fd);
  return 0;
}

bool ReadAll(int fd, std::vector<double>* out, int expect) {
  out->resize(static_cast<size_t>(expect));
  char* p = reinterpret_cast<char*>(out->data());
  size_t bytes = out->size() * sizeof(double);
  while (bytes > 0) {
    ssize_t n = read(fd, p, bytes);
    if (n <= 0) return false;
    p += n;
    bytes -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace
}  // namespace tvmcpp

int main() {
  using namespace tvmcpp;
  bench::OpenDefaultBenchJsonSink(TVMCPP_SOURCE_DIR "/BENCH_serve.json");
  const int reps = bench::BenchSmokeMode() ? 40 : 400;
  const std::string arena_name = "/tvmcpp_bench_" + std::to_string(getpid());

  // Fork the client processes BEFORE the server spawns worker threads (fork
  // with live threads is undefined-behavior territory); children retry-attach
  // until the arena and model appear.
  int pipes[kClients][2];
  std::vector<pid_t> kids;
  for (int c = 0; c < kClients; ++c) {
    if (pipe(pipes[c]) != 0) {
      std::perror("pipe");
      return 1;
    }
    pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      for (int j = 0; j <= c; ++j) close(pipes[j][0]);
      _exit(RunShmChild(arena_name, reps, pipes[c][1]));
    }
    close(pipes[c][1]);
    kids.push_back(pid);
  }

  serve::ServerOptions sopts;
  sopts.num_workers = 2;
  sopts.default_deadline_ms = 0;
  serve::InferenceServer server(sopts);
  serve::ShmTransport::Options topts;
  topts.shm_name = arena_name;
  serve::ShmTransport transport(&server, topts);
  auto model = MakeChainModel();
  transport.RegisterModel("chain", model);

  // --- shm side: drain the children ---
  std::vector<double> shm_lat;
  double shm_start = 0, shm_end = 0;
  bool ok = true;
  for (int c = 0; c < kClients; ++c) {
    std::vector<double> msg;
    if (!ReadAll(pipes[c][0], &msg, reps + 2)) ok = false;
    close(pipes[c][0]);
    if (msg.size() == static_cast<size_t>(reps) + 2) {
      shm_start = (c == 0) ? msg[0] : std::min(shm_start, msg[0]);
      shm_end = std::max(shm_end, msg[1]);
      shm_lat.insert(shm_lat.end(), msg.begin() + 2, msg.end());
    }
  }
  for (pid_t pid : kids) {
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "shm client child failed (exit %d)\n",
                   WIFEXITED(status) ? WEXITSTATUS(status) : -1);
      ok = false;
    }
  }
  if (!ok || shm_end <= shm_start) {
    std::fprintf(stderr, "shm phase failed; no JSON emitted\n");
    return 1;
  }
  double shm_wall_s = (shm_end - shm_start) / 1000.0;
  double shm_req_s = static_cast<double>(shm_lat.size()) / shm_wall_s;

  // --- in-process baseline: same client count, same server, heap tensors ---
  NDArray in = NDArray::Random({1, 4, 8, 8}, DataType::Float32(), 77);
  std::vector<std::vector<double>> lat_per(kClients);
  bench::WallTimer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c]() {
      lat_per[c].reserve(static_cast<size_t>(reps));
      for (int r = 0; r < reps; ++r) {
        serve::InferenceRequest req;
        req.inputs["data"] = in;
        bench::WallTimer t;
        serve::InferenceResponse resp = server.Submit(model, std::move(req)).get();
        if (!resp.status.ok()) return;
        lat_per[c].push_back(t.Ms());
      }
    });
  }
  for (auto& t : threads) t.join();
  double inproc_wall_s = wall.Ms() / 1000.0;
  std::vector<double> inproc_lat;
  for (auto& v : lat_per) inproc_lat.insert(inproc_lat.end(), v.begin(), v.end());
  if (inproc_lat.size() != static_cast<size_t>(kClients) * reps) {
    std::fprintf(stderr, "in-process baseline had failures; no JSON emitted\n");
    return 1;
  }
  double inproc_req_s = static_cast<double>(inproc_lat.size()) / inproc_wall_s;

  serve::ShmTransport::Stats ts = transport.stats();
  bench::PrintBenchJson(
      "serve_shm_2proc",
      {{"clients", kClients},
       {"reps_per_client", reps},
       {"shm_req_s", shm_req_s},
       {"shm_p50_ms", Percentile(shm_lat, 0.50)},
       {"shm_p99_ms", Percentile(shm_lat, 0.99)},
       {"inproc_req_s", inproc_req_s},
       {"inproc_p50_ms", Percentile(inproc_lat, 0.50)},
       {"inproc_p99_ms", Percentile(inproc_lat, 0.99)},
       {"shm_vs_inproc_ratio", shm_req_s / inproc_req_s},
       {"zero_copy_requests", static_cast<double>(ts.zero_copy_requests)},
       {"copied_outputs", static_cast<double>(ts.copied_outputs)}});

  transport.Stop();
  server.Shutdown();
  return 0;
}
