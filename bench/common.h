// Shared helpers for the figure/table reproduction benches.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/autotune/tuner.h"
#include "src/baselines/baselines.h"
#include "src/frontend/models.h"
#include "src/graph/executor.h"
#include "src/support/table.h"

namespace tvmcpp {
namespace bench {

// Monotonic wall-clock timer for real (not modeled) execution measurements.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Average wall-clock milliseconds of `fn` over `repeats` runs after `warmup` runs.
template <typename F>
double MeasureMs(F&& fn, int repeats = 3, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) {
    fn();
  }
  WallTimer timer;
  for (int i = 0; i < repeats; ++i) {
    fn();
  }
  return timer.Ms() / repeats;
}

// Reduced-size bench mode for the CI smoke gate: benches that honor it shrink
// workload sizes and repeat counts so the whole sweep finishes in seconds. The CI
// step only sanity-checks that no speedup line falls below 1.0x; smoke numbers are
// not trajectory data, so OpenDefaultBenchJsonSink refuses to write them to the
// tracked BENCH_*.json (CI points TVMCPP_BENCH_JSON at a scratch file instead).
inline bool BenchSmokeMode() {
  const char* s = std::getenv("TVMCPP_BENCH_SMOKE");
  return s != nullptr && std::string(s) == "1";
}

// Optional file sink for bench JSON lines: when set (e.g. BENCH_vm.json at the repo
// root), every PrintBenchJson line is mirrored there so the perf trajectory is
// tracked across PRs without scraping stdout. Lines are keyed by bench name:
// re-running a bench (or several benches sharing one BENCH_*.json) replaces that
// bench's line in place instead of appending a duplicate, so the file holds exactly
// one current line per benchmark no matter how often CI or a local loop re-runs it.
struct BenchJsonSink {
  std::string path;
  // (bench name, full JSON line) produced by THIS process, insertion-ordered.
  // Each write re-reads the file and lays these over it, so rows of benches not
  // re-run here are preserved and legacy duplicate lines collapse (latest
  // occurrence wins) on first rewrite. The read-merge-rewrite is best-effort, not
  // atomic: run bench binaries sequentially; racing writers can still lose the
  // last update.
  std::vector<std::pair<std::string, std::string>> lines;
};

inline BenchJsonSink*& BenchJsonSinkSlot() {
  static BenchJsonSink* sink = nullptr;
  return sink;
}

// Extracts the "bench" key of an existing JSON line (empty when absent).
inline std::string BenchNameOfLine(const std::string& line) {
  const std::string tag = "\"bench\": \"";
  size_t at = line.find(tag);
  if (at == std::string::npos) {
    return "";
  }
  size_t begin = at + tag.size();
  size_t end = line.find('"', begin);
  return end == std::string::npos ? "" : line.substr(begin, end - begin);
}

// Opens `path` as the JSON sink, loading any existing lines so benches not re-run
// in this process keep their latest results. Loading dedups by bench name (keeping
// the latest occurrence), so files written by older appending code converge to one
// line per benchmark on the first re-run.
// Upserts `line` into `lines` by bench name (unnamed lines always append).
inline void UpsertBenchLine(std::vector<std::pair<std::string, std::string>>* lines,
                            const std::string& line) {
  std::string name = BenchNameOfLine(line);
  if (!name.empty()) {
    for (auto& kv : *lines) {
      if (kv.first == name) {
        kv.second = line;
        return;
      }
    }
  }
  lines->emplace_back(std::move(name), line);
}

// Reads `path`'s JSON lines into `lines`, deduping by bench name (latest wins).
inline void LoadBenchLines(const std::string& path,
                           std::vector<std::pair<std::string, std::string>>* lines) {
  std::FILE* in = std::fopen(path.c_str(), "r");
  if (in == nullptr) {
    return;
  }
  std::string line;
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    if (!line.empty()) {
      UpsertBenchLine(lines, line);
    }
    line.clear();
  }
  if (!line.empty()) {
    UpsertBenchLine(lines, line);
  }
  std::fclose(in);
}

// Opens `path` as the JSON sink. Existing file content is not snapshotted here:
// every write re-reads and merges, so the freshest on-disk rows always win.
inline void OpenBenchJsonSink(const std::string& path) {
  BenchJsonSink*& sink = BenchJsonSinkSlot();
  delete sink;
  sink = new BenchJsonSink;
  sink->path = path;
  // Probe writability now so a bad path warns once up front, not per line.
  if (std::FILE* out = std::fopen(path.c_str(), "a")) {
    std::fclose(out);
  } else {
    std::printf("warning: cannot open bench JSON sink %s\n", path.c_str());
    delete sink;
    sink = nullptr;
  }
}

// Standard sink selection for bench main()s: TVMCPP_BENCH_JSON wins; otherwise the
// tracked default trajectory file — except in smoke mode, where reduced-size rows
// must not overwrite trajectory data, so without an explicit override no sink is
// opened (stdout only).
inline void OpenDefaultBenchJsonSink(const std::string& default_path) {
  if (const char* override_path = std::getenv("TVMCPP_BENCH_JSON")) {
    OpenBenchJsonSink(override_path);
    return;
  }
  if (BenchSmokeMode()) {
    std::printf("smoke mode without TVMCPP_BENCH_JSON: JSON sink disabled\n");
    return;
  }
  OpenBenchJsonSink(default_path);
}

// Prints one machine-readable result line, e.g.
//   {"bench": "vm_speedup_conv2d", "interp_ms": 41.2, "vm_ms": 5.1, "speedup": 8.1}
// to stdout and, when a sink is open, upserts it by bench name into the BENCH_*.json
// trajectory file (rewritten and flushed per line, so partial runs still land).
inline void PrintBenchJson(const std::string& bench,
                           const std::vector<std::pair<std::string, double>>& fields) {
  std::string line = "{\"bench\": \"" + bench + "\"";
  char buf[64];
  for (const auto& kv : fields) {
    std::snprintf(buf, sizeof(buf), "%.6g", kv.second);
    line += ", \"" + kv.first + "\": " + buf;
  }
  line += "}";
  std::printf("%s\n", line.c_str());
  BenchJsonSink* sink = BenchJsonSinkSlot();
  if (sink == nullptr) {
    return;
  }
  UpsertBenchLine(&sink->lines, line);
  // Merge-on-write: re-read the file and lay this process's lines over it, so
  // rows this process never produced survive the rewrite.
  std::vector<std::pair<std::string, std::string>> merged;
  LoadBenchLines(sink->path, &merged);
  for (const auto& kv : sink->lines) {
    UpsertBenchLine(&merged, kv.second);
  }
  if (std::FILE* out = std::fopen(sink->path.c_str(), "w")) {
    for (const auto& kv : merged) {
      std::fprintf(out, "%s\n", kv.second.c_str());
    }
    std::fclose(out);
  }
}

// Tunes a workload with the ML-based optimizer; returns (best seconds, best config).
// Results are cached per (workload, target) within one process.
inline std::pair<double, topi::Config> TuneOp(const topi::OpWorkload& wl,
                                              const Target& target, int trials = 96,
                                              uint64_t seed = 7) {
  static std::unordered_map<std::string, std::pair<double, topi::Config>> cache;
  std::string key = wl.Key() + "@" + target.name;
  auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  autotune::TuningTask task(wl, target, seed);
  autotune::TuneOptions opt;
  opt.num_trials = trials;
  opt.batch_size = 16;
  opt.seed = seed;
  autotune::TuneResult r = autotune::Tune(&task, autotune::TunerKind::kMlBased, opt);
  std::pair<double, topi::Config> out{task.TrueCost(r.best_config),
                                      task.space().At(r.best_config)};
  cache[key] = out;
  return out;
}

// Collects the tuned configs for every master workload of a model.
inline graph::TunedConfigs TuneModel(const frontend::Model& model, const Target& target,
                                     int trials = 64) {
  graph::TunedConfigs tuned;
  graph::GraphExecutor probe(model.graph, target, {});
  for (const topi::OpWorkload& wl : probe.workloads()) {
    if (tuned.count(wl.Key())) {
      continue;
    }
    tuned[wl.Key()] = TuneOp(wl, target, trials).second;
  }
  return tuned;
}

// End-to-end estimated time of a model under TVM (tuned, optionally without fusion).
inline double TvmEndToEndSeconds(const frontend::Model& model, const Target& target,
                                 const graph::TunedConfigs& tuned, bool fusion) {
  graph::CompileOptions opts;
  opts.enable_fusion = fusion;
  opts.tuned = &tuned;
  graph::GraphExecutor exec(model.graph, target, opts);
  return exec.EstimateSeconds();
}

// End-to-end time of a model executed with a vendor library: per-master-op library
// kernels + injective ops at memory-bound speed + framework overhead.
inline double LibraryEndToEndSeconds(const frontend::Model& model, const Target& target,
                                     baselines::Library lib) {
  graph::GraphExecutor probe(model.graph, target, {});
  double total = 0;
  for (const topi::OpWorkload& wl : probe.workloads()) {
    baselines::Library use = lib;
    // cuDNN has no depthwise kernels: frameworks fall back to their own (paper Sec 6.1).
    if (lib == baselines::Library::kCudnn && wl.kind == "depthwise_conv2d") {
      use = baselines::Library::kMxNetKernels;
    }
    total += baselines::OperatorSeconds(use, wl, target);
  }
  // Frameworks run injective/reduction ops as separate memory-bound kernels (no fusion).
  double epilogue = 0;
  for (const auto& node : model.graph.nodes()) {
    if (node.op == "input" || node.op == "const" || node.op == "conv2d" ||
        node.op == "depthwise_conv2d" || node.op == "dense" ||
        node.op == "conv2d_transpose") {
      continue;
    }
    double elems = 1;
    for (int64_t d : node.shape) {
      elems *= static_cast<double>(d);
    }
    // read input + write output, plus per-kernel launch overhead
    epilogue += elems * 4 * 2.5 / (target.dram_gbps * 1e9) + 6e-6;
  }
  return (total + epilogue) * baselines::FrameworkOverhead(lib);
}

}  // namespace bench
}  // namespace tvmcpp

#endif  // BENCH_COMMON_H_
