// Shared helpers for the figure/table reproduction benches.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/autotune/tuner.h"
#include "src/baselines/baselines.h"
#include "src/frontend/models.h"
#include "src/graph/executor.h"
#include "src/support/table.h"

namespace tvmcpp {
namespace bench {

// Monotonic wall-clock timer for real (not modeled) execution measurements.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                     start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Average wall-clock milliseconds of `fn` over `repeats` runs after `warmup` runs.
template <typename F>
double MeasureMs(F&& fn, int repeats = 3, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) {
    fn();
  }
  WallTimer timer;
  for (int i = 0; i < repeats; ++i) {
    fn();
  }
  return timer.Ms() / repeats;
}

// Optional file sink for bench JSON lines: when set (e.g. BENCH_vm.json at the repo
// root), every PrintBenchJson line is mirrored there so the perf trajectory is
// tracked across PRs without scraping stdout.
inline std::FILE*& BenchJsonSinkSlot() {
  static std::FILE* sink = nullptr;
  return sink;
}

// Truncates and opens `path` as the JSON sink (one fresh snapshot per bench run).
inline void OpenBenchJsonSink(const std::string& path) {
  std::FILE*& sink = BenchJsonSinkSlot();
  if (sink != nullptr) {
    std::fclose(sink);
  }
  sink = std::fopen(path.c_str(), "w");
  if (sink == nullptr) {
    std::printf("warning: cannot open bench JSON sink %s\n", path.c_str());
  }
}

// Prints one machine-readable result line, e.g.
//   {"bench": "vm_speedup_conv2d", "interp_ms": 41.2, "vm_ms": 5.1, "speedup": 8.1}
// to stdout and, when a sink is open, to the BENCH_*.json trajectory file.
inline void PrintBenchJson(const std::string& bench,
                           const std::vector<std::pair<std::string, double>>& fields) {
  auto emit = [&](std::FILE* out) {
    std::fprintf(out, "{\"bench\": \"%s\"", bench.c_str());
    for (const auto& kv : fields) {
      std::fprintf(out, ", \"%s\": %.6g", kv.first.c_str(), kv.second);
    }
    std::fprintf(out, "}\n");
  };
  emit(stdout);
  if (std::FILE* sink = BenchJsonSinkSlot()) {
    emit(sink);
    std::fflush(sink);
  }
}

// Tunes a workload with the ML-based optimizer; returns (best seconds, best config).
// Results are cached per (workload, target) within one process.
inline std::pair<double, topi::Config> TuneOp(const topi::OpWorkload& wl,
                                              const Target& target, int trials = 96,
                                              uint64_t seed = 7) {
  static std::unordered_map<std::string, std::pair<double, topi::Config>> cache;
  std::string key = wl.Key() + "@" + target.name;
  auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  autotune::TuningTask task(wl, target, seed);
  autotune::TuneOptions opt;
  opt.num_trials = trials;
  opt.batch_size = 16;
  opt.seed = seed;
  autotune::TuneResult r = autotune::Tune(&task, autotune::TunerKind::kMlBased, opt);
  std::pair<double, topi::Config> out{task.TrueCost(r.best_config),
                                      task.space().At(r.best_config)};
  cache[key] = out;
  return out;
}

// Collects the tuned configs for every master workload of a model.
inline graph::TunedConfigs TuneModel(const frontend::Model& model, const Target& target,
                                     int trials = 64) {
  graph::TunedConfigs tuned;
  graph::GraphExecutor probe(model.graph, target, {});
  for (const topi::OpWorkload& wl : probe.workloads()) {
    if (tuned.count(wl.Key())) {
      continue;
    }
    tuned[wl.Key()] = TuneOp(wl, target, trials).second;
  }
  return tuned;
}

// End-to-end estimated time of a model under TVM (tuned, optionally without fusion).
inline double TvmEndToEndSeconds(const frontend::Model& model, const Target& target,
                                 const graph::TunedConfigs& tuned, bool fusion) {
  graph::CompileOptions opts;
  opts.enable_fusion = fusion;
  opts.tuned = &tuned;
  graph::GraphExecutor exec(model.graph, target, opts);
  return exec.EstimateSeconds();
}

// End-to-end time of a model executed with a vendor library: per-master-op library
// kernels + injective ops at memory-bound speed + framework overhead.
inline double LibraryEndToEndSeconds(const frontend::Model& model, const Target& target,
                                     baselines::Library lib) {
  graph::GraphExecutor probe(model.graph, target, {});
  double total = 0;
  for (const topi::OpWorkload& wl : probe.workloads()) {
    baselines::Library use = lib;
    // cuDNN has no depthwise kernels: frameworks fall back to their own (paper Sec 6.1).
    if (lib == baselines::Library::kCudnn && wl.kind == "depthwise_conv2d") {
      use = baselines::Library::kMxNetKernels;
    }
    total += baselines::OperatorSeconds(use, wl, target);
  }
  // Frameworks run injective/reduction ops as separate memory-bound kernels (no fusion).
  double epilogue = 0;
  for (const auto& node : model.graph.nodes()) {
    if (node.op == "input" || node.op == "const" || node.op == "conv2d" ||
        node.op == "depthwise_conv2d" || node.op == "dense" ||
        node.op == "conv2d_transpose") {
      continue;
    }
    double elems = 1;
    for (int64_t d : node.shape) {
      elems *= static_cast<double>(d);
    }
    // read input + write output, plus per-kernel launch overhead
    epilogue += elems * 4 * 2.5 / (target.dram_gbps * 1e9) + 6e-6;
  }
  return (total + epilogue) * baselines::FrameworkOverhead(lib);
}

}  // namespace bench
}  // namespace tvmcpp

#endif  // BENCH_COMMON_H_
