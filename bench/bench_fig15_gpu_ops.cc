// Figure 15 (+ Table 2): per-operator GPU comparison — relative speedup of TVM over
// cuDNN / TensorComprehensions / MXNet kernels for all ResNet-18 conv2d layers (C1-C12)
// and all MobileNet depthwise layers (D1-D9), plus the Winograd pre-transformed variant
// (TVM PT) for 3x3 stride-1 layers.
// Paper result: TVM matches or beats cuDNN on most conv layers and wins large on
// depthwise; TC is competitive only on the simpler depthwise ops.
#include "bench/common.h"

using namespace tvmcpp;

int main() {
  std::printf("Figure 15: per-operator Titan X comparison (relative speedup vs cuDNN=1.0"
              " / MX=1.0 for depthwise)\n\n");
  Target t = Target::TitanX();

  std::printf("Table 2 operator configurations + results (conv2d C1-C12):\n");
  TextTable conv({"op", "H/W", "IC,OC", "K,S", "cuDNN (ms)", "TC (ms)", "TVM (ms)",
                  "TVM PT (ms)", "TVM speedup"});
  auto convs = frontend::ResnetConvWorkloads();
  for (size_t i = 0; i < convs.size(); ++i) {
    const topi::OpWorkload& wl = convs[i];
    double cudnn = baselines::OperatorSeconds(baselines::Library::kCudnn, wl, t);
    double tc =
        baselines::OperatorSeconds(baselines::Library::kTensorComprehensions, wl, t);
    double tvm = bench::TuneOp(wl, t, 64, 31).first;
    // TVM PT: Winograd F(2x2,3x3) pre-transformed weights for 3x3 stride-1 layers:
    // 2.25x fewer multiplies, plus input/output transform traffic.
    std::string pt = "-";
    if (wl.k == 3 && wl.stride == 1) {
      double transform_overhead = 1.18;
      double pt_s = tvm / 2.25 * transform_overhead;
      pt = TextTable::Num(pt_s * 1e3);
    }
    conv.AddRow({"C" + std::to_string(i + 1), std::to_string(wl.h),
                 std::to_string(wl.ic) + "," + std::to_string(wl.oc),
                 std::to_string(wl.k) + "," + std::to_string(wl.stride),
                 TextTable::Num(cudnn * 1e3), TextTable::Num(tc * 1e3),
                 TextTable::Num(tvm * 1e3), pt, TextTable::Num(cudnn / tvm, 2) + "x"});
  }
  conv.Print();

  std::printf("\ndepthwise conv2d D1-D9 (baseline: MXNet handcrafted kernels):\n");
  TextTable dw({"op", "H/W", "C", "K,S", "MX kernel (ms)", "TC (ms)", "TVM (ms)",
                "TVM speedup"});
  auto dws = frontend::MobilenetDepthwiseWorkloads();
  for (size_t i = 0; i < dws.size(); ++i) {
    const topi::OpWorkload& wl = dws[i];
    double mx = baselines::OperatorSeconds(baselines::Library::kMxNetKernels, wl, t);
    double tc =
        baselines::OperatorSeconds(baselines::Library::kTensorComprehensions, wl, t);
    double tvm = bench::TuneOp(wl, t, 64, 33).first;
    dw.AddRow({"D" + std::to_string(i + 1), std::to_string(wl.h), std::to_string(wl.ic),
               std::to_string(wl.k) + "," + std::to_string(wl.stride),
               TextTable::Num(mx * 1e3), TextTable::Num(tc * 1e3),
               TextTable::Num(tvm * 1e3), TextTable::Num(mx / tvm, 2) + "x"});
  }
  dw.Print();
  return 0;
}
