// Figure 21: ResNet-18 inference time breakdown on the PYNQ platform — CPU-only vs
// CPU+FPGA (VDLA) with conv layers offloaded.
// Paper result: offloaded conv layers speed up ~40x; end-to-end gain is bounded by the
// layers that stay on the CPU (Amdahl's law): the first conv, residuals, activations.
#include "bench/common.h"
#include "src/sim/machine.h"
#include "src/vdla/vdla.h"

// The Fig.10 GEMM builder, redeclared locally.
#include "src/lower/lower.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"

using namespace tvmcpp;

namespace {

LoweredFunc VdlaGemm(int m, int n, int k) {
  auto fit = [](int v, int cap) {
    int best = 16;
    for (int c = 16; c <= cap; c += 16) {
      if (v % c == 0) {
        best = c;
      }
    }
    return best;
  };
  int tm = fit(m, 128), tn = fit(n, 128);
  int tk = 32;
  while (k % tk != 0) {
    tk /= 2;
  }
  Tensor A = placeholder({make_int(m), make_int(k)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(k), make_int(n)}, DataType::Float32(), "B");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(k)), "rk");
  Tensor C = compute({make_int(m), make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({i[0], rk->var}) * B({rk->var, i[1]}), {rk});
                     },
                     "C");
  Schedule s = create_schedule({C});
  Tensor CL = s->cache_write(C, "vdla.acc_buffer");
  Stage sc = (*s)[C];
  IterVar yo, xo, yi, xi;
  sc->tile(sc->leaf_iter_vars[0], sc->leaf_iter_vars[1], tm, tn, &yo, &xo, &yi, &xi);
  IterVar attach = xo;
  if ((n / tn) % 2 == 0) {
    IterVar vt, rest;
    sc->split(xo, (n / tn) / 2, &vt, &rest);
    sc->bind(vt, thread_axis("vthread"));
    attach = rest;
  }
  (*s)[CL]->compute_at(sc, attach);
  Stage scl = (*s)[CL];
  IterVar ci0 = scl->leaf_iter_vars[0], ci1 = scl->leaf_iter_vars[1];
  IterVar ko, ki;
  scl->split(scl->leaf_iter_vars[2], tk, &ko, &ki);
  IterVar c0o, c0i, c1o, c1i, kio, kii;
  scl->split(ci0, 16, &c0o, &c0i);
  scl->split(ci1, 16, &c1o, &c1i);
  scl->split(ki, std::min(tk, 16), &kio, &kii);
  scl->reorder({ko, c0o, c1o, kio, c0i, c1i, kii});
  Tensor AL = s->cache_read(A, "vdla.inp_buffer", {CL.op()});
  Tensor BL = s->cache_read(B, "vdla.wgt_buffer", {CL.op()});
  (*s)[AL]->compute_at(scl, ko);
  (*s)[BL]->compute_at(scl, ko);
  Tensor w = placeholder({make_int(16), make_int(16)}, DataType::Float32(), "w");
  Tensor x = placeholder({make_int(16), make_int(16)}, DataType::Float32(), "x");
  IterVar k16 = reduce_axis(Range(make_int(0), make_int(16)), "k");
  Tensor y = compute({make_int(16), make_int(16)},
                     [&](const std::vector<Var>& i) {
                       return sum(w({i[0], k16->var}) * x({k16->var, i[1]}), {k16});
                     },
                     "g16");
  scl->tensorize(c0i, decl_tensor_intrin(y, kGemmIntrin, kFillZeroIntrin, kGemmIntrin));
  return Lower(s, {A, B, C}, "vdla_gemm");
}

}  // namespace

int main() {
  std::printf("Figure 21: ResNet-18 on PYNQ — CPU only vs CPU+FPGA (VDLA offload)\n");
  std::printf("paper: ~40x speedup on offloaded conv layers; end-to-end bounded by the"
              " CPU-resident layers (Amdahl)\n\n");
  Target cpu = Target::ArmA9();
  Target vdla = Target::Vdla();

  frontend::Model model = frontend::ResNet18(1, 224);
  graph::TunedConfigs tuned = bench::TuneModel(model, cpu, 32);

  // CPU times per conv layer + everything else, from the graph executor.
  graph::CompileOptions opts;
  opts.tuned = &tuned;
  graph::GraphExecutor exec(model.graph, cpu, opts);
  double conv_cpu = 0, first_conv_cpu = 0, other_cpu = 0;
  {
    // Attribute kernel costs: conv-master groups vs the rest.
    auto costs = exec.KernelCosts();
    size_t wi = 0;
    auto wls = exec.workloads();
    for (const auto& [name, sec] : costs) {
      bool is_conv = name.find("conv") != std::string::npos ||
                     name.find("down") != std::string::npos;
      if (is_conv && name.find("conv0") != std::string::npos) {
        first_conv_cpu += sec;
      } else if (is_conv) {
        conv_cpu += sec;
      } else {
        other_cpu += sec;
      }
    }
    (void)wi;
    (void)wls;
  }

  // FPGA times for the offloadable convs (all but the shallow first layer), as im2col
  // GEMMs on the VDLA simulator.
  double conv_fpga = 0;
  for (size_t i = 1; i < frontend::ResnetConvWorkloads().size(); ++i) {
    const topi::OpWorkload& wl = frontend::ResnetConvWorkloads()[i];
    auto up16 = [](int v) { return (v + 15) / 16 * 16; };
    int oh = static_cast<int>(topi::ConvOutDim(wl.h, wl.k, wl.stride, wl.pad));
    int m = up16(wl.oc), n = up16(oh * oh), k = up16(wl.ic * wl.k * wl.k);
    VdlaRunStats stats = RunOnVdla(VdlaGemm(m, n, k), vdla);
    // Each distinct layer shape appears a known number of times in ResNet-18; count 2
    // for the repeated 3x3 blocks, 1 otherwise (C2 appears 4x: two blocks x two convs).
    int repeats = (wl.k == 3 && wl.stride == 1 && wl.ic == wl.oc) ? 3 : 1;
    conv_fpga += stats.Seconds(vdla) * repeats;
  }

  double cpu_total = first_conv_cpu + conv_cpu + other_cpu;
  double fpga_total = first_conv_cpu + conv_fpga + other_cpu;
  TextTable table({"configuration", "conv (s)", "layer_0 + other (s)", "total (s)"});
  table.AddRow({"TVM ARM (CPU only)", TextTable::Num(conv_cpu, 3),
                TextTable::Num(first_conv_cpu + other_cpu, 3), TextTable::Num(cpu_total, 3)});
  table.AddRow({"TVM ARM+FPGA", TextTable::Num(conv_fpga, 3),
                TextTable::Num(first_conv_cpu + other_cpu, 3),
                TextTable::Num(fpga_total, 3)});
  table.Print();
  std::printf("\noffloaded conv speedup: %.1fx; end-to-end speedup: %.2fx (Amdahl-bound)\n",
              conv_cpu / conv_fpga, cpu_total / fpga_total);
  return 0;
}
