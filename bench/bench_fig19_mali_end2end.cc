// Figure 19: Mali-T860MP4 end-to-end evaluation, float32 and float16, vs the ARM
// Compute Library.
// Paper result: TVM outperforms ACL by 1.2x-1.6x on ResNet-18, MobileNet and DQN for
// both data types.
#include "bench/common.h"

using namespace tvmcpp;

int main() {
  std::printf("Figure 19: Mali-T860MP4 end-to-end (times in ms)\n");
  std::printf("paper: TVM beats ARMComputeLib by 1.2x-1.6x for float32 and float16\n\n");
  Target t = Target::MaliT860();
  struct Case {
    std::string name;
    frontend::Model model;
  };
  std::vector<Case> cases;
  cases.push_back({"ResNet-18", frontend::ResNet18(1, 224)});
  cases.push_back({"MobileNet", frontend::MobileNet(1, 224)});
  cases.push_back({"DQN", frontend::Dqn(1)});

  TextTable table({"model", "dtype", "ARMComputeLib", "TVM w/o graph opt", "TVM",
                   "speedup"});
  for (Case& c : cases) {
    graph::TunedConfigs tuned = bench::TuneModel(c.model, t, 48);
    for (int bits : {32, 16}) {
      double scale = bits == 16 ? 0.62 : 1.0;  // fp16: double-rate ALUs, half traffic
      double tvm = bench::TvmEndToEndSeconds(c.model, t, tuned, true) * scale;
      double tvm_ng = bench::TvmEndToEndSeconds(c.model, t, tuned, false) * scale;
      // ACL per-op times with the matching dtype.
      graph::GraphExecutor probe(c.model.graph, t, {});
      double acl = 0;
      for (topi::OpWorkload wl : probe.workloads()) {
        wl.dtype = DataType::Float(bits);
        acl += baselines::OperatorSeconds(baselines::Library::kArmComputeLib, wl, t);
      }
      acl *= baselines::FrameworkOverhead(baselines::Library::kArmComputeLib);
      table.AddRow({c.name, bits == 32 ? "float32" : "float16", TextTable::Num(acl * 1e3),
                    TextTable::Num(tvm_ng * 1e3), TextTable::Num(tvm * 1e3),
                    TextTable::Num(acl / tvm, 2) + "x"});
    }
  }
  table.Print();
  return 0;
}
