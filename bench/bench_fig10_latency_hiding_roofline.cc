// Figure 10: roofline of the VDLA accelerator running ResNet conv layers, with and
// without latency hiding (virtual threads).
// Paper result: latency hiding lifts every layer toward the roofline; peak compute
// utilization rises from 70% to 88%.
//
// Hardware substitution: conv layers are mapped to their im2col GEMMs (M=OC,
// N=OH*OW, K=IC*KH*KW), the standard lowering for GEMM-core accelerators; the first
// (shallow) conv layer stays on the CPU as in the paper.
#include <algorithm>

#include "bench/common.h"
#include "src/lower/lower.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"
#include "src/vdla/vdla.h"

using namespace tvmcpp;

namespace {

// GEMM on VDLA with output tiles sized to the on-chip buffers.
LoweredFunc VdlaGemm(int m, int n, int k, bool latency_hiding) {
  auto round_to = [](int v, int q) { return std::max(q, v - v % q); };
  int tm = std::min(round_to(m, 16), 128);
  int tn = std::min(round_to(n, 16), 128);
  while (m % tm != 0) {
    tm -= 16;
  }
  while (n % tn != 0) {
    tn -= 16;
  }
  int tk = 32;
  while (k % tk != 0) {
    tk /= 2;
  }
  Tensor A = placeholder({make_int(m), make_int(k)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(k), make_int(n)}, DataType::Float32(), "B");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(k)), "rk");
  Tensor C = compute({make_int(m), make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({i[0], rk->var}) * B({rk->var, i[1]}), {rk});
                     },
                     "C");
  Schedule s = create_schedule({C});
  Tensor CL = s->cache_write(C, "vdla.acc_buffer");
  Stage sc = (*s)[C];
  IterVar yo, xo, yi, xi;
  sc->tile(sc->leaf_iter_vars[0], sc->leaf_iter_vars[1], tm, tn, &yo, &xo, &yi, &xi);
  IterVar attach = xo;
  if (latency_hiding && (n / tn) % 2 == 0) {
    IterVar vt, rest;
    sc->split(xo, (n / tn) / 2, &vt, &rest);
    sc->bind(vt, thread_axis("vthread"));
    attach = rest;
  } else if (latency_hiding && (m / tm) % 2 == 0) {
    IterVar vt, rest;
    sc->split(yo, (m / tm) / 2, &vt, &rest);
    sc->bind(vt, thread_axis("vthread"));
  }
  (*s)[CL]->compute_at(sc, attach);
  Stage scl = (*s)[CL];
  IterVar ci0 = scl->leaf_iter_vars[0], ci1 = scl->leaf_iter_vars[1];
  IterVar ko, ki;
  scl->split(scl->leaf_iter_vars[2], tk, &ko, &ki);
  IterVar c0o, c0i, c1o, c1i, kio, kii;
  scl->split(ci0, 16, &c0o, &c0i);
  scl->split(ci1, 16, &c1o, &c1i);
  scl->split(ki, std::min(tk, 16), &kio, &kii);
  scl->reorder({ko, c0o, c1o, kio, c0i, c1i, kii});
  Tensor AL = s->cache_read(A, "vdla.inp_buffer", {CL.op()});
  Tensor BL = s->cache_read(B, "vdla.wgt_buffer", {CL.op()});
  (*s)[AL]->compute_at(scl, ko);
  (*s)[BL]->compute_at(scl, ko);
  Tensor w = placeholder({make_int(16), make_int(16)}, DataType::Float32(), "w");
  Tensor x = placeholder({make_int(16), make_int(16)}, DataType::Float32(), "x");
  IterVar k16 = reduce_axis(Range(make_int(0), make_int(16)), "k");
  Tensor y = compute({make_int(16), make_int(16)},
                     [&](const std::vector<Var>& i) {
                       return sum(w({i[0], k16->var}) * x({k16->var, i[1]}), {k16});
                     },
                     "gemm16");
  scl->tensorize(c0i, decl_tensor_intrin(y, kGemmIntrin, kFillZeroIntrin, kGemmIntrin));
  return Lower(s, {A, B, C}, "vdla_gemm");
}

}  // namespace

int main() {
  std::printf("Figure 10: VDLA roofline for ResNet conv layers, +/- latency hiding\n");
  std::printf("paper: peak compute utilization 70%% -> 88%% with latency hiding\n");
  Target t = Target::Vdla();
  double peak_gops = 2.0 * t.gemm_rows * t.gemm_cols * t.clock_ghz;  // 102.4 GOPS
  std::printf("theoretical peak: %.1f GOPS; roofline knee at %.1f ops/byte\n\n", peak_gops,
              peak_gops / t.dram_gbps);

  TextTable table({"layer", "GEMM (MxNxK)", "ops/byte", "GOPS base", "GOPS hidden",
                   "util base", "util hidden"});
  double max_base = 0, max_hidden = 0;
  auto layers = frontend::ResnetConvWorkloads();
  for (size_t li = 1; li < layers.size(); ++li) {  // C1 stays on the CPU (paper)
    const topi::OpWorkload& wl = layers[li];
    int oh = static_cast<int>(topi::ConvOutDim(wl.h, wl.k, wl.stride, wl.pad));
    int ow = static_cast<int>(topi::ConvOutDim(wl.w, wl.k, wl.stride, wl.pad));
    int m = wl.oc, n = oh * ow, k = wl.ic * wl.k * wl.k;
    // Round the GEMM to the 16-granular tiles the unit needs.
    auto up16 = [](int v) { return (v + 15) / 16 * 16; };
    m = up16(m);
    n = up16(n);
    k = up16(k);
    VdlaRunStats base = RunOnVdla(VdlaGemm(m, n, k, false), t);
    VdlaRunStats hidden = RunOnVdla(VdlaGemm(m, n, k, true), t);
    max_base = std::max(max_base, base.ComputeUtilization());
    max_hidden = std::max(max_hidden, hidden.ComputeUtilization());
    table.AddRow({"C" + std::to_string(li + 1),
                  std::to_string(m) + "x" + std::to_string(n) + "x" + std::to_string(k),
                  TextTable::Num(hidden.OperationalIntensity(), 1),
                  TextTable::Num(base.GopsPerSecond(t), 1),
                  TextTable::Num(hidden.GopsPerSecond(t), 1),
                  TextTable::Num(100 * base.ComputeUtilization(), 1) + "%",
                  TextTable::Num(100 * hidden.ComputeUtilization(), 1) + "%"});
  }
  table.Print();
  std::printf("\npeak compute utilization: %.0f%% (no hiding) -> %.0f%% (latency hiding)\n",
              100 * max_base, 100 * max_hidden);
  return 0;
}
