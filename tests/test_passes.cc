// Post-lowering pass tests: loop unrolling, shared-allocation hoisting, thread-block
// serialization, and virtual-thread injection — each checked for semantics preservation
// and for its structural post-conditions.
#include <gtest/gtest.h>

#include <vector>

#include "src/interp/interp.h"
#include "src/ir/functor.h"
#include "src/ir/printer.h"
#include "src/lower/lower.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"

namespace tvmcpp {
namespace {

std::vector<float> Iota(size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(i % 17) - 8;
  }
  return v;
}

TEST(UnrollPass, ExpandsAnnotatedLoops) {
  const int n = 32;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) { return A({i[0]}) * make_float(2); },
                     "C");
  Schedule s = create_schedule({C});
  Stage st = (*s)[C];
  IterVar o, i;
  st->split(st->leaf_iter_vars[0], 4, &o, &i);
  st->unroll(i);
  LoweredFunc f = Lower(s, {A, C}, "u");
  Stmt unrolled = UnrollLoops(f.body, 8);
  // The annotated loop must be gone.
  bool has_unrolled_for = false;
  PostOrderVisitStmt(unrolled, [&](const Stmt& st2) {
    if (st2->kind == StmtKind::kFor) {
      has_unrolled_for |=
          static_cast<const ForNode*>(st2.get())->for_type == ForType::kUnrolled;
    }
  });
  EXPECT_FALSE(has_unrolled_for) << ToString(unrolled);
  // And semantics must hold.
  std::vector<float> a = Iota(n), c(n, 0);
  LoweredFunc fu = f;
  fu.body = unrolled;
  RunLowered(fu, {{a.data(), DataType::Float32(), n}, {c.data(), DataType::Float32(), n}});
  for (int j = 0; j < n; ++j) {
    EXPECT_FLOAT_EQ(c[static_cast<size_t>(j)], 2 * a[static_cast<size_t>(j)]);
  }
}

TEST(UnrollPass, LeavesLargeLoopsAlone) {
  const int n = 64;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) { return A({i[0]}); }, "C");
  Schedule s = create_schedule({C});
  (*s)[C]->unroll((*s)[C]->leaf_iter_vars[0]);
  LoweredFunc f = Lower(s, {A, C}, "u");
  Stmt out = UnrollLoops(f.body, 16);  // 64 > 16: stays a loop
  bool has_for = false;
  PostOrderVisitStmt(out, [&](const Stmt& st) { has_for |= st->kind == StmtKind::kFor; });
  EXPECT_TRUE(has_for);
}

TEST(SerializePass, RemovesThreadBindingAndBarriers) {
  const int n = 64;
  Tensor A = placeholder({make_int(n), make_int(n)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(n), make_int(n)}, DataType::Float32(), "B");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(n)), "rk");
  Tensor C = compute({make_int(n), make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({i[0], rk->var}) * B({rk->var, i[1]}), {rk});
                     },
                     "C");
  Schedule s = create_schedule({C});
  Tensor CL = s->cache_write(C, "local");
  Stage sc = (*s)[C];
  IterVar by, ty, bx, tx;
  sc->split(sc->leaf_iter_vars[0], 16, &by, &ty);
  sc->split(sc->leaf_iter_vars[2], 16, &bx, &tx);
  sc->reorder({by, bx, ty, tx});
  sc->bind(by, thread_axis("blockIdx.y"));
  sc->bind(bx, thread_axis("blockIdx.x"));
  sc->bind(ty, thread_axis("threadIdx.y"));
  sc->bind(tx, thread_axis("threadIdx.x"));
  (*s)[CL]->compute_at(sc, tx);
  Stage scl = (*s)[CL];
  IterVar ko, ki;
  scl->split(scl->leaf_iter_vars[2], 8, &ko, &ki);
  Tensor AS = s->cache_read(A, "shared", {CL.op()});
  (*s)[AS]->compute_at(scl, ko);

  LoweredFunc f = Lower(s, {A, B, C}, "mm");
  Stmt serial = SerializeThreadBlocks(f.body);
  int thread_loops = 0, syncs = 0;
  PostOrderVisitStmt(serial, [&](const Stmt& st) {
    if (st->kind == StmtKind::kFor) {
      const auto* n2 = static_cast<const ForNode*>(st.get());
      thread_loops += n2->for_type == ForType::kThreadBinding &&
                      n2->thread_tag.rfind("threadIdx", 0) == 0;
    }
    if (st->kind == StmtKind::kEvaluate) {
      const Expr& e = static_cast<const EvaluateNode*>(st.get())->value;
      syncs += e->kind == ExprKind::kCall &&
               static_cast<const CallNode*>(e.get())->name == kSyncIntrin;
    }
  });
  EXPECT_EQ(thread_loops, 0) << "threadIdx loops must be serialized";
  EXPECT_EQ(syncs, 0) << "barriers must be consumed by fission";
}

TEST(HoistPass, SharedAllocationsMoveAboveThreads) {
  // Build a statement by hand: thread loop around a shared allocate.
  Var tx = make_var("tx");
  Var buf = make_var("buf", DataType::Handle());
  Stmt body = store(buf, make_float(1), tx);
  Stmt alloc = allocate(buf, DataType::Float32(), {make_int(8)}, "shared", body);
  Stmt loop = for_stmt(tx, make_int(0), make_int(8), alloc, ForType::kThreadBinding,
                       "threadIdx.x");
  Stmt hoisted = HoistSharedAllocations(loop);
  // The outermost statement must now be the allocation.
  EXPECT_EQ(hoisted->kind, StmtKind::kAllocate);
}

TEST(VThreadPass, InterleavesAtMacroGranularity) {
  // vthread loop whose body is {copy-nest; compute-nest}: after injection the copies of
  // the two vthreads must alternate (copy0, copy1, compute0, compute1).
  Var vt = make_var("vthread");
  Var src = make_var("src", DataType::Handle());
  Var dst = make_var("dst", DataType::Handle());
  Var i = make_var("i");
  Stmt copy = for_stmt(i, make_int(0), make_int(4),
                       store(dst, load(DataType::Float32(), src, i + vt * 4), i));
  Var j = make_var("j");
  Stmt use = for_stmt(j, make_int(0), make_int(4),
                      store(dst, load(DataType::Float32(), dst, j) * make_float(2), j));
  Stmt body = allocate(dst, DataType::Float32(), {make_int(4)}, "local", seq({copy, use}));
  Stmt loop = for_stmt(vt, make_int(0), make_int(2), body, ForType::kVThread, "vthread");
  Stmt injected = InjectVirtualThreads(loop);
  std::string text = ToString(injected);
  EXPECT_EQ(text.find("vthread ("), std::string::npos);
  // The local buffer must have been expanded 2x.
  bool found_alloc8 = text.find("dst[float32 * 8]") != std::string::npos;
  EXPECT_TRUE(found_alloc8) << text;
}

}  // namespace
}  // namespace tvmcpp
