// Shared-memory transport tests: the slab arena (round-trip, reuse, bad-free
// rejection), zero-copy request decoding (pointer/offset identity, no bytes
// moved), forked client processes whose results are bitwise-identical to
// in-process Submit() under strict mode, ring-full backpressure, client-crash
// slot reclamation, and fail-point-driven attach/push faults surfacing as
// typed Status. POSIX-only, like the transport itself.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/serve/serve.h"
#include "src/serve/shm_arena.h"
#include "src/serve/shm_client.h"
#include "src/serve/shm_server.h"
#include "src/support/failpoint.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

using serve::ShmArena;
using serve::ShmClient;
using serve::ShmTransport;

// Unique per test-process arena names so parallel ctest runs (and leftover
// objects from crashed runs) cannot collide; all match /dev/shm/tvmcpp_* for
// the CI cleanup trap.
std::string UniqueShmName(const std::string& tag) {
  static int counter = 0;
  return "/tvmcpp_test_" + std::to_string(getpid()) + "_" + tag + "_" +
         std::to_string(counter++);
}

// Same conv-chain model as test_serve.cc: 4 fused kernels, recycled
// intermediate storage, so any cross-process buffer bleed corrupts visibly.
graph::Graph MakeConvChain() {
  graph::Graph g;
  int data = g.AddInput("data", {1, 4, 8, 8});
  int w1 = g.AddConst("w1", {8, 4, 3, 3});
  int w2 = g.AddConst("w2", {8, 8, 1, 1});
  int w3 = g.AddConst("w3", {8, 8, 1, 1});
  int w4 = g.AddConst("w4", {8, 8, 1, 1});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int r1 = g.AddOp("relu", "relu1", {c1});
  int c2 = g.AddOp("conv2d", "conv2", {r1, w2}, {{"stride", 1}, {"pad", 0}});
  int r2 = g.AddOp("relu", "relu2", {c2});
  int c3 = g.AddOp("conv2d", "conv3", {r2, w3}, {{"stride", 1}, {"pad", 0}});
  int r3 = g.AddOp("relu", "relu3", {c3});
  g.outputs = {g.AddOp("conv2d", "conv4", {r3, w4}, {{"stride", 1}, {"pad", 0}})};
  return g;
}

std::unordered_map<std::string, NDArray> ChainWeights(uint64_t seed) {
  std::unordered_map<std::string, NDArray> w;
  w["w1"] = NDArray::Random({8, 4, 3, 3}, DataType::Float32(), seed + 1);
  w["w2"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), seed + 2);
  w["w3"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), seed + 3);
  w["w4"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), seed + 4);
  return w;
}

NDArray ChainInput(uint64_t seed) {
  return NDArray::Random({1, 4, 8, 8}, DataType::Float32(), 1000 + seed);
}

constexpr uint64_t kWeightSeed = 7;

std::shared_ptr<graph::CompiledGraph> MakeChainModel() {
  auto model = std::make_shared<graph::CompiledGraph>(MakeConvChain(), Target::ArmA53(),
                                                      graph::CompileOptions{});
  for (const auto& kv : ChainWeights(kWeightSeed)) {
    model->SetParam(kv.first, kv.second);
  }
  return model;
}

// Sequential oracle: the exact pre-serving, pre-transport execution path.
NDArray SequentialRun(const NDArray& input) {
  graph::GraphExecutor exec(MakeConvChain(), Target::ArmA53(), {});
  for (const auto& kv : ChainWeights(kWeightSeed)) {
    exec.SetParam(kv.first, kv.second);
  }
  exec.SetInput("data", input);
  exec.Run();
  return exec.GetOutput(0).Copy();
}

struct ScopedStrictMode {
  bool saved;
  ScopedStrictMode() : saved(vm::StrictMode()) { vm::SetStrictMode(true); }
  ~ScopedStrictMode() { vm::SetStrictMode(saved); }
};

serve::ServerOptions QuietServerOptions() {
  serve::ServerOptions o;
  o.num_workers = 2;
  o.default_deadline_ms = 0;  // no deadline: deterministic tests on a slow host
  return o;
}

ShmTransport::Options TransportOptions(const std::string& name, int slots = 0) {
  ShmTransport::Options o;
  o.shm_name = name;
  o.arena_bytes = 8u << 20;
  o.ring_slots = slots;
  return o;
}

// ---------------------------------------------------------------------------
// Arena / slab allocator
// ---------------------------------------------------------------------------

TEST(ShmArenaTest, RoundTripAndSlabReuse) {
  ShmArena::Options o;
  o.bytes = 1u << 20;
  o.ring_slots = 4;
  auto arena = ShmArena::Create(UniqueShmName("arena"), o);

  int64_t a = arena->AllocOffset(1024);
  ASSERT_GT(a, 0);
  EXPECT_EQ(a % static_cast<int64_t>(serve::kShmAlign), 0) << "payloads are cache-aligned";
  std::memset(arena->At(a), 0xAB, 1024);

  int64_t b = arena->AllocOffset(1024);
  ASSERT_GT(b, 0);
  EXPECT_NE(a, b);

  EXPECT_TRUE(arena->FreeOffset(a));
  int64_t a2 = arena->AllocOffset(1024);
  EXPECT_EQ(a2, a) << "same size class reuses the freed slab (LIFO free list)";
  for (int i = 0; i < 1024; ++i) {
    ASSERT_EQ(arena->At(a2)[i], 0) << "reused slab must be re-zeroed at byte " << i;
  }
  EXPECT_TRUE(arena->FreeOffset(a2));
  EXPECT_TRUE(arena->FreeOffset(b));
  EXPECT_EQ(arena->header()->live_blocks.load(), 0);

  // Exhaustion: larger than the whole heap fails typed, not fatally.
  EXPECT_EQ(arena->AllocOffset(2u << 20), serve::kShmNoOffset);
  EXPECT_GT(arena->header()->failed_allocs.load(), 0);
}

TEST(ShmArenaTest, FreeRejectsGarbageAndDoubleFree) {
  ShmArena::Options o;
  o.bytes = 1u << 20;
  o.ring_slots = 4;
  auto arena = ShmArena::Create(UniqueShmName("badfree"), o);
  int64_t a = arena->AllocOffset(512);
  ASSERT_GT(a, 0);
  EXPECT_FALSE(arena->FreeOffset(0));
  EXPECT_FALSE(arena->FreeOffset(a + 8));       // unaligned
  EXPECT_FALSE(arena->FreeOffset(a + (1 << 19)));  // beyond the bump frontier
  EXPECT_TRUE(arena->FreeOffset(a));
  EXPECT_FALSE(arena->FreeOffset(a)) << "double free must be rejected (FREE magic)";
}

TEST(ShmArenaTest, StoragePoolLandsTensorsInArena) {
  ShmArena::Options o;
  o.bytes = 1u << 20;
  o.ring_slots = 4;
  auto arena = ShmArena::Create(UniqueShmName("pool"), o);
  serve::ShmStoragePool pool(arena);
  {
    ScopedStoragePool scope(&pool);
    NDArray t = NDArray::Empty({16, 16}, DataType::Float32());
    EXPECT_TRUE(arena->Contains(t.Data<char>(), static_cast<size_t>(t.ByteSize())));
    EXPECT_EQ(arena->header()->live_blocks.load(), 1);
  }
  // The NDArray dropped: its keeper returned the slab.
  EXPECT_EQ(arena->header()->live_blocks.load(), 0);
  // Outside the scope, Empty goes back to the heap.
  NDArray h = NDArray::Empty({4}, DataType::Float32());
  EXPECT_FALSE(arena->Contains(h.Data<char>(), 16));
}

// ---------------------------------------------------------------------------
// Descriptor decode: the zero-copy request path
// ---------------------------------------------------------------------------

TEST(ShmDecodeTest, PointerOffsetIdentityNoCopies) {
  ShmArena::Options o;
  o.bytes = 1u << 20;
  o.ring_slots = 4;
  auto arena = ShmArena::Create(UniqueShmName("decode"), o);
  serve::ShmStoragePool pool(arena);
  ScopedStoragePool scope(&pool);

  NDArray in = NDArray::Empty({1, 4, 8, 8}, DataType::Float32());
  in.CopyFrom(ChainInput(3));
  NDArray out = NDArray::Empty({1, 8, 6, 6}, DataType::Float32());

  serve::ShmRequestSlot* slot = arena->slot(0);
  slot->num_inputs = 1;
  slot->num_outputs = 1;
  serve::ShmDescribeTensor("data", in, &slot->inputs[0]);
  slot->inputs[0].arena_offset = arena->OffsetOf(in.Data<char>());
  serve::ShmDescribeTensor("conv4", out, &slot->outputs[0]);
  slot->outputs[0].arena_offset = arena->OffsetOf(out.Data<char>());
  slot->priority = 3;
  slot->deadline_ms = 250;

  serve::InferenceRequest req;
  std::string error;
  ASSERT_TRUE(serve::ShmDecodeSlot(arena, slot, &req, &error)) << error;

  // The decoded tensors must BE the client's arena bytes: pointer equality
  // against the descriptor offset, not just value equality — zero copies on
  // the request path.
  ASSERT_EQ(req.inputs.count("data"), 1u);
  EXPECT_EQ(req.inputs["data"].Data<char>(), arena->At(slot->inputs[0].arena_offset));
  EXPECT_EQ(req.inputs["data"].Data<char>(), in.Data<char>());
  ASSERT_EQ(req.bound_outputs.size(), 1u);
  EXPECT_EQ(req.bound_outputs[0].Data<char>(), arena->At(slot->outputs[0].arena_offset));
  EXPECT_EQ(req.bound_outputs[0].Data<char>(), out.Data<char>());
  EXPECT_EQ(req.inputs["data"].shape(), (std::vector<int64_t>{1, 4, 8, 8}));
  EXPECT_EQ(req.priority, 3);
  EXPECT_EQ(req.deadline_ms, 250);
  // Writing through the decoded view is visible through the original handle —
  // same storage, proven end-to-end.
  req.bound_outputs[0].Data<float>()[0] = 42.5f;
  EXPECT_EQ(out.Data<float>()[0], 42.5f);
}

TEST(ShmDecodeTest, BadDescriptorsRejected) {
  ShmArena::Options o;
  o.bytes = 1u << 20;
  o.ring_slots = 4;
  auto arena = ShmArena::Create(UniqueShmName("baddesc"), o);
  serve::ShmRequestSlot* slot = arena->slot(0);
  serve::InferenceRequest req;
  std::string error;

  slot->num_inputs = serve::kShmMaxTensors + 1;
  EXPECT_FALSE(serve::ShmDecodeSlot(arena, slot, &req, &error));

  slot->num_inputs = 1;
  slot->num_outputs = 0;
  std::memset(&slot->inputs[0], 0, sizeof(slot->inputs[0]));
  std::strcpy(slot->inputs[0].name, "data");
  slot->inputs[0].type_code = static_cast<uint8_t>(TypeCode::kFloat);
  slot->inputs[0].bits = 32;
  slot->inputs[0].ndim = 1;
  slot->inputs[0].shape[0] = 1024;
  slot->inputs[0].arena_offset = static_cast<int64_t>(o.bytes) + 4096;  // out of range
  EXPECT_FALSE(serve::ShmDecodeSlot(arena, slot, &req, &error));
  EXPECT_NE(error.find("outside the arena heap"), std::string::npos);

  slot->inputs[0].ndim = serve::kShmMaxDims + 1;
  EXPECT_FALSE(serve::ShmDecodeSlot(arena, slot, &req, &error));
}

// ---------------------------------------------------------------------------
// End-to-end over the ring, single process
// ---------------------------------------------------------------------------

TEST(ShmServeTest, EndToEndZeroCopyBothDirections) {
  ScopedStrictMode strict;
  vm::ResetFallbackCount();
  serve::InferenceServer server(QuietServerOptions());
  ShmTransport transport(&server, TransportOptions(UniqueShmName("e2e")));
  transport.RegisterModel("chain", MakeChainModel());

  serve::Status st;
  auto client = ShmClient::Connect(transport.arena()->name(), &st);
  ASSERT_NE(client, nullptr) << st.message;

  serve::ShmModelMeta meta;
  ASSERT_TRUE(client->GetModelMeta("chain", &meta));
  ASSERT_EQ(meta.inputs.size(), 1u);
  EXPECT_EQ(meta.inputs[0].name, "data");
  EXPECT_EQ(meta.inputs[0].shape, (std::vector<int64_t>{1, 4, 8, 8}));
  ASSERT_EQ(meta.outputs.size(), 1u);

  for (uint64_t seed = 0; seed < 3; ++seed) {
    NDArray in = client->AllocTensor({1, 4, 8, 8}, DataType::Float32());
    ASSERT_TRUE(in.defined());
    in.CopyFrom(ChainInput(seed));
    std::vector<NDArray> outs;
    serve::InferenceResponse resp_meta;
    serve::Status s = client->Call("chain", {{"data", in}}, &outs,
                                   ShmClient::CallOptions(), &resp_meta);
    ASSERT_TRUE(s.ok()) << s.message;
    ASSERT_EQ(outs.size(), 1u);
    // Response is arena-resident: the graph wrote it straight into the
    // client's slab (no copy on the unbatched path). Checked against the
    // client's own mapping — each attach mmaps the arena at its own base.
    EXPECT_TRUE(client->arena()->Contains(outs[0].Data<char>(),
                                          static_cast<size_t>(outs[0].ByteSize())));
    NDArray expect = SequentialRun(ChainInput(seed));
    ASSERT_EQ(outs[0].NumElements(), expect.NumElements());
    EXPECT_EQ(std::memcmp(outs[0].Data<char>(), expect.Data<char>(),
                          static_cast<size_t>(expect.ByteSize())),
              0)
        << "shm result differs from sequential oracle at seed " << seed;
    EXPECT_EQ(resp_meta.batch_size, 1);
  }
  EXPECT_EQ(client->staged_inputs(), 0) << "arena-resident inputs must not be staged";
  EXPECT_EQ(vm::FallbackCount(), 0) << "strict mode: no silent engine downgrades";

  ShmTransport::Stats ts = transport.stats();
  EXPECT_EQ(ts.received, 3);
  EXPECT_EQ(ts.completed, 3);
  EXPECT_EQ(ts.zero_copy_requests, 3);
  EXPECT_EQ(ts.copied_outputs, 0);
  EXPECT_EQ(ts.bad_descriptors, 0);

  transport.Stop();
  server.Shutdown();
}

TEST(ShmServeTest, HeapInputsAreStagedOnce) {
  ScopedStrictMode strict;
  serve::InferenceServer server(QuietServerOptions());
  ShmTransport transport(&server, TransportOptions(UniqueShmName("stage")));
  transport.RegisterModel("chain", MakeChainModel());
  serve::Status st;
  auto client = ShmClient::Connect(transport.arena()->name(), &st);
  ASSERT_NE(client, nullptr) << st.message;

  NDArray heap_in = ChainInput(11);  // plain heap tensor: convenience path
  std::vector<NDArray> outs;
  serve::Status s = client->Call("chain", {{"data", heap_in}}, &outs);
  ASSERT_TRUE(s.ok()) << s.message;
  EXPECT_EQ(client->staged_inputs(), 1);
  NDArray expect = SequentialRun(ChainInput(11));
  EXPECT_EQ(std::memcmp(outs[0].Data<char>(), expect.Data<char>(),
                        static_cast<size_t>(expect.ByteSize())),
            0);
  transport.Stop();
  server.Shutdown();
}

TEST(ShmServeTest, BatchedRequestsCopiedIntoBoundSlabs) {
  // Ring requests participate in dynamic batching like in-process ones; on
  // the batched path the engine computes into a batched buffer and each row
  // is copied into the client's output slab (the one counted copy).
  ScopedStrictMode strict;
  serve::ServerOptions o = QuietServerOptions();
  o.num_workers = 2;
  o.max_batch = 4;
  o.batch_timeout_ms = 25;
  serve::InferenceServer server(o);
  ShmTransport transport(&server, TransportOptions(UniqueShmName("batch")));
  transport.RegisterModel("chain", MakeChainModel());
  const std::string arena_name = transport.arena()->name();

  // Rounds of 4 simultaneous clients until a batch actually coalesces (the
  // linger makes that near-certain in round one; retry absorbs scheduler
  // noise on loaded CI hosts).
  int max_batch_seen = 1;
  for (int round = 0; round < 5 && max_batch_seen < 2; ++round) {
    std::vector<std::thread> threads;
    std::mutex mu;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t]() {
        serve::Status st;
        auto client = ShmClient::Connect(arena_name, &st);
        ASSERT_NE(client, nullptr) << st.message;
        uint64_t seed = 40 + static_cast<uint64_t>(t);
        NDArray in = client->AllocTensor({1, 4, 8, 8}, DataType::Float32());
        ASSERT_TRUE(in.defined());
        in.CopyFrom(ChainInput(seed));
        std::vector<NDArray> outs;
        serve::InferenceResponse meta;
        serve::Status s = client->Call("chain", {{"data", in}}, &outs,
                                       ShmClient::CallOptions(), &meta);
        ASSERT_TRUE(s.ok()) << s.message;
        NDArray expect = SequentialRun(ChainInput(seed));
        EXPECT_EQ(std::memcmp(outs[0].Data<char>(), expect.Data<char>(),
                              static_cast<size_t>(expect.ByteSize())),
                  0)
            << "batched shm result differs from oracle for thread " << t;
        std::lock_guard<std::mutex> lock(mu);
        max_batch_seen = std::max(max_batch_seen, meta.batch_size);
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_GE(max_batch_seen, 2) << "4 simultaneous clients never coalesced into a batch";
  EXPECT_GT(transport.stats().copied_outputs, 0)
      << "batched responses must be counted as copies, not claimed zero-copy";
  transport.Stop();
  server.Shutdown();
}

TEST(ShmServeTest, UnknownModelIsTypedFault) {
  serve::InferenceServer server(QuietServerOptions());
  ShmTransport transport(&server, TransportOptions(UniqueShmName("unknown")));
  serve::Status st;
  auto client = ShmClient::Connect(transport.arena()->name(), &st);
  ASSERT_NE(client, nullptr) << st.message;
  std::vector<NDArray> outs;
  serve::Status s = client->Call("no_such_model", {}, &outs);
  EXPECT_EQ(s.code, serve::StatusCode::kTransportFault);
  transport.Stop();
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Multi-process: forked clients vs in-process Submit, bitwise
// ---------------------------------------------------------------------------

// Child process body. Exit codes name the failure for the parent's assert.
int RunChildClient(const std::string& arena_name, int child_idx) {
  vm::SetStrictMode(true);
  serve::Status st;
  auto client = ShmClient::Connect(arena_name, &st, /*attach_timeout_ms=*/30000);
  if (client == nullptr) {
    std::fprintf(stderr, "child %d: attach failed: %s\n", child_idx, st.message.c_str());
    return 2;
  }
  // The arena becomes attachable before RegisterModel publishes the model:
  // wait for the directory entry like a real client would.
  serve::ShmModelMeta mm;
  int64_t publish_deadline = serve::ShmMonotonicMs() + 30000;
  while (!client->GetModelMeta("chain", &mm)) {
    if (serve::ShmMonotonicMs() >= publish_deadline) {
      std::fprintf(stderr, "child %d: model never published\n", child_idx);
      return 9;
    }
    usleep(2000);
  }
  for (int r = 0; r < 3; ++r) {
    uint64_t seed = 100 + static_cast<uint64_t>(child_idx) * 10 + static_cast<uint64_t>(r);
    NDArray in = client->AllocTensor({1, 4, 8, 8}, DataType::Float32());
    if (!in.defined()) return 3;
    in.CopyFrom(ChainInput(seed));
    std::vector<NDArray> outs;
    serve::Status s = client->Call("chain", {{"data", in}}, &outs);
    if (!s.ok()) {
      std::fprintf(stderr, "child %d: call failed: %s\n", child_idx, s.message.c_str());
      return 4;
    }
    NDArray expect = SequentialRun(ChainInput(seed));
    if (outs.size() != 1 || outs[0].NumElements() != expect.NumElements()) return 5;
    if (std::memcmp(outs[0].Data<char>(), expect.Data<char>(),
                    static_cast<size_t>(expect.ByteSize())) != 0) {
      std::fprintf(stderr, "child %d: bitwise mismatch at rep %d\n", child_idx, r);
      return 6;
    }
    if (client->staged_inputs() != 0) return 7;
  }
  if (vm::FallbackCount() > 0) return 8;
  return 0;
}

TEST(ShmMultiProcessTest, TwoForkedClientsBitwiseEqualInProcess) {
  const std::string name = UniqueShmName("mp");
  // Fork BEFORE any server threads exist in this test: forking a process with
  // live threads is where fork bugs live. Children retry-attach until the
  // parent's transport has created and initialized the arena.
  std::vector<pid_t> kids;
  for (int c = 0; c < 2; ++c) {
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      _exit(RunChildClient(name, c));
    }
    kids.push_back(pid);
  }

  ScopedStrictMode strict;
  vm::ResetFallbackCount();
  serve::InferenceServer server(QuietServerOptions());
  ShmTransport transport(&server, TransportOptions(name));
  auto model = MakeChainModel();
  transport.RegisterModel("chain", model);

  // In-process oracle through the same server object, interleaved with the
  // children's shm traffic.
  for (uint64_t seed = 100; seed < 106; ++seed) {
    serve::InferenceRequest req;
    req.inputs["data"] = ChainInput(seed);
    serve::InferenceResponse r = server.Submit(model, std::move(req)).get();
    ASSERT_TRUE(r.status.ok()) << r.status.message;
    NDArray expect = SequentialRun(ChainInput(seed));
    EXPECT_EQ(std::memcmp(r.outputs[0].Data<char>(), expect.Data<char>(),
                          static_cast<size_t>(expect.ByteSize())),
              0)
        << "in-process Submit differs from oracle at seed " << seed;
  }

  for (pid_t pid : kids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "forked client failed (see exit-code map)";
  }

  ShmTransport::Stats ts = transport.stats();
  EXPECT_GE(ts.received, 6) << "2 children x 3 calls must all arrive via the ring";
  EXPECT_EQ(ts.bad_descriptors, 0);
  EXPECT_EQ(ts.completed, ts.received);
  EXPECT_EQ(vm::FallbackCount(), 0);

  transport.Stop();
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Backpressure, crash reclamation, fail-points
// ---------------------------------------------------------------------------

TEST(ShmServeTest, RingFullBackpressure) {
  ScopedStrictMode strict;
  serve::InferenceServer server(QuietServerOptions());
  ShmTransport transport(&server, TransportOptions(UniqueShmName("full"), /*slots=*/2));
  transport.RegisterModel("chain", MakeChainModel());
  serve::Status st;
  auto client = ShmClient::Connect(transport.arena()->name(), &st);
  ASSERT_NE(client, nullptr) << st.message;

  // Occupy both ring slots as a live foreign claimant would.
  auto arena = transport.arena();
  for (int i = 0; i < 2; ++i) {
    uint32_t expect = serve::kSlotFree;
    ASSERT_TRUE(arena->slot(i)->state.compare_exchange_strong(expect, serve::kSlotClaimed));
    arena->slot(i)->client_pid = static_cast<uint32_t>(getpid());
    arena->slot(i)->claim_ms = serve::ShmMonotonicMs();
  }

  NDArray in = client->AllocTensor({1, 4, 8, 8}, DataType::Float32());
  in.CopyFrom(ChainInput(1));
  std::vector<NDArray> outs;
  ShmClient::CallOptions copts;
  copts.timeout_ms = 300;
  serve::Status s = client->Call("chain", {{"data", in}}, &outs, copts);
  EXPECT_EQ(s.code, serve::StatusCode::kTransportFault);
  EXPECT_NE(s.message.find("ring full"), std::string::npos) << s.message;

  // Release one slot: the next call must get through.
  arena->slot(0)->gen.fetch_add(1);
  arena->slot(0)->state.store(serve::kSlotFree);
  s = client->Call("chain", {{"data", in}}, &outs);
  EXPECT_TRUE(s.ok()) << s.message;

  arena->slot(1)->gen.fetch_add(1);
  arena->slot(1)->state.store(serve::kSlotFree);
  transport.Stop();
  server.Shutdown();
}

TEST(ShmServeTest, CrashedClientSlotsAndSlabsReclaimed) {
  serve::InferenceServer server(QuietServerOptions());
  ShmTransport::Options topts = TransportOptions(UniqueShmName("crash"));
  topts.reclaim_after_ms = 50;
  ShmTransport transport(&server, topts);
  auto arena = transport.arena();

  // A genuinely dead pid: fork a child that exits immediately, then reap it.
  pid_t dead = fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) _exit(0);
  int ws = 0;
  ASSERT_EQ(waitpid(dead, &ws, 0), dead);

  // Crash scenario 1: client died after its request completed (kSlotDone held,
  // descriptor slabs still allocated). The sweep must free slabs AND slot.
  int64_t in_off = arena->AllocOffset(1024);
  int64_t out_off = arena->AllocOffset(1024);
  ASSERT_GT(in_off, 0);
  ASSERT_GT(out_off, 0);
  serve::ShmRequestSlot* slot = arena->slot(0);
  uint32_t gen_before = slot->gen.load();
  slot->client_pid = static_cast<uint32_t>(dead);
  slot->claim_ms = serve::ShmMonotonicMs() - 10000;
  slot->num_inputs = 1;
  slot->num_outputs = 1;
  std::memset(&slot->inputs[0], 0, sizeof(slot->inputs[0]));
  std::memset(&slot->outputs[0], 0, sizeof(slot->outputs[0]));
  slot->inputs[0].arena_offset = in_off;
  slot->outputs[0].arena_offset = out_off;
  slot->state.store(serve::kSlotDone);

  // Crash scenario 2: died mid-fill (kSlotClaimed). Slot reclaimed, slabs
  // deliberately not touched (descriptor may be half-written).
  serve::ShmRequestSlot* slot2 = arena->slot(1);
  slot2->client_pid = static_cast<uint32_t>(dead);
  slot2->claim_ms = serve::ShmMonotonicMs() - 10000;
  slot2->state.store(serve::kSlotClaimed);

  // The poller also sweeps on its own cadence; either path must converge to
  // both slots free and both slabs returned.
  int64_t deadline = serve::ShmMonotonicMs() + 5000;
  while ((slot->state.load() != serve::kSlotFree || slot2->state.load() != serve::kSlotFree) &&
         serve::ShmMonotonicMs() < deadline) {
    transport.ReclaimCrashedSlots();
    usleep(10000);
  }
  EXPECT_EQ(slot->state.load(), serve::kSlotFree);
  EXPECT_EQ(slot2->state.load(), serve::kSlotFree);
  EXPECT_GT(slot->gen.load(), gen_before) << "reclaim must bump the generation";
  EXPECT_EQ(arena->header()->live_blocks.load(), 0) << "scenario-1 slabs must be freed";
  EXPECT_GE(transport.stats().reclaimed_slots, 2);

  transport.Stop();
  server.Shutdown();
}

TEST(ShmFaultTest, AttachFaultReturnsTypedStatus) {
  serve::InferenceServer server(QuietServerOptions());
  ShmTransport transport(&server, TransportOptions(UniqueShmName("attach")));

  failpoint::Action err;
  err.kind = failpoint::ActionKind::kError;
  failpoint::Arm("serve.shm_attach", err);
  serve::Status st;
  auto client = ShmClient::Connect(transport.arena()->name(), &st);
  EXPECT_EQ(client, nullptr);
  EXPECT_EQ(st.code, serve::StatusCode::kTransportFault);
  failpoint::DisarmAll();

  // Server-side creation hits the same seam.
  failpoint::Arm("serve.shm_attach", err);
  EXPECT_THROW(ShmArena::Create(UniqueShmName("attach2")), failpoint::InjectedFault);
  failpoint::DisarmAll();

  client = ShmClient::Connect(transport.arena()->name(), &st);
  EXPECT_NE(client, nullptr) << "disarmed attach must succeed again";
  transport.Stop();
  server.Shutdown();
}

TEST(ShmFaultTest, RingPushFaultReleasesSlotAndTypes) {
  ScopedStrictMode strict;
  serve::InferenceServer server(QuietServerOptions());
  ShmTransport transport(&server, TransportOptions(UniqueShmName("push"), /*slots=*/4));
  transport.RegisterModel("chain", MakeChainModel());
  serve::Status st;
  auto client = ShmClient::Connect(transport.arena()->name(), &st);
  ASSERT_NE(client, nullptr) << st.message;
  NDArray in = client->AllocTensor({1, 4, 8, 8}, DataType::Float32());
  in.CopyFrom(ChainInput(5));

  failpoint::Action err;
  err.kind = failpoint::ActionKind::kError;
  failpoint::Arm("serve.shm_ring_push", err);
  std::vector<NDArray> outs;
  serve::Status s = client->Call("chain", {{"data", in}}, &outs);
  EXPECT_EQ(s.code, serve::StatusCode::kTransportFault);
  EXPECT_NE(s.message.find("ring push fault"), std::string::npos) << s.message;
  failpoint::DisarmAll();

  // The claimed slot was released on the fault path: every slot free again...
  auto arena = transport.arena();
  for (int i = 0; i < arena->num_slots(); ++i) {
    EXPECT_EQ(arena->slot(i)->state.load(), serve::kSlotFree) << "slot " << i;
  }
  // ...and the ring still works.
  s = client->Call("chain", {{"data", in}}, &outs);
  EXPECT_TRUE(s.ok()) << s.message;
  NDArray expect = SequentialRun(ChainInput(5));
  EXPECT_EQ(std::memcmp(outs[0].Data<char>(), expect.Data<char>(),
                        static_cast<size_t>(expect.ByteSize())),
            0);
  transport.Stop();
  server.Shutdown();
}

TEST(ShmFaultTest, ServerExecutionFailurePropagatesTypedThroughDescriptor) {
  serve::ServerOptions o = QuietServerOptions();
  o.max_retries = 0;
  o.enable_fallback = 0;
  serve::InferenceServer server(o);
  ShmTransport transport(&server, TransportOptions(UniqueShmName("exec")));
  transport.RegisterModel("chain", MakeChainModel());
  serve::Status st;
  auto client = ShmClient::Connect(transport.arena()->name(), &st);
  ASSERT_NE(client, nullptr) << st.message;
  NDArray in = client->AllocTensor({1, 4, 8, 8}, DataType::Float32());
  in.CopyFrom(ChainInput(9));

  failpoint::Action err;
  err.kind = failpoint::ActionKind::kError;
  failpoint::Arm("serve.run", err);
  std::vector<NDArray> outs;
  serve::Status s = client->Call("chain", {{"data", in}}, &outs);
  failpoint::DisarmAll();
  EXPECT_EQ(s.code, serve::StatusCode::kExecutionFailed)
      << "server-side typed status must cross the ring: " << s.message;

  transport.Stop();
  server.Shutdown();
}

}  // namespace
}  // namespace tvmcpp
