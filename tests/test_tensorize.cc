// Tests of the tensorize schedule primitive (Section 4.3): replacing loop nests with
// declared hardware intrinsics, verified against the non-tensorized reference.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/lower/lower.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"

namespace tvmcpp {
namespace {

std::vector<float> RandomData(size_t n, unsigned seed) {
  std::vector<float> v(n);
  unsigned s = seed;
  for (size_t i = 0; i < n; ++i) {
    s = s * 1664525u + 1013904223u;
    v[i] = static_cast<float>((s >> 8) % 100) / 25.0f - 2.0f;
  }
  return v;
}

BufferBinding Bind(std::vector<float>& v) {
  return BufferBinding{v.data(), DataType::Float32(), static_cast<int64_t>(v.size())};
}

// Declares the paper's 8x8 GEMM tensor intrinsic (Section 4.3 listing).
TensorIntrinPtr DeclGemm8x8() {
  Tensor w = placeholder({make_int(8), make_int(8)}, DataType::Float32(), "w");
  Tensor x = placeholder({make_int(8), make_int(8)}, DataType::Float32(), "x");
  IterVar k = reduce_axis(Range(make_int(0), make_int(8)), "k");
  Tensor y = compute({make_int(8), make_int(8)},
                     [&](const std::vector<Var>& i) {
                       return sum(w({i[0], k->var}) * x({k->var, i[1]}), {k});
                     },
                     "gemm8x8");
  return decl_tensor_intrin(y, kGemmIntrin, kFillZeroIntrin, kGemmIntrin);
}

TEST(Tensorize, Gemm8x8Matmul) {
  const int m = 32, n = 24, k = 16;
  Tensor A = placeholder({make_int(m), make_int(k)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(k), make_int(n)}, DataType::Float32(), "B");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(k)), "rk");
  Tensor C = compute({make_int(m), make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({i[0], rk->var}) * B({rk->var, i[1]}), {rk});
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage sc = (*s)[C];
  IterVar yo, xo, yi, xi, ko, ki;
  sc->tile(sc->leaf_iter_vars[0], sc->leaf_iter_vars[1], 8, 8, &yo, &xo, &yi, &xi);
  sc->split(sc->leaf_iter_vars[4], 8, &ko, &ki);
  sc->reorder({yo, xo, ko, yi, xi, ki});
  sc->tensorize(yi, DeclGemm8x8());

  LoweredFunc f = Lower(s, {A, B, C}, "mm_tensorized");
  std::string text = ToString(f.body);
  EXPECT_NE(text.find(kGemmIntrin), std::string::npos) << text;
  EXPECT_NE(text.find(kFillZeroIntrin), std::string::npos) << text;
  // The tensorized loops must be gone.
  EXPECT_EQ(text.find("yi"), std::string::npos);

  std::vector<float> a = RandomData(static_cast<size_t>(m * k), 31);
  std::vector<float> b = RandomData(static_cast<size_t>(k * n), 32);
  std::vector<float> c(static_cast<size_t>(m * n), -3);
  RunLowered(f, {Bind(a), Bind(b), Bind(c)});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float ref = 0;
      for (int kk = 0; kk < k; ++kk) {
        ref += a[static_cast<size_t>(i * k + kk)] * b[static_cast<size_t>(kk * n + j)];
      }
      ASSERT_NEAR(c[static_cast<size_t>(i * n + j)], ref, 1e-2) << i << "," << j;
    }
  }
}

// The full Figure 5 flow: tiling + cache on accelerator special buffers + tensorize.
TEST(Tensorize, Figure5AcceleratorSchedule) {
  const int n = 64;
  Tensor A = placeholder({make_int(n), make_int(n)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(n), make_int(n)}, DataType::Float32(), "B");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(n)), "rk");
  // Transposed matmul as in the paper: C[y, x] = sum_k A[k, y] * B[k, x].
  Tensor C = compute({make_int(n), make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({rk->var, i[0]}) * B({rk->var, i[1]}), {rk});
                     },
                     "C");
  Schedule s = create_schedule({C});
  Tensor CL = s->cache_write(C, "vdla.acc_buffer");

  // Schedule the copy-out stage: tile by 8x8.
  Stage scc = (*s)[C];
  IterVar cyo, cxo, cyi, cxi;
  scc->tile(scc->leaf_iter_vars[0], scc->leaf_iter_vars[1], 8, 8, &cyo, &cxo, &cyi, &cxi);
  (*s)[CL]->compute_at(scc, cxo);

  Stage scl = (*s)[CL];
  IterVar ko, ki;
  scl->split(scl->leaf_iter_vars[2], 8, &ko, &ki);

  Tensor AL = s->cache_read(A, "vdla.inp_buffer", {CL.op()});
  Tensor BL = s->cache_read(B, "vdla.wgt_buffer", {CL.op()});
  (*s)[AL]->compute_at(scl, ko);
  (*s)[BL]->compute_at(scl, ko);

  // Declare the transposed-gemm intrinsic matching CL's inner 8x8x8 computation.
  Tensor w = placeholder({make_int(8), make_int(8)}, DataType::Float32(), "w");
  Tensor x = placeholder({make_int(8), make_int(8)}, DataType::Float32(), "x");
  IterVar k8 = reduce_axis(Range(make_int(0), make_int(8)), "k");
  Tensor y = compute({make_int(8), make_int(8)},
                     [&](const std::vector<Var>& i) {
                       return sum(w({k8->var, i[0]}) * x({k8->var, i[1]}), {k8});
                     },
                     "gemm8x8t");
  scl->tensorize(scl->leaf_iter_vars[3], decl_tensor_intrin(y, kGemmIntrin, kFillZeroIntrin,
                                                            kGemmIntrin));

  LoweredFunc f = Lower(s, {A, B, C}, "fig5");
  std::string text = ToString(f.body);
  EXPECT_NE(text.find("vdla.acc_buffer"), std::string::npos);
  EXPECT_NE(text.find("vdla.inp_buffer"), std::string::npos);
  EXPECT_NE(text.find(kGemmIntrin), std::string::npos);

  std::vector<float> a = RandomData(static_cast<size_t>(n * n), 41);
  std::vector<float> b = RandomData(static_cast<size_t>(n * n), 42);
  std::vector<float> c(static_cast<size_t>(n * n), -3);
  RunLowered(f, {Bind(a), Bind(b), Bind(c)});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      float ref = 0;
      for (int kk = 0; kk < n; ++kk) {
        ref += a[static_cast<size_t>(kk * n + i)] * b[static_cast<size_t>(kk * n + j)];
      }
      ASSERT_NEAR(c[static_cast<size_t>(i * n + j)], ref, 5e-2) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace tvmcpp
