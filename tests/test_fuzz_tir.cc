// Property-based three-tier differential fuzzer (ISSUE 8): a seeded generator
// produces random TIR loop nests — mixed dtypes (f32/f16/i8/i32), serial /
// unrolled / vectorized / parallel loops, padding guards, floormod-clamped
// gather indices, wrap-casts bounding int products, expression lets, lazy
// conditionals, and CSR-style indirect addressing (gathers and scatters through
// a runtime i32 index buffer, in serial and vectorized loop bodies) — and every
// program runs on the reference interpreter, the bytecode VM, and the AOT
// native kernel. All three buffers must be *bitwise* identical.
//
// Determinism: TVMCPP_FUZZ_SEED picks the corpus (default pinned, so ctest runs
// the same programs every time); TVMCPP_FUZZ_CASES its size (default 200; the
// nightly CI depth job raises it). Every native kernel in the corpus compiles as
// ONE translation unit / one compiler invocation, so the suite pays process
// spawn + compile once, not per case.
//
// On a mismatch the built-in reducer shrinks the failing case — loop extents to
// 2, guards dropped, loop types serialized, the stored expression replaced by
// its subexpressions — while it still fails, then prints the minimal TIR with
// the seed and case index so the failure reproduces from the log alone.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/codegen/codegen.h"
#include "src/codegen/native.h"
#include "src/interp/interp.h"
#include "src/ir/expr.h"
#include "src/ir/printer.h"
#include "src/ir/stmt.h"
#include "src/lower/lower.h"
#include "src/support/float16.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64): stable across platforms and libc versions.
// ---------------------------------------------------------------------------

struct SplitMix64 {
  uint64_t state;
  explicit SplitMix64(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  int64_t Range(int64_t lo, int64_t hi) {  // inclusive bounds
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }
  double Real() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }
  bool Chance(double p) { return Real() < p; }
};

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
}

// ---------------------------------------------------------------------------
// Case representation: kept symbolic so the reducer can mutate and rebuild.
// ---------------------------------------------------------------------------

struct CaseSpec {
  DataType dtype;
  std::vector<int64_t> extents;
  std::vector<ForType> for_types;
  std::vector<Var> loop_vars;
  std::vector<Var> input_vars;  // handle vars, one per input buffer
  Var out_var;
  // Optional runtime i32 index buffer (the CSR-shaped indirection: data reached
  // through indices loaded at run time, like indptr/indices drive sparse_dense).
  // idx_elems == 0 means the case has no index buffer.
  Var idx_var;
  int64_t idx_elems = 0;
  bool indirect_store = false;  // scatter: out index read from the index buffer
  int64_t in_elems = 0;
  int64_t out_elems = 0;
  Expr value;  // stored expression over loop_vars / loads of input_vars
  Expr guard;  // optional store guard; null = unguarded
};

Expr FlatIndex(const CaseSpec& spec) {
  Expr flat = spec.loop_vars[0];
  for (size_t j = 1; j < spec.loop_vars.size(); ++j) {
    flat = flat * spec.extents[j] + Expr(spec.loop_vars[j]);
  }
  return flat;
}

LoweredFunc BuildCase(const CaseSpec& spec, const std::string& name) {
  Expr flat = FlatIndex(spec);
  Expr out_idx = flat;
  if (spec.indirect_store) {
    // Scatter through the runtime index buffer, floormod-clamped into bounds.
    // Colliding destinations are fine: all three tiers execute the (serial)
    // iteration space in the same order, so last-write-wins is deterministic.
    out_idx = load(DataType::Int32(), spec.idx_var, flat % spec.idx_elems) %
              spec.out_elems;
  }
  Stmt st = store(spec.out_var, spec.value, out_idx);
  if (spec.guard != nullptr) {
    st = if_then_else_stmt(spec.guard, st);
  }
  for (size_t j = spec.loop_vars.size(); j-- > 0;) {
    st = for_stmt(spec.loop_vars[j], make_int(0), make_int(spec.extents[j]), st,
                  spec.for_types[j]);
  }
  LoweredFunc f;
  f.name = name;
  for (size_t j = 0; j < spec.input_vars.size(); ++j) {
    f.args.push_back(BufferArg{spec.input_vars[j], spec.dtype, {spec.in_elems},
                               "In" + std::to_string(j)});
  }
  if (spec.idx_elems > 0) {
    f.args.push_back(
        BufferArg{spec.idx_var, DataType::Int32(), {spec.idx_elems}, "Idx"});
  }
  f.args.push_back(BufferArg{spec.out_var, spec.dtype, {spec.out_elems}, "Out"});
  f.body = st;
  return f;
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

class CaseGen {
 public:
  CaseGen(SplitMix64* rng, bool allow_let) : rng_(rng), allow_let_(allow_let) {}

  CaseSpec Gen() {
    CaseSpec s;
    const int dtype_pick = static_cast<int>(rng_->Range(0, 3));
    s.dtype = dtype_pick == 0   ? DataType::Float32()
              : dtype_pick == 1 ? DataType::Float16()
              : dtype_pick == 2 ? DataType::Int8()
                                : DataType::Int32();
    const int dims = static_cast<int>(rng_->Range(1, 3));
    s.out_elems = 1;
    for (int j = 0; j < dims; ++j) {
      s.extents.push_back(rng_->Range(2, 6));
      s.out_elems *= s.extents.back();
      s.loop_vars.push_back(make_var("i" + std::to_string(j)));
      ForType ft = ForType::kSerial;
      if (j == dims - 1 && rng_->Chance(0.3)) {
        ft = ForType::kVectorized;
      } else if (j == 0 && dims > 1 && rng_->Chance(0.25)) {
        ft = rng_->Chance(0.5) ? ForType::kParallel : ForType::kUnrolled;
      }
      s.for_types.push_back(ft);
    }
    // Vector lets are interpretable but outside the VM's vector compiler; the
    // fuzzer pins the three-tier intersection, so lets are scalar-loop only.
    vectorized_ = s.for_types.back() == ForType::kVectorized;
    const int num_inputs = static_cast<int>(rng_->Range(1, 2));
    s.in_elems = s.out_elems + rng_->Range(0, 3);
    for (int j = 0; j < num_inputs; ++j) {
      s.input_vars.push_back(
          make_var("In" + std::to_string(j), DataType::Handle()));
    }
    s.out_var = make_var("Out", DataType::Handle());
    // CSR-shaped indirection: ~40% of cases get a runtime i32 index buffer and
    // may gather through it (serial and vectorized forms alike); serial cases
    // may also scatter their store through it.
    if (rng_->Chance(0.4)) {
      s.idx_elems = rng_->Range(2, 8);
      s.idx_var = make_var("Idx", DataType::Handle());
      s.indirect_store = !vectorized_ && rng_->Chance(0.4);
    }
    spec_ = &s;
    s.value = cast(s.dtype, GenValue(3));
    if (rng_->Chance(0.3)) {
      // Store guard over a loop var: with a vectorized innermost loop this is
      // the predicated-tail shape, lanes masked off must stay unevaluated.
      const size_t j = static_cast<size_t>(
          rng_->Range(0, static_cast<int64_t>(s.loop_vars.size()) - 1));
      s.guard = lt(Expr(s.loop_vars[j]), make_int(s.extents[j] - 1));
    }
    spec_ = nullptr;
    return s;
  }

 private:
  Expr Const() {
    if (spec_->dtype.is_float()) {
      return make_const(spec_->dtype, rng_->Real() * 2.0 - 1.0);
    }
    return make_const(spec_->dtype, rng_->Range(-5, 5));
  }

  // Affine-in-loop-vars index, floormod-clamped into [0, elems).
  Expr AffineIndex(int64_t elems) {
    Expr idx = make_int(rng_->Range(0, elems - 1));
    for (const Var& v : spec_->loop_vars) {
      const int64_t c = rng_->Range(0, 3);
      if (c != 0) {
        idx = idx + Expr(v) * c;
      }
    }
    return idx % elems;
  }

  // floormod-clamped gather index: always lands in [0, in_elems). When the case
  // carries a runtime index buffer, half the loads go through it — the
  // CSR-shaped double hop load(data, load(idx_buf, affine) % bound) that
  // sparse_dense lowers to, in both serial and vectorized loop bodies.
  Expr LoadLeaf() {
    Expr idx;
    if (spec_->idx_elems > 0 && rng_->Chance(0.5)) {
      idx = load(DataType::Int32(), spec_->idx_var, AffineIndex(spec_->idx_elems)) %
            spec_->in_elems;
    } else {
      idx = AffineIndex(spec_->in_elems);
    }
    const size_t buf = static_cast<size_t>(
        rng_->Range(0, static_cast<int64_t>(spec_->input_vars.size()) - 1));
    return load(spec_->dtype, spec_->input_vars[buf], idx);
  }

  Expr Leaf() {
    switch (rng_->Range(0, 3)) {
      case 0:
        return Const();
      case 1: {
        const size_t j = static_cast<size_t>(
            rng_->Range(0, static_cast<int64_t>(spec_->loop_vars.size()) - 1));
        return cast(spec_->dtype, spec_->loop_vars[j]);
      }
      default:
        return LoadLeaf();
    }
  }

  // Bounds magnitudes so int64 intermediates never overflow (signed overflow is
  // UB in the emitted C): every int product is immediately wrapped back into the
  // storage dtype, mirroring the interpreter's cast rule bit for bit.
  Expr WrapMul(Expr a, Expr b) {
    Expr m = mul(std::move(a), std::move(b));
    if (!spec_->dtype.is_float()) {
      m = cast(spec_->dtype, m);
    }
    return m;
  }

  Expr GenValue(int depth) {
    if (depth <= 0) {
      return Leaf();
    }
    const bool is_float = spec_->dtype.is_float();
    switch (rng_->Range(0, 7)) {
      case 0:
        return add(GenValue(depth - 1), GenValue(depth - 1));
      case 1:
        return sub(GenValue(depth - 1), GenValue(depth - 1));
      case 2:
        return WrapMul(GenValue(depth - 1), GenValue(depth - 1));
      case 3:
        return rng_->Chance(0.5) ? min(GenValue(depth - 1), GenValue(depth - 1))
                                 : max(GenValue(depth - 1), GenValue(depth - 1));
      case 4: {
        Expr cond = lt(GenValue(depth - 1), Const());
        Expr t = GenValue(depth - 1);
        Expr f = GenValue(depth - 1);
        // Both forms are lazy on the untaken arm in all three tiers.
        return rng_->Chance(0.5) ? select(cond, t, f) : if_then_else(cond, t, f);
      }
      case 5: {
        if (is_float) {
          // exp-family only, argument clamped: keeps results finite so the
          // comparison pins real arithmetic, not Inf/NaN propagation trivia.
          Expr x = max(min(GenValue(depth - 1), make_const(spec_->dtype, 3.0)),
                       make_const(spec_->dtype, -3.0));
          switch (rng_->Range(0, 2)) {
            case 0:
              return exp(x);
            case 1:
              return tanh(x);
            default:
              return sigmoid(x);
          }
        }
        // Integer floor div / mod by a constant nonzero divisor.
        Expr a = GenValue(depth - 1);
        int64_t d = rng_->Range(1, 4) * (rng_->Chance(0.5) ? 1 : -1);
        return rng_->Chance(0.5) ? div(a, make_const(spec_->dtype, d))
                                 : mod(a, make_const(spec_->dtype, d));
      }
      case 6: {
        if (allow_let_ && !vectorized_) {
          Var x = make_var("t" + std::to_string(let_counter_++), spec_->dtype);
          Expr bound = GenValue(depth - 1);
          Expr body = rng_->Chance(0.5) ? add(Expr(x), GenValue(depth - 1))
                                        : WrapMul(Expr(x), Expr(x));
          return let(x, bound, body);
        }
        // Padding-guard shape: an out-of-range read lazily replaced by zero.
        const size_t j = static_cast<size_t>(
            rng_->Range(0, static_cast<int64_t>(spec_->loop_vars.size()) - 1));
        return if_then_else(
            lt(Expr(spec_->loop_vars[j]) + rng_->Range(0, 2),
               make_int(spec_->extents[j])),
            LoadLeaf(), make_const(spec_->dtype, 0));
      }
      default:
        return Leaf();
    }
  }

  SplitMix64* rng_;
  bool allow_let_;
  bool vectorized_ = false;
  CaseSpec* spec_ = nullptr;
  int let_counter_ = 0;
};

// ---------------------------------------------------------------------------
// Three-tier execution and comparison
// ---------------------------------------------------------------------------

struct HostBuf {
  std::vector<char> bytes;
  DataType dtype;
  int64_t elems = 0;
  BufferBinding Bind() { return BufferBinding{bytes.data(), dtype, elems}; }
};

HostBuf FillBuf(int64_t elems, DataType dtype, SplitMix64* rng) {
  HostBuf b;
  b.dtype = dtype;
  b.elems = elems;
  b.bytes.assign(static_cast<size_t>(elems * InterpElementBytes(dtype)), 0);
  if (dtype.is_float()) {
    float* p = reinterpret_cast<float*>(b.bytes.data());
    for (int64_t i = 0; i < elems; ++i) {
      float v = static_cast<float>(rng->Real() * 2.0 - 1.0);
      p[i] = dtype.bits() == 16 ? QuantizeFloat16(v) : v;
    }
  } else if (InterpElementBytes(dtype) == 1) {
    int8_t* p = reinterpret_cast<int8_t*>(b.bytes.data());
    for (int64_t i = 0; i < elems; ++i) {
      p[i] = static_cast<int8_t>(rng->Range(-5, 5));
    }
  } else {
    int32_t* p = reinterpret_cast<int32_t*>(b.bytes.data());
    for (int64_t i = 0; i < elems; ++i) {
      p[i] = static_cast<int32_t>(rng->Range(-50, 50));
    }
  }
  return b;
}

std::vector<HostBuf> CaseBuffers(const CaseSpec& spec, uint64_t fill_seed) {
  SplitMix64 rng(fill_seed);
  std::vector<HostBuf> bufs;
  for (size_t j = 0; j < spec.input_vars.size(); ++j) {
    bufs.push_back(FillBuf(spec.in_elems, spec.dtype, &rng));
  }
  if (spec.idx_elems > 0) {
    // Random int32 incl. negatives: every consumer floormods the loaded value
    // into bounds, and that clamping is part of what the corpus pins.
    bufs.push_back(FillBuf(spec.idx_elems, DataType::Int32(), &rng));
  }
  bufs.push_back(FillBuf(spec.out_elems, spec.dtype, &rng));
  return bufs;
}

// Runs one case through interp / VM / native and compares bitwise.
// `why` gets a one-line diagnosis; returns false on any divergence or when a
// compiled tier rejects the program (the generator must stay inside the
// three-tier intersection — a compile regression is a finding, not a skip).
bool CaseAgrees(const CaseSpec& spec, const LoweredFunc& f,
                const codegen::NativeKernel& precompiled, uint64_t fill_seed,
                std::string* why) {
  std::shared_ptr<const vm::Program> prog =
      vm::CompileToProgram(f, LoopSpecializeOptions{});
  if (prog == nullptr) {
    *why = "VM rejected the program";
    return false;
  }
  codegen::NativeKernel native = precompiled;
  if (!native) {
    native = codegen::CompileNativeKernel(f, LoopSpecializeOptions{});
  }
  if (!native) {
    *why = "native tier rejected the program";
    return false;
  }
  std::vector<HostBuf> interp_bufs = CaseBuffers(spec, fill_seed);
  std::vector<HostBuf> vm_bufs = interp_bufs;
  std::vector<HostBuf> native_bufs = interp_bufs;
  std::vector<BufferBinding> ib, vb, nb;
  for (size_t j = 0; j < interp_bufs.size(); ++j) {
    ib.push_back(interp_bufs[j].Bind());
    vb.push_back(vm_bufs[j].Bind());
    nb.push_back(native_bufs[j].Bind());
  }
  RunLoweredInterp(f, ib);
  vm::ExecOptions serial;
  serial.num_threads = 1;
  vm::Run(*prog, vb, serial);
  codegen::RunNativeKernel(native, nb);
  for (size_t j = 0; j < interp_bufs.size(); ++j) {
    if (std::memcmp(interp_bufs[j].bytes.data(), vm_bufs[j].bytes.data(),
                    interp_bufs[j].bytes.size()) != 0) {
      *why = "interp vs VM mismatch on buffer " + std::to_string(j);
      return false;
    }
    if (std::memcmp(interp_bufs[j].bytes.data(), native_bufs[j].bytes.data(),
                    interp_bufs[j].bytes.size()) != 0) {
      *why = "interp vs native mismatch on buffer " + std::to_string(j);
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Reducer: shrink a failing case while it still fails, then report minimal TIR.
// ---------------------------------------------------------------------------

// Immediate structural children of an expression that could stand in for it.
std::vector<Expr> SubExprs(const Expr& e) {
  std::vector<Expr> out;
  if (auto* b = dynamic_cast<const BinaryNode*>(e.get())) {
    out.push_back(b->a);
    out.push_back(b->b);
  } else if (auto* s = dynamic_cast<const SelectNode*>(e.get())) {
    out.push_back(s->true_value);
    out.push_back(s->false_value);
  } else if (auto* c = dynamic_cast<const CallNode*>(e.get())) {
    for (const Expr& a : c->args) {
      out.push_back(a);
    }
  } else if (auto* l = dynamic_cast<const LetNode*>(e.get())) {
    out.push_back(l->value);
  } else if (auto* c = dynamic_cast<const CastNode*>(e.get())) {
    out.push_back(c->value);
  } else if (auto* ld = dynamic_cast<const LoadNode*>(e.get())) {
    // Indirect -> direct shrink for gathers: replacing a load by its index
    // expression peels one level of indirection per reduction round.
    out.push_back(ld->index);
  }
  return out;
}

bool SpecFails(const CaseSpec& spec, uint64_t fill_seed, std::string* why) {
  LoweredFunc f = BuildCase(spec, "fuzz_reduce");
  return !CaseAgrees(spec, f, codegen::NativeKernel{}, fill_seed, why);
}

CaseSpec Reduce(CaseSpec spec, uint64_t fill_seed) {
  std::string why;
  bool changed = true;
  int budget = 200;  // hard cap: reduction must terminate even on flaky failures
  while (changed && budget-- > 0) {
    changed = false;
    for (size_t j = 0; j < spec.extents.size(); ++j) {
      if (spec.extents[j] > 2) {
        CaseSpec t = spec;
        t.extents[j] = 2;
        if (SpecFails(t, fill_seed, &why)) {
          spec = t;
          changed = true;
        }
      }
    }
    if (spec.guard != nullptr) {
      CaseSpec t = spec;
      t.guard = nullptr;
      if (SpecFails(t, fill_seed, &why)) {
        spec = t;
        changed = true;
      }
    }
    if (spec.indirect_store) {
      // Indirect -> direct: drop the scatter, keep everything else.
      CaseSpec t = spec;
      t.indirect_store = false;
      if (SpecFails(t, fill_seed, &why)) {
        spec = t;
        changed = true;
      }
    }
    for (size_t j = 0; j < spec.for_types.size(); ++j) {
      if (spec.for_types[j] != ForType::kSerial) {
        CaseSpec t = spec;
        t.for_types[j] = ForType::kSerial;
        if (SpecFails(t, fill_seed, &why)) {
          spec = t;
          changed = true;
        }
      }
    }
    for (const Expr& sub : SubExprs(spec.value)) {
      CaseSpec t = spec;
      t.value = sub->dtype == spec.dtype ? sub : cast(spec.dtype, sub);
      if (SpecFails(t, fill_seed, &why)) {
        spec = t;
        changed = true;
        break;  // restart from the new, smaller value
      }
    }
  }
  return spec;
}

// ---------------------------------------------------------------------------
// The suite
// ---------------------------------------------------------------------------

TEST(FuzzTir, ThreeTierBitwiseDifferential) {
  const uint64_t seed = EnvU64("TVMCPP_FUZZ_SEED", 20260807ULL);
  const int cases = static_cast<int>(EnvU64("TVMCPP_FUZZ_CASES", 200));

  // Generate the whole corpus first so every native kernel compiles as one
  // translation unit (one compiler invocation for all `cases` programs).
  std::vector<CaseSpec> specs;
  std::vector<LoweredFunc> funcs;
  specs.reserve(static_cast<size_t>(cases));
  funcs.reserve(static_cast<size_t>(cases));
  for (int i = 0; i < cases; ++i) {
    SplitMix64 rng(seed + static_cast<uint64_t>(i));
    CaseGen gen(&rng, /*allow_let=*/true);
    specs.push_back(gen.Gen());
    funcs.push_back(BuildCase(specs.back(), "fuzz_" + std::to_string(i)));
  }
  std::vector<const LoweredFunc*> func_ptrs;
  for (const LoweredFunc& f : funcs) {
    func_ptrs.push_back(&f);
  }
  codegen::ResetNativeStats();
  std::vector<codegen::NativeKernel> kernels =
      codegen::CompileNativeKernels(func_ptrs, LoopSpecializeOptions{});
  ASSERT_EQ(kernels.size(), funcs.size());
  codegen::NativeStats stats = codegen::GetNativeStats();
  EXPECT_EQ(stats.emit_failures, 0)
      << "the generator strayed outside the emitter's supported construct set";
  EXPECT_LE(stats.compiles, 1) << "the corpus must batch into one module";

  int failures = 0;
  for (int i = 0; i < cases; ++i) {
    const uint64_t fill_seed = seed ^ (0x51ED270B0A1ULL * (static_cast<uint64_t>(i) + 1));
    std::string why;
    if (CaseAgrees(specs[static_cast<size_t>(i)], funcs[static_cast<size_t>(i)],
                   kernels[static_cast<size_t>(i)], fill_seed, &why)) {
      continue;
    }
    ++failures;
    CaseSpec reduced = Reduce(specs[static_cast<size_t>(i)], fill_seed);
    std::string reduced_why;
    SpecFails(reduced, fill_seed, &reduced_why);
    LoweredFunc rf = BuildCase(reduced, "fuzz_reduced_" + std::to_string(i));
    ADD_FAILURE() << "fuzz case " << i << " (TVMCPP_FUZZ_SEED=" << seed
                  << "): " << why << "\nreduced (" << reduced_why
                  << "), dtype=" << reduced.dtype.bits()
                  << (reduced.dtype.is_float() ? "-bit float" : "-bit int")
                  << ", minimal TIR:\n"
                  << ToString(rf.body);
    if (failures >= 5) {
      GTEST_FAIL() << "stopping after 5 reduced failures; rerun with "
                      "TVMCPP_FUZZ_SEED="
                   << seed << " to reproduce the rest";
    }
  }
  EXPECT_EQ(failures, 0) << failures << " of " << cases
                         << " fuzz cases diverged (seed " << seed << ")";
}

// The generator itself must be deterministic: the same seed yields the same
// program text (the differential above is meaningless if CI and a local repro
// see different corpora for one seed).
TEST(FuzzTir, GeneratorIsDeterministic) {
  for (uint64_t seed : {1ULL, 42ULL, 20260807ULL}) {
    SplitMix64 r1(seed), r2(seed);
    CaseGen g1(&r1, true), g2(&r2, true);
    LoweredFunc f1 = BuildCase(g1.Gen(), "det");
    LoweredFunc f2 = BuildCase(g2.Gen(), "det");
    EXPECT_EQ(ToString(f1.body), ToString(f2.body)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tvmcpp
