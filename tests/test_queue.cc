// Direct unit coverage for serve::BoundedQueue — previously exercised only
// indirectly through test_serve.cc. Covers: Close() while a producer is blocked in
// Push, multi-producer/multi-consumer stress with a TryPop drain, FIFO order
// preservation, and the dynamic-batching extensions (DrainMatching, push_seq /
// WaitPush linger signaling).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "src/serve/queue.h"

namespace tvmcpp {
namespace {

using serve::BoundedQueue;

TEST(BoundedQueue, FifoOrderSingleProducerSingleConsumer) {
  BoundedQueue<int> q(128);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.Push(i));
  }
  int v = -1;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i) << "FIFO order violated";
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, CloseWakesProducerBlockedInPush) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(0));  // queue now full
  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    push_result = q.Push(1);  // blocks: full
    push_returned = true;
  });
  // The producer must actually be blocked, not spinning past a full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(push_returned.load());
  EXPECT_EQ(q.size(), 1u);
  q.Close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_FALSE(push_result.load()) << "Push into a closed queue must fail";
  // The entry accepted before Close stays drainable.
  int v = -1;
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 0);
  EXPECT_FALSE(q.TryPop(&v));
}

TEST(BoundedQueue, MultiProducerSingleConsumerPreservesPerProducerOrder) {
  const int kProducers = 4;
  const int kPerProducer = 200;
  BoundedQueue<int> q(8);  // small capacity: producers hit backpressure
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * 100000 + i));
      }
    });
  }
  std::vector<int> next(static_cast<size_t>(kProducers), 0);
  for (int n = 0; n < kProducers * kPerProducer; ++n) {
    int v = -1;
    ASSERT_TRUE(q.Pop(&v));
    int p = v / 100000;
    int i = v % 100000;
    // Items from one producer must arrive in the order that producer pushed them.
    EXPECT_EQ(i, next[static_cast<size_t>(p)]) << "producer " << p;
    next[static_cast<size_t>(p)] = i + 1;
  }
  for (std::thread& t : producers) {
    t.join();
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, MpmcStressExactlyOnceWithTryPopDrain) {
  const int kProducers = 4;
  const int kConsumers = 3;
  const int kPerProducer = 250;
  const int kTotal = kProducers * kPerProducer;
  BoundedQueue<int> q(16);
  std::vector<std::atomic<int>> seen(static_cast<size_t>(kTotal));
  for (auto& s : seen) {
    s = 0;
  }
  std::vector<std::thread> producers, consumers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int v = -1;
      while (q.Pop(&v)) {  // returns false only when closed AND drained
        seen[static_cast<size_t>(v)].fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  q.Close();
  for (std::thread& t : consumers) {
    t.join();
  }
  // Consumers exited only at closed-and-drained; a TryPop drain finds nothing.
  int v = -1;
  EXPECT_FALSE(q.TryPop(&v));
  for (int i = 0; i < kTotal; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(BoundedQueue, DrainMatchingSelectsInOrderAndPreservesRest) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.Push(i));
  }
  std::vector<int> evens;
  // Cap of 3: only the first three matches are taken, scan is front-to-back.
  EXPECT_EQ(q.DrainMatching([](int v) { return v % 2 == 0; }, 3, &evens), 3u);
  EXPECT_EQ(evens, (std::vector<int>{0, 2, 4}));
  // The rest keep their relative FIFO order.
  std::vector<int> rest;
  int v = -1;
  while (q.TryPop(&v)) {
    rest.push_back(v);
  }
  EXPECT_EQ(rest, (std::vector<int>{1, 3, 5, 6, 7, 8, 9}));
}

TEST(BoundedQueue, DrainMatchingFreesCapacityForBlockedProducer) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(3));  // blocks: full
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load());
  std::vector<int> out;
  EXPECT_EQ(q.DrainMatching([](int v) { return v == 1; }, 8, &out), 1u);
  producer.join();  // DrainMatching's not_full notification unblocked the push
  EXPECT_TRUE(pushed.load());
  std::vector<int> rest;
  int v = -1;
  while (q.TryPop(&v)) {
    rest.push_back(v);
  }
  EXPECT_EQ(rest, (std::vector<int>{2, 3}));
}

TEST(BoundedQueue, WaitPushSignalsTimesOutAndWakesOnClose) {
  BoundedQueue<int> q(4);
  // Timeout with no push: returns false.
  uint64_t seen = q.push_seq();
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(
      q.WaitPush(seen, t0 + std::chrono::milliseconds(30)));
  // A push between snapshot and wait returns immediately with true (no lost wakeup).
  seen = q.push_seq();
  ASSERT_TRUE(q.Push(1));
  EXPECT_TRUE(q.WaitPush(
      seen, std::chrono::steady_clock::now() + std::chrono::hours(1)));
  // A concurrent push wakes the waiter.
  seen = q.push_seq();
  int drained = 0;
  ASSERT_TRUE(q.TryPop(&drained));
  std::thread pusher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(q.Push(2));
  });
  EXPECT_TRUE(q.WaitPush(
      seen, std::chrono::steady_clock::now() + std::chrono::seconds(10)));
  pusher.join();
  // Close wakes a waiter with no push: returns false.
  seen = q.push_seq();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Close();
  });
  EXPECT_FALSE(q.WaitPush(
      seen, std::chrono::steady_clock::now() + std::chrono::seconds(10)));
  closer.join();
}

}  // namespace
}  // namespace tvmcpp
