// End-to-end tests of the lowering pipeline on small kernels: lower a schedule, run the
// interpreter, and compare against naive reference implementations.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/lower/lower.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"

namespace tvmcpp {
namespace {

std::vector<float> RandomData(size_t n, unsigned seed) {
  std::vector<float> v(n);
  unsigned s = seed;
  for (size_t i = 0; i < n; ++i) {
    s = s * 1664525u + 1013904223u;
    v[i] = static_cast<float>((s >> 8) % 1000) / 250.0f - 2.0f;
  }
  return v;
}

BufferBinding Bind(std::vector<float>& v) {
  return BufferBinding{v.data(), DataType::Float32(), static_cast<int64_t>(v.size())};
}

TEST(LowerBasic, ElementwiseAdd) {
  const int n = 64;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(n)}, DataType::Float32(), "B");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return A({i[0]}) + B({i[0]});
                     },
                     "C");
  Schedule s = create_schedule({C});
  LoweredFunc f = Lower(s, {A, B, C}, "vadd");

  std::vector<float> a = RandomData(n, 1), b = RandomData(n, 2), c(n, 0);
  RunLowered(f, {Bind(a), Bind(b), Bind(c)});
  for (int i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(c[i], a[i] + b[i]) << "at " << i;
  }
}

TEST(LowerBasic, MatmulNaive) {
  const int m = 8, n = 12, k = 10;
  Tensor A = placeholder({make_int(m), make_int(k)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(k), make_int(n)}, DataType::Float32(), "B");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(k)), "rk");
  Tensor C = compute({make_int(m), make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({i[0], rk->var}) * B({rk->var, i[1]}), {rk});
                     },
                     "C");
  Schedule s = create_schedule({C});
  LoweredFunc f = Lower(s, {A, B, C}, "matmul");

  std::vector<float> a = RandomData(m * k, 3), b = RandomData(k * n, 4), c(m * n, -1);
  RunLowered(f, {Bind(a), Bind(b), Bind(c)});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float ref = 0;
      for (int kk = 0; kk < k; ++kk) {
        ref += a[i * k + kk] * b[kk * n + j];
      }
      EXPECT_NEAR(c[i * n + j], ref, 1e-3) << "at " << i << "," << j;
    }
  }
}

TEST(LowerBasic, MatmulTiledReordered) {
  const int m = 32, n = 24, k = 16;
  Tensor A = placeholder({make_int(m), make_int(k)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(k), make_int(n)}, DataType::Float32(), "B");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(k)), "rk");
  Tensor C = compute({make_int(m), make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({i[0], rk->var}) * B({rk->var, i[1]}), {rk});
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage st = (*s)[C];
  IterVar y = st->leaf_iter_vars[0], x = st->leaf_iter_vars[1];
  IterVar yo, yi, xo, xi, ko, ki;
  st->tile(y, x, 8, 8, &yo, &xo, &yi, &xi);
  st->split(st->leaf_iter_vars[4], 4, &ko, &ki);  // reduce axis is now after yi,xi? find it
  // After tile, leaf order is yo,xo,yi,xi,rk. Reorder to yo,xo,ko,yi,xi,ki.
  st->reorder({yo, xo, ko, yi, xi, ki});
  st->unroll(ki);

  LoweredFunc f = Lower(s, {A, B, C}, "matmul_tiled");
  std::vector<float> a = RandomData(m * k, 5), b = RandomData(k * n, 6), c(m * n, -1);
  RunLowered(f, {Bind(a), Bind(b), Bind(c)});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float ref = 0;
      for (int kk = 0; kk < k; ++kk) {
        ref += a[i * k + kk] * b[kk * n + j];
      }
      ASSERT_NEAR(c[i * n + j], ref, 1e-3) << "at " << i << "," << j;
    }
  }
}

TEST(LowerBasic, NonDivisibleSplitGuarded) {
  const int n = 30;  // split by 8 -> predicate required
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return A({i[0]}) * make_float(2.0);
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage st = (*s)[C];
  IterVar o, i;
  st->split(st->leaf_iter_vars[0], 8, &o, &i);
  LoweredFunc f = Lower(s, {A, C}, "scale");

  std::vector<float> a = RandomData(n, 7), c(n, 0);
  RunLowered(f, {Bind(a), Bind(c)});
  for (int j = 0; j < n; ++j) {
    EXPECT_FLOAT_EQ(c[j], 2.0f * a[j]);
  }
}

TEST(LowerBasic, FusedInlineStage) {
  const int n = 16;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor B = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return A({i[0]}) + make_float(1.0);
                     },
                     "B");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return B({i[0]}) * make_float(3.0);
                     },
                     "C");
  Schedule s = create_schedule({C});
  (*s)[B]->compute_inline();
  LoweredFunc f = Lower(s, {A, C}, "fused");
  // The inlined program must not allocate an intermediate for B.
  EXPECT_EQ(ToString(f.body).find("allocate"), std::string::npos) << ToString(f.body);

  std::vector<float> a = RandomData(n, 8), c(n, 0);
  RunLowered(f, {Bind(a), Bind(c)});
  for (int j = 0; j < n; ++j) {
    EXPECT_FLOAT_EQ(c[j], 3.0f * (a[j] + 1.0f));
  }
}

TEST(LowerBasic, ComputeAtProducer) {
  const int n = 24;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor B = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return A({i[0]}) + make_float(1.0);
                     },
                     "B");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return B({i[0]}) * make_float(3.0);
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage sc = (*s)[C];
  IterVar o, i;
  sc->split(sc->leaf_iter_vars[0], 8, &o, &i);
  (*s)[B]->compute_at(sc, o);

  LoweredFunc f = Lower(s, {A, C}, "compute_at");
  std::vector<float> a = RandomData(n, 9), c(n, 0);
  RunLowered(f, {Bind(a), Bind(c)});
  for (int j = 0; j < n; ++j) {
    EXPECT_FLOAT_EQ(c[j], 3.0f * (a[j] + 1.0f));
  }
}

TEST(LowerBasic, Conv1dPadded) {
  const int n = 20, kw = 3;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor W = placeholder({make_int(kw)}, DataType::Float32(), "W");
  IterVar rw = reduce_axis(Range(make_int(0), make_int(kw)), "rw");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       Expr pos = i[0] + rw->var - 1;
                       Expr in = if_then_else(logic_and(ge(pos, make_int(0)),
                                                        lt(pos, make_int(n))),
                                              A({max(min(pos, make_int(n - 1)), make_int(0))}),
                                              make_float(0.0));
                       return sum(in * W({rw->var}), {rw});
                     },
                     "C");
  Schedule s = create_schedule({C});
  LoweredFunc f = Lower(s, {A, W, C}, "conv1d");
  std::vector<float> a = RandomData(n, 10), w = RandomData(kw, 11), c(n, 0);
  RunLowered(f, {Bind(a), Bind(w), Bind(c)});
  for (int j = 0; j < n; ++j) {
    float ref = 0;
    for (int t = 0; t < kw; ++t) {
      int pos = j + t - 1;
      if (pos >= 0 && pos < n) {
        ref += a[pos] * w[t];
      }
    }
    EXPECT_NEAR(c[j], ref, 1e-4);
  }
}

}  // namespace
}  // namespace tvmcpp
