// Tests of GPU-style schedules: memory scopes (shared/local), thread binding with
// cooperative fetching (Section 4.2), and virtual threads (Section 4.4).
#include <gtest/gtest.h>

#include <vector>

#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/lower/lower.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"

namespace tvmcpp {
namespace {

std::vector<float> RandomData(size_t n, unsigned seed) {
  std::vector<float> v(n);
  unsigned s = seed;
  for (size_t i = 0; i < n; ++i) {
    s = s * 1664525u + 1013904223u;
    v[i] = static_cast<float>((s >> 8) % 1000) / 250.0f - 2.0f;
  }
  return v;
}

BufferBinding Bind(std::vector<float>& v) {
  return BufferBinding{v.data(), DataType::Float32(), static_cast<int64_t>(v.size())};
}

void CheckMatmul(const LoweredFunc& f, int m, int n, int k) {
  std::vector<float> a = RandomData(static_cast<size_t>(m * k), 21);
  std::vector<float> b = RandomData(static_cast<size_t>(k * n), 22);
  std::vector<float> c(static_cast<size_t>(m * n), -7);
  RunLowered(f, {Bind(a), Bind(b), Bind(c)});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float ref = 0;
      for (int kk = 0; kk < k; ++kk) {
        ref += a[static_cast<size_t>(i * k + kk)] * b[static_cast<size_t>(kk * n + j)];
      }
      ASSERT_NEAR(c[static_cast<size_t>(i * n + j)], ref, 2e-2) << "at " << i << "," << j;
    }
  }
}

// Builds C = A^T-free matmul (A: MxK, B: KxN).
Tensor DeclMatmul(int m, int n, int k, Tensor* a_out, Tensor* b_out) {
  Tensor A = placeholder({make_int(m), make_int(k)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(k), make_int(n)}, DataType::Float32(), "B");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(k)), "rk");
  Tensor C = compute({make_int(m), make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({i[0], rk->var}) * B({rk->var, i[1]}), {rk});
                     },
                     "C");
  *a_out = A;
  *b_out = B;
  return C;
}

TEST(LowerGpu, ThreadBindingOnly) {
  const int m = 32, n = 32, k = 16;
  Tensor A, B;
  Tensor C = DeclMatmul(m, n, k, &A, &B);
  Schedule s = create_schedule({C});
  Stage sc = (*s)[C];
  IterVar by, ty, bx, tx;
  sc->split(sc->leaf_iter_vars[0], 8, &by, &ty);
  sc->split(sc->leaf_iter_vars[2], 8, &bx, &tx);
  sc->reorder({by, bx, ty, tx});
  sc->bind(by, thread_axis("blockIdx.y"));
  sc->bind(bx, thread_axis("blockIdx.x"));
  sc->bind(ty, thread_axis("threadIdx.y"));
  sc->bind(tx, thread_axis("threadIdx.x"));
  LoweredFunc f = Lower(s, {A, B, C}, "mm_threads");
  CheckMatmul(f, m, n, k);
}

// The Figure 7 schedule: cooperative fetching of A and B tiles into shared memory, local
// accumulator, barriers inserted by the compiler.
TEST(LowerGpu, CooperativeSharedFetch) {
  const int m = 64, n = 64, k = 32;
  Tensor A, B;
  Tensor C = DeclMatmul(m, n, k, &A, &B);
  Schedule s = create_schedule({C});

  Tensor CL = s->cache_write(C, "local");
  Stage sc = (*s)[C];
  IterVar by, ty, bx, tx;
  sc->split(sc->leaf_iter_vars[0], 16, &by, &ty);
  sc->split(sc->leaf_iter_vars[2], 16, &bx, &tx);
  sc->reorder({by, bx, ty, tx});
  sc->bind(by, thread_axis("blockIdx.y"));
  sc->bind(bx, thread_axis("blockIdx.x"));
  IterVar tyx = thread_axis("threadIdx.y");
  IterVar txx = thread_axis("threadIdx.x");
  sc->bind(ty, tyx);
  sc->bind(tx, txx);

  Stage scl = (*s)[CL];
  scl->compute_at(sc, tx);
  // Split the reduction and stage A/B tiles in shared memory at ko.
  IterVar ko, ki;
  scl->split(scl->leaf_iter_vars[2], 8, &ko, &ki);

  Tensor AS = s->cache_read(A, "shared", {CL.op()});
  Tensor BS = s->cache_read(B, "shared", {CL.op()});
  (*s)[AS]->compute_at(scl, ko);
  (*s)[BS]->compute_at(scl, ko);

  // Cooperative fetch: bind the copy loops of AS/BS to the thread grid.
  for (const Tensor& t : {AS, BS}) {
    Stage st = (*s)[t];
    IterVar fo, fi;
    IterVar fused = st->fuse(st->leaf_iter_vars[0], st->leaf_iter_vars[1]);
    st->split(fused, 16, &fo, &fi);
    st->bind(fi, txx);
  }

  LoweredFunc f = Lower(s, {A, B, C}, "mm_coop");
  std::string text = ToString(f.body);
  EXPECT_NE(text.find("shared"), std::string::npos);
  EXPECT_NE(text.find(kSyncIntrin), std::string::npos) << text;
  CheckMatmul(f, m, n, k);
}

TEST(LowerGpu, VirtualThreadStriding) {
  const int m = 32, n = 32, k = 16;
  Tensor A, B;
  Tensor C = DeclMatmul(m, n, k, &A, &B);
  Schedule s = create_schedule({C});
  Stage sc = (*s)[C];
  IterVar by, vy, ty, bx, tx;
  sc->split(sc->leaf_iter_vars[0], 16, &by, &vy);
  sc->split(vy, 8, &vy, &ty);
  sc->split(sc->leaf_iter_vars[3], 8, &bx, &tx);
  sc->reorder({by, bx, vy, ty, tx});
  sc->bind(by, thread_axis("blockIdx.y"));
  sc->bind(bx, thread_axis("blockIdx.x"));
  sc->bind(vy, thread_axis("vthread"));
  sc->bind(ty, thread_axis("threadIdx.y"));
  sc->bind(tx, thread_axis("threadIdx.x"));
  LoweredFunc f = Lower(s, {A, B, C}, "mm_vthread");
  CheckMatmul(f, m, n, k);

  // After vthread injection the program must still be correct and contain no vthread loop.
  LoweredFunc f2 = f;
  f2.body = InjectVirtualThreads(f.body);
  std::string text = ToString(f2.body);
  EXPECT_EQ(text.find("vthread ("), std::string::npos) << text;
  CheckMatmul(f2, m, n, k);
}

}  // namespace
}  // namespace tvmcpp
