// Tests for the vector execution path: the VectorizeLoop lowering pass, the
// interpreter's lane-wise reference semantics, and the VM's SIMD vector opcodes.
//
// The differential structure is three-way:
//   A. interpreter on the original body (serial loops) — the oracle
//   B. interpreter on VectorizeLoop(body)              — validates the pass
//   C. VM (which applies VectorizeLoop internally)     — validates the opcodes
// All three must produce bitwise-identical buffers.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/lower/lower.h"
#include "src/schedule/schedule.h"
#include "src/support/float16.h"
#include "src/support/random.h"
#include "src/te/tensor.h"
#include "src/topi/nn.h"
#include "src/topi/schedules.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

struct ArgBuf {
  std::vector<char> bytes;
  DataType dtype;
  int64_t num_elements = 0;

  static ArgBuf Make(int64_t elems, DataType dtype, uint64_t seed) {
    ArgBuf a;
    a.dtype = dtype;
    a.num_elements = elems;
    a.bytes.assign(static_cast<size_t>(elems * InterpElementBytes(dtype)), 0);
    Rng rng(seed);
    if (dtype.is_float()) {
      float* p = reinterpret_cast<float*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<float>(rng.UniformReal() * 2.0 - 1.0);
      }
      if (dtype.bits() == 16) {
        for (int64_t i = 0; i < elems; ++i) {
          p[i] = QuantizeFloat16(p[i]);
        }
      }
    } else if (InterpElementBytes(dtype) == 1) {
      int8_t* p = reinterpret_cast<int8_t*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<int8_t>(rng.Uniform(128)) - 64;
      }
    } else {
      int32_t* p = reinterpret_cast<int32_t*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<int32_t>(rng.Uniform(100));
      }
    }
    return a;
  }

  BufferBinding Bind() { return BufferBinding{bytes.data(), dtype, num_elements}; }
};

int64_t NumElems(const Tensor& t) {
  int64_t n = 1;
  for (const Expr& e : t.shape()) {
    n *= get_const_int(e);
  }
  return n;
}

std::vector<ArgBuf> MakeArgs(const std::vector<Tensor>& tensors, uint64_t seed) {
  std::vector<ArgBuf> args;
  for (size_t i = 0; i < tensors.size(); ++i) {
    args.push_back(ArgBuf::Make(NumElems(tensors[i]), tensors[i].dtype(), seed + i * 131));
  }
  return args;
}

// Runs the three-way differential check (see file comment) and, when
// `expect_vector`, asserts the VM program actually contains SIMD opcodes.
void ExpectVectorizedIdentical(const LoweredFunc& f, const std::vector<ArgBuf>& args,
                               bool expect_vector = true) {
  LoweredFunc vectorized = f;
  vectorized.body = VectorizeLoop(f.body);
  std::shared_ptr<const vm::Program> prog = vm::CompileToProgram(f);
  ASSERT_NE(prog, nullptr) << "VM failed to compile " << f.name << ":\n"
                           << ToString(vectorized.body);
  if (expect_vector) {
    EXPECT_TRUE(vm::ProgramHasVector(*prog))
        << f.name << " compiled without vector opcodes:\n"
        << ToString(vectorized.body);
  }

  std::vector<ArgBuf> serial_bufs = args;
  std::vector<ArgBuf> vecinterp_bufs = args;
  std::vector<ArgBuf> vm_bufs = args;
  std::vector<BufferBinding> serial_bind, vecinterp_bind, vm_bind;
  for (size_t i = 0; i < args.size(); ++i) {
    serial_bind.push_back(serial_bufs[i].Bind());
    vecinterp_bind.push_back(vecinterp_bufs[i].Bind());
    vm_bind.push_back(vm_bufs[i].Bind());
  }
  RunLoweredInterp(f, serial_bind);
  RunLoweredInterp(vectorized, vecinterp_bind);
  vm::ExecOptions opts;
  opts.num_threads = 1;
  vm::Run(*prog, vm_bind, opts);
  for (size_t i = 0; i < args.size(); ++i) {
    EXPECT_EQ(std::memcmp(serial_bufs[i].bytes.data(), vecinterp_bufs[i].bytes.data(),
                          serial_bufs[i].bytes.size()),
              0)
        << f.name << ": buffer " << i
        << " differs between serial interp and vectorized interp";
    EXPECT_EQ(std::memcmp(serial_bufs[i].bytes.data(), vm_bufs[i].bytes.data(),
                          serial_bufs[i].bytes.size()),
              0)
        << f.name << ": buffer " << i << " differs between serial interp and VM";
  }
}

// --- the pass itself ----------------------------------------------------------------

TEST(VectorizePass, RewritesLoopToVectorOps) {
  const int n = 16;
  Var a = make_var("A", DataType::Handle());
  Var c = make_var("C", DataType::Handle());
  Var i = make_var("i");
  Stmt loop = for_stmt(i, make_int(0), make_int(n),
                       store(c, load(DataType::Float32(), a, i) * make_float(2.0), i),
                       ForType::kVectorized);
  Stmt vec = VectorizeLoop(loop);
  std::string text = ToString(vec);
  EXPECT_NE(text.find("ramp("), std::string::npos) << text;
  EXPECT_EQ(text.find("vectorized"), std::string::npos)
      << "vectorized loop survived the pass:\n"
      << text;
}

TEST(VectorizePass, LaneInvariantStoreStaysSerial) {
  // A reduction into one element carries a dependence across lanes; the pass must
  // keep the loop serial rather than collapse it to the last lane's write.
  const int n = 8;
  Var a = make_var("A", DataType::Handle());
  Var c = make_var("C", DataType::Handle());
  Var i = make_var("i");
  Expr acc = load(DataType::Float32(), c, make_int(0)) + load(DataType::Float32(), a, i);
  Stmt loop = for_stmt(i, make_int(0), make_int(n), store(c, acc, make_int(0)),
                       ForType::kVectorized);
  Stmt vec = VectorizeLoop(loop);
  std::string text = ToString(vec);
  EXPECT_NE(text.find("vectorized"), std::string::npos)
      << "hazardous loop was vectorized:\n"
      << text;

  LoweredFunc f;
  f.name = "vec_reduction_bailout";
  f.args = {BufferArg{a, DataType::Float32(), {n}, "A"},
            BufferArg{c, DataType::Float32(), {1}, "C"}};
  f.body = loop;
  std::vector<ArgBuf> args = {ArgBuf::Make(n, DataType::Float32(), 11),
                              ArgBuf::Make(1, DataType::Float32(), 12)};
  ExpectVectorizedIdentical(f, args, /*expect_vector=*/false);
}

TEST(VectorizePass, StripMinesWideLoopsWithScalarTail) {
  // Extent 100 > kMaxDirectLanes: 6 chunks of 16 lanes + a 4-iteration scalar tail.
  const int n = 100;
  Var a = make_var("A", DataType::Handle());
  Var c = make_var("C", DataType::Handle());
  Var i = make_var("i");
  Expr v = load(DataType::Float32(), a, i);
  Stmt loop = for_stmt(i, make_int(0), make_int(n),
                       store(c, v * v + make_float(1.0), i), ForType::kVectorized);
  Stmt vec = VectorizeLoop(loop);
  std::string text = ToString(vec);
  EXPECT_NE(text.find("ramp("), std::string::npos) << text;

  LoweredFunc f;
  f.name = "vec_strip_mined";
  f.args = {BufferArg{a, DataType::Float32(), {n}, "A"},
            BufferArg{c, DataType::Float32(), {n}, "C"}};
  f.body = loop;
  std::vector<ArgBuf> args = {ArgBuf::Make(n, DataType::Float32(), 21),
                              ArgBuf::Make(n, DataType::Float32(), 22)};
  ExpectVectorizedIdentical(f, args);
}

// Regression: the interpreter interleaves per-lane reads and writes inside one store
// while the VM gathers the full value vector before scattering — a loop-carried
// in-place update (A[i+1] = A[i] + 1) must therefore stay serial.
TEST(VectorizePass, CrossLaneOverlapStaysSerial) {
  const int n = 16;
  Var a = make_var("A", DataType::Handle());
  Var i = make_var("i");
  Stmt loop = for_stmt(i, make_int(0), make_int(n - 1),
                       store(a, load(DataType::Float32(), a, i) + make_float(1.0), i + 1),
                       ForType::kVectorized);
  EXPECT_NE(ToString(VectorizeLoop(loop)).find("vectorized"), std::string::npos)
      << "loop-carried store was vectorized";

  LoweredFunc f;
  f.name = "vec_overlap_bailout";
  f.args = {BufferArg{a, DataType::Float32(), {n}, "A"}};
  f.body = loop;
  std::vector<ArgBuf> args = {ArgBuf::Make(n, DataType::Float32(), 131)};
  ExpectVectorizedIdentical(f, args, /*expect_vector=*/false);
}

// Regression: a lane-dependent guard over a lane-invariant store (flag[0] = ...)
// cannot become a lane predicate — the scalar store path would test it at lane 0
// only, while the serial oracle writes when ANY lane passes the guard.
TEST(VectorizePass, LaneInvariantGuardedStoreStaysSerial) {
  const int n = 10;
  Var c = make_var("C", DataType::Handle());
  Var i = make_var("i");
  Stmt guarded = if_then_else_stmt(lt(Expr(i), make_int(3)),
                                   store(c, make_float(1.0), make_int(0)));
  Stmt loop = for_stmt(i, make_int(0), make_int(8), guarded, ForType::kVectorized);
  EXPECT_NE(ToString(VectorizeLoop(loop)).find("vectorized"), std::string::npos)
      << "lane-invariant guarded store was vectorized";

  LoweredFunc f;
  f.name = "vec_flag_bailout";
  f.args = {BufferArg{c, DataType::Float32(), {n}, "C"}};
  f.body = loop;
  std::vector<ArgBuf> args = {ArgBuf::Make(n, DataType::Float32(), 141)};
  ExpectVectorizedIdentical(f, args, /*expect_vector=*/false);
}

// Regression: integer division under a lane-dependent guard must not be evaluated
// eagerly on masked lanes (FloorDiv traps on zero divisors the guard excluded).
TEST(VectorizePass, GuardedIntDivisionStaysSerialAndSafe) {
  const int n = 10;  // non-divisible by 8: the last 6 lanes are guarded off
  Tensor A = placeholder({make_int(n)}, DataType::Int32(), "A");
  Tensor B = placeholder({make_int(n)}, DataType::Int32(), "B");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return A({i[0]}) / max(B({i[0]}), make_int(1));
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage st = (*s)[C];
  IterVar o, i;
  st->split(st->leaf_iter_vars[0], 8, &o, &i);
  st->vectorize(i);
  LoweredFunc f = Lower(s, {A, B, C}, "vec_guarded_div");
  // Whether the pass bails (divisor is not a constant) or not, both engines must
  // agree and never trap on a masked lane.
  ExpectVectorizedIdentical(f, MakeArgs({A, B, C}, 151), /*expect_vector=*/false);
}

// Regression: same-index read-modify-write is exempt from the overlap bail-out only
// when the address is injective across lanes — C[i/2] += A[i] collides two lanes on
// one element, so the gather-then-scatter VM would read stale values.
TEST(VectorizePass, NonInjectiveRmwStaysSerial) {
  const int n = 16;
  Var a = make_var("A", DataType::Handle());
  Var c = make_var("C", DataType::Handle());
  Var i = make_var("i");
  Expr idx = Expr(i) / 2;
  Expr acc = load(DataType::Float32(), c, idx) + load(DataType::Float32(), a, i);
  Stmt loop = for_stmt(i, make_int(0), make_int(n), store(c, acc, idx),
                       ForType::kVectorized);
  EXPECT_NE(ToString(VectorizeLoop(loop)).find("vectorized"), std::string::npos)
      << "colliding RMW was vectorized";

  LoweredFunc f;
  f.name = "vec_colliding_rmw";
  f.args = {BufferArg{a, DataType::Float32(), {n}, "A"},
            BufferArg{c, DataType::Float32(), {n / 2}, "C"}};
  f.body = loop;
  std::vector<ArgBuf> args = {ArgBuf::Make(n, DataType::Float32(), 161),
                              ArgBuf::Make(n / 2, DataType::Float32(), 162)};
  ExpectVectorizedIdentical(f, args, /*expect_vector=*/false);
}

// Regression: dependences across *statements* of one vectorized body must also bail —
// serial execution interleaves the statements per iteration, the vector form runs
// each statement for all lanes first.
TEST(VectorizePass, CrossStatementDependenceStaysSerial) {
  const int n = 16;
  Var a = make_var("A", DataType::Handle());
  Var b = make_var("B", DataType::Handle());
  Var c = make_var("C", DataType::Handle());
  Var i = make_var("i");
  Stmt body = seq({
      store(a, load(DataType::Float32(), b, i), i),
      store(c, load(DataType::Float32(), a, i + 1), i),
  });
  Stmt loop = for_stmt(i, make_int(0), make_int(n - 1), body, ForType::kVectorized);
  EXPECT_NE(ToString(VectorizeLoop(loop)).find("vectorized"), std::string::npos)
      << "cross-statement dependence was vectorized";

  LoweredFunc f;
  f.name = "vec_cross_stmt_bailout";
  f.args = {BufferArg{a, DataType::Float32(), {n}, "A"},
            BufferArg{b, DataType::Float32(), {n}, "B"},
            BufferArg{c, DataType::Float32(), {n}, "C"}};
  f.body = loop;
  std::vector<ArgBuf> args = {ArgBuf::Make(n, DataType::Float32(), 191),
                              ArgBuf::Make(n, DataType::Float32(), 192),
                              ArgBuf::Make(n, DataType::Float32(), 193)};
  ExpectVectorizedIdentical(f, args, /*expect_vector=*/false);
}

// Regression: a lane-invariant load inside a lane-dependent conditional arm cannot
// carry the vector mask (the scalar load path would test it at one lane); the loop
// must stay serial rather than fall back — or worse, trap — at VM compile time.
TEST(VectorizePass, LaneInvariantLoadInConditionalArmStaysSerial) {
  const int n = 16;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(1)}, DataType::Float32(), "B");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return if_then_else(lt(Expr(i[0]), make_int(7)), A({i[0]}),
                                           B({make_int(0)}));
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage st = (*s)[C];
  st->vectorize(st->leaf_iter_vars[0]);
  LoweredFunc f = Lower(s, {A, B, C}, "vec_scalar_arm");
  // Must compile on the VM (no fallback) and agree with the serial oracle.
  ExpectVectorizedIdentical(f, MakeArgs({A, B, C}, 171), /*expect_vector=*/false);
}

// Indirect store through a gathered index: the index's nested load must be masked by
// the tail guard, so masked lanes never bounds-trap on the VM's eager index vector
// (the index buffer itself is only `n` long while the vector covers 16 lanes).
TEST(VectorizeDiff, GuardedIndirectStoreMasksIndexLoads) {
  const int n = 10;  // live lanes; lanes [10, 16) are guarded off
  Var a = make_var("A", DataType::Handle());
  Var c = make_var("C", DataType::Handle());
  Var idxb = make_var("Idx", DataType::Handle());
  Var i = make_var("i");
  Expr scatter_to = load(DataType::Int32(), idxb, i);
  Stmt guarded = if_then_else_stmt(
      lt(Expr(i), make_int(n)),
      store(c, load(DataType::Float32(), a, i) + make_float(2.0), scatter_to));
  Stmt loop = for_stmt(i, make_int(0), make_int(16), guarded, ForType::kVectorized);
  LoweredFunc f;
  f.name = "vec_guarded_gather";
  f.args = {BufferArg{a, DataType::Float32(), {n}, "A"},
            BufferArg{c, DataType::Float32(), {n}, "C"},
            BufferArg{idxb, DataType::Int32(), {n}, "Idx"}};
  f.body = loop;

  std::vector<ArgBuf> args = {ArgBuf::Make(n, DataType::Float32(), 181),
                              ArgBuf::Make(n, DataType::Float32(), 182),
                              ArgBuf::Make(n, DataType::Int32(), 183)};
  // A permutation scatter: every live lane writes a distinct in-bounds element.
  int32_t* idx = reinterpret_cast<int32_t*>(args[2].bytes.data());
  for (int k = 0; k < n; ++k) {
    idx[k] = (k * 3) % n;
  }
  ExpectVectorizedIdentical(f, args);
}

// --- predicated lanes ---------------------------------------------------------------

TEST(VectorizeDiff, NonDivisibleSplitGuardBecomesPredicate) {
  // split(30, 8) leaves a 2-lane overhang guarded by xo*8 + xi < 30; the guard must
  // become a store predicate, with masked lanes never touching out-of-bounds memory.
  const int n = 30;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return A({i[0]}) * make_float(3.0) + make_float(0.5);
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage st = (*s)[C];
  IterVar o, i;
  st->split(st->leaf_iter_vars[0], 8, &o, &i);
  st->vectorize(i);
  LoweredFunc f = Lower(s, {A, C}, "vec_guarded");
  ExpectVectorizedIdentical(f, MakeArgs({A, C}, 31));
}

TEST(VectorizeDiff, PaddingIfThenElseMasksLoads) {
  // Inlined padding reads: if_then_else(0 <= i-1 < n, A[i-1], 0). Lane-wise blending
  // must mask the loads so out-of-range lanes cannot trap the bounds check.
  const int n = 24;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       Expr shifted = i[0] - 1;
                       return if_then_else(
                           logic_and(ge(shifted, make_int(0)), lt(shifted, make_int(n))),
                           A({shifted}), make_float(0.0));
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage st = (*s)[C];
  st->vectorize(st->leaf_iter_vars[0]);
  LoweredFunc f = Lower(s, {A, C}, "vec_padded");
  ExpectVectorizedIdentical(f, MakeArgs({A, C}, 41));
}

// --- dtype coverage -----------------------------------------------------------------

TEST(VectorizeDiff, Float16LanesQuantize) {
  const int n = 32;
  Tensor A = placeholder({make_int(n)}, DataType::Float16(), "A");
  Tensor B = placeholder({make_int(n)}, DataType::Float16(), "B");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return A({i[0]}) * B({i[0]}) + A({i[0]});
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage st = (*s)[C];
  st->vectorize(st->leaf_iter_vars[0]);
  LoweredFunc f = Lower(s, {A, B, C}, "vec_f16");
  ExpectVectorizedIdentical(f, MakeArgs({A, B, C}, 51));
}

TEST(VectorizeDiff, Int8Lanes) {
  const int n = 48;
  Tensor A = placeholder({make_int(n)}, DataType::Int8(), "A");
  Tensor B = placeholder({make_int(n)}, DataType::Int8(), "B");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return cast(DataType::Int8(),
                                   max(A({i[0]}) * B({i[0]}) % make_int(64),
                                       A({i[0]}) + B({i[0]})));
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage st = (*s)[C];
  IterVar o, i;
  st->split(st->leaf_iter_vars[0], 16, &o, &i);
  st->vectorize(i);
  LoweredFunc f = Lower(s, {A, B, C}, "vec_i8");
  ExpectVectorizedIdentical(f, MakeArgs({A, B, C}, 61));
}

// --- vector allocate (widened scalar storage) ---------------------------------------

TEST(VectorizeDiff, VectorAllocateWidensStorage) {
  // A lanes>1 Allocate must compile (widened to lanes * extents scalar elements)
  // instead of rejecting the whole program.
  const int n = 16;
  Var a = make_var("A", DataType::Handle());
  Var c = make_var("C", DataType::Handle());
  Var scratch = make_var("scratch", DataType::Handle());
  Var i = make_var("i");
  Var j = make_var("j");
  Stmt fill = for_stmt(i, make_int(0), make_int(n),
                       store(scratch, load(DataType::Float32(), a, i) * make_float(2.0), i),
                       ForType::kVectorized);
  Stmt drain = for_stmt(j, make_int(0), make_int(n),
                        store(c, load(DataType::Float32(), scratch, j) + make_float(1.0), j),
                        ForType::kVectorized);
  Stmt body = allocate(scratch, DataType::Float32(4), {make_int(n / 4)}, "global",
                       seq({fill, drain}));
  LoweredFunc f;
  f.name = "vec_alloc";
  f.args = {BufferArg{a, DataType::Float32(), {n}, "A"},
            BufferArg{c, DataType::Float32(), {n}, "C"}};
  f.body = body;
  std::vector<ArgBuf> args = {ArgBuf::Make(n, DataType::Float32(), 71),
                              ArgBuf::Make(n, DataType::Float32(), 72)};
  ExpectVectorizedIdentical(f, args);
}

// --- topi schedules under strict mode -----------------------------------------------

// Every vectorized topi schedule below must compile to VM vector opcodes with zero
// interpreter fallbacks; strict mode turns any silent downgrade into a hard error.
class StrictGuard {
 public:
  StrictGuard() : saved_(vm::StrictMode()) {
    vm::SetStrictMode(true);
    vm::ResetFallbackCount();
  }
  ~StrictGuard() { vm::SetStrictMode(saved_); }

 private:
  bool saved_;
};

TEST(VectorizeTopi, DenseVectorizedCompilesToVectorOps) {
  StrictGuard strict;
  Target cpu = Target::ArmA53();
  topi::OpWorkload wl;
  wl.kind = "dense";
  wl.n = 8;
  wl.k = 32;
  wl.oc = 24;
  for (int64_t vec : {0, 1}) {
    topi::BuiltOp built = topi::BuildOpCompute(wl);
    topi::Config cfg = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
    cfg["vectorize"] = vec;
    cfg["parallel"] = 0;
    Schedule s = topi::ApplyOpSchedule(wl, cpu, built, cfg);
    LoweredFunc f = Lower(s, built.Args(), "dense_vec_" + std::to_string(vec));
    std::shared_ptr<const vm::Program> prog = vm::CompileToProgram(f);
    ASSERT_NE(prog, nullptr);
    EXPECT_EQ(vm::ProgramHasVector(*prog), vec == 1) << ToString(f.body);
    ExpectVectorizedIdentical(f, MakeArgs(built.Args(), 80 + static_cast<uint64_t>(vec)),
                              /*expect_vector=*/vec == 1);
    // End-to-end dispatch must not fall back under strict mode.
    std::vector<ArgBuf> bufs = MakeArgs(built.Args(), 90);
    std::vector<BufferBinding> bind;
    for (ArgBuf& b : bufs) {
      bind.push_back(b.Bind());
    }
    RunLowered(f, bind);
  }
  EXPECT_EQ(vm::FallbackCount(), 0);
}

TEST(VectorizeTopi, Conv2dVectorizedMatches) {
  StrictGuard strict;
  Target cpu = Target::ArmA53();
  topi::OpWorkload wl;
  wl.kind = "conv2d";
  wl.n = 1;
  wl.ic = 4;
  wl.h = wl.w = 10;
  wl.oc = 8;
  wl.k = 3;
  wl.stride = 1;
  wl.pad = 1;
  for (int64_t vec : {0, 1}) {
    topi::BuiltOp built = topi::BuildOpCompute(wl);
    topi::Config cfg = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
    cfg["vectorize"] = vec;
    cfg["parallel"] = 0;
    Schedule s = topi::ApplyOpSchedule(wl, cpu, built, cfg);
    LoweredFunc f = Lower(s, built.Args(), "conv_vec_" + std::to_string(vec));
    ExpectVectorizedIdentical(f, MakeArgs(built.Args(), 100 + static_cast<uint64_t>(vec)),
                              /*expect_vector=*/vec == 1);
  }
  EXPECT_EQ(vm::FallbackCount(), 0);
}

TEST(VectorizeTopi, InjectiveScheduleVectorizes) {
  StrictGuard strict;
  Target cpu = Target::ArmA53();
  Tensor A = placeholder({make_int(4), make_int(64)}, DataType::Float32(), "A");
  Tensor C = topi::Relu(A);
  Schedule s = create_schedule({C});
  topi::ScheduleInjective(cpu, s, C);
  LoweredFunc f = Lower(s, {A, C}, "relu_injective");
  ExpectVectorizedIdentical(f, MakeArgs({A, C}, 110));
  EXPECT_EQ(vm::FallbackCount(), 0);
}

// --- fallback diagnostics -----------------------------------------------------------

TEST(VmFallback, CountedAndFatalUnderStrict) {
  // A vector-valued let is interpretable (lane-threaded environment) but outside the
  // VM's vector compiler: RunLowered must fall back, count it, and die under strict.
  const int n = 8;
  Var a = make_var("A", DataType::Handle());
  Var c = make_var("C", DataType::Handle());
  Var x = make_var("x", DataType::Float32());
  Expr vec_load = load(DataType::Float32(4), a, ramp(make_int(0), make_int(1), 4));
  Expr body = let(x, vec_load, Expr(x) + Expr(x));
  LoweredFunc f;
  f.name = "vector_let";
  f.args = {BufferArg{a, DataType::Float32(), {n}, "A"},
            BufferArg{c, DataType::Float32(), {n}, "C"}};
  f.body = store(c, body, ramp(make_int(0), make_int(1), 4));

  ASSERT_EQ(vm::CompileToProgram(f), nullptr);

  std::vector<ArgBuf> args = {ArgBuf::Make(n, DataType::Float32(), 120),
                              ArgBuf::Make(n, DataType::Float32(), 121)};
  std::vector<BufferBinding> bind;
  for (ArgBuf& b : args) {
    bind.push_back(b.Bind());
  }
  ExecEngine saved = GetExecEngine();
  SetExecEngine(ExecEngine::kVm);
  bool saved_strict = vm::StrictMode();

  vm::SetStrictMode(false);
  vm::ResetFallbackCount();
  RunLowered(f, bind);  // falls back silently, but counted
  EXPECT_EQ(vm::FallbackCount(), 1);

  vm::SetStrictMode(true);
  EXPECT_THROW(RunLowered(f, bind), InternalError);
  EXPECT_EQ(vm::FallbackCount(), 2);

  vm::SetStrictMode(saved_strict);
  SetExecEngine(saved);
}

}  // namespace
}  // namespace tvmcpp
