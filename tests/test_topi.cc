// Operator library tests: numerical correctness of every op against naive references,
// and the key schedule-space property: EVERY config in a template's space must produce
// a program with identical semantics (parameterized sweep).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/simplify.h"
#include "src/lower/lower.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/topi/schedules.h"

namespace tvmcpp {
namespace topi {
namespace {

// Naive conv2d reference.
std::vector<float> RefConv2d(const std::vector<float>& data, const std::vector<float>& kernel,
                             int n, int ic, int h, int w, int oc, int k, int stride, int pad) {
  int oh = static_cast<int>(ConvOutDim(h, k, stride, pad));
  int ow = static_cast<int>(ConvOutDim(w, k, stride, pad));
  std::vector<float> out(static_cast<size_t>(n * oc * oh * ow), 0.0f);
  for (int b = 0; b < n; ++b) {
    for (int f = 0; f < oc; ++f) {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
          float acc = 0;
          for (int c = 0; c < ic; ++c) {
            for (int dy = 0; dy < k; ++dy) {
              for (int dx = 0; dx < k; ++dx) {
                int iy = y * stride + dy - pad;
                int ix = x * stride + dx - pad;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) {
                  continue;
                }
                acc += data[static_cast<size_t>(((b * ic + c) * h + iy) * w + ix)] *
                       kernel[static_cast<size_t>(((f * ic + c) * k + dy) * k + dx)];
              }
            }
          }
          out[static_cast<size_t>(((b * oc + f) * oh + y) * ow + x)] = acc;
        }
      }
    }
  }
  return out;
}

std::vector<float> RefDepthwise(const std::vector<float>& data,
                                const std::vector<float>& kernel, int n, int c, int h, int w,
                                int k, int stride, int pad) {
  int oh = static_cast<int>(ConvOutDim(h, k, stride, pad));
  int ow = static_cast<int>(ConvOutDim(w, k, stride, pad));
  std::vector<float> out(static_cast<size_t>(n * c * oh * ow), 0.0f);
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
          float acc = 0;
          for (int dy = 0; dy < k; ++dy) {
            for (int dx = 0; dx < k; ++dx) {
              int iy = y * stride + dy - pad;
              int ix = x * stride + dx - pad;
              if (iy < 0 || iy >= h || ix < 0 || ix >= w) {
                continue;
              }
              acc += data[static_cast<size_t>(((b * c + ch) * h + iy) * w + ix)] *
                     kernel[static_cast<size_t>((ch * k + dy) * k + dx)];
            }
          }
          out[static_cast<size_t>(((b * c + ch) * oh + y) * ow + x)] = acc;
        }
      }
    }
  }
  return out;
}

void RunWorkload(const OpWorkload& wl, const Target& target, const Config& config,
                 double tol = 2e-2) {
  BuiltOp built = BuildOpCompute(wl);
  Schedule s = ApplyOpSchedule(wl, target, built, config);
  LoweredFunc f = Lower(s, built.Args(), wl.Key());

  std::vector<int64_t> dshape = built.inputs[0].shape().size() == 2
                                    ? std::vector<int64_t>{wl.n, wl.k}
                                    : std::vector<int64_t>{wl.n, wl.ic, wl.h, wl.w};
  NDArray data = NDArray::Random(dshape, DataType::Float32(), 11);
  std::vector<int64_t> kshape;
  for (const Expr& e : built.inputs[1].shape()) {
    kshape.push_back(get_const_int(Simplify(e)));
  }
  NDArray kernel = NDArray::Random(kshape, DataType::Float32(), 13);
  std::vector<int64_t> oshape;
  for (const Expr& e : built.output.shape()) {
    oshape.push_back(get_const_int(Simplify(e)));
  }
  NDArray out = NDArray::Empty(oshape, DataType::Float32());
  RunLowered(f, {data.Binding(), kernel.Binding(), out.Binding()});

  std::vector<float> dvec(data.Data<float>(), data.Data<float>() + data.NumElements());
  std::vector<float> kvec(kernel.Data<float>(), kernel.Data<float>() + kernel.NumElements());
  std::vector<float> ref;
  if (wl.kind == "conv2d") {
    ref = RefConv2d(dvec, kvec, wl.n, wl.ic, wl.h, wl.w, wl.oc, wl.k, wl.stride, wl.pad);
  } else if (wl.kind == "depthwise_conv2d") {
    ref = RefDepthwise(dvec, kvec, wl.n, wl.ic, wl.h, wl.w, wl.k, wl.stride, wl.pad);
  } else if (wl.kind == "dense") {
    ref.assign(static_cast<size_t>(wl.n * wl.oc), 0.0f);
    for (int y = 0; y < wl.n; ++y) {
      for (int x = 0; x < wl.oc; ++x) {
        float acc = 0;
        for (int kk = 0; kk < wl.k; ++kk) {
          acc += dvec[static_cast<size_t>(y * wl.k + kk)] *
                 kvec[static_cast<size_t>(x * wl.k + kk)];
        }
        ref[static_cast<size_t>(y * wl.oc + x)] = acc;
      }
    }
  }
  const float* got = out.Data<float>();
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], tol) << wl.Key() << " elem " << i;
  }
}

TEST(Topi, Conv2dCpuDefault) {
  OpWorkload wl{"conv2d", 1, 8, 8, 4, 8, 3, 1, 1};
  Target t = Target::ArmA53();
  RunWorkload(wl, t, DefaultConfig(GetScheduleSpace(wl, t)));
}

TEST(Topi, Conv2dGpuDefault) {
  OpWorkload wl{"conv2d", 1, 8, 8, 4, 8, 3, 1, 1};
  Target t = Target::TitanX();
  RunWorkload(wl, t, DefaultConfig(GetScheduleSpace(wl, t)));
}

TEST(Topi, Conv2dStride2) {
  OpWorkload wl{"conv2d", 1, 8, 8, 4, 8, 3, 2, 1};
  Target t = Target::TitanX();
  RunWorkload(wl, t, DefaultConfig(GetScheduleSpace(wl, t)));
}

TEST(Topi, Conv2d1x1) {
  OpWorkload wl{"conv2d", 1, 8, 8, 8, 16, 1, 1, 0};
  Target t = Target::TitanX();
  RunWorkload(wl, t, DefaultConfig(GetScheduleSpace(wl, t)));
}

TEST(Topi, DepthwiseCpuGpu) {
  OpWorkload wl{"depthwise_conv2d", 1, 8, 8, 8, 8, 3, 1, 1};
  RunWorkload(wl, Target::ArmA53(), DefaultConfig(GetScheduleSpace(wl, Target::ArmA53())));
  RunWorkload(wl, Target::TitanX(), DefaultConfig(GetScheduleSpace(wl, Target::TitanX())));
}

TEST(Topi, DenseCpuGpu) {
  OpWorkload wl{"dense", 16, 1, 1, 1, 24, 32, 1, 0};
  RunWorkload(wl, Target::ArmA53(), DefaultConfig(GetScheduleSpace(wl, Target::ArmA53())));
  RunWorkload(wl, Target::TitanX(), DefaultConfig(GetScheduleSpace(wl, Target::TitanX())));
}

// Property sweep: every config in the space must be semantics-preserving.
class ConvConfigSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConvConfigSweep, AllConfigsCorrectGpu) {
  OpWorkload wl{"conv2d", 1, 6, 6, 4, 8, 3, 1, 1};
  Target t = Target::TitanX();
  ConfigSpace space = GetScheduleSpace(wl, t);
  int64_t step = std::max<int64_t>(1, space.size() / 24);
  int64_t index = (GetParam() * step) % space.size();
  RunWorkload(wl, t, space.At(index));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConvConfigSweep, ::testing::Range(0, 24));

class ConvConfigSweepCpu : public ::testing::TestWithParam<int> {};

TEST_P(ConvConfigSweepCpu, AllConfigsCorrectCpu) {
  OpWorkload wl{"conv2d", 1, 6, 6, 4, 8, 3, 1, 1};
  Target t = Target::ArmA53();
  ConfigSpace space = GetScheduleSpace(wl, t);
  int64_t step = std::max<int64_t>(1, space.size() / 16);
  int64_t index = (GetParam() * step) % space.size();
  RunWorkload(wl, t, space.At(index));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConvConfigSweepCpu, ::testing::Range(0, 16));

class DenseConfigSweep : public ::testing::TestWithParam<int> {};

TEST_P(DenseConfigSweep, AllConfigsCorrectGpu) {
  OpWorkload wl{"dense", 32, 1, 1, 1, 32, 32, 1, 0};
  Target t = Target::TitanX();
  ConfigSpace space = GetScheduleSpace(wl, t);
  int64_t step = std::max<int64_t>(1, space.size() / 16);
  int64_t index = (GetParam() * step) % space.size();
  RunWorkload(wl, t, space.At(index));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DenseConfigSweep, ::testing::Range(0, 16));

}  // namespace
}  // namespace topi
}  // namespace tvmcpp
