// Machine-model property tests: the analytic cost models must respond to schedule
// structure in the physically-sensible direction (the basis for every benchmark).
#include <gtest/gtest.h>

#include "src/autotune/tuner.h"
#include "src/lower/lower.h"
#include "src/sim/analysis.h"
#include "src/sim/machine.h"
#include "src/topi/schedules.h"

namespace tvmcpp {
namespace {

double CostOf(const topi::OpWorkload& wl, const Target& t, topi::Config cfg) {
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  Schedule s = topi::ApplyOpSchedule(wl, t, built, cfg);
  LoweredFunc f = Lower(s, built.Args(), "x");
  return EstimateCost(t, f).seconds;
}

TEST(SimCpu, VectorizeAndParallelHelp) {
  topi::OpWorkload wl{"conv2d", 1, 28, 28, 64, 64, 3, 1, 1};
  Target t = Target::ArmA53();
  topi::Config base = topi::DefaultConfig(topi::GetScheduleSpace(wl, t));
  base["vectorize"] = 0;
  base["parallel"] = 0;
  double scalar = CostOf(wl, t, base);
  base["vectorize"] = 1;
  double vec = CostOf(wl, t, base);
  base["parallel"] = 1;
  double vecpar = CostOf(wl, t, base);
  EXPECT_LT(vec, scalar);
  EXPECT_LT(vecpar, vec);
}

TEST(SimCpu, MoreWorkCostsMore) {
  Target t = Target::ArmA53();
  topi::OpWorkload small{"conv2d", 1, 14, 14, 32, 32, 3, 1, 1};
  topi::OpWorkload big{"conv2d", 1, 28, 28, 64, 64, 3, 1, 1};
  topi::Config cs = topi::DefaultConfig(topi::GetScheduleSpace(small, t));
  topi::Config cb = topi::DefaultConfig(topi::GetScheduleSpace(big, t));
  EXPECT_LT(CostOf(small, t, cs), CostOf(big, t, cb));
}

TEST(SimGpu, SharedMemoryLimitIsEnforced) {
  // A block asking for more shared memory than the target offers must be infeasible.
  Target t = Target::TitanX();
  t.shared_mem_bytes = 1024;  // tiny
  topi::OpWorkload wl{"dense", 256, 1, 1, 1, 256, 256, 1, 0};
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  topi::Config cfg = topi::DefaultConfig(topi::GetScheduleSpace(wl, t));
  cfg["use_shared"] = 1;
  cfg["tile_y"] = 32;
  cfg["tile_x"] = 32;
  cfg["tile_k"] = 64;
  Schedule s = topi::ApplyOpSchedule(wl, t, built, cfg);
  LoweredFunc f = Lower(s, built.Args(), "x");
  SimCost c = EstimateCost(t, f);
  EXPECT_FALSE(c.feasible);
}

TEST(SimGpu, TunedBeatsWorstConfig) {
  topi::OpWorkload wl{"conv2d", 1, 28, 28, 64, 128, 3, 1, 1};
  Target t = Target::TitanX();
  autotune::TuningTask task(wl, t, 3);
  double best = 1e30, worst = 0;
  for (int64_t i = 0; i < std::min<int64_t>(task.size(), 200); ++i) {
    double c = task.TrueCost(i * (task.size() / std::min<int64_t>(task.size(), 200)));
    best = std::min(best, c);
    worst = std::max(worst, c);
  }
  // The space must be meaningfully non-flat for tuning to matter (paper Sec. 5).
  EXPECT_GT(worst / best, 2.0);
}

TEST(SimAnalysis, CountsFlopsOfMatmul) {
  const int n = 64;
  topi::OpWorkload wl{"dense", n, 1, 1, 1, n, n, 1, 0};
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  Schedule s = create_schedule({built.output});
  LoweredFunc f = Lower(s, built.Args(), "mm");
  ProgramStats stats = AnalyzeProgram(f);
  // mul+add per inner iteration = 2 * n^3 flops.
  EXPECT_NEAR(stats.flops, 2.0 * n * n * n, 0.1 * n * n * n);
  EXPECT_GT(stats.total_loads, 0);
}

TEST(SimAnalysis, ThreadStructureDetected) {
  topi::OpWorkload wl{"dense", 64, 1, 1, 1, 64, 64, 1, 0};
  Target t = Target::TitanX();
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  topi::Config cfg = topi::DefaultConfig(topi::GetScheduleSpace(wl, t));
  Schedule s = topi::ApplyOpSchedule(wl, t, built, cfg);
  LoweredFunc f = Lower(s, built.Args(), "mm");
  ProgramStats stats = AnalyzeProgram(f);
  EXPECT_GT(stats.block_threads, 1);
  EXPECT_GT(stats.grid_threads, 1);
}

}  // namespace
}  // namespace tvmcpp
