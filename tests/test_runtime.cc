// Runtime-layer tests: NDArray, Module, the thread pool, the simulated RPC device pool
// (Section 5.4), vendor baseline profiles, and the low-precision cost model.
#include <gtest/gtest.h>

#include <atomic>

#include "src/baselines/baselines.h"
#include "src/interp/interp.h"
#include "src/lower/lower.h"
#include "src/lowp/lowp.h"
#include "src/runtime/module.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/rpc.h"
#include "src/runtime/threadpool.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"

namespace tvmcpp {
namespace {

TEST(NDArrayTest, RoundTripAndCopy) {
  NDArray a = NDArray::Random({4, 5}, DataType::Float32(), 9);
  EXPECT_EQ(a.NumElements(), 20);
  NDArray b = a.Copy();
  b.Data<float>()[0] += 1.0f;
  EXPECT_NE(a.Data<float>()[0], b.Data<float>()[0]);
  NDArray c = NDArray::Empty({4, 5});
  c.CopyFrom(a);
  EXPECT_EQ(c.Data<float>()[7], a.Data<float>()[7]);
}

TEST(NDArrayTest, IntTypesWiden) {
  NDArray a = NDArray::Random({8}, DataType::Int(2), 3);
  for (int i = 0; i < 8; ++i) {
    EXPECT_GE(a.Data<int8_t>()[i], 0);
    EXPECT_LT(a.Data<int8_t>()[i], 4);
  }
}

TEST(ModuleTest, RunsNamedFunctions) {
  const int n = 16;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) { return A({i[0]}) + make_float(1); },
                     "C");
  Schedule s = create_schedule({C});
  Module mod(Target::ArmA53());
  mod.Add(Lower(s, {A, C}, "add_one"));
  EXPECT_TRUE(mod.Has("add_one"));
  NDArray a = NDArray::Random({n}, DataType::Float32(), 5);
  NDArray c = NDArray::Empty({n});
  mod.Run("add_one", {a, c});
  for (int i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(c.Data<float>()[i], a.Data<float>()[i] + 1);
  }
}

TEST(ThreadPoolTest, ExecutesAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&count, i] {
      count.fetch_add(1);
      return i * 2;
    }));
  }
  int sum = 0;
  for (auto& f : futures) {
    sum += f.get();
  }
  EXPECT_EQ(count.load(), 64);
  EXPECT_EQ(sum, 64 * 63);
}

TEST(DevicePoolTest, DispatchesToMatchingTarget) {
  DevicePool pool(2);
  pool.Register(DeviceWorker(Target::TitanX(), [](const MeasureRequest& req) {
    MeasureResult r;
    r.seconds = 0.5;
    return r;
  }));
  std::vector<MeasureRequest> reqs(4);
  auto ok = pool.MeasureBatch(reqs, "cuda");
  for (const auto& r : ok) {
    EXPECT_TRUE(r.ok);
    EXPECT_DOUBLE_EQ(r.seconds, 0.5);
    EXPECT_GT(r.queue_seconds, 0);  // RPC overhead modeled
  }
  auto missing = pool.MeasureBatch(reqs, "no_such_target");
  for (const auto& r : missing) {
    EXPECT_FALSE(r.ok);
  }
}

TEST(BaselinesTest, ProfilesEncodePaperStructure) {
  Target gpu = Target::TitanX();
  // cuDNN: common 3x3 conv runs near its best; DQN's 4x4 s2 conv runs far worse
  // relative to its flop count (the Figure 14 explanation).
  topi::OpWorkload common{"conv2d", 1, 56, 56, 64, 64, 3, 1, 1};
  topi::OpWorkload weird{"conv2d", 1, 20, 20, 32, 64, 4, 2, 0};
  double eff_common = common.Flops() /
                      baselines::OperatorSeconds(baselines::Library::kCudnn, common, gpu);
  double eff_weird =
      weird.Flops() / baselines::OperatorSeconds(baselines::Library::kCudnn, weird, gpu);
  EXPECT_GT(eff_common, 2.0 * eff_weird);
  // Depthwise falls to framework kernels: far lower flop efficiency than dense conv.
  topi::OpWorkload dw{"depthwise_conv2d", 1, 56, 56, 128, 128, 3, 1, 1};
  double eff_dw =
      dw.Flops() / baselines::OperatorSeconds(baselines::Library::kMxNetKernels, dw, gpu);
  EXPECT_GT(eff_common, 4.0 * eff_dw);
}

TEST(LowpTest, BitserialConvMatchesReference) {
  // 2-bit activations x bipolar 1-bit weights, computed exactly by the interpreter.
  const int n = 6, c = 3, k = 3;
  Tensor data = placeholder({make_int(1), make_int(c), make_int(n), make_int(n)},
                            DataType::Int8(), "data");
  Tensor kernel = placeholder({make_int(4), make_int(c), make_int(k), make_int(k)},
                              DataType::Int8(), "kernel");
  Tensor out = lowp::BitserialConv2d(data, kernel, 1, 1, 2);
  Schedule s = create_schedule({out});
  for (const Tensor& t : out.op()->InputTensors()) {
    if (t.name().find(".pad") != std::string::npos) {
      (*s)[t]->compute_inline();
    }
  }
  LoweredFunc f = Lower(s, {data, kernel, out}, "bits");
  NDArray d = NDArray::Random({1, c, n, n}, DataType::Int(2), 3);   // values 0..3
  NDArray w = NDArray::Random({4, c, k, k}, DataType::Int(1), 4);   // values 0..1
  NDArray o = NDArray::Empty({1, 4, n, n}, DataType::Int32());
  RunLowered(f, {d.Binding(), w.Binding(), o.Binding()});
  // Reference: sum over taps of act * (2w - 1).
  for (int f2 = 0; f2 < 4; ++f2) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        int ref = 0;
        for (int ch = 0; ch < c; ++ch) {
          for (int dy = 0; dy < k; ++dy) {
            for (int dx = 0; dx < k; ++dx) {
              int iy = y + dy - 1, ix = x + dx - 1;
              if (iy < 0 || iy >= n || ix < 0 || ix >= n) {
                continue;
              }
              int act = d.Data<int8_t>()[(ch * n + iy) * n + ix];
              int wgt = w.Data<int8_t>()[((f2 * c + ch) * k + dy) * k + dx];
              ref += act * (2 * wgt - 1);
            }
          }
        }
        ASSERT_EQ(o.Data<int32_t>()[(f2 * n + y) * n + x], ref)
            << f2 << " " << y << " " << x;
      }
    }
  }
}

TEST(LowpTest, CostModelShapes) {
  // Multi-threading helps 3x3 more than the low-intensity 1x1 (Figure 18's note).
  topi::OpWorkload c6{"conv2d", 1, 28, 28, 128, 128, 3, 1, 1};
  topi::OpWorkload c3{"conv2d", 1, 56, 56, 64, 64, 1, 1, 0};
  double s6_1 = lowp::EstimateBitserialSeconds(c6, 2, 1, 1, true);
  double s6_4 = lowp::EstimateBitserialSeconds(c6, 2, 1, 4, true);
  double s3_1 = lowp::EstimateBitserialSeconds(c3, 2, 1, 1, true);
  double s3_4 = lowp::EstimateBitserialSeconds(c3, 2, 1, 4, true);
  EXPECT_GT(s6_1 / s6_4, s3_1 / s3_4 * 0.99);
  EXPECT_GT(s6_1 / s6_4, 2.0);
}

}  // namespace
}  // namespace tvmcpp
