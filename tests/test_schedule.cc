// Schedule-layer unit tests: the bookkeeping of every primitive (leaf lists, relations,
// attach state, dataflow rewiring of cache_read/cache_write) independent of lowering.
#include <gtest/gtest.h>

#include "src/ir/printer.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"

namespace tvmcpp {
namespace {

Tensor SimpleMatmul(int n, Tensor* a, Tensor* b) {
  Tensor A = placeholder({make_int(n), make_int(n)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(n), make_int(n)}, DataType::Float32(), "B");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(n)), "rk");
  Tensor C = compute({make_int(n), make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({i[0], rk->var}) * B({rk->var, i[1]}), {rk});
                     },
                     "C");
  *a = A;
  *b = B;
  return C;
}

TEST(ScheduleTest, CreateScheduleTopoOrder) {
  Tensor A, B;
  Tensor C = SimpleMatmul(16, &A, &B);
  Schedule s = create_schedule({C});
  // Stages: A, B placeholders then C; producers precede consumers.
  ASSERT_EQ(s->stages.size(), 3u);
  EXPECT_EQ(s->stages.back()->op->name, "C");
  EXPECT_TRUE(s->stages.back()->is_output);
}

TEST(ScheduleTest, SplitBookkeeping) {
  Tensor A, B;
  Tensor C = SimpleMatmul(16, &A, &B);
  Schedule s = create_schedule({C});
  Stage sc = (*s)[C];
  ASSERT_EQ(sc->leaf_iter_vars.size(), 3u);  // y, x, rk
  IterVar o, i;
  sc->split(sc->leaf_iter_vars[0], 4, &o, &i);
  EXPECT_EQ(sc->leaf_iter_vars.size(), 4u);
  EXPECT_EQ(sc->leaf_iter_vars[0].get(), o.get());
  EXPECT_EQ(sc->leaf_iter_vars[1].get(), i.get());
  ASSERT_EQ(sc->relations.size(), 1u);
  EXPECT_EQ(sc->relations[0].kind, IterVarRelation::Kind::kSplit);
  EXPECT_EQ(get_const_int(sc->relations[0].factor), 4);
  // Reduce-axis splits keep the reduce type.
  IterVar ko, ki;
  sc->split(sc->leaf_iter_vars[3], 8, &ko, &ki);
  EXPECT_EQ(ko->type, IterVarType::kCommReduce);
  EXPECT_EQ(ki->type, IterVarType::kCommReduce);
}

TEST(ScheduleTest, FuseRequiresAdjacency) {
  Tensor A, B;
  Tensor C = SimpleMatmul(16, &A, &B);
  Schedule s = create_schedule({C});
  Stage sc = (*s)[C];
  IterVar f = sc->fuse(sc->leaf_iter_vars[0], sc->leaf_iter_vars[1]);
  EXPECT_EQ(sc->leaf_iter_vars.size(), 2u);
  EXPECT_EQ(sc->leaf_iter_vars[0].get(), f.get());
  EXPECT_EQ(get_const_int(f->dom.extent()), 256);
  // Fusing non-adjacent vars must fail loudly.
  Tensor A2, B2;
  Tensor C2 = SimpleMatmul(16, &A2, &B2);
  Schedule s2 = create_schedule({C2});
  Stage sc2 = (*s2)[C2];
  EXPECT_THROW(sc2->fuse(sc2->leaf_iter_vars[0], sc2->leaf_iter_vars[2]), InternalError);
}

TEST(ScheduleTest, ReorderPreservesSet) {
  Tensor A, B;
  Tensor C = SimpleMatmul(16, &A, &B);
  Schedule s = create_schedule({C});
  Stage sc = (*s)[C];
  IterVar y = sc->leaf_iter_vars[0], x = sc->leaf_iter_vars[1], k = sc->leaf_iter_vars[2];
  sc->reorder({k, x, y});
  EXPECT_EQ(sc->leaf_iter_vars[0].get(), k.get());
  EXPECT_EQ(sc->leaf_iter_vars[1].get(), x.get());
  EXPECT_EQ(sc->leaf_iter_vars[2].get(), y.get());
}

TEST(ScheduleTest, CacheWriteRewiresDataflow) {
  Tensor A, B;
  Tensor C = SimpleMatmul(16, &A, &B);
  Schedule s = create_schedule({C});
  Tensor CL = s->cache_write(C, "local");
  // C's op is now a copy: no reduce axis, reads CL.
  auto* cop = dynamic_cast<ComputeOpNode*>(C.op().get());
  ASSERT_NE(cop, nullptr);
  EXPECT_TRUE(cop->reduce_axis.empty());
  std::vector<Tensor> ins = cop->InputTensors();
  ASSERT_EQ(ins.size(), 1u);
  EXPECT_EQ(ins[0], CL);
  // The cache carries the reduction and reads A and B.
  auto* lop = dynamic_cast<ComputeOpNode*>(CL.op().get());
  ASSERT_NE(lop, nullptr);
  EXPECT_EQ(lop->reduce_axis.size(), 1u);
  EXPECT_EQ((*s)[CL]->scope, "local");
  // The cache stage precedes the output stage.
  size_t cache_pos = 0, out_pos = 0;
  for (size_t i = 0; i < s->stages.size(); ++i) {
    if (s->stages[i]->op.get() == CL.op().get()) {
      cache_pos = i;
    }
    if (s->stages[i]->op.get() == C.op().get()) {
      out_pos = i;
    }
  }
  EXPECT_LT(cache_pos, out_pos);
}

TEST(ScheduleTest, CacheReadRedirectsReaders) {
  Tensor A, B;
  Tensor C = SimpleMatmul(16, &A, &B);
  Schedule s = create_schedule({C});
  Tensor AS = s->cache_read(A, "shared", {C.op()});
  EXPECT_EQ((*s)[AS]->scope, "shared");
  // C no longer reads A directly.
  bool reads_a = false, reads_as = false;
  for (const Tensor& t : C.op()->InputTensors()) {
    reads_a |= t == A;
    reads_as |= t == AS;
  }
  EXPECT_FALSE(reads_a);
  EXPECT_TRUE(reads_as);
}

TEST(ScheduleTest, ThreadAxisKinds) {
  EXPECT_EQ(thread_axis("threadIdx.x")->type, IterVarType::kThreadIndex);
  EXPECT_EQ(thread_axis("blockIdx.y")->type, IterVarType::kThreadIndex);
  EXPECT_EQ(thread_axis("vthread")->type, IterVarType::kVirtualThread);
}

TEST(ScheduleTest, InlineRejectsReductionsAndOutputs) {
  Tensor A, B;
  Tensor C = SimpleMatmul(16, &A, &B);
  Schedule s = create_schedule({C});
  EXPECT_THROW((*s)[C]->compute_inline(), InternalError);  // output + reduction
}

TEST(ScheduleTest, AttrsAccumulate) {
  Tensor A, B;
  Tensor C = SimpleMatmul(16, &A, &B);
  Schedule s = create_schedule({C});
  Stage sc = (*s)[C];
  IterVar x = sc->leaf_iter_vars[1];
  sc->vectorize(x);
  const IterVarAttr* attr = sc->GetAttr(x);
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(attr->for_type, ForType::kVectorized);
  sc->pragma(x, "auto_unroll");
  EXPECT_EQ(sc->GetAttr(x)->pragmas.size(), 1u);
}

}  // namespace
}  // namespace tvmcpp
