// IR-layer tests: dtype behavior, expression construction, substitution, structural
// equality, printing, and — most importantly — a property sweep checking that
// Simplify() preserves the value of randomly generated integer expressions.
#include <gtest/gtest.h>

#include <vector>

#include "src/ir/printer.h"
#include "src/ir/simplify.h"
#include "src/ir/substitute.h"
#include "src/lower/intset.h"
#include "src/support/random.h"

namespace tvmcpp {
namespace {

TEST(DataTypeTest, Basics) {
  EXPECT_EQ(DataType::Float32().ToString(), "float32");
  EXPECT_EQ(DataType::Int8().ToString(), "int8");
  EXPECT_EQ(DataType::Bool().ToString(), "bool");
  EXPECT_EQ(DataType::Float16(4).ToString(), "float16x4");
  EXPECT_EQ(DataType::Int(2).bytes(), 1);
  EXPECT_TRUE(DataType::Handle().is_handle());
  EXPECT_EQ(DataType::Float32().with_lanes(8).lanes(), 8);
}

TEST(ExprTest, TypeUnification) {
  Expr i = make_int(3);
  Expr f = make_float(2.5);
  Expr sum = i + f;
  EXPECT_TRUE(sum->dtype.is_float());
  Expr cmp = lt(make_int(1), make_int(2));
  EXPECT_TRUE(cmp->dtype.is_bool());
}

TEST(ExprTest, ConstHelpers) {
  EXPECT_TRUE(is_zero(make_int(0)));
  EXPECT_TRUE(is_one(make_float(1.0)));
  int64_t v;
  EXPECT_TRUE(is_const_int(make_int(42), &v));
  EXPECT_EQ(v, 42);
  EXPECT_EQ(get_const_int(Simplify(make_int(6) * make_int(7))), 42);
}

TEST(SubstituteTest, ReplacesAndPreserves) {
  Var x = make_var("x"), y = make_var("y");
  Expr e = x * 4 + y;
  Expr r = Substitute(e, {{x.get(), make_int(5)}});
  EXPECT_EQ(get_const_int(Simplify(Substitute(r, {{y.get(), make_int(2)}}))), 22);
  // y untouched.
  EXPECT_TRUE(UsesVar(r, y.get()));
  EXPECT_FALSE(UsesVar(r, x.get()));
}

TEST(StructuralEqualTest, Basics) {
  Var x = make_var("x");
  EXPECT_TRUE(StructuralEqual(x + 1, x + 1));
  EXPECT_FALSE(StructuralEqual(x + 1, x + 2));
  Var y = make_var("x");  // same name, different identity
  EXPECT_FALSE(StructuralEqual(x + 1, y + 1));
}

TEST(SimplifyTest, LinearCancellation) {
  Var by = make_var("by"), ty = make_var("ty");
  // (by*4 + ty) - by*4 -> ty
  Expr e = Simplify((by * 4 + ty) - by * 4);
  EXPECT_TRUE(StructuralEqual(e, Expr(ty))) << ToString(e);
  // (by*4 + 3) - (by*4) + 1 -> 4
  EXPECT_EQ(get_const_int(Simplify((by * 4 + 3) - by * 4 + 1)), 4);
}

TEST(SimplifyTest, SplitIndexCollapse) {
  Analyzer ana;
  Var yo = make_var("yo"), yi = make_var("yi");
  ana.Bind(yi.get(), 0, 7);
  // (yo*8 + yi) / 8 -> yo ; (yo*8 + yi) % 8 -> yi
  EXPECT_TRUE(StructuralEqual(ana.Simplify((yo * 8 + yi) / 8), Expr(yo)));
  EXPECT_TRUE(StructuralEqual(ana.Simplify((yo * 8 + yi) % 8), Expr(yi)));
}

TEST(SimplifyTest, BoundBasedComparisons) {
  Analyzer ana;
  Var i = make_var("i");
  ana.Bind(i.get(), 0, 9);
  EXPECT_TRUE(ana.CanProve(lt(i, make_int(10))));
  EXPECT_TRUE(ana.CanProve(ge(i, make_int(0))));
  EXPECT_FALSE(ana.CanProve(lt(i, make_int(9))));
  EXPECT_TRUE(ana.CanProveLT(i + 5, 15));
}

TEST(IntSetTest, RegionOfAffineIndex) {
  Var ko = make_var("ko"), ki = make_var("ki");
  DomainMap dom;
  dom[ki.get()] = IntSet::FromMinExtent(make_int(0), make_int(8));
  IntSet s = EvalIntSet(ko * 8 + ki, dom);
  ASSERT_TRUE(s.defined());
  EXPECT_EQ(get_const_int(Simplify(s.max - s.min)), 7);
}

TEST(PrinterTest, RoundTripReadable) {
  Var x = make_var("x");
  Expr e = select(lt(x, make_int(3)), x * 2, x - 1);
  std::string s = ToString(e);
  EXPECT_NE(s.find("select"), std::string::npos);
  EXPECT_NE(s.find("x"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Property sweep: Simplify preserves semantics of random integer expressions.
// ---------------------------------------------------------------------------

// Builds a random expression over the given variables.
Expr RandomExpr(Rng* rng, const std::vector<Var>& vars, int depth) {
  if (depth == 0 || rng->Uniform(4) == 0) {
    if (rng->Uniform(2) == 0) {
      return make_int(rng->UniformInt(-8, 8));
    }
    return vars[rng->Uniform(vars.size())];
  }
  Expr a = RandomExpr(rng, vars, depth - 1);
  Expr b = RandomExpr(rng, vars, depth - 1);
  switch (rng->Uniform(7)) {
    case 0:
      return a + b;
    case 1:
      return a - b;
    case 2:
      return a * b;
    case 3:
      return min(a, b);
    case 4:
      return max(a, b);
    case 5:
      return a / make_int(static_cast<int64_t>(1 + rng->Uniform(7)));
    default:
      return a % make_int(static_cast<int64_t>(1 + rng->Uniform(7)));
  }
}

int64_t EvalIntExpr(const Expr& e, const std::vector<Var>& vars,
                    const std::vector<int64_t>& values) {
  switch (e->kind) {
    case ExprKind::kIntImm:
      return static_cast<const IntImmNode*>(e.get())->value;
    case ExprKind::kVar: {
      for (size_t i = 0; i < vars.size(); ++i) {
        if (vars[i].get() == e.get()) {
          return values[i];
        }
      }
      ADD_FAILURE() << "unknown var";
      return 0;
    }
    default: {
      const auto* b = static_cast<const BinaryNode*>(e.get());
      int64_t x = EvalIntExpr(b->a, vars, values);
      int64_t y = EvalIntExpr(b->b, vars, values);
      switch (e->kind) {
        case ExprKind::kAdd:
          return x + y;
        case ExprKind::kSub:
          return x - y;
        case ExprKind::kMul:
          return x * y;
        case ExprKind::kDiv:
          return FloorDiv(x, y);
        case ExprKind::kMod:
          return FloorMod(x, y);
        case ExprKind::kMin:
          return std::min(x, y);
        case ExprKind::kMax:
          return std::max(x, y);
        default:
          ADD_FAILURE() << "unexpected kind";
          return 0;
      }
    }
  }
}

class SimplifyProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyProperty, PreservesValue) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 77 + 5);
  std::vector<Var> vars = {make_var("a"), make_var("b"), make_var("c")};
  Analyzer ana;
  for (const Var& v : vars) {
    ana.Bind(v.get(), 0, 15);
  }
  for (int iter = 0; iter < 20; ++iter) {
    Expr e = RandomExpr(&rng, vars, 4);
    Expr s = ana.Simplify(e);
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<int64_t> values;
      for (size_t i = 0; i < vars.size(); ++i) {
        values.push_back(rng.UniformInt(0, 15));
      }
      VarMap vmap;
      for (size_t i = 0; i < vars.size(); ++i) {
        vmap[vars[i].get()] = make_int(values[i]);
      }
      int64_t expect = get_const_int(Simplify(Substitute(e, vmap)));
      int64_t got = get_const_int(Simplify(Substitute(s, vmap)));
      ASSERT_EQ(expect, got) << "expr: " << ToString(e) << "\nsimplified: " << ToString(s);
      // Also cross-check direct evaluation.
      ASSERT_EQ(EvalIntExpr(e, vars, values), expect) << ToString(e);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplifyProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace tvmcpp
