// Differential tests for dynamic request batching (src/serve/batch.*, the
// coalescing scheduler in serve.cc, and the Rebatch path in src/graph):
//
// Batched execution must be *bitwise* identical to per-request sequential runs
// under TVMCPP_VM_STRICT=1 — the same bar test_vm.cc / test_vectorize.cc /
// test_serve.cc set — across batch sizes {1, 2, 3 (non-power-of-two), max_batch},
// mixed dtypes (f32/f16), and mixed-model queues where only same-model requests may
// coalesce. ServerStats batch counters (batches formed, mean batch size,
// timeout-flushed vs full-flushed) pin the coalescing policy itself.
//
// Determinism note: coalescing tests run with num_workers = 1 so exactly one
// scheduler job forms batches at a time — batch composition is then a function of
// submission order plus the linger, not of worker racing.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/frontend/models.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/serve/batch.h"
#include "src/serve/serve.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

// Same topology as test_serve.cc's chain: fusion yields several kernels and the
// memory plan recycles intermediate storage, so batching bugs (mis-sliced outputs,
// cross-request bleed in the concat buffer) corrupt results visibly.
graph::Graph MakeConvChain(DataType dtype) {
  graph::Graph g;
  int data = g.AddInput("data", {1, 4, 8, 8}, dtype);
  int w1 = g.AddConst("w1", {8, 4, 3, 3}, dtype);
  int w2 = g.AddConst("w2", {8, 8, 1, 1}, dtype);
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int r1 = g.AddOp("relu", "relu1", {c1});
  int c2 = g.AddOp("conv2d", "conv2", {r1, w2}, {{"stride", 1}, {"pad", 0}});
  g.outputs = {g.AddOp("relu", "relu2", {c2})};
  return g;
}

std::unordered_map<std::string, NDArray> ChainWeights(DataType dtype, uint64_t seed) {
  std::unordered_map<std::string, NDArray> w;
  w["w1"] = NDArray::Random({8, 4, 3, 3}, dtype, seed + 1);
  w["w2"] = NDArray::Random({8, 8, 1, 1}, dtype, seed + 2);
  return w;
}

NDArray ChainInput(DataType dtype, uint64_t seed) {
  return NDArray::Random({1, 4, 8, 8}, dtype, 1000 + seed);
}

std::shared_ptr<graph::CompiledGraph> MakeChainModel(DataType dtype,
                                                     uint64_t weight_seed) {
  auto model = std::make_shared<graph::CompiledGraph>(MakeConvChain(dtype),
                                                      Target::ArmA53(),
                                                      graph::CompileOptions{});
  for (const auto& kv : ChainWeights(dtype, weight_seed)) {
    model->SetParam(kv.first, kv.second);
  }
  return model;
}

// Sequential oracle: one fresh batch-1 GraphExecutor run per input — exactly the
// pre-batching, pre-serving execution path.
NDArray SequentialRun(DataType dtype, uint64_t weight_seed, const NDArray& input) {
  graph::GraphExecutor exec(MakeConvChain(dtype), Target::ArmA53(), {});
  for (const auto& kv : ChainWeights(dtype, weight_seed)) {
    exec.SetParam(kv.first, kv.second);
  }
  exec.SetInput("data", input);
  exec.Run();
  return exec.GetOutput(0).Copy();
}

void ExpectBitwiseEqual(const NDArray& a, const NDArray& b, const std::string& what) {
  ASSERT_EQ(a.NumElements(), b.NumElements()) << what;
  EXPECT_EQ(std::memcmp(a.Data<char>(), b.Data<char>(),
                        static_cast<size_t>(a.ByteSize())),
            0)
      << what << ": outputs differ";
}

// Any VM->interpreter fallback during batched execution (including inside the
// lazily compiled batched variants) fails the test loudly.
struct ScopedStrictMode {
  bool saved;
  ScopedStrictMode() : saved(vm::StrictMode()) { vm::SetStrictMode(true); }
  ~ScopedStrictMode() { vm::SetStrictMode(saved); }
};

// ---------------------------------------------------------------------------
// Building blocks
// ---------------------------------------------------------------------------

TEST(Rebatch, GraphShapesScaleOnlyBatchDim) {
  graph::Graph g = MakeConvChain(DataType::Float32());
  graph::Graph b = graph::RebatchGraph(g, 3);
  ASSERT_EQ(b.num_nodes(), g.num_nodes());
  for (const graph::Node& n : g.nodes()) {
    const graph::Node& bn = b.node(n.id);
    EXPECT_EQ(bn.op, n.op);
    EXPECT_EQ(bn.name, n.name);
    if (n.op == "const") {
      EXPECT_EQ(bn.shape, n.shape) << "weights must be batch-invariant: " << n.name;
    } else {
      ASSERT_EQ(bn.shape.size(), n.shape.size());
      EXPECT_EQ(bn.shape[0], n.shape[0] * 3) << n.name;
      for (size_t d = 1; d < n.shape.size(); ++d) {
        EXPECT_EQ(bn.shape[d], n.shape[d]) << n.name << " dim " << d;
      }
    }
  }
  EXPECT_EQ(b.outputs, g.outputs);
}

TEST(Rebatch, CompiledVariantSharesWeightsBitwise) {
  ScopedStrictMode strict;
  std::shared_ptr<graph::CompiledGraph> base = MakeChainModel(DataType::Float32(), 5);
  std::shared_ptr<graph::CompiledGraph> batched = base->Rebatched(2);

  NDArray in0 = ChainInput(DataType::Float32(), 0);
  NDArray in1 = ChainInput(DataType::Float32(), 1);
  // Run the batched variant on the concatenation of two inputs directly.
  graph::RunContext ctx(batched);
  serve::NamedTensors r0{{"data", in0}};
  serve::NamedTensors r1{{"data", in1}};
  serve::BindConcatenatedInputs({&r0, &r1}, &ctx);
  batched->Run(&ctx);
  std::vector<std::vector<NDArray>> slices = serve::SliceBatchedOutputs(ctx, 2);
  ExpectBitwiseEqual(slices[0][0], SequentialRun(DataType::Float32(), 5, in0),
                     "slice 0");
  ExpectBitwiseEqual(slices[1][0], SequentialRun(DataType::Float32(), 5, in1),
                     "slice 1");
}

TEST(Batch, NDArrayOffsetViews) {
  NDArray big = NDArray::Random({4, 3}, DataType::Float32(), 42);
  NDArray slice = NDArray::ShareStorage(big, {2, 3}, DataType::Float32(),
                                        2 * 3 * sizeof(float));
  EXPECT_TRUE(slice.SameStorageAs(big));
  EXPECT_EQ(slice.ByteSize(), 2 * 3 * static_cast<int64_t>(sizeof(float)));
  EXPECT_EQ(std::memcmp(slice.Data<char>(), big.Data<char>() + 2 * 3 * sizeof(float),
                        static_cast<size_t>(slice.ByteSize())),
            0);
  // A view of a view composes offsets; Copy() of a view copies the viewed bytes.
  NDArray row = NDArray::ShareStorage(slice, {1, 3}, DataType::Float32(),
                                      3 * sizeof(float));
  EXPECT_EQ(row.Data<float>()[0], big.Data<float>()[9]);
  NDArray copy = row.Copy();
  EXPECT_FALSE(copy.SameStorageAs(big));
  EXPECT_EQ(std::memcmp(copy.Data<char>(), row.Data<char>(),
                        static_cast<size_t>(row.ByteSize())),
            0);
}

TEST(Batch, ShapesCoalescePredicate) {
  NDArray a = NDArray::Random({1, 4}, DataType::Float32(), 1);
  NDArray b = NDArray::Random({1, 4}, DataType::Float32(), 2);
  NDArray wider = NDArray::Random({2, 4}, DataType::Float32(), 3);
  NDArray half = NDArray::Random({1, 4}, DataType::Float16(), 4);
  EXPECT_TRUE(serve::ShapesCoalesce({{"x", a}}, {{"x", b}}));
  EXPECT_FALSE(serve::ShapesCoalesce({{"x", a}}, {{"x", wider}}));  // shape differs
  EXPECT_FALSE(serve::ShapesCoalesce({{"x", a}}, {{"x", half}}));   // dtype differs
  EXPECT_FALSE(serve::ShapesCoalesce({{"x", a}}, {{"y", b}}));      // name differs
  EXPECT_FALSE(serve::ShapesCoalesce({{"x", a}}, {{"x", a}, {"y", b}}));
}

// ---------------------------------------------------------------------------
// End-to-end coalescing through the server
// ---------------------------------------------------------------------------

// One worker + a generous linger: submit `k` requests, expect exactly one batch of
// size k, flushed by reaching max_batch (k == max) or by the linger deadline
// (k < max). Every response must be bitwise-equal to the sequential oracle.
void RunBatchOfK(int k, int max_batch, DataType dtype) {
  ScopedStrictMode strict;
  const uint64_t kWeightSeed = 7;
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(dtype, kWeightSeed);

  serve::ServerOptions opts;
  opts.num_workers = 1;
  opts.max_batch = max_batch;
  opts.batch_timeout_ms = 400;
  serve::InferenceServer server(opts);

  std::vector<NDArray> inputs;
  std::vector<std::future<serve::InferenceResponse>> futures;
  for (int i = 0; i < k; ++i) {
    inputs.push_back(ChainInput(dtype, static_cast<uint64_t>(i)));
    serve::InferenceRequest req;
    req.inputs["data"] = inputs.back();
    futures.push_back(server.Submit(model, std::move(req)));
  }
  for (int i = 0; i < k; ++i) {
    serve::InferenceResponse resp = futures[static_cast<size_t>(i)].get();
    ASSERT_EQ(resp.outputs.size(), 1u);
    EXPECT_EQ(resp.batch_size, k);
    ExpectBitwiseEqual(resp.outputs[0],
                       SequentialRun(dtype, kWeightSeed,
                                     inputs[static_cast<size_t>(i)]),
                       "batched request " + std::to_string(i));
  }
  serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, k);
  EXPECT_EQ(stats.completed, k);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.batched_requests, k);
  if (k == max_batch) {
    EXPECT_EQ(stats.full_batches, 1);
    EXPECT_EQ(stats.timeout_batches, 0);
  } else {
    EXPECT_EQ(stats.full_batches, 0);
    EXPECT_EQ(stats.timeout_batches, 1);
  }
}

TEST(Batching, SizeOneThroughBatchedPath) { RunBatchOfK(1, 4, DataType::Float32()); }
TEST(Batching, SizeTwo) { RunBatchOfK(2, 4, DataType::Float32()); }
TEST(Batching, SizeThreeNonPowerOfTwo) { RunBatchOfK(3, 4, DataType::Float32()); }
TEST(Batching, FullBatchFlushesWithoutTimeout) {
  RunBatchOfK(4, 4, DataType::Float32());
}
TEST(Batching, Float16Batch) { RunBatchOfK(3, 4, DataType::Float16()); }

TEST(Batching, MixedModelQueueCoalescesOnlySameModel) {
  ScopedStrictMode strict;
  // Model A is f32, model B is f16 — interleaved in one queue. Only same-model
  // requests may share a batch; a cross-model (or cross-dtype) mixup would corrupt
  // the differential check below.
  std::shared_ptr<graph::CompiledGraph> model_a =
      MakeChainModel(DataType::Float32(), 11);
  std::shared_ptr<graph::CompiledGraph> model_b =
      MakeChainModel(DataType::Float16(), 23);

  serve::ServerOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 8;
  opts.batch_timeout_ms = 300;
  serve::InferenceServer server(opts);

  const int kPerModel = 3;
  std::vector<NDArray> inputs_a, inputs_b;
  std::vector<std::future<serve::InferenceResponse>> fut_a, fut_b;
  for (int i = 0; i < kPerModel; ++i) {
    inputs_a.push_back(ChainInput(DataType::Float32(), static_cast<uint64_t>(i)));
    inputs_b.push_back(
        ChainInput(DataType::Float16(), static_cast<uint64_t>(100 + i)));
    serve::InferenceRequest ra;
    ra.inputs["data"] = inputs_a.back();
    fut_a.push_back(server.Submit(model_a, std::move(ra)));
    serve::InferenceRequest rb;
    rb.inputs["data"] = inputs_b.back();
    fut_b.push_back(server.Submit(model_b, std::move(rb)));
  }
  for (int i = 0; i < kPerModel; ++i) {
    serve::InferenceResponse resp_a = fut_a[static_cast<size_t>(i)].get();
    ExpectBitwiseEqual(resp_a.outputs[0],
                       SequentialRun(DataType::Float32(), 11,
                                     inputs_a[static_cast<size_t>(i)]),
                       "model A request " + std::to_string(i));
    serve::InferenceResponse resp_b = fut_b[static_cast<size_t>(i)].get();
    ExpectBitwiseEqual(resp_b.outputs[0],
                       SequentialRun(DataType::Float16(), 23,
                                     inputs_b[static_cast<size_t>(i)]),
                       "model B request " + std::to_string(i));
  }
  // Exactly two batches (one per model), each of size kPerModel, both flushed by
  // the linger deadline: mean batch size == kPerModel.
  serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches, 2);
  EXPECT_EQ(stats.batched_requests, 2 * kPerModel);
  EXPECT_EQ(stats.full_batches, 0);
  EXPECT_EQ(stats.timeout_batches, 2);
  EXPECT_EQ(stats.batched_requests / stats.batches, kPerModel);
}

TEST(Batching, FrontendBuilderPathMultiInputModel) {
  ScopedStrictMode strict;
  // The frontend batch-N construction path: batched variants of the LSTM LM are
  // *built* at batch = N via the model constructor's batch parameter instead of
  // derived by RebatchGraph. Parameters are seeded deterministically per name, so
  // builder(N) carries bitwise-identical weights to builder(1). Also exercises
  // multi-input concat (data, h0, c0).
  const Target target = Target::ArmA53();
  auto build = [&](int batch) {
    return frontend::CompileModel(frontend::LstmLanguageModel(2, 8, batch), target);
  };
  std::shared_ptr<const graph::CompiledGraph> base = build(1);

  serve::ServerOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 3;
  opts.batch_timeout_ms = 400;
  serve::InferenceServer server(opts);
  server.SetBatchBuilder(base, build);

  const int kRequests = 3;  // == max_batch -> one full-flushed batch
  std::vector<serve::NamedTensors> inputs(kRequests);
  std::vector<std::future<serve::InferenceResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    uint64_t s = static_cast<uint64_t>(10 * i);
    inputs[static_cast<size_t>(i)] = {
        {"data", NDArray::Random({1, 8}, DataType::Float32(), 500 + s)},
        {"h0", NDArray::Random({1, 8}, DataType::Float32(), 501 + s)},
        {"c0", NDArray::Random({1, 8}, DataType::Float32(), 502 + s)}};
    serve::InferenceRequest req;
    req.inputs = inputs[static_cast<size_t>(i)];
    futures.push_back(server.Submit(base, std::move(req)));
  }
  for (int i = 0; i < kRequests; ++i) {
    serve::InferenceResponse resp = futures[static_cast<size_t>(i)].get();
    EXPECT_EQ(resp.batch_size, kRequests);
    // Oracle: the same request run alone on the batch-1 model.
    graph::RunContext ctx(base);
    for (const auto& kv : inputs[static_cast<size_t>(i)]) {
      ctx.SetInput(kv.first, kv.second);
    }
    base->Run(&ctx);
    ExpectBitwiseEqual(resp.outputs[0], ctx.GetOutput(0),
                       "lstm request " + std::to_string(i));
  }
  serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.full_batches, 1);
}

TEST(Batching, DisabledMaxBatchOneKeepsLegacyCounters) {
  ScopedStrictMode strict;
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(DataType::Float32(), 3);
  serve::ServerOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 1;  // explicit: batching off
  serve::InferenceServer server(opts);
  for (int i = 0; i < 4; ++i) {
    serve::InferenceRequest req;
    req.inputs["data"] = ChainInput(DataType::Float32(), static_cast<uint64_t>(i));
    serve::InferenceResponse resp = server.Submit(model, std::move(req)).get();
    EXPECT_EQ(resp.batch_size, 1);
  }
  serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 4);
  EXPECT_EQ(stats.batches, 0);
  EXPECT_EQ(stats.batched_requests, 0);
  EXPECT_EQ(stats.full_batches, 0);
  EXPECT_EQ(stats.timeout_batches, 0);
}

}  // namespace
}  // namespace tvmcpp
