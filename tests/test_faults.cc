// Fault-injection differential suite (src/support/failpoint.*, the serving
// layer's retry/fallback/shed ladder in src/serve/serve.cc).
//
// The bar: an injected fault may cost latency, never correctness. Requests that
// recover — by retry, by batch split, or by the interpreter down-tier — must
// return outputs *bitwise* identical to a fault-free sequential run, under
// TVMCPP_VM_STRICT=1 so a silent engine downgrade cannot masquerade as recovery
// (the explicit force_interp fallback is exempt by design). Requests that cannot
// recover must fail with a typed status on their own future while cohabitants
// succeed, and Shutdown must drain every future no matter what was armed.
//
// Every test disarms the registry on entry and exit (ScopedFailpoints), so the
// suite is self-contained even when TVMCPP_FAILPOINTS is armed globally (the CI
// fault-smoke job re-runs the whole binary that way).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/interp/interp.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/serve/queue.h"
#include "src/serve/serve.h"
#include "src/support/failpoint.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

namespace fp = failpoint;

// Disarm on entry (isolating the test from env-armed specs) and on exit
// (isolating later tests from this one).
struct ScopedFailpoints {
  ScopedFailpoints() { fp::DisarmAll(); }
  ~ScopedFailpoints() { fp::DisarmAll(); }
};

struct ScopedStrictMode {
  bool saved;
  ScopedStrictMode() : saved(vm::StrictMode()) { vm::SetStrictMode(true); }
  ~ScopedStrictMode() { vm::SetStrictMode(saved); }
};

// Tests that fault the VM tier specifically (vm.run) need the VM to be the
// executing tier: under TVMCPP_ENGINE=interp every kernel already runs on the
// interpreter, and under TVMCPP_ENGINE=native compiled kernels run in the
// dlopen'd module — either way the vm.run fail-point is never reached.
bool NoVmTier() { return GetExecEngine() != ExecEngine::kVm; }

// Same conv+relu chain as test_serve.cc: several fused kernels, recycled
// intermediate storage, batch-covariant input — recovery bugs corrupt visibly.
graph::Graph MakeConvChain() {
  graph::Graph g;
  int data = g.AddInput("data", {1, 4, 8, 8});
  int w1 = g.AddConst("w1", {8, 4, 3, 3});
  int w2 = g.AddConst("w2", {8, 8, 1, 1});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int r1 = g.AddOp("relu", "relu1", {c1});
  int c2 = g.AddOp("conv2d", "conv2", {r1, w2}, {{"stride", 1}, {"pad", 0}});
  g.outputs = {g.AddOp("relu", "relu2", {c2})};
  return g;
}

std::unordered_map<std::string, NDArray> ChainWeights(uint64_t seed) {
  std::unordered_map<std::string, NDArray> w;
  w["w1"] = NDArray::Random({8, 4, 3, 3}, DataType::Float32(), seed + 1);
  w["w2"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), seed + 2);
  return w;
}

NDArray ChainInput(uint64_t seed) {
  return NDArray::Random({1, 4, 8, 8}, DataType::Float32(), 1000 + seed);
}

std::shared_ptr<graph::CompiledGraph> MakeChainModel(uint64_t weight_seed) {
  auto model = std::make_shared<graph::CompiledGraph>(
      MakeConvChain(), Target::ArmA53(), graph::CompileOptions{});
  for (const auto& kv : ChainWeights(weight_seed)) {
    model->SetParam(kv.first, kv.second);
  }
  return model;
}

// Fault-free oracle: one fresh batch-1 GraphExecutor run per input.
NDArray SequentialRun(uint64_t weight_seed, const NDArray& input) {
  graph::GraphExecutor exec(MakeConvChain(), Target::ArmA53(), {});
  for (const auto& kv : ChainWeights(weight_seed)) {
    exec.SetParam(kv.first, kv.second);
  }
  exec.SetInput("data", input);
  exec.Run();
  return exec.GetOutput(0).Copy();
}

void ExpectBitwiseEqual(const NDArray& a, const NDArray& b,
                        const std::string& what) {
  ASSERT_EQ(a.NumElements(), b.NumElements()) << what;
  EXPECT_EQ(std::memcmp(a.Data<char>(), b.Data<char>(),
                        static_cast<size_t>(a.ByteSize())),
            0)
      << what << ": outputs differ";
}

// ---------------------------------------------------------------------------
// Fail-point framework
// ---------------------------------------------------------------------------

TEST(Failpoint, SpecParsing) {
  ScopedFailpoints guard;
  EXPECT_TRUE(fp::ArmSpec("a=error(0.5),b=delay(3),c=crash(0.0);d=off"));
  EXPECT_TRUE(fp::ArmSpec("a=error*2"));       // max-fires suffix
  EXPECT_TRUE(fp::ArmSpec("a=delay(2,0.5)*4"));
  EXPECT_FALSE(fp::ArmSpec("a=bogus"));        // unknown action
  EXPECT_FALSE(fp::ArmSpec("a=error(1.5)"));   // probability out of range
  EXPECT_FALSE(fp::ArmSpec("a=delay"));        // delay needs a duration
  EXPECT_FALSE(fp::ArmSpec("=error"));         // empty name
  EXPECT_FALSE(fp::ArmSpec("a=error*-1"));     // negative max-fires
}

TEST(Failpoint, ErrorFiresAndDisarms) {
  ScopedFailpoints guard;
  ASSERT_TRUE(fp::ArmSpec("test.pt=error"));
  EXPECT_THROW(FAILPOINT("test.pt"), fp::InjectedFault);
  try {
    FAILPOINT("test.pt");
    FAIL() << "expected InjectedFault";
  } catch (const fp::InjectedFault& e) {
    EXPECT_EQ(e.point(), "test.pt");
  }
  EXPECT_EQ(fp::FireCount("test.pt"), 2);
  EXPECT_EQ(fp::HitCount("test.pt"), 2);
  fp::Disarm("test.pt");
  EXPECT_NO_THROW(FAILPOINT("test.pt"));  // disarmed: inert
  EXPECT_NO_THROW(FAILPOINT("never.armed"));
}

TEST(Failpoint, MaxFiresCapsFiring) {
  ScopedFailpoints guard;
  ASSERT_TRUE(fp::ArmSpec("test.cap=error*2"));
  int thrown = 0;
  for (int i = 0; i < 5; ++i) {
    try {
      FAILPOINT("test.cap");
    } catch (const fp::InjectedFault&) {
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 2);
  EXPECT_EQ(fp::FireCount("test.cap"), 2);
  EXPECT_EQ(fp::HitCount("test.cap"), 5);
}

TEST(Failpoint, WildcardArmsEveryPoint) {
  ScopedFailpoints guard;
  ASSERT_TRUE(fp::ArmSpec("*=error"));
  EXPECT_THROW(FAILPOINT("some.point"), fp::InjectedFault);
  EXPECT_THROW(FAILPOINT("another.point"), fp::InjectedFault);
  // An explicit entry wins over the wildcard.
  ASSERT_TRUE(fp::ArmSpec("some.point=off"));
  EXPECT_THROW(FAILPOINT("another.point"), fp::InjectedFault);
}

TEST(Failpoint, SafeModeErrorIsInert) {
  ScopedFailpoints guard;
  ASSERT_TRUE(fp::ArmSpec("test.safe=error"));
  EXPECT_NO_THROW(FAILPOINT_SAFE("test.safe"));
  EXPECT_EQ(fp::FireCount("test.safe"), 0);  // counted as hit, never as fire
  EXPECT_EQ(fp::HitCount("test.safe"), 1);
}

TEST(Failpoint, DeterministicPerRequestStreams) {
  ScopedFailpoints guard;
  fp::SetGlobalSeed(42);
  ASSERT_TRUE(fp::ArmSpec("test.det=error(0.5)"));
  auto pattern_for = [](uint64_t stream) {
    fp::ScopedRequestSeed seed(stream);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool threw = false;
      try {
        FAILPOINT("test.det");
      } catch (const fp::InjectedFault&) {
        threw = true;
      }
      fired.push_back(threw);
    }
    return fired;
  };
  std::vector<bool> first = pattern_for(7);
  std::vector<bool> again = pattern_for(7);
  std::vector<bool> other = pattern_for(8);
  EXPECT_EQ(first, again) << "same stream must reproduce the same faults";
  EXPECT_NE(first, other) << "distinct streams must decorrelate";
  // p = 0.5 over 64 draws: both outcomes must actually occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

// ---------------------------------------------------------------------------
// Queue under injected delays: exactly-once MPMC delivery
// ---------------------------------------------------------------------------

TEST(Failpoint, QueueExactlyOnceUnderDelayInjection) {
  ScopedFailpoints guard;
  // Delays at the push/drain seams widen every race window the MPMC queue has;
  // the error action must stay inert at these FAILPOINT_SAFE sites.
  ASSERT_TRUE(fp::ArmSpec(
      "serve.queue_push=delay(0.2,0.3),serve.queue_drain=delay(0.2,0.3)"));
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 50;
  serve::BoundedQueue<int> q(8);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::mutex mu;
  std::set<int> seen;
  std::atomic<int> popped{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int v;
      while (q.Pop(&v)) {
        std::lock_guard<std::mutex> lock(mu);
        ASSERT_TRUE(seen.insert(v).second) << "duplicate delivery of " << v;
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<size_t>(p)].join();
  }
  q.Close();
  for (size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
}

// ---------------------------------------------------------------------------
// Serving-layer recovery: typed errors, retry, fallback, isolation
// ---------------------------------------------------------------------------

TEST(Faults, QueueAdmissionFaultIsTyped) {
  ScopedFailpoints guard;
  ASSERT_TRUE(fp::ArmSpec("serve.queue_push=error"));
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(3);
  serve::InferenceServer server(serve::ServerOptions{});
  serve::InferenceRequest req;
  req.inputs["data"] = ChainInput(1);
  serve::InferenceResponse resp = server.Submit(model, std::move(req)).get();
  EXPECT_EQ(resp.status.code, serve::StatusCode::kQueueFault);
  EXPECT_EQ(server.stats().accepted, 0);  // never admitted
  fp::DisarmAll();
  // The server is unharmed: the next request succeeds.
  serve::InferenceRequest ok;
  ok.inputs["data"] = ChainInput(1);
  EXPECT_TRUE(server.Submit(model, std::move(ok)).get().status.ok());
}

TEST(Faults, TransientRunFaultRetriesBitwiseEqual) {
  ScopedFailpoints guard;
  ScopedStrictMode strict;
  // Fires exactly twice: the first attempt and the first retry fault, the second
  // retry succeeds — still on the VM engine, no fallback involved.
  ASSERT_TRUE(fp::ArmSpec("serve.run=error*2"));
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(17);
  serve::ServerOptions options;
  options.max_retries = 3;
  options.retry_backoff_ms = 0.1;
  serve::InferenceServer server(options);
  NDArray input = ChainInput(5);
  serve::InferenceRequest req;
  req.inputs["data"] = input.Copy();
  serve::InferenceResponse resp = server.Submit(model, std::move(req)).get();
  ASSERT_TRUE(resp.status.ok()) << resp.status.message;
  EXPECT_EQ(resp.retries, 2);
  EXPECT_FALSE(resp.fell_back);
  ExpectBitwiseEqual(resp.outputs[0], SequentialRun(17, input),
                     "retried output vs fault-free oracle");
  serve::ServerStats s = server.stats();
  EXPECT_EQ(s.retries, 2);
  EXPECT_EQ(s.fallbacks, 0);
  EXPECT_EQ(s.per_class[0].retried, 1);
}

TEST(Faults, PersistentVmFaultFallsBackBitwiseEqual) {
  if (NoVmTier()) {
    GTEST_SKIP() << "TVMCPP_ENGINE=interp: no VM tier to fault";
  }
  ScopedFailpoints guard;
  ScopedStrictMode strict;
  // Every VM execution faults; only the interpreter down-tier (which bypasses
  // vm::Run entirely) can serve the request. Strict mode stays on: force_interp
  // is an explicit engine choice, not a silent downgrade.
  ASSERT_TRUE(fp::ArmSpec("vm.run=error"));
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(29);
  serve::ServerOptions options;
  options.max_retries = 1;
  options.retry_backoff_ms = 0.1;
  serve::InferenceServer server(options);
  NDArray input = ChainInput(9);
  serve::InferenceRequest req;
  req.inputs["data"] = input.Copy();
  serve::InferenceResponse resp = server.Submit(model, std::move(req)).get();
  ASSERT_TRUE(resp.status.ok()) << resp.status.message;
  EXPECT_TRUE(resp.fell_back);
  EXPECT_EQ(resp.retries, 2);  // one VM retry + the fallback attempt
  // Disarm before the oracle: SequentialRun goes through vm::Run too, and has no
  // recovery ladder of its own.
  fp::DisarmAll();
  ExpectBitwiseEqual(resp.outputs[0], SequentialRun(29, input),
                     "fallback output vs fault-free oracle");
  serve::ServerStats s = server.stats();
  EXPECT_EQ(s.fallbacks, 1);
  EXPECT_EQ(s.per_class[0].fallback, 1);
}

TEST(Faults, FallbackDisabledReportsTypedFailure) {
  if (NoVmTier()) {
    GTEST_SKIP() << "TVMCPP_ENGINE=interp: no VM tier to fault";
  }
  ScopedFailpoints guard;
  ASSERT_TRUE(fp::ArmSpec("vm.run=error"));
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(31);
  serve::ServerOptions options;
  options.max_retries = 1;
  options.retry_backoff_ms = 0.1;
  options.enable_fallback = 0;
  serve::InferenceServer server(options);
  serve::InferenceRequest req;
  req.inputs["data"] = ChainInput(2);
  serve::InferenceResponse resp = server.Submit(model, std::move(req)).get();
  EXPECT_EQ(resp.status.code, serve::StatusCode::kExecutionFailed);
  EXPECT_NE(resp.status.message.find("injected fault"), std::string::npos)
      << "typed error must carry the fault cause: " << resp.status.message;
  EXPECT_EQ(server.stats().failed, 1);
}

TEST(Faults, BatchCompileFaultDegradesToPerRequest) {
  ScopedFailpoints guard;
  ScopedStrictMode strict;
  // Batch-variant compilation always faults; every coalesced batch must degrade
  // to per-request runs on the base model and still succeed bitwise.
  ASSERT_TRUE(fp::ArmSpec("serve.batch_compile=error"));
  const uint64_t kWeightSeed = 41;
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(kWeightSeed);
  serve::ServerOptions options;
  options.num_workers = 1;  // one scheduler job at a time: deterministic batching
  options.max_batch = 4;
  options.batch_timeout_ms = 50;
  serve::InferenceServer server(options);
  constexpr int kRequests = 4;
  std::vector<NDArray> inputs;
  std::vector<std::future<serve::InferenceResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(ChainInput(static_cast<uint64_t>(i)));
    serve::InferenceRequest req;
    req.inputs["data"] = inputs.back().Copy();
    futures.push_back(server.Submit(model, std::move(req)));
  }
  for (int i = 0; i < kRequests; ++i) {
    serve::InferenceResponse resp = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(resp.status.ok()) << resp.status.message;
    EXPECT_EQ(resp.batch_size, 1) << "degraded requests run per-request";
    ExpectBitwiseEqual(
        resp.outputs[0],
        SequentialRun(kWeightSeed, inputs[static_cast<size_t>(i)]),
        "degraded request " + std::to_string(i));
  }
  serve::ServerStats s = server.stats();
  EXPECT_GE(s.batch_compile_failures, 1);
  EXPECT_EQ(s.failed, 0) << "a compile fault must not fail any request";
}

TEST(Faults, MidBatchFaultIsolatesAndSplits) {
  ScopedFailpoints guard;
  ScopedStrictMode strict;
  // The batched run faults once; the batch must split into per-request ladders
  // and every cohabitant still succeed bitwise (the fire budget is spent on the
  // batch-level evaluation, so the splits run clean).
  ASSERT_TRUE(fp::ArmSpec("serve.run=error*1"));
  const uint64_t kWeightSeed = 43;
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(kWeightSeed);
  serve::ServerOptions options;
  options.num_workers = 1;
  options.max_batch = 4;
  options.batch_timeout_ms = 50;
  serve::InferenceServer server(options);
  constexpr int kRequests = 4;
  std::vector<NDArray> inputs;
  std::vector<std::future<serve::InferenceResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(ChainInput(100 + static_cast<uint64_t>(i)));
    serve::InferenceRequest req;
    req.inputs["data"] = inputs.back().Copy();
    futures.push_back(server.Submit(model, std::move(req)));
  }
  for (int i = 0; i < kRequests; ++i) {
    serve::InferenceResponse resp = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(resp.status.ok()) << resp.status.message;
    ExpectBitwiseEqual(
        resp.outputs[0],
        SequentialRun(kWeightSeed, inputs[static_cast<size_t>(i)]),
        "split request " + std::to_string(i));
  }
  serve::ServerStats s = server.stats();
  EXPECT_EQ(s.batch_splits + s.retries, 1)
      << "exactly one fault fired: either a batch split or a single-run retry";
  EXPECT_EQ(s.failed, 0) << "one faulted evaluation must not fail any request";
}

TEST(Faults, DeadlineExpiredInQueueIsTyped) {
  ScopedFailpoints guard;
  // A slow request occupies the single worker; a short-deadline request behind
  // it must be failed at pop (typed, not executed), a deadline-less one served.
  ASSERT_TRUE(fp::ArmSpec("serve.run=delay(40)*1"));
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(7);
  serve::ServerOptions options;
  options.num_workers = 1;
  options.enable_shedding = 0;  // isolate pop-time enforcement from admission
  serve::InferenceServer server(options);
  serve::InferenceRequest slow;
  slow.inputs["data"] = ChainInput(1);
  std::future<serve::InferenceResponse> f_slow =
      server.Submit(model, std::move(slow));
  // Let the worker pop the slow request (and start its 40 ms injected delay)
  // before anything else is queued, so the later requests queue behind it.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  serve::InferenceRequest doomed;
  doomed.inputs["data"] = ChainInput(2);
  doomed.deadline_ms = 5;  // expires while the slow request holds the worker
  std::future<serve::InferenceResponse> f_doomed =
      server.Submit(model, std::move(doomed));
  serve::InferenceRequest patient;
  patient.inputs["data"] = ChainInput(3);
  std::future<serve::InferenceResponse> f_patient =
      server.Submit(model, std::move(patient));

  EXPECT_TRUE(f_slow.get().status.ok());
  serve::InferenceResponse miss = f_doomed.get();
  EXPECT_EQ(miss.status.code, serve::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(miss.outputs.empty());
  EXPECT_TRUE(f_patient.get().status.ok());
  serve::ServerStats s = server.stats();
  EXPECT_EQ(s.deadline_missed, 1);
  EXPECT_EQ(s.per_class[0].deadline_missed, 1);
  EXPECT_EQ(s.completed, 3) << "a missed deadline still completes its future";
}

TEST(Faults, MidRunDeadlineCancelsBetweenKernels) {
  // Regression for the latent gap: a request popped just before its deadline used
  // to run every remaining kernel to completion. CompiledGraph::Run now checks
  // the deadline between kernel invocations and aborts the rest of the graph.
  ScopedFailpoints guard;
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(61);
  ASSERT_GE(model->num_kernels(), 2) << "needs a between-kernels seam to test";
  graph::RunContext ctx(model);
  ctx.SetInput("data", ChainInput(4));
  vm::ExecOptions exec;
  exec.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_THROW(model->Run(&ctx, exec), graph::DeadlineExceededError);
  // The default (no deadline) must stay inert.
  graph::RunContext ok_ctx(model);
  ok_ctx.SetInput("data", ChainInput(4));
  EXPECT_NO_THROW(model->Run(&ok_ctx));
}

TEST(Faults, MidRunDeadlineIsTypedAtServe) {
  ScopedFailpoints guard;
  // The graph.kernel delay fires between the first and second kernel, pushing the
  // request past its deadline mid-graph: it must come back kDeadlineExceeded from
  // the cancellation seam (not from pop-time enforcement — pinned by the fire
  // count and the error message), with no retry or interpreter down-tier (the
  // budget is already gone).
  ASSERT_TRUE(fp::ArmSpec("graph.kernel=delay(600)*1"));
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(67);
  serve::ServerOptions options;
  options.num_workers = 1;
  options.enable_shedding = 0;  // isolate the mid-run seam from admission control
  options.max_retries = 2;
  serve::InferenceServer server(options);
  serve::InferenceRequest req;
  req.inputs["data"] = ChainInput(6);
  req.deadline_ms = 500;  // outlives queueing and the first kernel, not the delay
  serve::InferenceResponse resp = server.Submit(model, std::move(req)).get();
  EXPECT_EQ(resp.status.code, serve::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(resp.outputs.empty());
  EXPECT_NE(resp.status.message.find("before kernel"), std::string::npos)
      << "must be the mid-run cancellation, not pop-time enforcement: "
      << resp.status.message;
  EXPECT_EQ(fp::FireCount("graph.kernel"), 1);
  EXPECT_EQ(resp.retries, 0) << "an exceeded deadline must not be retried";
  serve::ServerStats s = server.stats();
  EXPECT_EQ(s.deadline_missed, 1);
}

TEST(Faults, PriorityClassPopsBeforeFifo) {
  ScopedFailpoints guard;
  // While a slow request holds the single worker, a later high-priority request
  // must overtake an earlier low-priority one: it spends strictly less time in
  // the queue even though it was submitted after.
  ASSERT_TRUE(fp::ArmSpec("serve.run=delay(40)*1"));
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(7);
  serve::ServerOptions options;
  options.num_workers = 1;
  serve::InferenceServer server(options);
  serve::InferenceRequest blocker;
  blocker.inputs["data"] = ChainInput(1);
  std::future<serve::InferenceResponse> f_blocker =
      server.Submit(model, std::move(blocker));
  // Ensure the blocker is the request the worker popped (and is delayed inside)
  // before the contenders arrive.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  serve::InferenceRequest low;
  low.inputs["data"] = ChainInput(2);
  low.priority = 0;
  std::future<serve::InferenceResponse> f_low =
      server.Submit(model, std::move(low));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  serve::InferenceRequest high;
  high.inputs["data"] = ChainInput(3);
  high.priority = 10;
  std::future<serve::InferenceResponse> f_high =
      server.Submit(model, std::move(high));

  EXPECT_TRUE(f_blocker.get().status.ok());
  serve::InferenceResponse r_low = f_low.get();
  serve::InferenceResponse r_high = f_high.get();
  ASSERT_TRUE(r_low.status.ok());
  ASSERT_TRUE(r_high.status.ok());
  // Submitted ~2ms later yet popped earlier: under FIFO r_high.queue_ms would
  // exceed r_low's by the submit gap plus low's run time.
  EXPECT_LT(r_high.queue_ms, r_low.queue_ms);
}

TEST(Faults, ShutdownWithInflightFaultsDrainsEverything) {
  ScopedFailpoints guard;
  // Probabilistic faults at every serving seam, then an immediate Shutdown with
  // dozens of requests in flight: every future must still resolve (this test
  // hanging IS the failure mode), and jobs:requests stay 1:1.
  fp::SetGlobalSeed(0xD1CE);
  ASSERT_TRUE(fp::ArmSpec(
      "vm.run=error(0.3),serve.run=error(0.2),serve.batch_compile=error(0.5),"
      "serve.queue_push=error(0.05),pool.dispatch=delay(0.5,0.2)"));
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(53);
  serve::ServerOptions options;
  options.num_workers = 3;
  options.max_batch = 4;
  options.batch_timeout_ms = 1;
  options.max_retries = 1;
  options.retry_backoff_ms = 0.1;
  serve::InferenceServer server(options);
  constexpr int kRequests = 48;
  std::vector<std::future<serve::InferenceResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    serve::InferenceRequest req;
    req.inputs["data"] = ChainInput(static_cast<uint64_t>(i));
    futures.push_back(server.Submit(model, std::move(req)));
  }
  server.Shutdown();  // must not hang, whatever the armed faults did
  int resolved = 0;
  for (std::future<serve::InferenceResponse>& f : futures) {
    serve::InferenceResponse resp = f.get();  // must not throw
    (void)resp;
    ++resolved;
  }
  EXPECT_EQ(resolved, kRequests);
  serve::ServerStats s = server.stats();
  // Every admitted request completed; queue-faulted ones were never admitted.
  EXPECT_EQ(s.completed, s.accepted);
}

}  // namespace
}  // namespace tvmcpp
