// Auto-tuner tests: GBT model quality (regression + rank objectives), exploration
// methods, the Figure 12 property that the ML-guided search converges faster than
// random search on a conv2d task, real wall-clock measurement on the VM, and the
// persistent tuning cache (round-trip, key stability, corruption/fault fallback,
// compile/serving integration, tuned ≡ untuned bitwise).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/autotune/cache.h"
#include "src/autotune/feature.h"
#include "src/autotune/gbt.h"
#include "src/autotune/tuner.h"
#include "src/graph/executor.h"
#include "src/serve/batch.h"
#include "src/support/failpoint.h"
#include "src/support/random.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace autotune {
namespace {

TEST(Gbt, FitsSyntheticRegression) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> f(4);
    for (double& v : f) {
      v = rng.UniformReal() * 4;
    }
    x.push_back(f);
    y.push_back(2 * f[0] + f[1] * f[1] - 3 * (f[2] > 2) + 0.1 * f[3]);
  }
  GbtModel model(GbtParams{60, 5, 0.2, 2, GbtObjective::kRegression});
  model.Fit(x, y);
  double mse = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    double d = model.Predict(x[i]) - y[i];
    mse += d * d;
  }
  mse /= static_cast<double>(x.size());
  double var = 0, mean = 0;
  for (double v : y) {
    mean += v;
  }
  mean /= static_cast<double>(y.size());
  for (double v : y) {
    var += (v - mean) * (v - mean);
  }
  var /= static_cast<double>(y.size());
  EXPECT_LT(mse, 0.2 * var) << "GBT failed to fit synthetic data";
}

TEST(Gbt, RankObjectivePreservesOrder) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 150; ++i) {
    std::vector<double> f(3);
    for (double& v : f) {
      v = rng.UniformReal();
    }
    x.push_back(f);
    y.push_back(3 * f[0] - 2 * f[1]);
  }
  GbtModel model(GbtParams{50, 4, 0.3, 2, GbtObjective::kRank});
  model.Fit(x, y);
  // Pairwise order agreement must beat chance decisively.
  int correct = 0, total = 0;
  for (size_t i = 0; i < x.size(); i += 3) {
    for (size_t j = i + 1; j < x.size(); j += 7) {
      if (y[i] == y[j]) {
        continue;
      }
      ++total;
      bool truth = y[i] > y[j];
      bool pred = model.Predict(x[i]) > model.Predict(x[j]);
      correct += truth == pred;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.85);
}

TEST(Tuner, FindsGoodConfigOnConv) {
  topi::OpWorkload wl{"conv2d", 1, 14, 14, 32, 64, 3, 1, 1};
  TuningTask task(wl, Target::TitanX(), /*seed=*/9);
  ASSERT_TRUE(task.measure_options().use_sim) << "GPU tasks must stay on the model";
  TuneOptions opt;
  opt.num_trials = 64;
  opt.batch_size = 16;
  TuneResult r = Tune(&task, TunerKind::kMlBased, opt);
  ASSERT_GE(r.best_config, 0);
  // Best found must be well below the median of a random sample.
  Rng rng(4);
  std::vector<double> sample;
  for (int i = 0; i < 32; ++i) {
    sample.push_back(
        task.TrueCost(static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(task.size())))));
  }
  std::sort(sample.begin(), sample.end());
  double median = sample[sample.size() / 2];
  EXPECT_LT(task.TrueCost(r.best_config), median);
}

TEST(Tuner, MlBeatsRandomAtFixedBudget) {
  topi::OpWorkload wl{"conv2d", 1, 14, 14, 32, 64, 3, 1, 1};
  TuneOptions opt;
  opt.num_trials = 96;
  opt.batch_size = 16;
  TuningTask t1(wl, Target::TitanX(), 21);
  TuningTask t2(wl, Target::TitanX(), 21);
  TuneResult ml = Tune(&t1, TunerKind::kMlBased, opt);
  TuneResult rnd = Tune(&t2, TunerKind::kRandom, opt);
  // The ML-guided search should find an equal or better config (Figure 12's gap).
  EXPECT_LE(ml.best_seconds, rnd.best_seconds * 1.10);
}

TEST(Tuner, HistoryIsMonotone) {
  topi::OpWorkload wl{"dense", 64, 1, 1, 1, 64, 64, 1, 0};
  TuningTask task(wl, Target::TitanX(), 2);
  TuneOptions opt;
  opt.num_trials = 40;
  TuneResult r = Tune(&task, TunerKind::kGenetic, opt);
  for (size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LE(r.history[i].best_seconds, r.history[i - 1].best_seconds);
  }
}

TEST(Tuner, DefaultConfigIsTrialZero) {
  topi::OpWorkload wl{"dense", 16, 1, 1, 1, 64, 64, 1, 0};
  TuningTask task(wl, Target::TitanX(), 2);
  TuneOptions opt;
  opt.num_trials = 8;
  TuneResult r = Tune(&task, TunerKind::kRandom, opt);
  ASSERT_FALSE(r.history.empty());
  EXPECT_EQ(r.history[0].config_index,
            task.space().IndexOf(topi::DefaultConfig(task.space())));
  // With the default seeded, the search result can never lose to what an
  // untuned compile would pick.
  EXPECT_LE(r.best_seconds, r.history[0].seconds);
}

// Real measurement: a CPU task defaults to wall-clock timing of compiled
// vm::Program runs, and its features come from the VM-era pipeline.
TEST(Measure, RealTimingOnCpuDense) {
  topi::OpWorkload wl{"dense", 4, 1, 1, 1, 32, 32, 1, 0};
  TuningTask task(wl, Target::ArmA53(), /*seed=*/11);
  ASSERT_FALSE(task.measure_options().use_sim)
      << "CPU tasks must measure real programs (unset TVMCPP_TUNE_SIM)";
  TuneOptions opt;
  opt.num_trials = 8;
  opt.batch_size = 4;
  TuneResult r = Tune(&task, TunerKind::kRandom, opt);
  ASSERT_GE(r.best_config, 0);
  EXPECT_GT(r.best_seconds, 0.0);
  EXPECT_LT(r.best_seconds, 1.0) << "tiny dense cannot take the failure penalty";
  // Measurements are cached: re-measuring returns the identical number.
  EXPECT_EQ(task.Measure(r.best_config), r.best_seconds);

  std::vector<double> f = task.Features(r.best_config);
  ASSERT_EQ(f.size(), static_cast<size_t>(kFullFeatureDim));
  EXPECT_EQ(f[kFeatureDim], 1.0) << "VM block missing: program did not compile";
}

TEST(Feature, DistinctConfigsProduceDistinctFeatures) {
  topi::OpWorkload wl{"conv2d", 1, 14, 14, 16, 32, 3, 1, 1};
  TuningTask task(wl, Target::TitanX(), 3);
  std::vector<double> f0 = task.Features(0);
  std::vector<double> f1 = task.Features(task.size() - 1);
  EXPECT_EQ(f0.size(), static_cast<size_t>(kFullFeatureDim));
  EXPECT_NE(f0, f1);
}

// The VM feature block must react to specialization decisions: the same lowered
// function featurized with specialization on vs off yields different vectors
// (unroll/hoist/strength-reduction change the opcode mix the model learns from).
TEST(Feature, VmBlockRespondsToSpecialization) {
  topi::OpWorkload wl{"dense", 4, 1, 1, 1, 16, 16, 1, 0};
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  topi::ConfigSpace space = topi::GetScheduleSpace(wl, Target::ArmA53());
  Schedule s = topi::ApplyOpSchedule(wl, Target::ArmA53(), built,
                                     topi::DefaultConfig(space));
  LoweredFunc f = Lower(s, built.Args(), "dense_feature_probe");
  LoopSpecializeOptions on;  // defaults: unroll 8, hoist, strength-reduce, peephole
  std::vector<double> with_spec = ExtractFeaturesVm(f, on);
  std::vector<double> without_spec = ExtractFeaturesVm(f, LoopSpecializeOptions::Disabled());
  ASSERT_EQ(with_spec.size(), static_cast<size_t>(kFullFeatureDim));
  ASSERT_EQ(with_spec[kFeatureDim], 1.0);
  ASSERT_EQ(without_spec[kFeatureDim], 1.0);
  EXPECT_NE(with_spec, without_spec);
}

// ---------------------------------------------------------------------------
// Persistent tuning cache
// ---------------------------------------------------------------------------

// The process-wide cache is shared state: each test starts and leaves it empty.
struct ScopedCleanGlobalCache {
  ScopedCleanGlobalCache() { Reset(); }
  ~ScopedCleanGlobalCache() { Reset(); }
  static void Reset() {
    GlobalTuningCache().Clear();
    GlobalTuningCache().ResetCounters();
  }
};

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

topi::OpWorkload DenseWl(int batch = 16) {
  return topi::OpWorkload{"dense", batch, 1, 1, 1, 256, 256, 1, 0};
}

// A config far from the default on every knob that has room to move.
topi::Config ExtremeConfig(const topi::ConfigSpace& space) {
  topi::Config c;
  for (const topi::KnobSpec& k : space.knobs) {
    c[k.name] = k.choices.back();
  }
  return c;
}

TEST(TuningCache, SaveLoadRoundTripPreservesScheduleChoice) {
  topi::OpWorkload wl = DenseWl();
  topi::ConfigSpace space = topi::GetScheduleSpace(wl, Target::ArmA53());
  std::string key = TuningKey(wl, Target::ArmA53(), LoopSpecializeOptions{});

  TuningCache out;
  TuningCacheEntry e;
  e.key = key;
  e.config = ExtremeConfig(space);
  e.seconds = 1.25e-5;
  e.trials = 64;
  out.Put(e);
  std::string path = TempPath("tune_cache_roundtrip.json");
  ASSERT_TRUE(out.Save(path));

  TuningCache in;
  ASSERT_TRUE(in.Load(path));
  ASSERT_EQ(in.size(), 1u);
  TuningCacheEntry got;
  ASSERT_TRUE(in.Lookup(key, &got));
  EXPECT_EQ(got.config, e.config);
  EXPECT_DOUBLE_EQ(got.seconds, e.seconds);
  EXPECT_EQ(got.trials, e.trials);
  // And the loaded entry instantiates the *identical* schedule choice.
  topi::Config applied;
  ASSERT_TRUE(ApplyCachedConfig(space, got.config, &applied));
  EXPECT_EQ(space.IndexOf(applied), space.IndexOf(e.config));
  EXPECT_EQ(in.hits(), 1);
  std::remove(path.c_str());
}

// The key schema and its FNV-1a hash are pinned: a process tomorrow (or another
// machine) must compute the same key and hash for the same tuning point, or
// caches stop being shareable across processes. Update both constants together
// with a cache version bump if the schema ever changes deliberately.
TEST(TuningCache, KeyStableAcrossProcesses) {
  topi::OpWorkload wl = DenseWl();
  LoopSpecializeOptions spec;  // u8, hoist, strength-reduce, peephole
  std::string key = TuningKey(wl, Target::ArmA53(), spec);
  EXPECT_EQ(key, "dense_n16_h1_w1_ic1_oc256_k256_s1_p0_float32@arm_cpu@u8_h1_s1_p1");
  EXPECT_EQ(TuningKeyHash(key), 0xf096fdae7b7dce47ULL);
  // The batch dimension is part of the key: batch-N variants tune independently.
  EXPECT_NE(TuningKey(DenseWl(64), Target::ArmA53(), spec), key);
  // So is the specialization config.
  EXPECT_NE(TuningKey(wl, Target::ArmA53(), LoopSpecializeOptions::Disabled()), key);
}

TEST(TuningCache, VersionMismatchAndCorruptionFallBackEmpty) {
  // Version-mismatched file: loads nothing, returns false.
  std::string path = TempPath("tune_cache_badversion.json");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "{\"tvmcpp_tuning_cache\": 999}\n");
    std::fprintf(f, "{\"key\": \"k\", \"hash\": \"0\", \"config\": {\"a\": 1}}\n");
    std::fclose(f);
  }
  TuningCache c1;
  EXPECT_FALSE(c1.Load(path));
  EXPECT_EQ(c1.size(), 0u);
  std::remove(path.c_str());

  // Garbage file: same.
  path = TempPath("tune_cache_garbage.json");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "not json at all\n\x01\x02\x03\n");
    std::fclose(f);
  }
  TuningCache c2;
  EXPECT_FALSE(c2.Load(path));
  EXPECT_EQ(c2.size(), 0u);
  std::remove(path.c_str());

  // Missing file: same.
  TuningCache c3;
  EXPECT_FALSE(c3.Load(TempPath("tune_cache_does_not_exist.json")));
  EXPECT_EQ(c3.size(), 0u);

  // Valid header but one bit-flipped entry (hash mismatch): the corrupt line is
  // skipped, intact lines still load.
  topi::OpWorkload wl = DenseWl();
  std::string good_key = TuningKey(wl, Target::ArmA53(), LoopSpecializeOptions{});
  TuningCache out;
  TuningCacheEntry e;
  e.key = good_key;
  e.config = {{"tile_x", 4}};
  out.Put(e);
  path = TempPath("tune_cache_partial.json");
  ASSERT_TRUE(out.Save(path));
  {
    std::FILE* f = std::fopen(path.c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "{\"key\": \"tampered\", \"hash\": \"0000000000000000\", "
                    "\"config\": {\"tile_x\": 8}}\n");
    std::fclose(f);
  }
  TuningCache c4;
  EXPECT_TRUE(c4.Load(path));
  EXPECT_EQ(c4.size(), 1u);
  EXPECT_TRUE(c4.Lookup(good_key, nullptr));
  std::remove(path.c_str());
}

TEST(TuningCache, LoadSaveFailpointsDegradeGracefully) {
  TuningCache cache;
  TuningCacheEntry e;
  e.key = "k";
  e.config = {{"tile_x", 4}};
  cache.Put(e);
  std::string path = TempPath("tune_cache_faulted.json");

  failpoint::Arm("tune.cache_save", {failpoint::ActionKind::kError, 1.0, 0, -1});
  EXPECT_FALSE(cache.Save(path));  // warning, no crash, nothing persisted
  failpoint::DisarmAll();
  EXPECT_TRUE(cache.Save(path));

  failpoint::Arm("tune.cache_load", {failpoint::ActionKind::kError, 1.0, 0, -1});
  TuningCache in;
  EXPECT_FALSE(in.Load(path));  // warning, no crash, empty cache
  EXPECT_EQ(in.size(), 0u);
  failpoint::DisarmAll();
  EXPECT_TRUE(in.Load(path));
  EXPECT_EQ(in.size(), 1u);
  std::remove(path.c_str());
}

TEST(TuningCache, RejectsEntriesOutsideTheSpace) {
  topi::OpWorkload wl = DenseWl();
  topi::ConfigSpace space = topi::GetScheduleSpace(wl, Target::ArmA53());
  topi::Config stale = topi::DefaultConfig(space);
  stale.begin()->second = 123456789;  // not a legal choice for any knob
  topi::Config applied;
  EXPECT_FALSE(ApplyCachedConfig(space, stale, &applied));
  // A knob *missing* from the entry keeps its default (schema grew a knob).
  topi::Config partial;
  ASSERT_FALSE(space.knobs.empty());
  partial[space.knobs[0].name] = space.knobs[0].choices.back();
  ASSERT_TRUE(ApplyCachedConfig(space, partial, &applied));
  EXPECT_EQ(applied[space.knobs[0].name], space.knobs[0].choices.back());
}

// ---------------------------------------------------------------------------
// Compile + serving integration
// ---------------------------------------------------------------------------

graph::Graph DenseGraph(int batch) {
  graph::Graph g;
  int data = g.AddInput("data", {batch, 64}, DataType::Float32());
  int w = g.AddConst("w", {32, 64}, DataType::Float32());
  int d = g.AddOp("dense", "fc", {data, w});
  g.outputs = {g.AddOp("relu", "act", {d})};
  return g;
}

struct ScopedStrictMode {
  bool saved;
  ScopedStrictMode() : saved(vm::StrictMode()) { vm::SetStrictMode(true); }
  ~ScopedStrictMode() { vm::SetStrictMode(saved); }
};

void ExpectBitwiseEqual(const NDArray& a, const NDArray& b, const std::string& what) {
  ASSERT_EQ(a.NumElements(), b.NumElements()) << what;
  EXPECT_EQ(std::memcmp(a.Data<char>(), b.Data<char>(),
                        static_cast<size_t>(a.ByteSize())),
            0)
      << what << ": outputs differ";
}

TEST(TuningCache, CompileConsultsGlobalCache) {
  ScopedCleanGlobalCache clean;
  graph::CompileOptions opts;  // specialize = FromEnv(), like production compiles
  graph::Graph g = DenseGraph(1);
  graph::GraphExecutor probe(DenseGraph(1), Target::ArmA53(), opts);
  ASSERT_EQ(probe.workloads().size(), 1u);
  topi::OpWorkload wl = probe.workloads()[0];
  topi::ConfigSpace space = topi::GetScheduleSpace(wl, Target::ArmA53());
  topi::Config tuned_cfg = ExtremeConfig(space);
  ASSERT_NE(space.IndexOf(tuned_cfg), space.IndexOf(topi::DefaultConfig(space)));

  // Miss: untuned default, no cache-tuned kernels.
  EXPECT_EQ(probe.compiled()->num_cache_tuned_kernels(), 0);
  EXPECT_EQ(probe.compiled()->chosen_configs().at(wl.Key()),
            topi::DefaultConfig(space));

  // Hit: the cached config wins over the default.
  TuningCacheEntry e;
  e.key = TuningKey(wl, Target::ArmA53(), opts.specialize);
  e.config = tuned_cfg;
  GlobalTuningCache().Put(e);
  graph::GraphExecutor tuned(DenseGraph(1), Target::ArmA53(), opts);
  EXPECT_EQ(tuned.compiled()->num_cache_tuned_kernels(), 1);
  EXPECT_EQ(tuned.compiled()->chosen_configs().at(wl.Key()), tuned_cfg);

  // Explicit `tuned` beats the cache; use_tuning_cache=false ignores it.
  graph::TunedConfigs expl;
  expl[wl.Key()] = topi::DefaultConfig(space);
  graph::CompileOptions opts2 = opts;
  opts2.tuned = &expl;
  graph::GraphExecutor overridden(DenseGraph(1), Target::ArmA53(), opts2);
  EXPECT_EQ(overridden.compiled()->num_cache_tuned_kernels(), 0);
  EXPECT_EQ(overridden.compiled()->chosen_configs().at(wl.Key()),
            topi::DefaultConfig(space));
  graph::CompileOptions opts3 = opts;
  opts3.use_tuning_cache = false;
  graph::GraphExecutor untouched(DenseGraph(1), Target::ArmA53(), opts3);
  EXPECT_EQ(untouched.compiled()->num_cache_tuned_kernels(), 0);
  EXPECT_EQ(untouched.compiled()->chosen_configs().at(wl.Key()),
            topi::DefaultConfig(space));
}

// The differential pin: a cache-tuned compile must produce bitwise-identical
// outputs to the untuned one, under strict mode (no silent interpreter
// fallback), for dense and conv2d.
TEST(TuningCache, TunedBitwiseEqualUntunedStrict) {
  ScopedCleanGlobalCache clean;
  ScopedStrictMode strict;
  graph::CompileOptions opts;

  auto run_model = [](graph::Graph g, const NDArray& in, const NDArray& w,
                      const graph::CompileOptions& o) {
    graph::GraphExecutor exec(std::move(g), Target::ArmA53(), o);
    exec.SetParam("w", w);
    exec.SetInput("data", in);
    exec.Run();
    return exec.GetOutput(0).Copy();
  };

  // dense
  {
    NDArray in = NDArray::Random({1, 64}, DataType::Float32(), 7);
    NDArray w = NDArray::Random({32, 64}, DataType::Float32(), 8);
    NDArray untuned = run_model(DenseGraph(1), in, w, opts);
    graph::GraphExecutor probe(DenseGraph(1), Target::ArmA53(), opts);
    topi::OpWorkload wl = probe.workloads()[0];
    TuningCacheEntry e;
    e.key = TuningKey(wl, Target::ArmA53(), opts.specialize);
    e.config = ExtremeConfig(topi::GetScheduleSpace(wl, Target::ArmA53()));
    GlobalTuningCache().Put(e);
    NDArray tuned = run_model(DenseGraph(1), in, w, opts);
    ExpectBitwiseEqual(tuned, untuned, "dense tuned-vs-untuned");
  }

  // conv2d
  {
    graph::Graph g;
    int data = g.AddInput("data", {1, 8, 14, 14}, DataType::Float32());
    int w = g.AddConst("w", {16, 8, 3, 3}, DataType::Float32());
    g.outputs = {g.AddOp("conv2d", "conv", {data, w}, {{"stride", 1}, {"pad", 1}})};
    NDArray in = NDArray::Random({1, 8, 14, 14}, DataType::Float32(), 9);
    NDArray wv = NDArray::Random({16, 8, 3, 3}, DataType::Float32(), 10);
    auto clone = [&] {
      graph::Graph c;
      int d2 = c.AddInput("data", {1, 8, 14, 14}, DataType::Float32());
      int w2 = c.AddConst("w", {16, 8, 3, 3}, DataType::Float32());
      c.outputs = {c.AddOp("conv2d", "conv", {d2, w2}, {{"stride", 1}, {"pad", 1}})};
      return c;
    };
    NDArray untuned = run_model(clone(), in, wv, opts);
    graph::GraphExecutor probe(clone(), Target::ArmA53(), opts);
    topi::OpWorkload wl = probe.workloads()[0];
    TuningCacheEntry e;
    e.key = TuningKey(wl, Target::ArmA53(), opts.specialize);
    e.config = ExtremeConfig(topi::GetScheduleSpace(wl, Target::ArmA53()));
    GlobalTuningCache().Put(e);
    NDArray tuned = run_model(clone(), in, wv, opts);
    ExpectBitwiseEqual(tuned, untuned, "conv2d tuned-vs-untuned");
  }
}

// Serving integration: a lazily compiled batch-N variant finds its *own* cache
// entry (batch-N workload key), independent of batch-1 — and stays bitwise-equal
// to per-request runs.
TEST(TuningCache, BatchVariantGetsOwnTunedSchedule) {
  ScopedCleanGlobalCache clean;
  ScopedStrictMode strict;
  graph::CompileOptions opts;
  constexpr int kFactor = 4;

  NDArray w = NDArray::Random({32, 64}, DataType::Float32(), 3);
  auto base = std::make_shared<graph::CompiledGraph>(DenseGraph(1), Target::ArmA53(),
                                                     opts);
  base->SetParam("w", w);
  ASSERT_EQ(base->num_cache_tuned_kernels(), 0);
  topi::OpWorkload wl = base->workloads()[0];
  topi::OpWorkload batched_wl = wl;
  batched_wl.n *= kFactor;

  // Tune *only* the batch-4 key.
  topi::ConfigSpace bspace = topi::GetScheduleSpace(batched_wl, Target::ArmA53());
  TuningCacheEntry e;
  e.key = TuningKey(batched_wl, Target::ArmA53(), opts.specialize);
  e.config = ExtremeConfig(bspace);
  GlobalTuningCache().Put(e);

  serve::BatchedModelCache cache(base);
  EXPECT_EQ(cache.num_tuned_compiled(), 0);
  std::shared_ptr<const graph::CompiledGraph> variant = cache.Get(kFactor);
  EXPECT_EQ(variant->num_cache_tuned_kernels(), 1)
      << "batch variant must consult the cache under its own batch-N key";
  EXPECT_EQ(cache.num_tuned_compiled(), 1);
  EXPECT_EQ(variant->chosen_configs().at(batched_wl.Key()), e.config);
  // The base model's choice is untouched (it was compiled before the entry).
  EXPECT_EQ(base->chosen_configs().at(wl.Key()),
            topi::DefaultConfig(topi::GetScheduleSpace(wl, Target::ArmA53())));

  // Bitwise: batch-tuned coalesced run == per-request untuned runs.
  std::vector<NDArray> inputs;
  std::vector<serve::NamedTensors> reqs(kFactor);
  std::vector<const serve::NamedTensors*> req_ptrs;
  for (int i = 0; i < kFactor; ++i) {
    inputs.push_back(NDArray::Random({1, 64}, DataType::Float32(), 100 + i));
    reqs[static_cast<size_t>(i)] = {{"data", inputs.back()}};
    req_ptrs.push_back(&reqs[static_cast<size_t>(i)]);
  }
  graph::RunContext ctx(variant);
  serve::BindConcatenatedInputs(req_ptrs, &ctx);
  variant->Run(&ctx);
  auto slices = serve::SliceBatchedOutputs(ctx, kFactor);
  for (int i = 0; i < kFactor; ++i) {
    graph::RunContext single(base);
    single.SetInput("data", inputs[static_cast<size_t>(i)]);
    base->Run(&single);
    ExpectBitwiseEqual(slices[static_cast<size_t>(i)][0], single.GetOutput(0),
                       "batch slice " + std::to_string(i));
  }
}

}  // namespace
}  // namespace autotune
}  // namespace tvmcpp
