// Auto-tuner tests: GBT model quality (regression + rank objectives), exploration
// methods, and the Figure 12 property that the ML-guided search converges faster than
// random search on a conv2d task.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/autotune/feature.h"
#include "src/autotune/gbt.h"
#include "src/autotune/tuner.h"
#include "src/support/random.h"

namespace tvmcpp {
namespace autotune {
namespace {

TEST(Gbt, FitsSyntheticRegression) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> f(4);
    for (double& v : f) {
      v = rng.UniformReal() * 4;
    }
    x.push_back(f);
    y.push_back(2 * f[0] + f[1] * f[1] - 3 * (f[2] > 2) + 0.1 * f[3]);
  }
  GbtModel model(GbtParams{60, 5, 0.2, 2, GbtObjective::kRegression});
  model.Fit(x, y);
  double mse = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    double d = model.Predict(x[i]) - y[i];
    mse += d * d;
  }
  mse /= static_cast<double>(x.size());
  double var = 0, mean = 0;
  for (double v : y) {
    mean += v;
  }
  mean /= static_cast<double>(y.size());
  for (double v : y) {
    var += (v - mean) * (v - mean);
  }
  var /= static_cast<double>(y.size());
  EXPECT_LT(mse, 0.2 * var) << "GBT failed to fit synthetic data";
}

TEST(Gbt, RankObjectivePreservesOrder) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 150; ++i) {
    std::vector<double> f(3);
    for (double& v : f) {
      v = rng.UniformReal();
    }
    x.push_back(f);
    y.push_back(3 * f[0] - 2 * f[1]);
  }
  GbtModel model(GbtParams{50, 4, 0.3, 2, GbtObjective::kRank});
  model.Fit(x, y);
  // Pairwise order agreement must beat chance decisively.
  int correct = 0, total = 0;
  for (size_t i = 0; i < x.size(); i += 3) {
    for (size_t j = i + 1; j < x.size(); j += 7) {
      if (y[i] == y[j]) {
        continue;
      }
      ++total;
      bool truth = y[i] > y[j];
      bool pred = model.Predict(x[i]) > model.Predict(x[j]);
      correct += truth == pred;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.85);
}

TEST(Tuner, FindsGoodConfigOnConv) {
  topi::OpWorkload wl{"conv2d", 1, 14, 14, 32, 64, 3, 1, 1};
  TuningTask task(wl, Target::TitanX(), /*seed=*/9);
  TuneOptions opt;
  opt.num_trials = 64;
  opt.batch_size = 16;
  TuneResult r = Tune(&task, TunerKind::kMlBased, opt);
  ASSERT_GE(r.best_config, 0);
  // Best found must be well below the median of a random sample.
  Rng rng(4);
  std::vector<double> sample;
  for (int i = 0; i < 32; ++i) {
    sample.push_back(
        task.TrueCost(static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(task.size())))));
  }
  std::sort(sample.begin(), sample.end());
  double median = sample[sample.size() / 2];
  EXPECT_LT(task.TrueCost(r.best_config), median);
}

TEST(Tuner, MlBeatsRandomAtFixedBudget) {
  topi::OpWorkload wl{"conv2d", 1, 14, 14, 32, 64, 3, 1, 1};
  TuneOptions opt;
  opt.num_trials = 96;
  opt.batch_size = 16;
  TuningTask t1(wl, Target::TitanX(), 21);
  TuningTask t2(wl, Target::TitanX(), 21);
  TuneResult ml = Tune(&t1, TunerKind::kMlBased, opt);
  TuneResult rnd = Tune(&t2, TunerKind::kRandom, opt);
  // The ML-guided search should find an equal or better config (Figure 12's gap).
  EXPECT_LE(ml.best_seconds, rnd.best_seconds * 1.10);
}

TEST(Tuner, HistoryIsMonotone) {
  topi::OpWorkload wl{"dense", 64, 1, 1, 1, 64, 64, 1, 0};
  TuningTask task(wl, Target::TitanX(), 2);
  TuneOptions opt;
  opt.num_trials = 40;
  TuneResult r = Tune(&task, TunerKind::kGenetic, opt);
  for (size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LE(r.history[i].best_seconds, r.history[i - 1].best_seconds);
  }
}

TEST(Feature, DistinctConfigsProduceDistinctFeatures) {
  topi::OpWorkload wl{"conv2d", 1, 14, 14, 16, 32, 3, 1, 1};
  TuningTask task(wl, Target::TitanX(), 3);
  std::vector<double> f0 = task.Features(0);
  std::vector<double> f1 = task.Features(task.size() - 1);
  EXPECT_EQ(f0.size(), static_cast<size_t>(kFeatureDim));
  EXPECT_NE(f0, f1);
}

}  // namespace
}  // namespace autotune
}  // namespace tvmcpp
