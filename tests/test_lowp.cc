// First dedicated tests for src/lowp (the ultra low-precision bit-serial path).
//
// Two layers: (1) quantization round-trip units — the bit-plane decomposition at
// the heart of BitserialConv2d must reconstruct every representable W-bit value
// exactly, and the scheduled kernel must stay bitwise-equal to the unscheduled
// lowering across the knob space; (2) one quantized + pruned (lowp x sparse)
// end-to-end config: a pruned int8 sparse_dense feeding 2-bit quantized
// activations into the bit-serial conv, bitwise-pinned on all three engines
// under TVMCPP_VM_STRICT=1 with zero fallbacks. Integer arithmetic is exact, so
// "pinned" here means byte-identical outputs, not tolerances.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/codegen/codegen.h"
#include "src/codegen/native.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/lower/lower.h"
#include "src/lowp/lowp.h"
#include "src/runtime/csr.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/schedule/schedule.h"
#include "src/topi/schedules.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

struct ScopedStrictMode {
  bool saved;
  ScopedStrictMode() : saved(vm::StrictMode()) { vm::SetStrictMode(true); }
  ~ScopedStrictMode() { vm::SetStrictMode(saved); }
};

// Interp (oracle) / serial VM / native — every buffer byte-identical, no silent
// downgrades. Same contract as tests/test_codegen.cc and tests/test_sparse.cc.
void ExpectThreeTierIdentical(const LoweredFunc& f,
                              const std::vector<NDArray>& inputs,
                              const std::vector<int64_t>& out_shape,
                              DataType out_dtype, NDArray* result = nullptr) {
  ScopedStrictMode strict;
  vm::ResetFallbackCount();
  std::shared_ptr<const vm::Program> prog = vm::CompileToProgram(f, {});
  ASSERT_NE(prog, nullptr) << "VM failed to compile " << f.name;
  codegen::NativeKernel native = codegen::CompileNativeKernel(f, {});
  ASSERT_TRUE(static_cast<bool>(native))
      << "native tier failed to compile " << f.name << ":\n" << ToString(f.body);
  NDArray out_interp = NDArray::Empty(out_shape, out_dtype);
  NDArray out_vm = NDArray::Empty(out_shape, out_dtype);
  NDArray out_native = NDArray::Empty(out_shape, out_dtype);
  auto bind = [&](const NDArray& out) {
    std::vector<BufferBinding> b;
    for (const NDArray& in : inputs) {
      b.push_back(in.Binding());
    }
    b.push_back(out.Binding());
    return b;
  };
  RunLoweredInterp(f, bind(out_interp));
  vm::ExecOptions serial;
  serial.num_threads = 1;
  vm::Run(*prog, bind(out_vm), serial);
  codegen::RunNativeKernel(native, bind(out_native));
  EXPECT_EQ(std::memcmp(out_interp.Data<char>(), out_vm.Data<char>(),
                        static_cast<size_t>(out_interp.ByteSize())),
            0)
      << f.name << ": interp and VM outputs differ";
  EXPECT_EQ(std::memcmp(out_interp.Data<char>(), out_native.Data<char>(),
                        static_cast<size_t>(out_interp.ByteSize())),
            0)
      << f.name << ": interp and native outputs differ";
  EXPECT_EQ(vm::FallbackCount(), 0) << f.name << ": VM fell back to the interpreter";
  if (result != nullptr) {
    *result = out_interp;
  }
}

LoweredFunc LowerBitserial(const Tensor& data, const Tensor& kernel, const Tensor& out,
                           const std::string& name) {
  Schedule s = create_schedule({out});
  for (const Tensor& t : out.op()->InputTensors()) {
    if (t.name().find(".pad") != std::string::npos) {
      (*s)[t]->compute_inline();
    }
  }
  return Lower(s, {data, kernel, out}, name);
}

// ---------------------------------------------------------------------------
// Quantization round-trip units
// ---------------------------------------------------------------------------

TEST(LowpQuant, BitPlaneRoundTripReconstructsEveryValue) {
  // 1x1 conv, one channel, single +1 bipolar weight, no padding: the conv
  // degenerates to the bit-plane sum sum_b 2^b * ((act >> b) & 1), which must
  // reproduce every representable W-bit activation exactly.
  for (int bits : {1, 2, 3}) {
    const int n = 1 << bits;  // one pixel per representable value
    Tensor data = placeholder({make_int(1), make_int(1), make_int(1), make_int(n)},
                              DataType::Int8(), "data");
    Tensor kernel = placeholder({make_int(1), make_int(1), make_int(1), make_int(1)},
                                DataType::Int8(), "kernel");
    Tensor out = lowp::BitserialConv2d(data, kernel, 1, 0, bits);
    LoweredFunc f =
        LowerBitserial(data, kernel, out, "bits_rt_" + std::to_string(bits));
    NDArray d = NDArray::Empty({1, 1, 1, n}, DataType::Int8());
    for (int v = 0; v < n; ++v) {
      d.Data<int8_t>()[v] = static_cast<int8_t>(v);  // the full W-bit range
    }
    NDArray w = NDArray::Empty({1, 1, 1, 1}, DataType::Int8());
    w.Data<int8_t>()[0] = 1;  // bipolar +1
    NDArray o;
    ExpectThreeTierIdentical(f, {d, w}, {1, 1, 1, n}, DataType::Int32(), &o);
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(o.Data<int32_t>()[v], v)
          << bits << "-bit value " << v << " did not round-trip";
    }
  }
}

TEST(LowpQuant, ConvMatchesIntReferenceAcrossBitWidths) {
  // Direct integer reference sum(act * (2w - 1)) over taps, per activation width.
  const int n = 5, c = 2, k = 3, oc = 3;
  for (int bits : {1, 2, 3}) {
    Tensor data = placeholder({make_int(1), make_int(c), make_int(n), make_int(n)},
                              DataType::Int8(), "data");
    Tensor kernel = placeholder({make_int(oc), make_int(c), make_int(k), make_int(k)},
                                DataType::Int8(), "kernel");
    Tensor out = lowp::BitserialConv2d(data, kernel, 1, 1, bits);
    LoweredFunc f =
        LowerBitserial(data, kernel, out, "bits_ref_" + std::to_string(bits));
    NDArray d = NDArray::Random({1, c, n, n}, DataType::Int(bits), 100 + bits);
    NDArray w = NDArray::Random({oc, c, k, k}, DataType::Int(1), 200 + bits);
    NDArray o;
    ExpectThreeTierIdentical(f, {d, w}, {1, oc, n, n}, DataType::Int32(), &o);
    for (int f2 = 0; f2 < oc; ++f2) {
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          int ref = 0;
          for (int ch = 0; ch < c; ++ch) {
            for (int dy = 0; dy < k; ++dy) {
              for (int dx = 0; dx < k; ++dx) {
                int iy = y + dy - 1, ix = x + dx - 1;
                if (iy < 0 || iy >= n || ix < 0 || ix >= n) {
                  continue;
                }
                int act = d.Data<int8_t>()[(ch * n + iy) * n + ix];
                int wgt = w.Data<int8_t>()[((f2 * c + ch) * k + dy) * k + dx];
                ref += act * (2 * wgt - 1);
              }
            }
          }
          ASSERT_EQ(o.Data<int32_t>()[(f2 * n + y) * n + x], ref)
              << bits << "b @ " << f2 << "," << y << "," << x;
        }
      }
    }
  }
}

TEST(LowpQuant, ScheduledMatchesUnscheduledBitwise) {
  // Every point of the (small) knob space must compute the same bytes as the
  // default create_schedule lowering — scheduling is a layout/order choice only,
  // and integer accumulation makes reorderings exact.
  const int n = 8, c = 2, k = 3, oc = 4;
  topi::OpWorkload wl;
  wl.kind = "conv2d";
  wl.n = 1;
  wl.ic = c;
  wl.h = wl.w = n;
  wl.oc = oc;
  wl.k = k;
  wl.stride = 1;
  wl.pad = 1;
  wl.dtype = DataType::Int8();
  Tensor data = placeholder({make_int(1), make_int(c), make_int(n), make_int(n)},
                            DataType::Int8(), "data");
  Tensor kernel = placeholder({make_int(oc), make_int(c), make_int(k), make_int(k)},
                              DataType::Int8(), "kernel");
  NDArray d = NDArray::Random({1, c, n, n}, DataType::Int(2), 7);
  NDArray w = NDArray::Random({oc, c, k, k}, DataType::Int(1), 8);

  Tensor ref_out = lowp::BitserialConv2d(data, kernel, 1, 1, 2);
  LoweredFunc ref_f = LowerBitserial(data, kernel, ref_out, "bits_sched_ref");
  NDArray ref = NDArray::Empty({1, oc, n, n}, DataType::Int32());
  RunLoweredInterp(ref_f, {d.Binding(), w.Binding(), ref.Binding()});

  topi::ConfigSpace space = lowp::BitserialScheduleSpace(wl);
  ASSERT_EQ(space.knobs.size(), 4u);  // tile_oc, tile_ow, parallel, unroll
  for (int64_t tile_oc : {1, 2, 4}) {
    for (int64_t par : {0, 1}) {
      topi::Config cfg = topi::DefaultConfig(space);
      cfg["tile_oc"] = tile_oc;
      cfg["tile_ow"] = 4;
      cfg["parallel"] = par;
      cfg["unroll"] = 1;
      Tensor out = lowp::BitserialConv2d(data, kernel, 1, 1, 2);
      Schedule s = lowp::ApplyBitserialSchedule(wl, out, cfg);
      LoweredFunc f = Lower(s, {data, kernel, out}, "bits_sched");
      NDArray got = NDArray::Empty({1, oc, n, n}, DataType::Int32());
      RunLoweredInterp(f, {d.Binding(), w.Binding(), got.Binding()});
      EXPECT_EQ(std::memcmp(got.Data<char>(), ref.Data<char>(),
                            static_cast<size_t>(ref.ByteSize())),
                0)
          << "tile_oc=" << tile_oc << " parallel=" << par
          << " differs from the unscheduled reference";
    }
  }
}

TEST(LowpQuant, GemvIntrinsicDeclares) {
  TensorIntrinPtr intrin = lowp::DeclArmBitserialGemv(4, 8);
  ASSERT_NE(intrin, nullptr);
}

// ---------------------------------------------------------------------------
// Quantized + pruned: lowp x sparse end to end
// ---------------------------------------------------------------------------

TEST(LowpSparse, QuantizedPrunedPipelineBitwisePinned) {
  // Stage 1: a pruned int8 sparse_dense (quantized weights AND pruned structure)
  // computes feature rows. Stage 2: the features are quantized to 2-bit
  // activations and pushed through the bit-serial conv. Both stages must be
  // bitwise-pinned across interp/VM/native with zero fallbacks — the combined
  // quantized+pruned configuration is supported, not an error.
  const int64_t kBatch = 4, kIn = 24, kOut = 16;
  runtime::CSRMatrix csr = runtime::RandomCsr(kOut, kIn, 0.85, DataType::Int8(), 301);
  topi::OpWorkload wl;
  wl.kind = "sparse_dense";
  wl.n = kBatch;
  wl.k = kIn;
  wl.oc = static_cast<int>(kOut);
  wl.dtype = DataType::Int8();
  wl.nnz = csr.nnz;
  wl.max_row_nnz = csr.max_row_nnz;
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  Target cpu = Target::ArmA53();
  topi::Config cfg = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  Schedule s = topi::ApplyOpSchedule(wl, cpu, built, cfg);
  LoweredFunc sp_f = Lower(s, built.Args(), "lowp_sparse_stage");
  NDArray x = NDArray::Random({kBatch, kIn}, DataType::Int(2), 302);
  NDArray features;
  ExpectThreeTierIdentical(sp_f, {x, csr.data, csr.indices, csr.indptr},
                           {kBatch, kOut}, DataType::Int8(), &features);

  // Quantize stage-1 features to 2-bit activations (keep the low bit-planes).
  const int64_t side = 4;  // kOut = 4x4 spatial grid, one channel per batch row
  NDArray act = NDArray::Empty({kBatch, 1, side, side}, DataType::Int8());
  for (int64_t i = 0; i < kBatch * kOut; ++i) {
    act.Data<int8_t>()[i] = static_cast<int8_t>(features.Data<int8_t>()[i] & 3);
  }
  Tensor adata = placeholder({make_int(kBatch), make_int(1), make_int(side),
                              make_int(side)},
                             DataType::Int8(), "act");
  Tensor kern = placeholder({make_int(2), make_int(1), make_int(3), make_int(3)},
                            DataType::Int8(), "kern");
  Tensor conv = lowp::BitserialConv2d(adata, kern, 1, 1, 2);
  LoweredFunc conv_f = LowerBitserial(adata, kern, conv, "lowp_sparse_conv");
  NDArray w = NDArray::Random({2, 1, 3, 3}, DataType::Int(1), 303);
  ExpectThreeTierIdentical(conv_f, {act, w}, {kBatch, 2, side, side},
                           DataType::Int32());
}

}  // namespace
}  // namespace tvmcpp
