// Model zoo tests: graph construction, shape inference through whole networks, Table 2
// workload lists, and end-to-end compilation of every model for both CPU and GPU.
#include <gtest/gtest.h>

#include "src/frontend/models.h"
#include "src/graph/executor.h"

namespace tvmcpp {
namespace frontend {
namespace {

TEST(Models, ResNet18Shapes) {
  Model m = ResNet18(1, 224);
  const graph::Node& out = m.graph.node(m.graph.outputs[0]);
  EXPECT_EQ(out.shape, (std::vector<int64_t>{1, 1000}));
  // 20 convolutions (1 stem + 16 block + 3 downsample).
  int convs = 0;
  for (const auto& n : m.graph.nodes()) {
    convs += n.op == "conv2d";
  }
  EXPECT_EQ(convs, 20);
}

TEST(Models, MobileNetShapes) {
  Model m = MobileNet(1, 224);
  const graph::Node& out = m.graph.node(m.graph.outputs[0]);
  EXPECT_EQ(out.shape, (std::vector<int64_t>{1, 1000}));
  int dw = 0;
  for (const auto& n : m.graph.nodes()) {
    dw += n.op == "depthwise_conv2d";
  }
  EXPECT_EQ(dw, 13);
}

TEST(Models, DqnShapes) {
  Model m = Dqn(1);
  EXPECT_EQ(m.graph.node(m.graph.outputs[0]).shape, (std::vector<int64_t>{1, 18}));
}

TEST(Models, DcganShapes) {
  Model m = Dcgan(1);
  EXPECT_EQ(m.graph.node(m.graph.outputs[0]).shape, (std::vector<int64_t>{1, 3, 64, 64}));
}

TEST(Models, Table2Workloads) {
  auto convs = ResnetConvWorkloads();
  ASSERT_EQ(convs.size(), 12u);
  EXPECT_EQ(convs[0].k, 7);
  EXPECT_EQ(convs[0].stride, 2);
  EXPECT_EQ(convs[6].ic, 128);  // C7
  EXPECT_EQ(convs[6].oc, 256);
  auto dws = MobilenetDepthwiseWorkloads();
  ASSERT_EQ(dws.size(), 9u);
  EXPECT_EQ(dws[8].ic, 1024);
}

class ModelCompile : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ModelCompile, CompilesForTarget) {
  int model_id = std::get<0>(GetParam());
  int target_id = std::get<1>(GetParam());
  Model m;
  switch (model_id) {
    case 0:
      m = ResNet18(1, 32);  // small image: fast compile, same kernel structure
      break;
    case 1:
      m = MobileNet(1, 32);
      break;
    case 2:
      m = Dqn(1);
      break;
    case 3:
      m = Dcgan(1);
      break;
    default:
      m = LstmLanguageModel(2, 64);
      break;
  }
  Target t = target_id == 0 ? Target::ArmA53() : Target::TitanX();
  graph::GraphExecutor exec(m.graph, t, {});
  EXPECT_GT(exec.num_kernels(), 0);
  EXPECT_GT(exec.EstimateSeconds(), 0.0);
  EXPECT_LE(exec.memory_plan().planned_bytes, exec.memory_plan().unplanned_bytes);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelCompile,
                         ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 2)));

}  // namespace
}  // namespace frontend
}  // namespace tvmcpp
