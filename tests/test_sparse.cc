// Sparse tensors + SpMM differential suite (the tentpole's test layer).
//
// The contract under test: a CSR sparse_dense must be *bitwise* identical to the
// dense op with the zeros materialized back in — on the interpreter, the VM, and
// the AOT native kernel, under TVMCPP_VM_STRICT=1 with zero fallbacks. That holds
// by construction: CSR stores columns ascending per row, so the sparse reduction
// accumulates the surviving terms in the same k-ascending order as the dense
// reduction, and the dropped terms were exact zeros (exact no-ops in f32/f16
// accumulation from a +0.0 init, exact in integer arithmetic).
//
// Layers covered: runtime::CSRMatrix storage, the ELL-bounded te compute
// (topi::SparseDense) across schedule configs and dtypes, the hand-lowered
// nnz-balanced row-block kernel (topi::SpMMCSRRowBlocks) including multi-thread
// VM runs, graph-level SparseMlp vs its dense reference on all three engines,
// Rebatched batch-N execution, tuning-cache workload keys, and the serving path
// (coalescing, deadlines, fail-point recovery).
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/codegen/codegen.h"
#include "src/codegen/native.h"
#include "src/frontend/models.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/lower/lower.h"
#include "src/runtime/csr.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/schedule/schedule.h"
#include "src/serve/batch.h"
#include "src/serve/serve.h"
#include "src/support/failpoint.h"
#include "src/support/float16.h"
#include "src/support/random.h"
#include "src/topi/schedules.h"
#include "src/topi/sparse.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

namespace fp = failpoint;

struct ScopedStrictMode {
  bool saved;
  ScopedStrictMode() : saved(vm::StrictMode()) { vm::SetStrictMode(true); }
  ~ScopedStrictMode() { vm::SetStrictMode(saved); }
};

struct ScopedEngine {
  ExecEngine saved;
  explicit ScopedEngine(ExecEngine e) : saved(GetExecEngine()) { SetExecEngine(e); }
  ~ScopedEngine() { SetExecEngine(saved); }
};

struct ScopedFailpoints {
  ScopedFailpoints() { fp::DisarmAll(); }
  ~ScopedFailpoints() { fp::DisarmAll(); }
};

struct ArgBuf {
  std::vector<char> bytes;
  DataType dtype;
  int64_t num_elements = 0;

  static ArgBuf Make(int64_t elems, DataType dtype, uint64_t seed) {
    ArgBuf a;
    a.dtype = dtype;
    a.num_elements = elems;
    a.bytes.assign(static_cast<size_t>(elems * InterpElementBytes(dtype)), 0);
    Rng rng(seed);
    if (dtype.is_float()) {
      float* p = reinterpret_cast<float*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<float>(rng.UniformReal() * 2.0 - 1.0);
      }
      if (dtype.bits() == 16) {
        for (int64_t i = 0; i < elems; ++i) {
          p[i] = QuantizeFloat16(p[i]);
        }
      }
    } else if (InterpElementBytes(dtype) == 1) {
      int8_t* p = reinterpret_cast<int8_t*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<int8_t>(static_cast<int64_t>(rng.Uniform(11)) - 5);
      }
    } else {
      int32_t* p = reinterpret_cast<int32_t*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<int32_t>(rng.Uniform(100));
      }
    }
    return a;
  }

  // Snapshot of an NDArray's bytes — how CSR views (indptr/indices/data) become
  // kernel arguments without ever being replaced by random fill.
  static ArgBuf FromNDArray(const NDArray& nd) {
    ArgBuf a;
    a.dtype = nd.dtype();
    a.num_elements = nd.NumElements();
    a.bytes.assign(nd.Data<char>(), nd.Data<char>() + nd.ByteSize());
    return a;
  }

  static ArgBuf Zero(int64_t elems, DataType dtype) {
    ArgBuf a;
    a.dtype = dtype;
    a.num_elements = elems;
    a.bytes.assign(static_cast<size_t>(elems * InterpElementBytes(dtype)), 0);
    return a;
  }

  BufferBinding Bind() { return BufferBinding{bytes.data(), dtype, num_elements}; }
};

// Three-way differential: interpreter (oracle), VM (serial), native — all
// bitwise identical on every buffer, no silent downgrades.
void ExpectThreeTierIdentical(const LoweredFunc& f, const std::vector<ArgBuf>& args,
                              std::vector<char>* interp_out = nullptr) {
  ScopedStrictMode strict;
  vm::ResetFallbackCount();
  std::shared_ptr<const vm::Program> prog = vm::CompileToProgram(f, {});
  ASSERT_NE(prog, nullptr) << "VM failed to compile " << f.name;
  codegen::NativeKernel native = codegen::CompileNativeKernel(f, {});
  ASSERT_TRUE(static_cast<bool>(native))
      << "native tier failed to compile " << f.name << ":\n" << ToString(f.body);
  std::vector<ArgBuf> interp_bufs = args;
  std::vector<ArgBuf> vm_bufs = args;
  std::vector<ArgBuf> native_bufs = args;
  std::vector<BufferBinding> interp_bind, vm_bind, native_bind;
  for (size_t i = 0; i < args.size(); ++i) {
    interp_bind.push_back(interp_bufs[i].Bind());
    vm_bind.push_back(vm_bufs[i].Bind());
    native_bind.push_back(native_bufs[i].Bind());
  }
  RunLoweredInterp(f, interp_bind);
  vm::ExecOptions serial;
  serial.num_threads = 1;
  vm::Run(*prog, vm_bind, serial);
  codegen::RunNativeKernel(native, native_bind);
  for (size_t i = 0; i < args.size(); ++i) {
    EXPECT_EQ(std::memcmp(interp_bufs[i].bytes.data(), vm_bufs[i].bytes.data(),
                          interp_bufs[i].bytes.size()),
              0)
        << f.name << ": buffer " << i << " differs between interp and VM";
    EXPECT_EQ(std::memcmp(interp_bufs[i].bytes.data(), native_bufs[i].bytes.data(),
                          interp_bufs[i].bytes.size()),
              0)
        << f.name << ": buffer " << i << " differs between interp and native";
  }
  EXPECT_EQ(vm::FallbackCount(), 0) << f.name << ": VM fell back to the interpreter";
  if (interp_out != nullptr) {
    *interp_out = interp_bufs.back().bytes;
  }
}

topi::OpWorkload SparseWorkload(const runtime::CSRMatrix& csr, int64_t batch) {
  topi::OpWorkload wl;
  wl.kind = "sparse_dense";
  wl.n = batch;
  wl.k = csr.cols;
  wl.oc = static_cast<int>(csr.rows);
  wl.dtype = csr.dtype;
  wl.nnz = csr.nnz;
  wl.max_row_nnz = csr.max_row_nnz;
  return wl;
}

// Lowers the scheduled te sparse_dense for the workload's CSR matrix.
LoweredFunc BuildSparseFunc(const runtime::CSRMatrix& csr, int64_t batch, int vectorize,
                            int parallel, const std::string& name) {
  topi::OpWorkload wl = SparseWorkload(csr, batch);
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  Target cpu = Target::ArmA53();
  topi::Config config = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  config["vectorize"] = vectorize;
  config["parallel"] = parallel;
  Schedule s = topi::ApplyOpSchedule(wl, cpu, built, config);
  return Lower(s, built.Args(), name);
}

// Args in BuildOpCompute order: [x, w_data, w_indices, w_indptr, out]. x is
// random per seed; the three CSR arrays come from the matrix itself.
std::vector<ArgBuf> SparseArgs(const runtime::CSRMatrix& csr, int64_t batch,
                               uint64_t seed) {
  std::vector<ArgBuf> args;
  args.push_back(ArgBuf::Make(batch * csr.cols, csr.dtype, seed));
  args.push_back(ArgBuf::FromNDArray(csr.data));
  args.push_back(ArgBuf::FromNDArray(csr.indices));
  args.push_back(ArgBuf::FromNDArray(csr.indptr));
  args.push_back(ArgBuf::Zero(batch * csr.rows, csr.dtype));
  return args;
}

// Dense oracle: topi::Dense on the zero-materialized weight, scalar schedule,
// interpreter only. Returns the output bytes.
std::vector<char> DenseReferenceOut(const runtime::CSRMatrix& csr, int64_t batch,
                                    uint64_t x_seed) {
  topi::OpWorkload wl;
  wl.kind = "dense";
  wl.n = batch;
  wl.k = csr.cols;
  wl.oc = static_cast<int>(csr.rows);
  wl.dtype = csr.dtype;
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  Target cpu = Target::ArmA53();
  topi::Config config = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  config["vectorize"] = 0;
  config["parallel"] = 0;
  Schedule s = topi::ApplyOpSchedule(wl, cpu, built, config);
  LoweredFunc f = Lower(s, built.Args(), "sparse_dense_oracle");
  std::vector<ArgBuf> args;
  args.push_back(ArgBuf::Make(batch * csr.cols, csr.dtype, x_seed));
  args.push_back(ArgBuf::FromNDArray(csr.ToDense()));
  args.push_back(ArgBuf::Zero(batch * csr.rows, csr.dtype));
  std::vector<BufferBinding> bind;
  for (ArgBuf& a : args) {
    bind.push_back(a.Bind());
  }
  RunLoweredInterp(f, bind);
  return args.back().bytes;
}

// Runs the sparse kernel on all three engines (bitwise-pinned) AND checks the
// interpreter result against the dense oracle — the sparse == dense contract.
void ExpectSparseMatchesDense(const runtime::CSRMatrix& csr, int64_t batch,
                              int vectorize, int parallel, uint64_t x_seed,
                              const std::string& name) {
  LoweredFunc f = BuildSparseFunc(csr, batch, vectorize, parallel, name);
  std::vector<char> sparse_out;
  ExpectThreeTierIdentical(f, SparseArgs(csr, batch, x_seed), &sparse_out);
  std::vector<char> dense_out = DenseReferenceOut(csr, batch, x_seed);
  ASSERT_EQ(sparse_out.size(), dense_out.size());
  EXPECT_EQ(std::memcmp(sparse_out.data(), dense_out.data(), sparse_out.size()), 0)
      << name << ": sparse output differs bitwise from the dense reference";
}

void ExpectBitwiseEqual(const NDArray& a, const NDArray& b, const std::string& what) {
  ASSERT_EQ(a.NumElements(), b.NumElements()) << what;
  EXPECT_EQ(std::memcmp(a.Data<char>(), b.Data<char>(),
                        static_cast<size_t>(a.ByteSize())),
            0)
      << what << ": outputs differ";
}

// ---------------------------------------------------------------------------
// CSRMatrix storage
// ---------------------------------------------------------------------------

void RoundTrip(DataType dtype, double sparsity, uint64_t seed) {
  NDArray dense = NDArray::Random({13, 29}, dtype, seed);
  runtime::SparsifyDense(&dense, sparsity, seed + 1);
  runtime::CSRMatrix csr = runtime::CSRMatrix::FromDense(dense);
  EXPECT_EQ(csr.rows, 13);
  EXPECT_EQ(csr.cols, 29);
  const int32_t* ip = csr.indptr.Data<int32_t>();
  const int32_t* ix = csr.indices.Data<int32_t>();
  EXPECT_EQ(ip[0], 0);
  EXPECT_EQ(ip[csr.rows], csr.nnz);
  int64_t densest = 0;
  for (int64_t r = 0; r < csr.rows; ++r) {
    ASSERT_LE(ip[r], ip[r + 1]) << "indptr must be monotone";
    densest = std::max<int64_t>(densest, ip[r + 1] - ip[r]);
    for (int32_t p = ip[r]; p < ip[r + 1]; ++p) {
      EXPECT_GE(ix[p], 0);
      EXPECT_LT(ix[p], csr.cols);
      if (p > ip[r]) {
        EXPECT_LT(ix[p - 1], ix[p]) << "columns must ascend within row " << r;
      }
    }
  }
  EXPECT_EQ(csr.max_row_nnz, densest);
  // Tail padding past nnz is zero in both indices and data — the ELL compute may
  // read it for guarded-off steps without leaving the allocation.
  EXPECT_EQ(csr.alloc_len(), csr.nnz + std::max<int64_t>(csr.max_row_nnz, 1));
  for (int64_t p = csr.nnz; p < csr.alloc_len(); ++p) {
    EXPECT_EQ(ix[p], 0);
    EXPECT_TRUE(runtime::csr_detail::IsZeroAt(csr.data, p));
  }
  // All three views share one backing allocation.
  EXPECT_TRUE(csr.indptr.SameStorageAs(csr.indices));
  EXPECT_TRUE(csr.indptr.SameStorageAs(csr.data));
  NDArray back = csr.ToDense();
  EXPECT_EQ(std::memcmp(back.Data<char>(), dense.Data<char>(),
                        static_cast<size_t>(dense.ByteSize())),
            0)
      << "FromDense/ToDense must round-trip bitwise";
}

TEST(Csr, RoundTripF32) { RoundTrip(DataType::Float32(), 0.9, 3); }
TEST(Csr, RoundTripF16) { RoundTrip(DataType::Float16(), 0.8, 5); }
TEST(Csr, RoundTripI8) { RoundTrip(DataType::Int8(), 0.7, 7); }
TEST(Csr, RoundTripFullyDense) { RoundTrip(DataType::Float32(), 0.0, 9); }

TEST(Csr, AllZeroMatrix) {
  NDArray dense = NDArray::Empty({6, 8}, DataType::Float32());
  std::memset(dense.Data<char>(), 0, static_cast<size_t>(dense.ByteSize()));
  runtime::CSRMatrix csr = runtime::CSRMatrix::FromDense(dense);
  EXPECT_EQ(csr.nnz, 0);
  EXPECT_EQ(csr.max_row_nnz, 0);
  EXPECT_EQ(csr.alloc_len(), 1);  // padding keeps the buffers non-empty
  NDArray back = csr.ToDense();
  EXPECT_EQ(std::memcmp(back.Data<char>(), dense.Data<char>(),
                        static_cast<size_t>(dense.ByteSize())),
            0);
}

TEST(Csr, NnzBalancedRowBlocksSkewed) {
  // All the mass in the first two rows: an equal-rows split would give one worker
  // nearly everything; the nnz-balanced split must not.
  NDArray dense = NDArray::Random({16, 64}, DataType::Float32(), 11);
  runtime::SparsifyDense(&dense, 0.97, 12);
  // Rows 0 and 1 fully dense.
  Rng rng(13);
  for (int64_t c = 0; c < 2 * 64; ++c) {
    dense.Data<float>()[c] = static_cast<float>(rng.UniformReal() + 0.5);
  }
  runtime::CSRMatrix csr = runtime::CSRMatrix::FromDense(dense);
  for (int nblocks : {1, 2, 3, 4, 32}) {
    std::vector<int32_t> starts = csr.NnzBalancedRowBlocks(nblocks);
    ASSERT_EQ(starts.size(), static_cast<size_t>(nblocks) + 1);
    EXPECT_EQ(starts.front(), 0);
    EXPECT_EQ(starts.back(), csr.rows);
    const int32_t* ip = csr.indptr.Data<int32_t>();
    int64_t ceil_share = (csr.nnz + nblocks - 1) / nblocks;
    for (int b = 0; b < nblocks; ++b) {
      ASSERT_LE(starts[b], starts[b + 1]) << "block starts must be non-decreasing";
      int64_t block_nnz = ip[starts[b + 1]] - ip[starts[b]];
      // A block overshoots its fair share by at most one row's worth of nnz
      // (rows are atomic), never by an arbitrary amount.
      EXPECT_LE(block_nnz, ceil_share + csr.max_row_nnz)
          << "block " << b << "/" << nblocks << " is unbalanced";
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel-level differential: te sparse_dense vs dense, three engines
// ---------------------------------------------------------------------------

TEST(SparseDiff, F32Scalar) {
  runtime::CSRMatrix csr =
      runtime::RandomCsr(24, 32, 0.9, DataType::Float32(), 21);
  ExpectSparseMatchesDense(csr, 5, 0, 0, 101, "sp_f32_scalar");
}

TEST(SparseDiff, F32Vectorized) {
  runtime::CSRMatrix csr =
      runtime::RandomCsr(24, 32, 0.9, DataType::Float32(), 22);
  ExpectSparseMatchesDense(csr, 5, 1, 0, 102, "sp_f32_vec");
}

TEST(SparseDiff, F32ParallelBatchRows) {
  runtime::CSRMatrix csr =
      runtime::RandomCsr(24, 32, 0.9, DataType::Float32(), 23);
  ExpectSparseMatchesDense(csr, 5, 0, 1, 103, "sp_f32_par_rows");
}

TEST(SparseDiff, F32ParallelColumnBlocks) {
  // parallel=2 is the single-sample serving axis: batch extent 1, the kParallel
  // loop runs over output-column blocks instead.
  runtime::CSRMatrix csr =
      runtime::RandomCsr(24, 32, 0.9, DataType::Float32(), 24);
  ExpectSparseMatchesDense(csr, 1, 0, 2, 104, "sp_f32_par_cols");
}

TEST(SparseDiff, F16) {
  runtime::CSRMatrix csr =
      runtime::RandomCsr(16, 24, 0.85, DataType::Float16(), 25);
  ExpectSparseMatchesDense(csr, 3, 0, 0, 105, "sp_f16");
  ExpectSparseMatchesDense(csr, 3, 1, 0, 106, "sp_f16_vec");
}

TEST(SparseDiff, I8) {
  runtime::CSRMatrix csr = runtime::RandomCsr(16, 24, 0.85, DataType::Int8(), 26);
  ExpectSparseMatchesDense(csr, 3, 0, 0, 107, "sp_i8");
  ExpectSparseMatchesDense(csr, 3, 1, 0, 108, "sp_i8_vec");
}

TEST(SparseDiff, EmptyRowsAndSingleNnz) {
  // Hand-built pathology: rows 0/2/5 empty, row 3 a single entry at the last
  // column, row 1 dense — exercising row_end == row_start (the guard selects the
  // zero arm for every ELL step) and max-column indexing in one matrix.
  NDArray dense = NDArray::Empty({6, 8}, DataType::Float32());
  std::memset(dense.Data<char>(), 0, static_cast<size_t>(dense.ByteSize()));
  float* d = dense.Data<float>();
  for (int c = 0; c < 8; ++c) {
    d[1 * 8 + c] = 0.25f * static_cast<float>(c + 1);
  }
  d[3 * 8 + 7] = -1.5f;
  d[4 * 8 + 2] = 2.0f;
  runtime::CSRMatrix csr = runtime::CSRMatrix::FromDense(dense);
  EXPECT_EQ(csr.nnz, 10);
  EXPECT_EQ(csr.max_row_nnz, 8);
  ExpectSparseMatchesDense(csr, 4, 0, 0, 109, "sp_empty_rows");
  ExpectSparseMatchesDense(csr, 4, 1, 1, 110, "sp_empty_rows_vec_par");
}

TEST(SparseDiff, AllZeroWeight) {
  // nnz == 0, max_row_nnz == 0: the ELL reduce axis has extent zero and the
  // output must be exactly the reduction init everywhere, on all three engines.
  NDArray dense = NDArray::Empty({5, 7}, DataType::Float32());
  std::memset(dense.Data<char>(), 0, static_cast<size_t>(dense.ByteSize()));
  runtime::CSRMatrix csr = runtime::CSRMatrix::FromDense(dense);
  ExpectSparseMatchesDense(csr, 2, 0, 0, 111, "sp_all_zero");
}

// ---------------------------------------------------------------------------
// Row-blocked SpMM kernel (hand-lowered, nnz-balanced kParallel blocks)
// ---------------------------------------------------------------------------

std::vector<ArgBuf> SpmmArgs(const runtime::CSRMatrix& csr, int64_t batch,
                             const std::vector<int32_t>& starts, uint64_t x_seed) {
  std::vector<ArgBuf> args;
  args.push_back(ArgBuf::Make(batch * csr.cols, csr.dtype, x_seed));
  args.push_back(ArgBuf::FromNDArray(csr.data));
  args.push_back(ArgBuf::FromNDArray(csr.indices));
  args.push_back(ArgBuf::FromNDArray(csr.indptr));
  ArgBuf blocks = ArgBuf::Zero(static_cast<int64_t>(starts.size()), DataType::Int32());
  std::memcpy(blocks.bytes.data(), starts.data(), starts.size() * sizeof(int32_t));
  args.push_back(blocks);
  args.push_back(ArgBuf::Zero(batch * csr.rows, csr.dtype));
  return args;
}

TEST(SpmmRowBlocks, ThreeTierMatchesDense) {
  const int64_t kBatch = 3;
  runtime::CSRMatrix csr =
      runtime::RandomCsr(32, 48, 0.92, DataType::Float32(), 31);
  const int kBlocks = 4;
  std::vector<int32_t> starts = csr.NnzBalancedRowBlocks(kBlocks);
  LoweredFunc f = topi::SpMMCSRRowBlocks(kBatch, csr.cols, csr.rows, csr.alloc_len(),
                                         kBlocks, csr.dtype, "spmm_blocks");
  std::vector<char> out;
  ExpectThreeTierIdentical(f, SpmmArgs(csr, kBatch, starts, 201), &out);
  // The row-block kernel accumulates each row's nonzeros in the same ascending
  // order as the te compute and the dense op — one oracle serves all.
  std::vector<char> dense_out = DenseReferenceOut(csr, kBatch, 201);
  ASSERT_EQ(out.size(), dense_out.size());
  EXPECT_EQ(std::memcmp(out.data(), dense_out.data(), out.size()), 0)
      << "row-block SpMM differs bitwise from the dense reference";
}

TEST(SpmmRowBlocks, MultiThreadVmMatchesSerialBitwise) {
  // Different rows write disjoint output elements, so the kParallel block loop
  // must be bitwise-invariant in the thread count — and must actually stay
  // parallel (no hazard demotion, no strict-mode fallback).
  ScopedStrictMode strict;
  const int64_t kBatch = 2;
  runtime::CSRMatrix csr =
      runtime::RandomCsr(64, 40, 0.9, DataType::Float32(), 37);
  const int kBlocks = 8;
  std::vector<int32_t> starts = csr.NnzBalancedRowBlocks(kBlocks);
  LoweredFunc f = topi::SpMMCSRRowBlocks(kBatch, csr.cols, csr.rows, csr.alloc_len(),
                                         kBlocks, csr.dtype, "spmm_blocks_mt");
  std::shared_ptr<const vm::Program> prog = vm::CompileToProgram(f, {});
  ASSERT_NE(prog, nullptr);
  std::vector<ArgBuf> serial_bufs = SpmmArgs(csr, kBatch, starts, 203);
  std::vector<ArgBuf> mt_bufs = serial_bufs;
  std::vector<BufferBinding> serial_bind, mt_bind;
  for (size_t i = 0; i < serial_bufs.size(); ++i) {
    serial_bind.push_back(serial_bufs[i].Bind());
    mt_bind.push_back(mt_bufs[i].Bind());
  }
  vm::ResetFallbackCount();
  vm::ExecOptions serial;
  serial.num_threads = 1;
  vm::Run(*prog, serial_bind, serial);
  vm::ExecOptions mt;
  mt.num_threads = 4;
  vm::Run(*prog, mt_bind, mt);
  EXPECT_EQ(vm::FallbackCount(), 0);
  EXPECT_EQ(std::memcmp(serial_bufs.back().bytes.data(), mt_bufs.back().bytes.data(),
                        serial_bufs.back().bytes.size()),
            0)
      << "multi-thread SpMM differs from serial";
}

// ---------------------------------------------------------------------------
// Tuning-cache identity
// ---------------------------------------------------------------------------

TEST(SparseWorkload, KeyCarriesSparsityStructure) {
  runtime::CSRMatrix csr = runtime::RandomCsr(24, 32, 0.9, DataType::Float32(), 41);
  topi::OpWorkload wl = SparseWorkload(csr, 4);
  std::string key = wl.Key();
  EXPECT_NE(key.find("sparse_dense"), std::string::npos);
  EXPECT_NE(key.find("_nnz"), std::string::npos);
  EXPECT_NE(key.find("_rn"), std::string::npos);
  // A different pruning pattern of the same dense shape is a different cached
  // entity — its best schedule depends on the structure, not just the shape.
  topi::OpWorkload other = wl;
  other.nnz = wl.nnz + 1;
  EXPECT_NE(other.Key(), key);
  // Dense keys must be untouched by the sparse fields (pinned hashes in
  // test_autotune depend on this).
  topi::OpWorkload dense;
  dense.kind = "dense";
  dense.n = 4;
  dense.k = 32;
  dense.oc = 24;
  dense.nnz = 999;  // ignored for non-sparse kinds
  EXPECT_EQ(dense.Key().find("_nnz"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Graph level: SparseMlp vs the dense reference, three engines, batch-N
// ---------------------------------------------------------------------------

NDArray RunModel(const frontend::Model& m, const NDArray& input) {
  graph::GraphExecutor exec(m.graph, Target::ArmA53(), {});
  for (const auto& kv : m.params) {
    exec.SetParam(kv.first, kv.second);
  }
  exec.SetInput(m.input_name, input);
  exec.Run();
  return exec.GetOutput(0).Copy();
}

TEST(SparseGraph, MlpMatchesDenseReferenceAllEngines) {
  ScopedStrictMode strict;
  frontend::Model sparse = frontend::SparseMlp(2, 64, 64, 16, 0.9);
  frontend::Model dense = frontend::SparseMlpDenseReference(2, 64, 64, 16, 0.9);
  NDArray input = NDArray::Random({2, 64}, DataType::Float32(), 55);
  for (ExecEngine e : {ExecEngine::kInterp, ExecEngine::kVm, ExecEngine::kNative}) {
    ScopedEngine engine(e);
    vm::ResetFallbackCount();
    NDArray got = RunModel(sparse, input);
    NDArray want = RunModel(dense, input);
    ExpectBitwiseEqual(got, want,
                       "engine " + std::to_string(static_cast<int>(e)));
    EXPECT_EQ(vm::FallbackCount(), 0);
  }
}

TEST(SparseGraph, RebatchedSharesWeightsBitwise) {
  ScopedStrictMode strict;
  frontend::Model m = frontend::SparseMlp(1, 48, 48, 12, 0.9);
  std::shared_ptr<graph::CompiledGraph> base =
      frontend::CompileModel(m, Target::ArmA53());
  std::shared_ptr<graph::CompiledGraph> batched = base->Rebatched(3);
  std::vector<NDArray> inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(NDArray::Random({1, 48}, DataType::Float32(), 60 + i));
  }
  graph::RunContext ctx(batched);
  serve::NamedTensors r0{{"data", inputs[0]}};
  serve::NamedTensors r1{{"data", inputs[1]}};
  serve::NamedTensors r2{{"data", inputs[2]}};
  serve::BindConcatenatedInputs({&r0, &r1, &r2}, &ctx);
  batched->Run(&ctx);
  std::vector<std::vector<NDArray>> slices = serve::SliceBatchedOutputs(ctx, 3);
  for (int i = 0; i < 3; ++i) {
    ExpectBitwiseEqual(slices[static_cast<size_t>(i)][0], RunModel(m, inputs[i]),
                       "batched slice " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Serving: coalescing, deadlines, fail-point recovery for the sparse model
// ---------------------------------------------------------------------------

std::shared_ptr<graph::CompiledGraph> SparseServeModel() {
  return frontend::CompileModel(frontend::SparseMlp(1, 48, 48, 12, 0.9),
                                Target::ArmA53());
}

NDArray SparseOracle(const NDArray& input) {
  return RunModel(frontend::SparseMlp(1, 48, 48, 12, 0.9), input);
}

TEST(SparseServe, BatchesCoalesceBitwise) {
  ScopedFailpoints guard;
  ScopedStrictMode strict;
  std::shared_ptr<graph::CompiledGraph> model = SparseServeModel();
  serve::ServerOptions opts;
  opts.num_workers = 1;
  opts.max_batch = 4;
  opts.batch_timeout_ms = 300;
  serve::InferenceServer server(opts);
  const int kRequests = 3;
  std::vector<NDArray> inputs;
  std::vector<std::future<serve::InferenceResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(NDArray::Random({1, 48}, DataType::Float32(), 70 + i));
    serve::InferenceRequest req;
    req.inputs["data"] = inputs.back();
    futures.push_back(server.Submit(model, std::move(req)));
  }
  for (int i = 0; i < kRequests; ++i) {
    serve::InferenceResponse resp = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(resp.status.ok()) << resp.status.message;
    ASSERT_EQ(resp.outputs.size(), 1u);
    EXPECT_EQ(resp.batch_size, kRequests);
    ExpectBitwiseEqual(resp.outputs[0], SparseOracle(inputs[static_cast<size_t>(i)]),
                       "sparse batched request " + std::to_string(i));
  }
  serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.batched_requests, kRequests);
}

TEST(SparseServe, DeadlineExpiredInQueueIsTyped) {
  ScopedFailpoints guard;
  ASSERT_TRUE(fp::ArmSpec("serve.run=delay(40)*1"));
  std::shared_ptr<graph::CompiledGraph> model = SparseServeModel();
  serve::ServerOptions opts;
  opts.num_workers = 1;
  opts.enable_shedding = 0;
  serve::InferenceServer server(opts);
  serve::InferenceRequest slow;
  slow.inputs["data"] = NDArray::Random({1, 48}, DataType::Float32(), 80);
  std::future<serve::InferenceResponse> f_slow = server.Submit(model, std::move(slow));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  serve::InferenceRequest doomed;
  doomed.inputs["data"] = NDArray::Random({1, 48}, DataType::Float32(), 81);
  doomed.deadline_ms = 5;
  std::future<serve::InferenceResponse> f_doomed =
      server.Submit(model, std::move(doomed));
  EXPECT_TRUE(f_slow.get().status.ok());
  serve::InferenceResponse miss = f_doomed.get();
  EXPECT_EQ(miss.status.code, serve::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(miss.outputs.empty());
  EXPECT_EQ(server.stats().deadline_missed, 1);
}

TEST(SparseServe, TransientFaultRetriesBitwiseWithIsolation) {
  ScopedFailpoints guard;
  ScopedStrictMode strict;
  // The faulted request recovers by retry; the cohabitant submitted after it is
  // untouched. Both must be bitwise-equal to the fault-free oracle.
  ASSERT_TRUE(fp::ArmSpec("serve.run=error*2"));
  std::shared_ptr<graph::CompiledGraph> model = SparseServeModel();
  serve::ServerOptions opts;
  opts.num_workers = 1;
  opts.max_retries = 3;
  opts.retry_backoff_ms = 0.1;
  serve::InferenceServer server(opts);
  NDArray in_a = NDArray::Random({1, 48}, DataType::Float32(), 90);
  NDArray in_b = NDArray::Random({1, 48}, DataType::Float32(), 91);
  serve::InferenceRequest ra;
  ra.inputs["data"] = in_a.Copy();
  std::future<serve::InferenceResponse> fa = server.Submit(model, std::move(ra));
  serve::InferenceRequest rb;
  rb.inputs["data"] = in_b.Copy();
  std::future<serve::InferenceResponse> fb = server.Submit(model, std::move(rb));
  serve::InferenceResponse resp_a = fa.get();
  serve::InferenceResponse resp_b = fb.get();
  ASSERT_TRUE(resp_a.status.ok()) << resp_a.status.message;
  ASSERT_TRUE(resp_b.status.ok()) << resp_b.status.message;
  ExpectBitwiseEqual(resp_a.outputs[0], SparseOracle(in_a), "faulted request");
  ExpectBitwiseEqual(resp_b.outputs[0], SparseOracle(in_b), "cohabitant request");
  serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.fallbacks, 0);
  EXPECT_EQ(stats.failed, 0);
}

}  // namespace
}  // namespace tvmcpp
