// Differential + unit tests for the loop-specialization pipeline (ISSUE 5):
// SpecializeLoops (src/lower/unroll.cc: full unrolling of small fixed-extent
// innermost loops, invariant hoisting, multiply CSE) and the VM compiler's strength
// reduction + peephole (src/vm/vm.cc).
//
// The differential bar matches test_vm.cc / test_vectorize.cc: the specialized VM,
// the unspecialized VM, and the reference interpreter must produce *bitwise*
// identical buffers, under TVMCPP_VM_STRICT=1 so any engine downgrade fails loudly.
// Unit assertions on vm::ProgramStats pin that each pass actually fires (an
// optimization that silently stops matching is a perf regression the differential
// check alone would never catch).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/frontend/models.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/lower/lower.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/schedule/schedule.h"
#include "src/support/float16.h"
#include "src/support/random.h"
#include "src/topi/nn.h"
#include "src/topi/schedules.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

struct ScopedStrictMode {
  bool saved;
  ScopedStrictMode() : saved(vm::StrictMode()) { vm::SetStrictMode(true); }
  ~ScopedStrictMode() { vm::SetStrictMode(saved); }
};

struct ArgBuf {
  std::vector<char> bytes;
  DataType dtype;
  int64_t num_elements = 0;

  static ArgBuf Make(int64_t elems, DataType dtype, uint64_t seed) {
    ArgBuf a;
    a.dtype = dtype;
    a.num_elements = elems;
    a.bytes.assign(static_cast<size_t>(elems * InterpElementBytes(dtype)), 0);
    Rng rng(seed);
    if (dtype.is_float()) {
      float* p = reinterpret_cast<float*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<float>(rng.UniformReal() * 2.0 - 1.0);
      }
      if (dtype.bits() == 16) {
        for (int64_t i = 0; i < elems; ++i) {
          p[i] = QuantizeFloat16(p[i]);
        }
      }
    } else {
      int32_t* p = reinterpret_cast<int32_t*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<int32_t>(rng.Uniform(100));
      }
    }
    return a;
  }

  BufferBinding Bind() { return BufferBinding{bytes.data(), dtype, num_elements}; }
};

int64_t NumElems(const Tensor& t) {
  int64_t n = 1;
  for (const Expr& e : t.shape()) {
    n *= get_const_int(e);
  }
  return n;
}

std::vector<ArgBuf> MakeArgs(const std::vector<Tensor>& tensors, uint64_t seed) {
  std::vector<ArgBuf> args;
  for (size_t i = 0; i < tensors.size(); ++i) {
    args.push_back(ArgBuf::Make(NumElems(tensors[i]), tensors[i].dtype(), seed + i * 131));
  }
  return args;
}

// Three-way differential: interpreter (oracle), unspecialized VM, specialized VM —
// all bitwise identical. Returns the specialized program's stats for unit checks.
vm::ProgramStats ExpectSpecializedIdentical(const LoweredFunc& f,
                                            const std::vector<ArgBuf>& args,
                                            const LoopSpecializeOptions& spec =
                                                LoopSpecializeOptions{}) {
  ScopedStrictMode strict;
  std::shared_ptr<const vm::Program> base =
      vm::CompileToProgram(f, LoopSpecializeOptions::Disabled());
  std::shared_ptr<const vm::Program> opt = vm::CompileToProgram(f, spec);
  EXPECT_NE(base, nullptr) << "unspecialized VM failed to compile " << f.name;
  EXPECT_NE(opt, nullptr) << "specialized VM failed to compile " << f.name;
  if (base == nullptr || opt == nullptr) {
    return {};
  }
  std::vector<ArgBuf> interp_bufs = args;
  std::vector<ArgBuf> base_bufs = args;
  std::vector<ArgBuf> opt_bufs = args;
  std::vector<BufferBinding> interp_bind, base_bind, opt_bind;
  for (size_t i = 0; i < args.size(); ++i) {
    interp_bind.push_back(interp_bufs[i].Bind());
    base_bind.push_back(base_bufs[i].Bind());
    opt_bind.push_back(opt_bufs[i].Bind());
  }
  RunLoweredInterp(f, interp_bind);
  vm::ExecOptions serial;
  serial.num_threads = 1;
  vm::Run(*base, base_bind, serial);
  vm::Run(*opt, opt_bind, serial);
  for (size_t i = 0; i < args.size(); ++i) {
    EXPECT_EQ(std::memcmp(interp_bufs[i].bytes.data(), base_bufs[i].bytes.data(),
                          interp_bufs[i].bytes.size()),
              0)
        << f.name << ": buffer " << i << " differs between interp and base VM";
    EXPECT_EQ(std::memcmp(interp_bufs[i].bytes.data(), opt_bufs[i].bytes.data(),
                          interp_bufs[i].bytes.size()),
              0)
        << f.name << ": buffer " << i << " differs between interp and specialized VM";
  }
  return vm::GetProgramStats(*opt);
}

LoweredFunc BuildDense(DataType dtype, int vectorize, std::vector<Tensor>* tensors) {
  topi::OpWorkload wl;
  wl.kind = "dense";
  wl.n = 5;
  wl.k = 32;
  wl.oc = 24;
  wl.dtype = dtype;
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  Target cpu = Target::ArmA53();
  topi::Config config = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  config["parallel"] = 0;
  config["vectorize"] = vectorize;
  Schedule s = topi::ApplyOpSchedule(wl, cpu, built, config);
  *tensors = built.Args();
  return Lower(s, built.Args(), "dense_spec");
}

LoweredFunc BuildConvRelu3x3(DataType dtype, std::vector<Tensor>* tensors) {
  topi::OpWorkload wl;
  wl.kind = "conv2d";
  wl.n = 1;
  wl.ic = 4;
  wl.h = wl.w = 10;
  wl.oc = 8;
  wl.k = 3;
  wl.stride = 1;
  wl.pad = 1;
  wl.dtype = dtype;
  Tensor data = placeholder(
      {make_int(wl.n), make_int(wl.ic), make_int(wl.h), make_int(wl.w)}, dtype, "data");
  Tensor kern = placeholder(
      {make_int(wl.oc), make_int(wl.ic), make_int(wl.k), make_int(wl.k)}, dtype, "kern");
  Tensor conv = topi::Conv2dNCHW(data, kern, wl.stride, wl.pad);
  Tensor out = topi::Relu(conv);
  Target cpu = Target::ArmA53();
  topi::Config config = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  config["parallel"] = 0;
  Schedule s = topi::ScheduleFusedGroup(cpu, {out}, conv, config, &wl);
  *tensors = {data, kern, out};
  return Lower(s, {data, kern, out}, "conv_relu_spec");
}

// Elementwise chain with an inner split of `factor`: straddles the unroll
// threshold from both sides.
LoweredFunc BuildSplitElementwise(int64_t factor, std::vector<Tensor>* tensors) {
  const int n = 192;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(n)}, DataType::Float32(), "B");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       Expr a = A({i[0]});
                       Expr b = B({i[0]});
                       return a * b + max(a, b) * make_float(0.5);
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage st = (*s)[C];
  IterVar o, i;
  st->split(st->leaf_iter_vars[0], factor, &o, &i);
  *tensors = {A, B, C};
  return Lower(s, {A, B, C}, "elementwise_split" + std::to_string(factor));
}

// ---------------------------------------------------------------------------
// Differential suites
// ---------------------------------------------------------------------------

TEST(SpecializeDiff, DenseF32Scalar) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Float32(), /*vectorize=*/0, &t);
  vm::ProgramStats st = ExpectSpecializedIdentical(f, MakeArgs(t, 7));
  // The dense k loop's invariant row offsets must hoist.
  EXPECT_GT(st.hoisted_lets, 0) << "invariant hoisting did not fire on dense";
}

TEST(SpecializeDiff, DenseF32Vectorized) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Float32(), /*vectorize=*/1, &t);
  ExpectSpecializedIdentical(f, MakeArgs(t, 11));
}

TEST(SpecializeDiff, DenseF16) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Float16(), /*vectorize=*/0, &t);
  ExpectSpecializedIdentical(f, MakeArgs(t, 13));
}

TEST(SpecializeDiff, ConvRelu3x3F32) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildConvRelu3x3(DataType::Float32(), &t);
  vm::ProgramStats st = ExpectSpecializedIdentical(f, MakeArgs(t, 17));
  // The 3x3 window (and the schedule's small tile loops) must fully unroll, and
  // the surviving channel loop must get strength-reduced index products.
  EXPECT_GT(st.unrolled_loops, 0) << "unrolling did not fire on conv2d 3x3";
  EXPECT_GT(st.hoisted_lets, 0);
  EXPECT_GT(st.strength_reduced, 0) << "strength reduction did not fire on conv2d";
}

TEST(SpecializeDiff, ConvRelu3x3F16) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildConvRelu3x3(DataType::Float16(), &t);
  ExpectSpecializedIdentical(f, MakeArgs(t, 19));
}

TEST(SpecializeDiff, ExtentsStraddleUnrollThreshold) {
  // factor 4 <= default limit 8: unrolls. factor 32 > 8: stays a loop.
  std::vector<Tensor> t4, t32;
  LoweredFunc f4 = BuildSplitElementwise(4, &t4);
  LoweredFunc f32 = BuildSplitElementwise(32, &t32);
  vm::ProgramStats st4 = ExpectSpecializedIdentical(f4, MakeArgs(t4, 23));
  vm::ProgramStats st32 = ExpectSpecializedIdentical(f32, MakeArgs(t32, 29));
  EXPECT_GT(st4.unrolled_loops, 0) << "extent 4 must unroll under limit 8";
  EXPECT_EQ(st32.unrolled_loops, 0) << "extent 32 must not unroll under limit 8";
}

TEST(SpecializeDiff, NoNewFallbacks) {
  // Specialization must never push a previously-compilable kernel off the VM.
  ScopedStrictMode strict;
  vm::ResetFallbackCount();
  std::vector<Tensor> t;
  LoweredFunc f = BuildConvRelu3x3(DataType::Float32(), &t);
  ASSERT_NE(vm::CompileToProgram(f, LoopSpecializeOptions{}), nullptr);
  EXPECT_EQ(vm::FallbackCount(), 0);
}

// ---------------------------------------------------------------------------
// Unit tests: options plumbing and pass-fired assertions
// ---------------------------------------------------------------------------

TEST(SpecializeOptions, FromEnvReadsUnrollLimit) {
  setenv("TVMCPP_UNROLL_LIMIT", "64", 1);
  EXPECT_EQ(LoopSpecializeOptions::FromEnv().unroll_limit, 64);
  setenv("TVMCPP_UNROLL_LIMIT", "0", 1);
  EXPECT_EQ(LoopSpecializeOptions::FromEnv().unroll_limit, 0);
  unsetenv("TVMCPP_UNROLL_LIMIT");
  EXPECT_EQ(LoopSpecializeOptions::FromEnv().unroll_limit, 8);
  setenv("TVMCPP_VM_SPECIALIZE", "0", 1);
  EXPECT_FALSE(LoopSpecializeOptions::FromEnv().hoist_invariants);
  EXPECT_EQ(LoopSpecializeOptions::FromEnv().unroll_limit, 0);
  unsetenv("TVMCPP_VM_SPECIALIZE");
}

TEST(SpecializeOptions, RaisedLimitUnrollsWiderLoop) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildSplitElementwise(32, &t);
  LoopSpecializeOptions wide;
  wide.unroll_limit = 64;
  vm::ProgramStats st = ExpectSpecializedIdentical(f, MakeArgs(t, 31), wide);
  EXPECT_GT(st.unrolled_loops, 0) << "extent 32 must unroll under limit 64";
}

TEST(SpecializeUnit, DenseScalarShrinksAndDropsJumps) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Float32(), /*vectorize=*/0, &t);
  auto base = vm::CompileToProgram(f, LoopSpecializeOptions::Disabled());
  auto spec = vm::CompileToProgram(f, LoopSpecializeOptions{});
  ASSERT_NE(base, nullptr);
  ASSERT_NE(spec, nullptr);
  vm::ProgramStats bs = vm::GetProgramStats(*base);
  vm::ProgramStats ss = vm::GetProgramStats(*spec);
  // Hoisting moves index arithmetic out of the k loop and the peephole folds the
  // loop-bound adds: the specialized program must be strictly smaller.
  EXPECT_LT(ss.num_instructions, bs.num_instructions);
  EXPECT_LT(ss.int_muls, bs.int_muls) << "row-offset multiplies were not hoisted";
  EXPECT_GT(ss.peephole_removed, 0);
}

TEST(SpecializeUnit, FullyUnrolledKernelHasNoJumps) {
  // A single small loop nest with no guards: specialization must leave pure
  // straight-line code (zero jumps — no back-edges, no branches).
  const int n = 6;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor B = compute({make_int(n)},
                     [&](const std::vector<Var>& i) { return A({i[0]}) * make_float(2); },
                     "B");
  Schedule s = create_schedule({B});
  LoweredFunc f = Lower(s, {A, B}, "tiny");
  auto spec = vm::CompileToProgram(f, LoopSpecializeOptions{});
  ASSERT_NE(spec, nullptr);
  vm::ProgramStats st = vm::GetProgramStats(*spec);
  EXPECT_EQ(st.jumps, 0) << "extent-6 loop should be straight-line";
  EXPECT_EQ(st.unrolled_loops, 1);
  std::vector<ArgBuf> args = MakeArgs({A, B}, 37);
  ExpectSpecializedIdentical(f, args);
}

TEST(SpecializeUnit, DisabledMatchesLegacyCompilation) {
  // Disabled() must reproduce the pre-specialization compiler output: no counters,
  // no reserved registers beyond the legacy allocation.
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Float32(), /*vectorize=*/0, &t);
  auto base = vm::CompileToProgram(f, LoopSpecializeOptions::Disabled());
  ASSERT_NE(base, nullptr);
  vm::ProgramStats st = vm::GetProgramStats(*base);
  EXPECT_EQ(st.unrolled_loops, 0);
  EXPECT_EQ(st.hoisted_lets, 0);
  EXPECT_EQ(st.csed_muls, 0);
  EXPECT_EQ(st.strength_reduced, 0);
  EXPECT_EQ(st.peephole_removed, 0);
}

// ---------------------------------------------------------------------------
// Graph-level: batched models inherit the pass config via CompileOptions
// ---------------------------------------------------------------------------

NDArray RunModelOnce(
    const std::shared_ptr<const graph::CompiledGraph>& model,
    const std::vector<std::pair<std::string, NDArray>>& inputs) {
  graph::RunContext ctx(model);
  for (const auto& kv : inputs) {
    ctx.SetInput(kv.first, kv.second);
  }
  vm::ExecOptions serial;
  serial.num_threads = 1;
  model->Run(&ctx, serial);
  return ctx.GetOutput(0).Copy();
}

void ExpectBitwiseEqual(const NDArray& a, const NDArray& b, const std::string& what) {
  ASSERT_EQ(a.NumElements(), b.NumElements()) << what;
  EXPECT_EQ(std::memcmp(a.Data<char>(), b.Data<char>(),
                        static_cast<size_t>(a.ByteSize())),
            0)
      << what << ": outputs differ";
}

TEST(SpecializeGraph, BatchedLstmBitwiseIdentical) {
  // The frontend LSTM LM compiled with and without specialization, then rebatched:
  // Rebatched() inherits CompileOptions::specialize, so the batched variant's
  // hoisted batch-offset adds must still match the unspecialized batched run
  // bitwise. Strict mode: no kernel may silently fall back.
  ScopedStrictMode strict;
  Target cpu = Target::ArmA53();
  frontend::Model m = frontend::LstmLanguageModel(2, 8, 1);
  graph::CompileOptions spec_opts;
  spec_opts.specialize = LoopSpecializeOptions{};
  graph::CompileOptions base_opts;
  base_opts.specialize = LoopSpecializeOptions::Disabled();
  // Deterministic per-name parameter seeding makes the two builds share weights.
  auto spec_model = frontend::CompileModel(m, cpu, spec_opts);
  auto base_model = frontend::CompileModel(frontend::LstmLanguageModel(2, 8, 1), cpu,
                                           base_opts);

  // The LSTM LM is multi-input: data plus the h0/c0 recurrent states.
  auto lstm_inputs = [&](int batch, uint64_t seed) {
    std::vector<int64_t> shape = m.input_shape;
    shape[0] *= batch;
    return std::vector<std::pair<std::string, NDArray>>{
        {"data", NDArray::Random(shape, DataType::Float32(), seed)},
        {"h0", NDArray::Random(shape, DataType::Float32(), seed + 1)},
        {"c0", NDArray::Random(shape, DataType::Float32(), seed + 2)}};
  };
  auto batch1 = lstm_inputs(1, 41);
  ExpectBitwiseEqual(RunModelOnce(spec_model, batch1),
                     RunModelOnce(base_model, batch1), "lstm batch-1");

  const int batch = 3;
  auto batch3 = lstm_inputs(batch, 47);
  ExpectBitwiseEqual(RunModelOnce(spec_model->Rebatched(batch), batch3),
                     RunModelOnce(base_model->Rebatched(batch), batch3),
                     "lstm batch-3 (inherited specialize config)");
}

TEST(SpecializeGraph, BatchedDenseChainBitwiseIdentical) {
  ScopedStrictMode strict;
  auto make = [&](bool specialize) {
    graph::Graph g;
    int x = g.AddInput("data", {1, 8});
    for (int l = 0; l < 3; ++l) {
      int w = g.AddConst("w" + std::to_string(l), {8, 8});
      x = g.AddOp("dense", "d" + std::to_string(l), {x, w});
      x = g.AddOp("relu", "r" + std::to_string(l), {x});
    }
    g.outputs = {x};
    graph::CompileOptions options;
    options.specialize = specialize ? LoopSpecializeOptions{}
                                    : LoopSpecializeOptions::Disabled();
    auto model = std::make_shared<graph::CompiledGraph>(std::move(g), Target::ArmA53(),
                                                        options);
    for (int l = 0; l < 3; ++l) {
      model->SetParam("w" + std::to_string(l),
                      NDArray::Random({8, 8}, DataType::Float32(),
                                      static_cast<uint64_t>(60 + l)));
    }
    return model;
  };
  auto spec_model = make(true);
  auto base_model = make(false);
  for (int batch : {1, 2, 4}) {
    NDArray input = NDArray::Random({batch, 8}, DataType::Float32(),
                                    static_cast<uint64_t>(70 + batch));
    auto spec_b = batch == 1 ? spec_model : spec_model->Rebatched(batch);
    auto base_b = batch == 1 ? base_model : base_model->Rebatched(batch);
    ExpectBitwiseEqual(RunModelOnce(spec_b, {{"data", input}}),
                       RunModelOnce(base_b, {{"data", input}}),
                       "dense chain batch " + std::to_string(batch));
  }
}

}  // namespace
}  // namespace tvmcpp
