// Three-tier differential suite for the AOT C backend (ISSUE 8): every workload
// below runs on the reference interpreter, the bytecode VM, and the dlopen'd
// native kernel, and all three buffers must be *bitwise* identical — under
// TVMCPP_VM_STRICT=1 so any silent engine downgrade fails loudly. Cache tests pin
// the module-cache contract: a second identical compile is a memory hit, a cleared
// registry falls back to the disk artifact, and a corrupt disk entry recompiles in
// place instead of crashing.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/codegen/codegen.h"
#include "src/codegen/native.h"
#include "src/frontend/models.h"
#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/lower/lower.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/schedule/schedule.h"
#include "src/support/float16.h"
#include "src/support/random.h"
#include "src/topi/nn.h"
#include "src/topi/schedules.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

struct ScopedStrictMode {
  bool saved;
  ScopedStrictMode() : saved(vm::StrictMode()) { vm::SetStrictMode(true); }
  ~ScopedStrictMode() { vm::SetStrictMode(saved); }
};

struct ScopedEngine {
  ExecEngine saved;
  explicit ScopedEngine(ExecEngine e) : saved(GetExecEngine()) { SetExecEngine(e); }
  ~ScopedEngine() { SetExecEngine(saved); }
};

// Points TVMCPP_NATIVE_CACHE at a fresh directory for the test's lifetime, so
// cache assertions never see artifacts from other tests or earlier runs.
struct ScopedCacheDir {
  std::string dir;
  std::string saved;
  bool had = false;
  ScopedCacheDir() {
    char tmpl[] = "/tmp/tvmcpp-codegen-test-XXXXXX";
    char* made = mkdtemp(tmpl);
    CHECK(made != nullptr) << "mkdtemp failed";
    dir = made;
    if (const char* old = std::getenv("TVMCPP_NATIVE_CACHE")) {
      had = true;
      saved = old;
    }
    setenv("TVMCPP_NATIVE_CACHE", dir.c_str(), 1);
  }
  ~ScopedCacheDir() {
    if (had) {
      setenv("TVMCPP_NATIVE_CACHE", saved.c_str(), 1);
    } else {
      unsetenv("TVMCPP_NATIVE_CACHE");
    }
    std::system(("rm -rf '" + dir + "'").c_str());
  }
};

struct ArgBuf {
  std::vector<char> bytes;
  DataType dtype;
  int64_t num_elements = 0;

  static ArgBuf Make(int64_t elems, DataType dtype, uint64_t seed) {
    ArgBuf a;
    a.dtype = dtype;
    a.num_elements = elems;
    a.bytes.assign(static_cast<size_t>(elems * InterpElementBytes(dtype)), 0);
    Rng rng(seed);
    if (dtype.is_float()) {
      float* p = reinterpret_cast<float*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<float>(rng.UniformReal() * 2.0 - 1.0);
      }
      if (dtype.bits() == 16) {
        for (int64_t i = 0; i < elems; ++i) {
          p[i] = QuantizeFloat16(p[i]);
        }
      }
    } else if (InterpElementBytes(dtype) == 1) {
      int8_t* p = reinterpret_cast<int8_t*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<int8_t>(static_cast<int64_t>(rng.Uniform(11)) - 5);
      }
    } else if (InterpElementBytes(dtype) == 8) {
      int64_t* p = reinterpret_cast<int64_t*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<int64_t>(rng.Uniform(100));
      }
    } else {
      int32_t* p = reinterpret_cast<int32_t*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<int32_t>(rng.Uniform(100));
      }
    }
    return a;
  }

  BufferBinding Bind() { return BufferBinding{bytes.data(), dtype, num_elements}; }
};

int64_t NumElems(const Tensor& t) {
  int64_t n = 1;
  for (const Expr& e : t.shape()) {
    n *= get_const_int(e);
  }
  return n;
}

std::vector<ArgBuf> MakeArgs(const std::vector<Tensor>& tensors, uint64_t seed) {
  std::vector<ArgBuf> args;
  for (size_t i = 0; i < tensors.size(); ++i) {
    args.push_back(ArgBuf::Make(NumElems(tensors[i]), tensors[i].dtype(), seed + i * 131));
  }
  return args;
}

// Three-way differential: interpreter (oracle), VM, and the AOT native kernel —
// all bitwise identical on every buffer.
void ExpectThreeTierIdentical(const LoweredFunc& f, const std::vector<ArgBuf>& args,
                              const LoopSpecializeOptions& spec =
                                  LoopSpecializeOptions{}) {
  ScopedStrictMode strict;
  std::shared_ptr<const vm::Program> prog = vm::CompileToProgram(f, spec);
  ASSERT_NE(prog, nullptr) << "VM failed to compile " << f.name;
  codegen::NativeKernel native = codegen::CompileNativeKernel(f, spec);
  ASSERT_TRUE(static_cast<bool>(native))
      << "native tier failed to compile " << f.name << ":\n" << ToString(f.body);
  std::vector<ArgBuf> interp_bufs = args;
  std::vector<ArgBuf> vm_bufs = args;
  std::vector<ArgBuf> native_bufs = args;
  std::vector<BufferBinding> interp_bind, vm_bind, native_bind;
  for (size_t i = 0; i < args.size(); ++i) {
    interp_bind.push_back(interp_bufs[i].Bind());
    vm_bind.push_back(vm_bufs[i].Bind());
    native_bind.push_back(native_bufs[i].Bind());
  }
  RunLoweredInterp(f, interp_bind);
  vm::ExecOptions serial;
  serial.num_threads = 1;
  vm::Run(*prog, vm_bind, serial);
  codegen::RunNativeKernel(native, native_bind);
  for (size_t i = 0; i < args.size(); ++i) {
    EXPECT_EQ(std::memcmp(interp_bufs[i].bytes.data(), vm_bufs[i].bytes.data(),
                          interp_bufs[i].bytes.size()),
              0)
        << f.name << ": buffer " << i << " differs between interp and VM";
    EXPECT_EQ(std::memcmp(interp_bufs[i].bytes.data(), native_bufs[i].bytes.data(),
                          interp_bufs[i].bytes.size()),
              0)
        << f.name << ": buffer " << i << " differs between interp and native";
  }
}

LoweredFunc BuildDense(DataType dtype, int vectorize, int parallel,
                       std::vector<Tensor>* tensors, const std::string& name) {
  topi::OpWorkload wl;
  wl.kind = "dense";
  wl.n = 5;
  wl.k = 32;
  wl.oc = 24;
  wl.dtype = dtype;
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  Target cpu = Target::ArmA53();
  topi::Config config = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  config["parallel"] = parallel;
  config["vectorize"] = vectorize;
  Schedule s = topi::ApplyOpSchedule(wl, cpu, built, config);
  *tensors = built.Args();
  return Lower(s, built.Args(), name);
}

LoweredFunc BuildConvRelu3x3(DataType dtype, std::vector<Tensor>* tensors,
                             const std::string& name) {
  topi::OpWorkload wl;
  wl.kind = "conv2d";
  wl.n = 1;
  wl.ic = 4;
  wl.h = wl.w = 10;
  wl.oc = 8;
  wl.k = 3;
  wl.stride = 1;
  wl.pad = 1;
  wl.dtype = dtype;
  Tensor data = placeholder(
      {make_int(wl.n), make_int(wl.ic), make_int(wl.h), make_int(wl.w)}, dtype, "data");
  Tensor kern = placeholder(
      {make_int(wl.oc), make_int(wl.ic), make_int(wl.k), make_int(wl.k)}, dtype, "kern");
  Tensor conv = topi::Conv2dNCHW(data, kern, wl.stride, wl.pad);
  Tensor out = topi::Relu(conv);
  Target cpu = Target::ArmA53();
  topi::Config config = topi::DefaultConfig(topi::GetScheduleSpace(wl, cpu));
  config["parallel"] = 0;
  Schedule s = topi::ScheduleFusedGroup(cpu, {out}, conv, config, &wl);
  *tensors = {data, kern, out};
  return Lower(s, {data, kern, out}, name);
}

// ---------------------------------------------------------------------------
// Kernel-level differential suites
// ---------------------------------------------------------------------------

TEST(CodegenDiff, DenseF32Scalar) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Float32(), 0, 0, &t, "cg_dense_f32");
  ExpectThreeTierIdentical(f, MakeArgs(t, 7));
}

TEST(CodegenDiff, DenseF32Vectorized) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Float32(), 1, 0, &t, "cg_dense_f32_vec");
  ExpectThreeTierIdentical(f, MakeArgs(t, 11));
}

TEST(CodegenDiff, DenseF32Parallel) {
  // kParallel loops run serially in the emitted C (same order as the interpreter);
  // the VM comparison runs with num_threads=1 so all three tiers share one order.
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Float32(), 0, 1, &t, "cg_dense_f32_par");
  ExpectThreeTierIdentical(f, MakeArgs(t, 13));
}

TEST(CodegenDiff, DenseF16) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Float16(), 0, 0, &t, "cg_dense_f16");
  ExpectThreeTierIdentical(f, MakeArgs(t, 17));
}

TEST(CodegenDiff, DenseI8) {
  // int8 accumulate wraps through the interpreter's cast rule on every store;
  // the emitted tn_wrap must match it bit for bit.
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Int8(), 0, 0, &t, "cg_dense_i8");
  ExpectThreeTierIdentical(f, MakeArgs(t, 19));
}

TEST(CodegenDiff, ConvRelu3x3F32) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildConvRelu3x3(DataType::Float32(), &t, "cg_conv_f32");
  ExpectThreeTierIdentical(f, MakeArgs(t, 23));
}

TEST(CodegenDiff, ConvRelu3x3F16) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildConvRelu3x3(DataType::Float16(), &t, "cg_conv_f16");
  ExpectThreeTierIdentical(f, MakeArgs(t, 29));
}

TEST(CodegenDiff, ConvRelu3x3I8) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildConvRelu3x3(DataType::Int8(), &t, "cg_conv_i8");
  ExpectThreeTierIdentical(f, MakeArgs(t, 31));
}

TEST(CodegenDiff, VectorizedPredicatedTail) {
  // n = 10 split by 8: the vectorized inner loop carries a predicated tail, so
  // masked lanes must stay unevaluated in the emitted C exactly as in the
  // interpreter (the guarded division would trap on lane garbage otherwise).
  const int n = 10;
  Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(n)}, DataType::Float32(), "B");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       Expr a = A({i[0]});
                       Expr b = B({i[0]});
                       return a * b + max(a, b) * make_float(0.5);
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage st = (*s)[C];
  IterVar o, i;
  st->split(st->leaf_iter_vars[0], 8, &o, &i);
  st->vectorize(i);
  LoweredFunc f = Lower(s, {A, B, C}, "cg_vec_tail");
  ExpectThreeTierIdentical(f, MakeArgs({A, B, C}, 37));
}

TEST(CodegenDiff, UnspecializedPipelineMatchesToo) {
  // The emitter runs the same preprocessing pipeline as the VM, including when
  // specialization is disabled — both configurations must stay on the oracle.
  std::vector<Tensor> t;
  LoweredFunc f = BuildConvRelu3x3(DataType::Float32(), &t, "cg_conv_nospec");
  ExpectThreeTierIdentical(f, MakeArgs(t, 41), LoopSpecializeOptions::Disabled());
}

TEST(CodegenDiff, VmUnsupportedVectorLetRunsNative) {
  // A vector-valued let is outside the VM's vector compiler but inside both the
  // interpreter and the C emitter (which threads the lane through the let body):
  // tier 2 covers strictly more than tier 1 here, so the native engine serves it
  // with zero counted fallbacks.
  const int n = 8;
  Var a = make_var("A", DataType::Handle());
  Var c = make_var("C", DataType::Handle());
  Var x = make_var("x", DataType::Float32());
  Expr vec_load = load(DataType::Float32(4), a, ramp(make_int(0), make_int(1), 4));
  Expr body = let(x, vec_load, Expr(x) + Expr(x));
  LoweredFunc f;
  f.name = "cg_vector_let";
  f.args = {BufferArg{a, DataType::Float32(), {n}, "A"},
            BufferArg{c, DataType::Float32(), {n}, "C"}};
  f.body = store(c, body, ramp(make_int(0), make_int(1), 4));
  ASSERT_EQ(vm::CompileToProgram(f), nullptr) << "VM grew vector-let support; "
                                                 "pick another VM-unsupported construct";

  codegen::NativeKernel native =
      codegen::CompileNativeKernel(f, LoopSpecializeOptions{});
  ASSERT_TRUE(static_cast<bool>(native)) << "native tier must emit vector lets";
  std::vector<ArgBuf> interp_bufs = {ArgBuf::Make(n, DataType::Float32(), 43),
                                     ArgBuf::Make(n, DataType::Float32(), 44)};
  std::vector<ArgBuf> native_bufs = interp_bufs;
  std::vector<BufferBinding> interp_bind, native_bind;
  for (size_t i = 0; i < interp_bufs.size(); ++i) {
    interp_bind.push_back(interp_bufs[i].Bind());
    native_bind.push_back(native_bufs[i].Bind());
  }
  RunLoweredInterp(f, interp_bind);
  codegen::RunNativeKernel(native, native_bind);
  EXPECT_EQ(std::memcmp(interp_bufs[1].bytes.data(), native_bufs[1].bytes.data(),
                        interp_bufs[1].bytes.size()),
            0);

  // End-to-end: the native engine dispatches it without touching the VM tier.
  ScopedStrictMode strict;
  ScopedEngine engine(ExecEngine::kNative);
  vm::ResetFallbackCount();
  std::vector<ArgBuf> e2e = interp_bufs;
  std::vector<BufferBinding> e2e_bind;
  for (ArgBuf& b : e2e) {
    e2e_bind.push_back(b.Bind());
  }
  RunLowered(f, e2e_bind);
  EXPECT_EQ(vm::FallbackCount(), 0);
  EXPECT_EQ(std::memcmp(interp_bufs[1].bytes.data(), e2e[1].bytes.data(),
                        interp_bufs[1].bytes.size()),
            0);
}

// ---------------------------------------------------------------------------
// Graph-level: whole models under the native engine, including Rebatched(N)
// ---------------------------------------------------------------------------

NDArray RunModelOnce(const std::shared_ptr<const graph::CompiledGraph>& model,
                     const std::vector<std::pair<std::string, NDArray>>& inputs) {
  graph::RunContext ctx(model);
  for (const auto& kv : inputs) {
    ctx.SetInput(kv.first, kv.second);
  }
  vm::ExecOptions serial;
  serial.num_threads = 1;
  model->Run(&ctx, serial);
  return ctx.GetOutput(0).Copy();
}

void ExpectBitwiseEqual(const NDArray& a, const NDArray& b, const std::string& what) {
  ASSERT_EQ(a.NumElements(), b.NumElements()) << what;
  EXPECT_EQ(std::memcmp(a.Data<char>(), b.Data<char>(),
                        static_cast<size_t>(a.ByteSize())),
            0)
      << what << ": outputs differ";
}

TEST(CodegenGraph, LstmNativeBitwiseIdenticalAndRebatched) {
  // The frontend LSTM LM compiled while the native engine is selected (so every
  // fused kernel gets an AOT module), run natively and on the interpreter engine
  // against the same compiled model. Strict: no kernel may silently fall back.
  ScopedStrictMode strict;
  ScopedEngine engine(ExecEngine::kNative);
  vm::ResetFallbackCount();
  Target cpu = Target::ArmA53();
  frontend::Model m = frontend::LstmLanguageModel(2, 8, 1);
  auto model = frontend::CompileModel(m, cpu, graph::CompileOptions{});
  auto lstm_inputs = [&](int batch, uint64_t seed) {
    std::vector<int64_t> shape = m.input_shape;
    shape[0] *= batch;
    return std::vector<std::pair<std::string, NDArray>>{
        {"data", NDArray::Random(shape, DataType::Float32(), seed)},
        {"h0", NDArray::Random(shape, DataType::Float32(), seed + 1)},
        {"c0", NDArray::Random(shape, DataType::Float32(), seed + 2)}};
  };
  auto batch1 = lstm_inputs(1, 47);
  NDArray native_out = RunModelOnce(model, batch1);
  NDArray interp_out;
  {
    ScopedEngine oracle(ExecEngine::kInterp);
    interp_out = RunModelOnce(model, batch1);
  }
  ExpectBitwiseEqual(native_out, interp_out, "lstm batch-1 native vs interp");

  const int batch = 3;
  auto rebatched = model->Rebatched(batch);
  auto batch3 = lstm_inputs(batch, 53);
  NDArray native_b = RunModelOnce(rebatched, batch3);
  NDArray interp_b;
  {
    ScopedEngine oracle(ExecEngine::kInterp);
    interp_b = RunModelOnce(rebatched, batch3);
  }
  ExpectBitwiseEqual(native_b, interp_b, "lstm batch-3 native vs interp");
  EXPECT_EQ(vm::FallbackCount(), 0) << "a fused LSTM kernel fell off the native tier";
}

TEST(CodegenGraph, DenseChainNativeRebatched) {
  ScopedStrictMode strict;
  ScopedEngine engine(ExecEngine::kNative);
  vm::ResetFallbackCount();
  graph::Graph g;
  int x = g.AddInput("data", {1, 8});
  for (int l = 0; l < 3; ++l) {
    int w = g.AddConst("w" + std::to_string(l), {8, 8});
    x = g.AddOp("dense", "d" + std::to_string(l), {x, w});
    x = g.AddOp("relu", "r" + std::to_string(l), {x});
  }
  g.outputs = {x};
  auto model = std::make_shared<graph::CompiledGraph>(std::move(g), Target::ArmA53(),
                                                      graph::CompileOptions{});
  for (int l = 0; l < 3; ++l) {
    model->SetParam("w" + std::to_string(l),
                    NDArray::Random({8, 8}, DataType::Float32(),
                                    static_cast<uint64_t>(60 + l)));
  }
  for (int batch : {1, 2, 4}) {
    NDArray input = NDArray::Random({batch, 8}, DataType::Float32(),
                                    static_cast<uint64_t>(70 + batch));
    auto b = batch == 1 ? model : model->Rebatched(batch);
    NDArray native_out = RunModelOnce(b, {{"data", input}});
    NDArray interp_out;
    {
      ScopedEngine oracle(ExecEngine::kInterp);
      interp_out = RunModelOnce(b, {{"data", input}});
    }
    ExpectBitwiseEqual(native_out, interp_out,
                       "dense chain batch " + std::to_string(batch));
  }
  EXPECT_EQ(vm::FallbackCount(), 0);
}

// ---------------------------------------------------------------------------
// Module cache behavior
// ---------------------------------------------------------------------------

TEST(CodegenCache, SecondCompileHitsMemoryThenDisk) {
  ScopedCacheDir cache;
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Float32(), 0, 0, &t, "cg_cache_dense");
  codegen::ResetNativeStats();
  codegen::NativeKernel first =
      codegen::CompileNativeKernel(f, LoopSpecializeOptions{});
  ASSERT_TRUE(static_cast<bool>(first));
  codegen::NativeStats s1 = codegen::GetNativeStats();
  EXPECT_EQ(s1.compiles, 1);
  EXPECT_EQ(s1.mem_hits, 0);

  // Identical source: the in-process registry answers, no compiler run.
  codegen::NativeKernel second =
      codegen::CompileNativeKernel(f, LoopSpecializeOptions{});
  ASSERT_TRUE(static_cast<bool>(second));
  codegen::NativeStats s2 = codegen::GetNativeStats();
  EXPECT_EQ(s2.compiles, 1);
  EXPECT_EQ(s2.mem_hits, 1);
  EXPECT_EQ(second.module->path(), first.module->path());

  // Registry dropped: the on-disk artifact answers, still no compiler run.
  codegen::ClearNativeModuleRegistryForTesting();
  codegen::NativeKernel third =
      codegen::CompileNativeKernel(f, LoopSpecializeOptions{});
  ASSERT_TRUE(static_cast<bool>(third));
  codegen::NativeStats s3 = codegen::GetNativeStats();
  EXPECT_EQ(s3.compiles, 1);
  EXPECT_EQ(s3.disk_hits, 1);

  // All three kernels actually run.
  std::vector<ArgBuf> a = MakeArgs(t, 59);
  std::vector<ArgBuf> b = MakeArgs(t, 59);
  std::vector<BufferBinding> ab, bb;
  for (size_t i = 0; i < a.size(); ++i) {
    ab.push_back(a[i].Bind());
    bb.push_back(b[i].Bind());
  }
  codegen::RunNativeKernel(first, ab);
  codegen::RunNativeKernel(third, bb);
  EXPECT_EQ(std::memcmp(a.back().bytes.data(), b.back().bytes.data(),
                        a.back().bytes.size()),
            0);
}

TEST(CodegenCache, CorruptDiskEntryRecompilesNotCrashes) {
  ScopedCacheDir cache;
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Float32(), 0, 0, &t, "cg_cache_corrupt");
  codegen::ResetNativeStats();

  // Compile, run, and record the result — then release every reference so the
  // module is actually dlclose'd (while it stays loaded, dlopen of the same path
  // returns the live mapping and never reads the corrupt bytes on disk).
  std::vector<ArgBuf> a = MakeArgs(t, 61);
  std::string so_path;
  {
    codegen::NativeKernel first =
        codegen::CompileNativeKernel(f, LoopSpecializeOptions{});
    ASSERT_TRUE(static_cast<bool>(first));
    so_path = first.module->path();
    ASSERT_NE(so_path.find(cache.dir), std::string::npos)
        << "artifact must live in TVMCPP_NATIVE_CACHE: " << so_path;
    std::vector<BufferBinding> ab;
    for (ArgBuf& buf : a) {
      ab.push_back(buf.Bind());
    }
    codegen::RunNativeKernel(first, ab);
    codegen::ClearNativeModuleRegistryForTesting();
  }

  // Replace the (now unloaded) artifact with garbage: the stale entry must be
  // detected at dlopen and recompiled in place — never a crash, never served.
  {
    std::string tmp = so_path + ".corrupt";
    std::ofstream corrupt(tmp, std::ios::binary | std::ios::trunc);
    corrupt << "not an ELF object";
    corrupt.close();
    ASSERT_EQ(std::rename(tmp.c_str(), so_path.c_str()), 0);
  }
  codegen::NativeKernel again =
      codegen::CompileNativeKernel(f, LoopSpecializeOptions{});
  ASSERT_TRUE(static_cast<bool>(again)) << "corrupt cache entry must recompile";
  codegen::NativeStats s = codegen::GetNativeStats();
  EXPECT_EQ(s.compiles, 2) << "recompile must actually run the compiler";
  EXPECT_EQ(s.disk_hits, 0);

  // The recompiled kernel computes the same result as the original run.
  std::vector<ArgBuf> b = MakeArgs(t, 61);
  std::vector<BufferBinding> bb;
  for (ArgBuf& buf : b) {
    bb.push_back(buf.Bind());
  }
  codegen::RunNativeKernel(again, bb);
  EXPECT_EQ(std::memcmp(a.back().bytes.data(), b.back().bytes.data(),
                        a.back().bytes.size()),
            0);
}

TEST(CodegenCache, BatchedKernelsShareOneModule) {
  ScopedCacheDir cache;
  std::vector<Tensor> t1, t2;
  LoweredFunc f1 = BuildDense(DataType::Float32(), 0, 0, &t1, "cg_batch_a");
  LoweredFunc f2 = BuildDense(DataType::Float16(), 0, 0, &t2, "cg_batch_b");
  codegen::ResetNativeStats();
  std::vector<codegen::NativeKernel> kernels = codegen::CompileNativeKernels(
      {&f1, &f2}, LoopSpecializeOptions{});
  ASSERT_EQ(kernels.size(), 2u);
  ASSERT_TRUE(static_cast<bool>(kernels[0]));
  ASSERT_TRUE(static_cast<bool>(kernels[1]));
  EXPECT_EQ(kernels[0].module.get(), kernels[1].module.get())
      << "a batch must compile into one translation unit / one module";
  EXPECT_EQ(codegen::GetNativeStats().compiles, 1);
}

// ---------------------------------------------------------------------------
// Fallback ladder: native compile failure downgrades loudly
// ---------------------------------------------------------------------------

TEST(CodegenFallback, CompilerFailureFallsDownTierCounted) {
  // Point the native tier at a compiler that always fails: the emitted source is
  // fine, compilation is not, so the native engine must count one downgrade and
  // serve the request from the VM tier — and hard-error under strict mode.
  ScopedCacheDir cache;
  setenv("TVMCPP_NATIVE_CC", "/bin/false", 1);
  ScopedEngine engine(ExecEngine::kNative);
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Float32(), 0, 0, &t, "cg_cc_broken");
  std::vector<ArgBuf> args = MakeArgs(t, 67);
  std::vector<ArgBuf> oracle = args;
  std::vector<BufferBinding> bind, oracle_bind;
  for (size_t i = 0; i < args.size(); ++i) {
    bind.push_back(args[i].Bind());
    oracle_bind.push_back(oracle[i].Bind());
  }
  bool saved_strict = vm::StrictMode();
  vm::SetStrictMode(false);
  vm::ResetFallbackCount();
  RunLowered(f, bind);  // native -> VM downgrade, counted but served
  EXPECT_EQ(vm::FallbackCount(), 1);
  RunLoweredInterp(f, oracle_bind);
  EXPECT_EQ(std::memcmp(args.back().bytes.data(), oracle.back().bytes.data(),
                        args.back().bytes.size()),
            0)
      << "the VM tier that served the downgrade must still match the oracle";

  // Under strict mode the same downgrade is fatal (a fresh function name keeps
  // the negative-result cache from short-circuiting differently).
  vm::SetStrictMode(true);
  std::vector<Tensor> t2;
  LoweredFunc f2 = BuildDense(DataType::Float32(), 0, 0, &t2, "cg_cc_broken2");
  std::vector<ArgBuf> args2 = MakeArgs(t2, 71);
  std::vector<BufferBinding> bind2;
  for (ArgBuf& b : args2) {
    bind2.push_back(b.Bind());
  }
  EXPECT_THROW(RunLowered(f2, bind2), InternalError);
  vm::SetStrictMode(saved_strict);
  unsetenv("TVMCPP_NATIVE_CC");
}

// ---------------------------------------------------------------------------
// Emitter unit checks
// ---------------------------------------------------------------------------

TEST(CodegenUnit, SymbolsAreContentAddressedAndStable) {
  std::vector<Tensor> t;
  LoweredFunc f = BuildDense(DataType::Float32(), 0, 0, &t, "cg_sym");
  codegen::CSource a = codegen::EmitC(f, LoopSpecializeOptions{});
  codegen::CSource b = codegen::EmitC(f, LoopSpecializeOptions{});
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.symbol, b.symbol) << "same TIR must hash to the same symbol";
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.symbol.rfind("tn_", 0), 0u);
  // Different specialization config changes the preprocessed TIR and the symbol.
  codegen::CSource c = codegen::EmitC(f, LoopSpecializeOptions::Disabled());
  ASSERT_TRUE(c.ok);
  EXPECT_NE(a.symbol, c.symbol);
}

TEST(CodegenUnit, UnsupportedConstructReportsNotOk) {
  // An unknown intrinsic is outside every compiled tier; EmitC must report it
  // (with the construct named) rather than emit wrong code.
  Var c = make_var("C", DataType::Handle());
  LoweredFunc f;
  f.name = "cg_unknown_intrin";
  f.args = {BufferArg{c, DataType::Float32(), {4}, "C"}};
  f.body = store(c, call_pure(DataType::Float32(), "mystery_op", {make_float(1.0)}),
                 make_int(0));
  codegen::CSource src = codegen::EmitC(f, LoopSpecializeOptions{});
  EXPECT_FALSE(src.ok);
  EXPECT_FALSE(src.error.empty());
}

}  // namespace
}  // namespace tvmcpp
