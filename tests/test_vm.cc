// Differential tests for the bytecode VM (src/vm): every lowered function must produce
// bitwise-identical output buffers under the VM and the tree-walking reference
// interpreter, including under parallel-for chunking.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/interp/interp.h"
#include "src/ir/printer.h"
#include "src/lower/lower.h"
#include "src/schedule/schedule.h"
#include "src/support/float16.h"
#include "src/support/random.h"
#include "src/te/tensor.h"
#include "src/topi/nn.h"
#include "src/topi/schedules.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

// A host buffer with its own storage, cloneable so both engines run on equal inputs.
struct ArgBuf {
  std::vector<char> bytes;
  DataType dtype;
  int64_t num_elements = 0;

  static ArgBuf Make(int64_t elems, DataType dtype, uint64_t seed) {
    ArgBuf a;
    a.dtype = dtype;
    a.num_elements = elems;
    a.bytes.assign(static_cast<size_t>(elems * InterpElementBytes(dtype)), 0);
    Rng rng(seed);
    if (dtype.is_float()) {
      float* p = reinterpret_cast<float*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<float>(rng.UniformReal() * 2.0 - 1.0);
      }
      if (dtype.bits() == 16) {
        for (int64_t i = 0; i < elems; ++i) {
          p[i] = QuantizeFloat16(p[i]);
        }
      }
    } else if (InterpElementBytes(dtype) == 1) {
      int8_t* p = reinterpret_cast<int8_t*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<int8_t>(rng.Uniform(128)) - 64;
      }
    } else {
      int32_t* p = reinterpret_cast<int32_t*>(a.bytes.data());
      for (int64_t i = 0; i < elems; ++i) {
        p[i] = static_cast<int32_t>(rng.Uniform(100));
      }
    }
    return a;
  }

  BufferBinding Bind() { return BufferBinding{bytes.data(), dtype, num_elements}; }
};

int64_t NumElems(const Tensor& t) {
  int64_t n = 1;
  for (const Expr& e : t.shape()) {
    n *= get_const_int(e);
  }
  return n;
}

std::vector<ArgBuf> MakeArgs(const std::vector<Tensor>& tensors, uint64_t seed) {
  std::vector<ArgBuf> args;
  for (size_t i = 0; i < tensors.size(); ++i) {
    args.push_back(ArgBuf::Make(NumElems(tensors[i]), tensors[i].dtype(), seed + i * 131));
  }
  return args;
}

// Runs `f` on the interpreter and on the VM (with `vm_threads` parallel-for workers)
// over identical input copies and asserts every buffer is bitwise identical.
void ExpectEnginesIdentical(const LoweredFunc& f, const std::vector<ArgBuf>& args,
                            int vm_threads = 1) {
  std::shared_ptr<const vm::Program> prog = vm::CompileToProgram(f);
  ASSERT_NE(prog, nullptr) << "VM failed to compile " << f.name << ":\n"
                           << ToString(f.body);
  std::vector<ArgBuf> interp_bufs = args;
  std::vector<ArgBuf> vm_bufs = args;
  std::vector<BufferBinding> interp_bind, vm_bind;
  for (size_t i = 0; i < args.size(); ++i) {
    interp_bind.push_back(interp_bufs[i].Bind());
    vm_bind.push_back(vm_bufs[i].Bind());
  }
  RunLoweredInterp(f, interp_bind);
  vm::ExecOptions opts;
  opts.num_threads = vm_threads;
  vm::Run(*prog, vm_bind, opts);
  for (size_t i = 0; i < args.size(); ++i) {
    ASSERT_EQ(interp_bufs[i].bytes.size(), vm_bufs[i].bytes.size());
    EXPECT_EQ(std::memcmp(interp_bufs[i].bytes.data(), vm_bufs[i].bytes.data(),
                          interp_bufs[i].bytes.size()),
              0)
        << f.name << ": buffer " << i << " differs between engines (threads="
        << vm_threads << ")";
  }
}

topi::OpWorkload ConvWorkload(int n, int ic, int h, int oc, int k, int stride, int pad) {
  topi::OpWorkload wl;
  wl.kind = "conv2d";
  wl.n = n;
  wl.ic = ic;
  wl.h = h;
  wl.w = h;
  wl.oc = oc;
  wl.k = k;
  wl.stride = stride;
  wl.pad = pad;
  return wl;
}

// --- master-op templates across randomized schedule configs -------------------------

TEST(VmDiff, Conv2dAcrossConfigs) {
  Target cpu = Target::ArmA53();
  topi::OpWorkload wl = ConvWorkload(1, 4, 10, 8, 3, 1, 1);
  topi::ConfigSpace space = topi::GetScheduleSpace(wl, cpu);
  Rng rng(2024);
  std::vector<int64_t> indices = {space.IndexOf(topi::DefaultConfig(space))};
  for (int i = 0; i < 6; ++i) {
    indices.push_back(static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(space.size()))));
  }
  for (int64_t idx : indices) {
    topi::BuiltOp built = topi::BuildOpCompute(wl);
    Schedule s = topi::ApplyOpSchedule(wl, cpu, built, space.At(idx));
    LoweredFunc f = Lower(s, built.Args(), "conv_cfg_" + std::to_string(idx));
    ExpectEnginesIdentical(f, MakeArgs(built.Args(), 7 + static_cast<uint64_t>(idx)));
  }
}

TEST(VmDiff, DenseAcrossConfigs) {
  Target cpu = Target::ArmA53();
  topi::OpWorkload wl;
  wl.kind = "dense";
  wl.n = 6;
  wl.k = 32;
  wl.oc = 24;
  topi::ConfigSpace space = topi::GetScheduleSpace(wl, cpu);
  Rng rng(77);
  for (int i = 0; i < 6; ++i) {
    int64_t idx = static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(space.size())));
    topi::BuiltOp built = topi::BuildOpCompute(wl);
    Schedule s = topi::ApplyOpSchedule(wl, cpu, built, space.At(idx));
    LoweredFunc f = Lower(s, built.Args(), "dense_cfg_" + std::to_string(idx));
    ExpectEnginesIdentical(f, MakeArgs(built.Args(), 100 + static_cast<uint64_t>(idx)));
  }
}

TEST(VmDiff, DepthwiseConv2d) {
  Target cpu = Target::ArmA53();
  topi::OpWorkload wl = ConvWorkload(1, 8, 12, 8, 3, 1, 1);
  wl.kind = "depthwise_conv2d";
  topi::BuiltOp built = topi::BuildOpCompute(wl);
  topi::ConfigSpace space = topi::GetScheduleSpace(wl, cpu);
  Schedule s = topi::ApplyOpSchedule(wl, cpu, built, topi::DefaultConfig(space));
  LoweredFunc f = Lower(s, built.Args(), "depthwise");
  ExpectEnginesIdentical(f, MakeArgs(built.Args(), 55));
}

// --- fused conv + injective epilogue (the paper's complex-out-fusable pattern) ------

LoweredFunc BuildConvReluFused(const topi::OpWorkload& wl, std::vector<Tensor>* args,
                               const topi::Config& config) {
  Tensor data = placeholder({make_int(wl.n), make_int(wl.ic), make_int(wl.h),
                             make_int(wl.w)},
                            DataType::Float32(), "data");
  Tensor kern = placeholder({make_int(wl.oc), make_int(wl.ic), make_int(wl.k),
                             make_int(wl.k)},
                            DataType::Float32(), "kern");
  Tensor conv = topi::Conv2dNCHW(data, kern, wl.stride, wl.pad);
  Tensor out = topi::Relu(conv);
  Schedule s = topi::ScheduleFusedGroup(Target::ArmA53(), {out}, conv, config, &wl);
  *args = {data, kern, out};
  return Lower(s, *args, "conv_relu_fused");
}

TEST(VmDiff, Conv2dFusedEpilogue) {
  topi::OpWorkload wl = ConvWorkload(1, 4, 12, 8, 3, 1, 1);
  topi::ConfigSpace space = topi::GetScheduleSpace(wl, Target::ArmA53());
  std::vector<Tensor> args;
  LoweredFunc f = BuildConvReluFused(wl, &args, topi::DefaultConfig(space));
  ExpectEnginesIdentical(f, MakeArgs(args, 91));
}

// --- randomized injective epilogues over the scalar intrinsics ----------------------

TEST(VmDiff, RandomizedInjectiveChains) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed * 7919 + 13);
    const int n = 48 + static_cast<int>(rng.Uniform(32));
    Tensor A = placeholder({make_int(n)}, DataType::Float32(), "A");
    Tensor B = placeholder({make_int(n)}, DataType::Float32(), "B");
    Tensor C = compute(
        {make_int(n)},
        [&](const std::vector<Var>& i) {
          Expr x = A({i[0]});
          Expr y = B({i[0]});
          Expr e = x;
          int steps = 2 + static_cast<int>(rng.Uniform(5));
          for (int s = 0; s < steps; ++s) {
            switch (rng.Uniform(9)) {
              case 0: e = e + y; break;
              case 1: e = e * y; break;
              case 2: e = e - y; break;
              case 3: e = max(e, y); break;
              case 4: e = min(e, y); break;
              case 5: e = tanh(e); break;
              case 6: e = sigmoid(e); break;
              case 7: e = exp(min(e, make_float(2.0))); break;
              default:
                e = if_then_else(gt(e, make_float(0.0)), e + make_float(1.0),
                                 y * make_float(0.5));
                break;
            }
          }
          return e;
        },
        "C");
    Schedule s = create_schedule({C});
    Stage st = (*s)[C];
    IterVar o, i;
    st->split(st->leaf_iter_vars[0], 5 + static_cast<int64_t>(rng.Uniform(12)), &o, &i);
    LoweredFunc f = Lower(s, {A, B, C}, "chain_" + std::to_string(seed));
    ExpectEnginesIdentical(f, MakeArgs({A, B, C}, seed + 3000));
  }
}

// Regression: the branch-type pre-scan must see let-bound variables. With both arms
// of the Select reducing to a let-bound float var (no literal to give the type away),
// misclassifying the arms as int reads the stale .i register field and stores zeros.
TEST(VmDiff, LetInsideConditionalBranch) {
  const int n = 32;
  Var a = make_var("A", DataType::Handle());
  Var c = make_var("C", DataType::Handle());
  Var i = make_var("i");
  Var x = make_var("x", DataType::Float32());
  Var y = make_var("y", DataType::Float32());
  Expr av = load(DataType::Float32(), a, i);
  Expr tbranch = let(x, exp(av), x);
  Expr fbranch = let(y, tanh(av), y);
  Expr sel = select(gt(av, make_float(0.0)), tbranch, fbranch);
  LoweredFunc f;
  f.name = "let_in_branch";
  f.args = {BufferArg{a, DataType::Float32(), {n}, "A"},
            BufferArg{c, DataType::Float32(), {n}, "C"}};
  f.body = for_stmt(i, make_int(0), make_int(n), store(c, sel, i));
  std::vector<ArgBuf> args = {ArgBuf::Make(n, DataType::Float32(), 61),
                              ArgBuf::Make(n, DataType::Float32(), 62)};
  ExpectEnginesIdentical(f, args);
  // Sanity: the outputs must not be all zeros (which is what the stale .i read gives).
  std::vector<ArgBuf> run = args;
  std::vector<BufferBinding> bind;
  for (ArgBuf& b : run) {
    bind.push_back(b.Bind());
  }
  RunLoweredInterp(f, bind);
  const float* out = reinterpret_cast<const float*>(run[1].bytes.data());
  bool any_nonzero = false;
  for (int j = 0; j < n; ++j) {
    any_nonzero |= out[j] != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
}

// --- tensorized intrinsics ----------------------------------------------------------

TEST(VmDiff, TensorizedGemm) {
  const int m = 32, n = 24, k = 16;
  Tensor A = placeholder({make_int(m), make_int(k)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(k), make_int(n)}, DataType::Float32(), "B");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(k)), "rk");
  Tensor C = compute({make_int(m), make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({i[0], rk->var}) * B({rk->var, i[1]}), {rk});
                     },
                     "C");
  Schedule s = create_schedule({C});
  Stage sc = (*s)[C];
  IterVar yo, xo, yi, xi, ko, ki;
  sc->tile(sc->leaf_iter_vars[0], sc->leaf_iter_vars[1], 8, 8, &yo, &xo, &yi, &xi);
  sc->split(sc->leaf_iter_vars[4], 8, &ko, &ki);
  sc->reorder({yo, xo, ko, yi, xi, ki});

  Tensor w = placeholder({make_int(8), make_int(8)}, DataType::Float32(), "w");
  Tensor x = placeholder({make_int(8), make_int(8)}, DataType::Float32(), "x");
  IterVar k8 = reduce_axis(Range(make_int(0), make_int(8)), "k");
  Tensor y = compute({make_int(8), make_int(8)},
                     [&](const std::vector<Var>& i) {
                       return sum(w({i[0], k8->var}) * x({k8->var, i[1]}), {k8});
                     },
                     "gemm8x8");
  sc->tensorize(yi, decl_tensor_intrin(y, kGemmIntrin, kFillZeroIntrin, kGemmIntrin));

  LoweredFunc f = Lower(s, {A, B, C}, "mm_tensorized");
  ASSERT_NE(ToString(f.body).find(kGemmIntrin), std::string::npos);
  ExpectEnginesIdentical(f, MakeArgs({A, B, C}, 42));
}

// --- parallel-for execution ---------------------------------------------------------

TEST(VmParallel, DeterministicAcrossThreadCounts) {
  Target cpu = Target::ArmA53();
  topi::OpWorkload wl = ConvWorkload(1, 8, 16, 16, 3, 1, 1);
  topi::ConfigSpace space = topi::GetScheduleSpace(wl, cpu);
  topi::Config config = topi::DefaultConfig(space);
  config["parallel"] = 1;  // force a kParallel outer loop
  std::vector<Tensor> args;
  LoweredFunc f = BuildConvReluFused(wl, &args, config);
  std::shared_ptr<const vm::Program> prog = vm::CompileToProgram(f);
  ASSERT_NE(prog, nullptr);
  EXPECT_TRUE(vm::ProgramHasParallel(*prog)) << ToString(f.body);

  std::vector<ArgBuf> base = MakeArgs(args, 1234);
  // Interp result is the oracle; the VM must match it bitwise at every thread count.
  for (int threads : {1, 2, 4, 7}) {
    ExpectEnginesIdentical(f, base, threads);
  }
}

// Regression: a kParallel loop whose body writes scratch allocated *outside* the loop
// must not be chunked — workers would share the single scratch storage and race. The
// compiler demotes such loops to serial execution (still on the VM) and results stay
// identical to the interpreter at any thread count.
TEST(VmParallel, OuterScratchDemotesToSerial) {
  const int n = 64;
  Var a = make_var("A", DataType::Handle());
  Var c = make_var("C", DataType::Handle());
  Var scratch = make_var("scratch", DataType::Handle());
  Var i = make_var("i");
  Stmt body = seq({
      store(scratch, load(DataType::Float32(), a, i) * make_float(2.0), make_int(0)),
      store(c, load(DataType::Float32(), scratch, make_int(0)) + make_float(1.0), i),
  });
  Stmt loop = for_stmt(i, make_int(0), make_int(n), body, ForType::kParallel);
  LoweredFunc f;
  f.name = "outer_scratch";
  f.args = {BufferArg{a, DataType::Float32(), {n}, "A"},
            BufferArg{c, DataType::Float32(), {n}, "C"}};
  f.body = allocate(scratch, DataType::Float32(), {make_int(1)}, "global", loop);

  std::shared_ptr<const vm::Program> prog = vm::CompileToProgram(f);
  ASSERT_NE(prog, nullptr);
  EXPECT_FALSE(vm::ProgramHasParallel(*prog)) << "racy loop was parallelized";
  std::vector<ArgBuf> args = {ArgBuf::Make(n, DataType::Float32(), 71),
                              ArgBuf::Make(n, DataType::Float32(), 72)};
  for (int threads : {1, 4}) {
    ExpectEnginesIdentical(f, args, threads);
  }
}

// Regression: marking a reduction axis parallel (nothing in the schedule API forbids
// it) yields stores whose index ignores the loop var — chunked workers would
// read-modify-write the same elements. The compiler must demote the loop to serial.
TEST(VmParallel, ParallelReductionDemotesToSerial) {
  const int n = 128;
  Var a = make_var("A", DataType::Handle());
  Var c = make_var("C", DataType::Handle());
  Var rk = make_var("rk");
  Expr acc = load(DataType::Float32(), c, make_int(0)) + load(DataType::Float32(), a, rk);
  Stmt loop = for_stmt(rk, make_int(0), make_int(n), store(c, acc, make_int(0)),
                       ForType::kParallel);
  LoweredFunc f;
  f.name = "parallel_reduction";
  f.args = {BufferArg{a, DataType::Float32(), {n}, "A"},
            BufferArg{c, DataType::Float32(), {1}, "C"}};
  f.body = loop;
  std::shared_ptr<const vm::Program> prog = vm::CompileToProgram(f);
  ASSERT_NE(prog, nullptr);
  EXPECT_FALSE(vm::ProgramHasParallel(*prog)) << "racy reduction was parallelized";
  std::vector<ArgBuf> args = {ArgBuf::Make(n, DataType::Float32(), 81),
                              ArgBuf::Make(1, DataType::Float32(), 82)};
  for (int threads : {1, 4}) {
    ExpectEnginesIdentical(f, args, threads);
  }
}

// --- dtype coverage -----------------------------------------------------------------

TEST(VmDiff, Float16StoresQuantize) {
  const int n = 64;
  Tensor A = placeholder({make_int(n)}, DataType::Float16(), "A");
  Tensor B = placeholder({make_int(n)}, DataType::Float16(), "B");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return A({i[0]}) * B({i[0]}) + A({i[0]});
                     },
                     "C");
  Schedule s = create_schedule({C});
  LoweredFunc f = Lower(s, {A, B, C}, "f16_mad");
  std::vector<ArgBuf> args = MakeArgs({A, B, C}, 9);
  ExpectEnginesIdentical(f, args);

  // The interpreter (post half-rounding fix) must actually quantize: every produced
  // value must be representable in binary16.
  std::vector<ArgBuf> run = args;
  std::vector<BufferBinding> bind;
  for (ArgBuf& a : run) {
    bind.push_back(a.Bind());
  }
  RunLoweredInterp(f, bind);
  const float* out = reinterpret_cast<const float*>(run[2].bytes.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], QuantizeFloat16(out[i])) << "not on the fp16 grid at " << i;
  }
}

#if defined(__FLT16_MANT_DIG__)
TEST(Float16, MatchesHardwareHalf) {
  // Sweep a mix of normals, subnormals, and rounding-edge values against the
  // compiler-provided _Float16 conversion.
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    float x = static_cast<float>((rng.UniformReal() * 2.0 - 1.0) *
                                 std::pow(2.0, static_cast<double>(rng.Uniform(40)) - 20));
    float ref = static_cast<float>(static_cast<_Float16>(x));
    EXPECT_EQ(QuantizeFloat16(x), ref) << "x=" << x;
  }
  EXPECT_EQ(QuantizeFloat16(65520.0f),
            static_cast<float>(static_cast<_Float16>(65520.0f)));  // overflow -> inf
  EXPECT_EQ(QuantizeFloat16(0.0f), 0.0f);
  EXPECT_TRUE(std::isnan(QuantizeFloat16(std::nanf(""))));
}
#endif

TEST(VmDiff, Int8Arithmetic) {
  const int n = 96;
  Tensor A = placeholder({make_int(n)}, DataType::Int8(), "A");
  Tensor B = placeholder({make_int(n)}, DataType::Int8(), "B");
  Tensor C = compute({make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return cast(DataType::Int8(),
                                   max(A({i[0]}) * B({i[0]}) % make_int(64),
                                       A({i[0]}) + B({i[0]})));
                     },
                     "C");
  Schedule s = create_schedule({C});
  LoweredFunc f = Lower(s, {A, B, C}, "i8_kernel");
  ExpectEnginesIdentical(f, MakeArgs({A, B, C}, 17));
}

// --- end-to-end graph execution + memory-plan storage sharing -----------------------

TEST(VmGraph, EnginesMatchEndToEndWithPlannedStorage) {
  // A 4-deep conv+relu chain: fusion yields 4 materialized groups whose intermediates
  // die one group later, so the memory plan can recycle the earliest buffer.
  graph::Graph g;
  int data = g.AddInput("data", {1, 4, 8, 8});
  int w1 = g.AddConst("w1", {8, 4, 3, 3});
  int w2 = g.AddConst("w2", {8, 8, 1, 1});
  int w3 = g.AddConst("w3", {8, 8, 1, 1});
  int w4 = g.AddConst("w4", {8, 8, 1, 1});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int r1 = g.AddOp("relu", "relu1", {c1});
  int c2 = g.AddOp("conv2d", "conv2", {r1, w2}, {{"stride", 1}, {"pad", 0}});
  int r2 = g.AddOp("relu", "relu2", {c2});
  int c3 = g.AddOp("conv2d", "conv3", {r2, w3}, {{"stride", 1}, {"pad", 0}});
  int r3 = g.AddOp("relu", "relu3", {c3});
  g.outputs = {g.AddOp("conv2d", "conv4", {r3, w4}, {{"stride", 1}, {"pad", 0}})};

  std::unordered_map<std::string, NDArray> params;
  params["data"] = NDArray::Random({1, 4, 8, 8}, DataType::Float32(), 3);
  params["w1"] = NDArray::Random({8, 4, 3, 3}, DataType::Float32(), 4);
  params["w2"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), 5);
  params["w3"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), 6);
  params["w4"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), 7);

  auto run_with = [&](ExecEngine engine) {
    ExecEngine saved = GetExecEngine();
    SetExecEngine(engine);
    graph::GraphExecutor exec(g, Target::ArmA53(), {});
    for (auto& kv : params) {
      exec.SetInput(kv.first, kv.second);
    }
    exec.Run();
    NDArray out = exec.GetOutput(0).Copy();
    SetExecEngine(saved);
    return out;
  };

  NDArray vm_out = run_with(ExecEngine::kVm);
  NDArray interp_out = run_with(ExecEngine::kInterp);
  ASSERT_EQ(vm_out.NumElements(), interp_out.NumElements());
  EXPECT_EQ(std::memcmp(vm_out.Data<char>(), interp_out.Data<char>(),
                        static_cast<size_t>(vm_out.NumElements()) * 4),
            0)
      << "graph executor engines disagree";

  // The memory plan must actually reuse intermediate storage.
  graph::GraphExecutor exec(g, Target::ArmA53(), {});
  EXPECT_LT(exec.memory_plan().planned_bytes, exec.memory_plan().unplanned_bytes);
}

// Regression for memory-plan liveness: in a residual graph the skip connection is
// consumed by an epilogue fused into a much later group, so a planner tracking
// liveness in node-id order (instead of kernel-execution order) recycles the skip
// buffer before that kernel reads it. Fused and unfused execution must agree.
TEST(VmGraph, ResidualGraphFusedMatchesUnfused) {
  graph::Graph g;
  int data = g.AddInput("data", {1, 4, 8, 8});
  int w1 = g.AddConst("w1", {8, 4, 3, 3});
  int w2 = g.AddConst("w2", {8, 8, 1, 1});
  int w3 = g.AddConst("w3", {8, 8, 1, 1});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int r1 = g.AddOp("relu", "relu1", {c1});
  int c2 = g.AddOp("conv2d", "conv2", {r1, w2}, {{"stride", 1}, {"pad", 0}});
  int r2 = g.AddOp("relu", "relu2", {c2});
  int c3 = g.AddOp("conv2d", "conv3", {r2, w3}, {{"stride", 1}, {"pad", 0}});
  int res = g.AddOp("add", "res_add", {c3, r1});  // skip connection from relu1
  g.outputs = {g.AddOp("relu", "relu_out", {res})};

  std::unordered_map<std::string, NDArray> params;
  params["data"] = NDArray::Random({1, 4, 8, 8}, DataType::Float32(), 21);
  params["w1"] = NDArray::Random({8, 4, 3, 3}, DataType::Float32(), 22);
  params["w2"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), 23);
  params["w3"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), 24);

  auto run_with = [&](bool fusion) {
    graph::CompileOptions opts;
    opts.enable_fusion = fusion;
    graph::GraphExecutor exec(g, Target::ArmA53(), opts);
    for (auto& kv : params) {
      exec.SetInput(kv.first, kv.second);
    }
    exec.Run();
    return exec.GetOutput(0).Copy();
  };

  NDArray fused = run_with(true);
  NDArray unfused = run_with(false);
  ASSERT_EQ(fused.NumElements(), unfused.NumElements());
  for (int64_t i = 0; i < fused.NumElements(); ++i) {
    ASSERT_NEAR(fused.Data<float>()[i], unfused.Data<float>()[i], 1e-5) << "at " << i;
  }
}

}  // namespace
}  // namespace tvmcpp
