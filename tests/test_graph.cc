// Graph-level tests: fusion rules over the four operator categories, constant folding,
// static memory planning, and end-to-end executor numerics vs. unfused execution.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <vector>

#include "src/graph/executor.h"
#include "src/graph/graph.h"

namespace tvmcpp {
namespace graph {
namespace {

// conv(3x3) -> batch_norm -> relu -> conv(1x1) -> add(residual) graph.
Graph SmallConvNet() {
  Graph g;
  int data = g.AddInput("data", {1, 4, 8, 8});
  int w1 = g.AddConst("w1", {8, 4, 3, 3});
  int scale = g.AddConst("scale", {8});
  int shift = g.AddConst("shift", {8});
  int w2 = g.AddConst("w2", {8, 8, 1, 1});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int bn = g.AddOp("batch_norm", "bn1", {c1, scale, shift});
  int r1 = g.AddOp("relu", "relu1", {bn});
  int c2 = g.AddOp("conv2d", "conv2", {r1, w2}, {{"stride", 1}, {"pad", 0}});
  int add = g.AddOp("add", "res_add", {c2, r1});
  g.outputs = {add};
  return g;
}

TEST(GraphFusion, FourCategoryRules) {
  Graph g = SmallConvNet();
  std::vector<FusedGroup> fused = FuseOps(g, true);
  std::vector<FusedGroup> unfused = FuseOps(g, false);
  // conv1+bn+relu can't fuse (relu1 has 2 consumers); conv2+add fuses.
  EXPECT_LT(fused.size(), unfused.size());
  EXPECT_EQ(unfused.size(), 5u);
  // Every group has at most one non-injective master.
  for (const FusedGroup& grp : fused) {
    int non_injective = 0;
    for (int id : grp.nodes) {
      if (GetOpInfo(g.node(id).op).pattern != OpPattern::kInjective) {
        ++non_injective;
      }
    }
    EXPECT_LE(non_injective, 1);
  }
}

TEST(GraphFusion, ConvBnReluFusesWhenSingleConsumer) {
  Graph g;
  int data = g.AddInput("data", {1, 4, 8, 8});
  int w1 = g.AddConst("w1", {8, 4, 3, 3});
  int scale = g.AddConst("scale", {8});
  int shift = g.AddConst("shift", {8});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int bn = g.AddOp("batch_norm", "bn1", {c1, scale, shift});
  int r1 = g.AddOp("relu", "relu1", {bn});
  g.outputs = {r1};
  std::vector<FusedGroup> fused = FuseOps(g, true);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].nodes.size(), 3u);
  EXPECT_EQ(fused[0].master, c1);
}

TEST(GraphExec, FusedMatchesUnfused) {
  Graph g = SmallConvNet();
  Target t = Target::ArmA53();
  NDArray data = NDArray::Random({1, 4, 8, 8}, DataType::Float32(), 1);
  NDArray w1 = NDArray::Random({8, 4, 3, 3}, DataType::Float32(), 2);
  NDArray scale = NDArray::Random({8}, DataType::Float32(), 3);
  NDArray shift = NDArray::Random({8}, DataType::Float32(), 4);
  NDArray w2 = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), 5);

  auto run = [&](bool fuse) {
    CompileOptions opts;
    opts.enable_fusion = fuse;
    GraphExecutor exec(g, t, opts);
    exec.SetInput("data", data);
    exec.SetParam("w1", w1);
    exec.SetParam("scale", scale);
    exec.SetParam("shift", shift);
    exec.SetParam("w2", w2);
    exec.Run();
    return exec.GetOutput(0);
  };
  NDArray fused = run(true);
  NDArray unfused = run(false);
  const float* a = fused.Data<float>();
  const float* b = unfused.Data<float>();
  for (int64_t i = 0; i < fused.NumElements(); ++i) {
    ASSERT_NEAR(a[i], b[i], 1e-3) << "at " << i;
  }
}

TEST(GraphExec, GpuTargetMatchesCpu) {
  Graph g = SmallConvNet();
  NDArray data = NDArray::Random({1, 4, 8, 8}, DataType::Float32(), 11);
  NDArray w1 = NDArray::Random({8, 4, 3, 3}, DataType::Float32(), 12);
  NDArray scale = NDArray::Random({8}, DataType::Float32(), 13);
  NDArray shift = NDArray::Random({8}, DataType::Float32(), 14);
  NDArray w2 = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), 15);
  auto run = [&](const Target& t) {
    GraphExecutor exec(g, t, {});
    exec.SetInput("data", data);
    exec.SetParam("w1", w1);
    exec.SetParam("scale", scale);
    exec.SetParam("shift", shift);
    exec.SetParam("w2", w2);
    exec.Run();
    return exec.GetOutput(0);
  };
  NDArray cpu = run(Target::ArmA53());
  NDArray gpu = run(Target::TitanX());
  for (int64_t i = 0; i < cpu.NumElements(); ++i) {
    ASSERT_NEAR(cpu.Data<float>()[i], gpu.Data<float>()[i], 1e-3) << i;
  }
}

TEST(GraphExec, FusionReducesEstimatedTime) {
  Graph g;
  int data = g.AddInput("data", {1, 32, 14, 14});
  int w1 = g.AddConst("w1", {32, 32, 3, 3});
  int scale = g.AddConst("scale", {32});
  int shift = g.AddConst("shift", {32});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int bn = g.AddOp("batch_norm", "bn1", {c1, scale, shift});
  int r1 = g.AddOp("relu", "relu1", {bn});
  g.outputs = {r1};
  Target t = Target::TitanX();
  CompileOptions fused_opts, unfused_opts;
  unfused_opts.enable_fusion = false;
  GraphExecutor fused(g, t, fused_opts);
  GraphExecutor unfused(g, t, unfused_opts);
  EXPECT_LT(fused.EstimateSeconds(), unfused.EstimateSeconds());
  EXPECT_LT(fused.num_kernels(), unfused.num_kernels());
}

TEST(GraphPasses, ConstantFolding) {
  Graph g;
  int a = g.AddConst("a", {4});
  int b = g.AddConst("b", {4});
  int c = g.AddOp("add", "c", {a, b});
  int d = g.AddInput("d", {4});
  int e = g.AddOp("add", "e", {c, d});
  g.outputs = {e};
  std::unordered_map<int, NDArray> params;
  params[a] = NDArray::Random({4}, DataType::Float32(), 1);
  params[b] = NDArray::Random({4}, DataType::Float32(), 2);
  int folded = ConstantFold(&g, &params);
  EXPECT_EQ(folded, 1);
  EXPECT_EQ(g.node(c).op, "const");
  ASSERT_TRUE(params.count(c));
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(params[c].Data<float>()[i],
                    params[a].Data<float>()[i] + params[b].Data<float>()[i]);
  }
}

TEST(GraphPasses, MemoryPlanReuse) {
  // A chain of elementwise ops: the planner must reuse buffers (2 needed, not N).
  Graph g;
  int x = g.AddInput("x", {64, 64});
  int cur = x;
  for (int i = 0; i < 8; ++i) {
    cur = g.AddOp("relu", "r" + std::to_string(i), {cur});
  }
  g.outputs = {cur};
  std::vector<FusedGroup> groups = FuseOps(g, false);
  MemoryPlan plan = PlanMemory(g, groups);
  EXPECT_LT(plan.planned_bytes, plan.unplanned_bytes);
  EXPECT_LE(plan.planned_bytes, 3 * 64 * 64 * 4);
}

}  // namespace
}  // namespace graph
}  // namespace tvmcpp
