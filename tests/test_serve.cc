// Serving-layer tests: N threads submitting interleaved requests against shared
// CompiledGraphs must produce bitwise-identical outputs to sequential GraphExecutor
// runs (the differential pattern from tests/test_vm.cc), under TVMCPP_VM_STRICT
// semantics so silent engine downgrades fail loudly. Also covers shutdown with
// in-flight requests, post-shutdown rejection, and backpressure on a tiny queue.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/serve/queue.h"
#include "src/serve/serve.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace {

// A 4-deep conv+relu chain (same topology as test_vm.cc's end-to-end graph test):
// fusion yields several kernels and the memory plan recycles intermediate storage,
// so cross-request buffer bleed would corrupt outputs visibly.
graph::Graph MakeConvChain() {
  graph::Graph g;
  int data = g.AddInput("data", {1, 4, 8, 8});
  int w1 = g.AddConst("w1", {8, 4, 3, 3});
  int w2 = g.AddConst("w2", {8, 8, 1, 1});
  int w3 = g.AddConst("w3", {8, 8, 1, 1});
  int w4 = g.AddConst("w4", {8, 8, 1, 1});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int r1 = g.AddOp("relu", "relu1", {c1});
  int c2 = g.AddOp("conv2d", "conv2", {r1, w2}, {{"stride", 1}, {"pad", 0}});
  int r2 = g.AddOp("relu", "relu2", {c2});
  int c3 = g.AddOp("conv2d", "conv3", {r2, w3}, {{"stride", 1}, {"pad", 0}});
  int r3 = g.AddOp("relu", "relu3", {c3});
  g.outputs = {g.AddOp("conv2d", "conv4", {r3, w4}, {{"stride", 1}, {"pad", 0}})};
  return g;
}

std::unordered_map<std::string, NDArray> ChainWeights(uint64_t seed) {
  std::unordered_map<std::string, NDArray> w;
  w["w1"] = NDArray::Random({8, 4, 3, 3}, DataType::Float32(), seed + 1);
  w["w2"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), seed + 2);
  w["w3"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), seed + 3);
  w["w4"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), seed + 4);
  return w;
}

NDArray ChainInput(uint64_t seed) {
  return NDArray::Random({1, 4, 8, 8}, DataType::Float32(), 1000 + seed);
}

std::shared_ptr<graph::CompiledGraph> MakeChainModel(uint64_t weight_seed) {
  auto model = std::make_shared<graph::CompiledGraph>(MakeConvChain(),
                                                      Target::ArmA53(),
                                                      graph::CompileOptions{});
  for (const auto& kv : ChainWeights(weight_seed)) {
    model->SetParam(kv.first, kv.second);
  }
  return model;
}

// Sequential oracle: one GraphExecutor run per input, exactly the pre-serving path.
NDArray SequentialRun(uint64_t weight_seed, const NDArray& input) {
  graph::GraphExecutor exec(MakeConvChain(), Target::ArmA53(), {});
  for (const auto& kv : ChainWeights(weight_seed)) {
    exec.SetParam(kv.first, kv.second);
  }
  exec.SetInput("data", input);
  exec.Run();
  return exec.GetOutput(0).Copy();
}

void ExpectBitwiseEqual(const NDArray& a, const NDArray& b, const std::string& what) {
  ASSERT_EQ(a.NumElements(), b.NumElements()) << what;
  EXPECT_EQ(std::memcmp(a.Data<char>(), b.Data<char>(),
                        static_cast<size_t>(a.ByteSize())),
            0)
      << what << ": outputs differ";
}

// Flips VM strict mode for a scope so any VM->interpreter fallback under concurrent
// serving fails the test loudly instead of quietly de-optimizing.
struct ScopedStrictMode {
  bool saved;
  ScopedStrictMode() : saved(vm::StrictMode()) { vm::SetStrictMode(true); }
  ~ScopedStrictMode() { vm::SetStrictMode(saved); }
};

TEST(Serve, ConcurrentRequestsMatchSequential) {
  ScopedStrictMode strict;
  const uint64_t kWeightSeed = 7;
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(kWeightSeed);

  const int kThreads = 4;
  const int kPerThread = 6;
  std::vector<NDArray> inputs;
  std::vector<NDArray> expected;
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    inputs.push_back(ChainInput(static_cast<uint64_t>(i)));
    expected.push_back(SequentialRun(kWeightSeed, inputs.back()));
  }

  serve::ServerOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 8;
  serve::InferenceServer server(opts);

  std::vector<std::future<serve::InferenceResponse>> futures(
      static_cast<size_t>(kThreads * kPerThread));
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        int id = t * kPerThread + i;
        serve::InferenceRequest req;
        req.inputs["data"] = inputs[static_cast<size_t>(id)];
        futures[static_cast<size_t>(id)] = server.Submit(model, std::move(req));
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (int id = 0; id < kThreads * kPerThread; ++id) {
    serve::InferenceResponse resp = futures[static_cast<size_t>(id)].get();
    ASSERT_EQ(resp.outputs.size(), 1u);
    ExpectBitwiseEqual(resp.outputs[0], expected[static_cast<size_t>(id)],
                       "request " + std::to_string(id));
    EXPECT_GE(resp.run_ms, 0.0);
    EXPECT_GE(resp.queue_ms, 0.0);
  }
  serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, kThreads * kPerThread);
  EXPECT_EQ(stats.completed, kThreads * kPerThread);
  EXPECT_EQ(stats.rejected, 0);
}

TEST(Serve, TwoModelsInterleaved) {
  ScopedStrictMode strict;
  std::shared_ptr<graph::CompiledGraph> model_a = MakeChainModel(11);
  std::shared_ptr<graph::CompiledGraph> model_b = MakeChainModel(23);

  const int kRequests = 8;
  serve::InferenceServer server(serve::ServerOptions{});
  std::vector<std::future<serve::InferenceResponse>> futures;
  std::vector<NDArray> expected;
  for (int i = 0; i < kRequests; ++i) {
    bool use_a = i % 2 == 0;
    NDArray input = ChainInput(static_cast<uint64_t>(100 + i));
    expected.push_back(SequentialRun(use_a ? 11 : 23, input));
    serve::InferenceRequest req;
    req.inputs["data"] = input;
    futures.push_back(server.Submit(use_a ? model_a : model_b, std::move(req)));
  }
  for (int i = 0; i < kRequests; ++i) {
    serve::InferenceResponse resp = futures[static_cast<size_t>(i)].get();
    ExpectBitwiseEqual(resp.outputs[0], expected[static_cast<size_t>(i)],
                       "interleaved request " + std::to_string(i));
  }
}

// Shutdown while most requests are still queued or running: every accepted request
// must still be drained and its future fulfilled. Runs both unbatched and with
// dynamic batching enabled — in the batched case a partial batch lingering for late
// arrivals at Stop() must be flushed by the queue close and drained, not dropped.
void RunShutdownWithInflight(serve::ServerOptions opts) {
  const uint64_t kWeightSeed = 3;
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(kWeightSeed);
  serve::InferenceServer server(opts);

  const int kRequests = 12;
  std::vector<NDArray> inputs;
  std::vector<std::future<serve::InferenceResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(ChainInput(static_cast<uint64_t>(50 + i)));
    serve::InferenceRequest req;
    req.inputs["data"] = inputs.back();
    futures.push_back(server.Submit(model, std::move(req)));
  }
  auto t0 = std::chrono::steady_clock::now();
  server.Shutdown();
  double shutdown_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  for (int i = 0; i < kRequests; ++i) {
    serve::InferenceResponse resp = futures[static_cast<size_t>(i)].get();
    ExpectBitwiseEqual(resp.outputs[0],
                       SequentialRun(kWeightSeed, inputs[static_cast<size_t>(i)]),
                       "inflight request " + std::to_string(i));
  }
  serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, kRequests);
  EXPECT_EQ(stats.completed, kRequests);
  if (opts.max_batch > 1) {
    // Every request went through the batched path, and each formed batch was
    // accounted as exactly one of full- or timeout-flushed.
    EXPECT_EQ(stats.batched_requests, kRequests);
    EXPECT_GE(stats.batches, 1);
    EXPECT_EQ(stats.batches, stats.full_batches + stats.timeout_batches);
    // The queue close must flush lingering partial batches immediately; waiting
    // out the (deliberately huge) linger deadline instead would show up here.
    EXPECT_LT(shutdown_ms, opts.batch_timeout_ms);
  }
}

TEST(Serve, ShutdownWithInflightRequestsCompletesAll) {
  serve::ServerOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 16;
  opts.max_batch = 1;
  RunShutdownWithInflight(opts);
}

TEST(Serve, ShutdownWithInflightBatchingEnabledDrainsPartialBatches) {
  serve::ServerOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 16;
  opts.max_batch = 4;
  // Long linger: without the queue-close flush, Shutdown would hang on a partial
  // batch waiting out this deadline — the test's 5s watchdog is the ctest timeout.
  opts.batch_timeout_ms = 5000;
  RunShutdownWithInflight(opts);
}

TEST(Serve, SubmitAfterShutdownRejected) {
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(5);
  serve::InferenceServer server(serve::ServerOptions{});
  server.Shutdown();
  serve::InferenceRequest req;
  req.inputs["data"] = ChainInput(1);
  std::future<serve::InferenceResponse> f = server.Submit(model, std::move(req));
  // Futures always carry a value: rejection is a typed status, not an exception.
  serve::InferenceResponse resp = f.get();
  EXPECT_EQ(resp.status.code, serve::StatusCode::kRejected);
  EXPECT_FALSE(resp.status.ok());
  EXPECT_EQ(server.stats().rejected, 1);
}

// Pins the torn-read fix: stats() must return one consistent snapshot. Writers
// update the totals and the per-class breakdown under a single lock hold, so a
// concurrent reader may never observe them mid-update (the old per-field atomics
// could return e.g. completed > accepted, or totals != sum of classes).
TEST(Serve, StatsSnapshotConsistent) {
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(3);
  serve::ServerOptions options;
  options.num_workers = 4;
  serve::InferenceServer server(options);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread reader([&] {
    while (!stop.load()) {
      serve::ServerStats s = server.stats();
      int64_t class_accepted = 0;
      int64_t class_completed = 0;
      for (const auto& kv : s.per_class) {
        class_accepted += kv.second.accepted;
        class_completed += kv.second.completed;
      }
      if (s.completed > s.accepted || class_accepted != s.accepted ||
          class_completed != s.completed ||
          s.batches != s.full_batches + s.timeout_batches) {
        violations.fetch_add(1);
      }
    }
  });

  constexpr int kRequests = 200;
  std::vector<std::future<serve::InferenceResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    serve::InferenceRequest req;
    req.inputs["data"] = ChainInput(i);
    req.priority = i % 3;  // several classes so per_class has multiple entries
    futures.push_back(server.Submit(model, std::move(req)));
  }
  for (std::future<serve::InferenceResponse>& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  server.Shutdown();
  stop.store(true);
  reader.join();
  EXPECT_EQ(violations.load(), 0);

  serve::ServerStats s = server.stats();
  EXPECT_EQ(s.accepted, kRequests);
  EXPECT_EQ(s.completed, kRequests);
  int64_t ok = 0;
  for (const auto& kv : s.per_class) {
    ok += kv.second.ok;
  }
  EXPECT_EQ(ok, kRequests);
}

TEST(Serve, BackpressureTinyQueue) {
  const uint64_t kWeightSeed = 9;
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(kWeightSeed);

  serve::ServerOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 1;  // every Submit beyond one pending blocks on backpressure
  serve::InferenceServer server(opts);

  const int kThreads = 4;
  const int kPerThread = 4;
  std::vector<std::future<serve::InferenceResponse>> futures(
      static_cast<size_t>(kThreads * kPerThread));
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        int id = t * kPerThread + i;
        serve::InferenceRequest req;
        req.inputs["data"] = ChainInput(static_cast<uint64_t>(200 + id));
        futures[static_cast<size_t>(id)] = server.Submit(model, std::move(req));
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (int id = 0; id < kThreads * kPerThread; ++id) {
    serve::InferenceResponse resp = futures[static_cast<size_t>(id)].get();
    ExpectBitwiseEqual(
        resp.outputs[0],
        SequentialRun(kWeightSeed, ChainInput(static_cast<uint64_t>(200 + id))),
        "backpressured request " + std::to_string(id));
  }
  EXPECT_EQ(server.stats().completed, kThreads * kPerThread);
}

TEST(Serve, LoneRequestUsesIntraKernelParallelism) {
  // Level-2 policy: with an otherwise idle server, a single request must run with
  // kParallel chunking enabled (backlog 1 < workers), not serial.
  std::shared_ptr<graph::CompiledGraph> model = MakeChainModel(13);
  serve::ServerOptions opts;
  opts.num_workers = 4;
  serve::InferenceServer server(opts);
  serve::InferenceRequest req;
  req.inputs["data"] = ChainInput(77);
  server.Submit(model, std::move(req)).get();
  EXPECT_EQ(server.stats().chunked_runs, 1);
  EXPECT_EQ(server.stats().serial_runs, 0);
}

TEST(ServeQueue, CloseDrainsAndRejects) {
  serve::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3));
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.Pop(&v));
  EXPECT_FALSE(q.TryPop(&v));
}

}  // namespace
}  // namespace tvmcpp
