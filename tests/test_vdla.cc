// Tests of the VDLA accelerator: instruction-stream generation from lowered programs,
// DAE pipeline simulation, and latency hiding through virtual threads (Section 4.4).
#include <gtest/gtest.h>

#include <vector>

#include "src/interp/interp.h"
#include "src/lower/lower.h"
#include "src/runtime/target.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"
#include "src/vdla/vdla.h"

namespace tvmcpp {
namespace {

// Matmul staged through VDLA on-chip buffers; `vthreads` > 1 splits the output rows
// across virtual threads for latency hiding.
LoweredFunc BuildVdlaMatmul(int n, int vthreads, Tensor* a, Tensor* b, Tensor* c) {
  Tensor A = placeholder({make_int(n), make_int(n)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(n), make_int(n)}, DataType::Float32(), "B");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(n)), "rk");
  Tensor C = compute({make_int(n), make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({i[0], rk->var}) * B({rk->var, i[1]}), {rk});
                     },
                     "C");
  Schedule s = create_schedule({C});
  Tensor CL = s->cache_write(C, "vdla.acc_buffer");
  Stage sc = (*s)[C];
  IterVar yo, xo, yi, xi;
  sc->tile(sc->leaf_iter_vars[0], sc->leaf_iter_vars[1], 16, 16, &yo, &xo, &yi, &xi);
  if (vthreads > 1) {
    IterVar vt, rest;
    sc->split(yo, static_cast<int64_t>((n / 16) / vthreads), &vt, &rest);
    sc->bind(vt, thread_axis("vthread"));
    (*s)[CL]->compute_at(sc, xo);
  } else {
    (*s)[CL]->compute_at(sc, xo);
  }
  Stage scl = (*s)[CL];
  IterVar ci0 = scl->leaf_iter_vars[0], ci1 = scl->leaf_iter_vars[1];
  IterVar ko, ki;
  scl->split(scl->leaf_iter_vars[2], 16, &ko, &ki);
  // Reduction outermost so the whole 16x16x16 block tensorizes (Figure 5's structure).
  scl->reorder({ko, ci0, ci1, ki});
  Tensor AL = s->cache_read(A, "vdla.inp_buffer", {CL.op()});
  Tensor BL = s->cache_read(B, "vdla.wgt_buffer", {CL.op()});
  (*s)[AL]->compute_at(scl, ko);
  (*s)[BL]->compute_at(scl, ko);
  // Tensorize the inner 16x16x16 block.
  Tensor w = placeholder({make_int(16), make_int(16)}, DataType::Float32(), "w");
  Tensor x = placeholder({make_int(16), make_int(16)}, DataType::Float32(), "x");
  IterVar k16 = reduce_axis(Range(make_int(0), make_int(16)), "k");
  Tensor y = compute({make_int(16), make_int(16)},
                     [&](const std::vector<Var>& i) {
                       return sum(w({i[0], k16->var}) * x({k16->var, i[1]}), {k16});
                     },
                     "gemm16");
  scl->tensorize(ci0, decl_tensor_intrin(y, kGemmIntrin, kFillZeroIntrin, kGemmIntrin));
  *a = A;
  *b = B;
  *c = C;
  return Lower(s, {A, B, C}, "vdla_mm");
}

TEST(Vdla, ProgramGeneration) {
  Tensor A, B, C;
  LoweredFunc f = BuildVdlaMatmul(64, 1, &A, &B, &C);
  VdlaProgram prog = BuildVdlaProgram(f, Target::Vdla());
  int gemm = 0, dma = 0, push = 0, pop = 0;
  for (const VdlaInsn& i : prog) {
    gemm += i.op == VdlaInsn::Op::kGemm;
    dma += i.op == VdlaInsn::Op::kDmaLoad || i.op == VdlaInsn::Op::kDmaStore;
    push += i.op == VdlaInsn::Op::kPushDep;
    pop += i.op == VdlaInsn::Op::kPopDep;
  }
  // 4x4 output tiles x 4 reduction steps.
  EXPECT_EQ(gemm, 64);
  EXPECT_GT(dma, 0);
  EXPECT_EQ(push, pop);
  EXPECT_GT(push, 0) << "dependence tokens must be inserted";
}

TEST(Vdla, FunctionalCorrectness) {
  Tensor A, B, C;
  LoweredFunc f = BuildVdlaMatmul(32, 1, &A, &B, &C);
  const int n = 32;
  std::vector<float> a(n * n), b(n * n), c(n * n, -1);
  for (int i = 0; i < n * n; ++i) {
    a[static_cast<size_t>(i)] = static_cast<float>(i % 7) - 3;
    b[static_cast<size_t>(i)] = static_cast<float>(i % 5) - 2;
  }
  RunLowered(f, {{a.data(), DataType::Float32(), n * n},
                 {b.data(), DataType::Float32(), n * n},
                 {c.data(), DataType::Float32(), n * n}});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      float ref = 0;
      for (int k = 0; k < n; ++k) {
        ref += a[static_cast<size_t>(i * n + k)] * b[static_cast<size_t>(k * n + j)];
      }
      ASSERT_NEAR(c[static_cast<size_t>(i * n + j)], ref, 1e-2);
    }
  }
}

TEST(Vdla, PipelineBeatsMonolithic) {
  Tensor A, B, C;
  LoweredFunc f = BuildVdlaMatmul(64, 2, &A, &B, &C);
  Target t = Target::Vdla();
  VdlaProgram prog = BuildVdlaProgram(f, t);
  VdlaRunStats pipelined = SimulateVdla(prog, t, /*pipelined=*/true);
  VdlaRunStats monolithic = SimulateVdla(prog, t, /*pipelined=*/false);
  EXPECT_LT(pipelined.cycles, monolithic.cycles);
  EXPECT_GT(pipelined.ComputeUtilization(), monolithic.ComputeUtilization());
}

TEST(Vdla, VirtualThreadsHideLatency) {
  Tensor A, B, C;
  Target t = Target::Vdla();
  LoweredFunc f1 = BuildVdlaMatmul(128, 1, &A, &B, &C);
  LoweredFunc f2 = BuildVdlaMatmul(128, 2, &A, &B, &C);
  VdlaRunStats base = RunOnVdla(f1, t);
  VdlaRunStats hidden = RunOnVdla(f2, t);
  // Same work.
  EXPECT_NEAR(base.macs, hidden.macs, 1.0);
  // Virtual threads expose pipeline parallelism -> fewer cycles, higher utilization.
  EXPECT_LT(hidden.cycles, base.cycles)
      << "base util=" << base.ComputeUtilization()
      << " hidden util=" << hidden.ComputeUtilization();
  EXPECT_GT(hidden.ComputeUtilization(), base.ComputeUtilization());
}

TEST(Vdla, VirtualThreadProgramStillCorrect) {
  Tensor A, B, C;
  LoweredFunc f = BuildVdlaMatmul(32, 2, &A, &B, &C);
  f.body = InjectVirtualThreads(f.body);
  const int n = 32;
  std::vector<float> a(n * n), b(n * n), c(n * n, -1);
  for (int i = 0; i < n * n; ++i) {
    a[static_cast<size_t>(i)] = static_cast<float>(i % 9) - 4;
    b[static_cast<size_t>(i)] = static_cast<float>(i % 3) - 1;
  }
  RunLowered(f, {{a.data(), DataType::Float32(), n * n},
                 {b.data(), DataType::Float32(), n * n},
                 {c.data(), DataType::Float32(), n * n}});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      float ref = 0;
      for (int k = 0; k < n; ++k) {
        ref += a[static_cast<size_t>(i * n + k)] * b[static_cast<size_t>(k * n + j)];
      }
      ASSERT_NEAR(c[static_cast<size_t>(i * n + j)], ref, 1e-2);
    }
  }
}

}  // namespace
}  // namespace tvmcpp
