#include "src/schedule/schedule.h"

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/ir/functor.h"
#include "src/ir/simplify.h"
#include "src/ir/substitute.h"

namespace tvmcpp {

namespace {

// Rewrites tensor reads through op replacement; shared by cache_read/cache_write.
class TensorReadReplacer : public ExprMutator {
 public:
  explicit TensorReadReplacer(const std::unordered_map<const OperationNode*, Operation>& repl)
      : repl_(repl) {}

  bool changed() const { return changed_; }

 protected:
  Expr MutateTensorRead(const TensorReadNode* op, const Expr& e) override {
    Expr base = ExprMutator::MutateTensorRead(op, e);
    const auto* n = static_cast<const TensorReadNode*>(base.get());
    auto it = repl_.find(static_cast<const OperationNode*>(n->op.get()));
    if (it == repl_.end()) {
      return base;
    }
    changed_ = true;
    return tensor_read(n->dtype, std::static_pointer_cast<void>(it->second), n->value_index,
                       it->second->name, n->indices);
  }

 private:
  const std::unordered_map<const OperationNode*, Operation>& repl_;
  bool changed_ = false;
};

}  // namespace

Expr ReplaceTensorReads(const Expr& e,
                        const std::unordered_map<const OperationNode*, Operation>& repl) {
  TensorReadReplacer r(repl);
  return r.Mutate(e);
}

TensorIntrinPtr decl_tensor_intrin(Tensor behavior, std::string intrin_name,
                                   std::string reset_name, std::string update_name) {
  auto intrin = std::make_shared<TensorIntrin>();
  intrin->name = behavior.op()->name;
  intrin->behavior = behavior;
  intrin->inputs = behavior.op()->InputTensors();
  intrin->intrin_name = std::move(intrin_name);
  intrin->reset_name = std::move(reset_name);
  intrin->update_name = std::move(update_name);
  return intrin;
}

IterVar thread_axis(const std::string& tag) { return thread_axis(Range(), tag); }

IterVar thread_axis(Range dom, const std::string& tag) {
  IterVarType type =
      (tag == "vthread" || tag == "cthread") ? IterVarType::kVirtualThread
                                             : IterVarType::kThreadIndex;
  return std::make_shared<IterVarNode>(dom, make_var(tag), type, tag);
}

StageNode::StageNode(Operation op, bool is_output)
    : op(op), origin_op(op), is_output(is_output) {
  if (auto* cop = dynamic_cast<ComputeOpNode*>(op.get())) {
    root_iter_vars = cop->root_iter_vars();
    leaf_iter_vars = root_iter_vars;
  }
}

const IterVarAttr* StageNode::GetAttr(const IterVar& iv) const {
  auto it = iter_attrs.find(iv.get());
  return it == iter_attrs.end() ? nullptr : &it->second;
}

IterVarAttr* StageNode::GetOrCreateAttr(const IterVar& iv) { return &iter_attrs[iv.get()]; }

void StageNode::ReplaceLeaf(const IterVar& target, const std::vector<IterVar>& replacement) {
  auto it = std::find_if(leaf_iter_vars.begin(), leaf_iter_vars.end(),
                         [&](const IterVar& iv) { return iv.get() == target.get(); });
  CHECK(it != leaf_iter_vars.end())
      << "itervar " << target->var->name << " is not a leaf of stage " << op->name;
  it = leaf_iter_vars.erase(it);
  leaf_iter_vars.insert(it, replacement.begin(), replacement.end());
}

void StageNode::split(IterVar parent, int64_t factor, IterVar* outer, IterVar* inner) {
  CHECK_GT(factor, 0) << "split factor must be positive";
  IterVarType type = parent->type;
  // Extent of outer: ceil(parent_extent / factor) when known, symbolic otherwise.
  Expr parent_extent = parent->dom.defined() ? parent->dom.extent() : nullptr;
  Expr outer_extent;
  if (parent_extent != nullptr) {
    outer_extent = Simplify((parent_extent + make_int(factor - 1)) / make_int(factor));
  }
  IterVar o = std::make_shared<IterVarNode>(Range(make_int(0), outer_extent),
                                            make_var(parent->var->name + ".o"), type, "");
  IterVar i = std::make_shared<IterVarNode>(Range(make_int(0), make_int(factor)),
                                            make_var(parent->var->name + ".i"), type, "");
  relations.push_back(IterVarRelation{IterVarRelation::Kind::kSplit, parent, o, i,
                                      make_int(factor), nullptr});
  ReplaceLeaf(parent, {o, i});
  *outer = o;
  *inner = i;
}

void StageNode::split_by_nparts(IterVar parent, int64_t nparts, IterVar* outer,
                                IterVar* inner) {
  CHECK(parent->dom.defined());
  int64_t extent = get_const_int(Simplify(parent->dom.extent()));
  CHECK_EQ(extent % nparts, 0) << "split_by_nparts requires divisible extent";
  split(parent, extent / nparts, outer, inner);
}

void StageNode::tile(IterVar x, IterVar y, int64_t x_factor, int64_t y_factor,
                     IterVar* xo, IterVar* yo, IterVar* xi, IterVar* yi) {
  split(x, x_factor, xo, xi);
  split(y, y_factor, yo, yi);
  reorder({*xo, *yo, *xi, *yi});
}

IterVar StageNode::fuse(IterVar outer, IterVar inner) {
  Expr fused_extent;
  if (outer->dom.defined() && inner->dom.defined() && outer->dom.extent() != nullptr &&
      inner->dom.extent() != nullptr) {
    fused_extent = Simplify(outer->dom.extent() * inner->dom.extent());
  }
  CHECK(outer->type == inner->type) << "cannot fuse itervars of different types";
  IterVar fused = std::make_shared<IterVarNode>(
      Range(make_int(0), fused_extent),
      make_var(outer->var->name + "." + inner->var->name + ".fused"), outer->type, "");
  // Require adjacency outer directly before inner.
  auto io = std::find_if(leaf_iter_vars.begin(), leaf_iter_vars.end(),
                         [&](const IterVar& iv) { return iv.get() == outer.get(); });
  CHECK(io != leaf_iter_vars.end() && (io + 1) != leaf_iter_vars.end() &&
        (io + 1)->get() == inner.get())
      << "fuse requires adjacent itervars (reorder first)";
  relations.push_back(
      IterVarRelation{IterVarRelation::Kind::kFuse, nullptr, outer, inner, nullptr, fused});
  // Replace the [outer, inner] pair with `fused` at outer's position.
  io = leaf_iter_vars.erase(io, io + 2);
  leaf_iter_vars.insert(io, fused);
  return fused;
}

void StageNode::reorder(const std::vector<IterVar>& order) {
  std::vector<size_t> positions;
  for (const IterVar& iv : order) {
    auto it = std::find_if(leaf_iter_vars.begin(), leaf_iter_vars.end(),
                           [&](const IterVar& l) { return l.get() == iv.get(); });
    CHECK(it != leaf_iter_vars.end())
        << "reorder: " << iv->var->name << " is not a leaf itervar";
    positions.push_back(static_cast<size_t>(it - leaf_iter_vars.begin()));
  }
  std::vector<size_t> sorted = positions;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < order.size(); ++i) {
    leaf_iter_vars[sorted[i]] = order[i];
  }
}

void StageNode::vectorize(const IterVar& iv) {
  GetOrCreateAttr(iv)->for_type = ForType::kVectorized;
}

void StageNode::unroll(const IterVar& iv) { GetOrCreateAttr(iv)->for_type = ForType::kUnrolled; }

void StageNode::parallel(const IterVar& iv) {
  GetOrCreateAttr(iv)->for_type = ForType::kParallel;
}

void StageNode::pragma(const IterVar& iv, const std::string& pragma_name) {
  GetOrCreateAttr(iv)->pragmas.push_back(pragma_name);
}

void StageNode::bind(const IterVar& iv, const IterVar& thread) {
  IterVarAttr* attr = GetOrCreateAttr(iv);
  attr->bind_thread = thread;
  attr->for_type = thread->type == IterVarType::kVirtualThread ? ForType::kVThread
                                                               : ForType::kThreadBinding;
}

void StageNode::tensorize(const IterVar& iv, TensorIntrinPtr intrin) {
  GetOrCreateAttr(iv)->tensor_intrin = std::move(intrin);
}

void StageNode::compute_at(const Stage& parent, const IterVar& at) {
  attach_type = AttachType::kScope;
  attach_stage = parent;
  attach_ivar = at;
}

void StageNode::compute_inline() {
  CHECK(!is_output) << "cannot inline an output stage";
  const auto* cop = dynamic_cast<const ComputeOpNode*>(op.get());
  CHECK(cop != nullptr && cop->reduce_axis.empty())
      << "only injective compute stages can be inlined";
  attach_type = AttachType::kInline;
}

void StageNode::compute_root() { attach_type = AttachType::kRoot; }

void StageNode::set_scope(std::string s) { scope = std::move(s); }

Stage ScheduleNode::GetStage(const Operation& op) {
  auto it = stage_map_.find(op.get());
  CHECK(it != stage_map_.end()) << "operation " << op->name << " is not in this schedule";
  return it->second;
}

Schedule create_schedule(const std::vector<Tensor>& outputs) {
  auto sch = std::make_shared<ScheduleNode>();
  std::unordered_set<const OperationNode*> output_set;
  for (const Tensor& t : outputs) {
    sch->outputs.push_back(t.op());
    output_set.insert(t.op().get());
  }
  // Post-order DFS so producers precede consumers.
  std::unordered_set<const OperationNode*> visited;
  std::vector<Operation> order;
  std::function<void(const Operation&)> dfs = [&](const Operation& op) {
    if (!visited.insert(op.get()).second) {
      return;
    }
    for (const Tensor& t : op->InputTensors()) {
      dfs(t.op());
    }
    order.push_back(op);
  };
  for (const Tensor& t : outputs) {
    dfs(t.op());
  }
  for (const Operation& op : order) {
    auto stage = std::make_shared<StageNode>(op, output_set.count(op.get()) > 0);
    sch->stages.push_back(stage);
    sch->stage_map_[op.get()] = stage;
  }
  return sch;
}

void ScheduleNode::ReplaceDataFlow(std::unordered_map<const OperationNode*, Operation> repl) {
  for (Stage& stage : stages) {
    auto* cop = dynamic_cast<ComputeOpNode*>(stage->op.get());
    if (cop == nullptr) {
      continue;
    }
    bool changed = false;
    std::vector<Expr> new_body;
    new_body.reserve(cop->body.size());
    for (const Expr& e : cop->body) {
      TensorReadReplacer r(repl);
      Expr ne = r.Mutate(e);
      changed |= r.changed();
      new_body.push_back(std::move(ne));
    }
    if (!changed) {
      continue;
    }
    // Mutate the existing op in place: identity (stage/tensor handles) is preserved while
    // the body now reads the replacement producers.
    cop->body = std::move(new_body);
  }
  // Fix output list.
  for (Operation& op : outputs) {
    auto it = repl.find(op.get());
    if (it != repl.end()) {
      op = it->second;
    }
  }
}

Tensor ScheduleNode::cache_read(const Tensor& tensor, const std::string& scope,
                                const std::vector<Operation>& readers) {
  // Build the cache compute: identity copy of `tensor`.
  std::vector<Expr> shape = tensor.shape();
  Tensor cache = compute(
      shape,
      [&](const std::vector<Var>& i) {
        std::vector<Expr> idx(i.begin(), i.end());
        return tensor(idx);
      },
      tensor.name() + "." + scope);
  Stage cache_stage = std::make_shared<StageNode>(cache.op(), false);
  cache_stage->set_scope(scope);

  // Insert the cache stage right after the producer stage.
  Stage producer = GetStage(tensor.op());
  auto pos = std::find(stages.begin(), stages.end(), producer);
  CHECK(pos != stages.end());
  stages.insert(pos + 1, cache_stage);
  stage_map_[cache.op().get()] = cache_stage;

  // Rewrite the readers to read the cache.
  std::unordered_map<const OperationNode*, Operation> repl{{tensor.op().get(), cache.op()}};
  std::vector<Operation> target_readers = readers;
  if (target_readers.empty()) {
    for (const Stage& st : stages) {
      if (st == cache_stage) {
        continue;
      }
      for (const Tensor& in : st->op->InputTensors()) {
        if (in == tensor) {
          target_readers.push_back(st->op);
        }
      }
    }
  }
  for (const Operation& reader : target_readers) {
    auto* cop = dynamic_cast<ComputeOpNode*>(reader.get());
    CHECK(cop != nullptr) << "cache_read reader must be a compute op";
    std::vector<Expr> new_body;
    for (const Expr& e : cop->body) {
      new_body.push_back(ReplaceTensorReads(e, repl));
    }
    cop->body = std::move(new_body);
  }
  return cache;
}

Tensor ScheduleNode::cache_write(const Tensor& tensor, const std::string& scope) {
  Stage orig_stage = GetStage(tensor.op());
  auto* cop = dynamic_cast<ComputeOpNode*>(tensor.op().get());
  CHECK(cop != nullptr) << "cache_write requires a compute op";
  CHECK_EQ(cop->num_outputs(), 1) << "cache_write supports single-output ops";

  // The cache op takes over the original computation (axis, reduce axis, body).
  auto cache_op = std::make_shared<ComputeOpNode>(tensor.name() + "." + scope, cop->axis,
                                                  cop->reduce_axis, cop->body);
  Tensor cache = cache_op->output(0);

  // The original op becomes a copy of the cache over fresh spatial axis.
  std::vector<IterVar> new_axis;
  std::vector<Expr> idx;
  for (const IterVar& iv : cop->axis) {
    IterVar niv = make_itervar(tensor.name() + "." + iv->var->name, iv->dom.extent(),
                               IterVarType::kDataPar);
    idx.push_back(niv->var);
    new_axis.push_back(std::move(niv));
  }
  cop->body = {cache(idx)};
  cop->axis = std::move(new_axis);
  cop->reduce_axis.clear();

  // Reset the original stage's iteration state (it now iterates the copy loops) and insert
  // the cache stage before it.
  orig_stage->root_iter_vars = cop->root_iter_vars();
  orig_stage->leaf_iter_vars = orig_stage->root_iter_vars;
  orig_stage->relations.clear();
  orig_stage->iter_attrs.clear();

  Stage cache_stage = std::make_shared<StageNode>(cache.op(), false);
  cache_stage->set_scope(scope);
  auto pos = std::find(stages.begin(), stages.end(), orig_stage);
  CHECK(pos != stages.end());
  stages.insert(pos, cache_stage);
  stage_map_[cache.op().get()] = cache_stage;
  return cache;
}

}  // namespace tvmcpp
