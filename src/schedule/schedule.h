// Schedules: the mapping from tensor expressions to low-level loop programs (Section 4).
//
// A Schedule holds one Stage per operation. Stages are transformed by schedule primitives
// that preserve program semantics:
//   * Halide-derived: split, tile, fuse, reorder, compute_at, compute_inline, unroll,
//     vectorize, parallel, thread binding
//   * TVM-novel (this paper): special memory scopes (set_scope / cache_read / cache_write),
//     tensorize (Section 4.3), and virtual threads for latency hiding (Section 4.4)
#ifndef SRC_SCHEDULE_SCHEDULE_H_
#define SRC_SCHEDULE_SCHEDULE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ir/stmt.h"
#include "src/te/tensor.h"

namespace tvmcpp {

class StageNode;
using Stage = std::shared_ptr<StageNode>;
class ScheduleNode;
using Schedule = std::shared_ptr<ScheduleNode>;

// Relation between iteration variables recorded by split/fuse, replayed by bound
// inference to derive loop extents and index expressions.
struct IterVarRelation {
  enum class Kind { kSplit, kFuse };
  Kind kind;
  // split: parent -> outer*factor + inner
  IterVar parent;
  IterVar outer;
  IterVar inner;
  Expr factor;  // split only
  // fuse: fused = outer*inner_extent + inner
  IterVar fused;  // fuse only
};

// How a stage's computation is anchored in the final loop nest.
enum class AttachType {
  kRoot,    // own top-level loop nest
  kInline,  // body substituted into consumers
  kScope,   // nested inside a consumer loop (compute_at)
};

// Declaration of a hardware tensor intrinsic (Section 4.3). The behavior is described with
// the same tensor expression language; the lowering rule is the named runtime intrinsic.
struct TensorIntrin {
  std::string name;          // human-readable, e.g. "gemm8x8"
  Tensor behavior;           // output tensor of the declaration compute
  std::vector<Tensor> inputs;
  std::string intrin_name;   // emitted Call name, e.g. kGemmIntrin
  std::string reset_name;    // emitted for reduction init, may be empty
  std::string update_name;   // emitted for reduction update, may be empty
};

using TensorIntrinPtr = std::shared_ptr<TensorIntrin>;

// Declares a tensor intrinsic whose behavior is `behavior` (a ComputeOp output).
TensorIntrinPtr decl_tensor_intrin(Tensor behavior, std::string intrin_name,
                                   std::string reset_name = "", std::string update_name = "");

// Per-leaf-itervar scheduling attributes.
struct IterVarAttr {
  ForType for_type = ForType::kSerial;
  IterVar bind_thread;           // set by Stage::bind
  TensorIntrinPtr tensor_intrin; // set by Stage::tensorize
  std::vector<std::string> pragmas;
};

// Scheduling state of one operation.
class StageNode : public std::enable_shared_from_this<StageNode> {
 public:
  StageNode(Operation op, bool is_output);

  // --- Loop transformations -------------------------------------------------
  // Splits `parent` by `factor`: parent = outer*factor + inner.
  void split(IterVar parent, int64_t factor, IterVar* outer, IterVar* inner);
  // Splits into `nparts` outer iterations.
  void split_by_nparts(IterVar parent, int64_t nparts, IterVar* outer, IterVar* inner);
  // 2-D tiling convenience (Figure 5's `tile`).
  void tile(IterVar x, IterVar y, int64_t x_factor, int64_t y_factor,
            IterVar* xo, IterVar* yo, IterVar* xi, IterVar* yi);
  // Fuses two adjacent leaf vars into one.
  IterVar fuse(IterVar outer, IterVar inner);
  // Reorders the listed leaf vars into the given order (in-place among their slots).
  void reorder(const std::vector<IterVar>& order);

  // --- Annotations ----------------------------------------------------------
  void vectorize(const IterVar& iv);
  void unroll(const IterVar& iv);
  void parallel(const IterVar& iv);
  void pragma(const IterVar& iv, const std::string& pragma);
  // Binds a leaf var to a thread axis (threadIdx/blockIdx/vthread).
  void bind(const IterVar& iv, const IterVar& thread);
  // Replaces the loop nest at `iv` with a hardware tensor intrinsic.
  void tensorize(const IterVar& iv, TensorIntrinPtr intrin);

  // --- Compute placement ----------------------------------------------------
  void compute_at(const Stage& parent, const IterVar& at);
  void compute_inline();
  void compute_root();
  // Storage scope of the stage's output buffer ("global", "shared", "local", ...).
  void set_scope(std::string scope);

  const IterVarAttr* GetAttr(const IterVar& iv) const;
  IterVarAttr* GetOrCreateAttr(const IterVar& iv);

  Operation op;          // current operation (may be replaced by cache_write)
  Operation origin_op;   // operation at schedule creation
  std::vector<IterVar> root_iter_vars;
  std::vector<IterVar> leaf_iter_vars;
  std::vector<IterVarRelation> relations;
  AttachType attach_type = AttachType::kRoot;
  IterVar attach_ivar;
  std::weak_ptr<StageNode> attach_stage;
  std::string scope = "global";
  std::map<const IterVarNode*, IterVarAttr> iter_attrs;
  bool is_output = false;

 private:
  // Replaces `target` in leaf_iter_vars by the given replacement vars.
  void ReplaceLeaf(const IterVar& target, const std::vector<IterVar>& replacement);
};

// Schedule over a dataflow graph of operations, created by create_schedule().
class ScheduleNode : public std::enable_shared_from_this<ScheduleNode> {
 public:
  // Stage lookup by tensor or operation (resolves through cache_write replacement).
  Stage operator[](const Tensor& t) { return GetStage(t.op()); }
  Stage GetStage(const Operation& op);

  // Creates a cache stage that reads `tensor` into `scope` memory; all `readers`
  // (or every reader when empty) are rewritten to read the cache (Section 4.2).
  Tensor cache_read(const Tensor& tensor, const std::string& scope,
                    const std::vector<Operation>& readers);
  // Creates a cache stage computed in `scope` memory; the original tensor becomes a
  // copy of the cache. Returns the cache tensor (Figure 5's `cache_write`).
  Tensor cache_write(const Tensor& tensor, const std::string& scope);

  // Stages in dependency order (producers before consumers).
  std::vector<Stage> stages;
  std::vector<Operation> outputs;

 private:
  friend Schedule create_schedule(const std::vector<Tensor>& outputs);
  // Rewrites every stage body through `repl` (old op -> new op), propagating downstream.
  void ReplaceDataFlow(std::unordered_map<const OperationNode*, Operation> repl);

  std::unordered_map<const OperationNode*, Stage> stage_map_;
};

// Creates a schedule computing `outputs`, with one stage per reachable operation.
Schedule create_schedule(const std::vector<Tensor>& outputs);

// Creates a thread axis IterVar, e.g. thread_axis("threadIdx.x") or thread_axis("vthread").
IterVar thread_axis(const std::string& tag);
IterVar thread_axis(Range dom, const std::string& tag);

// Rewrites TensorRead nodes through an operation replacement map.
Expr ReplaceTensorReads(const Expr& e,
                        const std::unordered_map<const OperationNode*, Operation>& repl);

}  // namespace tvmcpp

#endif  // SRC_SCHEDULE_SCHEDULE_H_
