// Register-based bytecode VM for lowered loop programs.
//
// CompileToProgram lowers a LoweredFunc body once into a flat instruction stream:
// variables are resolved to dense register slots at compile time (no hash lookups at
// runtime), constants are pre-folded via Simplify and materialized into an initial
// register image, loads/stores are specialized per element type, and loop bodies are
// linear instruction ranges driven by compare-and-branch instructions. Outermost
// ForType::kParallel loops execute as chunked jobs on a shared ThreadPool.
//
// The tree-walking interpreter (src/interp) remains the reference semantics; the VM is
// bitwise-identical to it by construction (same scalar value model, same evaluation
// order, same bounds checks, same float16 rounding helper). Unsupported constructs make
// CompileToProgram return nullptr and callers fall back to the interpreter.
// See src/vm/README.md for the design notes.
#ifndef SRC_VM_VM_H_
#define SRC_VM_VM_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/interp/interp.h"
#include "src/lower/lower.h"

namespace tvmcpp {

class ThreadPool;  // src/runtime/threadpool.h

namespace vm {

struct Program;  // defined in vm.cc; opaque to callers

// Compiles `func` into bytecode. kVectorized loops are materialized first via
// VectorizeLoop and execute as SIMD vector opcodes over a vector register file;
// SpecializeLoops then unrolls/hoists per `spec` (src/lower/unroll.cc), and the
// bytecode compiler applies strength reduction and the peephole pass. Returns
// nullptr when the body contains a construct the VM does not support (unknown
// intrinsics, ...); callers should then fall back to RunLoweredInterp.
// The one-argument form uses LoopSpecializeOptions::FromEnv().
std::shared_ptr<const Program> CompileToProgram(const LoweredFunc& func);
std::shared_ptr<const Program> CompileToProgram(const LoweredFunc& func,
                                                const LoopSpecializeOptions& spec);

// --- fallback diagnostics ---------------------------------------------------------
// Every silent engine downgrade (VM compile failure -> interpreter) is counted, and
// TVMCPP_VM_STRICT=1 (or SetStrictMode(true)) turns the downgrade into a hard error so
// coverage regressions fail loudly instead of quietly de-optimizing.
int64_t FallbackCount();
void ResetFallbackCount();
bool StrictMode();
void SetStrictMode(bool strict);
// Records one VM->interpreter fallback for `func_name`; fatal under strict mode.
// Called by the RunLowered dispatcher.
void NoteFallback(const std::string& func_name);

// Explicit per-run engine context. Execution state itself (registers, buffer table)
// is always run-local, so any number of Run() calls on the same shared Program may be
// in flight concurrently; this struct only selects where kParallel chunks execute.
struct ExecOptions {
  // Worker count for kParallel loops. 0 = TVMCPP_NUM_THREADS env or
  // std::thread::hardware_concurrency(); 1 = force serial execution.
  int num_threads = 0;
  // Execute on the tree-walking reference interpreter instead of the VM, as an
  // *explicit* engine choice: unlike a compile-failure fallback it is not counted
  // by FallbackCount and never trips TVMCPP_VM_STRICT. The serving layer's
  // retry-with-fallback ladder (src/serve) sets this for the final down-tier
  // attempt after VM execution faults. Honored by graph::CompiledGraph::Run;
  // vm::Run itself ignores it (callers pick the engine before dispatching).
  bool force_interp = false;
  // Worker pool for kParallel chunks. nullptr = the lazily-created process-wide pool.
  // The serving scheduler (src/serve) passes its own pool here so request-level jobs
  // and intra-kernel chunks multiplex over the same threads; a thread that waits on
  // chunk futures helps drain the pool (ThreadPool::TryRunOne), so submitting from a
  // pool worker cannot deadlock.
  ThreadPool* pool = nullptr;
  // Mid-run cancellation deadline, honored by graph::CompiledGraph::Run between
  // kernel invocations (throws graph::DeadlineExceededError once passed, bounding
  // tail work for requests popped just before their deadline). The per-kernel
  // engines themselves do not poll it. max() = no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

// Executes a compiled program with `args` bound positionally to the function arguments.
void Run(const Program& program, const std::vector<BufferBinding>& args,
         const ExecOptions& options = {});

// Compile-with-cache + execute, used by the RunLowered dispatcher. Programs are cached
// per function body so repeated runs skip compilation. Returns false when the function
// cannot be compiled (caller should interpret).
bool RunLoweredVM(const LoweredFunc& func, const std::vector<BufferBinding>& args);

// Introspection (tests, benches, docs).
int ProgramNumInstructions(const Program& program);
int ProgramNumRegisters(const Program& program);
bool ProgramHasParallel(const Program& program);
// True when the program contains SIMD vector opcodes (a vectorized schedule actually
// compiled to the vector execution path instead of running scalar).
bool ProgramHasVector(const Program& program);

// Static opcode statistics plus how often each specialization fired during
// compilation. Tests assert on these to pin that the passes actually run (e.g. a
// fully-unrolled kernel has zero jumps); benches report them alongside wall-clock.
struct ProgramStats {
  int num_instructions = 0;
  int num_registers = 0;
  int jumps = 0;      // kJmp + kJmpIfZero + kJmpGeI
  int int_muls = 0;   // kMulI
  int movs = 0;       // kMov
  int loads = 0;      // scalar + vector loads
  int stores = 0;     // scalar + vector stores
  // Specialization effect counters:
  int unrolled_loops = 0;      // IR loops fully unrolled (SpecializeLoops)
  int hoisted_lets = 0;        // invariant LetStmt bindings hoisted (SpecializeLoops)
  int csed_muls = 0;           // recurring loop-var multiplies bound per iteration
  int strength_reduced = 0;    // loop-var multiplies turned into increments
  int peephole_removed = 0;    // instructions deleted by the peephole sweep
};
ProgramStats GetProgramStats(const Program& program);

}  // namespace vm
}  // namespace tvmcpp

#endif  // SRC_VM_VM_H_
