#include "src/vm/vm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include <atomic>

#include "src/ir/functor.h"
#include "src/ir/intrin_table.h"
#include "src/ir/printer.h"
#include "src/ir/simplify.h"
#include "src/runtime/threadpool.h"
#include "src/support/failpoint.h"
#include "src/support/float16.h"

namespace tvmcpp {
namespace vm {

namespace {

// ---------------------------------------------------------------------------
// Program representation
// ---------------------------------------------------------------------------

// A register holds a scalar as both representations; the statically known type of the
// producing instruction decides which field is meaningful (mirrors interp's Value).
struct VMValue {
  double f = 0;
  int64_t i = 0;
};

// Storage kind of a buffer element, derived from its DataType exactly like the
// interpreter's widened layout (InterpElementBytes): floats are stored as float32
// (float16 only rounds on store), ints as int8/int32/int64.
enum ElemKind : uint8_t { kF32, kF16, kI8, kI32, kI64 };

enum class Op : uint8_t {
  kMov,         // r[dst] = r[a]
  kIntToFloat,  // r[dst].f = (double)r[a].i
  kFloatToInt,  // r[dst].i = (int64_t)r[a].f
  kWrapInt,     // r[dst].i = r[a].i wrapped to `bits` bits, sign-extended iff flag
  kQuantF16,    // r[dst].f = QuantizeFloat16((float)r[a].f)
  kAddI, kAddF, kSubI, kSubF, kMulI, kMulF,
  kDivF, kFloorDivI, kFloorModI,
  kMinI, kMinF, kMaxI, kMaxF,
  kEqI, kEqF, kNeI, kNeF, kLtI, kLtF, kLeI, kLeF, kGtI, kGtF, kGeI, kGeF,
  kAnd, kOr, kNot,  // boolean ops over int truthiness
  kBoolF,           // r[dst].i = r[a].f != 0
  kJmp,             // pc = target
  kJmpIfZero,       // pc = r[a].i == 0 ? target : pc + 1
  kJmpGeI,          // pc = r[a].i >= r[b].i ? target : pc + 1 (loop back-edge test)
  kIncI,            // ++r[dst].i
  kLoadF32, kLoadI8, kLoadI32, kLoadI64,             // r[dst] = buf[idx][r[a].i]
  kStoreF32, kStoreF16, kStoreI8, kStoreI32, kStoreI64,  // buf[idx][r[b].i] = r[a]
  kAlloc,        // (re)allocate slot idx with r[a].i elements of kind flag, zero-filled
  kCallUnary,    // r[dst].f = mathfn[flag](r[a].f)
  kPopcount,     // r[dst].i = popcount((uint64_t)r[a].i)
  kTensorIntrin, // run tensor-intrinsic descriptor idx
  kParFor,       // chunk parallel loop descriptor idx across the thread pool
  kAssert,       // CHECK(r[a].i != 0), message idx
  // --- SIMD vector opcodes over the vector register file -------------------------
  // Vector operands (dst/a/b unless noted) index the separate vector file; `lanes`
  // gives the lane-group width. Lane loops are plain element-wise strides so the
  // compiler auto-vectorizes them to host SIMD.
  kVRamp,        // v[dst+l].i = r[a].i + l * r[b].i       (a, b scalar regs)
  kVBroadcast,   // v[dst+l] = r[a]                        (a scalar reg; copies cell)
  kVMov,         // v[dst+l] = v[a+l]
  kVIntToFloat, kVFloatToInt, kVBoolF, kVNot, kVQuantF16,  // lane-wise conversions
  kVWrapInt,     // lane-wise kWrapInt (bits, signedness flag)
  kVAddI, kVAddF, kVSubI, kVSubF, kVMulI, kVMulF,
  kVDivF, kVFloorDivI, kVFloorModI,
  kVMinI, kVMinF, kVMaxI, kVMaxF,
  kVEqI, kVEqF, kVNeI, kVNeF, kVLtI, kVLtF, kVLeI, kVLeF, kVGtI, kVGtF, kVGeI, kVGeF,
  kVAnd, kVOr,
  kVSelect,      // v[dst+l] = v[idx+l].i != 0 ? v[a+l] : v[b+l]
  kVCallUnary,   // v[dst+l].f = mathfn[flag](v[a+l].f)
  kVPopcount,    // v[dst+l].i = popcount(v[a+l].i)
  kVLoadF32, kVLoadI8, kVLoadI32, kVLoadI64,
                 // gather: v[dst+l] = buf[idx][v[a+l].i]; flag bit0: predicate in
                 // v[b+..] masks lanes (masked lanes read typed zero, no bounds check)
  kVStoreF32, kVStoreF16, kVStoreI8, kVStoreI32, kVStoreI64,
                 // scatter: buf[idx][v[b+l].i] = v[a+l]; flag bit0: predicate in
                 // v[dst+..] masks lanes (masked lanes are skipped entirely)
};

// Unary math intrinsics use the shared name -> UnaryMathFn table
// (src/ir/intrin_table.h); kCallUnary/kVCallUnary carry the tag in `flag` and
// evaluate through the same EvalUnaryMathFn as the interpreter.

struct Instr {
  Op op;
  uint8_t flag = 0;   // ElemKind for kAlloc, UnaryFn for kCallUnary, signedness for
                      // kWrapInt, predicate-present bit for kVLoad*/kVStore*
  int16_t bits = 0;   // kWrapInt/kVWrapInt: target bit width
  int32_t dst = 0;
  int32_t a = 0;
  int32_t b = 0;
  int32_t idx = 0;    // buffer slot, jump target, descriptor index, or kVSelect cond
  int32_t lanes = 0;  // lane-group width of vector opcodes (0 for scalar opcodes)
};

// Tensorized hardware intrinsic (fill/copy/mac category, see interp's ExecTensorIntrin).
struct TensorIntrinDesc {
  uint8_t category;  // 0 fill, 1 copy, 2 mac
  int32_t nt;        // number of tensorized dims
  std::vector<int32_t> buf_slot;    // per buffer (output first)
  std::vector<int32_t> base_reg;    // per buffer
  std::vector<int32_t> stride_reg;  // num_buffers * nt, row-major per buffer
  std::vector<int32_t> extent_reg;  // nt
};

struct ParForDesc {
  int32_t loop_reg = 0;
  int32_t min_reg = 0;
  int32_t bound_reg = 0;
  int32_t body_begin = 0;
  int32_t body_end = 0;
};

}  // namespace

struct Program {
  std::string name;
  std::vector<Instr> code;
  std::vector<VMValue> reg_init;  // initial register image (constants pre-folded)
  int32_t num_vregs = 0;          // size of the vector register file (lane cells)
  bool has_vector = false;        // program contains SIMD vector opcodes
  int32_t num_args = 0;
  int32_t num_buffer_slots = 0;
  std::vector<uint8_t> arg_kind;  // ElemKind per argument slot
  std::vector<TensorIntrinDesc> intrins;
  std::vector<ParForDesc> parfors;
  std::vector<std::string> messages;
  bool has_parallel = false;
  // Loop-specialization effect counters (see vm::ProgramStats).
  int spec_unrolled_loops = 0;
  int spec_hoisted_lets = 0;
  int spec_csed_muls = 0;
  int spec_strength_reduced = 0;
  int spec_peephole_removed = 0;
};

namespace {

ElemKind ElemKindOf(DataType t) {
  if (t.is_float()) {
    return t.bits() == 16 ? kF16 : kF32;
  }
  if (t.bits() <= 8) {
    return kI8;
  }
  if (t.bits() <= 32) {
    return kI32;
  }
  return kI64;
}

// ---------------------------------------------------------------------------
// Compiler: LoweredFunc body -> Program
// ---------------------------------------------------------------------------

class Compiler {
 public:
  Compiler(const LoopSpecializeOptions& spec, const LoopSpecializeStats& ir_stats)
      : spec_(spec) {
    prog_.spec_unrolled_loops = ir_stats.unrolled_loops;
    prog_.spec_hoisted_lets = ir_stats.hoisted_lets;
    prog_.spec_csed_muls = ir_stats.csed_muls;
  }

  std::shared_ptr<const Program> Compile(const LoweredFunc& func, const Stmt& body) {
    prog_.name = func.name;
    prog_.num_args = static_cast<int32_t>(func.args.size());
    for (const BufferArg& arg : func.args) {
      int32_t slot = NewBufferSlot(arg.dtype);
      buf_of_[arg.var.get()] = slot;
      prog_.arg_kind.push_back(static_cast<uint8_t>(ElemKindOf(arg.dtype)));
    }
    CompileStmt(body);
    if (!ok_) {
      LOG(INFO) << "vm: " << func.name << " falls back to the interpreter: "
                << fail_reason_;
      return nullptr;
    }
    Finalize();
    return std::make_shared<const Program>(std::move(prog_));
  }

 private:
  struct BinOps {  // int/float opcode pair for a binary expression kind
    Op int_op;
    Op float_op;
  };

  // --- register allocation ---------------------------------------------------
  // Scoped registers (loop vars, lets, expression temps) come from a watermark
  // allocator: each CompileExpr nets at most one register at its entry watermark, and
  // enclosing scopes restore the watermark when bindings die. Constants get negative
  // placeholder ids, rewritten to dense slots above the scoped-register high-water mark
  // in Finalize() and materialized in the initial register image.
  int32_t AllocReg() {
    int32_t r = top_++;
    if (top_ > max_top_) {
      max_top_ = top_;
    }
    return r;
  }

  int32_t ConstI(int64_t v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return ConstReg(false, bits);
  }

  int32_t ConstF(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return ConstReg(true, bits);
  }

  int32_t ConstReg(bool is_float, uint64_t bits) {
    auto& ids = is_float ? float_const_ids_ : int_const_ids_;
    auto it = ids.find(bits);
    if (it != ids.end()) {
      return it->second;
    }
    VMValue v;
    if (is_float) {
      std::memcpy(&v.f, &bits, sizeof(v.f));
    } else {
      std::memcpy(&v.i, &bits, sizeof(v.i));
    }
    const_vals_.push_back(v);
    int32_t id = -static_cast<int32_t>(const_vals_.size());  // -1, -2, ...
    ids[bits] = id;
    return id;
  }

  int32_t NewBufferSlot(DataType dtype) {
    buf_kind_.push_back(ElemKindOf(dtype));
    return prog_.num_buffer_slots++;
  }

  // --- emission --------------------------------------------------------------
  int32_t Emit(Instr in) {
    prog_.code.push_back(in);
    return static_cast<int32_t>(prog_.code.size()) - 1;
  }

  int32_t Here() const { return static_cast<int32_t>(prog_.code.size()); }

  void PatchTarget(int32_t at, int32_t target) {
    prog_.code[static_cast<size_t>(at)].idx = target;
  }

  void Fail(const std::string& why) {
    if (ok_) {
      ok_ = false;
      fail_reason_ = why;
    }
  }

  // Emits a conversion making `r` hold a float (interp's Value::AsF promotion).
  int32_t EnsureFloat(int32_t r, bool is_float) {
    if (is_float) {
      return r;
    }
    int32_t dst = AllocReg();
    Emit({Op::kIntToFloat, 0, 0, dst, r, 0, 0});
    return dst;
  }

  // Emits a conversion making `r` hold an int (interp's Value::AsI truncation).
  int32_t EnsureInt(int32_t r, bool is_float) {
    if (!is_float) {
      return r;
    }
    int32_t dst = AllocReg();
    Emit({Op::kFloatToInt, 0, 0, dst, r, 0, 0});
    return dst;
  }

  // Emits a conversion making `r` int-truthy (interp's Value::AsBool).
  int32_t EnsureBool(int32_t r, bool is_float) {
    if (!is_float) {
      return r;
    }
    int32_t dst = AllocReg();
    Emit({Op::kBoolF, 0, 0, dst, r, 0, 0});
    return dst;
  }

  // --- vector registers -------------------------------------------------------
  // The vector file is a separate watermark-allocated array of lane cells; a vector
  // register of width L occupies L consecutive cells. Vector registers never hold
  // constants, so Finalize()'s negative-id rewriting does not apply to them.
  int32_t AllocVReg(int lanes) {
    int32_t r = vtop_;
    vtop_ += lanes;
    if (vtop_ > vmax_top_) {
      vmax_top_ = vtop_;
    }
    return r;
  }

  int32_t EmitV(Instr in) {
    prog_.has_vector = true;
    return Emit(in);
  }

  int32_t EnsureVFloat(int32_t v, bool is_float, int lanes) {
    if (is_float) {
      return v;
    }
    int32_t dst = AllocVReg(lanes);
    EmitV({Op::kVIntToFloat, 0, 0, dst, v, 0, 0, lanes});
    return dst;
  }

  int32_t EnsureVInt(int32_t v, bool is_float, int lanes) {
    if (!is_float) {
      return v;
    }
    int32_t dst = AllocVReg(lanes);
    EmitV({Op::kVFloatToInt, 0, 0, dst, v, 0, 0, lanes});
    return dst;
  }

  int32_t EnsureVBool(int32_t v, bool is_float, int lanes) {
    if (!is_float) {
      return v;
    }
    int32_t dst = AllocVReg(lanes);
    EmitV({Op::kVBoolF, 0, 0, dst, v, 0, 0, lanes});
    return dst;
  }

  // --- variable / buffer scoping ---------------------------------------------
  struct VarBinding {
    int32_t reg;
    bool is_float;
  };

  class BindVar {
   public:
    BindVar(Compiler* c, const VarNode* v, VarBinding b) : c_(c), v_(v) {
      auto it = c_->var_of_.find(v);
      had_old_ = it != c_->var_of_.end();
      if (had_old_) {
        old_ = it->second;
      }
      c_->var_of_[v] = b;
    }
    ~BindVar() {
      if (had_old_) {
        c_->var_of_[v_] = old_;
      } else {
        c_->var_of_.erase(v_);
      }
    }

   private:
    Compiler* c_;
    const VarNode* v_;
    VarBinding old_{};
    bool had_old_ = false;
  };

  class BindBuf {
   public:
    BindBuf(Compiler* c, const VarNode* v, int32_t slot) : c_(c), v_(v) {
      auto it = c_->buf_of_.find(v);
      had_old_ = it != c_->buf_of_.end();
      if (had_old_) {
        old_ = it->second;
      }
      c_->buf_of_[v] = slot;
    }
    ~BindBuf() {
      if (had_old_) {
        c_->buf_of_[v_] = old_;
      } else {
        c_->buf_of_.erase(v_);
      }
    }

   private:
    Compiler* c_;
    const VarNode* v_;
    int32_t old_ = 0;
    bool had_old_ = false;
  };

  int32_t BufferSlotOf(const VarNode* v) {
    auto it = buf_of_.find(v);
    if (it == buf_of_.end()) {
      Fail("unbound buffer " + v->name);
      return 0;
    }
    return it->second;
  }

  // --- expressions -----------------------------------------------------------
  // Compiles `e`; returns the register holding the result and sets *is_float to the
  // statically known value representation (mirrors the runtime is_float flag of the
  // interpreter's Value, which is fully determined by the expression tree).
  int32_t CompileExpr(const Expr& e, bool* is_float) {
    if (!ok_) {
      *is_float = false;
      return 0;
    }
    switch (e->kind) {
      case ExprKind::kIntImm:
        *is_float = false;
        return ConstI(static_cast<const IntImmNode*>(e.get())->value);
      case ExprKind::kFloatImm:
        *is_float = true;
        return ConstF(static_cast<const FloatImmNode*>(e.get())->value);
      case ExprKind::kStringImm:
        *is_float = false;
        return ConstI(0);
      case ExprKind::kVar: {
        const auto* v = static_cast<const VarNode*>(e.get());
        auto it = var_of_.find(v);
        if (it == var_of_.end()) {
          Fail("unbound variable " + v->name);
          *is_float = false;
          return 0;
        }
        *is_float = it->second.is_float;
        return it->second.reg;
      }
      case ExprKind::kCast:
        return CompileCast(static_cast<const CastNode*>(e.get()), is_float);
      case ExprKind::kNot: {
        const auto* n = static_cast<const NotNode*>(e.get());
        int32_t mark = top_;
        bool fa = false;
        int32_t ra = CompileExpr(n->a, &fa);
        ra = EnsureBool(ra, fa);
        top_ = mark;
        int32_t dst = AllocReg();
        Emit({Op::kNot, 0, 0, dst, ra, 0, 0});
        *is_float = false;
        return dst;
      }
      case ExprKind::kSelect: {
        const auto* n = static_cast<const SelectNode*>(e.get());
        return CompileConditional(n->condition, n->true_value, n->false_value, is_float);
      }
      case ExprKind::kLoad:
        return CompileLoad(static_cast<const LoadNode*>(e.get()), is_float);
      case ExprKind::kLet: {
        const auto* n = static_cast<const LetNode*>(e.get());
        bool fv = false;
        int32_t rv = CompileExpr(n->value, &fv);
        BindVar bind(this, n->var.get(), VarBinding{rv, fv});
        return CompileExpr(n->body, is_float);
      }
      case ExprKind::kCall:
        return CompileCall(static_cast<const CallNode*>(e.get()), is_float);
      case ExprKind::kRamp:
      case ExprKind::kBroadcast:
      case ExprKind::kReduce:
      case ExprKind::kTensorRead:
        Fail("vm cannot evaluate " + ToString(e));
        *is_float = false;
        return 0;
      default: {
        const auto* b = dynamic_cast<const BinaryNode*>(e.get());
        if (b == nullptr) {
          Fail("vm cannot evaluate " + ToString(e));
          *is_float = false;
          return 0;
        }
        return CompileBinary(e->kind, b, is_float);
      }
    }
  }

  int32_t CompileBinary(ExprKind kind, const BinaryNode* n, bool* is_float) {
    int32_t mark = top_;
    bool fa = false, fb = false;
    int32_t ra = CompileExpr(n->a, &fa);
    int32_t rb = CompileExpr(n->b, &fb);
    bool fl = fa || fb;
    Op op;
    bool out_float = false;
    switch (kind) {
      case ExprKind::kAdd: op = fl ? Op::kAddF : Op::kAddI; out_float = fl; break;
      case ExprKind::kSub: op = fl ? Op::kSubF : Op::kSubI; out_float = fl; break;
      case ExprKind::kMul: op = fl ? Op::kMulF : Op::kMulI; out_float = fl; break;
      case ExprKind::kDiv: op = fl ? Op::kDivF : Op::kFloorDivI; out_float = fl; break;
      case ExprKind::kMod: op = Op::kFloorModI; break;  // interp: FloorMod(AsI, AsI)
      case ExprKind::kMin: op = fl ? Op::kMinF : Op::kMinI; out_float = fl; break;
      case ExprKind::kMax: op = fl ? Op::kMaxF : Op::kMaxI; out_float = fl; break;
      case ExprKind::kEQ: op = fl ? Op::kEqF : Op::kEqI; break;
      case ExprKind::kNE: op = fl ? Op::kNeF : Op::kNeI; break;
      case ExprKind::kLT: op = fl ? Op::kLtF : Op::kLtI; break;
      case ExprKind::kLE: op = fl ? Op::kLeF : Op::kLeI; break;
      case ExprKind::kGT: op = fl ? Op::kGtF : Op::kGtI; break;
      case ExprKind::kGE: op = fl ? Op::kGeF : Op::kGeI; break;
      case ExprKind::kAnd: op = Op::kAnd; break;
      case ExprKind::kOr: op = Op::kOr; break;
      default:
        Fail("bad binary kind");
        *is_float = false;
        return 0;
    }
    if (kind == ExprKind::kMod) {
      ra = EnsureInt(ra, fa);
      rb = EnsureInt(rb, fb);
    } else if (kind == ExprKind::kAnd || kind == ExprKind::kOr) {
      ra = EnsureBool(ra, fa);
      rb = EnsureBool(rb, fb);
    } else if (fl) {
      // Interp promotes mixed int/float operands via AsF. Note kAdd/kSub/kMul/kMin/kMax
      // with two ints use the raw .i fields, so no conversion is needed there.
      ra = EnsureFloat(ra, fa);
      rb = EnsureFloat(rb, fb);
    }
    top_ = mark;
    int32_t dst = AllocReg();
    Emit({op, 0, 0, dst, ra, rb, 0});
    *is_float = out_float;
    return dst;
  }

  int32_t CompileCast(const CastNode* n, bool* is_float) {
    int32_t mark = top_;
    bool fv = false;
    int32_t rv = CompileExpr(n->value, &fv);
    if (n->dtype.is_float()) {
      rv = EnsureFloat(rv, fv);
      top_ = mark;
      int32_t dst = AllocReg();
      if (n->dtype.bits() == 16) {
        Emit({Op::kQuantF16, 0, 0, dst, rv, 0, 0});
      } else {
        Emit({Op::kMov, 0, 0, dst, rv, 0, 0});
      }
      *is_float = true;
      return dst;
    }
    rv = EnsureInt(rv, fv);
    top_ = mark;
    int32_t dst = AllocReg();
    if (n->dtype.bits() < 64 && !n->dtype.is_handle()) {
      Emit({Op::kWrapInt, static_cast<uint8_t>(n->dtype.is_int() ? 1 : 0),
            static_cast<int16_t>(n->dtype.bits()), dst, rv, 0, 0});
    } else {
      Emit({Op::kMov, 0, 0, dst, rv, 0, 0});
    }
    *is_float = false;
    return dst;
  }

  // Lazy two-armed conditional (Select and the if_then_else intrinsic share interp's
  // evaluate-one-branch semantics). Mixed-representation branches are unified to float.
  int32_t CompileConditional(const Expr& cond, const Expr& tval, const Expr& fval,
                             bool* is_float) {
    int32_t dst = AllocReg();
    int32_t entry = top_;
    bool fc = false;
    int32_t rc = CompileExpr(cond, &fc);
    rc = EnsureBool(rc, fc);
    int32_t jz = Emit({Op::kJmpIfZero, 0, 0, 0, rc, 0, 0});
    top_ = entry;
    bool ft = false, ff = false;
    // Pre-scan both branch types so each branch can be promoted consistently.
    bool out_float = StaticTypeOf(tval) || StaticTypeOf(fval);
    int32_t rt = CompileExpr(tval, &ft);
    if (out_float) {
      rt = EnsureFloat(rt, ft);
    }
    Emit({Op::kMov, 0, 0, dst, rt, 0, 0});
    int32_t jend = Emit({Op::kJmp, 0, 0, 0, 0, 0, 0});
    PatchTarget(jz, Here());
    top_ = entry;
    int32_t rf = CompileExpr(fval, &ff);
    if (out_float) {
      rf = EnsureFloat(rf, ff);
    }
    Emit({Op::kMov, 0, 0, dst, rf, 0, 0});
    PatchTarget(jend, Here());
    top_ = entry;
    *is_float = out_float;
    return dst;
  }

  // Statically computes interp's runtime is_float flag for `e` without emitting code.
  bool StaticTypeOf(const Expr& e) {
    switch (e->kind) {
      case ExprKind::kIntImm:
      case ExprKind::kStringImm:
        return false;
      case ExprKind::kFloatImm:
        return true;
      case ExprKind::kVar: {
        auto it = var_of_.find(static_cast<const VarNode*>(e.get()));
        return it != var_of_.end() && it->second.is_float;
      }
      case ExprKind::kCast:
        return e->dtype.is_float();
      case ExprKind::kNot:
        return false;
      case ExprKind::kRamp:
        return false;
      case ExprKind::kBroadcast:
        return StaticTypeOf(static_cast<const BroadcastNode*>(e.get())->value);
      case ExprKind::kSelect: {
        const auto* n = static_cast<const SelectNode*>(e.get());
        return StaticTypeOf(n->true_value) || StaticTypeOf(n->false_value);
      }
      case ExprKind::kLoad:
        return e->dtype.is_float();
      case ExprKind::kLet: {
        // Register the let binding so the body scan sees it, mirroring CompileExpr.
        const auto* n = static_cast<const LetNode*>(e.get());
        BindVar bind(this, n->var.get(), VarBinding{0, StaticTypeOf(n->value)});
        return StaticTypeOf(n->body);
      }
      case ExprKind::kCall: {
        const auto* n = static_cast<const CallNode*>(e.get());
        if (n->name == "if_then_else") {
          return StaticTypeOf(n->args[1]) || StaticTypeOf(n->args[2]);
        }
        return IsUnaryMathIntrin(n->name);
      }
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kMul:
      case ExprKind::kDiv:
      case ExprKind::kMin:
      case ExprKind::kMax: {
        const auto* b = static_cast<const BinaryNode*>(e.get());
        return StaticTypeOf(b->a) || StaticTypeOf(b->b);
      }
      default:
        return false;  // comparisons, mod, and/or produce ints
    }
  }

  int32_t CompileLoad(const LoadNode* n, bool* is_float) {
    int32_t slot = BufferSlotOf(n->buffer_var.get());
    if (!ok_) {
      *is_float = false;
      return 0;
    }
    ElemKind kind = buf_kind_[static_cast<size_t>(slot)];
    bool buf_float = kind == kF32 || kind == kF16;
    if (n->dtype.is_float() != buf_float || n->dtype.lanes() != 1) {
      Fail("vm load type mismatch on " + n->buffer_var->name);
      *is_float = false;
      return 0;
    }
    int32_t dst = AllocReg();
    int32_t entry = top_;
    int32_t jz = -1;
    if (n->predicate != nullptr) {
      bool fp = false;
      int32_t rp = CompileExpr(n->predicate, &fp);
      rp = EnsureBool(rp, fp);
      jz = Emit({Op::kJmpIfZero, 0, 0, 0, rp, 0, 0});
      top_ = entry;
    }
    bool fi = false;
    int32_t ri = CompileExpr(n->index, &fi);
    ri = EnsureInt(ri, fi);
    Op op = buf_float ? Op::kLoadF32
                      : (kind == kI8 ? Op::kLoadI8 : (kind == kI32 ? Op::kLoadI32
                                                                   : Op::kLoadI64));
    Emit({op, 0, 0, dst, ri, 0, slot});
    if (jz >= 0) {
      // Masked-off lanes read as typed zero, exactly like the interpreter.
      int32_t jend = Emit({Op::kJmp, 0, 0, 0, 0, 0, 0});
      PatchTarget(jz, Here());
      int32_t zero = buf_float ? ConstF(0) : ConstI(0);
      Emit({Op::kMov, 0, 0, dst, zero, 0, 0});
      PatchTarget(jend, Here());
    }
    top_ = entry;
    *is_float = buf_float;
    return dst;
  }

  int32_t CompileCall(const CallNode* n, bool* is_float) {
    const std::string& name = n->name;
    if (name == "if_then_else") {
      return CompileConditional(n->args[0], n->args[1], n->args[2], is_float);
    }
    UnaryMathFn fn;
    if (LookupUnaryMathFn(name, &fn)) {
      int32_t mark = top_;
      bool fa = false;
      int32_t ra = CompileExpr(n->args[0], &fa);
      ra = EnsureFloat(ra, fa);
      top_ = mark;
      int32_t dst = AllocReg();
      Emit({Op::kCallUnary, static_cast<uint8_t>(fn), 0, dst, ra, 0, 0});
      *is_float = true;
      return dst;
    }
    if (name == "popcount") {
      int32_t mark = top_;
      bool fa = false;
      int32_t ra = CompileExpr(n->args[0], &fa);
      ra = EnsureInt(ra, fa);
      top_ = mark;
      int32_t dst = AllocReg();
      Emit({Op::kPopcount, 0, 0, dst, ra, 0, 0});
      *is_float = false;
      return dst;
    }
    if (name == kSyncIntrin || name == kPushDepIntrin || name == kPopDepIntrin) {
      *is_float = false;
      return ConstI(0);  // synchronization: no-op under serial/data-parallel execution
    }
    if (CompileTensorIntrin(n)) {
      *is_float = false;
      return ConstI(0);
    }
    Fail("vm: unknown call " + name);
    *is_float = false;
    return 0;
  }

  // --- vector expressions -----------------------------------------------------
  // Compiles `e` to a vector register of width `lanes` (lane-invariant scalar
  // subexpressions compile once and broadcast). Mirrors the interpreter's lane-wise
  // evaluation: per-lane values are produced by exactly the scalar value model.
  int32_t CompileVecExpr(const Expr& e, int lanes, bool* is_float) {
    if (!ok_) {
      *is_float = false;
      return 0;
    }
    if (e->dtype.lanes() == 1) {
      int32_t mark = top_;
      bool f = false;
      int32_t r = CompileExpr(e, &f);
      top_ = mark;
      int32_t dst = AllocVReg(lanes);
      EmitV({Op::kVBroadcast, 0, 0, dst, r, 0, 0, lanes});
      *is_float = f;
      return dst;
    }
    if (e->dtype.lanes() != lanes) {
      Fail("vector width mismatch: " + ToString(e));
      *is_float = false;
      return 0;
    }
    switch (e->kind) {
      case ExprKind::kIntImm: {
        // Vector-typed immediate (e.g. a folded boolx8 constant): broadcast.
        int32_t dst = AllocVReg(lanes);
        EmitV({Op::kVBroadcast, 0, 0, dst,
               ConstI(static_cast<const IntImmNode*>(e.get())->value), 0, 0, lanes});
        *is_float = false;
        return dst;
      }
      case ExprKind::kFloatImm: {
        int32_t dst = AllocVReg(lanes);
        EmitV({Op::kVBroadcast, 0, 0, dst,
               ConstF(static_cast<const FloatImmNode*>(e.get())->value), 0, 0, lanes});
        *is_float = true;
        return dst;
      }
      case ExprKind::kRamp: {
        const auto* n = static_cast<const RampNode*>(e.get());
        int32_t smark = top_;
        bool fb = false, fs = false;
        int32_t rb = EnsureInt(CompileExpr(n->base, &fb), fb);
        int32_t rs = EnsureInt(CompileExpr(n->stride, &fs), fs);
        top_ = smark;
        int32_t dst = AllocVReg(lanes);
        EmitV({Op::kVRamp, 0, 0, dst, rb, rs, 0, lanes});
        *is_float = false;
        return dst;
      }
      case ExprKind::kBroadcast:
        return CompileVecExpr(static_cast<const BroadcastNode*>(e.get())->value, lanes,
                              is_float);
      case ExprKind::kCast:
        return CompileVecCast(static_cast<const CastNode*>(e.get()), lanes, is_float);
      case ExprKind::kNot: {
        const auto* n = static_cast<const NotNode*>(e.get());
        int32_t vmark = vtop_;
        int32_t smark = top_;
        bool fa = false;
        int32_t va = CompileVecExpr(n->a, lanes, &fa);
        va = EnsureVBool(va, fa, lanes);
        vtop_ = vmark;
        top_ = smark;
        int32_t dst = AllocVReg(lanes);
        EmitV({Op::kVNot, 0, 0, dst, va, 0, 0, lanes});
        *is_float = false;
        return dst;
      }
      case ExprKind::kSelect: {
        const auto* n = static_cast<const SelectNode*>(e.get());
        return CompileVecSelect(n->condition, n->true_value, n->false_value, lanes,
                                is_float);
      }
      case ExprKind::kLoad:
        return CompileVecLoad(static_cast<const LoadNode*>(e.get()), lanes, is_float);
      case ExprKind::kLet: {
        const auto* n = static_cast<const LetNode*>(e.get());
        if (n->value->dtype.lanes() != 1) {
          Fail("vm: vector-valued let " + n->var->name);
          *is_float = false;
          return 0;
        }
        bool fv = false;
        int32_t rv = CompileExpr(n->value, &fv);
        BindVar bind(this, n->var.get(), VarBinding{rv, fv});
        return CompileVecExpr(n->body, lanes, is_float);
      }
      case ExprKind::kCall:
        return CompileVecCall(static_cast<const CallNode*>(e.get()), lanes, is_float);
      default: {
        const auto* b = dynamic_cast<const BinaryNode*>(e.get());
        if (b == nullptr) {
          Fail("vm cannot vector-evaluate " + ToString(e));
          *is_float = false;
          return 0;
        }
        return CompileVecBinary(e->kind, b, lanes, is_float);
      }
    }
  }

  int32_t CompileVecBinary(ExprKind kind, const BinaryNode* n, int lanes,
                           bool* is_float) {
    int32_t vmark = vtop_;
    int32_t smark = top_;
    bool fa = false, fb = false;
    int32_t va = CompileVecExpr(n->a, lanes, &fa);
    int32_t vb = CompileVecExpr(n->b, lanes, &fb);
    bool fl = fa || fb;
    Op op;
    bool out_float = false;
    switch (kind) {
      case ExprKind::kAdd: op = fl ? Op::kVAddF : Op::kVAddI; out_float = fl; break;
      case ExprKind::kSub: op = fl ? Op::kVSubF : Op::kVSubI; out_float = fl; break;
      case ExprKind::kMul: op = fl ? Op::kVMulF : Op::kVMulI; out_float = fl; break;
      case ExprKind::kDiv: op = fl ? Op::kVDivF : Op::kVFloorDivI; out_float = fl; break;
      case ExprKind::kMod: op = Op::kVFloorModI; break;
      case ExprKind::kMin: op = fl ? Op::kVMinF : Op::kVMinI; out_float = fl; break;
      case ExprKind::kMax: op = fl ? Op::kVMaxF : Op::kVMaxI; out_float = fl; break;
      case ExprKind::kEQ: op = fl ? Op::kVEqF : Op::kVEqI; break;
      case ExprKind::kNE: op = fl ? Op::kVNeF : Op::kVNeI; break;
      case ExprKind::kLT: op = fl ? Op::kVLtF : Op::kVLtI; break;
      case ExprKind::kLE: op = fl ? Op::kVLeF : Op::kVLeI; break;
      case ExprKind::kGT: op = fl ? Op::kVGtF : Op::kVGtI; break;
      case ExprKind::kGE: op = fl ? Op::kVGeF : Op::kVGeI; break;
      case ExprKind::kAnd: op = Op::kVAnd; break;
      case ExprKind::kOr: op = Op::kVOr; break;
      default:
        Fail("bad vector binary kind");
        *is_float = false;
        return 0;
    }
    if (kind == ExprKind::kMod) {
      va = EnsureVInt(va, fa, lanes);
      vb = EnsureVInt(vb, fb, lanes);
    } else if (kind == ExprKind::kAnd || kind == ExprKind::kOr) {
      va = EnsureVBool(va, fa, lanes);
      vb = EnsureVBool(vb, fb, lanes);
    } else if (fl) {
      va = EnsureVFloat(va, fa, lanes);
      vb = EnsureVFloat(vb, fb, lanes);
    }
    vtop_ = vmark;
    top_ = smark;
    int32_t dst = AllocVReg(lanes);
    EmitV({op, 0, 0, dst, va, vb, 0, lanes});
    *is_float = out_float;
    return dst;
  }

  int32_t CompileVecCast(const CastNode* n, int lanes, bool* is_float) {
    int32_t vmark = vtop_;
    int32_t smark = top_;
    bool fv = false;
    int32_t vv = CompileVecExpr(n->value, lanes, &fv);
    if (n->dtype.is_float()) {
      vv = EnsureVFloat(vv, fv, lanes);
      vtop_ = vmark;
      top_ = smark;
      int32_t dst = AllocVReg(lanes);
      if (n->dtype.bits() == 16) {
        EmitV({Op::kVQuantF16, 0, 0, dst, vv, 0, 0, lanes});
      } else {
        EmitV({Op::kVMov, 0, 0, dst, vv, 0, 0, lanes});
      }
      *is_float = true;
      return dst;
    }
    vv = EnsureVInt(vv, fv, lanes);
    vtop_ = vmark;
    top_ = smark;
    int32_t dst = AllocVReg(lanes);
    if (n->dtype.bits() < 64 && !n->dtype.is_handle()) {
      EmitV({Op::kVWrapInt, static_cast<uint8_t>(n->dtype.is_int() ? 1 : 0),
             static_cast<int16_t>(n->dtype.bits()), dst, vv, 0, 0, lanes});
    } else {
      EmitV({Op::kVMov, 0, 0, dst, vv, 0, 0, lanes});
    }
    *is_float = false;
    return dst;
  }

  // Vector conditional: both arms are computed and lanes blended. The VectorizeLoop
  // pass has already pushed the condition into each arm's load predicates, so the
  // not-taken arm cannot trap; blended-away lane values are discarded, keeping the
  // result bitwise identical to the interpreter's lazy per-lane evaluation.
  int32_t CompileVecSelect(const Expr& cond, const Expr& tval, const Expr& fval,
                           int lanes, bool* is_float) {
    int32_t vmark = vtop_;
    int32_t smark = top_;
    bool fc = false, ft = false, ff = false;
    int32_t vc = CompileVecExpr(cond, lanes, &fc);
    vc = EnsureVBool(vc, fc, lanes);
    bool out_float = StaticTypeOf(tval) || StaticTypeOf(fval);
    int32_t vt = CompileVecExpr(tval, lanes, &ft);
    if (out_float) {
      vt = EnsureVFloat(vt, ft, lanes);
    }
    int32_t vf = CompileVecExpr(fval, lanes, &ff);
    if (out_float) {
      vf = EnsureVFloat(vf, ff, lanes);
    }
    vtop_ = vmark;
    top_ = smark;
    int32_t dst = AllocVReg(lanes);
    EmitV({Op::kVSelect, 0, 0, dst, vt, vf, vc, lanes});
    *is_float = out_float;
    return dst;
  }

  int32_t CompileVecLoad(const LoadNode* n, int lanes, bool* is_float) {
    int32_t slot = BufferSlotOf(n->buffer_var.get());
    if (!ok_) {
      *is_float = false;
      return 0;
    }
    ElemKind kind = buf_kind_[static_cast<size_t>(slot)];
    bool buf_float = kind == kF32 || kind == kF16;
    if (n->dtype.is_float() != buf_float) {
      Fail("vm vector load type mismatch on " + n->buffer_var->name);
      *is_float = false;
      return 0;
    }
    int32_t vmark = vtop_;
    int32_t smark = top_;
    bool has_pred = n->predicate != nullptr;
    int32_t vp = 0;
    if (has_pred) {
      bool fp = false;
      vp = CompileVecExpr(n->predicate, lanes, &fp);
      vp = EnsureVBool(vp, fp, lanes);
    }
    bool fi = false;
    int32_t vi = CompileVecExpr(n->index, lanes, &fi);
    vi = EnsureVInt(vi, fi, lanes);
    vtop_ = vmark;
    top_ = smark;
    int32_t dst = AllocVReg(lanes);
    Op op = buf_float ? Op::kVLoadF32
                      : (kind == kI8 ? Op::kVLoadI8
                                     : (kind == kI32 ? Op::kVLoadI32 : Op::kVLoadI64));
    EmitV({op, static_cast<uint8_t>(has_pred ? 1 : 0), 0, dst, vi, vp, slot, lanes});
    *is_float = buf_float;
    return dst;
  }

  int32_t CompileVecCall(const CallNode* n, int lanes, bool* is_float) {
    const std::string& name = n->name;
    if (name == "if_then_else" && n->args.size() == 3) {
      return CompileVecSelect(n->args[0], n->args[1], n->args[2], lanes, is_float);
    }
    UnaryMathFn fn;
    if (LookupUnaryMathFn(name, &fn)) {
      int32_t vmark = vtop_;
      int32_t smark = top_;
      bool fa = false;
      int32_t va = CompileVecExpr(n->args[0], lanes, &fa);
      va = EnsureVFloat(va, fa, lanes);
      vtop_ = vmark;
      top_ = smark;
      int32_t dst = AllocVReg(lanes);
      EmitV({Op::kVCallUnary, static_cast<uint8_t>(fn), 0, dst, va, 0, 0, lanes});
      *is_float = true;
      return dst;
    }
    if (name == "popcount") {
      int32_t vmark = vtop_;
      int32_t smark = top_;
      bool fa = false;
      int32_t va = CompileVecExpr(n->args[0], lanes, &fa);
      va = EnsureVInt(va, fa, lanes);
      vtop_ = vmark;
      top_ = smark;
      int32_t dst = AllocVReg(lanes);
      EmitV({Op::kVPopcount, 0, 0, dst, va, 0, 0, lanes});
      *is_float = false;
      return dst;
    }
    Fail("vm: unknown vector call " + name);
    *is_float = false;
    return 0;
  }

  // Mirrors the interpreter's generic tensor-intrinsic ABI (see interp.cc): for each
  // buffer (output first): (handle, base, stride per dim...), then the extents.
  bool CompileTensorIntrin(const CallNode* n) {
    const TensorIntrinInfo* info = LookupTensorIntrin(n->name);
    if (info == nullptr) {
      return false;
    }
    int num_buffers = info->num_buffers;
    uint8_t cat = static_cast<uint8_t>(info->category);
    int total = static_cast<int>(n->args.size());
    int nt;
    if (!DecodeTensorIntrinArity(num_buffers, total, &nt)) {
      Fail("bad intrinsic arity for " + n->name);
      return true;
    }
    TensorIntrinDesc desc;
    desc.category = cat;
    desc.nt = nt;
    int32_t mark = top_;
    int pos = 0;
    for (int b = 0; b < num_buffers; ++b) {
      if (n->args[static_cast<size_t>(pos)]->kind != ExprKind::kVar) {
        Fail("tensor intrinsic expects a buffer handle");
        return true;
      }
      desc.buf_slot.push_back(
          BufferSlotOf(static_cast<const VarNode*>(n->args[static_cast<size_t>(pos)].get())));
      ++pos;
      bool f = false;
      int32_t r = CompileExpr(n->args[static_cast<size_t>(pos++)], &f);
      desc.base_reg.push_back(EnsureInt(r, f));
      for (int d = 0; d < nt; ++d) {
        r = CompileExpr(n->args[static_cast<size_t>(pos++)], &f);
        desc.stride_reg.push_back(EnsureInt(r, f));
      }
    }
    for (int d = 0; d < nt; ++d) {
      bool f = false;
      int32_t r = CompileExpr(n->args[static_cast<size_t>(pos++)], &f);
      desc.extent_reg.push_back(EnsureInt(r, f));
    }
    prog_.intrins.push_back(std::move(desc));
    Emit({Op::kTensorIntrin, 0, 0, 0, 0, 0,
          static_cast<int32_t>(prog_.intrins.size()) - 1});
    top_ = mark;
    return true;
  }

  // --- statements ------------------------------------------------------------
  void CompileStmt(const Stmt& s) {
    if (s == nullptr || !ok_) {
      return;
    }
    switch (s->kind) {
      case StmtKind::kLetStmt: {
        const auto* n = static_cast<const LetStmtNode*>(s.get());
        int32_t mark = top_;
        bool fv = false;
        int32_t rv = CompileExpr(n->value, &fv);
        {
          BindVar bind(this, n->var.get(), VarBinding{rv, fv});
          CompileStmt(n->body);
        }
        top_ = mark;
        break;
      }
      case StmtKind::kAttrStmt:
        CompileStmt(static_cast<const AttrStmtNode*>(s.get())->body);
        break;
      case StmtKind::kAssert: {
        const auto* n = static_cast<const AssertStmtNode*>(s.get());
        int32_t mark = top_;
        bool fc = false;
        int32_t rc = CompileExpr(n->condition, &fc);
        rc = EnsureBool(rc, fc);
        prog_.messages.push_back("assert failed: " + n->message);
        Emit({Op::kAssert, 0, 0, 0, rc, 0,
              static_cast<int32_t>(prog_.messages.size()) - 1});
        top_ = mark;
        CompileStmt(n->body);
        break;
      }
      case StmtKind::kStore:
        CompileStore(static_cast<const StoreNode*>(s.get()));
        break;
      case StmtKind::kAllocate: {
        const auto* n = static_cast<const AllocateNode*>(s.get());
        // lanes > 1 allocates widened scalar storage (lanes * product of extents),
        // exactly like the interpreter: element accesses stay flat scalar indices.
        int32_t slot = NewBufferSlot(n->dtype.element_of());
        int32_t mark = top_;
        int32_t size = ConstI(1);
        bool first = true;
        for (const Expr& e : n->extents) {
          bool f = false;
          int32_t r = EnsureInt(CompileExpr(e, &f), f);
          if (first) {
            size = r;
            first = false;
          } else {
            int32_t prod = AllocReg();
            Emit({Op::kMulI, 0, 0, prod, size, r, 0});
            size = prod;
          }
        }
        if (n->dtype.lanes() > 1) {
          int32_t widened = AllocReg();
          Emit({Op::kMulI, 0, 0, widened, size, ConstI(n->dtype.lanes()), 0});
          size = widened;
        }
        Emit({Op::kAlloc, static_cast<uint8_t>(ElemKindOf(n->dtype.element_of())), 0, 0,
              size, 0, slot});
        top_ = mark;
        {
          BindBuf bind(this, n->buffer_var.get(), slot);
          CompileStmt(n->body);
        }
        break;
      }
      case StmtKind::kFor:
        CompileFor(static_cast<const ForNode*>(s.get()));
        break;
      case StmtKind::kIfThenElse: {
        const auto* n = static_cast<const IfThenElseNode*>(s.get());
        int32_t mark = top_;
        bool fc = false;
        int32_t rc = CompileExpr(n->condition, &fc);
        rc = EnsureBool(rc, fc);
        int32_t jz = Emit({Op::kJmpIfZero, 0, 0, 0, rc, 0, 0});
        top_ = mark;
        CompileStmt(n->then_case);
        if (n->else_case != nullptr) {
          int32_t jend = Emit({Op::kJmp, 0, 0, 0, 0, 0, 0});
          PatchTarget(jz, Here());
          CompileStmt(n->else_case);
          PatchTarget(jend, Here());
        } else {
          PatchTarget(jz, Here());
        }
        break;
      }
      case StmtKind::kSeq: {
        const auto* n = static_cast<const SeqStmtNode*>(s.get());
        for (const Stmt& st : n->seq) {
          CompileStmt(st);
        }
        break;
      }
      case StmtKind::kEvaluate: {
        int32_t mark = top_;
        bool f = false;
        CompileExpr(static_cast<const EvaluateNode*>(s.get())->value, &f);
        top_ = mark;
        break;
      }
    }
  }

  void CompileStore(const StoreNode* n) {
    int32_t slot = BufferSlotOf(n->buffer_var.get());
    if (!ok_) {
      return;
    }
    ElemKind kind = buf_kind_[static_cast<size_t>(slot)];
    int lanes = std::max(n->value->dtype.lanes(), n->index->dtype.lanes());
    if (lanes > 1) {
      CompileVecStore(n, slot, kind, lanes);
      return;
    }
    int32_t mark = top_;
    int32_t jz = -1;
    if (n->predicate != nullptr) {
      bool fp = false;
      int32_t rp = CompileExpr(n->predicate, &fp);
      rp = EnsureBool(rp, fp);
      jz = Emit({Op::kJmpIfZero, 0, 0, 0, rp, 0, 0});
      top_ = mark;
    }
    // Interp evaluates index before value (trap order).
    bool fi = false;
    int32_t ri = EnsureInt(CompileExpr(n->index, &fi), fi);
    bool fv = false;
    int32_t rv = CompileExpr(n->value, &fv);
    Op op;
    if (kind == kF32 || kind == kF16) {
      rv = EnsureFloat(rv, fv);  // WriteElem narrows through AsF
      op = kind == kF16 ? Op::kStoreF16 : Op::kStoreF32;
    } else {
      rv = EnsureInt(rv, fv);
      op = kind == kI8 ? Op::kStoreI8 : (kind == kI32 ? Op::kStoreI32 : Op::kStoreI64);
    }
    Emit({op, 0, 0, 0, rv, ri, slot});
    if (jz >= 0) {
      PatchTarget(jz, Here());
    }
    top_ = mark;
  }

  // Vector store: predicate -> index -> value vectors, then one scatter instruction
  // that writes unmasked lanes (same per-lane writes as the interpreter's lane loop).
  void CompileVecStore(const StoreNode* n, int32_t slot, ElemKind kind, int lanes) {
    int32_t vmark = vtop_;
    int32_t smark = top_;
    bool has_pred = n->predicate != nullptr;
    int32_t vp = 0;
    if (has_pred) {
      bool fp = false;
      vp = CompileVecExpr(n->predicate, lanes, &fp);
      vp = EnsureVBool(vp, fp, lanes);
    }
    bool fi = false;
    int32_t vi = CompileVecExpr(n->index, lanes, &fi);
    vi = EnsureVInt(vi, fi, lanes);
    bool fv = false;
    int32_t vv = CompileVecExpr(n->value, lanes, &fv);
    Op op;
    if (kind == kF32 || kind == kF16) {
      vv = EnsureVFloat(vv, fv, lanes);
      op = kind == kF16 ? Op::kVStoreF16 : Op::kVStoreF32;
    } else {
      vv = EnsureVInt(vv, fv, lanes);
      op = kind == kI8 ? Op::kVStoreI8
                       : (kind == kI32 ? Op::kVStoreI32 : Op::kVStoreI64);
    }
    EmitV({op, static_cast<uint8_t>(has_pred ? 1 : 0), 0, vp, vv, vi, slot, lanes});
    vtop_ = vmark;
    top_ = smark;
  }

  static bool UsesAnyVar(const Expr& e, const std::unordered_set<const VarNode*>& vars) {
    bool uses = false;
    PostOrderVisit(e, [&](const Expr& x) {
      uses |= x->kind == ExprKind::kVar &&
              vars.count(static_cast<const VarNode*>(x.get())) > 0;
    });
    return uses;
  }

  // True when chunking `body` across workers could race: it writes a buffer allocated
  // *outside* the loop (workers would share that single scratch storage), or it writes
  // an argument buffer at an index that does not depend on the parallel loop variable
  // (e.g. a reduction axis marked parallel — every chunk would read-modify-write the
  // same elements). `dep` is the loop var plus let-vars derived from it. Hazardous
  // loops execute serially on the VM, matching the interpreter. Stores to body-local
  // allocations (which workers privatize, unbound at this pre-scan) stay parallel.
  bool ParallelHazard(const Stmt& s, std::unordered_set<const VarNode*>* dep) {
    if (s == nullptr) {
      return false;
    }
    switch (s->kind) {
      case StmtKind::kLetStmt: {
        const auto* n = static_cast<const LetStmtNode*>(s.get());
        if (UsesAnyVar(n->value, *dep)) {
          dep->insert(n->var.get());
        }
        return ParallelHazard(n->body, dep);
      }
      case StmtKind::kAttrStmt:
        return ParallelHazard(static_cast<const AttrStmtNode*>(s.get())->body, dep);
      case StmtKind::kAssert:
        return ParallelHazard(static_cast<const AssertStmtNode*>(s.get())->body, dep);
      case StmtKind::kAllocate:
        return ParallelHazard(static_cast<const AllocateNode*>(s.get())->body, dep);
      case StmtKind::kFor:
        return ParallelHazard(static_cast<const ForNode*>(s.get())->body, dep);
      case StmtKind::kIfThenElse: {
        const auto* n = static_cast<const IfThenElseNode*>(s.get());
        return ParallelHazard(n->then_case, dep) || ParallelHazard(n->else_case, dep);
      }
      case StmtKind::kSeq: {
        bool hazard = false;
        for (const Stmt& st : static_cast<const SeqStmtNode*>(s.get())->seq) {
          hazard |= ParallelHazard(st, dep);
        }
        return hazard;
      }
      case StmtKind::kStore: {
        const auto* n = static_cast<const StoreNode*>(s.get());
        auto it = buf_of_.find(n->buffer_var.get());
        if (it == buf_of_.end()) {
          return false;  // body-local allocation: worker-private
        }
        if (it->second >= prog_.num_args) {
          return true;  // outer scratch allocation shared by all workers
        }
        return !UsesAnyVar(n->index, *dep);
      }
      case StmtKind::kEvaluate: {
        const Expr& v = static_cast<const EvaluateNode*>(s.get())->value;
        if (v->kind != ExprKind::kCall) {
          return false;
        }
        const auto* call = static_cast<const CallNode*>(v.get());
        // Tensor intrinsics write their first buffer (handle, base, strides...).
        if (call->args.size() < 2 || call->args[0]->kind != ExprKind::kVar ||
            call->name == kSyncIntrin || call->name == kPushDepIntrin ||
            call->name == kPopDepIntrin) {
          return false;
        }
        auto it = buf_of_.find(static_cast<const VarNode*>(call->args[0].get()));
        if (it == buf_of_.end()) {
          return false;
        }
        if (it->second >= prog_.num_args) {
          return true;
        }
        return !UsesAnyVar(call->args[1], *dep);  // output base must track the loop var
      }
    }
    return false;
  }

  void CompileFor(const ForNode* n) {
    int32_t mark = top_;
    bool fm = false, fe = false;
    int32_t rmin = EnsureInt(CompileExpr(n->min, &fm), fm);
    int32_t rext = EnsureInt(CompileExpr(n->extent, &fe), fe);
    int32_t rbound = AllocReg();
    Emit({Op::kAddI, 0, 0, rbound, rmin, rext, 0});
    int32_t loop_reg = AllocReg();
    std::unordered_set<const VarNode*> dep{n->loop_var.get()};
    bool parallel = n->for_type == ForType::kParallel && !in_parallel_ &&
                    !ParallelHazard(n->body, &dep);
    BindVar bind(this, n->loop_var.get(), VarBinding{loop_reg, false});
    if (parallel) {
      // The loop body becomes a detached instruction range: the kParFor handler runs it
      // once per iteration (chunked across workers), then resumes at body_end.
      prog_.has_parallel = true;
      prog_.parfors.push_back(ParForDesc{});
      int32_t desc_idx = static_cast<int32_t>(prog_.parfors.size()) - 1;
      Emit({Op::kParFor, 0, 0, 0, 0, 0, desc_idx});
      int32_t body_begin = Here();
      in_parallel_ = true;
      CompileStmt(n->body);
      in_parallel_ = false;
      ParForDesc& d = prog_.parfors[static_cast<size_t>(desc_idx)];
      d.loop_reg = loop_reg;
      d.min_reg = rmin;
      d.bound_reg = rbound;
      d.body_begin = body_begin;
      d.body_end = Here();
    } else {
      // Strength reduction reserves accumulator registers *before* the body compiles
      // (body temporaries must live above them) and emits self-mov placeholder slots
      // for the init/increment instructions; unused slots stay self-movs and the
      // dead-code sweep removes them, so positions of already-patched jump targets
      // never shift during compilation.
      bool sr = spec_.strength_reduce;
      int32_t acc_base = -1;
      int32_t pre_slots[kMaxStrengthRed] = {0};
      int32_t post_slots[kMaxStrengthRed] = {0};
      if (sr) {
        acc_base = top_;
        for (int k = 0; k < kMaxStrengthRed; ++k) {
          AllocReg();
        }
      }
      Emit({Op::kMov, 0, 0, loop_reg, rmin, 0, 0});
      if (sr) {
        for (int k = 0; k < kMaxStrengthRed; ++k) {
          pre_slots[k] = Emit(SelfMov());
        }
      }
      int32_t test = Emit({Op::kJmpGeI, 0, 0, 0, loop_reg, rbound, 0});
      int32_t body_begin = Here();
      CompileStmt(n->body);
      int32_t body_end = Here();
      Emit({Op::kIncI, 0, 0, loop_reg, 0, 0, 0});
      if (sr) {
        for (int k = 0; k < kMaxStrengthRed; ++k) {
          post_slots[k] = Emit(SelfMov());
        }
      }
      Emit({Op::kJmp, 0, 0, 0, 0, 0, test});
      PatchTarget(test, Here());
      if (sr && ok_) {
        StrengthReduce(body_begin, body_end, loop_reg, rmin, acc_base, pre_slots,
                       post_slots);
      }
    }
    top_ = mark;
  }

  // --- bytecode specialization -------------------------------------------------
  // Strength reduction and the peephole pass work on the emitted instruction stream
  // before Finalize(), while constants are still identifiable (negative placeholder
  // ids with values in const_vals_). Deleted instructions are first tombstoned as
  // self-movs (kMov r0, r0 — never emitted by regular compilation) so positions stay
  // stable, then SweepDeadCode() drops the tombstones and remaps jump targets.

  static Instr SelfMov() { return {Op::kMov, 0, 0, 0, 0, 0, 0}; }

  static bool IsSelfMov(const Instr& in) {
    return in.op == Op::kMov && in.dst == in.a;
  }

  // Applies `fn` to every field of `in` naming a *scalar* register the executor
  // reads. Vector-file operands are a separate register space and are never
  // enumerated; descriptor-held registers (tensor intrinsics, parallel loops) are
  // handled by the callers that need them.
  template <typename Fn>
  static void ForEachScalarRead(Instr& in, Fn&& fn) {
    switch (in.op) {
      case Op::kMov:
      case Op::kIntToFloat:
      case Op::kFloatToInt:
      case Op::kWrapInt:
      case Op::kQuantF16:
      case Op::kNot:
      case Op::kBoolF:
      case Op::kCallUnary:
      case Op::kPopcount:
        fn(in.a);
        break;
      case Op::kAddI: case Op::kAddF: case Op::kSubI: case Op::kSubF:
      case Op::kMulI: case Op::kMulF: case Op::kDivF: case Op::kFloorDivI:
      case Op::kFloorModI: case Op::kMinI: case Op::kMinF: case Op::kMaxI:
      case Op::kMaxF: case Op::kEqI: case Op::kEqF: case Op::kNeI: case Op::kNeF:
      case Op::kLtI: case Op::kLtF: case Op::kLeI: case Op::kLeF: case Op::kGtI:
      case Op::kGtF: case Op::kGeI: case Op::kGeF: case Op::kAnd: case Op::kOr:
        fn(in.a);
        fn(in.b);
        break;
      case Op::kJmpIfZero:
        fn(in.a);
        break;
      case Op::kJmpGeI:
        fn(in.a);
        fn(in.b);
        break;
      case Op::kIncI:
        fn(in.dst);  // read-modify-write
        break;
      case Op::kLoadF32: case Op::kLoadI8: case Op::kLoadI32: case Op::kLoadI64:
        fn(in.a);
        break;
      case Op::kStoreF32: case Op::kStoreF16: case Op::kStoreI8:
      case Op::kStoreI32: case Op::kStoreI64:
        fn(in.a);
        fn(in.b);
        break;
      case Op::kAlloc:
        fn(in.a);
        break;
      case Op::kAssert:
        fn(in.a);
        break;
      case Op::kVRamp:
        fn(in.a);
        fn(in.b);
        break;
      case Op::kVBroadcast:
        fn(in.a);
        break;
      default:
        break;  // kJmp/kTensorIntrin/kParFor and the remaining vector opcodes
    }
  }

  // True when ForEachScalarRead/ScalarWriteOf fully model `op`'s scalar-register
  // usage. Exhaustive over the Op enum with no default, so adding an opcode without
  // classifying it here trips -Wswitch where enabled — and at run time the
  // optimization passes refuse to touch programs containing unmodeled opcodes
  // (fail closed) instead of silently folding registers they cannot see.
  static bool ScalarUseModeled(Op op) {
    switch (op) {
      case Op::kMov: case Op::kIntToFloat: case Op::kFloatToInt: case Op::kWrapInt:
      case Op::kQuantF16: case Op::kNot: case Op::kBoolF: case Op::kCallUnary:
      case Op::kPopcount:
      case Op::kAddI: case Op::kAddF: case Op::kSubI: case Op::kSubF:
      case Op::kMulI: case Op::kMulF: case Op::kDivF: case Op::kFloorDivI:
      case Op::kFloorModI: case Op::kMinI: case Op::kMinF: case Op::kMaxI:
      case Op::kMaxF: case Op::kEqI: case Op::kEqF: case Op::kNeI: case Op::kNeF:
      case Op::kLtI: case Op::kLtF: case Op::kLeI: case Op::kLeF: case Op::kGtI:
      case Op::kGtF: case Op::kGeI: case Op::kGeF: case Op::kAnd: case Op::kOr:
      case Op::kJmp: case Op::kJmpIfZero: case Op::kJmpGeI: case Op::kIncI:
      case Op::kLoadF32: case Op::kLoadI8: case Op::kLoadI32: case Op::kLoadI64:
      case Op::kStoreF32: case Op::kStoreF16: case Op::kStoreI8:
      case Op::kStoreI32: case Op::kStoreI64:
      case Op::kAlloc: case Op::kAssert: case Op::kTensorIntrin: case Op::kParFor:
      case Op::kVRamp: case Op::kVBroadcast: case Op::kVMov:
      case Op::kVIntToFloat: case Op::kVFloatToInt: case Op::kVBoolF:
      case Op::kVNot: case Op::kVQuantF16: case Op::kVWrapInt:
      case Op::kVAddI: case Op::kVAddF: case Op::kVSubI: case Op::kVSubF:
      case Op::kVMulI: case Op::kVMulF: case Op::kVDivF: case Op::kVFloorDivI:
      case Op::kVFloorModI: case Op::kVMinI: case Op::kVMinF: case Op::kVMaxI:
      case Op::kVMaxF: case Op::kVEqI: case Op::kVEqF: case Op::kVNeI:
      case Op::kVNeF: case Op::kVLtI: case Op::kVLtF: case Op::kVLeI:
      case Op::kVLeF: case Op::kVGtI: case Op::kVGtF: case Op::kVGeI:
      case Op::kVGeF: case Op::kVAnd: case Op::kVOr: case Op::kVSelect:
      case Op::kVCallUnary: case Op::kVPopcount:
      case Op::kVLoadF32: case Op::kVLoadI8: case Op::kVLoadI32: case Op::kVLoadI64:
      case Op::kVStoreF32: case Op::kVStoreF16: case Op::kVStoreI8:
      case Op::kVStoreI32: case Op::kVStoreI64:
        return true;
    }
    return false;
  }

  bool AllScalarUseModeled(int32_t begin, int32_t end) const {
    for (int32_t pc = begin; pc < end; ++pc) {
      if (!ScalarUseModeled(prog_.code[static_cast<size_t>(pc)].op)) {
        return false;
      }
    }
    return true;
  }

  // The scalar register `in` writes, or -1.
  static int32_t ScalarWriteOf(const Instr& in) {
    switch (in.op) {
      case Op::kMov:
      case Op::kIntToFloat:
      case Op::kFloatToInt:
      case Op::kWrapInt:
      case Op::kQuantF16:
      case Op::kNot:
      case Op::kBoolF:
      case Op::kCallUnary:
      case Op::kPopcount:
      case Op::kIncI:
      case Op::kAddI: case Op::kAddF: case Op::kSubI: case Op::kSubF:
      case Op::kMulI: case Op::kMulF: case Op::kDivF: case Op::kFloorDivI:
      case Op::kFloorModI: case Op::kMinI: case Op::kMinF: case Op::kMaxI:
      case Op::kMaxF: case Op::kEqI: case Op::kEqF: case Op::kNeI: case Op::kNeF:
      case Op::kLtI: case Op::kLtF: case Op::kLeI: case Op::kLeF: case Op::kGtI:
      case Op::kGtF: case Op::kGeI: case Op::kGeF: case Op::kAnd: case Op::kOr:
      case Op::kLoadF32: case Op::kLoadI8: case Op::kLoadI32: case Op::kLoadI64:
        return in.dst;
      default:
        return -1;
    }
  }

  // Writes of `reg` inside [begin, end), including parallel-loop descriptors whose
  // kParFor instruction sits in the range (the executor writes their loop register).
  int WriteCountInRange(int32_t reg, int32_t begin, int32_t end) const {
    int count = 0;
    for (int32_t pc = begin; pc < end; ++pc) {
      const Instr& in = prog_.code[static_cast<size_t>(pc)];
      if (ScalarWriteOf(in) == reg) {
        ++count;
      }
      if (in.op == Op::kParFor &&
          prog_.parfors[static_cast<size_t>(in.idx)].loop_reg == reg) {
        ++count;
      }
    }
    return count;
  }

  // Rewrites reads of `from` to `to` in the instructions of [begin, end) and in the
  // descriptors their kTensorIntrin/kParFor instructions reference.
  void RewriteReadsInRange(int32_t begin, int32_t end, int32_t from, int32_t to,
                           int32_t skip_pc = -1) {
    for (int32_t pc = begin; pc < end; ++pc) {
      if (pc == skip_pc) {
        continue;
      }
      Instr& in = prog_.code[static_cast<size_t>(pc)];
      if (IsSelfMov(in)) {
        continue;  // tombstone: rewriting its fields would un-tombstone it
      }
      ForEachScalarRead(in, [&](int32_t& r) {
        if (r == from) {
          r = to;
        }
      });
      if (in.op == Op::kTensorIntrin) {
        TensorIntrinDesc& d = prog_.intrins[static_cast<size_t>(in.idx)];
        for (int32_t& r : d.base_reg) { if (r == from) r = to; }
        for (int32_t& r : d.stride_reg) { if (r == from) r = to; }
        for (int32_t& r : d.extent_reg) { if (r == from) r = to; }
      } else if (in.op == Op::kParFor) {
        ParForDesc& d = prog_.parfors[static_cast<size_t>(in.idx)];
        if (d.min_reg == from) d.min_reg = to;
        if (d.bound_reg == from) d.bound_reg = to;
      }
    }
  }

  // Strength reduction over one serial loop's body range: a kMulI of the loop
  // register with a loop-invariant operand recomputes `i * stride` every iteration.
  // The product moves to a reserved accumulator initialized to `min * stride` before
  // the loop and bumped by `stride` at the back edge; readers of the old result are
  // redirected to the accumulator and the multiply is tombstoned. Safety: the result
  // register must be a body-local temporary (allocated above the reserved
  // accumulators, hence dead after the loop) with exactly one write in the range, so
  // redirecting its readers cannot affect any other lifetime of the slot.
  void StrengthReduce(int32_t begin, int32_t end, int32_t loop_reg, int32_t rmin,
                      int32_t acc_base, const int32_t* pre_slots,
                      const int32_t* post_slots) {
    if (!AllScalarUseModeled(begin, end)) {
      return;  // fail closed: never rewrite around opcodes we cannot model
    }
    int used = 0;
    for (int32_t pc = begin; pc < end && used < kMaxStrengthRed; ++pc) {
      Instr in = prog_.code[static_cast<size_t>(pc)];
      if (in.op != Op::kMulI) {
        continue;
      }
      int32_t other;
      if (in.a == loop_reg && in.b != loop_reg) {
        other = in.b;
      } else if (in.b == loop_reg && in.a != loop_reg) {
        other = in.a;
      } else {
        continue;  // not affine in the loop var (or i*i)
      }
      if (in.dst < acc_base + kMaxStrengthRed) {
        continue;  // not a body-local temporary
      }
      // An accumulator of this loop varies per iteration; never treat it as the
      // invariant operand (i * acc would be quadratic, not affine).
      if (other >= acc_base && other < acc_base + kMaxStrengthRed) {
        continue;
      }
      if (other >= 0 && WriteCountInRange(other, begin, end) > 0) {
        continue;  // operand not invariant in the loop
      }
      if (WriteCountInRange(in.dst, begin, end) != 1) {
        continue;
      }
      int32_t acc = acc_base + used;
      prog_.code[static_cast<size_t>(pre_slots[used])] =
          {Op::kMulI, 0, 0, acc, rmin, other, 0};
      prog_.code[static_cast<size_t>(post_slots[used])] =
          {Op::kAddI, 0, 0, acc, acc, other, 0};
      RewriteReadsInRange(begin, end, in.dst, acc, /*skip_pc=*/pc);
      prog_.code[static_cast<size_t>(pc)] = SelfMov();
      ++prog_.spec_strength_reduced;
      ++used;
    }
  }

  // Peephole over the whole program: collapses constant-operand arithmetic (both
  // operands in the constant pool) into new pool constants and propagates
  // constant-source movs, tombstoning the collapsed instructions. Only applied when
  // the result register has exactly one write in the entire program — then every
  // read anywhere observes that write, and redirecting readers to the folded
  // constant is unconditionally safe. Float folds use the same double arithmetic as
  // the executor, so results stay bitwise identical.
  void Peephole() {
    if (!AllScalarUseModeled(0, static_cast<int32_t>(prog_.code.size()))) {
      return;  // fail closed: never rewrite around opcodes we cannot model
    }
    for (int round = 0; round < 4; ++round) {
      std::vector<int> writes(static_cast<size_t>(max_top_), 0);
      for (const Instr& in : prog_.code) {
        int32_t w = ScalarWriteOf(in);
        if (w >= 0 && w < max_top_ && !IsSelfMov(in)) {
          ++writes[static_cast<size_t>(w)];
        }
      }
      for (const ParForDesc& d : prog_.parfors) {
        if (d.loop_reg >= 0 && d.loop_reg < max_top_) {
          ++writes[static_cast<size_t>(d.loop_reg)];
        }
      }
      bool changed = false;
      for (size_t i = 0; i < prog_.code.size(); ++i) {
        Instr in = prog_.code[i];
        if (IsSelfMov(in) || ScalarWriteOf(in) < 0 || in.op == Op::kIncI) {
          continue;
        }
        if (in.dst < 0 || in.dst >= max_top_ ||
            writes[static_cast<size_t>(in.dst)] != 1) {
          continue;
        }
        int32_t to;
        if (in.op == Op::kMov && in.a < 0) {
          to = in.a;  // constant-source mov: readers can use the constant directly
        } else if (!FoldConstInstr(in, &to)) {
          continue;
        }
        RewriteReadsInRange(0, static_cast<int32_t>(prog_.code.size()), in.dst, to);
        prog_.code[i] = SelfMov();
        changed = true;
      }
      if (!changed) {
        break;
      }
    }
  }

  // Evaluates `in` when all operands are pool constants, mirroring RunRange exactly.
  // On success *out is a constant register holding the result.
  bool FoldConstInstr(const Instr& in, int32_t* out) {
    auto cv = [&](int32_t r) { return const_vals_[static_cast<size_t>(-r - 1)]; };
    bool unary = false;
    switch (in.op) {
      case Op::kIntToFloat: case Op::kFloatToInt: case Op::kWrapInt:
      case Op::kQuantF16: case Op::kNot: case Op::kBoolF:
        unary = true;
        break;
      default:
        break;
    }
    if (in.a >= 0 || (!unary && in.b >= 0)) {
      return false;
    }
    VMValue a = cv(in.a);
    VMValue b = unary ? VMValue{} : cv(in.b);
    switch (in.op) {
      case Op::kIntToFloat: *out = ConstF(static_cast<double>(a.i)); return true;
      case Op::kFloatToInt: *out = ConstI(static_cast<int64_t>(a.f)); return true;
      case Op::kWrapInt: {
        int64_t i = a.i;
        int64_t mod = int64_t{1} << in.bits;
        i = ((i % mod) + mod) % mod;
        if (in.flag != 0 && i >= (mod >> 1)) {
          i -= mod;
        }
        *out = ConstI(i);
        return true;
      }
      case Op::kQuantF16:
        *out = ConstF(static_cast<double>(QuantizeFloat16(static_cast<float>(a.f))));
        return true;
      case Op::kNot: *out = ConstI(a.i != 0 ? 0 : 1); return true;
      case Op::kBoolF: *out = ConstI(a.f != 0); return true;
      case Op::kAddI: *out = ConstI(a.i + b.i); return true;
      case Op::kSubI: *out = ConstI(a.i - b.i); return true;
      case Op::kMulI: *out = ConstI(a.i * b.i); return true;
      case Op::kFloorDivI:
        if (b.i == 0) return false;
        *out = ConstI(FloorDiv(a.i, b.i));
        return true;
      case Op::kFloorModI:
        if (b.i == 0) return false;
        *out = ConstI(FloorMod(a.i, b.i));
        return true;
      case Op::kMinI: *out = ConstI(std::min(a.i, b.i)); return true;
      case Op::kMaxI: *out = ConstI(std::max(a.i, b.i)); return true;
      case Op::kAddF: *out = ConstF(a.f + b.f); return true;
      case Op::kSubF: *out = ConstF(a.f - b.f); return true;
      case Op::kMulF: *out = ConstF(a.f * b.f); return true;
      case Op::kDivF: *out = ConstF(a.f / b.f); return true;
      case Op::kMinF: *out = ConstF(std::min(a.f, b.f)); return true;
      case Op::kMaxF: *out = ConstF(std::max(a.f, b.f)); return true;
      case Op::kEqI: *out = ConstI(a.i == b.i); return true;
      case Op::kNeI: *out = ConstI(a.i != b.i); return true;
      case Op::kLtI: *out = ConstI(a.i < b.i); return true;
      case Op::kLeI: *out = ConstI(a.i <= b.i); return true;
      case Op::kGtI: *out = ConstI(a.i > b.i); return true;
      case Op::kGeI: *out = ConstI(a.i >= b.i); return true;
      case Op::kEqF: *out = ConstI(a.f == b.f); return true;
      case Op::kNeF: *out = ConstI(a.f != b.f); return true;
      case Op::kLtF: *out = ConstI(a.f < b.f); return true;
      case Op::kLeF: *out = ConstI(a.f <= b.f); return true;
      case Op::kGtF: *out = ConstI(a.f > b.f); return true;
      case Op::kGeF: *out = ConstI(a.f >= b.f); return true;
      case Op::kAnd: *out = ConstI((a.i != 0) && (b.i != 0)); return true;
      case Op::kOr: *out = ConstI((a.i != 0) || (b.i != 0)); return true;
      default:
        return false;
    }
  }

  // Drops self-mov tombstones (and the never-used reserved strength-reduction
  // slots), remapping jump targets and parallel-loop body ranges. A deleted
  // position that was itself a branch target maps to the next surviving
  // instruction, which is exactly where the tombstone would have fallen through.
  void SweepDeadCode() {
    size_t n = prog_.code.size();
    std::vector<int32_t> map(n + 1, 0);
    std::vector<Instr> kept;
    kept.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      map[i] = static_cast<int32_t>(kept.size());
      if (IsSelfMov(prog_.code[i])) {
        // Attributed to the peephole counter only when that pass ran: the sweep
        // also drops strength-reduction placeholders, which are not peephole wins.
        if (spec_.peephole) {
          ++prog_.spec_peephole_removed;
        }
        continue;
      }
      kept.push_back(prog_.code[i]);
    }
    map[n] = static_cast<int32_t>(kept.size());
    for (Instr& in : kept) {
      if (in.op == Op::kJmp || in.op == Op::kJmpIfZero || in.op == Op::kJmpGeI) {
        in.idx = map[static_cast<size_t>(in.idx)];
      }
    }
    for (ParForDesc& d : prog_.parfors) {
      d.body_begin = map[static_cast<size_t>(d.body_begin)];
      d.body_end = map[static_cast<size_t>(d.body_end)];
    }
    prog_.code = std::move(kept);
  }

  // Rewrites negative constant placeholders to dense register slots above the scoped
  // high-water mark and materializes the initial register image.
  void Finalize() {
    if (spec_.peephole) {
      Peephole();
    }
    // Always sweep: strength reduction and constant folding leave self-mov
    // tombstones (and reserved-but-unused accumulator slots) behind, and genuine
    // self-movs from register coincidence are no-ops either way.
    SweepDeadCode();
    auto fix = [this](int32_t& r) {
      if (r < 0) {
        r = max_top_ + (-r - 1);
      }
    };
    for (Instr& in : prog_.code) {
      fix(in.dst);
      fix(in.a);
      fix(in.b);
    }
    for (TensorIntrinDesc& d : prog_.intrins) {
      for (int32_t& r : d.base_reg) fix(r);
      for (int32_t& r : d.stride_reg) fix(r);
      for (int32_t& r : d.extent_reg) fix(r);
    }
    for (ParForDesc& d : prog_.parfors) {
      fix(d.loop_reg);
      fix(d.min_reg);
      fix(d.bound_reg);
    }
    prog_.reg_init.assign(static_cast<size_t>(max_top_) + const_vals_.size(), VMValue{});
    for (size_t k = 0; k < const_vals_.size(); ++k) {
      prog_.reg_init[static_cast<size_t>(max_top_) + k] = const_vals_[k];
    }
    prog_.num_vregs = vmax_top_;
  }

  static constexpr int kMaxStrengthRed = 4;

  Program prog_;
  LoopSpecializeOptions spec_;
  std::unordered_map<const VarNode*, VarBinding> var_of_;
  std::unordered_map<const VarNode*, int32_t> buf_of_;
  std::vector<ElemKind> buf_kind_;  // per slot
  std::unordered_map<uint64_t, int32_t> int_const_ids_;
  std::unordered_map<uint64_t, int32_t> float_const_ids_;
  std::vector<VMValue> const_vals_;
  int32_t top_ = 0;
  int32_t max_top_ = 0;
  int32_t vtop_ = 0;
  int32_t vmax_top_ = 0;
  bool in_parallel_ = false;
  bool ok_ = true;
  std::string fail_reason_;
};

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

struct VMBuffer {
  void* data = nullptr;
  int64_t num_elements = 0;
  uint8_t kind = kF32;
};

struct ExecState {
  std::vector<VMValue> regs;
  std::vector<VMValue> vregs;  // vector register file: lane cells
  std::vector<VMBuffer> bufs;
  std::vector<std::vector<char>> owned;  // per-slot storage for kAlloc buffers
};

int ElemBytes(uint8_t kind) {
  switch (kind) {
    case kI8: return 1;
    case kI64: return 8;
    default: return 4;  // kF32/kF16 stored as float, kI32 as int32
  }
}

[[noreturn]] void BoundsFail(int64_t idx, int64_t n) {
  LOG(FATAL) << (idx < 0 ? "buffer underflow" : "buffer overflow") << ": index " << idx
             << " of " << n;
  std::abort();  // unreachable: LOG(FATAL) throws
}

inline void CheckBounds(const VMBuffer& b, int64_t idx) {
  if (idx < 0 || idx >= b.num_elements) {
    BoundsFail(idx, b.num_elements);
  }
}

// Scalar value with a runtime type tag, used only by the tensor-intrinsic helper to
// mirror the interpreter's mixed-type MAC semantics.
struct ScalarVal {
  double f = 0;
  int64_t i = 0;
  bool is_float = false;
  double AsF() const { return is_float ? f : static_cast<double>(i); }
};

ScalarVal ReadBuf(const VMBuffer& b, int64_t idx) {
  CheckBounds(b, idx);
  ScalarVal v;
  switch (b.kind) {
    case kF32:
    case kF16:
      v.f = static_cast<const float*>(b.data)[idx];
      v.is_float = true;
      break;
    case kI8:
      v.i = static_cast<const int8_t*>(b.data)[idx];
      break;
    case kI32:
      v.i = static_cast<const int32_t*>(b.data)[idx];
      break;
    default:
      v.i = static_cast<const int64_t*>(b.data)[idx];
      break;
  }
  return v;
}

void WriteBuf(VMBuffer& b, int64_t idx, const ScalarVal& v) {
  CheckBounds(b, idx);
  switch (b.kind) {
    case kF32:
      static_cast<float*>(b.data)[idx] = static_cast<float>(v.AsF());
      break;
    case kF16:
      static_cast<float*>(b.data)[idx] = QuantizeFloat16(static_cast<float>(v.AsF()));
      break;
    case kI8:
      static_cast<int8_t*>(b.data)[idx] = static_cast<int8_t>(v.is_float
                                                                  ? static_cast<int64_t>(v.f)
                                                                  : v.i);
      break;
    case kI32:
      static_cast<int32_t*>(b.data)[idx] = static_cast<int32_t>(
          v.is_float ? static_cast<int64_t>(v.f) : v.i);
      break;
    default:
      static_cast<int64_t*>(b.data)[idx] = v.is_float ? static_cast<int64_t>(v.f) : v.i;
      break;
  }
}

int DefaultNumThreads() {
  static const int n = [] {
    if (const char* s = std::getenv("TVMCPP_NUM_THREADS")) {
      int v = std::atoi(s);
      if (v > 0) {
        return v;
      }
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
  }();
  return n;
}

// Shared worker pool for kParallel loops. Sized at least 4 so chunked execution is
// exercised (and deterministic) even on small machines.
ThreadPool* WorkerPool() {
  static ThreadPool pool(std::max(DefaultNumThreads(), 4));
  return &pool;
}

void RunRange(const Program& p, ExecState& st, int32_t pc, int32_t end,
              const ExecOptions& opt);

void ExecTensorIntrin(const Program& p, ExecState& st, const TensorIntrinDesc& d) {
  int num_buffers = static_cast<int>(d.buf_slot.size());
  int nt = d.nt;
  struct Access {
    VMBuffer* buf;
    int64_t base;
    const int32_t* strides;
  };
  Access acc[3];
  for (int b = 0; b < num_buffers; ++b) {
    acc[b].buf = &st.bufs[static_cast<size_t>(d.buf_slot[static_cast<size_t>(b)])];
    acc[b].base = st.regs[static_cast<size_t>(d.base_reg[static_cast<size_t>(b)])].i;
    acc[b].strides = d.stride_reg.data() + b * nt;
  }
  std::vector<int64_t> extents(static_cast<size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    extents[static_cast<size_t>(t)] =
        st.regs[static_cast<size_t>(d.extent_reg[static_cast<size_t>(t)])].i;
  }
  std::vector<int64_t> idx(static_cast<size_t>(nt), 0);
  auto offset = [&](const Access& a) {
    int64_t off = a.base;
    for (int t = 0; t < nt; ++t) {
      off += idx[static_cast<size_t>(t)] * st.regs[static_cast<size_t>(a.strides[t])].i;
    }
    return off;
  };
  do {  // the body runs at least once (nt == 0 means a single scalar update)
    switch (d.category) {
      case 0: {  // fill
        ScalarVal zero;
        zero.is_float = acc[0].buf->kind == kF32 || acc[0].buf->kind == kF16;
        WriteBuf(*acc[0].buf, offset(acc[0]), zero);
        break;
      }
      case 1:  // copy
        WriteBuf(*acc[0].buf, offset(acc[0]), ReadBuf(*acc[1].buf, offset(acc[1])));
        break;
      default: {  // mac
        ScalarVal out = ReadBuf(*acc[0].buf, offset(acc[0]));
        ScalarVal a = ReadBuf(*acc[1].buf, offset(acc[1]));
        ScalarVal b = ReadBuf(*acc[2].buf, offset(acc[2]));
        ScalarVal r;
        if (out.is_float || a.is_float || b.is_float) {
          r.f = out.AsF() + a.AsF() * b.AsF();
          r.is_float = true;
        } else {
          r.i = out.i + a.i * b.i;
        }
        WriteBuf(*acc[0].buf, offset(acc[0]), r);
        break;
      }
    }
    int t = nt - 1;
    while (t >= 0) {
      if (++idx[static_cast<size_t>(t)] < extents[static_cast<size_t>(t)]) {
        break;
      }
      idx[static_cast<size_t>(t)] = 0;
      --t;
    }
    if (t < 0) {
      break;
    }
  } while (true);
}

int ResolveThreads(const ExecOptions& opt) {
  return opt.num_threads > 0 ? opt.num_threads : DefaultNumThreads();
}

void ExecParFor(const Program& p, ExecState& st, const ParForDesc& d,
                const ExecOptions& opt) {
  int64_t lo = st.regs[static_cast<size_t>(d.min_reg)].i;
  int64_t hi = st.regs[static_cast<size_t>(d.bound_reg)].i;
  int64_t ext = hi - lo;
  int threads = ResolveThreads(opt);
  if (ext <= 1 || threads <= 1) {
    for (int64_t v = lo; v < hi; ++v) {
      st.regs[static_cast<size_t>(d.loop_reg)].i = v;
      RunRange(p, st, d.body_begin, d.body_end, opt);
    }
    return;
  }
  ThreadPool* pool = opt.pool != nullptr ? opt.pool : WorkerPool();
  // Deterministic chunking: one contiguous block per chunk. Iterations of a kParallel
  // loop are independent by construction, so results are bitwise identical for any
  // chunk count; only the assignment of iterations to workers changes.
  int nchunks = static_cast<int>(std::min<int64_t>(ext, threads));
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(nchunks));
  for (int c = 0; c < nchunks; ++c) {
    int64_t begin = lo + ext * c / nchunks;
    int64_t chunk_end = lo + ext * (c + 1) / nchunks;
    futures.push_back(pool->SubmitNested([&p, &st, &d, &opt, begin, chunk_end] {
      // Workers clone the register file and buffer table: loop-invariant values and
      // outer buffers are shared read-only, while registers written in the body and
      // buffers allocated in the body stay private to the worker.
      ExecState local;
      local.regs = st.regs;
      local.vregs = st.vregs;
      local.bufs = st.bufs;
      local.owned.resize(st.owned.size());
      for (int64_t v = begin; v < chunk_end; ++v) {
        local.regs[static_cast<size_t>(d.loop_reg)].i = v;
        RunRange(p, local, d.body_begin, d.body_end, opt);
      }
    }));
  }
  std::exception_ptr err;
  for (std::future<void>& f : futures) {
    // Help-while-wait: drain pending chunk (nested) jobs instead of idling, so a
    // pool worker that reached this point (a serving request job fanning out its own
    // chunks) keeps chunks progressing and can never deadlock on a full pool.
    // General jobs (whole requests) are never stolen here.
    while (f.wait_for(std::chrono::seconds(0)) == std::future_status::timeout) {
      if (!pool->TryRunOne()) {
        f.wait();  // queue drained: the chunk is running on another thread
      }
    }
    try {
      f.get();
    } catch (...) {
      if (!err) {
        err = std::current_exception();
      }
    }
  }
  if (err) {
    std::rethrow_exception(err);
  }
}

void RunRange(const Program& p, ExecState& st, int32_t pc, int32_t end,
              const ExecOptions& opt) {
  const Instr* code = p.code.data();
  VMValue* r = st.regs.data();
  VMValue* v = st.vregs.data();
  while (pc < end) {
    const Instr& in = code[pc];
    switch (in.op) {
      case Op::kMov: r[in.dst] = r[in.a]; ++pc; break;
      case Op::kIntToFloat: r[in.dst].f = static_cast<double>(r[in.a].i); ++pc; break;
      case Op::kFloatToInt: r[in.dst].i = static_cast<int64_t>(r[in.a].f); ++pc; break;
      case Op::kWrapInt: {
        int64_t i = r[in.a].i;
        int64_t mod = int64_t{1} << in.bits;
        i = ((i % mod) + mod) % mod;
        if (in.flag != 0 && i >= (mod >> 1)) {
          i -= mod;
        }
        r[in.dst].i = i;
        ++pc;
        break;
      }
      case Op::kQuantF16:
        r[in.dst].f = static_cast<double>(QuantizeFloat16(static_cast<float>(r[in.a].f)));
        ++pc;
        break;
      case Op::kAddI: r[in.dst].i = r[in.a].i + r[in.b].i; ++pc; break;
      case Op::kAddF: r[in.dst].f = r[in.a].f + r[in.b].f; ++pc; break;
      case Op::kSubI: r[in.dst].i = r[in.a].i - r[in.b].i; ++pc; break;
      case Op::kSubF: r[in.dst].f = r[in.a].f - r[in.b].f; ++pc; break;
      case Op::kMulI: r[in.dst].i = r[in.a].i * r[in.b].i; ++pc; break;
      case Op::kMulF: r[in.dst].f = r[in.a].f * r[in.b].f; ++pc; break;
      case Op::kDivF: r[in.dst].f = r[in.a].f / r[in.b].f; ++pc; break;
      case Op::kFloorDivI: r[in.dst].i = FloorDiv(r[in.a].i, r[in.b].i); ++pc; break;
      case Op::kFloorModI: r[in.dst].i = FloorMod(r[in.a].i, r[in.b].i); ++pc; break;
      case Op::kMinI: r[in.dst].i = std::min(r[in.a].i, r[in.b].i); ++pc; break;
      case Op::kMinF: r[in.dst].f = std::min(r[in.a].f, r[in.b].f); ++pc; break;
      case Op::kMaxI: r[in.dst].i = std::max(r[in.a].i, r[in.b].i); ++pc; break;
      case Op::kMaxF: r[in.dst].f = std::max(r[in.a].f, r[in.b].f); ++pc; break;
      case Op::kEqI: r[in.dst].i = r[in.a].i == r[in.b].i; ++pc; break;
      case Op::kEqF: r[in.dst].i = r[in.a].f == r[in.b].f; ++pc; break;
      case Op::kNeI: r[in.dst].i = r[in.a].i != r[in.b].i; ++pc; break;
      case Op::kNeF: r[in.dst].i = r[in.a].f != r[in.b].f; ++pc; break;
      case Op::kLtI: r[in.dst].i = r[in.a].i < r[in.b].i; ++pc; break;
      case Op::kLtF: r[in.dst].i = r[in.a].f < r[in.b].f; ++pc; break;
      case Op::kLeI: r[in.dst].i = r[in.a].i <= r[in.b].i; ++pc; break;
      case Op::kLeF: r[in.dst].i = r[in.a].f <= r[in.b].f; ++pc; break;
      case Op::kGtI: r[in.dst].i = r[in.a].i > r[in.b].i; ++pc; break;
      case Op::kGtF: r[in.dst].i = r[in.a].f > r[in.b].f; ++pc; break;
      case Op::kGeI: r[in.dst].i = r[in.a].i >= r[in.b].i; ++pc; break;
      case Op::kGeF: r[in.dst].i = r[in.a].f >= r[in.b].f; ++pc; break;
      case Op::kAnd: r[in.dst].i = (r[in.a].i != 0) && (r[in.b].i != 0); ++pc; break;
      case Op::kOr: r[in.dst].i = (r[in.a].i != 0) || (r[in.b].i != 0); ++pc; break;
      case Op::kNot: r[in.dst].i = r[in.a].i != 0 ? 0 : 1; ++pc; break;
      case Op::kBoolF: r[in.dst].i = r[in.a].f != 0; ++pc; break;
      case Op::kJmp: pc = in.idx; break;
      case Op::kJmpIfZero: pc = r[in.a].i == 0 ? in.idx : pc + 1; break;
      case Op::kJmpGeI: pc = r[in.a].i >= r[in.b].i ? in.idx : pc + 1; break;
      case Op::kIncI: ++r[in.dst].i; ++pc; break;
      case Op::kLoadF32: {
        const VMBuffer& b = st.bufs[static_cast<size_t>(in.idx)];
        int64_t i = r[in.a].i;
        CheckBounds(b, i);
        r[in.dst].f = static_cast<const float*>(b.data)[i];
        ++pc;
        break;
      }
      case Op::kLoadI8: {
        const VMBuffer& b = st.bufs[static_cast<size_t>(in.idx)];
        int64_t i = r[in.a].i;
        CheckBounds(b, i);
        r[in.dst].i = static_cast<const int8_t*>(b.data)[i];
        ++pc;
        break;
      }
      case Op::kLoadI32: {
        const VMBuffer& b = st.bufs[static_cast<size_t>(in.idx)];
        int64_t i = r[in.a].i;
        CheckBounds(b, i);
        r[in.dst].i = static_cast<const int32_t*>(b.data)[i];
        ++pc;
        break;
      }
      case Op::kLoadI64: {
        const VMBuffer& b = st.bufs[static_cast<size_t>(in.idx)];
        int64_t i = r[in.a].i;
        CheckBounds(b, i);
        r[in.dst].i = static_cast<const int64_t*>(b.data)[i];
        ++pc;
        break;
      }
      case Op::kStoreF32: {
        VMBuffer& b = st.bufs[static_cast<size_t>(in.idx)];
        int64_t i = r[in.b].i;
        CheckBounds(b, i);
        static_cast<float*>(b.data)[i] = static_cast<float>(r[in.a].f);
        ++pc;
        break;
      }
      case Op::kStoreF16: {
        VMBuffer& b = st.bufs[static_cast<size_t>(in.idx)];
        int64_t i = r[in.b].i;
        CheckBounds(b, i);
        static_cast<float*>(b.data)[i] =
            QuantizeFloat16(static_cast<float>(r[in.a].f));
        ++pc;
        break;
      }
      case Op::kStoreI8: {
        VMBuffer& b = st.bufs[static_cast<size_t>(in.idx)];
        int64_t i = r[in.b].i;
        CheckBounds(b, i);
        static_cast<int8_t*>(b.data)[i] = static_cast<int8_t>(r[in.a].i);
        ++pc;
        break;
      }
      case Op::kStoreI32: {
        VMBuffer& b = st.bufs[static_cast<size_t>(in.idx)];
        int64_t i = r[in.b].i;
        CheckBounds(b, i);
        static_cast<int32_t*>(b.data)[i] = static_cast<int32_t>(r[in.a].i);
        ++pc;
        break;
      }
      case Op::kStoreI64: {
        VMBuffer& b = st.bufs[static_cast<size_t>(in.idx)];
        int64_t i = r[in.b].i;
        CheckBounds(b, i);
        static_cast<int64_t*>(b.data)[i] = r[in.a].i;
        ++pc;
        break;
      }
      case Op::kAlloc: {
        int64_t elems = r[in.a].i;
        std::vector<char>& storage = st.owned[static_cast<size_t>(in.idx)];
        storage.assign(static_cast<size_t>(elems * ElemBytes(in.flag)), 0);
        st.bufs[static_cast<size_t>(in.idx)] =
            VMBuffer{storage.data(), elems, in.flag};
        ++pc;
        break;
      }
      case Op::kCallUnary:
        r[in.dst].f = EvalUnaryMathFn(static_cast<UnaryMathFn>(in.flag), r[in.a].f);
        ++pc;
        break;
      case Op::kPopcount:
        r[in.dst].i = __builtin_popcountll(static_cast<uint64_t>(r[in.a].i));
        ++pc;
        break;
      case Op::kTensorIntrin:
        ExecTensorIntrin(p, st, p.intrins[static_cast<size_t>(in.idx)]);
        ++pc;
        break;
      case Op::kParFor: {
        const ParForDesc& d = p.parfors[static_cast<size_t>(in.idx)];
        ExecParFor(p, st, d, opt);
        pc = d.body_end;
        break;
      }
      case Op::kAssert:
        if (r[in.a].i == 0) {
          LOG(FATAL) << p.messages[static_cast<size_t>(in.idx)];
        }
        ++pc;
        break;
      // --- SIMD vector opcodes ------------------------------------------------
      case Op::kVRamp: {
        int64_t base = r[in.a].i, stride = r[in.b].i;
        for (int32_t l = 0; l < in.lanes; ++l) {
          v[in.dst + l].i = base + l * stride;
        }
        ++pc;
        break;
      }
      case Op::kVBroadcast: {
        VMValue x = r[in.a];
        for (int32_t l = 0; l < in.lanes; ++l) {
          v[in.dst + l] = x;
        }
        ++pc;
        break;
      }
      case Op::kVMov:
        for (int32_t l = 0; l < in.lanes; ++l) v[in.dst + l] = v[in.a + l];
        ++pc;
        break;
      case Op::kVIntToFloat:
        for (int32_t l = 0; l < in.lanes; ++l) {
          v[in.dst + l].f = static_cast<double>(v[in.a + l].i);
        }
        ++pc;
        break;
      case Op::kVFloatToInt:
        for (int32_t l = 0; l < in.lanes; ++l) {
          v[in.dst + l].i = static_cast<int64_t>(v[in.a + l].f);
        }
        ++pc;
        break;
      case Op::kVBoolF:
        for (int32_t l = 0; l < in.lanes; ++l) v[in.dst + l].i = v[in.a + l].f != 0;
        ++pc;
        break;
      case Op::kVNot:
        for (int32_t l = 0; l < in.lanes; ++l) {
          v[in.dst + l].i = v[in.a + l].i != 0 ? 0 : 1;
        }
        ++pc;
        break;
      case Op::kVQuantF16:
        for (int32_t l = 0; l < in.lanes; ++l) {
          v[in.dst + l].f =
              static_cast<double>(QuantizeFloat16(static_cast<float>(v[in.a + l].f)));
        }
        ++pc;
        break;
      case Op::kVWrapInt: {
        int64_t mod = int64_t{1} << in.bits;
        for (int32_t l = 0; l < in.lanes; ++l) {
          int64_t i = v[in.a + l].i;
          i = ((i % mod) + mod) % mod;
          if (in.flag != 0 && i >= (mod >> 1)) {
            i -= mod;
          }
          v[in.dst + l].i = i;
        }
        ++pc;
        break;
      }
#define TVMCPP_VM_VBINOP(OPC, FIELD, EXPR)                              \
  case Op::OPC:                                                         \
    for (int32_t l = 0; l < in.lanes; ++l) {                            \
      auto va = v[in.a + l].FIELD;                                      \
      auto vb = v[in.b + l].FIELD;                                      \
      (void)va; (void)vb;                                               \
      EXPR;                                                             \
    }                                                                   \
    ++pc;                                                               \
    break;
      TVMCPP_VM_VBINOP(kVAddI, i, v[in.dst + l].i = va + vb)
      TVMCPP_VM_VBINOP(kVAddF, f, v[in.dst + l].f = va + vb)
      TVMCPP_VM_VBINOP(kVSubI, i, v[in.dst + l].i = va - vb)
      TVMCPP_VM_VBINOP(kVSubF, f, v[in.dst + l].f = va - vb)
      TVMCPP_VM_VBINOP(kVMulI, i, v[in.dst + l].i = va * vb)
      TVMCPP_VM_VBINOP(kVMulF, f, v[in.dst + l].f = va * vb)
      TVMCPP_VM_VBINOP(kVDivF, f, v[in.dst + l].f = va / vb)
      TVMCPP_VM_VBINOP(kVFloorDivI, i, v[in.dst + l].i = FloorDiv(va, vb))
      TVMCPP_VM_VBINOP(kVFloorModI, i, v[in.dst + l].i = FloorMod(va, vb))
      TVMCPP_VM_VBINOP(kVMinI, i, v[in.dst + l].i = std::min(va, vb))
      TVMCPP_VM_VBINOP(kVMinF, f, v[in.dst + l].f = std::min(va, vb))
      TVMCPP_VM_VBINOP(kVMaxI, i, v[in.dst + l].i = std::max(va, vb))
      TVMCPP_VM_VBINOP(kVMaxF, f, v[in.dst + l].f = std::max(va, vb))
      TVMCPP_VM_VBINOP(kVEqI, i, v[in.dst + l].i = va == vb)
      TVMCPP_VM_VBINOP(kVEqF, f, v[in.dst + l].i = va == vb)
      TVMCPP_VM_VBINOP(kVNeI, i, v[in.dst + l].i = va != vb)
      TVMCPP_VM_VBINOP(kVNeF, f, v[in.dst + l].i = va != vb)
      TVMCPP_VM_VBINOP(kVLtI, i, v[in.dst + l].i = va < vb)
      TVMCPP_VM_VBINOP(kVLtF, f, v[in.dst + l].i = va < vb)
      TVMCPP_VM_VBINOP(kVLeI, i, v[in.dst + l].i = va <= vb)
      TVMCPP_VM_VBINOP(kVLeF, f, v[in.dst + l].i = va <= vb)
      TVMCPP_VM_VBINOP(kVGtI, i, v[in.dst + l].i = va > vb)
      TVMCPP_VM_VBINOP(kVGtF, f, v[in.dst + l].i = va > vb)
      TVMCPP_VM_VBINOP(kVGeI, i, v[in.dst + l].i = va >= vb)
      TVMCPP_VM_VBINOP(kVGeF, f, v[in.dst + l].i = va >= vb)
      TVMCPP_VM_VBINOP(kVAnd, i, v[in.dst + l].i = (va != 0) && (vb != 0))
      TVMCPP_VM_VBINOP(kVOr, i, v[in.dst + l].i = (va != 0) || (vb != 0))
#undef TVMCPP_VM_VBINOP
      case Op::kVSelect:
        for (int32_t l = 0; l < in.lanes; ++l) {
          v[in.dst + l] = v[in.idx + l].i != 0 ? v[in.a + l] : v[in.b + l];
        }
        ++pc;
        break;
      case Op::kVCallUnary:
        for (int32_t l = 0; l < in.lanes; ++l) {
          v[in.dst + l].f =
              EvalUnaryMathFn(static_cast<UnaryMathFn>(in.flag), v[in.a + l].f);
        }
        ++pc;
        break;
      case Op::kVPopcount:
        for (int32_t l = 0; l < in.lanes; ++l) {
          v[in.dst + l].i =
              __builtin_popcountll(static_cast<uint64_t>(v[in.a + l].i));
        }
        ++pc;
        break;
#define TVMCPP_VM_VLOAD(OPC, CTYPE, FIELD, ZERO)                          \
  case Op::OPC: {                                                         \
    const VMBuffer& b = st.bufs[static_cast<size_t>(in.idx)];             \
    for (int32_t l = 0; l < in.lanes; ++l) {                              \
      if (in.flag != 0 && v[in.b + l].i == 0) {                           \
        v[in.dst + l].FIELD = ZERO; /* masked lane reads typed zero */    \
        continue;                                                         \
      }                                                                   \
      int64_t i = v[in.a + l].i;                                          \
      CheckBounds(b, i);                                                  \
      v[in.dst + l].FIELD = static_cast<const CTYPE*>(b.data)[i];         \
    }                                                                     \
    ++pc;                                                                 \
    break;                                                                \
  }
      TVMCPP_VM_VLOAD(kVLoadF32, float, f, 0.0)
      TVMCPP_VM_VLOAD(kVLoadI8, int8_t, i, 0)
      TVMCPP_VM_VLOAD(kVLoadI32, int32_t, i, 0)
      TVMCPP_VM_VLOAD(kVLoadI64, int64_t, i, 0)
#undef TVMCPP_VM_VLOAD
#define TVMCPP_VM_VSTORE(OPC, CTYPE, WRITE)                               \
  case Op::OPC: {                                                         \
    VMBuffer& b = st.bufs[static_cast<size_t>(in.idx)];                   \
    for (int32_t l = 0; l < in.lanes; ++l) {                              \
      if (in.flag != 0 && v[in.dst + l].i == 0) {                         \
        continue; /* masked lane skipped */                               \
      }                                                                   \
      int64_t i = v[in.b + l].i;                                          \
      CheckBounds(b, i);                                                  \
      static_cast<CTYPE*>(b.data)[i] = WRITE;                             \
    }                                                                     \
    ++pc;                                                                 \
    break;                                                                \
  }
      TVMCPP_VM_VSTORE(kVStoreF32, float, static_cast<float>(v[in.a + l].f))
      TVMCPP_VM_VSTORE(kVStoreF16, float,
                       QuantizeFloat16(static_cast<float>(v[in.a + l].f)))
      TVMCPP_VM_VSTORE(kVStoreI8, int8_t, static_cast<int8_t>(v[in.a + l].i))
      TVMCPP_VM_VSTORE(kVStoreI32, int32_t, static_cast<int32_t>(v[in.a + l].i))
      TVMCPP_VM_VSTORE(kVStoreI64, int64_t, v[in.a + l].i)
#undef TVMCPP_VM_VSTORE
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::shared_ptr<const Program> CompileToProgram(const LoweredFunc& func) {
  return CompileToProgram(func, LoopSpecializeOptions::FromEnv());
}

std::shared_ptr<const Program> CompileToProgram(const LoweredFunc& func,
                                                const LoopSpecializeOptions& spec) {
  Stmt body = func.body;
  if (body == nullptr) {
    return nullptr;
  }
  if (HasThreadIdxBinding(body)) {
    // Cooperative (barrier-synchronized) programs need block-synchronous serialization,
    // exactly as the reference interpreter does before execution.
    body = SerializeThreadBlocks(body);
  }
  // Materialize kVectorized loops as vector IR so they compile to SIMD opcodes
  // (loops the pass bails on stay serial, preserving the old semantics).
  body = VectorizeLoop(body);
  // Loop specialization (src/lower/unroll.cc): unroll small fixed-extent innermost
  // loops and hoist invariant index arithmetic. Bitwise-neutral by construction;
  // the final Simplify folds the constant indices the unroller exposed.
  LoopSpecializeStats ir_stats;
  if (spec.unroll_limit > 0 || spec.hoist_invariants) {
    body = SpecializeLoops(body, spec, &ir_stats);
  }
  body = Simplify(body);
  Compiler compiler(spec, ir_stats);
  return compiler.Compile(func, body);
}

void Run(const Program& program, const std::vector<BufferBinding>& args,
         const ExecOptions& options) {
  // Throwing fail-point: an injected error surfaces as a per-run fault exactly
  // like a real execution failure, exercising the serving layer's retry/fallback
  // ladder. Evaluated on the caller's thread before any chunk is dispatched, so a
  // throw never strands kParallel chunk jobs.
  FAILPOINT("vm.run");
  CHECK_EQ(static_cast<int32_t>(args.size()), program.num_args)
      << "argument count mismatch for " << program.name;
  ExecState st;
  st.regs = program.reg_init;
  st.vregs.assign(static_cast<size_t>(program.num_vregs), VMValue{});
  st.bufs.assign(static_cast<size_t>(program.num_buffer_slots), VMBuffer{});
  st.owned.resize(static_cast<size_t>(program.num_buffer_slots));
  for (size_t i = 0; i < args.size(); ++i) {
    st.bufs[i] = VMBuffer{args[i].data, args[i].num_elements, program.arg_kind[i]};
  }
  RunRange(program, st, 0, static_cast<int32_t>(program.code.size()), options);
}

bool RunLoweredVM(const LoweredFunc& func, const std::vector<BufferBinding>& args) {
  struct CacheEntry {
    Stmt keepalive;  // pins the body so the pointer key cannot be reused
    std::vector<const VarNode*> arg_vars;  // program slots are positional over these
    std::shared_ptr<const Program> program;
  };
  static std::mutex mu;
  static std::unordered_map<const StmtNode*, CacheEntry> cache;
  CHECK_EQ(args.size(), func.args.size()) << "argument count mismatch for " << func.name;
  auto signature = [&] {
    std::vector<const VarNode*> sig;
    for (const BufferArg& a : func.args) {
      sig.push_back(a.var.get());
    }
    return sig;
  };
  std::shared_ptr<const Program> program;
  bool cached = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(func.body.get());
    if (it != cache.end()) {
      if (it->second.arg_vars == signature()) {
        program = it->second.program;
        cached = true;
      } else {
        // Same body shared by a func with a different argument list: the cached
        // program's buffer slots do not apply. Compile fresh, leave the cache alone.
        cache.erase(it);
      }
    }
  }
  if (!cached) {
    program = CompileToProgram(func);
    std::lock_guard<std::mutex> lock(mu);
    if (cache.size() >= 1024) {
      cache.clear();  // crude eviction: bounds pinned ASTs in long-running processes
    }
    cache[func.body.get()] = CacheEntry{func.body, signature(), program};
  }
  if (program == nullptr) {
    return false;
  }
  Run(*program, args);
  return true;
}

int ProgramNumInstructions(const Program& program) {
  return static_cast<int>(program.code.size());
}

int ProgramNumRegisters(const Program& program) {
  return static_cast<int>(program.reg_init.size());
}

bool ProgramHasParallel(const Program& program) { return program.has_parallel; }

bool ProgramHasVector(const Program& program) { return program.has_vector; }

ProgramStats GetProgramStats(const Program& program) {
  ProgramStats st;
  st.num_instructions = static_cast<int>(program.code.size());
  st.num_registers = static_cast<int>(program.reg_init.size());
  for (const Instr& in : program.code) {
    switch (in.op) {
      case Op::kJmp:
      case Op::kJmpIfZero:
      case Op::kJmpGeI:
        ++st.jumps;
        break;
      case Op::kMulI:
        ++st.int_muls;
        break;
      case Op::kMov:
        ++st.movs;
        break;
      case Op::kLoadF32: case Op::kLoadI8: case Op::kLoadI32: case Op::kLoadI64:
      case Op::kVLoadF32: case Op::kVLoadI8: case Op::kVLoadI32: case Op::kVLoadI64:
        ++st.loads;
        break;
      case Op::kStoreF32: case Op::kStoreF16: case Op::kStoreI8:
      case Op::kStoreI32: case Op::kStoreI64:
      case Op::kVStoreF32: case Op::kVStoreF16: case Op::kVStoreI8:
      case Op::kVStoreI32: case Op::kVStoreI64:
        ++st.stores;
        break;
      default:
        break;
    }
  }
  st.unrolled_loops = program.spec_unrolled_loops;
  st.hoisted_lets = program.spec_hoisted_lets;
  st.csed_muls = program.spec_csed_muls;
  st.strength_reduced = program.spec_strength_reduced;
  st.peephole_removed = program.spec_peephole_removed;
  return st;
}

// --- fallback diagnostics ----------------------------------------------------------

namespace {

std::atomic<int64_t> g_fallback_count{0};

std::atomic<bool>& StrictSlot() {
  static std::atomic<bool> strict = [] {
    const char* s = std::getenv("TVMCPP_VM_STRICT");
    return s != nullptr && std::string(s) == "1";
  }();
  return strict;
}

}  // namespace

int64_t FallbackCount() { return g_fallback_count.load(std::memory_order_relaxed); }

void ResetFallbackCount() { g_fallback_count.store(0, std::memory_order_relaxed); }

bool StrictMode() { return StrictSlot().load(std::memory_order_relaxed); }

void SetStrictMode(bool strict) {
  StrictSlot().store(strict, std::memory_order_relaxed);
}

void NoteFallback(const std::string& func_name) {
  g_fallback_count.fetch_add(1, std::memory_order_relaxed);
  if (StrictMode()) {
    LOG(FATAL) << "TVMCPP_VM_STRICT: " << func_name
               << " silently fell back down-tier (native or VM compile failed); see "
                  "the preceding log line for the unsupported construct";
  }
}

}  // namespace vm
}  // namespace tvmcpp
