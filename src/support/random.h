// Deterministic pseudo-random number generation for tuners and simulators.
//
// All stochastic components of tvm-cpp take an explicit seed so every bench and test is
// reproducible; we use a SplitMix64-seeded xoshiro256** generator.
#ifndef SRC_SUPPORT_RANDOM_H_
#define SRC_SUPPORT_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace tvmcpp {

// Fast deterministic RNG (xoshiro256**). Not cryptographic; used for search heuristics,
// synthetic data, and simulator jitter.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double UniformReal() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // Standard normal via Box-Muller.
  double Normal() {
    double u1 = UniformReal();
    double u2 = UniformReal();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace tvmcpp

#endif  // SRC_SUPPORT_RANDOM_H_
