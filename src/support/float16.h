// IEEE 754 binary16 (half precision) rounding helpers.
//
// The runtime stores float16 data widened to float32 (see src/interp), so "float16"
// semantics reduce to quantizing a float32 through the half-precision grid on every
// cast/store. Both execution engines (tree-walking interpreter and bytecode VM) share
// these helpers so their float16 results are bitwise identical.
#ifndef SRC_SUPPORT_FLOAT16_H_
#define SRC_SUPPORT_FLOAT16_H_

#include <cstdint>
#include <cstring>

namespace tvmcpp {

// float32 -> binary16 bit pattern, round-to-nearest-even. Overflow goes to infinity,
// subnormals are rounded into the half subnormal grid, NaN payload is truncated
// (quiet bit forced so the result stays a NaN).
inline uint16_t Float32ToHalfBits(float value) {
  uint32_t f;
  std::memcpy(&f, &value, sizeof(f));
  uint16_t sign = static_cast<uint16_t>((f >> 16) & 0x8000u);
  uint32_t exp = (f >> 23) & 0xffu;
  uint32_t mant = f & 0x7fffffu;
  if (exp == 0xffu) {  // inf / NaN
    if (mant == 0) {
      return static_cast<uint16_t>(sign | 0x7c00u);
    }
    return static_cast<uint16_t>(sign | 0x7c00u | 0x200u | (mant >> 13));
  }
  int e = static_cast<int>(exp) - 127 + 15;  // rebias
  if (e >= 0x1f) {  // overflow -> inf
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (e <= 0) {  // half subnormal (or underflow to zero)
    if (e < -10) {
      return sign;
    }
    mant |= 0x800000u;  // implicit leading 1
    uint32_t shift = static_cast<uint32_t>(14 - e);
    uint32_t half_mant = mant >> shift;
    uint32_t rem = mant & ((1u << shift) - 1u);
    uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) {
      ++half_mant;  // cannot overflow past 0x400: that would be the smallest normal
    }
    return static_cast<uint16_t>(sign | half_mant);
  }
  uint16_t bits =
      static_cast<uint16_t>(sign | (static_cast<uint32_t>(e) << 10) | (mant >> 13));
  uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (bits & 1u))) {
    ++bits;  // mantissa carry may ripple into the exponent; that is correct RNE
  }
  return bits;
}

// binary16 bit pattern -> float32 (exact).
inline float HalfBitsToFloat32(uint16_t h) {
  uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  uint32_t exp = (h >> 10) & 0x1fu;
  uint32_t mant = h & 0x3ffu;
  uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;  // +-0
    } else {
      int e = 0;  // normalize the subnormal
      uint32_t m = mant;
      while (!(m & 0x400u)) {
        m <<= 1;
        ++e;
      }
      f = sign | (static_cast<uint32_t>(127 - 15 + 1 - e) << 23) | ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1fu) {
    f = sign | 0x7f800000u | (mant << 13);
  } else {
    f = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &f, sizeof(out));
  return out;
}

// Rounds a float32 to the nearest representable float16 value (kept in float32 storage).
inline float QuantizeFloat16(float value) {
  return HalfBitsToFloat32(Float32ToHalfBits(value));
}

}  // namespace tvmcpp

#endif  // SRC_SUPPORT_FLOAT16_H_
