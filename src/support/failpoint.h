// Fail-point injection: named places in the code that can be made to fail on
// demand, so the fault-tolerance paths of the stack (retry, fallback, shedding,
// shutdown-under-error) are testable instead of theoretical.
//
// A fail-point is compiled in always and costs one relaxed atomic load while no
// point is armed. Arming happens programmatically (Arm/ArmSpec) or via the
// environment:
//
//   TVMCPP_FAILPOINTS="vm.run=error(0.1),serve.batch_compile=delay(5),*=crash"
//
// spec      := entry (',' entry)*            (';' also accepted)
//   entry   := name '=' action [ '*' N ]     (N = fire at most N times)
//   action  := 'off'
//            | 'error' [ '(' p ')' ]         throw InjectedFault with probability p
//            | 'delay' '(' ms [ ',' p ] ')'  sleep ms with probability p
//            | 'crash' [ '(' p ')' ]         std::abort() with probability p
//   name    := a fail-point name, or '*' to arm every point not named explicitly
//
// Evaluation sites come in two flavors. FAILPOINT(name) may throw (the error
// action) — placed only where a structured error path can absorb the exception
// (the serving layer's submit/execute seams, vm::Run, batch compilation).
// FAILPOINT_SAFE(name) never throws — placed where losing the operation would
// violate an invariant (inside queue push/pop, thread-pool job dispatch): delay
// and crash actions still fire there, error actions are counted but inert.
//
// Determinism: probability draws come from a per-thread stream when a
// ScopedRequestSeed is active (the serving layer opens one per request attempt,
// keyed by the request's admission sequence number), otherwise from a global
// stream seeded by TVMCPP_FAILPOINT_SEED. A single-threaded test run therefore
// fires the exact same faults every time.
#ifndef SRC_SUPPORT_FAILPOINT_H_
#define SRC_SUPPORT_FAILPOINT_H_

#include <cstdint>
#include <stdexcept>
#include <string>

namespace tvmcpp {
namespace failpoint {

enum class ActionKind { kOff, kError, kDelay, kCrash };

struct Action {
  ActionKind kind = ActionKind::kOff;
  double probability = 1.0;  // chance that an evaluation fires the action
  double delay_ms = 0;       // sleep duration for kDelay
  int64_t max_fires = -1;    // stop firing after this many fires (< 0: unlimited)
};

// Thrown by an armed error action at a FAILPOINT (throwing) site.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(const std::string& point, const std::string& msg)
      : std::runtime_error(msg), point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

// Arms `name` (or "*" for the wildcard entry) with `action`. Thread-safe.
void Arm(const std::string& name, const Action& action);
// Parses and arms a full spec string (grammar above). Returns false — arming
// nothing further — on the first malformed entry.
bool ArmSpec(const std::string& spec);
void Disarm(const std::string& name);
// Disarms every point and resets all hit/fire counters.
void DisarmAll();

// Evaluations / fired actions per concrete point name (counted only while some
// point is armed — the disarmed fast path does no bookkeeping).
int64_t HitCount(const std::string& name);
int64_t FireCount(const std::string& name);

// Reseeds the global draw stream (also TVMCPP_FAILPOINT_SEED; default 0x5EED).
void SetGlobalSeed(uint64_t seed);

// Switches this thread's probability draws to a deterministic stream derived from
// (global seed, stream id) for the scope's lifetime. Nestable; restores the
// previous stream on destruction.
class ScopedRequestSeed {
 public:
  explicit ScopedRequestSeed(uint64_t stream);
  ~ScopedRequestSeed();
  ScopedRequestSeed(const ScopedRequestSeed&) = delete;
  ScopedRequestSeed& operator=(const ScopedRequestSeed&) = delete;

 private:
  void* saved_;  // previous thread-local stream (opaque)
};

// Evaluates the fail-point `name`: no-op unless armed (one relaxed atomic load).
// Returns true when an action fired. `throwing` selects FAILPOINT vs
// FAILPOINT_SAFE semantics for the error action.
bool Evaluate(const char* name, bool throwing);

}  // namespace failpoint
}  // namespace tvmcpp

// May throw failpoint::InjectedFault — use only where a typed error path exists.
#define FAILPOINT(name) ::tvmcpp::failpoint::Evaluate(name, /*throwing=*/true)
// Never throws (error actions are inert): for seams that must not lose work.
#define FAILPOINT_SAFE(name) ::tvmcpp::failpoint::Evaluate(name, /*throwing=*/false)

#endif  // SRC_SUPPORT_FAILPOINT_H_
