// Plain-text table formatting used by the benchmark harnesses to print paper-style
// rows (Figure/Table reproductions).
#ifndef SRC_SUPPORT_TABLE_H_
#define SRC_SUPPORT_TABLE_H_

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace tvmcpp {

// Accumulates rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Convenience: format a double with the given precision.
  static std::string Num(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> width(header_.size(), 0);
    for (size_t i = 0; i < header_.size(); ++i) {
      width[i] = header_[i].size();
    }
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      os << "| ";
      for (size_t i = 0; i < width.size(); ++i) {
        std::string cell = i < row.size() ? row[i] : "";
        os << std::left << std::setw(static_cast<int>(width[i])) << cell << " | ";
      }
      os << "\n";
    };
    print_row(header_);
    os << "|";
    for (size_t i = 0; i < width.size(); ++i) {
      os << std::string(width[i] + 2, '-') << "|";
    }
    os << "\n";
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tvmcpp

#endif  // SRC_SUPPORT_TABLE_H_
