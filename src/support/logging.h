// Minimal logging and checking facilities used across tvm-cpp.
//
// CHECK(cond) / CHECK_XX(a, b) abort with a message on failure; LOG(INFO) writes to stderr.
// These mirror the glog-style macros used by the original TVM codebase.
#ifndef SRC_SUPPORT_LOGGING_H_
#define SRC_SUPPORT_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tvmcpp {

// Error thrown by failed CHECKs. Tests may catch it; main() lets it terminate.
class InternalError : public std::runtime_error {
 public:
  explicit InternalError(const std::string& msg) : std::runtime_error(msg) {}
};

class LogMessage {
 public:
  LogMessage(const char* file, int line, const char* tag = nullptr) {
    stream_ << "[" << file << ":" << line << "] ";
    if (tag != nullptr) {
      stream_ << tag << ": ";
    }
  }
  ~LogMessage() { std::cerr << stream_.str() << std::endl; }
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

class LogFatal {
 public:
  LogFatal(const char* file, int line) { stream_ << "[" << file << ":" << line << "] "; }
  [[noreturn]] ~LogFatal() noexcept(false) { throw InternalError(stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace tvmcpp

#define LOG_INFO ::tvmcpp::LogMessage(__FILE__, __LINE__).stream()
// Recoverable-degradation notices (e.g. a corrupt tuning cache falling back to
// untuned schedules): logged and carried on, unlike LOG(FATAL) which throws.
#define LOG_WARNING ::tvmcpp::LogMessage(__FILE__, __LINE__, "warning").stream()
#define LOG_FATAL ::tvmcpp::LogFatal(__FILE__, __LINE__).stream()
#define LOG(severity) LOG_##severity

#define CHECK(x) \
  if (!(x)) LOG(FATAL) << "Check failed: " #x << ' '

#define CHECK_BINARY_OP(name, op, x, y)                                             \
  if (!((x)op(y)))                                                                  \
  LOG(FATAL) << "Check failed: " << #x " " #op " " #y << " (" << (x) << " vs. " \
             << (y) << ") "

#define CHECK_EQ(x, y) CHECK_BINARY_OP(_EQ, ==, x, y)
#define CHECK_NE(x, y) CHECK_BINARY_OP(_NE, !=, x, y)
#define CHECK_LT(x, y) CHECK_BINARY_OP(_LT, <, x, y)
#define CHECK_LE(x, y) CHECK_BINARY_OP(_LE, <=, x, y)
#define CHECK_GT(x, y) CHECK_BINARY_OP(_GT, >, x, y)
#define CHECK_GE(x, y) CHECK_BINARY_OP(_GE, >=, x, y)
#define CHECK_NOTNULL(x) \
  ((x) == nullptr ? (LOG(FATAL) << "Check notnull: " #x << ' ', (x)) : (x))

#endif  // SRC_SUPPORT_LOGGING_H_
