#include "src/support/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "src/support/random.h"

namespace tvmcpp {
namespace failpoint {

namespace {

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Action> armed;
  // Counters keyed by the concrete evaluated name (a wildcard match counts
  // against the point that was evaluated, not against "*").
  std::unordered_map<std::string, std::pair<int64_t, int64_t>> counters;  // hit, fire
  Rng global_rng{0x5EEDULL};
  uint64_t global_seed = 0x5EEDULL;
};

Registry& Reg() {
  static Registry* r = new Registry();  // leaked: usable during static teardown
  return *r;
}

// Fast path: number of armed entries. Zero means Evaluate returns immediately.
std::atomic<int>& ArmedCount() {
  static std::atomic<int> count{0};
  return count;
}

// Thread-local deterministic stream installed by ScopedRequestSeed.
thread_local Rng* tls_stream = nullptr;

uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  // SplitMix64 step over the combined value: decorrelates adjacent stream ids.
  uint64_t z = seed ^ (stream + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void ArmLocked(Registry& reg, const std::string& name, const Action& action) {
  auto it = reg.armed.find(name);
  bool was_armed = it != reg.armed.end();
  if (action.kind == ActionKind::kOff) {
    if (was_armed) {
      reg.armed.erase(it);
      ArmedCount().fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  reg.armed[name] = action;
  if (!was_armed) {
    ArmedCount().fetch_add(1, std::memory_order_relaxed);
  }
}

// Parses "error(0.1)" / "delay(5,0.5)" / "crash" / "off", with an optional
// "*N" max-fires suffix already stripped by the caller. Returns false on error.
bool ParseAction(const std::string& text, Action* out) {
  std::string head = text;
  std::string args;
  size_t open = text.find('(');
  if (open != std::string::npos) {
    if (text.back() != ')') {
      return false;
    }
    head = text.substr(0, open);
    args = text.substr(open + 1, text.size() - open - 2);
  }
  auto parse_double = [](const std::string& s, double* v) {
    char* end = nullptr;
    *v = std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0' && !s.empty();
  };
  if (head == "off") {
    out->kind = ActionKind::kOff;
    return args.empty();
  }
  if (head == "error" || head == "crash") {
    out->kind = head == "error" ? ActionKind::kError : ActionKind::kCrash;
    if (!args.empty() && !parse_double(args, &out->probability)) {
      return false;
    }
    return out->probability >= 0 && out->probability <= 1;
  }
  if (head == "delay") {
    out->kind = ActionKind::kDelay;
    size_t comma = args.find(',');
    std::string ms = comma == std::string::npos ? args : args.substr(0, comma);
    if (!parse_double(ms, &out->delay_ms) || out->delay_ms < 0) {
      return false;
    }
    if (comma != std::string::npos &&
        !parse_double(args.substr(comma + 1), &out->probability)) {
      return false;
    }
    return out->probability >= 0 && out->probability <= 1;
  }
  return false;
}

// One-time arming from the environment. Lazy: the first Evaluate (or counter
// read) pays it, so no static-init ordering concerns.
void EnsureEnvLoaded() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* s = std::getenv("TVMCPP_FAILPOINT_SEED")) {
      SetGlobalSeed(static_cast<uint64_t>(std::strtoull(s, nullptr, 0)));
    }
    if (const char* s = std::getenv("TVMCPP_FAILPOINTS")) {
      if (!ArmSpec(s)) {
        std::cerr << "failpoint: malformed TVMCPP_FAILPOINTS spec: " << s
                  << std::endl;
      }
    }
  });
}

}  // namespace

void Arm(const std::string& name, const Action& action) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  ArmLocked(reg, name, action);
}

bool ArmSpec(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    // Entry separators are ',' and ';' — but only outside parentheses, so
    // "delay(2,0.5)" stays one action argument list.
    size_t end = pos;
    int depth = 0;
    while (end < spec.size() &&
           !((spec[end] == ',' || spec[end] == ';') && depth == 0)) {
      if (spec[end] == '(') {
        ++depth;
      } else if (spec[end] == ')') {
        --depth;
      }
      ++end;
    }
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      continue;
    }
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return false;
    }
    std::string name = entry.substr(0, eq);
    std::string action_text = entry.substr(eq + 1);
    Action action;
    // Optional "*N" suffix after the action: fire at most N times. The '*' of a
    // wildcard name is on the left of '=', so this parse is unambiguous.
    size_t star = action_text.rfind('*');
    if (star != std::string::npos && star > 0 &&
        action_text.find(')', star) == std::string::npos) {
      char* endp = nullptr;
      long n = std::strtol(action_text.c_str() + star + 1, &endp, 10);
      if (endp == nullptr || *endp != '\0' || n < 0) {
        return false;
      }
      action.max_fires = n;
      action_text = action_text.substr(0, star);
    }
    if (!ParseAction(action_text, &action)) {
      return false;
    }
    Arm(name, action);
  }
  return true;
}

void Disarm(const std::string& name) {
  Action off;
  off.kind = ActionKind::kOff;
  Arm(name, off);
}

void DisarmAll() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  ArmedCount().fetch_sub(static_cast<int>(reg.armed.size()),
                         std::memory_order_relaxed);
  reg.armed.clear();
  reg.counters.clear();
}

int64_t HitCount(const std::string& name) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.counters.find(name);
  return it == reg.counters.end() ? 0 : it->second.first;
}

int64_t FireCount(const std::string& name) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.counters.find(name);
  return it == reg.counters.end() ? 0 : it->second.second;
}

void SetGlobalSeed(uint64_t seed) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.global_seed = seed;
  reg.global_rng = Rng(seed);
}

ScopedRequestSeed::ScopedRequestSeed(uint64_t stream) {
  saved_ = tls_stream;
  uint64_t seed;
  {
    Registry& reg = Reg();
    std::lock_guard<std::mutex> lock(reg.mu);
    seed = MixSeed(reg.global_seed, stream);
  }
  tls_stream = new Rng(seed);
}

ScopedRequestSeed::~ScopedRequestSeed() {
  delete tls_stream;
  tls_stream = static_cast<Rng*>(saved_);
}

bool Evaluate(const char* name, bool throwing) {
  if (ArmedCount().load(std::memory_order_relaxed) == 0) {
    EnsureEnvLoaded();  // cheap after the first call (std::call_once fast path)
    if (ArmedCount().load(std::memory_order_relaxed) == 0) {
      return false;
    }
  }
  Registry& reg = Reg();
  Action action;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.armed.find(name);
    if (it == reg.armed.end()) {
      it = reg.armed.find("*");
    }
    if (it == reg.armed.end()) {
      return false;
    }
    auto& counter = reg.counters[name];
    ++counter.first;  // hit
    action = it->second;
    // An error action at a non-throwing (FAILPOINT_SAFE) site is inert by
    // contract: counted as a hit, never as a fire, and consumes no draw — the
    // deterministic stream stays aligned with what a throwing site would see.
    if (action.kind == ActionKind::kError && !throwing) {
      return false;
    }
    double draw = action.probability >= 1.0
                      ? 0.0
                      : (tls_stream != nullptr ? tls_stream->UniformReal()
                                               : reg.global_rng.UniformReal());
    if (draw >= action.probability) {
      return false;
    }
    if (action.max_fires >= 0 && counter.second >= action.max_fires) {
      return false;
    }
    ++counter.second;  // fire
  }
  switch (action.kind) {
    case ActionKind::kDelay:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          action.delay_ms));
      return true;
    case ActionKind::kError:
      throw InjectedFault(name, std::string("injected fault at ") + name);
    case ActionKind::kCrash:
      std::cerr << "failpoint: injected crash at " << name << std::endl;
      std::abort();
    case ActionKind::kOff:
      break;
  }
  return false;
}

}  // namespace failpoint
}  // namespace tvmcpp
