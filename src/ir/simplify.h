// Rule-based arithmetic simplification and constant-integer bound analysis.
//
// The Analyzer tracks integer ranges of bound variables (loop vars, thread indices) and
// provides:
//   * ConstBound(e)  — conservative [min, max] of an integer expression
//   * CanProve(cond) — returns true only when `cond` is provably true
//   * Simplify(e)    — constant folding + affine rewrites (used after substitution during
//                      lowering, e.g. collapsing (yo*8 + yi) / 8 -> yo)
#ifndef SRC_IR_SIMPLIFY_H_
#define SRC_IR_SIMPLIFY_H_

#include <cstdint>
#include <limits>
#include <unordered_map>

#include "src/ir/expr.h"
#include "src/ir/stmt.h"

namespace tvmcpp {

// A conservative closed integer interval.
struct ConstBound {
  int64_t min = std::numeric_limits<int64_t>::min();
  int64_t max = std::numeric_limits<int64_t>::max();
  bool IsSingle() const { return min == max; }
  bool IsBounded() const {
    return min != std::numeric_limits<int64_t>::min() &&
           max != std::numeric_limits<int64_t>::max();
  }
  static ConstBound Single(int64_t v) { return {v, v}; }
  static ConstBound Everything() { return {}; }
};

// Arithmetic context with variable range bindings.
class Analyzer {
 public:
  // Binds var to the integer interval [min, max].
  void Bind(const VarNode* v, int64_t min_value, int64_t max_value);
  // Binds var to range [r.min, r.min + r.extent - 1]; both must be const-foldable.
  void Bind(const VarNode* v, const Range& r);
  void Unbind(const VarNode* v);

  ConstBound GetConstBound(const Expr& e) const;
  // Proves a boolean expression true (returns false when unknown).
  bool CanProve(const Expr& cond) const;
  bool CanProveGE(const Expr& a, int64_t b) const;
  bool CanProveLT(const Expr& a, int64_t b) const;

  Expr Simplify(const Expr& e) const;
  Stmt Simplify(const Stmt& s) const;

 private:
  std::unordered_map<const VarNode*, ConstBound> bounds_;
};

// Convenience: simplification with an empty context.
Expr Simplify(const Expr& e);
Stmt Simplify(const Stmt& s);

// Floor division / modulo helpers shared by the simplifier and the interpreter.
int64_t FloorDiv(int64_t a, int64_t b);
int64_t FloorMod(int64_t a, int64_t b);

}  // namespace tvmcpp

#endif  // SRC_IR_SIMPLIFY_H_
