// The low-level statement IR: the loop-program AST that schedules lower into and
// that back-ends (interpreter, machine models, VDLA codegen) consume.
#ifndef SRC_IR_STMT_H_
#define SRC_IR_STMT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/ir/expr.h"

namespace tvmcpp {

enum class StmtKind : uint8_t {
  kLetStmt,
  kAttrStmt,
  kAssert,
  kStore,
  kAllocate,
  kFor,
  kIfThenElse,
  kSeq,
  kEvaluate,
};

class StmtNode {
 public:
  explicit StmtNode(StmtKind kind) : kind(kind) {}
  virtual ~StmtNode() = default;
  const StmtKind kind;
};

using Stmt = std::shared_ptr<const StmtNode>;

class LetStmtNode : public StmtNode {
 public:
  LetStmtNode(Var var, Expr value, Stmt body)
      : StmtNode(StmtKind::kLetStmt),
        var(std::move(var)),
        value(std::move(value)),
        body(std::move(body)) {}
  const Var var;
  const Expr value;
  const Stmt body;
};

// Generic annotation wrapper, e.g. {key="thread_extent", value=N} around a thread-bound
// loop body, {key="storage_scope", value=StringImm} around allocations, or
// {key="pragma_tensorize", ...}.
class AttrStmtNode : public StmtNode {
 public:
  AttrStmtNode(std::string key, Expr value, Stmt body)
      : StmtNode(StmtKind::kAttrStmt),
        key(std::move(key)),
        value(std::move(value)),
        body(std::move(body)) {}
  const std::string key;
  const Expr value;
  const Stmt body;
};

class AssertStmtNode : public StmtNode {
 public:
  AssertStmtNode(Expr condition, std::string message, Stmt body)
      : StmtNode(StmtKind::kAssert),
        condition(std::move(condition)),
        message(std::move(message)),
        body(std::move(body)) {}
  const Expr condition;
  const std::string message;
  const Stmt body;
};

// Store `value` (possibly a vector) into flat buffer `buffer_var` at `index`.
class StoreNode : public StmtNode {
 public:
  StoreNode(Var buffer_var, Expr value, Expr index, Expr predicate)
      : StmtNode(StmtKind::kStore),
        buffer_var(std::move(buffer_var)),
        value(std::move(value)),
        index(std::move(index)),
        predicate(std::move(predicate)) {}
  const Var buffer_var;
  const Expr value;
  const Expr index;
  const Expr predicate;  // may be null
};

// Allocation of a flat buffer in a given storage scope: "global", "shared", "local",
// or an accelerator special scope such as "vdla.acc_buffer" (Section 4.2 memory scopes).
class AllocateNode : public StmtNode {
 public:
  AllocateNode(Var buffer_var, DataType dtype, std::vector<Expr> extents, std::string scope,
               Stmt body)
      : StmtNode(StmtKind::kAllocate),
        buffer_var(std::move(buffer_var)),
        dtype(dtype),
        extents(std::move(extents)),
        scope(std::move(scope)),
        body(std::move(body)) {}
  const Var buffer_var;
  const DataType dtype;
  const std::vector<Expr> extents;
  const std::string scope;
  const Stmt body;
};

// Loop kinds. kThreadBinding loops do not execute sequentially on real hardware; the
// interpreter still iterates them to preserve semantics while machine models account
// for the parallelism.
enum class ForType : uint8_t {
  kSerial,
  kParallel,
  kVectorized,
  kUnrolled,
  kVThread,
  kThreadBinding,
};

class ForNode : public StmtNode {
 public:
  ForNode(Var loop_var, Expr min, Expr extent, ForType for_type, std::string thread_tag,
          Stmt body)
      : StmtNode(StmtKind::kFor),
        loop_var(std::move(loop_var)),
        min(std::move(min)),
        extent(std::move(extent)),
        for_type(for_type),
        thread_tag(std::move(thread_tag)),
        body(std::move(body)) {}
  const Var loop_var;
  const Expr min;
  const Expr extent;
  const ForType for_type;
  const std::string thread_tag;  // non-empty iff for_type is kThreadBinding
  const Stmt body;
};

class IfThenElseNode : public StmtNode {
 public:
  IfThenElseNode(Expr condition, Stmt then_case, Stmt else_case)
      : StmtNode(StmtKind::kIfThenElse),
        condition(std::move(condition)),
        then_case(std::move(then_case)),
        else_case(std::move(else_case)) {}
  const Expr condition;
  const Stmt then_case;
  const Stmt else_case;  // may be null
};

class SeqStmtNode : public StmtNode {
 public:
  explicit SeqStmtNode(std::vector<Stmt> seq) : StmtNode(StmtKind::kSeq), seq(std::move(seq)) {}
  const std::vector<Stmt> seq;
};

class EvaluateNode : public StmtNode {
 public:
  explicit EvaluateNode(Expr value) : StmtNode(StmtKind::kEvaluate), value(std::move(value)) {}
  const Expr value;
};

// Constructor helpers.
Stmt let_stmt(Var v, Expr value, Stmt body);
Stmt attr_stmt(const std::string& key, Expr value, Stmt body);
Stmt assert_stmt(Expr cond, const std::string& message, Stmt body);
Stmt store(Var buf, Expr value, Expr index, Expr predicate = nullptr);
Stmt allocate(Var buf, DataType t, std::vector<Expr> extents, const std::string& scope, Stmt body);
Stmt for_stmt(Var loop_var, Expr min, Expr extent, Stmt body,
              ForType for_type = ForType::kSerial, const std::string& thread_tag = "");
Stmt if_then_else_stmt(Expr cond, Stmt then_case, Stmt else_case = nullptr);
// Flattens nested Seq nodes and drops no-ops; returns the single stmt when possible.
Stmt seq(std::vector<Stmt> stmts);
Stmt evaluate(Expr value);
Stmt nop();

// Well-known intrinsic names used in Evaluate(Call(...)) statements.
inline constexpr const char* kSyncIntrin = "tvm_storage_sync";       // GPU barrier
inline constexpr const char* kPushDepIntrin = "vdla_push_dep";       // DAE token enqueue
inline constexpr const char* kPopDepIntrin = "vdla_pop_dep";         // DAE token dequeue
inline constexpr const char* kDmaCopyIntrin = "vdla_dma_copy2d";
inline constexpr const char* kGemmIntrin = "vdla_gemm";
inline constexpr const char* kFillZeroIntrin = "vdla_fill_zero";
inline constexpr const char* kAluIntrin = "vdla_alu";

template <typename T>
std::shared_ptr<const T> as(const Stmt& s) {
  return std::static_pointer_cast<const T>(s);
}

}  // namespace tvmcpp

#endif  // SRC_IR_STMT_H_
