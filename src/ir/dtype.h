// Scalar/vector data types used throughout the IR, mirroring TVM's DLDataType.
#ifndef SRC_IR_DTYPE_H_
#define SRC_IR_DTYPE_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "src/support/logging.h"

namespace tvmcpp {

// Type code for DataType: signed int, unsigned int, IEEE float, or opaque handle (pointer).
enum class TypeCode : uint8_t { kInt = 0, kUInt = 1, kFloat = 2, kHandle = 3 };

// A (code, bits, lanes) data type. lanes > 1 denotes a vector type produced by vectorization.
// bits may be sub-byte (1 or 2) for the ultra low-precision operators of Section 6.2.
class DataType {
 public:
  DataType() : code_(TypeCode::kFloat), bits_(32), lanes_(1) {}
  DataType(TypeCode code, int bits, int lanes) : code_(code), bits_(bits), lanes_(lanes) {}

  TypeCode code() const { return code_; }
  int bits() const { return bits_; }
  int lanes() const { return lanes_; }

  bool is_float() const { return code_ == TypeCode::kFloat; }
  bool is_int() const { return code_ == TypeCode::kInt; }
  bool is_uint() const { return code_ == TypeCode::kUInt; }
  bool is_handle() const { return code_ == TypeCode::kHandle; }
  bool is_bool() const { return code_ == TypeCode::kUInt && bits_ == 1; }
  bool is_scalar() const { return lanes_ == 1; }
  bool is_vector() const { return lanes_ > 1; }

  // Bytes occupied by one lane, rounding sub-byte types up to one byte for storage.
  int bytes() const { return (bits_ + 7) / 8; }

  DataType with_lanes(int lanes) const { return DataType(code_, bits_, lanes); }
  DataType element_of() const { return with_lanes(1); }

  bool operator==(const DataType& other) const {
    return code_ == other.code_ && bits_ == other.bits_ && lanes_ == other.lanes_;
  }
  bool operator!=(const DataType& other) const { return !(*this == other); }

  static DataType Float(int bits, int lanes = 1) { return DataType(TypeCode::kFloat, bits, lanes); }
  static DataType Int(int bits, int lanes = 1) { return DataType(TypeCode::kInt, bits, lanes); }
  static DataType UInt(int bits, int lanes = 1) { return DataType(TypeCode::kUInt, bits, lanes); }
  static DataType Float32(int lanes = 1) { return Float(32, lanes); }
  static DataType Float16(int lanes = 1) { return Float(16, lanes); }
  static DataType Int32(int lanes = 1) { return Int(32, lanes); }
  static DataType Int64(int lanes = 1) { return Int(64, lanes); }
  static DataType Int8(int lanes = 1) { return Int(8, lanes); }
  static DataType Bool(int lanes = 1) { return UInt(1, lanes); }
  static DataType Handle() { return DataType(TypeCode::kHandle, 64, 1); }

  std::string ToString() const {
    std::string base;
    switch (code_) {
      case TypeCode::kInt:
        base = "int";
        break;
      case TypeCode::kUInt:
        base = bits_ == 1 ? "bool" : "uint";
        break;
      case TypeCode::kFloat:
        base = "float";
        break;
      case TypeCode::kHandle:
        return "handle";
    }
    if (!(code_ == TypeCode::kUInt && bits_ == 1)) {
      base += std::to_string(bits_);
    }
    if (lanes_ > 1) {
      base += "x" + std::to_string(lanes_);
    }
    return base;
  }

 private:
  TypeCode code_;
  int16_t bits_;
  int16_t lanes_;
};

inline std::ostream& operator<<(std::ostream& os, const DataType& t) { return os << t.ToString(); }

}  // namespace tvmcpp

#endif  // SRC_IR_DTYPE_H_
