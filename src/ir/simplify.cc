#include "src/ir/simplify.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "src/ir/functor.h"
#include "src/ir/substitute.h"

namespace tvmcpp {

int64_t FloorDiv(int64_t a, int64_t b) {
  CHECK_NE(b, 0) << "division by zero";
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) {
    --q;
  }
  return q;
}

int64_t FloorMod(int64_t a, int64_t b) { return a - FloorDiv(a, b) * b; }

void Analyzer::Bind(const VarNode* v, int64_t min_value, int64_t max_value) {
  bounds_[v] = ConstBound{min_value, max_value};
}

void Analyzer::Bind(const VarNode* v, const Range& r) {
  Expr mn = Simplify(r.min());
  Expr ext = Simplify(r.extent());
  int64_t mn_v, ext_v;
  if (is_const_int(mn, &mn_v) && is_const_int(ext, &ext_v)) {
    Bind(v, mn_v, mn_v + ext_v - 1);
  } else {
    // Unknown range: leave unbound (conservative).
    bounds_.erase(v);
  }
}

void Analyzer::Unbind(const VarNode* v) { bounds_.erase(v); }

namespace {

constexpr int64_t kNegInf = std::numeric_limits<int64_t>::min();
constexpr int64_t kPosInf = std::numeric_limits<int64_t>::max();

bool IsInf(int64_t v) { return v == kNegInf || v == kPosInf; }

int64_t SatAdd(int64_t a, int64_t b) {
  if (IsInf(a) || IsInf(b)) {
    if (a == kPosInf || b == kPosInf) {
      return kPosInf;
    }
    return kNegInf;
  }
  int64_t r;
  if (__builtin_add_overflow(a, b, &r)) {
    return a > 0 ? kPosInf : kNegInf;
  }
  return r;
}

int64_t SatMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  if (IsInf(a) || IsInf(b)) {
    return ((a > 0) == (b > 0)) ? kPosInf : kNegInf;
  }
  int64_t r;
  if (__builtin_mul_overflow(a, b, &r)) {
    return ((a > 0) == (b > 0)) ? kPosInf : kNegInf;
  }
  return r;
}

class BoundEvaluator {
 public:
  explicit BoundEvaluator(const std::unordered_map<const VarNode*, ConstBound>& bounds)
      : bounds_(bounds) {}

  ConstBound Eval(const Expr& e) const {
    if (e == nullptr) {
      return ConstBound::Everything();
    }
    switch (e->kind) {
      case ExprKind::kIntImm:
        return ConstBound::Single(static_cast<const IntImmNode*>(e.get())->value);
      case ExprKind::kVar: {
        auto it = bounds_.find(static_cast<const VarNode*>(e.get()));
        return it == bounds_.end() ? ConstBound::Everything() : it->second;
      }
      case ExprKind::kCast: {
        const auto* n = static_cast<const CastNode*>(e.get());
        if (n->dtype.is_int() && n->value->dtype.is_int()) {
          return Eval(n->value);
        }
        return ConstBound::Everything();
      }
      case ExprKind::kAdd: {
        const auto* n = static_cast<const BinaryNode*>(e.get());
        ConstBound a = Eval(n->a), b = Eval(n->b);
        return {SatAdd(a.min, b.min), SatAdd(a.max, b.max)};
      }
      case ExprKind::kSub: {
        const auto* n = static_cast<const BinaryNode*>(e.get());
        ConstBound a = Eval(n->a), b = Eval(n->b);
        return {SatAdd(a.min, b.max == kPosInf ? kNegInf : -b.max),
                SatAdd(a.max, b.min == kNegInf ? kPosInf : -b.min)};
      }
      case ExprKind::kMul: {
        const auto* n = static_cast<const BinaryNode*>(e.get());
        ConstBound a = Eval(n->a), b = Eval(n->b);
        int64_t c[4] = {SatMul(a.min, b.min), SatMul(a.min, b.max), SatMul(a.max, b.min),
                        SatMul(a.max, b.max)};
        return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
      }
      case ExprKind::kDiv: {
        const auto* n = static_cast<const BinaryNode*>(e.get());
        ConstBound a = Eval(n->a), b = Eval(n->b);
        if (b.IsSingle() && b.min > 0 && a.IsBounded()) {
          return {FloorDiv(a.min, b.min), FloorDiv(a.max, b.min)};
        }
        return ConstBound::Everything();
      }
      case ExprKind::kMod: {
        const auto* n = static_cast<const BinaryNode*>(e.get());
        ConstBound b = Eval(n->b);
        if (b.IsSingle() && b.min > 0) {
          ConstBound a = Eval(n->a);
          if (a.IsBounded() && a.min >= 0 && a.max < b.min) {
            return a;  // modulo is identity
          }
          return {0, b.min - 1};
        }
        return ConstBound::Everything();
      }
      case ExprKind::kMin: {
        const auto* n = static_cast<const BinaryNode*>(e.get());
        ConstBound a = Eval(n->a), b = Eval(n->b);
        return {std::min(a.min, b.min), std::min(a.max, b.max)};
      }
      case ExprKind::kMax: {
        const auto* n = static_cast<const BinaryNode*>(e.get());
        ConstBound a = Eval(n->a), b = Eval(n->b);
        return {std::max(a.min, b.min), std::max(a.max, b.max)};
      }
      case ExprKind::kSelect: {
        const auto* n = static_cast<const SelectNode*>(e.get());
        ConstBound a = Eval(n->true_value), b = Eval(n->false_value);
        return {std::min(a.min, b.min), std::max(a.max, b.max)};
      }
      case ExprKind::kCall: {
        const auto* n = static_cast<const CallNode*>(e.get());
        if (n->name == "if_then_else" && n->args.size() == 3) {
          ConstBound a = Eval(n->args[1]), b = Eval(n->args[2]);
          return {std::min(a.min, b.min), std::max(a.max, b.max)};
        }
        return ConstBound::Everything();
      }
      default:
        return ConstBound::Everything();
    }
  }

 private:
  const std::unordered_map<const VarNode*, ConstBound>& bounds_;
};

// The rewriting simplifier. Applies recursively bottom-up via ExprMutator, with
// rule application in the binary hook.
class Simplifier : public StmtMutator {
 public:
  explicit Simplifier(const std::unordered_map<const VarNode*, ConstBound>& bounds)
      : bounds_(bounds), bound_eval_(bounds) {}

  Expr Mutate(const Expr& e) override {
    if (e == nullptr) {
      return e;
    }
    Expr r = StmtMutator::Mutate(e);
    return PostRule(r);
  }

 protected:
  Expr MutateBinary(const BinaryNode* op, const Expr& e) override {
    Expr a = Mutate(op->a);
    Expr b = Mutate(op->b);
    return SimplifyBinary(op->kind, std::move(a), std::move(b));
  }

  Expr MutateCast(const CastNode* op, const Expr& e) override {
    Expr v = Mutate(op->value);
    if (const IntImmNode* iv = as_int(v)) {
      if (op->dtype.is_float()) {
        return make_const(op->dtype, static_cast<double>(iv->value));
      }
      if (op->dtype.is_int() || op->dtype.is_uint()) {
        return std::make_shared<IntImmNode>(op->dtype, iv->value);
      }
    }
    if (const FloatImmNode* fv = as_float(v)) {
      if (op->dtype.is_float()) {
        return std::make_shared<FloatImmNode>(op->dtype, fv->value);
      }
      if (op->dtype.is_int()) {
        return std::make_shared<IntImmNode>(op->dtype, static_cast<int64_t>(fv->value));
      }
    }
    if (v->dtype == op->dtype) {
      return v;
    }
    return cast(op->dtype, v);
  }

  Expr MutateSelect(const SelectNode* op, const Expr& e) override {
    Expr c = Mutate(op->condition);
    int64_t cv;
    if (is_const_int(c, &cv)) {
      return cv != 0 ? Mutate(op->true_value) : Mutate(op->false_value);
    }
    Expr t = Mutate(op->true_value);
    Expr f = Mutate(op->false_value);
    if (StructuralEqual(t, f)) {
      return t;
    }
    return select(c, t, f);
  }

  Expr MutateNot(const NotNode* op, const Expr& e) override {
    Expr a = Mutate(op->a);
    int64_t v;
    if (is_const_int(a, &v)) {
      return make_const(DataType::Bool(), v == 0 ? 1 : 0);
    }
    return logic_not(a);
  }

  Expr MutateCall(const CallNode* op, const Expr& e) override {
    Expr base = StmtMutator::MutateCall(op, e);
    const auto* n = static_cast<const CallNode*>(base.get());
    if (n->name == "if_then_else" && n->args.size() == 3) {
      int64_t cv;
      if (is_const_int(n->args[0], &cv)) {
        return cv != 0 ? n->args[1] : n->args[2];
      }
      if (bound_eval_.Eval(n->args[0]).min >= 1) {
        return n->args[1];
      }
    }
    return base;
  }

  // Statement-level cleanups.
  Stmt MutateFor(const ForNode* op, const Stmt& s) override {
    Expr mn = Mutate(op->min);
    Expr extent = Mutate(op->extent);
    int64_t ev;
    if (is_const_int(extent, &ev)) {
      if (ev == 0) {
        return nop();
      }
      if (ev == 1 && op->for_type != ForType::kThreadBinding &&
          op->for_type != ForType::kVThread) {
        Stmt body = MutateStmt(op->body);
        VarMap vmap{{op->loop_var.get(), mn}};
        Simplifier inner(bounds_);
        return inner.MutateStmt(Substitute(body, vmap));
      }
    }
    Stmt body = MutateStmt(op->body);
    return for_stmt(op->loop_var, mn, extent, body, op->for_type, op->thread_tag);
  }

  Stmt MutateIfThenElse(const IfThenElseNode* op, const Stmt& s) override {
    Expr cond = Mutate(op->condition);
    int64_t cv;
    if (is_const_int(cond, &cv)) {
      if (cv != 0) {
        return MutateStmt(op->then_case);
      }
      return op->else_case ? MutateStmt(op->else_case) : nop();
    }
    if (bound_eval_.Eval(cond).min >= 1) {
      return MutateStmt(op->then_case);
    }
    Stmt then_case = MutateStmt(op->then_case);
    Stmt else_case = op->else_case ? MutateStmt(op->else_case) : nullptr;
    return if_then_else_stmt(cond, then_case, else_case);
  }

 private:
  // Scalar-int guard for the linear-decomposition rewrites: they rebuild with scalar
  // int constants, which cannot mix with vector (lanes > 1) terms.
  static bool BothInt(const Expr& a, const Expr& b) {
    return (a->dtype.is_int() || a->dtype.is_uint()) &&
           (b->dtype.is_int() || b->dtype.is_uint()) && a->dtype.lanes() == 1 &&
           b->dtype.lanes() == 1;
  }

  // A linear decomposition: sum of coeff*term plus a constant. Terms are non-additive
  // expressions grouped by structural equality.
  struct LinTerm {
    Expr term;
    int64_t coeff;
  };

  static void LinearizeInto(const Expr& e, int64_t scale, std::vector<LinTerm>* terms,
                            int64_t* konst, int depth = 0) {
    if (const IntImmNode* i = as_int(e)) {
      *konst += scale * i->value;
      return;
    }
    if (depth < 16) {
      if (e->kind == ExprKind::kAdd || e->kind == ExprKind::kSub) {
        const auto* n = static_cast<const BinaryNode*>(e.get());
        LinearizeInto(n->a, scale, terms, konst, depth + 1);
        LinearizeInto(n->b, e->kind == ExprKind::kAdd ? scale : -scale, terms, konst,
                      depth + 1);
        return;
      }
      if (e->kind == ExprKind::kMul) {
        const auto* n = static_cast<const BinaryNode*>(e.get());
        if (const IntImmNode* c = as_int(n->b)) {
          LinearizeInto(n->a, scale * c->value, terms, konst, depth + 1);
          return;
        }
        if (const IntImmNode* c = as_int(n->a)) {
          LinearizeInto(n->b, scale * c->value, terms, konst, depth + 1);
          return;
        }
      }
    }
    for (LinTerm& t : *terms) {
      if (StructuralEqual(t.term, e)) {
        t.coeff += scale;
        return;
      }
    }
    terms->push_back(LinTerm{e, scale});
  }

  static Expr RebuildLinear(const std::vector<LinTerm>& terms, int64_t konst, DataType t) {
    Expr result;
    for (const LinTerm& lt : terms) {
      if (lt.coeff == 0) {
        continue;
      }
      Expr piece = lt.coeff == 1 ? lt.term : mul(lt.term, make_int(lt.coeff));
      result = result == nullptr ? piece : add(result, piece);
    }
    if (result == nullptr) {
      return make_const(t, static_cast<double>(konst));
    }
    if (konst != 0) {
      result = add(result, make_int(konst));
    }
    return result;
  }

  Expr SimplifyBinary(ExprKind kind, Expr a, Expr b) {
    // Constant folding.
    const IntImmNode* ia = as_int(a);
    const IntImmNode* ib = as_int(b);
    if (ia != nullptr && ib != nullptr) {
      return FoldInt(kind, ia->value, ib->value, a->dtype);
    }
    const FloatImmNode* fa = as_float(a);
    const FloatImmNode* fb = as_float(b);
    if (fa != nullptr && fb != nullptr) {
      return FoldFloat(kind, fa->value, fb->value, a->dtype);
    }
    // Zero-absorbing identities are exact only for integers: in IEEE arithmetic
    // x + 0.0 flips -0.0 to +0.0, x * 0.0 keeps x's sign on the zero (and makes
    // NaN from Inf), 0.0 / x is -0.0 for negative x, and x - x is NaN for
    // non-finite x. Folding any of those would diverge bitwise from the
    // unsimplified tree the reference interpreter evaluates, so for floats only
    // the exact identities (x * 1, x / 1, x - 0 with +0) survive.
    const bool is_float = a->dtype.is_float();
    switch (kind) {
      case ExprKind::kAdd:
      case ExprKind::kSub: {
        if (kind == ExprKind::kAdd && is_zero(a) && !is_float) {
          return b;
        }
        if (is_zero(b) && (!is_float || (kind == ExprKind::kSub && fb != nullptr &&
                                         !std::signbit(fb->value)))) {
          return a;
        }
        if (BothInt(a, b)) {
          // Canonicalize via linear decomposition so symbolic terms cancel, e.g.
          // (by*4 + ty) - by*4 -> ty.
          std::vector<LinTerm> terms;
          int64_t konst = 0;
          LinearizeInto(a, 1, &terms, &konst);
          LinearizeInto(b, kind == ExprKind::kAdd ? 1 : -1, &terms, &konst);
          return RebuildLinear(terms, konst, a->dtype);
        }
        if (kind == ExprKind::kSub && !is_float && StructuralEqual(a, b)) {
          return make_zero(a->dtype);
        }
        break;
      }
      case ExprKind::kMul:
        if ((is_zero(a) || is_zero(b)) && !is_float) {
          return make_zero(a->dtype);
        }
        if (is_one(a)) {
          return b;
        }
        if (is_one(b)) {
          return a;
        }
        // (x * c1) * c2 -> x * (c1*c2)
        if (ib != nullptr) {
          if (const auto* an = MatchBinary(a, ExprKind::kMul)) {
            if (const IntImmNode* c1 = as_int(an->b)) {
              return SimplifyBinary(ExprKind::kMul, an->a, make_int(c1->value * ib->value));
            }
          }
        }
        if (ia != nullptr || fa != nullptr) {
          return mul(b, a);
        }
        break;
      case ExprKind::kDiv:
        if (is_one(b)) {
          return a;
        }
        if (is_zero(a) && !is_float) {
          return a;
        }
        if (ib != nullptr && ib->value > 0 && BothInt(a, b)) {
          int64_t c = ib->value;
          // Exact identity: (q*c + r) div c = q + (r div c). Split `a` into terms whose
          // coefficients divide c and a remainder.
          std::vector<LinTerm> terms;
          int64_t konst = 0;
          LinearizeInto(a, 1, &terms, &konst);
          std::vector<LinTerm> quotient, rest;
          for (const LinTerm& t : terms) {
            if (t.coeff % c == 0) {
              quotient.push_back(LinTerm{t.term, t.coeff / c});
            } else {
              rest.push_back(t);
            }
          }
          Expr rest_expr = RebuildLinear(rest, konst, a->dtype);
          ConstBound rb = bound_eval_.Eval(rest_expr);
          if (!quotient.empty() || rest.size() < terms.size()) {
            Expr q = RebuildLinear(quotient, 0, a->dtype);
            if (rb.min >= 0 && rb.max < c) {
              return q;
            }
            int64_t rv;
            if (is_const_int(rest_expr, &rv)) {
              return SimplifyBinary(ExprKind::kAdd, q, make_int(FloorDiv(rv, c)));
            }
            if (rest.size() < terms.size()) {
              return SimplifyBinary(ExprKind::kAdd, q, div(rest_expr, b));
            }
          }
          if (rb.min >= 0 && rb.max < c) {
            return make_zero(a->dtype);
          }
        }
        break;
      case ExprKind::kMod:
        if (is_one(b)) {
          return make_zero(a->dtype);
        }
        if (ib != nullptr && ib->value > 0 && BothInt(a, b)) {
          int64_t c = ib->value;
          // Exact identity: (q*c + r) mod c = r mod c.
          std::vector<LinTerm> terms;
          int64_t konst = 0;
          LinearizeInto(a, 1, &terms, &konst);
          std::vector<LinTerm> rest;
          bool dropped = false;
          for (const LinTerm& t : terms) {
            if (t.coeff % c == 0) {
              dropped = true;
            } else {
              rest.push_back(t);
            }
          }
          int64_t kmod = FloorMod(konst, c);
          dropped |= kmod != konst;
          Expr rest_expr = RebuildLinear(rest, kmod, a->dtype);
          ConstBound rb = bound_eval_.Eval(rest_expr);
          if (rb.min >= 0 && rb.max < c) {
            return rest_expr;
          }
          int64_t rv;
          if (is_const_int(rest_expr, &rv)) {
            return make_const(a->dtype, static_cast<double>(FloorMod(rv, c)));
          }
          if (dropped) {
            return mod(rest_expr, b);
          }
        }
        break;
      case ExprKind::kMin: {
        if (StructuralEqual(a, b)) {
          return a;
        }
        ConstBound ab = bound_eval_.Eval(a);
        ConstBound bb = bound_eval_.Eval(b);
        if (ab.max <= bb.min) {
          return a;
        }
        if (bb.max <= ab.min) {
          return b;
        }
        break;
      }
      case ExprKind::kMax: {
        if (StructuralEqual(a, b)) {
          return a;
        }
        ConstBound ab = bound_eval_.Eval(a);
        ConstBound bb = bound_eval_.Eval(b);
        if (ab.min >= bb.max) {
          return a;
        }
        if (bb.min >= ab.max) {
          return b;
        }
        break;
      }
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
      case ExprKind::kEQ:
      case ExprKind::kNE: {
        if (BothInt(a, b)) {
          ConstBound ab = bound_eval_.Eval(a);
          ConstBound bb = bound_eval_.Eval(b);
          int prove = ProveCmp(kind, ab, bb);
          if (prove == 1) {
            return make_const(DataType::Bool(a->dtype.lanes()), 1);
          }
          if (prove == 0) {
            return make_const(DataType::Bool(a->dtype.lanes()), 0);
          }
        }
        break;
      }
      case ExprKind::kAnd: {
        int64_t v;
        if (is_const_int(a, &v)) {
          return v != 0 ? b : a;
        }
        if (is_const_int(b, &v)) {
          return v != 0 ? a : b;
        }
        break;
      }
      case ExprKind::kOr: {
        int64_t v;
        if (is_const_int(a, &v)) {
          return v != 0 ? a : b;
        }
        if (is_const_int(b, &v)) {
          return v != 0 ? b : a;
        }
        break;
      }
      default:
        break;
    }
    return Rebuild(kind, std::move(a), std::move(b));
  }

  // Returns 1 if provably true, 0 if provably false, -1 if unknown.
  static int ProveCmp(ExprKind kind, const ConstBound& a, const ConstBound& b) {
    switch (kind) {
      case ExprKind::kLT:
        if (a.max < b.min) {
          return 1;
        }
        if (a.min >= b.max) {
          return 0;
        }
        return -1;
      case ExprKind::kLE:
        if (a.max <= b.min) {
          return 1;
        }
        if (a.min > b.max) {
          return 0;
        }
        return -1;
      case ExprKind::kGT:
        return ProveCmp(ExprKind::kLT, b, a);
      case ExprKind::kGE:
        return ProveCmp(ExprKind::kLE, b, a);
      case ExprKind::kEQ:
        if (a.IsSingle() && b.IsSingle() && a.min == b.min) {
          return 1;
        }
        if (a.max < b.min || b.max < a.min) {
          return 0;
        }
        return -1;
      case ExprKind::kNE: {
        int r = ProveCmp(ExprKind::kEQ, a, b);
        return r == -1 ? -1 : 1 - r;
      }
      default:
        return -1;
    }
  }

  static const BinaryNode* MatchBinary(const Expr& e, ExprKind kind) {
    return e->kind == kind ? static_cast<const BinaryNode*>(e.get()) : nullptr;
  }

  static Expr Rebuild(ExprKind kind, Expr a, Expr b) {
    switch (kind) {
      case ExprKind::kAdd:
        return add(a, b);
      case ExprKind::kSub:
        return sub(a, b);
      case ExprKind::kMul:
        return mul(a, b);
      case ExprKind::kDiv:
        return div(a, b);
      case ExprKind::kMod:
        return mod(a, b);
      case ExprKind::kMin:
        return min(a, b);
      case ExprKind::kMax:
        return max(a, b);
      case ExprKind::kEQ:
        return eq(a, b);
      case ExprKind::kNE:
        return ne(a, b);
      case ExprKind::kLT:
        return lt(a, b);
      case ExprKind::kLE:
        return le(a, b);
      case ExprKind::kGT:
        return gt(a, b);
      case ExprKind::kGE:
        return ge(a, b);
      case ExprKind::kAnd:
        return logic_and(a, b);
      case ExprKind::kOr:
        return logic_or(a, b);
      default:
        LOG(FATAL) << "not a binary kind";
    }
  }

  static Expr FoldInt(ExprKind kind, int64_t a, int64_t b, DataType t) {
    switch (kind) {
      case ExprKind::kAdd:
        return std::make_shared<IntImmNode>(t, a + b);
      case ExprKind::kSub:
        return std::make_shared<IntImmNode>(t, a - b);
      case ExprKind::kMul:
        return std::make_shared<IntImmNode>(t, a * b);
      case ExprKind::kDiv:
        return std::make_shared<IntImmNode>(t, FloorDiv(a, b));
      case ExprKind::kMod:
        return std::make_shared<IntImmNode>(t, FloorMod(a, b));
      case ExprKind::kMin:
        return std::make_shared<IntImmNode>(t, std::min(a, b));
      case ExprKind::kMax:
        return std::make_shared<IntImmNode>(t, std::max(a, b));
      case ExprKind::kEQ:
        return make_const(DataType::Bool(), a == b);
      case ExprKind::kNE:
        return make_const(DataType::Bool(), a != b);
      case ExprKind::kLT:
        return make_const(DataType::Bool(), a < b);
      case ExprKind::kLE:
        return make_const(DataType::Bool(), a <= b);
      case ExprKind::kGT:
        return make_const(DataType::Bool(), a > b);
      case ExprKind::kGE:
        return make_const(DataType::Bool(), a >= b);
      case ExprKind::kAnd:
        return make_const(DataType::Bool(), (a != 0) && (b != 0));
      case ExprKind::kOr:
        return make_const(DataType::Bool(), (a != 0) || (b != 0));
      default:
        LOG(FATAL) << "not a binary kind";
    }
  }

  static Expr FoldFloat(ExprKind kind, double a, double b, DataType t) {
    switch (kind) {
      case ExprKind::kAdd:
        return std::make_shared<FloatImmNode>(t, a + b);
      case ExprKind::kSub:
        return std::make_shared<FloatImmNode>(t, a - b);
      case ExprKind::kMul:
        return std::make_shared<FloatImmNode>(t, a * b);
      case ExprKind::kDiv:
        return std::make_shared<FloatImmNode>(t, a / b);
      case ExprKind::kMin:
        return std::make_shared<FloatImmNode>(t, std::min(a, b));
      case ExprKind::kMax:
        return std::make_shared<FloatImmNode>(t, std::max(a, b));
      case ExprKind::kEQ:
        return make_const(DataType::Bool(), a == b);
      case ExprKind::kNE:
        return make_const(DataType::Bool(), a != b);
      case ExprKind::kLT:
        return make_const(DataType::Bool(), a < b);
      case ExprKind::kLE:
        return make_const(DataType::Bool(), a <= b);
      case ExprKind::kGT:
        return make_const(DataType::Bool(), a > b);
      case ExprKind::kGE:
        return make_const(DataType::Bool(), a >= b);
      default:
        LOG(FATAL) << "unsupported float fold";
    }
  }

  Expr PostRule(const Expr& e) { return e; }

  const std::unordered_map<const VarNode*, ConstBound>& bounds_;
  BoundEvaluator bound_eval_;
};

}  // namespace

ConstBound Analyzer::GetConstBound(const Expr& e) const {
  BoundEvaluator eval(bounds_);
  return eval.Eval(e);
}

bool Analyzer::CanProve(const Expr& cond) const {
  Expr s = Simplify(cond);
  int64_t v;
  return is_const_int(s, &v) && v != 0;
}

bool Analyzer::CanProveGE(const Expr& a, int64_t b) const {
  ConstBound bound = GetConstBound(Simplify(a));
  return bound.min >= b;
}

bool Analyzer::CanProveLT(const Expr& a, int64_t b) const {
  ConstBound bound = GetConstBound(Simplify(a));
  return bound.max < b;
}

Expr Analyzer::Simplify(const Expr& e) const {
  Simplifier s(bounds_);
  // Two passes pick up rewrites exposed by the first.
  return s.Mutate(s.Mutate(e));
}

Stmt Analyzer::Simplify(const Stmt& st) const {
  Simplifier s(bounds_);
  return s.MutateStmt(st);
}

Expr Simplify(const Expr& e) {
  Analyzer a;
  return a.Simplify(e);
}

Stmt Simplify(const Stmt& s) {
  Analyzer a;
  return a.Simplify(s);
}

}  // namespace tvmcpp
