#include "src/ir/expr.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace tvmcpp {

namespace {

// Inserts casts so both operands of a binary op share a dtype, preferring float over int
// and wider over narrower.
void Unify(Expr* a, Expr* b) {
  DataType ta = (*a)->dtype;
  DataType tb = (*b)->dtype;
  if (ta == tb) {
    return;
  }
  CHECK_EQ(ta.lanes(), tb.lanes()) << "cannot unify vector widths " << ta << " vs " << tb;
  DataType target = ta;
  if (ta.is_float() != tb.is_float()) {
    target = ta.is_float() ? ta : tb;
  } else if (ta.bits() != tb.bits()) {
    target = ta.bits() >= tb.bits() ? ta : tb;
  }
  if (ta != target) {
    *a = cast(target, *a);
  }
  if (tb != target) {
    *b = cast(target, *b);
  }
}

Expr MakeBinary(ExprKind kind, Expr a, Expr b) {
  Unify(&a, &b);
  DataType t = a->dtype;
  return std::make_shared<BinaryNode>(kind, t, std::move(a), std::move(b));
}

Expr MakeCompare(ExprKind kind, Expr a, Expr b) {
  Unify(&a, &b);
  DataType t = DataType::Bool(a->dtype.lanes());
  return std::make_shared<BinaryNode>(kind, t, std::move(a), std::move(b));
}

}  // namespace

Expr make_const(DataType t, double value) {
  if (t.is_float()) {
    return std::make_shared<FloatImmNode>(t, value);
  }
  return std::make_shared<IntImmNode>(t, static_cast<int64_t>(value));
}

Expr make_int(int64_t value) { return std::make_shared<IntImmNode>(DataType::Int32(), value); }
Expr make_float(double value) { return std::make_shared<FloatImmNode>(DataType::Float32(), value); }
Expr make_zero(DataType t) { return make_const(t, 0); }

Var make_var(const std::string& name, DataType t) { return std::make_shared<VarNode>(name, t); }

IterVar make_itervar(const std::string& name, Expr extent, IterVarType type,
                     const std::string& tag) {
  Range dom(make_int(0), std::move(extent));
  return std::make_shared<IterVarNode>(dom, make_var(name), type, tag);
}

Expr add(Expr a, Expr b) { return MakeBinary(ExprKind::kAdd, std::move(a), std::move(b)); }
Expr sub(Expr a, Expr b) { return MakeBinary(ExprKind::kSub, std::move(a), std::move(b)); }
Expr mul(Expr a, Expr b) { return MakeBinary(ExprKind::kMul, std::move(a), std::move(b)); }
Expr div(Expr a, Expr b) { return MakeBinary(ExprKind::kDiv, std::move(a), std::move(b)); }
Expr mod(Expr a, Expr b) { return MakeBinary(ExprKind::kMod, std::move(a), std::move(b)); }
Expr min(Expr a, Expr b) { return MakeBinary(ExprKind::kMin, std::move(a), std::move(b)); }
Expr max(Expr a, Expr b) { return MakeBinary(ExprKind::kMax, std::move(a), std::move(b)); }
Expr eq(Expr a, Expr b) { return MakeCompare(ExprKind::kEQ, std::move(a), std::move(b)); }
Expr ne(Expr a, Expr b) { return MakeCompare(ExprKind::kNE, std::move(a), std::move(b)); }
Expr lt(Expr a, Expr b) { return MakeCompare(ExprKind::kLT, std::move(a), std::move(b)); }
Expr le(Expr a, Expr b) { return MakeCompare(ExprKind::kLE, std::move(a), std::move(b)); }
Expr gt(Expr a, Expr b) { return MakeCompare(ExprKind::kGT, std::move(a), std::move(b)); }
Expr ge(Expr a, Expr b) { return MakeCompare(ExprKind::kGE, std::move(a), std::move(b)); }

Expr logic_and(Expr a, Expr b) { return MakeBinary(ExprKind::kAnd, std::move(a), std::move(b)); }
Expr logic_or(Expr a, Expr b) { return MakeBinary(ExprKind::kOr, std::move(a), std::move(b)); }
Expr logic_not(Expr a) { return std::make_shared<NotNode>(std::move(a)); }

Expr select(Expr cond, Expr t, Expr f) {
  Unify(&t, &f);
  return std::make_shared<SelectNode>(std::move(cond), std::move(t), std::move(f));
}

Expr cast(DataType t, Expr value) {
  if (value->dtype == t) {
    return value;
  }
  return std::make_shared<CastNode>(t, std::move(value));
}

Expr let(Var v, Expr value, Expr body) {
  return std::make_shared<LetNode>(std::move(v), std::move(value), std::move(body));
}

Expr load(DataType t, Var buf, Expr index, Expr predicate) {
  return std::make_shared<LoadNode>(t, std::move(buf), std::move(index), std::move(predicate));
}

Expr ramp(Expr base, Expr stride, int lanes) {
  return std::make_shared<RampNode>(std::move(base), std::move(stride), lanes);
}

Expr broadcast(Expr value, int lanes) {
  if (lanes == 1) {
    return value;
  }
  return std::make_shared<BroadcastNode>(std::move(value), lanes);
}

Expr call_pure(DataType t, const std::string& name, std::vector<Expr> args) {
  return std::make_shared<CallNode>(t, name, std::move(args), CallType::kPureIntrinsic);
}

Expr call_intrin(DataType t, const std::string& name, std::vector<Expr> args) {
  return std::make_shared<CallNode>(t, name, std::move(args), CallType::kIntrinsic);
}

Expr call_extern(DataType t, const std::string& name, std::vector<Expr> args) {
  return std::make_shared<CallNode>(t, name, std::move(args), CallType::kExtern);
}

namespace {

// NOTE: the dtype must be read before the argument list is built — function argument
// evaluation order is unspecified, so call_pure(x->dtype, ..., {std::move(x)}) would be
// a use-after-move on some compilers.
Expr UnaryIntrin(const char* name, Expr x) {
  DataType t = x->dtype;
  return call_pure(t, name, {std::move(x)});
}

}  // namespace

Expr exp(Expr x) { return UnaryIntrin("exp", std::move(x)); }
Expr log(Expr x) { return UnaryIntrin("log", std::move(x)); }
Expr sqrt(Expr x) { return UnaryIntrin("sqrt", std::move(x)); }
Expr tanh(Expr x) { return UnaryIntrin("tanh", std::move(x)); }
Expr sigmoid(Expr x) { return UnaryIntrin("sigmoid", std::move(x)); }
Expr popcount(Expr x) {
  DataType t = DataType::Int32(x->dtype.lanes());
  return call_pure(t, "popcount", {std::move(x)});
}

Expr floordiv_expr(Expr a, Expr b) { return div(std::move(a), std::move(b)); }

Expr if_then_else(Expr cond, Expr t, Expr f) {
  Unify(&t, &f);
  DataType dtype = t->dtype;
  return call_pure(dtype, "if_then_else", {std::move(cond), std::move(t), std::move(f)});
}

Expr tensor_read(DataType t, std::shared_ptr<void> op, int value_index, const std::string& name,
                 std::vector<Expr> indices) {
  return std::make_shared<TensorReadNode>(t, std::move(op), value_index, name,
                                          std::move(indices));
}

const IntImmNode* as_int(const Expr& e) {
  return e->kind == ExprKind::kIntImm ? static_cast<const IntImmNode*>(e.get()) : nullptr;
}

const FloatImmNode* as_float(const Expr& e) {
  return e->kind == ExprKind::kFloatImm ? static_cast<const FloatImmNode*>(e.get()) : nullptr;
}

bool is_const_int(const Expr& e, int64_t* out) {
  if (const IntImmNode* n = as_int(e)) {
    *out = n->value;
    return true;
  }
  return false;
}

bool is_zero(const Expr& e) {
  int64_t v;
  if (is_const_int(e, &v)) {
    return v == 0;
  }
  if (const FloatImmNode* f = as_float(e)) {
    return f->value == 0.0;
  }
  return false;
}

bool is_one(const Expr& e) {
  int64_t v;
  if (is_const_int(e, &v)) {
    return v == 1;
  }
  if (const FloatImmNode* f = as_float(e)) {
    return f->value == 1.0;
  }
  return false;
}

int64_t get_const_int(const Expr& e) {
  const IntImmNode* n = as_int(e);
  CHECK(n != nullptr) << "expected a constant integer expression";
  return n->value;
}

}  // namespace tvmcpp
