// Human-readable text printer for the IR, used in tests, debugging and docs.
#ifndef SRC_IR_PRINTER_H_
#define SRC_IR_PRINTER_H_

#include <ostream>
#include <string>

#include "src/ir/expr.h"
#include "src/ir/stmt.h"

namespace tvmcpp {

std::string ToString(const Expr& e);
std::string ToString(const Stmt& s);

std::ostream& operator<<(std::ostream& os, const Expr& e);
std::ostream& operator<<(std::ostream& os, const Stmt& s);

}  // namespace tvmcpp

#endif  // SRC_IR_PRINTER_H_
