#include "src/ir/substitute.h"

#include <unordered_map>

#include "src/ir/functor.h"

namespace tvmcpp {

namespace {

class Substitutor : public StmtMutator {
 public:
  explicit Substitutor(const VarMap& vmap) : vmap_(vmap) {}

 protected:
  Expr MutateVar(const VarNode* op, const Expr& e) override {
    auto it = vmap_.find(op);
    return it == vmap_.end() ? e : it->second;
  }

  // Loads/stores address buffers through a Var; remap those too when the map carries a
  // var-to-var renaming (used by cache_write to redirect stage output buffers).
  Expr MutateLoad(const LoadNode* op, const Expr& e) override {
    Expr base = StmtMutator::MutateLoad(op, e);
    auto it = vmap_.find(op->buffer_var.get());
    if (it == vmap_.end()) {
      return base;
    }
    const auto* n = static_cast<const LoadNode*>(base.get());
    CHECK(it->second->kind == ExprKind::kVar) << "buffer var must map to a var";
    return load(n->dtype, as<VarNode>(it->second), n->index, n->predicate);
  }

  Stmt MutateStore(const StoreNode* op, const Stmt& s) override {
    Stmt base = StmtMutator::MutateStore(op, s);
    auto it = vmap_.find(op->buffer_var.get());
    if (it == vmap_.end()) {
      return base;
    }
    const auto* n = static_cast<const StoreNode*>(base.get());
    CHECK(it->second->kind == ExprKind::kVar) << "buffer var must map to a var";
    return store(as<VarNode>(it->second), n->value, n->index, n->predicate);
  }

 private:
  const VarMap& vmap_;
};

}  // namespace

Expr Substitute(const Expr& e, const VarMap& vmap) {
  if (vmap.empty()) {
    return e;
  }
  Substitutor sub(vmap);
  return sub.Mutate(e);
}

Stmt Substitute(const Stmt& s, const VarMap& vmap) {
  if (vmap.empty()) {
    return s;
  }
  Substitutor sub(vmap);
  return sub.MutateStmt(s);
}

bool StructuralEqual(const Expr& a, const Expr& b) {
  if (a.get() == b.get()) {
    return true;
  }
  if (a == nullptr || b == nullptr) {
    return false;
  }
  if (a->kind != b->kind || a->dtype != b->dtype) {
    return false;
  }
  switch (a->kind) {
    case ExprKind::kIntImm:
      return static_cast<const IntImmNode*>(a.get())->value ==
             static_cast<const IntImmNode*>(b.get())->value;
    case ExprKind::kFloatImm:
      return static_cast<const FloatImmNode*>(a.get())->value ==
             static_cast<const FloatImmNode*>(b.get())->value;
    case ExprKind::kStringImm:
      return static_cast<const StringImmNode*>(a.get())->value ==
             static_cast<const StringImmNode*>(b.get())->value;
    case ExprKind::kVar:
      return false;  // distinct VarNodes are distinct variables
    case ExprKind::kCast:
      return StructuralEqual(static_cast<const CastNode*>(a.get())->value,
                             static_cast<const CastNode*>(b.get())->value);
    case ExprKind::kNot:
      return StructuralEqual(static_cast<const NotNode*>(a.get())->a,
                             static_cast<const NotNode*>(b.get())->a);
    case ExprKind::kSelect: {
      const auto* sa = static_cast<const SelectNode*>(a.get());
      const auto* sb = static_cast<const SelectNode*>(b.get());
      return StructuralEqual(sa->condition, sb->condition) &&
             StructuralEqual(sa->true_value, sb->true_value) &&
             StructuralEqual(sa->false_value, sb->false_value);
    }
    case ExprKind::kLoad: {
      const auto* la = static_cast<const LoadNode*>(a.get());
      const auto* lb = static_cast<const LoadNode*>(b.get());
      // The predicate is part of the value: two same-address loads with
      // complementary lane masks yield different vectors, and conflating them
      // lets select(c, t, f) fold to the wrong arm after load masking.
      return la->buffer_var.get() == lb->buffer_var.get() &&
             StructuralEqual(la->index, lb->index) &&
             StructuralEqual(la->predicate, lb->predicate);
    }
    case ExprKind::kRamp: {
      const auto* ra = static_cast<const RampNode*>(a.get());
      const auto* rb = static_cast<const RampNode*>(b.get());
      return ra->lanes == rb->lanes && StructuralEqual(ra->base, rb->base) &&
             StructuralEqual(ra->stride, rb->stride);
    }
    case ExprKind::kBroadcast: {
      const auto* ba = static_cast<const BroadcastNode*>(a.get());
      const auto* bb = static_cast<const BroadcastNode*>(b.get());
      return ba->lanes == bb->lanes && StructuralEqual(ba->value, bb->value);
    }
    case ExprKind::kTensorRead: {
      const auto* ta = static_cast<const TensorReadNode*>(a.get());
      const auto* tb = static_cast<const TensorReadNode*>(b.get());
      if (ta->op.get() != tb->op.get() || ta->value_index != tb->value_index ||
          ta->indices.size() != tb->indices.size()) {
        return false;
      }
      for (size_t i = 0; i < ta->indices.size(); ++i) {
        if (!StructuralEqual(ta->indices[i], tb->indices[i])) {
          return false;
        }
      }
      return true;
    }
    case ExprKind::kCall: {
      const auto* ca = static_cast<const CallNode*>(a.get());
      const auto* cb = static_cast<const CallNode*>(b.get());
      if (ca->name != cb->name || ca->args.size() != cb->args.size()) {
        return false;
      }
      for (size_t i = 0; i < ca->args.size(); ++i) {
        if (!StructuralEqual(ca->args[i], cb->args[i])) {
          return false;
        }
      }
      return true;
    }
    default: {
      // Binary nodes.
      const auto* ba = dynamic_cast<const BinaryNode*>(a.get());
      const auto* bb = dynamic_cast<const BinaryNode*>(b.get());
      if (ba != nullptr && bb != nullptr) {
        return StructuralEqual(ba->a, bb->a) && StructuralEqual(ba->b, bb->b);
      }
      return false;
    }
  }
}

bool UsesVar(const Expr& e, const VarNode* v) {
  bool found = false;
  PostOrderVisit(e, [&](const Expr& x) {
    if (x.get() == static_cast<const ExprNode*>(v)) {
      found = true;
    }
  });
  return found;
}

}  // namespace tvmcpp
