// Variable substitution and structural equality over the IR.
#ifndef SRC_IR_SUBSTITUTE_H_
#define SRC_IR_SUBSTITUTE_H_

#include <unordered_map>

#include "src/ir/expr.h"
#include "src/ir/stmt.h"

namespace tvmcpp {

// Map from variable identity to replacement expression.
using VarMap = std::unordered_map<const VarNode*, Expr>;

// Replaces free occurrences of the mapped variables. Does not simplify.
Expr Substitute(const Expr& e, const VarMap& vmap);
Stmt Substitute(const Stmt& s, const VarMap& vmap);

// Structural (alpha-insensitive for Var: pointer identity) equality.
bool StructuralEqual(const Expr& a, const Expr& b);

// True if variable `v` occurs in `e`.
bool UsesVar(const Expr& e, const VarNode* v);

}  // namespace tvmcpp

#endif  // SRC_IR_SUBSTITUTE_H_
