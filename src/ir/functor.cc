#include "src/ir/functor.h"

#include <memory>
#include <utility>
#include <vector>

namespace tvmcpp {

namespace {

bool IsBinaryKind(ExprKind k) {
  switch (k) {
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul:
    case ExprKind::kDiv:
    case ExprKind::kMod:
    case ExprKind::kMin:
    case ExprKind::kMax:
    case ExprKind::kEQ:
    case ExprKind::kNE:
    case ExprKind::kLT:
    case ExprKind::kLE:
    case ExprKind::kGT:
    case ExprKind::kGE:
    case ExprKind::kAnd:
    case ExprKind::kOr:
      return true;
    default:
      return false;
  }
}

}  // namespace

void ExprVisitor::Visit(const Expr& e) {
  if (e == nullptr) {
    return;
  }
  if (IsBinaryKind(e->kind)) {
    VisitBinary(static_cast<const BinaryNode*>(e.get()));
    return;
  }
  switch (e->kind) {
    case ExprKind::kVar:
      VisitVar(static_cast<const VarNode*>(e.get()));
      break;
    case ExprKind::kIntImm:
      VisitIntImm(static_cast<const IntImmNode*>(e.get()));
      break;
    case ExprKind::kFloatImm:
      VisitFloatImm(static_cast<const FloatImmNode*>(e.get()));
      break;
    case ExprKind::kStringImm:
      VisitStringImm(static_cast<const StringImmNode*>(e.get()));
      break;
    case ExprKind::kCast:
      VisitCast(static_cast<const CastNode*>(e.get()));
      break;
    case ExprKind::kNot:
      VisitNot(static_cast<const NotNode*>(e.get()));
      break;
    case ExprKind::kSelect:
      VisitSelect(static_cast<const SelectNode*>(e.get()));
      break;
    case ExprKind::kLoad:
      VisitLoad(static_cast<const LoadNode*>(e.get()));
      break;
    case ExprKind::kRamp:
      VisitRamp(static_cast<const RampNode*>(e.get()));
      break;
    case ExprKind::kBroadcast:
      VisitBroadcast(static_cast<const BroadcastNode*>(e.get()));
      break;
    case ExprKind::kCall:
      VisitCall(static_cast<const CallNode*>(e.get()));
      break;
    case ExprKind::kLet:
      VisitLet(static_cast<const LetNode*>(e.get()));
      break;
    case ExprKind::kReduce:
      VisitReduce(static_cast<const ReduceNode*>(e.get()));
      break;
    case ExprKind::kTensorRead:
      VisitTensorRead(static_cast<const TensorReadNode*>(e.get()));
      break;
    default:
      LOG(FATAL) << "unhandled expr kind";
  }
}

void ExprVisitor::VisitCast(const CastNode* op) { Visit(op->value); }
void ExprVisitor::VisitBinary(const BinaryNode* op) {
  Visit(op->a);
  Visit(op->b);
}
void ExprVisitor::VisitNot(const NotNode* op) { Visit(op->a); }
void ExprVisitor::VisitSelect(const SelectNode* op) {
  Visit(op->condition);
  Visit(op->true_value);
  Visit(op->false_value);
}
void ExprVisitor::VisitLoad(const LoadNode* op) {
  Visit(op->index);
  if (op->predicate) {
    Visit(op->predicate);
  }
}
void ExprVisitor::VisitRamp(const RampNode* op) {
  Visit(op->base);
  Visit(op->stride);
}
void ExprVisitor::VisitBroadcast(const BroadcastNode* op) { Visit(op->value); }
void ExprVisitor::VisitCall(const CallNode* op) {
  for (const Expr& a : op->args) {
    Visit(a);
  }
}
void ExprVisitor::VisitLet(const LetNode* op) {
  Visit(op->value);
  Visit(op->body);
}
void ExprVisitor::VisitReduce(const ReduceNode* op) {
  Visit(op->source);
  Visit(op->identity);
}
void ExprVisitor::VisitTensorRead(const TensorReadNode* op) {
  for (const Expr& i : op->indices) {
    Visit(i);
  }
}

void StmtVisitor::VisitStmt(const Stmt& s) {
  if (s == nullptr) {
    return;
  }
  switch (s->kind) {
    case StmtKind::kLetStmt:
      VisitLetStmt(static_cast<const LetStmtNode*>(s.get()));
      break;
    case StmtKind::kAttrStmt:
      VisitAttrStmt(static_cast<const AttrStmtNode*>(s.get()));
      break;
    case StmtKind::kAssert:
      VisitAssert(static_cast<const AssertStmtNode*>(s.get()));
      break;
    case StmtKind::kStore:
      VisitStore(static_cast<const StoreNode*>(s.get()));
      break;
    case StmtKind::kAllocate:
      VisitAllocate(static_cast<const AllocateNode*>(s.get()));
      break;
    case StmtKind::kFor:
      VisitFor(static_cast<const ForNode*>(s.get()));
      break;
    case StmtKind::kIfThenElse:
      VisitIfThenElse(static_cast<const IfThenElseNode*>(s.get()));
      break;
    case StmtKind::kSeq:
      VisitSeq(static_cast<const SeqStmtNode*>(s.get()));
      break;
    case StmtKind::kEvaluate:
      VisitEvaluate(static_cast<const EvaluateNode*>(s.get()));
      break;
  }
}

void StmtVisitor::VisitLetStmt(const LetStmtNode* op) {
  Visit(op->value);
  VisitStmt(op->body);
}
void StmtVisitor::VisitAttrStmt(const AttrStmtNode* op) {
  if (op->value) {
    Visit(op->value);
  }
  VisitStmt(op->body);
}
void StmtVisitor::VisitAssert(const AssertStmtNode* op) {
  Visit(op->condition);
  VisitStmt(op->body);
}
void StmtVisitor::VisitStore(const StoreNode* op) {
  Visit(op->value);
  Visit(op->index);
  if (op->predicate) {
    Visit(op->predicate);
  }
}
void StmtVisitor::VisitAllocate(const AllocateNode* op) {
  for (const Expr& e : op->extents) {
    Visit(e);
  }
  VisitStmt(op->body);
}
void StmtVisitor::VisitFor(const ForNode* op) {
  Visit(op->min);
  Visit(op->extent);
  VisitStmt(op->body);
}
void StmtVisitor::VisitIfThenElse(const IfThenElseNode* op) {
  Visit(op->condition);
  VisitStmt(op->then_case);
  if (op->else_case) {
    VisitStmt(op->else_case);
  }
}
void StmtVisitor::VisitSeq(const SeqStmtNode* op) {
  for (const Stmt& s : op->seq) {
    VisitStmt(s);
  }
}
void StmtVisitor::VisitEvaluate(const EvaluateNode* op) { Visit(op->value); }

Expr ExprMutator::Mutate(const Expr& e) {
  if (e == nullptr) {
    return e;
  }
  if (IsBinaryKind(e->kind)) {
    return MutateBinary(static_cast<const BinaryNode*>(e.get()), e);
  }
  switch (e->kind) {
    case ExprKind::kVar:
      return MutateVar(static_cast<const VarNode*>(e.get()), e);
    case ExprKind::kIntImm:
      return MutateIntImm(static_cast<const IntImmNode*>(e.get()), e);
    case ExprKind::kFloatImm:
      return MutateFloatImm(static_cast<const FloatImmNode*>(e.get()), e);
    case ExprKind::kStringImm:
      return MutateStringImm(static_cast<const StringImmNode*>(e.get()), e);
    case ExprKind::kCast:
      return MutateCast(static_cast<const CastNode*>(e.get()), e);
    case ExprKind::kNot:
      return MutateNot(static_cast<const NotNode*>(e.get()), e);
    case ExprKind::kSelect:
      return MutateSelect(static_cast<const SelectNode*>(e.get()), e);
    case ExprKind::kLoad:
      return MutateLoad(static_cast<const LoadNode*>(e.get()), e);
    case ExprKind::kRamp:
      return MutateRamp(static_cast<const RampNode*>(e.get()), e);
    case ExprKind::kBroadcast:
      return MutateBroadcast(static_cast<const BroadcastNode*>(e.get()), e);
    case ExprKind::kCall:
      return MutateCall(static_cast<const CallNode*>(e.get()), e);
    case ExprKind::kLet:
      return MutateLet(static_cast<const LetNode*>(e.get()), e);
    case ExprKind::kReduce:
      return MutateReduce(static_cast<const ReduceNode*>(e.get()), e);
    case ExprKind::kTensorRead:
      return MutateTensorRead(static_cast<const TensorReadNode*>(e.get()), e);
    default:
      LOG(FATAL) << "unhandled expr kind";
  }
}

Expr ExprMutator::MutateCast(const CastNode* op, const Expr& e) {
  Expr v = Mutate(op->value);
  if (v.get() == op->value.get()) {
    return e;
  }
  return std::make_shared<CastNode>(op->dtype, std::move(v));
}

Expr ExprMutator::MutateBinary(const BinaryNode* op, const Expr& e) {
  Expr a = Mutate(op->a);
  Expr b = Mutate(op->b);
  if (a.get() == op->a.get() && b.get() == op->b.get()) {
    return e;
  }
  switch (op->kind) {
    case ExprKind::kAdd:
      return add(a, b);
    case ExprKind::kSub:
      return sub(a, b);
    case ExprKind::kMul:
      return mul(a, b);
    case ExprKind::kDiv:
      return div(a, b);
    case ExprKind::kMod:
      return mod(a, b);
    case ExprKind::kMin:
      return min(a, b);
    case ExprKind::kMax:
      return max(a, b);
    case ExprKind::kEQ:
      return eq(a, b);
    case ExprKind::kNE:
      return ne(a, b);
    case ExprKind::kLT:
      return lt(a, b);
    case ExprKind::kLE:
      return le(a, b);
    case ExprKind::kGT:
      return gt(a, b);
    case ExprKind::kGE:
      return ge(a, b);
    case ExprKind::kAnd:
      return logic_and(a, b);
    case ExprKind::kOr:
      return logic_or(a, b);
    default:
      LOG(FATAL) << "not a binary kind";
  }
}

Expr ExprMutator::MutateNot(const NotNode* op, const Expr& e) {
  Expr a = Mutate(op->a);
  if (a.get() == op->a.get()) {
    return e;
  }
  return logic_not(a);
}

Expr ExprMutator::MutateSelect(const SelectNode* op, const Expr& e) {
  Expr c = Mutate(op->condition);
  Expr t = Mutate(op->true_value);
  Expr f = Mutate(op->false_value);
  if (c.get() == op->condition.get() && t.get() == op->true_value.get() &&
      f.get() == op->false_value.get()) {
    return e;
  }
  return select(c, t, f);
}

Expr ExprMutator::MutateLoad(const LoadNode* op, const Expr& e) {
  Expr index = Mutate(op->index);
  Expr pred = op->predicate ? Mutate(op->predicate) : nullptr;
  if (index.get() == op->index.get() && pred.get() == op->predicate.get()) {
    return e;
  }
  return load(op->dtype, op->buffer_var, index, pred);
}

Expr ExprMutator::MutateRamp(const RampNode* op, const Expr& e) {
  Expr base = Mutate(op->base);
  Expr stride = Mutate(op->stride);
  if (base.get() == op->base.get() && stride.get() == op->stride.get()) {
    return e;
  }
  return ramp(base, stride, op->lanes);
}

Expr ExprMutator::MutateBroadcast(const BroadcastNode* op, const Expr& e) {
  Expr v = Mutate(op->value);
  if (v.get() == op->value.get()) {
    return e;
  }
  return std::make_shared<BroadcastNode>(std::move(v), op->lanes);
}

Expr ExprMutator::MutateCall(const CallNode* op, const Expr& e) {
  bool changed = false;
  std::vector<Expr> args;
  args.reserve(op->args.size());
  for (const Expr& a : op->args) {
    Expr na = Mutate(a);
    changed |= na.get() != a.get();
    args.push_back(std::move(na));
  }
  if (!changed) {
    return e;
  }
  return std::make_shared<CallNode>(op->dtype, op->name, std::move(args), op->call_type);
}

Expr ExprMutator::MutateLet(const LetNode* op, const Expr& e) {
  Expr value = Mutate(op->value);
  Expr body = Mutate(op->body);
  if (value.get() == op->value.get() && body.get() == op->body.get()) {
    return e;
  }
  return let(op->var, value, body);
}

Expr ExprMutator::MutateReduce(const ReduceNode* op, const Expr& e) {
  Expr source = Mutate(op->source);
  Expr identity = Mutate(op->identity);
  if (source.get() == op->source.get() && identity.get() == op->identity.get()) {
    return e;
  }
  return std::make_shared<ReduceNode>(op->op, std::move(source), op->axis, std::move(identity));
}

Expr ExprMutator::MutateTensorRead(const TensorReadNode* op, const Expr& e) {
  bool changed = false;
  std::vector<Expr> indices;
  indices.reserve(op->indices.size());
  for (const Expr& i : op->indices) {
    Expr ni = Mutate(i);
    changed |= ni.get() != i.get();
    indices.push_back(std::move(ni));
  }
  if (!changed) {
    return e;
  }
  return tensor_read(op->dtype, op->op, op->value_index, op->name, std::move(indices));
}

Stmt StmtMutator::MutateStmt(const Stmt& s) {
  if (s == nullptr) {
    return s;
  }
  switch (s->kind) {
    case StmtKind::kLetStmt:
      return MutateLetStmt(static_cast<const LetStmtNode*>(s.get()), s);
    case StmtKind::kAttrStmt:
      return MutateAttrStmt(static_cast<const AttrStmtNode*>(s.get()), s);
    case StmtKind::kAssert:
      return MutateAssert(static_cast<const AssertStmtNode*>(s.get()), s);
    case StmtKind::kStore:
      return MutateStore(static_cast<const StoreNode*>(s.get()), s);
    case StmtKind::kAllocate:
      return MutateAllocate(static_cast<const AllocateNode*>(s.get()), s);
    case StmtKind::kFor:
      return MutateFor(static_cast<const ForNode*>(s.get()), s);
    case StmtKind::kIfThenElse:
      return MutateIfThenElse(static_cast<const IfThenElseNode*>(s.get()), s);
    case StmtKind::kSeq:
      return MutateSeq(static_cast<const SeqStmtNode*>(s.get()), s);
    case StmtKind::kEvaluate:
      return MutateEvaluate(static_cast<const EvaluateNode*>(s.get()), s);
  }
  LOG(FATAL) << "unhandled stmt kind";
}

Stmt StmtMutator::MutateLetStmt(const LetStmtNode* op, const Stmt& s) {
  Expr value = Mutate(op->value);
  Stmt body = MutateStmt(op->body);
  if (value.get() == op->value.get() && body.get() == op->body.get()) {
    return s;
  }
  return let_stmt(op->var, value, body);
}

Stmt StmtMutator::MutateAttrStmt(const AttrStmtNode* op, const Stmt& s) {
  Expr value = op->value ? Mutate(op->value) : nullptr;
  Stmt body = MutateStmt(op->body);
  if (value.get() == op->value.get() && body.get() == op->body.get()) {
    return s;
  }
  return attr_stmt(op->key, value, body);
}

Stmt StmtMutator::MutateAssert(const AssertStmtNode* op, const Stmt& s) {
  Expr cond = Mutate(op->condition);
  Stmt body = MutateStmt(op->body);
  if (cond.get() == op->condition.get() && body.get() == op->body.get()) {
    return s;
  }
  return assert_stmt(cond, op->message, body);
}

Stmt StmtMutator::MutateStore(const StoreNode* op, const Stmt& s) {
  Expr value = Mutate(op->value);
  Expr index = Mutate(op->index);
  Expr pred = op->predicate ? Mutate(op->predicate) : nullptr;
  if (value.get() == op->value.get() && index.get() == op->index.get() &&
      pred.get() == op->predicate.get()) {
    return s;
  }
  return store(op->buffer_var, value, index, pred);
}

Stmt StmtMutator::MutateAllocate(const AllocateNode* op, const Stmt& s) {
  bool changed = false;
  std::vector<Expr> extents;
  extents.reserve(op->extents.size());
  for (const Expr& e : op->extents) {
    Expr ne = Mutate(e);
    changed |= ne.get() != e.get();
    extents.push_back(std::move(ne));
  }
  Stmt body = MutateStmt(op->body);
  changed |= body.get() != op->body.get();
  if (!changed) {
    return s;
  }
  return allocate(op->buffer_var, op->dtype, std::move(extents), op->scope, body);
}

Stmt StmtMutator::MutateFor(const ForNode* op, const Stmt& s) {
  Expr mn = Mutate(op->min);
  Expr extent = Mutate(op->extent);
  Stmt body = MutateStmt(op->body);
  if (mn.get() == op->min.get() && extent.get() == op->extent.get() &&
      body.get() == op->body.get()) {
    return s;
  }
  return for_stmt(op->loop_var, mn, extent, body, op->for_type, op->thread_tag);
}

Stmt StmtMutator::MutateIfThenElse(const IfThenElseNode* op, const Stmt& s) {
  Expr cond = Mutate(op->condition);
  Stmt then_case = MutateStmt(op->then_case);
  Stmt else_case = op->else_case ? MutateStmt(op->else_case) : nullptr;
  if (cond.get() == op->condition.get() && then_case.get() == op->then_case.get() &&
      else_case.get() == op->else_case.get()) {
    return s;
  }
  return if_then_else_stmt(cond, then_case, else_case);
}

Stmt StmtMutator::MutateSeq(const SeqStmtNode* op, const Stmt& s) {
  bool changed = false;
  std::vector<Stmt> stmts;
  stmts.reserve(op->seq.size());
  for (const Stmt& st : op->seq) {
    Stmt ns = MutateStmt(st);
    changed |= ns.get() != st.get();
    stmts.push_back(std::move(ns));
  }
  if (!changed) {
    return s;
  }
  return seq(std::move(stmts));
}

Stmt StmtMutator::MutateEvaluate(const EvaluateNode* op, const Stmt& s) {
  Expr value = Mutate(op->value);
  if (value.get() == op->value.get()) {
    return s;
  }
  return evaluate(value);
}

namespace {

class PostOrderFunctor : public ExprVisitor {
 public:
  explicit PostOrderFunctor(const std::function<void(const Expr&)>& f) : f_(f) {}
  void Visit(const Expr& e) override {
    if (e == nullptr) {
      return;
    }
    ExprVisitor::Visit(e);
    f_(e);
  }

 private:
  const std::function<void(const Expr&)>& f_;
};

class PostOrderStmtFunctor : public StmtVisitor {
 public:
  explicit PostOrderStmtFunctor(const std::function<void(const Stmt&)>& f) : f_(f) {}
  void VisitStmt(const Stmt& s) override {
    if (s == nullptr) {
      return;
    }
    StmtVisitor::VisitStmt(s);
    f_(s);
  }
  // Do not descend into expressions for the stmt walk.
  void Visit(const Expr& e) override {}

 private:
  const std::function<void(const Stmt&)>& f_;
};

}  // namespace

void PostOrderVisit(const Expr& e, const std::function<void(const Expr&)>& fvisit) {
  PostOrderFunctor functor(fvisit);
  functor.Visit(e);
}

void PostOrderVisitStmt(const Stmt& s, const std::function<void(const Stmt&)>& fvisit) {
  PostOrderStmtFunctor functor(fvisit);
  functor.VisitStmt(s);
}

}  // namespace tvmcpp
