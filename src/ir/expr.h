// The low-level expression IR of tvm-cpp.
//
// Expressions are immutable trees of shared_ptr<const Node>. This mirrors TVM's TIR
// expression layer: scalar arithmetic, comparisons, vector Ramp/Broadcast, buffer Load,
// intrinsic Call, Let, Select, Cast, and Reduce (used only inside tensor-expression bodies
// before lowering).
#ifndef SRC_IR_EXPR_H_
#define SRC_IR_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/ir/dtype.h"
#include "src/support/logging.h"

namespace tvmcpp {

// Expression node kinds; used for fast switch-based dispatch in visitors.
enum class ExprKind : uint8_t {
  kIntImm,
  kFloatImm,
  kStringImm,
  kVar,
  kCast,
  kAdd,
  kSub,
  kMul,
  kDiv,      // floor division on ints (all loop extents here are non-negative)
  kMod,      // floor modulo on ints
  kMin,
  kMax,
  kEQ,
  kNE,
  kLT,
  kLE,
  kGT,
  kGE,
  kAnd,
  kOr,
  kNot,
  kSelect,
  kLoad,
  kRamp,
  kBroadcast,
  kCall,
  kLet,
  kReduce,
  kTensorRead,
};

class ExprNode {
 public:
  ExprNode(ExprKind kind, DataType dtype) : kind(kind), dtype(dtype) {}
  virtual ~ExprNode() = default;
  const ExprKind kind;
  const DataType dtype;
};

using Expr = std::shared_ptr<const ExprNode>;

// ---------------------------------------------------------------------------
// Leaf nodes
// ---------------------------------------------------------------------------

class IntImmNode : public ExprNode {
 public:
  IntImmNode(DataType t, int64_t value) : ExprNode(ExprKind::kIntImm, t), value(value) {}
  const int64_t value;
};

class FloatImmNode : public ExprNode {
 public:
  FloatImmNode(DataType t, double value) : ExprNode(ExprKind::kFloatImm, t), value(value) {}
  const double value;
};

class StringImmNode : public ExprNode {
 public:
  explicit StringImmNode(std::string value)
      : ExprNode(ExprKind::kStringImm, DataType::Handle()), value(std::move(value)) {}
  const std::string value;
};

// A named variable. Identity is pointer identity (each VarNode is a distinct variable).
class VarNode : public ExprNode {
 public:
  VarNode(std::string name, DataType t)
      : ExprNode(ExprKind::kVar, t), name(std::move(name)) {}
  const std::string name;
};

using Var = std::shared_ptr<const VarNode>;

// ---------------------------------------------------------------------------
// Composite nodes
// ---------------------------------------------------------------------------

class CastNode : public ExprNode {
 public:
  CastNode(DataType t, Expr value)
      : ExprNode(ExprKind::kCast, t), value(std::move(value)) {}
  const Expr value;
};

// Common base for all binary operations (arithmetic and comparisons).
class BinaryNode : public ExprNode {
 public:
  BinaryNode(ExprKind kind, DataType t, Expr a, Expr b)
      : ExprNode(kind, t), a(std::move(a)), b(std::move(b)) {}
  const Expr a;
  const Expr b;
};

class NotNode : public ExprNode {
 public:
  explicit NotNode(Expr a)
      : ExprNode(ExprKind::kNot, DataType::Bool(a->dtype.lanes())), a(std::move(a)) {}
  const Expr a;
};

class SelectNode : public ExprNode {
 public:
  SelectNode(Expr cond, Expr tval, Expr fval)
      : ExprNode(ExprKind::kSelect, tval->dtype),
        condition(std::move(cond)),
        true_value(std::move(tval)),
        false_value(std::move(fval)) {}
  const Expr condition;
  const Expr true_value;
  const Expr false_value;
};

// Load of `dtype` lanes from flat buffer `buffer_var` at `index` (vector index if lanes > 1).
// `predicate` masks lanes; a null predicate means all lanes enabled.
class LoadNode : public ExprNode {
 public:
  LoadNode(DataType t, Var buffer_var, Expr index, Expr predicate)
      : ExprNode(ExprKind::kLoad, t),
        buffer_var(std::move(buffer_var)),
        index(std::move(index)),
        predicate(std::move(predicate)) {}
  const Var buffer_var;
  const Expr index;
  const Expr predicate;  // may be null
};

// Vector [base, base+stride, ..., base+(lanes-1)*stride].
class RampNode : public ExprNode {
 public:
  RampNode(Expr base, Expr stride, int lanes)
      : ExprNode(ExprKind::kRamp, base->dtype.with_lanes(lanes)),
        base(std::move(base)),
        stride(std::move(stride)),
        lanes(lanes) {}
  const Expr base;
  const Expr stride;
  const int lanes;
};

class BroadcastNode : public ExprNode {
 public:
  BroadcastNode(Expr value, int lanes)
      : ExprNode(ExprKind::kBroadcast, value->dtype.with_lanes(lanes)),
        value(std::move(value)),
        lanes(lanes) {}
  const Expr value;
  const int lanes;
};

// Calls: pure math intrinsics (exp/...), hardware intrinsics (Section 4.3 tensorization),
// and runtime helpers. Everything is identified by name.
enum class CallType : uint8_t { kPureIntrinsic, kIntrinsic, kExtern };

class CallNode : public ExprNode {
 public:
  CallNode(DataType t, std::string name, std::vector<Expr> args, CallType call_type)
      : ExprNode(ExprKind::kCall, t),
        name(std::move(name)),
        args(std::move(args)),
        call_type(call_type) {}
  const std::string name;
  const std::vector<Expr> args;
  const CallType call_type;
};

class LetNode : public ExprNode {
 public:
  LetNode(Var var, Expr value, Expr body)
      : ExprNode(ExprKind::kLet, body->dtype),
        var(std::move(var)),
        value(std::move(value)),
        body(std::move(body)) {}
  const Var var;
  const Expr value;
  const Expr body;
};

// ---------------------------------------------------------------------------
// Ranges and iteration variables (shared between te and schedule layers)
// ---------------------------------------------------------------------------

// Half-open range [min, min+extent).
class Range {
 public:
  Range() = default;
  Range(Expr min, Expr extent) : min_(std::move(min)), extent_(std::move(extent)) {}
  const Expr& min() const { return min_; }
  const Expr& extent() const { return extent_; }
  bool defined() const { return min_ != nullptr && extent_ != nullptr; }

 private:
  Expr min_;
  Expr extent_;
};

// Role of an iteration variable in a schedule.
enum class IterVarType : uint8_t {
  kDataPar,       // data parallel axis
  kCommReduce,    // commutative reduction axis
  kThreadIndex,   // bound to a hardware thread index (blockIdx/threadIdx)
  kVirtualThread, // virtual thread for latency hiding (Section 4.4)
  kVectorized,
  kUnrolled,
  kOpaque,
};

class IterVarNode {
 public:
  IterVarNode(Range dom, Var var, IterVarType type, std::string thread_tag)
      : dom(std::move(dom)), var(std::move(var)), type(type), thread_tag(std::move(thread_tag)) {}
  Range dom;
  const Var var;
  IterVarType type;
  const std::string thread_tag;  // e.g. "blockIdx.x", "threadIdx.y"; empty if none
};

using IterVar = std::shared_ptr<IterVarNode>;

// Reduction over `axis` combining `source` with a named commutative reducer.
// Only appears inside tensor-expression bodies; lowering eliminates it.
class ReduceNode : public ExprNode {
 public:
  ReduceNode(std::string op, Expr source, std::vector<IterVar> axis, Expr identity)
      : ExprNode(ExprKind::kReduce, source->dtype),
        op(std::move(op)),
        source(std::move(source)),
        axis(std::move(axis)),
        identity(std::move(identity)) {}
  const std::string op;  // "sum", "max", or "min"
  const Expr source;
  const std::vector<IterVar> axis;
  const Expr identity;
};

// Read of element `indices` of output `value_index` of a tensor operation. This node only
// exists before lowering; storage flattening replaces it with a flat Load. The operation is
// stored as an opaque pointer to avoid a dependency cycle (te defines Operation).
class TensorReadNode : public ExprNode {
 public:
  TensorReadNode(DataType t, std::shared_ptr<void> op, int value_index, std::string name,
                 std::vector<Expr> indices)
      : ExprNode(ExprKind::kTensorRead, t),
        op(std::move(op)),
        value_index(value_index),
        name(std::move(name)),
        indices(std::move(indices)) {}
  const std::shared_ptr<void> op;
  const int value_index;
  const std::string name;
  const std::vector<Expr> indices;
};

Expr tensor_read(DataType t, std::shared_ptr<void> op, int value_index, const std::string& name,
                 std::vector<Expr> indices);

// ---------------------------------------------------------------------------
// Constructor helpers
// ---------------------------------------------------------------------------

Expr make_const(DataType t, double value);
Expr make_int(int64_t value);
Expr make_float(double value);
Expr make_zero(DataType t);
Var make_var(const std::string& name, DataType t = DataType::Int32());
IterVar make_itervar(const std::string& name, Expr extent,
                     IterVarType type = IterVarType::kDataPar, const std::string& tag = "");

// Typed binary constructors. These normalize operand dtypes (int literal -> float, etc.)
// but perform no simplification; see Simplify() in simplify.h.
Expr add(Expr a, Expr b);
Expr sub(Expr a, Expr b);
Expr mul(Expr a, Expr b);
Expr div(Expr a, Expr b);
Expr mod(Expr a, Expr b);
Expr min(Expr a, Expr b);
Expr max(Expr a, Expr b);
Expr eq(Expr a, Expr b);
Expr ne(Expr a, Expr b);
Expr lt(Expr a, Expr b);
Expr le(Expr a, Expr b);
Expr gt(Expr a, Expr b);
Expr ge(Expr a, Expr b);
Expr logic_and(Expr a, Expr b);
Expr logic_or(Expr a, Expr b);
Expr logic_not(Expr a);
Expr select(Expr cond, Expr t, Expr f);
Expr cast(DataType t, Expr value);
Expr let(Var v, Expr value, Expr body);
Expr load(DataType t, Var buf, Expr index, Expr predicate = nullptr);
Expr ramp(Expr base, Expr stride, int lanes);
Expr broadcast(Expr value, int lanes);
Expr call_pure(DataType t, const std::string& name, std::vector<Expr> args);
Expr call_intrin(DataType t, const std::string& name, std::vector<Expr> args);
Expr call_extern(DataType t, const std::string& name, std::vector<Expr> args);

// Math intrinsics used by the operator library.
Expr exp(Expr x);
Expr log(Expr x);
Expr sqrt(Expr x);
Expr tanh(Expr x);
Expr sigmoid(Expr x);
Expr popcount(Expr x);
Expr floordiv_expr(Expr a, Expr b);
// Ternary with lazy semantics used for padding (out-of-bounds reads return `f`).
Expr if_then_else(Expr cond, Expr t, Expr f);

// Operator sugar.
inline Expr operator+(const Expr& a, const Expr& b) { return add(a, b); }
inline Expr operator-(const Expr& a, const Expr& b) { return sub(a, b); }
inline Expr operator*(const Expr& a, const Expr& b) { return mul(a, b); }
inline Expr operator/(const Expr& a, const Expr& b) { return div(a, b); }
inline Expr operator%(const Expr& a, const Expr& b) { return mod(a, b); }
inline Expr operator+(const Expr& a, int64_t b) { return add(a, make_int(b)); }
inline Expr operator-(const Expr& a, int64_t b) { return sub(a, make_int(b)); }
inline Expr operator*(const Expr& a, int64_t b) { return mul(a, make_int(b)); }
inline Expr operator/(const Expr& a, int64_t b) { return div(a, make_int(b)); }
inline Expr operator%(const Expr& a, int64_t b) { return mod(a, make_int(b)); }
inline Expr operator+(int64_t a, const Expr& b) { return add(make_int(a), b); }
inline Expr operator*(int64_t a, const Expr& b) { return mul(make_int(a), b); }
inline Expr operator-(int64_t a, const Expr& b) { return sub(make_int(a), b); }

// Pattern helpers.
const IntImmNode* as_int(const Expr& e);
const FloatImmNode* as_float(const Expr& e);
// Returns true and sets *out when `e` is a constant integer.
bool is_const_int(const Expr& e, int64_t* out);
bool is_zero(const Expr& e);
bool is_one(const Expr& e);
// Extracts the constant value of `e`, aborting if it is not an IntImm.
int64_t get_const_int(const Expr& e);

template <typename T>
std::shared_ptr<const T> as(const Expr& e) {
  return std::static_pointer_cast<const T>(e);
}

}  // namespace tvmcpp

#endif  // SRC_IR_EXPR_H_
