#include "src/ir/printer.h"

#include <sstream>
#include <string>

namespace tvmcpp {

namespace {

const char* BinOpSymbol(ExprKind k) {
  switch (k) {
    case ExprKind::kAdd:
      return " + ";
    case ExprKind::kSub:
      return " - ";
    case ExprKind::kMul:
      return "*";
    case ExprKind::kDiv:
      return "/";
    case ExprKind::kMod:
      return " % ";
    case ExprKind::kEQ:
      return " == ";
    case ExprKind::kNE:
      return " != ";
    case ExprKind::kLT:
      return " < ";
    case ExprKind::kLE:
      return " <= ";
    case ExprKind::kGT:
      return " > ";
    case ExprKind::kGE:
      return " >= ";
    case ExprKind::kAnd:
      return " && ";
    case ExprKind::kOr:
      return " || ";
    default:
      return "?";
  }
}

class Printer {
 public:
  explicit Printer(std::ostream& os) : os_(os) {}

  void PrintExpr(const Expr& e) {
    if (e == nullptr) {
      os_ << "<null>";
      return;
    }
    switch (e->kind) {
      case ExprKind::kIntImm:
        os_ << static_cast<const IntImmNode*>(e.get())->value;
        break;
      case ExprKind::kFloatImm:
        os_ << static_cast<const FloatImmNode*>(e.get())->value << "f";
        break;
      case ExprKind::kStringImm:
        os_ << '"' << static_cast<const StringImmNode*>(e.get())->value << '"';
        break;
      case ExprKind::kVar:
        os_ << static_cast<const VarNode*>(e.get())->name;
        break;
      case ExprKind::kCast: {
        const auto* n = static_cast<const CastNode*>(e.get());
        os_ << n->dtype << "(";
        PrintExpr(n->value);
        os_ << ")";
        break;
      }
      case ExprKind::kMin:
      case ExprKind::kMax: {
        const auto* n = static_cast<const BinaryNode*>(e.get());
        os_ << (e->kind == ExprKind::kMin ? "min(" : "max(");
        PrintExpr(n->a);
        os_ << ", ";
        PrintExpr(n->b);
        os_ << ")";
        break;
      }
      case ExprKind::kNot: {
        os_ << "!(";
        PrintExpr(static_cast<const NotNode*>(e.get())->a);
        os_ << ")";
        break;
      }
      case ExprKind::kSelect: {
        const auto* n = static_cast<const SelectNode*>(e.get());
        os_ << "select(";
        PrintExpr(n->condition);
        os_ << ", ";
        PrintExpr(n->true_value);
        os_ << ", ";
        PrintExpr(n->false_value);
        os_ << ")";
        break;
      }
      case ExprKind::kLoad: {
        const auto* n = static_cast<const LoadNode*>(e.get());
        os_ << n->buffer_var->name << "[";
        PrintExpr(n->index);
        os_ << "]";
        break;
      }
      case ExprKind::kRamp: {
        const auto* n = static_cast<const RampNode*>(e.get());
        os_ << "ramp(";
        PrintExpr(n->base);
        os_ << ", ";
        PrintExpr(n->stride);
        os_ << ", " << n->lanes << ")";
        break;
      }
      case ExprKind::kBroadcast: {
        const auto* n = static_cast<const BroadcastNode*>(e.get());
        os_ << "x" << n->lanes << "(";
        PrintExpr(n->value);
        os_ << ")";
        break;
      }
      case ExprKind::kCall: {
        const auto* n = static_cast<const CallNode*>(e.get());
        os_ << n->name << "(";
        for (size_t i = 0; i < n->args.size(); ++i) {
          if (i > 0) {
            os_ << ", ";
          }
          PrintExpr(n->args[i]);
        }
        os_ << ")";
        break;
      }
      case ExprKind::kLet: {
        const auto* n = static_cast<const LetNode*>(e.get());
        os_ << "(let " << n->var->name << " = ";
        PrintExpr(n->value);
        os_ << " in ";
        PrintExpr(n->body);
        os_ << ")";
        break;
      }
      case ExprKind::kTensorRead: {
        const auto* n = static_cast<const TensorReadNode*>(e.get());
        os_ << n->name << "(";
        for (size_t i = 0; i < n->indices.size(); ++i) {
          if (i > 0) {
            os_ << ", ";
          }
          PrintExpr(n->indices[i]);
        }
        os_ << ")";
        break;
      }
      case ExprKind::kReduce: {
        const auto* n = static_cast<const ReduceNode*>(e.get());
        os_ << "reduce." << n->op << "(";
        PrintExpr(n->source);
        os_ << ", axis=[";
        for (size_t i = 0; i < n->axis.size(); ++i) {
          if (i > 0) {
            os_ << ", ";
          }
          os_ << n->axis[i]->var->name;
        }
        os_ << "])";
        break;
      }
      default: {
        const auto* n = static_cast<const BinaryNode*>(e.get());
        os_ << "(";
        PrintExpr(n->a);
        os_ << BinOpSymbol(e->kind);
        PrintExpr(n->b);
        os_ << ")";
        break;
      }
    }
  }

  void PrintStmt(const Stmt& s, int indent) {
    if (s == nullptr) {
      return;
    }
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    switch (s->kind) {
      case StmtKind::kLetStmt: {
        const auto* n = static_cast<const LetStmtNode*>(s.get());
        os_ << pad << "let " << n->var->name << " = ";
        PrintExpr(n->value);
        os_ << "\n";
        PrintStmt(n->body, indent);
        break;
      }
      case StmtKind::kAttrStmt: {
        const auto* n = static_cast<const AttrStmtNode*>(s.get());
        os_ << pad << "// attr " << n->key << " = ";
        PrintExpr(n->value);
        os_ << "\n";
        PrintStmt(n->body, indent);
        break;
      }
      case StmtKind::kAssert: {
        const auto* n = static_cast<const AssertStmtNode*>(s.get());
        os_ << pad << "assert(";
        PrintExpr(n->condition);
        os_ << ", \"" << n->message << "\")\n";
        PrintStmt(n->body, indent);
        break;
      }
      case StmtKind::kStore: {
        const auto* n = static_cast<const StoreNode*>(s.get());
        os_ << pad << n->buffer_var->name << "[";
        PrintExpr(n->index);
        os_ << "] = ";
        PrintExpr(n->value);
        if (n->predicate) {
          os_ << " if ";
          PrintExpr(n->predicate);
        }
        os_ << "\n";
        break;
      }
      case StmtKind::kAllocate: {
        const auto* n = static_cast<const AllocateNode*>(s.get());
        os_ << pad << "allocate " << n->buffer_var->name << "[" << n->dtype;
        for (const Expr& e : n->extents) {
          os_ << " * ";
          PrintExpr(e);
        }
        os_ << "] scope=" << n->scope << " {\n";
        PrintStmt(n->body, indent + 1);
        os_ << pad << "}\n";
        break;
      }
      case StmtKind::kFor: {
        const auto* n = static_cast<const ForNode*>(s.get());
        const char* kind = "for";
        switch (n->for_type) {
          case ForType::kParallel:
            kind = "parallel";
            break;
          case ForType::kVectorized:
            kind = "vectorized";
            break;
          case ForType::kUnrolled:
            kind = "unrolled";
            break;
          case ForType::kVThread:
            kind = "vthread";
            break;
          case ForType::kThreadBinding:
            kind = "launch_thread";
            break;
          default:
            break;
        }
        os_ << pad << kind << " (" << n->loop_var->name;
        if (!n->thread_tag.empty()) {
          os_ << ":" << n->thread_tag;
        }
        os_ << ", ";
        PrintExpr(n->min);
        os_ << ", ";
        PrintExpr(n->extent);
        os_ << ") {\n";
        PrintStmt(n->body, indent + 1);
        os_ << pad << "}\n";
        break;
      }
      case StmtKind::kIfThenElse: {
        const auto* n = static_cast<const IfThenElseNode*>(s.get());
        os_ << pad << "if (";
        PrintExpr(n->condition);
        os_ << ") {\n";
        PrintStmt(n->then_case, indent + 1);
        if (n->else_case) {
          os_ << pad << "} else {\n";
          PrintStmt(n->else_case, indent + 1);
        }
        os_ << pad << "}\n";
        break;
      }
      case StmtKind::kSeq: {
        const auto* n = static_cast<const SeqStmtNode*>(s.get());
        for (const Stmt& st : n->seq) {
          PrintStmt(st, indent);
        }
        break;
      }
      case StmtKind::kEvaluate: {
        const auto* n = static_cast<const EvaluateNode*>(s.get());
        os_ << pad;
        PrintExpr(n->value);
        os_ << "\n";
        break;
      }
    }
  }

 private:
  std::ostream& os_;
};

}  // namespace

std::string ToString(const Expr& e) {
  std::ostringstream os;
  Printer(os).PrintExpr(e);
  return os.str();
}

std::string ToString(const Stmt& s) {
  std::ostringstream os;
  Printer(os).PrintStmt(s, 0);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Expr& e) {
  Printer(os).PrintExpr(e);
  return os;
}

std::ostream& operator<<(std::ostream& os, const Stmt& s) {
  Printer(os).PrintStmt(s, 0);
  return os;
}

}  // namespace tvmcpp
