// The single source of truth for tensor-intrinsic descriptors shared by every
// execution engine.
//
// Both the tree-walking interpreter (src/interp) and the bytecode VM (src/vm) execute
// tensorized hardware intrinsics (Section 4.3) through the same generic ABI: for each
// buffer (output first, then inputs) the call carries (handle, base_offset, stride per
// tensorized dim...), followed by the tensorized extents. Keeping the name -> category
// table and the arity decode in one header means a new intrinsic added for one engine
// cannot silently de-optimize the other into interpreter fallback.
#ifndef SRC_IR_INTRIN_TABLE_H_
#define SRC_IR_INTRIN_TABLE_H_

#include <cmath>
#include <cstdint>
#include <string>

#include "src/ir/stmt.h"

namespace tvmcpp {

// Semantic category of a tensor intrinsic, keyed by buffer count:
//   kFill (1 buffer):  out[...] = 0
//   kCopy (2 buffers): out[...] = in[...]
//   kMac  (3 buffers): out[...] += in0[...] * in1[...]
enum class TensorIntrinCategory : uint8_t { kFill = 0, kCopy = 1, kMac = 2 };

struct TensorIntrinInfo {
  TensorIntrinCategory category;
  int num_buffers;
};

// Returns the descriptor for `name`, or nullptr when it is not a tensor intrinsic.
inline const TensorIntrinInfo* LookupTensorIntrin(const std::string& name) {
  static const TensorIntrinInfo kFillInfo{TensorIntrinCategory::kFill, 1};
  static const TensorIntrinInfo kCopyInfo{TensorIntrinCategory::kCopy, 2};
  static const TensorIntrinInfo kMacInfo{TensorIntrinCategory::kMac, 3};
  if (name == kFillZeroIntrin || name == "fill_zero") {
    return &kFillInfo;
  }
  if (name == kDmaCopyIntrin || name == "dma_copy") {
    return &kCopyInfo;
  }
  if (name == kGemmIntrin || name == "gemm_update" || name == "bitserial_gemv" ||
      name == "arm_bitserial_gemv" || name == "fused_gemm_add") {
    return &kMacInfo;
  }
  return nullptr;
}

// Lane-wise pure float unary math intrinsics. Both execution engines evaluate them
// through this one table (name -> tag -> EvalUnaryMathFn), and the vectorizer
// consults the same membership test — adding an intrinsic here enables it everywhere
// at once, with identical (bitwise) evaluation on every path.
enum class UnaryMathFn : uint8_t { kExp, kLog, kSqrt, kTanh, kSigmoid };

inline bool LookupUnaryMathFn(const std::string& name, UnaryMathFn* fn) {
  if (name == "exp") {
    *fn = UnaryMathFn::kExp;
  } else if (name == "log") {
    *fn = UnaryMathFn::kLog;
  } else if (name == "sqrt") {
    *fn = UnaryMathFn::kSqrt;
  } else if (name == "tanh") {
    *fn = UnaryMathFn::kTanh;
  } else if (name == "sigmoid") {
    *fn = UnaryMathFn::kSigmoid;
  } else {
    return false;
  }
  return true;
}

inline double EvalUnaryMathFn(UnaryMathFn fn, double x) {
  switch (fn) {
    case UnaryMathFn::kExp:
      return std::exp(x);
    case UnaryMathFn::kLog:
      return std::log(x);
    case UnaryMathFn::kSqrt:
      return std::sqrt(x);
    case UnaryMathFn::kTanh:
      return std::tanh(x);
    case UnaryMathFn::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
  }
  return 0;  // unreachable
}

inline bool IsUnaryMathIntrin(const std::string& name) {
  UnaryMathFn fn;
  return LookupUnaryMathFn(name, &fn);
}

// Decodes the number of tensorized dims from the argument count:
//   #args = B*(2+NT) + NT  =>  NT = (#args - 2B) / (B+1)
// Returns false when `total_args` is not a valid arity for `num_buffers`.
inline bool DecodeTensorIntrinArity(int num_buffers, int total_args, int* nt) {
  *nt = (total_args - 2 * num_buffers) / (num_buffers + 1);
  return *nt >= 0 && num_buffers * (2 + *nt) + *nt == total_args;
}

}  // namespace tvmcpp

#endif  // SRC_IR_INTRIN_TABLE_H_
