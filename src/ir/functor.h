// Visitor and mutator base classes over the expression/statement IR.
//
// Dispatch is a switch on the node kind; subclasses override the per-node Visit_/Mutate_
// hooks they care about. Mutators rebuild nodes only when a child changed.
#ifndef SRC_IR_FUNCTOR_H_
#define SRC_IR_FUNCTOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/ir/expr.h"
#include "src/ir/stmt.h"

namespace tvmcpp {

// Recursively visits every sub-expression.
class ExprVisitor {
 public:
  virtual ~ExprVisitor() = default;
  virtual void Visit(const Expr& e);

 protected:
  virtual void VisitVar(const VarNode* op) {}
  virtual void VisitIntImm(const IntImmNode* op) {}
  virtual void VisitFloatImm(const FloatImmNode* op) {}
  virtual void VisitStringImm(const StringImmNode* op) {}
  virtual void VisitCast(const CastNode* op);
  virtual void VisitBinary(const BinaryNode* op);
  virtual void VisitNot(const NotNode* op);
  virtual void VisitSelect(const SelectNode* op);
  virtual void VisitLoad(const LoadNode* op);
  virtual void VisitRamp(const RampNode* op);
  virtual void VisitBroadcast(const BroadcastNode* op);
  virtual void VisitCall(const CallNode* op);
  virtual void VisitLet(const LetNode* op);
  virtual void VisitReduce(const ReduceNode* op);
  virtual void VisitTensorRead(const TensorReadNode* op);
};

// Recursively visits statements and the expressions they contain.
class StmtVisitor : public ExprVisitor {
 public:
  virtual void VisitStmt(const Stmt& s);

 protected:
  virtual void VisitLetStmt(const LetStmtNode* op);
  virtual void VisitAttrStmt(const AttrStmtNode* op);
  virtual void VisitAssert(const AssertStmtNode* op);
  virtual void VisitStore(const StoreNode* op);
  virtual void VisitAllocate(const AllocateNode* op);
  virtual void VisitFor(const ForNode* op);
  virtual void VisitIfThenElse(const IfThenElseNode* op);
  virtual void VisitSeq(const SeqStmtNode* op);
  virtual void VisitEvaluate(const EvaluateNode* op);
};

// Rewrites expressions bottom-up. Default hooks rebuild a node when a child changed.
class ExprMutator {
 public:
  virtual ~ExprMutator() = default;
  virtual Expr Mutate(const Expr& e);

 protected:
  virtual Expr MutateVar(const VarNode* op, const Expr& e) { return e; }
  virtual Expr MutateIntImm(const IntImmNode* op, const Expr& e) { return e; }
  virtual Expr MutateFloatImm(const FloatImmNode* op, const Expr& e) { return e; }
  virtual Expr MutateStringImm(const StringImmNode* op, const Expr& e) { return e; }
  virtual Expr MutateCast(const CastNode* op, const Expr& e);
  virtual Expr MutateBinary(const BinaryNode* op, const Expr& e);
  virtual Expr MutateNot(const NotNode* op, const Expr& e);
  virtual Expr MutateSelect(const SelectNode* op, const Expr& e);
  virtual Expr MutateLoad(const LoadNode* op, const Expr& e);
  virtual Expr MutateRamp(const RampNode* op, const Expr& e);
  virtual Expr MutateBroadcast(const BroadcastNode* op, const Expr& e);
  virtual Expr MutateCall(const CallNode* op, const Expr& e);
  virtual Expr MutateLet(const LetNode* op, const Expr& e);
  virtual Expr MutateReduce(const ReduceNode* op, const Expr& e);
  virtual Expr MutateTensorRead(const TensorReadNode* op, const Expr& e);
};

// Rewrites statements (and contained expressions) bottom-up.
class StmtMutator : public ExprMutator {
 public:
  virtual Stmt MutateStmt(const Stmt& s);

 protected:
  virtual Stmt MutateLetStmt(const LetStmtNode* op, const Stmt& s);
  virtual Stmt MutateAttrStmt(const AttrStmtNode* op, const Stmt& s);
  virtual Stmt MutateAssert(const AssertStmtNode* op, const Stmt& s);
  virtual Stmt MutateStore(const StoreNode* op, const Stmt& s);
  virtual Stmt MutateAllocate(const AllocateNode* op, const Stmt& s);
  virtual Stmt MutateFor(const ForNode* op, const Stmt& s);
  virtual Stmt MutateIfThenElse(const IfThenElseNode* op, const Stmt& s);
  virtual Stmt MutateSeq(const SeqStmtNode* op, const Stmt& s);
  virtual Stmt MutateEvaluate(const EvaluateNode* op, const Stmt& s);
};

// Calls `fvisit` on every sub-expression of `e` in post order.
void PostOrderVisit(const Expr& e, const std::function<void(const Expr&)>& fvisit);
// Calls `fvisit` on every statement in `s` in post order (expressions not included).
void PostOrderVisitStmt(const Stmt& s, const std::function<void(const Stmt&)>& fvisit);

}  // namespace tvmcpp

#endif  // SRC_IR_FUNCTOR_H_
