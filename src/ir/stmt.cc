#include "src/ir/stmt.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace tvmcpp {

Stmt let_stmt(Var v, Expr value, Stmt body) {
  return std::make_shared<LetStmtNode>(std::move(v), std::move(value), std::move(body));
}

Stmt attr_stmt(const std::string& key, Expr value, Stmt body) {
  return std::make_shared<AttrStmtNode>(key, std::move(value), std::move(body));
}

Stmt assert_stmt(Expr cond, const std::string& message, Stmt body) {
  return std::make_shared<AssertStmtNode>(std::move(cond), message, std::move(body));
}

Stmt store(Var buf, Expr value, Expr index, Expr predicate) {
  return std::make_shared<StoreNode>(std::move(buf), std::move(value), std::move(index),
                                     std::move(predicate));
}

Stmt allocate(Var buf, DataType t, std::vector<Expr> extents, const std::string& scope,
              Stmt body) {
  return std::make_shared<AllocateNode>(std::move(buf), t, std::move(extents), scope,
                                        std::move(body));
}

Stmt for_stmt(Var loop_var, Expr min, Expr extent, Stmt body, ForType for_type,
              const std::string& thread_tag) {
  return std::make_shared<ForNode>(std::move(loop_var), std::move(min), std::move(extent),
                                   for_type, thread_tag, std::move(body));
}

Stmt if_then_else_stmt(Expr cond, Stmt then_case, Stmt else_case) {
  return std::make_shared<IfThenElseNode>(std::move(cond), std::move(then_case),
                                          std::move(else_case));
}

namespace {

bool IsNop(const Stmt& s) {
  if (s == nullptr) {
    return true;
  }
  if (s->kind == StmtKind::kEvaluate) {
    const auto* e = static_cast<const EvaluateNode*>(s.get());
    int64_t v;
    return is_const_int(e->value, &v);
  }
  if (s->kind == StmtKind::kSeq) {
    return static_cast<const SeqStmtNode*>(s.get())->seq.empty();
  }
  return false;
}

}  // namespace

Stmt seq(std::vector<Stmt> stmts) {
  std::vector<Stmt> flat;
  for (Stmt& s : stmts) {
    if (IsNop(s)) {
      continue;
    }
    if (s->kind == StmtKind::kSeq) {
      const auto* sn = static_cast<const SeqStmtNode*>(s.get());
      flat.insert(flat.end(), sn->seq.begin(), sn->seq.end());
    } else {
      flat.push_back(std::move(s));
    }
  }
  if (flat.empty()) {
    return nop();
  }
  if (flat.size() == 1) {
    return flat[0];
  }
  return std::make_shared<SeqStmtNode>(std::move(flat));
}

Stmt evaluate(Expr value) { return std::make_shared<EvaluateNode>(std::move(value)); }

Stmt nop() { return evaluate(make_int(0)); }

}  // namespace tvmcpp
