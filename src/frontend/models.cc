#include "src/frontend/models.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/runtime/csr.h"

namespace tvmcpp {
namespace frontend {

std::shared_ptr<graph::CompiledGraph> CompileModel(const Model& m, const Target& target,
                                                   graph::CompileOptions options) {
  auto compiled =
      std::make_shared<graph::CompiledGraph>(m.graph, target, std::move(options));
  for (const auto& kv : m.params) {
    compiled->SetParam(kv.first, kv.second);
  }
  return compiled;
}

namespace {

// Adds a parameter node + random value.
int Param(Model* m, const std::string& name, std::vector<int64_t> shape, uint64_t seed) {
  int id = m->graph.AddConst(name, shape);
  m->params[name] = NDArray::Random(shape, DataType::Float32(), seed);
  return id;
}

// conv -> bn -> relu block.
int ConvBnRelu(Model* m, int data, const std::string& name, int in_c, int out_c, int k,
               int stride, int pad, uint64_t seed, bool relu = true) {
  int w = Param(m, name + "_w", {out_c, in_c, k, k}, seed);
  int conv = m->graph.AddOp("conv2d", name, {data, w}, {{"stride", stride}, {"pad", pad}});
  int scale = Param(m, name + "_bn_scale", {out_c}, seed + 1);
  int shift = Param(m, name + "_bn_shift", {out_c}, seed + 2);
  int bn = m->graph.AddOp("batch_norm", name + "_bn", {conv, scale, shift});
  if (!relu) {
    return bn;
  }
  return m->graph.AddOp("relu", name + "_relu", {bn});
}

}  // namespace

Model ResNet18(int batch, int image_size) {
  Model m;
  m.input_shape = {batch, 3, image_size, image_size};
  int data = m.graph.AddInput("data", m.input_shape);
  uint64_t seed = 100;
  // Stem: 7x7/2 conv + 3x3/2 max pool.
  int x = ConvBnRelu(&m, data, "conv0", 3, 64, 7, 2, 3, seed);
  x = m.graph.AddOp("max_pool2d", "pool0", {x}, {{"kernel", 3}, {"stride", 2}, {"pad", 1}});
  // 4 stages of 2 basic blocks each: channels 64,128,256,512.
  int channels[4] = {64, 128, 256, 512};
  int in_c = 64;
  for (int stage = 0; stage < 4; ++stage) {
    int out_c = channels[stage];
    for (int block = 0; block < 2; ++block) {
      int stride = (stage > 0 && block == 0) ? 2 : 1;
      std::string base = "s" + std::to_string(stage) + "b" + std::to_string(block);
      seed += 10;
      int branch = ConvBnRelu(&m, x, base + "_conv1", in_c, out_c, 3, stride, 1, seed);
      seed += 10;
      int branch2 =
          ConvBnRelu(&m, branch, base + "_conv2", out_c, out_c, 3, 1, 1, seed, false);
      int shortcut = x;
      if (stride != 1 || in_c != out_c) {
        seed += 10;
        shortcut = ConvBnRelu(&m, x, base + "_down", in_c, out_c, 1, stride, 0, seed, false);
      }
      int sum = m.graph.AddOp("add", base + "_add", {branch2, shortcut});
      x = m.graph.AddOp("relu", base + "_relu", {sum});
      in_c = out_c;
    }
  }
  x = m.graph.AddOp("global_avg_pool", "gap", {x});
  int fcw = Param(&m, "fc_w", {1000, 512}, 999);
  x = m.graph.AddOp("dense", "fc", {x, fcw});
  x = m.graph.AddOp("softmax", "prob", {x});
  m.graph.outputs = {x};
  return m;
}

Model MobileNet(int batch, int image_size) {
  Model m;
  m.input_shape = {batch, 3, image_size, image_size};
  int data = m.graph.AddInput("data", m.input_shape);
  uint64_t seed = 300;
  int x = ConvBnRelu(&m, data, "conv0", 3, 32, 3, 2, 1, seed);
  // (channels, stride) per depthwise-separable block.
  struct Block {
    int in_c, out_c, stride;
  };
  std::vector<Block> blocks = {{32, 64, 1},   {64, 128, 2},  {128, 128, 1}, {128, 256, 2},
                               {256, 256, 1}, {256, 512, 2}, {512, 512, 1}, {512, 512, 1},
                               {512, 512, 1}, {512, 512, 1}, {512, 512, 1}, {512, 1024, 2},
                               {1024, 1024, 1}};
  int idx = 0;
  for (const Block& b : blocks) {
    std::string base = "dw" + std::to_string(idx++);
    seed += 10;
    int dww = Param(&m, base + "_w", {b.in_c, 1, 3, 3}, seed);
    int dw = m.graph.AddOp("depthwise_conv2d", base, {x, dww},
                           {{"stride", b.stride}, {"pad", 1}});
    int sc = Param(&m, base + "_bn_scale", {b.in_c}, seed + 1);
    int sh = Param(&m, base + "_bn_shift", {b.in_c}, seed + 2);
    int bn = m.graph.AddOp("batch_norm", base + "_bn", {dw, sc, sh});
    int r = m.graph.AddOp("relu", base + "_relu", {bn});
    seed += 10;
    x = ConvBnRelu(&m, r, base + "_pw", b.in_c, b.out_c, 1, 1, 0, seed);
  }
  x = m.graph.AddOp("global_avg_pool", "gap", {x});
  int fcw = Param(&m, "fc_w", {1000, 1024}, 998);
  x = m.graph.AddOp("dense", "fc", {x, fcw});
  x = m.graph.AddOp("softmax", "prob", {x});
  m.graph.outputs = {x};
  return m;
}

Model Dqn(int batch) {
  // Mnih et al. Nature DQN: 84x84x4 -> conv8x8s4x32 -> conv4x4s2x64 -> conv3x3s1x64
  // -> fc512 -> fc(actions).
  Model m;
  m.input_shape = {batch, 4, 84, 84};
  int data = m.graph.AddInput("data", m.input_shape);
  int w1 = Param(&m, "c1_w", {32, 4, 8, 8}, 1);
  int c1 = m.graph.AddOp("conv2d", "c1", {data, w1}, {{"stride", 4}, {"pad", 0}});
  int r1 = m.graph.AddOp("relu", "r1", {c1});
  int w2 = Param(&m, "c2_w", {64, 32, 4, 4}, 2);
  int c2 = m.graph.AddOp("conv2d", "c2", {r1, w2}, {{"stride", 2}, {"pad", 0}});
  int r2 = m.graph.AddOp("relu", "r2", {c2});
  int w3 = Param(&m, "c3_w", {64, 64, 3, 3}, 3);
  int c3 = m.graph.AddOp("conv2d", "c3", {r2, w3}, {{"stride", 1}, {"pad", 0}});
  int r3 = m.graph.AddOp("relu", "r3", {c3});
  int flat = m.graph.AddOp("flatten", "flat", {r3});
  int w4 = Param(&m, "fc1_w", {512, 64 * 7 * 7}, 4);
  int fc1 = m.graph.AddOp("dense", "fc1", {flat, w4});
  int r4 = m.graph.AddOp("relu", "r4", {fc1});
  int w5 = Param(&m, "fc2_w", {18, 512}, 5);
  int fc2 = m.graph.AddOp("dense", "fc2", {r4, w5});
  m.graph.outputs = {fc2};
  return m;
}

Model Dcgan(int batch) {
  // DCGAN generator trunk: the latent projection is folded into the 4-D input
  // [batch, 512, 4, 4]; four 4x4 stride-2 transposed convolutions produce 64x64x3.
  Model m;
  m.input_shape = {batch, 512, 4, 4};
  int x = m.graph.AddInput("data", m.input_shape);
  uint64_t seed = 20;
  struct Layer {
    int in_c, out_c;
  };
  std::vector<Layer> layers = {{512, 256}, {256, 128}, {128, 64}, {64, 3}};
  int li = 0;
  for (const Layer& l : layers) {
    std::string base = "deconv" + std::to_string(li++);
    seed += 7;
    int w = Param(&m, base + "_w", {l.in_c, l.out_c, 4, 4}, seed);
    x = m.graph.AddOp("conv2d_transpose", base, {x, w}, {{"stride", 2}, {"pad", 1}});
    if (li < static_cast<int>(layers.size())) {
      x = m.graph.AddOp("relu", base + "_relu", {x});
    } else {
      x = m.graph.AddOp("tanh", base + "_tanh", {x});
    }
  }
  m.graph.outputs = {x};
  return m;
}

Model LstmLanguageModel(int num_steps, int hidden, int batch) {
  // One-layer LSTM LM unrolled for num_steps; gates computed as two dense ops per step.
  Model m;
  m.input_shape = {batch, hidden};
  int x0 = m.graph.AddInput("data", m.input_shape);
  int h = m.graph.AddInput("h0", {batch, hidden});
  int c = m.graph.AddInput("c0", {batch, hidden});
  int wx = m.graph.AddConst("w_x", {4 * hidden, hidden});
  int wh = m.graph.AddConst("w_h", {4 * hidden, hidden});
  m.params["w_x"] = NDArray::Random({4 * hidden, hidden}, DataType::Float32(), 31);
  m.params["w_h"] = NDArray::Random({4 * hidden, hidden}, DataType::Float32(), 32);
  int x = x0;
  for (int t = 0; t < num_steps; ++t) {
    std::string base = "t" + std::to_string(t);
    int gx = m.graph.AddOp("dense", base + "_gx", {x, wx});
    int gh = m.graph.AddOp("dense", base + "_gh", {h, wh});
    int gates = m.graph.AddOp("add", base + "_gates", {gx, gh});
    // Gate nonlinearities modeled on the full gate vector (i,f,o g composition is
    // approximated elementwise; the compute/flop structure matches an LSTM cell).
    int ig = m.graph.AddOp("sigmoid", base + "_sig", {gates});
    int gg = m.graph.AddOp("tanh", base + "_tanh", {gates});
    int prod = m.graph.AddOp("mul", base + "_ig", {ig, gg});
    // c' and h' share the [batch, 4*hidden] shaped intermediates; slice is modeled by a
    // dense projection back to hidden.
    int wslice = m.graph.AddConst(base + "_proj", {hidden, 4 * hidden});
    m.params[base + "_proj"] =
        NDArray::Random({hidden, 4 * hidden}, DataType::Float32(), 40 + t);
    int cnew = m.graph.AddOp("dense", base + "_c", {prod, wslice});
    int hnew = m.graph.AddOp("tanh", base + "_h", {cnew});
    c = cnew;
    h = hnew;
    x = hnew;
  }
  m.graph.outputs = {h};
  return m;
}

namespace {

// The pruned weight both SparseMlp variants share: dense random values, then
// elementwise pruning. The dense reference keeps the zeros in place; the sparse
// model compresses them away — same surviving values in the same positions.
NDArray PrunedWeight(int64_t rows, int64_t cols, double sparsity, uint64_t seed) {
  NDArray w = NDArray::Random({rows, cols}, DataType::Float32(), seed);
  runtime::SparsifyDense(&w, sparsity, seed ^ 0x9e3779b97f4a7c15ull);
  return w;
}

int SparseDenseLayer(Model* m, int x, const std::string& name, int64_t in_dim,
                     int64_t out_dim, double sparsity, uint64_t seed) {
  runtime::CSRMatrix csr =
      runtime::CSRMatrix::FromDense(PrunedWeight(out_dim, in_dim, sparsity, seed));
  int wd = m->graph.AddConst(name + "_w_data", csr.data.shape());
  int wi =
      m->graph.AddConst(name + "_w_indices", csr.indices.shape(), DataType::Int32());
  int wp =
      m->graph.AddConst(name + "_w_indptr", csr.indptr.shape(), DataType::Int32());
  m->params[name + "_w_data"] = csr.data;
  m->params[name + "_w_indices"] = csr.indices;
  m->params[name + "_w_indptr"] = csr.indptr;
  return m->graph.AddOp("sparse_dense", name, {x, wd, wi, wp},
                        {{"nnz", csr.nnz}, {"max_row_nnz", csr.max_row_nnz}});
}

}  // namespace

Model SparseMlp(int batch, int in_dim, int hidden, int classes, double sparsity) {
  Model m;
  m.input_shape = {batch, in_dim};
  int data = m.graph.AddInput("data", m.input_shape);
  int x = SparseDenseLayer(&m, data, "sfc1", in_dim, hidden, sparsity, 9100);
  x = m.graph.AddOp("relu", "sfc1_relu", {x});
  x = SparseDenseLayer(&m, x, "sfc2", hidden, classes, sparsity, 9200);
  x = m.graph.AddOp("softmax", "prob", {x});
  m.graph.outputs = {x};
  return m;
}

Model SparseMlpDenseReference(int batch, int in_dim, int hidden, int classes,
                              double sparsity) {
  Model m;
  m.input_shape = {batch, in_dim};
  int data = m.graph.AddInput("data", m.input_shape);
  int w1 = m.graph.AddConst("sfc1_w", {hidden, in_dim});
  m.params["sfc1_w"] = PrunedWeight(hidden, in_dim, sparsity, 9100);
  int x = m.graph.AddOp("dense", "sfc1", {data, w1});
  x = m.graph.AddOp("relu", "sfc1_relu", {x});
  int w2 = m.graph.AddConst("sfc2_w", {classes, hidden});
  m.params["sfc2_w"] = PrunedWeight(classes, hidden, sparsity, 9200);
  x = m.graph.AddOp("dense", "sfc2", {x, w2});
  x = m.graph.AddOp("softmax", "prob", {x});
  m.graph.outputs = {x};
  return m;
}

std::vector<topi::OpWorkload> ResnetConvWorkloads() {
  // Table 2: (H/W, IC, OC, K, S); all use SAME padding.
  struct Row {
    int hw, ic, oc, k, s;
  };
  std::vector<Row> rows = {
      {224, 3, 64, 7, 2},   {56, 64, 64, 3, 1},   {56, 64, 64, 1, 1},
      {56, 64, 128, 3, 2},  {56, 64, 128, 1, 2},  {28, 128, 128, 3, 1},
      {28, 128, 256, 3, 2}, {28, 128, 256, 1, 2}, {14, 256, 256, 3, 1},
      {14, 256, 512, 3, 2}, {14, 256, 512, 1, 2}, {7, 512, 512, 3, 1},
  };
  std::vector<topi::OpWorkload> out;
  for (const Row& r : rows) {
    topi::OpWorkload wl;
    wl.kind = "conv2d";
    wl.n = 1;
    wl.h = r.hw;
    wl.w = r.hw;
    wl.ic = r.ic;
    wl.oc = r.oc;
    wl.k = r.k;
    wl.stride = r.s;
    wl.pad = r.k / 2;  // SAME
    out.push_back(wl);
  }
  return out;
}

std::vector<topi::OpWorkload> MobilenetDepthwiseWorkloads() {
  struct Row {
    int hw, c, k, s;
  };
  std::vector<Row> rows = {
      {112, 32, 3, 1}, {112, 64, 3, 2}, {56, 128, 3, 1}, {56, 128, 3, 2}, {28, 256, 3, 1},
      {28, 256, 3, 2}, {14, 512, 3, 1}, {14, 512, 3, 2}, {7, 1024, 3, 1},
  };
  std::vector<topi::OpWorkload> out;
  for (const Row& r : rows) {
    topi::OpWorkload wl;
    wl.kind = "depthwise_conv2d";
    wl.n = 1;
    wl.h = r.hw;
    wl.w = r.hw;
    wl.ic = r.c;
    wl.oc = r.c;
    wl.k = r.k;
    wl.stride = r.s;
    wl.pad = r.k / 2;
    out.push_back(wl);
  }
  return out;
}

}  // namespace frontend
}  // namespace tvmcpp
