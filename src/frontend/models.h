// Model zoo: graph builders for the paper's evaluation workloads (Section 6) —
// ResNet-18, MobileNet, DQN, DCGAN, and the LSTM language model — plus the Table 2
// single-operator workload lists (C1–C12, D1–D9).
#ifndef SRC_FRONTEND_MODELS_H_
#define SRC_FRONTEND_MODELS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/topi/schedules.h"

namespace tvmcpp {
namespace frontend {

struct Model {
  graph::Graph graph;
  // Random-initialized parameters keyed by node name (the paper's `params`).
  std::unordered_map<std::string, NDArray> params;
  std::string input_name = "data";
  std::vector<int64_t> input_shape;
};

Model ResNet18(int batch = 1, int image_size = 224);
Model MobileNet(int batch = 1, int image_size = 224);
Model Dqn(int batch = 1);      // Nature DQN conv trunk (84x84x4 input)
Model Dcgan(int batch = 1);    // DCGAN generator (100-d code -> 64x64 image)
Model LstmLanguageModel(int num_steps = 4, int hidden = 650, int batch = 1);

// A pruned two-layer MLP served as CSR sparse_dense ops:
//   data [batch, in_dim] -> sparse_dense -> relu -> sparse_dense -> softmax.
// Weights are dense random matrices pruned elementwise with probability
// `sparsity` (deterministic per layer, batch-invariant), then compressed to CSR
// const params (<name>_w_data / _w_indices / _w_indptr per layer).
Model SparseMlp(int batch = 1, int in_dim = 128, int hidden = 128, int classes = 32,
                double sparsity = 0.95);
// The same pruned MLP with the zeros materialized back into ordinary dense ops —
// the bitwise reference for the sparse path (identical weights, identical
// reduction order on the surviving terms).
Model SparseMlpDenseReference(int batch = 1, int in_dim = 128, int hidden = 128,
                              int classes = 32, double sparsity = 0.95);

// Compiles a frontend model for `target` with its parameters bound. Model builders
// seed their random parameters deterministically per parameter name, so two builds
// of the same model at different batch sizes carry bitwise-identical weights — which
// makes this the batch-N construction path for the serving layer's dynamic
// batching, e.g.:
//   server.SetBatchBuilder(base, [&](int b) {
//     return frontend::CompileModel(frontend::Dqn(b), target);
//   });
std::shared_ptr<graph::CompiledGraph> CompileModel(const Model& m, const Target& target,
                                                   graph::CompileOptions options = {});

// Table 2: all conv2d workloads of ResNet-18 (C1..C12).
std::vector<topi::OpWorkload> ResnetConvWorkloads();
// Table 2: all depthwise conv2d workloads of MobileNet (D1..D9).
std::vector<topi::OpWorkload> MobilenetDepthwiseWorkloads();

}  // namespace frontend
}  // namespace tvmcpp

#endif  // SRC_FRONTEND_MODELS_H_
