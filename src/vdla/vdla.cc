#include "src/vdla/vdla.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ir/functor.h"
#include "src/ir/printer.h"
#include "src/ir/simplify.h"
#include "src/ir/substitute.h"

namespace tvmcpp {

namespace {

// ---------------------------------------------------------------------------
// Integer expression evaluation over a loop-variable environment.
// ---------------------------------------------------------------------------

int64_t EvalInt(const Expr& e, const std::unordered_map<const VarNode*, int64_t>& env) {
  switch (e->kind) {
    case ExprKind::kIntImm:
      return static_cast<const IntImmNode*>(e.get())->value;
    case ExprKind::kVar: {
      auto it = env.find(static_cast<const VarNode*>(e.get()));
      CHECK(it != env.end()) << "vdla codegen: unbound var "
                             << static_cast<const VarNode*>(e.get())->name;
      return it->second;
    }
    case ExprKind::kCast:
      return EvalInt(static_cast<const CastNode*>(e.get())->value, env);
    case ExprKind::kSelect: {
      const auto* n = static_cast<const SelectNode*>(e.get());
      return EvalInt(n->condition, env) != 0 ? EvalInt(n->true_value, env)
                                             : EvalInt(n->false_value, env);
    }
    case ExprKind::kCall: {
      const auto* n = static_cast<const CallNode*>(e.get());
      if (n->name == "if_then_else") {
        return EvalInt(n->args[0], env) != 0 ? EvalInt(n->args[1], env)
                                             : EvalInt(n->args[2], env);
      }
      LOG(FATAL) << "vdla codegen cannot evaluate call " << n->name;
    }
    case ExprKind::kNot:
      return EvalInt(static_cast<const NotNode*>(e.get())->a, env) == 0 ? 1 : 0;
    default: {
      const auto* b = dynamic_cast<const BinaryNode*>(e.get());
      CHECK(b != nullptr) << "vdla codegen cannot evaluate " << ToString(e);
      int64_t x = EvalInt(b->a, env), y = EvalInt(b->b, env);
      switch (e->kind) {
        case ExprKind::kAdd:
          return x + y;
        case ExprKind::kSub:
          return x - y;
        case ExprKind::kMul:
          return x * y;
        case ExprKind::kDiv:
          return FloorDiv(x, y);
        case ExprKind::kMod:
          return FloorMod(x, y);
        case ExprKind::kMin:
          return std::min(x, y);
        case ExprKind::kMax:
          return std::max(x, y);
        case ExprKind::kEQ:
          return x == y;
        case ExprKind::kNE:
          return x != y;
        case ExprKind::kLT:
          return x < y;
        case ExprKind::kLE:
          return x <= y;
        case ExprKind::kGT:
          return x > y;
        case ExprKind::kGE:
          return x >= y;
        case ExprKind::kAnd:
          return (x != 0) && (y != 0);
        case ExprKind::kOr:
          return (x != 0) || (y != 0);
        default:
          LOG(FATAL) << "bad binary";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Leaf-nest classification
// ---------------------------------------------------------------------------

struct LeafInfo {
  enum class Kind { kNotLeaf, kCopy, kCompute, kFill, kIntrinsic };
  Kind kind = Kind::kNotLeaf;
  const StoreNode* store = nullptr;     // kCopy / kCompute / kFill
  const CallNode* call = nullptr;       // kIntrinsic
  std::vector<const ForNode*> loops;    // loops of the nest, outer first
};

// Returns the leaf classification of `s`: a nest of Fors whose body is a single Store or
// a single intrinsic Evaluate.
LeafInfo ClassifyLeaf(const Stmt& s) {
  LeafInfo info;
  Stmt cur = s;
  while (cur != nullptr) {
    switch (cur->kind) {
      case StmtKind::kFor: {
        const auto* f = static_cast<const ForNode*>(cur.get());
        info.loops.push_back(f);
        cur = f->body;
        break;
      }
      case StmtKind::kStore: {
        const auto* st = static_cast<const StoreNode*>(cur.get());
        info.store = st;
        if (st->value->kind == ExprKind::kLoad) {
          info.kind = LeafInfo::Kind::kCopy;
        } else {
          // Constant store = accumulator fill; anything else = ALU work.
          int64_t v;
          bool is_const = is_const_int(st->value, &v) ||
                          st->value->kind == ExprKind::kFloatImm;
          info.kind = is_const ? LeafInfo::Kind::kFill : LeafInfo::Kind::kCompute;
        }
        return info;
      }
      case StmtKind::kEvaluate: {
        const auto* ev = static_cast<const EvaluateNode*>(cur.get());
        if (ev->value->kind == ExprKind::kCall) {
          const auto* call = static_cast<const CallNode*>(ev->value.get());
          if (call->call_type == CallType::kIntrinsic && call->name != kSyncIntrin &&
              call->name != kPushDepIntrin && call->name != kPopDepIntrin) {
            info.call = call;
            info.kind = LeafInfo::Kind::kIntrinsic;
            return info;
          }
        }
        return LeafInfo{};
      }
      default:
        return LeafInfo{};
    }
  }
  return LeafInfo{};
}

// ---------------------------------------------------------------------------
// Dynamic instruction emission with interval-based dependence tokens
// ---------------------------------------------------------------------------

struct Interval {
  int64_t lo = 0;
  int64_t hi = 0;  // inclusive, elements
  bool Overlaps(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }
};

struct Access {
  const VarNode* buffer;
  Interval range;
};

struct RawInsn {
  VdlaInsn::Op op;
  VdlaUnit unit;
  int64_t bytes = 0;
  int64_t work = 0;
  std::vector<Access> reads;
  std::vector<Access> writes;
};

class VdlaEmitter {
 public:
  explicit VdlaEmitter(const LoweredFunc& func) {
    for (const BufferArg& arg : func.args) {
      scopes_[arg.var.get()] = "global";
      elem_bytes_[arg.var.get()] = (arg.dtype.bits() + 7) / 8;
    }
  }

  std::vector<RawInsn> Emit(const Stmt& body) {
    Exec(body);
    return std::move(insns_);
  }

 private:
  bool IsOnChip(const VarNode* buf) const {
    auto it = scopes_.find(buf);
    return it != scopes_.end() && it->second != "global";
  }

  void Exec(const Stmt& s) {
    if (s == nullptr) {
      return;
    }
    LeafInfo leaf = ClassifyLeaf(s);
    if (leaf.kind != LeafInfo::Kind::kNotLeaf) {
      EmitLeaf(leaf);
      return;
    }
    switch (s->kind) {
      case StmtKind::kSeq:
        for (const Stmt& st : static_cast<const SeqStmtNode*>(s.get())->seq) {
          Exec(st);
        }
        break;
      case StmtKind::kFor: {
        const auto* f = static_cast<const ForNode*>(s.get());
        int64_t min_v = EvalInt(f->min, env_);
        int64_t extent = EvalInt(f->extent, env_);
        for (int64_t v = min_v; v < min_v + extent; ++v) {
          env_[f->loop_var.get()] = v;
          Exec(f->body);
        }
        env_.erase(f->loop_var.get());
        break;
      }
      case StmtKind::kAllocate: {
        const auto* a = static_cast<const AllocateNode*>(s.get());
        scopes_[a->buffer_var.get()] = a->scope;
        elem_bytes_[a->buffer_var.get()] = (a->dtype.bits() + 7) / 8;
        Exec(a->body);
        break;
      }
      case StmtKind::kAttrStmt:
        Exec(static_cast<const AttrStmtNode*>(s.get())->body);
        break;
      case StmtKind::kLetStmt: {
        const auto* l = static_cast<const LetStmtNode*>(s.get());
        env_[l->var.get()] = EvalInt(l->value, env_);
        Exec(l->body);
        break;
      }
      case StmtKind::kIfThenElse: {
        const auto* n = static_cast<const IfThenElseNode*>(s.get());
        if (EvalInt(n->condition, env_) != 0) {
          Exec(n->then_case);
        } else if (n->else_case != nullptr) {
          Exec(n->else_case);
        }
        break;
      }
      case StmtKind::kEvaluate:
        // Sync intrinsics or scalar evaluates: ignored (tokens are re-derived).
        break;
      default:
        LOG(FATAL) << "vdla codegen: unsupported statement";
    }
  }

  // Index interval of an access over the nest's loop vars (affine, non-negative strides
  // dominate; min/max corners are evaluated explicitly).
  Interval RangeOf(const Expr& index, const std::vector<const ForNode*>& loops) {
    std::unordered_map<const VarNode*, int64_t> lo_env = env_;
    std::unordered_map<const VarNode*, int64_t> hi_env = env_;
    for (const ForNode* f : loops) {
      int64_t extent = EvalInt(f->extent, env_);
      lo_env[f->loop_var.get()] = 0;
      hi_env[f->loop_var.get()] = extent - 1;
    }
    int64_t a = EvalInt(index, lo_env);
    int64_t b = EvalInt(index, hi_env);
    return Interval{std::min(a, b), std::max(a, b)};
  }

  void EmitLeaf(const LeafInfo& leaf) {
    RawInsn insn;
    int64_t iter = 1;
    for (const ForNode* f : leaf.loops) {
      iter *= EvalInt(f->extent, env_);
    }
    if (leaf.kind == LeafInfo::Kind::kIntrinsic) {
      // Intrinsic offsets reference the surrounding loop vars: iterate them dynamically,
      // emitting one macro-instruction per call site.
      EmitIntrinsicNest(leaf, 0);
      return;
    }
    const StoreNode* st = leaf.store;
    const VarNode* dst = st->buffer_var.get();
    Interval dst_range = RangeOf(st->index, leaf.loops);
    insn.writes.push_back(Access{dst, dst_range});
    std::vector<const LoadNode*> loads;
    PostOrderVisit(st->value, [&](const Expr& e) {
      if (e->kind == ExprKind::kLoad) {
        loads.push_back(static_cast<const LoadNode*>(e.get()));
      }
    });
    for (const LoadNode* ld : loads) {
      insn.reads.push_back(Access{ld->buffer_var.get(), RangeOf(ld->index, leaf.loops)});
    }
    int dst_bytes = elem_bytes_.count(dst) ? elem_bytes_.at(dst) : 4;
    switch (leaf.kind) {
      case LeafInfo::Kind::kCopy: {
        const VarNode* src = loads[0]->buffer_var.get();
        bool dst_chip = IsOnChip(dst);
        bool src_chip = IsOnChip(src);
        insn.bytes = iter * dst_bytes;
        insn.work = iter;
        if (!dst_chip && src_chip) {
          insn.op = VdlaInsn::Op::kDmaStore;
          insn.unit = VdlaUnit::kStore;
        } else if (dst_chip && !src_chip) {
          insn.op = VdlaInsn::Op::kDmaLoad;
          insn.unit = VdlaUnit::kLoad;
        } else {
          insn.op = VdlaInsn::Op::kAlu;  // on-chip move
          insn.unit = VdlaUnit::kCompute;
        }
        break;
      }
      case LeafInfo::Kind::kFill:
        insn.op = VdlaInsn::Op::kFill;
        insn.unit = VdlaUnit::kCompute;
        insn.work = iter;
        break;
      default:
        insn.op = VdlaInsn::Op::kAlu;
        insn.unit = VdlaUnit::kCompute;
        insn.work = iter;
        break;
    }
    insns_.push_back(std::move(insn));
  }

  void EmitIntrinsicNest(const LeafInfo& leaf, size_t depth) {
    if (depth == leaf.loops.size()) {
      EmitIntrinsic(leaf.call, 1);
      return;
    }
    const ForNode* f = leaf.loops[depth];
    int64_t min_v = EvalInt(f->min, env_);
    int64_t extent = EvalInt(f->extent, env_);
    for (int64_t v = min_v; v < min_v + extent; ++v) {
      env_[f->loop_var.get()] = v;
      EmitIntrinsicNest(leaf, depth + 1);
    }
    env_.erase(f->loop_var.get());
  }

  // Tensorized calls: parse the lowering ABI (buffers = (var, offset, strides...)).
  void EmitIntrinsic(const CallNode* call, int64_t outer_iter) {
    int num_buffers;
    VdlaInsn::Op op;
    if (call->name == kFillZeroIntrin) {
      num_buffers = 1;
      op = VdlaInsn::Op::kFill;
    } else if (call->name == kDmaCopyIntrin) {
      num_buffers = 2;
      op = VdlaInsn::Op::kDmaLoad;
    } else {
      num_buffers = 3;
      op = VdlaInsn::Op::kGemm;
    }
    int total = static_cast<int>(call->args.size());
    int nt = (total - 2 * num_buffers) / (num_buffers + 1);
    CHECK_EQ(num_buffers * (2 + nt) + nt, total) << "bad intrinsic arity " << call->name;
    std::vector<int64_t> extents;
    for (int d = 0; d < nt; ++d) {
      extents.push_back(
          EvalInt(call->args[static_cast<size_t>(num_buffers * (2 + nt) + d)], env_));
    }
    int64_t points = 1;
    for (int64_t e : extents) {
      points *= e;
    }
    RawInsn insn;
    insn.op = op;
    insn.unit = op == VdlaInsn::Op::kDmaLoad ? VdlaUnit::kLoad : VdlaUnit::kCompute;
    insn.work = points;
    int pos = 0;
    for (int b = 0; b < num_buffers; ++b) {
      CHECK(call->args[static_cast<size_t>(pos)]->kind == ExprKind::kVar);
      const VarNode* var =
          static_cast<const VarNode*>(call->args[static_cast<size_t>(pos)].get());
      ++pos;
      int64_t base = EvalInt(call->args[static_cast<size_t>(pos)], env_);
      ++pos;
      int64_t span = 0;
      for (int d = 0; d < nt; ++d) {
        int64_t stride = EvalInt(call->args[static_cast<size_t>(pos + d)], env_);
        span += std::abs(stride) * (extents[static_cast<size_t>(d)] - 1);
      }
      pos += nt;
      Interval range{base, base + span};
      if (b == 0) {
        insn.writes.push_back(Access{var, range});
      } else {
        insn.reads.push_back(Access{var, range});
      }
      if (b > 0 && op == VdlaInsn::Op::kDmaLoad) {
        int eb = elem_bytes_.count(var) ? elem_bytes_.at(var) : 4;
        insn.bytes = (span + 1) * eb;
      }
    }
    (void)outer_iter;
    insns_.push_back(std::move(insn));
  }

  std::unordered_map<const VarNode*, int64_t> env_;
  std::unordered_map<const VarNode*, std::string> scopes_;
  std::unordered_map<const VarNode*, int> elem_bytes_;
  std::vector<RawInsn> insns_;
};

// Derives cross-unit dependence edges (RAW/WAR/WAW on overlapping intervals) and builds
// the final annotated stream: push right after the source, pop right before the sink.
VdlaProgram BuildAnnotatedStream(const std::vector<RawInsn>& raw) {
  struct Edge {
    size_t src;
    size_t dst;
  };
  std::vector<Edge> edges;
  // Track last writers and readers per buffer (small lists; intervals rarely pile up).
  struct Record {
    size_t insn;
    VdlaUnit unit;
    Interval range;
  };
  std::unordered_map<const VarNode*, std::vector<Record>> writers, readers;

  auto add_edge = [&](size_t src, size_t dst) {
    if (raw[src].unit == raw[dst].unit) {
      return;  // in-order within a unit
    }
    edges.push_back(Edge{src, dst});
  };

  for (size_t i = 0; i < raw.size(); ++i) {
    const RawInsn& insn = raw[i];
    // RAW: reads depend on the latest overlapping writer.
    for (const Access& r : insn.reads) {
      auto it = writers.find(r.buffer);
      if (it == writers.end()) {
        continue;
      }
      // latest overlapping writer only
      for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
        if (rit->range.Overlaps(r.range)) {
          add_edge(rit->insn, i);
          break;
        }
      }
    }
    for (const Access& w : insn.writes) {
      // WAR: wait for overlapping readers since the last write.
      auto it = readers.find(w.buffer);
      if (it != readers.end()) {
        for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
          if (rit->range.Overlaps(w.range)) {
            add_edge(rit->insn, i);
            break;
          }
        }
      }
      // WAW
      auto wt = writers.find(w.buffer);
      if (wt != writers.end()) {
        for (auto rit = wt->second.rbegin(); rit != wt->second.rend(); ++rit) {
          if (rit->range.Overlaps(w.range)) {
            add_edge(rit->insn, i);
            break;
          }
        }
      }
    }
    // Record accesses (cap history to bound memory).
    for (const Access& r : insn.reads) {
      auto& v = readers[r.buffer];
      v.push_back(Record{i, insn.unit, r.range});
      if (v.size() > 16) {
        v.erase(v.begin());
      }
    }
    for (const Access& w : insn.writes) {
      auto& v = writers[w.buffer];
      v.push_back(Record{i, insn.unit, w.range});
      if (v.size() > 16) {
        v.erase(v.begin());
      }
      // A write invalidates older reader records for WAR bookkeeping economy.
    }
  }

  // Deduplicate: per destination keep only the latest source per source-unit.
  std::map<std::pair<size_t, VdlaUnit>, size_t> latest;  // (dst, src unit) -> src
  for (const Edge& e : edges) {
    auto key = std::make_pair(e.dst, raw[e.src].unit);
    auto it = latest.find(key);
    if (it == latest.end() || it->second < e.src) {
      latest[key] = e.src;
    }
  }
  std::unordered_map<size_t, std::vector<size_t>> pushes_after;  // src -> dsts
  std::unordered_map<size_t, std::vector<size_t>> pops_before;   // dst -> srcs
  for (const auto& [key, src] : latest) {
    pushes_after[src].push_back(key.first);
    pops_before[key.first].push_back(src);
  }

  VdlaProgram prog;
  prog.reserve(raw.size() * 2);
  for (size_t i = 0; i < raw.size(); ++i) {
    const RawInsn& insn = raw[i];
    auto pit = pops_before.find(i);
    if (pit != pops_before.end()) {
      for (size_t src : pit->second) {
        VdlaInsn pop;
        pop.op = VdlaInsn::Op::kPopDep;
        pop.unit = insn.unit;
        pop.partner = raw[src].unit;
        prog.push_back(pop);
      }
    }
    VdlaInsn out;
    out.op = insn.op;
    out.unit = insn.unit;
    out.bytes = insn.bytes;
    out.work = insn.work;
    prog.push_back(out);
    auto sit = pushes_after.find(i);
    if (sit != pushes_after.end()) {
      for (size_t dst : sit->second) {
        VdlaInsn push;
        push.op = VdlaInsn::Op::kPushDep;
        push.unit = insn.unit;
        push.partner = raw[dst].unit;
        prog.push_back(push);
      }
    }
  }
  return prog;
}

}  // namespace

Stmt InsertDaeSync(const Stmt& s) {
  // Token insertion is performed mechanically from buffer dependences during stream
  // construction (BuildVdlaProgram); at the IR level we only mark the intent.
  return s;
}

VdlaProgram BuildVdlaProgram(const LoweredFunc& func, const Target& target) {
  (void)target;
  // Virtual threads are interleaved into a single stream first (Figure 8).
  LoweredFunc f = func;
  f.body = InjectVirtualThreads(f.body);
  VdlaEmitter emitter(f);
  std::vector<RawInsn> raw = emitter.Emit(f.body);
  return BuildAnnotatedStream(raw);
}

VdlaRunStats SimulateVdla(const VdlaProgram& program, const Target& target,
                          bool pipelined) {
  VdlaRunStats stats;
  stats.instructions = static_cast<int64_t>(program.size());
  double dram_bytes_per_cycle = target.dram_gbps / target.clock_ghz;  // GB/s / GHz = B/cyc
  double gemm_macs_per_cycle =
      static_cast<double>(target.gemm_rows) * static_cast<double>(target.gemm_cols);

  double cursor[3] = {0, 0, 0};  // load, compute, store
  double busy[3] = {0, 0, 0};
  double serial_cursor = 0;  // for the monolithic (non-pipelined) mode
  // Token FIFOs keyed by (src, dst) unit pair.
  std::map<std::pair<int, int>, std::deque<double>> queues;

  auto unit_of = [](VdlaUnit u) { return static_cast<int>(u); };

  for (const VdlaInsn& insn : program) {
    int u = unit_of(insn.unit);
    switch (insn.op) {
      case VdlaInsn::Op::kPushDep: {
        queues[{u, unit_of(insn.partner)}].push_back(pipelined ? cursor[u]
                                                               : serial_cursor);
        break;
      }
      case VdlaInsn::Op::kPopDep: {
        auto& q = queues[{unit_of(insn.partner), u}];
        CHECK(!q.empty()) << "VDLA token deadlock: pop with empty queue";
        double t = q.front();
        q.pop_front();
        if (pipelined) {
          cursor[u] = std::max(cursor[u], t);
        }
        break;
      }
      default: {
        double dur = 0;
        switch (insn.op) {
          case VdlaInsn::Op::kDmaLoad:
          case VdlaInsn::Op::kDmaStore:
            dur = target.dram_latency_cycles +
                  static_cast<double>(insn.bytes) / dram_bytes_per_cycle;
            stats.dram_bytes += static_cast<double>(insn.bytes);
            break;
          case VdlaInsn::Op::kGemm:
            dur = std::max(1.0, static_cast<double>(insn.work) / gemm_macs_per_cycle);
            stats.macs += static_cast<double>(insn.work);
            break;
          case VdlaInsn::Op::kAlu:
          case VdlaInsn::Op::kFill:
            dur = std::max(1.0, static_cast<double>(insn.work) / 16.0);
            break;
          default:
            break;
        }
        if (pipelined) {
          busy[u] += dur;
          cursor[u] += dur;
        } else {
          serial_cursor += dur;
          busy[u] += dur;
        }
        break;
      }
    }
  }
  if (pipelined) {
    stats.cycles = std::max({cursor[0], cursor[1], cursor[2]});
  } else {
    stats.cycles = serial_cursor;
  }
  stats.load_busy_cycles = busy[0];
  stats.compute_busy_cycles = busy[1];
  stats.store_busy_cycles = busy[2];
  return stats;
}

VdlaRunStats RunOnVdla(const LoweredFunc& func, const Target& target, bool pipelined) {
  VdlaProgram prog = BuildVdlaProgram(func, target);
  return SimulateVdla(prog, target, pipelined);
}

}  // namespace tvmcpp
