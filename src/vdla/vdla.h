// VDLA: the Vanilla Deep Learning Accelerator of Section 6.4, as a cycle-level
// decoupled access-execute (DAE) simulator.
//
// Pipeline (Figure 20): a LOAD unit (DRAM -> on-chip SRAM DMA), a COMPUTE unit (16x16
// GEMM core + vector ALU), and a STORE unit, connected by dependence-token FIFOs
// (LOAD->EXE, EXE->LOAD, EXE->STORE, STORE->EXE). Correct overlap is recovered solely
// from the explicit push/pop synchronization instructions the compiler inserts
// (Figures 8/9); the simulator has no oracle knowledge.
//
// Code generation consumes the lowered loop program: leaf nests are classified into DMA
// copies (cache-stage copy loops), GEMM macro-instructions (tensorized calls), and ALU
// nests; virtual threads are lowered by InsertDaeSync + InjectVirtualThreads into a
// single annotated instruction stream, exactly per Figure 8.
#ifndef SRC_VDLA_VDLA_H_
#define SRC_VDLA_VDLA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/lower/lower.h"
#include "src/runtime/target.h"

namespace tvmcpp {

enum class VdlaUnit : uint8_t { kLoad, kCompute, kStore };

struct VdlaInsn {
  enum class Op : uint8_t {
    kDmaLoad,   // DRAM -> SRAM
    kDmaStore,  // SRAM -> DRAM
    kGemm,      // dense matrix block on the GEMM core
    kAlu,       // vector ALU nest
    kFill,      // accumulator reset
    kPushDep,   // enqueue a dependence token to `partner`
    kPopDep,    // block until a token from `partner` is available
  };
  Op op;
  VdlaUnit unit;
  VdlaUnit partner = VdlaUnit::kLoad;  // for push/pop
  int64_t bytes = 0;                   // DMA payload
  int64_t work = 0;                    // MACs (gemm) or elements (alu/fill)
};

// The instruction stream of one VDLA invocation.
using VdlaProgram = std::vector<VdlaInsn>;

// Inserts Figure 8's dependence push/pop operations into a lowered program: every
// load-class leaf nest is bracketed with pop(ex->ld)/push(ld->ex) and every compute-class
// nest with pop(ld->ex)/push(ex->ld); each virtual thread receives an initial credit.
// Returns the annotated statement (still containing vthread loops).
Stmt InsertDaeSync(const Stmt& s);

// Generates the final single instruction stream: InsertDaeSync + virtual-thread
// interleaving + leaf-nest classification.
VdlaProgram BuildVdlaProgram(const LoweredFunc& func, const Target& target);

struct VdlaRunStats {
  double cycles = 0;
  double load_busy_cycles = 0;
  double compute_busy_cycles = 0;
  double store_busy_cycles = 0;
  double macs = 0;
  double dram_bytes = 0;
  int64_t instructions = 0;

  double ComputeUtilization() const {
    return cycles > 0 ? compute_busy_cycles / cycles : 0;
  }
  double Seconds(const Target& t) const { return cycles / (t.clock_ghz * 1e9); }
  double GopsPerSecond(const Target& t) const {
    double s = Seconds(t);
    return s > 0 ? 2.0 * macs / s * 1e-9 : 0;
  }
  double OperationalIntensity() const {
    return dram_bytes > 0 ? 2.0 * macs / dram_bytes : 0;
  }
};

// Executes the instruction stream on the DAE pipeline model. When `pipelined` is false
// the accelerator behaves as Figure 9's monolithic design (each instruction waits for
// the previous one).
VdlaRunStats SimulateVdla(const VdlaProgram& program, const Target& target,
                          bool pipelined = true);

// Convenience: lower-to-stream + simulate.
VdlaRunStats RunOnVdla(const LoweredFunc& func, const Target& target,
                       bool pipelined = true);

}  // namespace tvmcpp

#endif  // SRC_VDLA_VDLA_H_
