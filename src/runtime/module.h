// Deployable modules (Section 2): a bag of lowered functions that can be executed on the
// reference interpreter and costed on a target machine model.
#ifndef SRC_RUNTIME_MODULE_H_
#define SRC_RUNTIME_MODULE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/lower/lower.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"

namespace tvmcpp {

class Module {
 public:
  explicit Module(Target target) : target_(std::move(target)) {}

  void Add(LoweredFunc func) { funcs_[func.name] = std::move(func); }

  bool Has(const std::string& name) const { return funcs_.count(name) > 0; }

  const LoweredFunc& Get(const std::string& name) const {
    auto it = funcs_.find(name);
    CHECK(it != funcs_.end()) << "module has no function " << name;
    return it->second;
  }

  const Target& target() const { return target_; }

  // Executes a function on host buffers via the reference interpreter.
  void Run(const std::string& name, const std::vector<NDArray>& args) const {
    const LoweredFunc& f = Get(name);
    std::vector<BufferBinding> bindings;
    bindings.reserve(args.size());
    for (const NDArray& a : args) {
      bindings.push_back(a.Binding());
    }
    RunLowered(f, bindings);
  }

  std::vector<std::string> FunctionNames() const {
    std::vector<std::string> names;
    names.reserve(funcs_.size());
    for (const auto& [name, f] : funcs_) {
      names.push_back(name);
    }
    return names;
  }

 private:
  Target target_;
  std::unordered_map<std::string, LoweredFunc> funcs_;
};

}  // namespace tvmcpp

#endif  // SRC_RUNTIME_MODULE_H_
