// Simulated RPC-based distributed device pool (Section 5.4).
//
// The paper's tracker + device cluster is modeled as a pool of device workers, each
// owning one simulated device of a given target. Clients submit measurement requests
// (a compiled function + run config); workers execute them with a caller-provided
// measure function and per-request queueing/transfer latency, returning profiled costs.
// The same infrastructure serves both single-operator tuning and end-to-end inference,
// as in the paper.
#ifndef SRC_RUNTIME_RPC_H_
#define SRC_RUNTIME_RPC_H_

#include <functional>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/runtime/target.h"
#include "src/runtime/threadpool.h"

namespace tvmcpp {

// A measurement job: opaque payload evaluated by the device-side measure function.
struct MeasureRequest {
  std::string func_name;
  const void* payload = nullptr;  // tuner-defined (e.g. a schedule config)
  int repeat = 3;
};

struct MeasureResult {
  double seconds = 0;    // measured (simulated) runtime
  bool ok = true;
  std::string error;
  double queue_seconds = 0;  // RPC + queueing overhead incurred
};

// One device host in the cluster.
class DeviceWorker {
 public:
  using MeasureFn = std::function<MeasureResult(const MeasureRequest&)>;

  DeviceWorker(Target target, MeasureFn fn, double rpc_overhead_s = 1e-4)
      : target_(std::move(target)), fn_(std::move(fn)), rpc_overhead_s_(rpc_overhead_s) {}

  MeasureResult Execute(const MeasureRequest& req) const {
    MeasureResult r = fn_(req);
    r.queue_seconds += rpc_overhead_s_;
    return r;
  }

  const Target& target() const { return target_; }

 private:
  Target target_;
  MeasureFn fn_;
  double rpc_overhead_s_;
};

// Tracker + pool: dispatches requests to workers of the requested target type.
class DevicePool {
 public:
  explicit DevicePool(int num_workers) : pool_(num_workers) {}

  void Register(DeviceWorker worker) { workers_.push_back(std::move(worker)); }

  // Submits a batch; returns results in order. Requests run concurrently across the pool
  // (fine-grained sharing among jobs, as in the paper).
  std::vector<MeasureResult> MeasureBatch(const std::vector<MeasureRequest>& requests,
                                          const std::string& target_name) {
    std::vector<const DeviceWorker*> eligible;
    for (const DeviceWorker& w : workers_) {
      if (w.target().name == target_name) {
        eligible.push_back(&w);
      }
    }
    if (eligible.empty()) {
      std::vector<MeasureResult> results(requests.size());
      for (MeasureResult& r : results) {
        r.ok = false;
        r.error = "no device of target " + target_name;
      }
      return results;
    }
    std::vector<std::future<MeasureResult>> futures;
    futures.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      const DeviceWorker* w = eligible[i % eligible.size()];
      const MeasureRequest& req = requests[i];
      futures.push_back(pool_.Submit([w, req] { return w->Execute(req); }));
    }
    std::vector<MeasureResult> results;
    results.reserve(requests.size());
    for (auto& f : futures) {
      results.push_back(f.get());
    }
    return results;
  }

 private:
  ThreadPool pool_;
  std::vector<DeviceWorker> workers_;
};

}  // namespace tvmcpp

#endif  // SRC_RUNTIME_RPC_H_
