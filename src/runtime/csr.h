// CSR sparse matrices over NDArray storage (the pruned-model workload side).
//
// A CSRMatrix carves one backing byte buffer into the three CSR arrays — indptr,
// indices, data — as ShareStorage views (4-byte-aligned offsets; data last so any
// element width fits). Column indices are ascending within each row, so an SpMM
// that walks a row accumulates nonzero terms in the same k-ascending order as the
// dense reference — the property the bitwise sparse-vs-dense differential in
// tests/test_sparse.cc rests on.
//
// indices/data carry `max(1, max_row_nnz)` zero entries of tail padding past nnz
// so the ELL-bounded SpMM compute (src/topi/sparse.h) may read position
// `indptr[row] + p` for every p < max_row_nnz unguarded: out-of-row positions
// land in the padding (value 0, column 0) and are selected away by the row-length
// guard, but never read out of bounds — even when an engine evaluates both
// arms of the guard (eager select, vector lanes).
#ifndef SRC_RUNTIME_CSR_H_
#define SRC_RUNTIME_CSR_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/runtime/ndarray.h"
#include "src/support/random.h"

namespace tvmcpp {
namespace runtime {

// Padded allocation length of the indices/data arrays (see file comment).
inline int64_t CsrAllocLen(int64_t nnz, int64_t max_row_nnz) {
  return nnz + std::max<int64_t>(max_row_nnz, 1);
}

namespace csr_detail {

// Element test/copy over the interpreter's widened storage (f16 stored as f32,
// sub-byte ints as i8); `i` indexes elements of `a`'s own view.
inline bool IsZeroAt(const NDArray& a, int64_t i) {
  if (a.dtype().is_float()) {
    return a.Data<float>()[i] == 0.0f;  // true for -0.0 too: -0 entries drop
  }
  if (InterpElementBytes(a.dtype()) == 1) {
    return a.Data<int8_t>()[i] == 0;
  }
  return a.Data<int32_t>()[i] == 0;
}

inline void CopyElem(NDArray* dst, int64_t di, const NDArray& src, int64_t si) {
  int64_t b = InterpElementBytes(src.dtype());
  std::memcpy(dst->Data<char>() + di * b, src.Data<char>() + si * b,
              static_cast<size_t>(b));
}

}  // namespace csr_detail

struct CSRMatrix {
  int64_t rows = 0, cols = 0;
  int64_t nnz = 0;          // stored (nonzero) entries
  int64_t max_row_nnz = 0;  // densest row: the ELL bound of the te compute
  DataType dtype = DataType::Float32();
  NDArray indptr;   // int32 [rows + 1], indptr[0] == 0, indptr[rows] == nnz
  NDArray indices;  // int32 [CsrAllocLen(nnz, max_row_nnz)], ascending per row
  NDArray data;     // dtype [CsrAllocLen(nnz, max_row_nnz)], zero past nnz

  int64_t alloc_len() const { return CsrAllocLen(nnz, max_row_nnz); }

  // Compresses a dense [rows, cols] matrix, dropping exact zeros. All three views
  // share one freshly-allocated backing buffer.
  static CSRMatrix FromDense(const NDArray& dense) {
    CHECK_EQ(dense.shape().size(), 2u) << "CSRMatrix::FromDense wants a 2-D matrix";
    CSRMatrix m;
    m.rows = dense.shape()[0];
    m.cols = dense.shape()[1];
    m.dtype = dense.dtype();
    for (int64_t r = 0; r < m.rows; ++r) {
      int64_t row_nnz = 0;
      for (int64_t c = 0; c < m.cols; ++c) {
        row_nnz += csr_detail::IsZeroAt(dense, r * m.cols + c) ? 0 : 1;
      }
      m.nnz += row_nnz;
      m.max_row_nnz = std::max(m.max_row_nnz, row_nnz);
    }
    m.AllocateViews();
    int32_t* ip = m.indptr.Data<int32_t>();
    int32_t* ix = m.indices.Data<int32_t>();
    int64_t at = 0;
    ip[0] = 0;
    for (int64_t r = 0; r < m.rows; ++r) {
      for (int64_t c = 0; c < m.cols; ++c) {
        if (!csr_detail::IsZeroAt(dense, r * m.cols + c)) {
          ix[at] = static_cast<int32_t>(c);
          csr_detail::CopyElem(&m.data, at, dense, r * m.cols + c);
          ++at;
        }
      }
      ip[r + 1] = static_cast<int32_t>(at);
    }
    return m;
  }

  // Materializes the zeros back into a dense [rows, cols] matrix.
  NDArray ToDense() const {
    NDArray out = NDArray::Empty({rows, cols}, dtype);
    const int32_t* ip = indptr.Data<int32_t>();
    const int32_t* ix = indices.Data<int32_t>();
    NDArray* mut = const_cast<NDArray*>(&out);
    for (int64_t r = 0; r < rows; ++r) {
      for (int32_t p = ip[r]; p < ip[r + 1]; ++p) {
        csr_detail::CopyElem(mut, r * cols + ix[p], data, p);
      }
    }
    return out;
  }

  // Splits [0, rows) into `nblocks` contiguous row blocks with near-equal nnz
  // (returned as nblocks+1 block-start rows). This is the load-balancing side of
  // the row-blocked SpMM kernel: a kParallel loop over blocks does equal work per
  // worker even when nonzeros cluster in a few rows, unlike an equal-rows split.
  std::vector<int32_t> NnzBalancedRowBlocks(int nblocks) const {
    CHECK_GE(nblocks, 1);
    const int32_t* ip = indptr.Data<int32_t>();
    std::vector<int32_t> starts(static_cast<size_t>(nblocks) + 1, 0);
    int64_t r = 0;
    for (int b = 1; b < nblocks; ++b) {
      // First row where the nnz prefix reaches b/nblocks of the total (rows with
      // no remaining nnz budget still advance, so starts stay non-decreasing and
      // every row lands in exactly one block).
      int64_t want = (nnz * b + nblocks - 1) / nblocks;
      while (r < rows && ip[r] < want) {
        ++r;
      }
      starts[static_cast<size_t>(b)] = static_cast<int32_t>(r);
    }
    starts[static_cast<size_t>(nblocks)] = static_cast<int32_t>(rows);
    return starts;
  }

 private:
  void AllocateViews() {
    int64_t alloc = alloc_len();
    int64_t indptr_bytes = (rows + 1) * 4;
    int64_t indices_bytes = alloc * 4;
    int64_t data_bytes = alloc * InterpElementBytes(dtype);
    NDArray storage =
        NDArray::Empty({indptr_bytes + indices_bytes + data_bytes}, DataType::Int8());
    indptr = NDArray::ShareStorage(storage, {rows + 1}, DataType::Int32(), 0);
    indices = NDArray::ShareStorage(storage, {alloc}, DataType::Int32(), indptr_bytes);
    data = NDArray::ShareStorage(storage, {alloc}, dtype,
                                 indptr_bytes + indices_bytes);
  }
};

// Zeros each element of `dense` independently with probability `sparsity`
// (deterministic in `seed`). The sparse builders and their dense bitwise
// references share pruned weights through this: prune first, then either keep
// the zeros (dense reference) or compress them away (CSRMatrix::FromDense).
inline void SparsifyDense(NDArray* dense, double sparsity, uint64_t seed) {
  Rng rng(seed);
  int64_t n = dense->NumElements();
  int64_t b = InterpElementBytes(dense->dtype());
  for (int64_t i = 0; i < n; ++i) {
    if (rng.UniformReal() < sparsity) {
      std::memset(dense->Data<char>() + i * b, 0, static_cast<size_t>(b));
    }
  }
}

// A random pruned matrix in CSR form (valid indptr/indices by construction) —
// used where real weight data is not at hand, e.g. the auto-tuner's measurement
// buffers for sparse_dense workloads.
inline CSRMatrix RandomCsr(int64_t rows, int64_t cols, double sparsity, DataType dtype,
                           uint64_t seed) {
  NDArray dense = NDArray::Random({rows, cols}, dtype, seed);
  SparsifyDense(&dense, sparsity, seed * 2654435761 + 1);
  return CSRMatrix::FromDense(dense);
}

}  // namespace runtime
}  // namespace tvmcpp

#endif  // SRC_RUNTIME_CSR_H_
