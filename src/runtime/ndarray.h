// NDArray: the runtime tensor container (the paper's tvm.nd array).
//
// Data is stored widened for interpretation: float16 as float32, sub-byte ints as int8
// (see src/interp). Machine models account for true on-device byte widths separately.
#ifndef SRC_RUNTIME_NDARRAY_H_
#define SRC_RUNTIME_NDARRAY_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/dtype.h"
#include "src/support/random.h"

namespace tvmcpp {

class NDArray {
 public:
  NDArray() = default;

  static NDArray Empty(std::vector<int64_t> shape, DataType dtype = DataType::Float32()) {
    NDArray a;
    a.shape_ = std::move(shape);
    a.dtype_ = dtype;
    int64_t n = a.NumElements();
    a.data_ = std::make_shared<std::vector<char>>(
        static_cast<size_t>(n * InterpElementBytes(dtype)), 0);
    return a;
  }

  // Uniform values in [-1, 1) (float) or [0, 2^min(bits,7)) (int), deterministic by seed.
  static NDArray Random(std::vector<int64_t> shape, DataType dtype, uint64_t seed) {
    NDArray a = Empty(std::move(shape), dtype);
    Rng rng(seed);
    int64_t n = a.NumElements();
    if (dtype.is_float()) {
      float* p = a.Data<float>();
      for (int64_t i = 0; i < n; ++i) {
        p[i] = static_cast<float>(rng.UniformReal() * 2.0 - 1.0);
      }
    } else if (InterpElementBytes(dtype) == 1) {
      int8_t* p = a.Data<int8_t>();
      int64_t hi = int64_t{1} << std::min(dtype.bits(), 7);
      for (int64_t i = 0; i < n; ++i) {
        p[i] = static_cast<int8_t>(rng.Uniform(static_cast<uint64_t>(hi)));
      }
    } else {
      int32_t* p = a.Data<int32_t>();
      for (int64_t i = 0; i < n; ++i) {
        p[i] = static_cast<int32_t>(rng.Uniform(100));
      }
    }
    return a;
  }

  const std::vector<int64_t>& shape() const { return shape_; }
  DataType dtype() const { return dtype_; }
  bool defined() const { return data_ != nullptr; }

  int64_t NumElements() const {
    int64_t n = 1;
    for (int64_t d : shape_) {
      n *= d;
    }
    return n;
  }

  template <typename T>
  T* Data() {
    return reinterpret_cast<T*>(data_->data() + byte_offset_);
  }
  template <typename T>
  const T* Data() const {
    return reinterpret_cast<const T*>(data_->data() + byte_offset_);
  }

  BufferBinding Binding() const {
    return BufferBinding{
        data_ ? const_cast<char*>(data_->data()) + byte_offset_ : nullptr, dtype_,
        NumElements()};
  }

  // Creates an array that aliases `storage`'s bytes under its own shape/dtype,
  // starting `byte_offset` bytes into the *viewed* extent of `storage` (offsets
  // compose, so a view of a view works). Used by the graph executor to share one
  // memory-plan storage token between several intermediate tensors whose live ranges
  // do not overlap, and by the serving layer to hand each coalesced request a
  // zero-copy slice of a batched output tensor.
  static NDArray ShareStorage(const NDArray& storage, std::vector<int64_t> shape,
                              DataType dtype, int64_t byte_offset = 0) {
    NDArray a;
    a.shape_ = std::move(shape);
    a.dtype_ = dtype;
    a.data_ = storage.data_;
    a.byte_offset_ = storage.byte_offset_ + byte_offset;
    CHECK_LE(a.byte_offset_ + a.NumElements() * InterpElementBytes(dtype),
             static_cast<int64_t>(a.data_->size()))
        << "storage token too small for aliased tensor";
    return a;
  }

  // True when both arrays alias the same underlying storage.
  bool SameStorageAs(const NDArray& other) const { return data_ == other.data_; }

  // Bytes this tensor logically occupies. May be smaller than the underlying storage
  // for ShareStorage views, so copies must use this rather than the storage size.
  int64_t ByteSize() const { return NumElements() * InterpElementBytes(dtype_); }

  // Deep copy (always into fresh zero-offset storage).
  NDArray Copy() const {
    NDArray a;
    a.shape_ = shape_;
    a.dtype_ = dtype_;
    a.data_ = std::make_shared<std::vector<char>>(
        data_->begin() + static_cast<ptrdiff_t>(byte_offset_),
        data_->begin() + static_cast<ptrdiff_t>(byte_offset_ + ByteSize()));
    return a;
  }

  void CopyFrom(const NDArray& other) {
    CHECK_EQ(NumElements(), other.NumElements());
    CHECK(dtype_ == other.dtype_) << "dtype mismatch in CopyFrom";
    std::memcpy(Data<char>(), other.Data<char>(), static_cast<size_t>(ByteSize()));
  }

 private:
  std::shared_ptr<std::vector<char>> data_;
  std::vector<int64_t> shape_;
  DataType dtype_;
  int64_t byte_offset_ = 0;  // view offset into data_ (ShareStorage slices)
};

}  // namespace tvmcpp

#endif  // SRC_RUNTIME_NDARRAY_H_
