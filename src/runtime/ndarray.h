// NDArray: the runtime tensor container (the paper's tvm.nd array).
//
// Data is stored widened for interpretation: float16 as float32, sub-byte ints as int8
// (see src/interp). Machine models account for true on-device byte widths separately.
#ifndef SRC_RUNTIME_NDARRAY_H_
#define SRC_RUNTIME_NDARRAY_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/dtype.h"
#include "src/support/random.h"

namespace tvmcpp {

// Backing bytes of an NDArray. The default form owns a heap vector; the
// external form aliases memory owned elsewhere (a shared-memory arena slab)
// and keeps that memory alive through an opaque keeper handle.
class NDStorage {
 public:
  // Owned heap storage, zero-initialized.
  explicit NDStorage(size_t size) : owned_(size, 0), ptr_(owned_.data()), size_(size) {}
  // External storage: `keeper` must keep `ptr` valid for this object's lifetime.
  NDStorage(char* ptr, size_t size, std::shared_ptr<void> keeper)
      : ptr_(ptr), size_(size), keeper_(std::move(keeper)), external_(true) {}
  char* data() { return ptr_; }
  const char* data() const { return ptr_; }
  size_t size() const { return size_; }
  bool external() const { return external_; }

 private:
  std::vector<char> owned_;  // empty for external storage
  char* ptr_ = nullptr;
  size_t size_ = 0;
  std::shared_ptr<void> keeper_;  // keeps external memory alive; null when owned
  bool external_ = false;
};

// Pluggable allocation pool consulted by NDArray::Empty. Implementations must
// return zero-filled storage (matching Empty's heap semantics) or null to
// decline the request, in which case the caller falls back to the heap.
class StoragePool {
 public:
  virtual ~StoragePool() = default;
  virtual std::shared_ptr<NDStorage> Allocate(size_t bytes) = 0;
};

// Installs `pool` as the calling thread's allocation pool for the scope's
// lifetime, so every NDArray::Empty on this thread (and thus Random, executor
// buffer allocation, ...) draws from it. Nests: the previous pool is restored.
class ScopedStoragePool {
 public:
  explicit ScopedStoragePool(StoragePool* pool) : saved_(Slot()) { Slot() = pool; }
  ~ScopedStoragePool() { Slot() = saved_; }
  ScopedStoragePool(const ScopedStoragePool&) = delete;
  ScopedStoragePool& operator=(const ScopedStoragePool&) = delete;

  static StoragePool*& Slot() {
    thread_local StoragePool* pool = nullptr;
    return pool;
  }

 private:
  StoragePool* saved_;
};

class NDArray {
 public:
  NDArray() = default;

  static NDArray Empty(std::vector<int64_t> shape, DataType dtype = DataType::Float32()) {
    NDArray a;
    a.shape_ = std::move(shape);
    a.dtype_ = dtype;
    size_t bytes = static_cast<size_t>(a.NumElements() * InterpElementBytes(dtype));
    if (StoragePool* pool = ScopedStoragePool::Slot()) {
      a.data_ = pool->Allocate(bytes);
    }
    if (a.data_ == nullptr) {
      a.data_ = std::make_shared<NDStorage>(bytes);
    }
    return a;
  }

  // Wraps externally owned memory (e.g. a shared-memory arena slab) as a tensor
  // without copying. `keeper` must keep `ptr` valid for the array's lifetime;
  // the bytes at `ptr` must span the tensor's ByteSize().
  static NDArray FromExternal(void* ptr, std::vector<int64_t> shape, DataType dtype,
                              std::shared_ptr<void> keeper) {
    NDArray a;
    a.shape_ = std::move(shape);
    a.dtype_ = dtype;
    size_t bytes = static_cast<size_t>(a.NumElements() * InterpElementBytes(dtype));
    a.data_ = std::make_shared<NDStorage>(static_cast<char*>(ptr), bytes, std::move(keeper));
    return a;
  }

  // Uniform values in [-1, 1) (float) or [0, 2^min(bits,7)) (int), deterministic by seed.
  static NDArray Random(std::vector<int64_t> shape, DataType dtype, uint64_t seed) {
    NDArray a = Empty(std::move(shape), dtype);
    Rng rng(seed);
    int64_t n = a.NumElements();
    if (dtype.is_float()) {
      float* p = a.Data<float>();
      for (int64_t i = 0; i < n; ++i) {
        p[i] = static_cast<float>(rng.UniformReal() * 2.0 - 1.0);
      }
    } else if (InterpElementBytes(dtype) == 1) {
      int8_t* p = a.Data<int8_t>();
      int64_t hi = int64_t{1} << std::min(dtype.bits(), 7);
      for (int64_t i = 0; i < n; ++i) {
        p[i] = static_cast<int8_t>(rng.Uniform(static_cast<uint64_t>(hi)));
      }
    } else {
      int32_t* p = a.Data<int32_t>();
      for (int64_t i = 0; i < n; ++i) {
        p[i] = static_cast<int32_t>(rng.Uniform(100));
      }
    }
    return a;
  }

  const std::vector<int64_t>& shape() const { return shape_; }
  DataType dtype() const { return dtype_; }
  bool defined() const { return data_ != nullptr; }

  int64_t NumElements() const {
    int64_t n = 1;
    for (int64_t d : shape_) {
      n *= d;
    }
    return n;
  }

  template <typename T>
  T* Data() {
    return reinterpret_cast<T*>(data_->data() + byte_offset_);
  }
  template <typename T>
  const T* Data() const {
    return reinterpret_cast<const T*>(data_->data() + byte_offset_);
  }

  BufferBinding Binding() const {
    return BufferBinding{
        data_ ? const_cast<char*>(data_->data()) + byte_offset_ : nullptr, dtype_,
        NumElements()};
  }

  // Creates an array that aliases `storage`'s bytes under its own shape/dtype,
  // starting `byte_offset` bytes into the *viewed* extent of `storage` (offsets
  // compose, so a view of a view works). Used by the graph executor to share one
  // memory-plan storage token between several intermediate tensors whose live ranges
  // do not overlap, and by the serving layer to hand each coalesced request a
  // zero-copy slice of a batched output tensor.
  static NDArray ShareStorage(const NDArray& storage, std::vector<int64_t> shape,
                              DataType dtype, int64_t byte_offset = 0) {
    NDArray a;
    a.shape_ = std::move(shape);
    a.dtype_ = dtype;
    a.data_ = storage.data_;
    a.byte_offset_ = storage.byte_offset_ + byte_offset;
    CHECK_LE(a.byte_offset_ + a.NumElements() * InterpElementBytes(dtype),
             static_cast<int64_t>(a.data_->size()))
        << "storage token too small for aliased tensor";
    return a;
  }

  // True when both arrays alias the same underlying storage.
  bool SameStorageAs(const NDArray& other) const { return data_ == other.data_; }

  // Bytes this tensor logically occupies. May be smaller than the underlying storage
  // for ShareStorage views, so copies must use this rather than the storage size.
  int64_t ByteSize() const { return NumElements() * InterpElementBytes(dtype_); }

  // Deep copy (always into fresh zero-offset heap storage, never pool storage).
  NDArray Copy() const {
    NDArray a;
    a.shape_ = shape_;
    a.dtype_ = dtype_;
    a.data_ = std::make_shared<NDStorage>(static_cast<size_t>(ByteSize()));
    std::memcpy(a.data_->data(), Data<char>(), static_cast<size_t>(ByteSize()));
    return a;
  }

  void CopyFrom(const NDArray& other) {
    CHECK_EQ(NumElements(), other.NumElements());
    CHECK(dtype_ == other.dtype_) << "dtype mismatch in CopyFrom";
    std::memcpy(Data<char>(), other.Data<char>(), static_cast<size_t>(ByteSize()));
  }

 private:
  std::shared_ptr<NDStorage> data_;
  std::vector<int64_t> shape_;
  DataType dtype_;
  int64_t byte_offset_ = 0;  // view offset into data_ (ShareStorage slices)
};

}  // namespace tvmcpp

#endif  // SRC_RUNTIME_NDARRAY_H_
