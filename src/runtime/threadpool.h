// A small fixed-size thread pool, used by the simulated RPC device cluster (Section 5.4)
// to run measurement jobs concurrently.
#ifndef SRC_RUNTIME_THREADPOOL_H_
#define SRC_RUNTIME_THREADPOOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace tvmcpp {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  template <typename F>
  auto Submit(F&& f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) {
          return;
        }
        job = std::move(queue_.front());
        queue_.pop();
      }
      job();
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace tvmcpp

#endif  // SRC_RUNTIME_THREADPOOL_H_
