// A small fixed-size thread pool. Used by the simulated RPC device cluster
// (Section 5.4) for measurement jobs, by the VM for kParallel loop chunks, and by the
// serving scheduler (src/serve) as the process-wide worker pool multiplexing whole
// inference requests and intra-kernel chunks over the same threads.
//
// Jobs come in two classes. Submit enqueues general jobs (RPC measurements, whole
// inference requests). SubmitNested enqueues sub-jobs spawned from *inside* a running
// job (kParallel loop chunks); workers prefer them over general jobs, and TryRunOne
// lets a thread that is blocked on nested-job futures help drain them instead of
// idling. This makes nested submission deadlock-free — a pool worker that fans a
// kParallel loop out as chunk jobs executes pending chunks itself while it waits, so
// progress never depends on a free worker existing — without the waiter ever stealing
// an unrelated general job (which could nest a whole multi-millisecond request inside
// a chunk wait and inflate that request's latency).
#ifndef SRC_RUNTIME_THREADPOOL_H_
#define SRC_RUNTIME_THREADPOOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "src/support/failpoint.h"

namespace tvmcpp {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  template <typename F>
  auto Submit(F&& f) -> std::future<decltype(f())> {
    return Enqueue(std::forward<F>(f), &queue_);
  }

  // Sub-jobs spawned from inside a running job. Workers run these before general
  // jobs, and only these are eligible for TryRunOne help.
  template <typename F>
  auto SubmitNested(F&& f) -> std::future<decltype(f())> {
    return Enqueue(std::forward<F>(f), &nested_);
  }

  // Pops and runs one queued *nested* job on the calling thread. Returns false when
  // no nested job is pending (the caller should then block on its future: every
  // outstanding nested job is already being executed by some thread).
  bool TryRunOne() {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (nested_.empty()) {
        return false;
      }
      job = std::move(nested_.front());
      nested_.pop();
    }
    // Non-throwing evaluation: a dispatched job must run no matter what — an
    // injected error here would strand the job's future forever. Delays simulate
    // a stuck/slow worker.
    FAILPOINT_SAFE("pool.dispatch");
    job();
    return true;
  }

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  template <typename F>
  auto Enqueue(F&& f, std::queue<std::function<void()>>* q)
      -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::unique_lock<std::mutex> lock(mu_);
      q->push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  void WorkerLoop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock,
                 [this] { return stop_ || !queue_.empty() || !nested_.empty(); });
        if (stop_ && queue_.empty() && nested_.empty()) {
          return;
        }
        // Nested jobs first: they are chunks of an already-running job that some
        // thread may be help-waiting on.
        std::queue<std::function<void()>>& q = nested_.empty() ? queue_ : nested_;
        job = std::move(q.front());
        q.pop();
      }
      FAILPOINT_SAFE("pool.dispatch");  // see TryRunOne: delay-only by design
      job();
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;   // general jobs
  std::queue<std::function<void()>> nested_;  // sub-jobs of running jobs
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace tvmcpp

#endif  // SRC_RUNTIME_THREADPOOL_H_
