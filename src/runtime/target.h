// Compilation targets: named hardware back-ends with the machine parameters the
// simulators and schedule templates consume.
//
// These stand in for the paper's testbeds (Section 6): an NVIDIA Titan X, an ARM Cortex
// A53, an ARM Mali-T860MP4, and the VDLA FPGA accelerator (see DESIGN.md for the
// substitution rationale).
#ifndef SRC_RUNTIME_TARGET_H_
#define SRC_RUNTIME_TARGET_H_

#include <cstdint>
#include <string>

namespace tvmcpp {

enum class TargetKind { kCpu, kGpu, kAccel };

// Machine description used by the performance models.
struct Target {
  std::string name;       // "cuda", "arm_cpu", "mali", "vdla", "llvm" (host)
  TargetKind kind = TargetKind::kCpu;

  // Common
  double clock_ghz = 1.0;

  // CPU
  int num_cores = 1;
  int vector_lanes = 4;        // SIMD width in fp32 lanes
  int64_t l1_bytes = 32 << 10;
  int64_t l2_bytes = 512 << 10;
  double dram_gbps = 10.0;
  double flops_per_cycle_per_core = 8.0;  // fused multiply-add lanes

  // GPU
  int num_sms = 1;
  int warp_size = 32;
  int max_threads_per_block = 1024;
  int64_t shared_mem_bytes = 48 << 10;
  double flops_per_cycle_per_sm = 256.0;

  // Accelerator (VDLA, Section 6.4)
  int gemm_rows = 16;
  int gemm_cols = 16;
  int64_t inp_buffer_bytes = 32 << 10;
  int64_t wgt_buffer_bytes = 32 << 10;
  int64_t acc_buffer_bytes = 128 << 10;
  double dram_latency_cycles = 200.0;

  static Target TitanX() {
    Target t;
    t.name = "cuda";
    t.kind = TargetKind::kGpu;
    t.clock_ghz = 1.0;
    t.num_sms = 24;
    t.shared_mem_bytes = 48 << 10;
    t.flops_per_cycle_per_sm = 256.0;  // ~6.1 TFLOPS fp32
    t.dram_gbps = 336.0;
    t.l2_bytes = 3 << 20;
    return t;
  }

  static Target ArmA53() {
    Target t;
    t.name = "arm_cpu";
    t.kind = TargetKind::kCpu;
    t.clock_ghz = 1.2;
    t.num_cores = 4;
    t.vector_lanes = 4;  // NEON 128-bit fp32
    t.l1_bytes = 32 << 10;
    t.l2_bytes = 512 << 10;
    t.dram_gbps = 6.4;
    t.flops_per_cycle_per_core = 4.0;
    return t;
  }

  static Target MaliT860() {
    Target t;
    t.name = "mali";
    t.kind = TargetKind::kGpu;
    t.clock_ghz = 0.65;
    t.num_sms = 4;                     // 4 shader cores
    t.shared_mem_bytes = 0;            // no programmer-visible shared memory win
    t.flops_per_cycle_per_sm = 17.3;   // ~45 GFLOPS fp32; fp16 double rate
    t.dram_gbps = 12.8;
    t.warp_size = 4;
    t.l2_bytes = 1 << 20;
    return t;
  }

  static Target Vdla() {
    Target t;
    t.name = "vdla";
    t.kind = TargetKind::kAccel;
    t.clock_ghz = 0.2;  // 200 MHz (Section 6.4)
    t.gemm_rows = 16;
    t.gemm_cols = 16;
    t.inp_buffer_bytes = 32 << 10;
    t.wgt_buffer_bytes = 32 << 10;
    t.acc_buffer_bytes = 128 << 10;
    t.dram_gbps = 4.0;  // DDR3 burst bandwidth on the PYNQ SoC
    t.dram_latency_cycles = 200.0;
    return t;
  }

  // Host CPU used for the PYNQ ARM Cortex A9 in the FPGA experiments.
  static Target ArmA9() {
    Target t = ArmA53();
    t.name = "arm_a9";
    t.clock_ghz = 0.667;
    t.num_cores = 2;
    t.flops_per_cycle_per_core = 2.0;
    t.dram_gbps = 2.0;
    return t;
  }
};

}  // namespace tvmcpp

#endif  // SRC_RUNTIME_TARGET_H_
