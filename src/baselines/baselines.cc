#include "src/baselines/baselines.h"

#include <algorithm>
#include <cmath>

namespace tvmcpp {
namespace baselines {

namespace {

// Peak floating-point throughput of the target in FLOP/s.
double PeakFlops(const Target& t) {
  if (t.kind == TargetKind::kGpu) {
    return t.clock_ghz * 1e9 * t.flops_per_cycle_per_sm * t.num_sms;
  }
  return t.clock_ghz * 1e9 * t.flops_per_cycle_per_core * t.num_cores;
}

// Memory-bound floor: elementwise traffic of the op at DRAM bandwidth.
double MemoryFloorSeconds(const topi::OpWorkload& wl, const Target& t) {
  double bytes = 0;
  int eb = (wl.dtype.bits() + 7) / 8;
  if (wl.kind == "dense") {
    bytes = static_cast<double>(wl.n) * wl.k + static_cast<double>(wl.oc) * wl.k +
            static_cast<double>(wl.n) * wl.oc;
  } else {
    double oh = static_cast<double>(topi::ConvOutDim(wl.h, wl.k, wl.stride, wl.pad));
    double ow = static_cast<double>(topi::ConvOutDim(wl.w, wl.k, wl.stride, wl.pad));
    bytes = static_cast<double>(wl.n) * wl.ic * wl.h * wl.w +
            static_cast<double>(wl.oc) * wl.ic * wl.k * wl.k +
            static_cast<double>(wl.n) * wl.oc * oh * ow;
  }
  return bytes * eb / (t.dram_gbps * 1e9);
}

// cuDNN efficiency profile: excellent on the common, heavily-tuned shapes; mediocre on
// 1x1; poor on unconventional kernels (4x4 s2) and depthwise (not supported -> MXNet).
double CudnnEfficiency(const topi::OpWorkload& wl) {
  if (wl.kind == "dense") {
    return 0.70;  // cuBLAS
  }
  if (wl.kind == "depthwise_conv2d") {
    return 0.04;  // framework fallback kernels (paper: MXNet handcrafted)
  }
  if (wl.kind == "conv2d_transpose") {
    return 0.20;
  }
  if (wl.k == 3 && wl.stride == 1 && wl.ic >= 64) {
    return 0.62;  // Winograd/implicit-GEMM sweet spot
  }
  if (wl.k == 3) {
    return 0.45;
  }
  if (wl.k == 1) {
    return 0.35;  // 1x1: GEMM-like but memory-bound
  }
  if (wl.k == 7) {
    return 0.50;
  }
  // Unconventional kernels (e.g. DQN's 4x4 stride 2, 8x8 stride 4): poorly covered.
  return 0.12;
}

double MxKernelEfficiency(const topi::OpWorkload& wl) {
  if (wl.kind == "depthwise_conv2d") {
    return 0.05;  // handcrafted but unoptimized
  }
  return CudnnEfficiency(wl) * 0.9;
}

// TC: blackbox polyhedral autotuning, good on simple ops, weaker on compute-bound conv
// (per the authors' own communication cited in the paper).
double TcEfficiency(const topi::OpWorkload& wl) {
  if (wl.kind == "depthwise_conv2d") {
    return 0.055;
  }
  if (wl.k == 1) {
    return 0.28;
  }
  return 0.22;
}

double TfliteEfficiency(const topi::OpWorkload& wl) {
  if (wl.kind == "depthwise_conv2d") {
    return 0.20;
  }
  if (wl.kind == "dense") {
    return 0.35;
  }
  if (wl.k == 3 && wl.stride == 1) {
    return 0.40;
  }
  if (wl.k == 1) {
    return 0.30;
  }
  return 0.25;
}

double AclEfficiency(const topi::OpWorkload& wl) {
  if (wl.kind == "depthwise_conv2d") {
    return 0.22;
  }
  if (wl.kind == "dense") {
    return 0.40;
  }
  if (wl.k == 3 && wl.stride == 1) {
    return 0.45;
  }
  return 0.28;
}

// Caffe2 ultra-low-precision bit-serial library: single threaded, tuned for 3x3 s1,
// unoptimized for 1x1 stride-2 layers (paper Figure 18: C5, C8, C11).
double Caffe2LowpEfficiency(const topi::OpWorkload& wl) {
  if (wl.k == 1) {
    return wl.stride == 2 ? 0.02 : 0.06;
  }
  return 0.10;
}

}  // namespace

std::string LibraryName(Library lib) {
  switch (lib) {
    case Library::kCudnn:
      return "cuDNN";
    case Library::kMxNetKernels:
      return "MX Kernel";
    case Library::kTensorComprehensions:
      return "TensorComprehensions";
    case Library::kTFLite:
      return "Tensorflow Lite";
    case Library::kArmComputeLib:
      return "ARMComputeLib";
    case Library::kCaffe2LowP:
      return "Caffe2 ultra-low-precision";
  }
  return "?";
}

double OperatorSeconds(Library lib, const topi::OpWorkload& wl, const Target& target) {
  double eff = 0.3;
  double peak = PeakFlops(target);
  switch (lib) {
    case Library::kCudnn:
      eff = CudnnEfficiency(wl);
      break;
    case Library::kMxNetKernels:
      eff = MxKernelEfficiency(wl);
      break;
    case Library::kTensorComprehensions:
      eff = TcEfficiency(wl);
      break;
    case Library::kTFLite:
      eff = TfliteEfficiency(wl);
      break;
    case Library::kArmComputeLib:
      eff = AclEfficiency(wl);
      // fp16 on Mali runs at double rate.
      if (wl.dtype.bits() == 16) {
        peak *= 2.0;
      }
      break;
    case Library::kCaffe2LowP: {
      // Bit-serial ops: peak is int ops on one core.
      Target single = target;
      single.num_cores = 1;
      peak = PeakFlops(single) * (32.0 / (wl.dtype.bits() * 2));
      eff = Caffe2LowpEfficiency(wl);
      break;
    }
  }
  double compute = wl.Flops() / (peak * eff);
  double memory = MemoryFloorSeconds(wl, target);
  return std::max(compute, memory) + 8e-6;  // kernel launch / dispatch overhead
}

double FrameworkOverhead(Library lib) {
  switch (lib) {
    case Library::kCudnn:
    case Library::kMxNetKernels:
      return 1.12;  // MXNet / TF dispatch + no fusion of elementwise chains
    case Library::kTFLite:
      return 1.10;
    case Library::kArmComputeLib:
      return 1.12;
    default:
      return 1.0;
  }
}

}  // namespace baselines
}  // namespace tvmcpp
