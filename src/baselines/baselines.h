// Simulated vendor operator libraries (the paper's comparison systems).
//
// Each library is modeled as a per-operator efficiency profile over a target's peak:
// time = flops / (peak * efficiency(shape)). The profiles encode the structural facts
// the paper reports — cuDNN is highly tuned for common conv shapes but poor on
// unconventional ones (DQN's 4x4 stride-2), frameworks use handcrafted depthwise
// kernels, the Caffe2 ultra-low-precision library is single-threaded and unoptimized for
// 1x1 stride-2 layers, etc. See DESIGN.md for the substitution rationale.
#ifndef SRC_BASELINES_BASELINES_H_
#define SRC_BASELINES_BASELINES_H_

#include <string>

#include "src/runtime/target.h"
#include "src/topi/schedules.h"

namespace tvmcpp {
namespace baselines {

// Library identifiers.
enum class Library {
  kCudnn,                 // cuDNN v7 (+cuBLAS v8 for dense)
  kMxNetKernels,          // MXNet handcrafted depthwise/unsupported-op kernels
  kTensorComprehensions,  // TC auto-tuner (2000 trials of blackbox search)
  kTFLite,                // TensorFlow Lite ARM kernels
  kArmComputeLib,         // ARM Compute Library v18.03 (Mali)
  kCaffe2LowP,            // Caffe2 ultra-low-precision (single-threaded)
};

std::string LibraryName(Library lib);

// Estimated runtime (seconds) of one operator under the library on `target`.
double OperatorSeconds(Library lib, const topi::OpWorkload& wl, const Target& target);

// Framework-level end-to-end overhead multiplier (framework scheduling, no fusion):
// applied by benches when composing whole models from library kernels.
double FrameworkOverhead(Library lib);

}  // namespace baselines
}  // namespace tvmcpp

#endif  // SRC_BASELINES_BASELINES_H_
