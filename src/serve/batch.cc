#include "src/serve/batch.h"

#include <cstring>
#include <utility>

#include "src/support/failpoint.h"
#include "src/support/logging.h"

namespace tvmcpp {
namespace serve {

std::shared_ptr<const graph::CompiledGraph> BatchedModelCache::Get(int factor) {
  CHECK_GE(factor, 1) << "batch factor must be positive";
  if (factor == 1) {
    return base_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_factor_.find(factor);
  if (it != by_factor_.end()) {
    return it->second;
  }
  // Evaluated only on a cache miss: once a variant is compiled and cached, it can
  // never re-fault, mirroring real compile failures (deterministic per variant).
  // Nothing is cached when this (or the builder below) throws, so the serving
  // layer's degrade-to-per-request path retries compilation on the next batch.
  FAILPOINT("serve.batch_compile");
  std::shared_ptr<const graph::CompiledGraph> batched =
      builder_ != nullptr ? builder_(factor) : base_->Rebatched(factor);
  CHECK(batched != nullptr) << "batch builder returned null for factor " << factor;
  // The batched variant must be batch-covariant against the base model: every input
  // and every output keeps its shape except dimension 0 scaled by `factor`.
  // Otherwise concat/slice would silently mis-split tensors across requests.
  auto expect_scaled = [&](const std::vector<int64_t>& base_shape,
                           const std::vector<int64_t>& got, const std::string& what) {
    CHECK(!base_shape.empty() && got.size() == base_shape.size() &&
          got[0] == base_shape[0] * factor)
        << what << " is not batch-covariant for factor " << factor;
    for (size_t d = 1; d < base_shape.size(); ++d) {
      CHECK_EQ(got[d], base_shape[d])
          << what << " changed a non-batch dimension at factor " << factor;
    }
  };
  for (const graph::Node& n : base_->graph().nodes()) {
    if (n.op != "input") {
      continue;
    }
    const graph::Node& bn =
        batched->graph().node(batched->NodeIdOf(n.name));
    expect_scaled(n.shape, bn.shape, "input " + n.name);
  }
  const auto& base_outs = base_->graph().outputs;
  const auto& batched_outs = batched->graph().outputs;
  CHECK_EQ(base_outs.size(), batched_outs.size())
      << "batched variant changed the number of outputs";
  for (size_t i = 0; i < base_outs.size(); ++i) {
    expect_scaled(base_->graph().node(base_outs[i]).shape,
                  batched->graph().node(batched_outs[i]).shape,
                  "output " + std::to_string(i));
  }
  by_factor_.emplace(factor, batched);
  if (batched->num_cache_tuned_kernels() > 0) {
    // The variant's compile found batch-N entries in the persistent tuning
    // cache — the lazily compiled batch schedule is tuned, not inherited.
    ++tuned_compiled_;
  }
  return batched;
}

int BatchedModelCache::num_compiled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(by_factor_.size());
}

int BatchedModelCache::num_tuned_compiled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tuned_compiled_;
}

bool ShapesCoalesce(const NamedTensors& a, const NamedTensors& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (const auto& kv : a) {
    auto it = b.find(kv.first);
    if (it == b.end() || !(kv.second.dtype() == it->second.dtype()) ||
        kv.second.shape() != it->second.shape()) {
      return false;
    }
  }
  return true;
}

void BindConcatenatedInputs(const std::vector<const NamedTensors*>& reqs,
                            graph::RunContext* ctx) {
  CHECK(!reqs.empty());
  const size_t batch = reqs.size();
  for (const auto& kv : *reqs[0]) {
    const NDArray& head = kv.second;
    std::vector<int64_t> shape = head.shape();
    CHECK(!shape.empty()) << "cannot batch scalar input " << kv.first;
    shape[0] *= static_cast<int64_t>(batch);
    NDArray big = NDArray::Empty(std::move(shape), head.dtype());
    const int64_t per_bytes = head.ByteSize();
    char* dst = big.Data<char>();
    for (size_t i = 0; i < batch; ++i) {
      const NDArray& part = reqs[i]->at(kv.first);
      CHECK_EQ(part.ByteSize(), per_bytes) << "coalesced request shape drift";
      std::memcpy(dst + static_cast<int64_t>(i) * per_bytes, part.Data<char>(),
                  static_cast<size_t>(per_bytes));
    }
    ctx->SetInput(kv.first, big);
  }
}

std::vector<std::vector<NDArray>> SliceBatchedOutputs(const graph::RunContext& ctx,
                                                      int batch) {
  const size_t num_outputs = ctx.compiled().graph().outputs.size();
  std::vector<std::vector<NDArray>> per_request(
      static_cast<size_t>(batch), std::vector<NDArray>());
  for (auto& v : per_request) {
    v.reserve(num_outputs);
  }
  for (size_t j = 0; j < num_outputs; ++j) {
    NDArray big = ctx.GetOutput(static_cast<int>(j));
    std::vector<int64_t> shape = big.shape();
    CHECK(!shape.empty() && shape[0] % batch == 0)
        << "batched output " << j << " not divisible into " << batch << " slices";
    shape[0] /= batch;
    const int64_t per_bytes = big.ByteSize() / batch;
    for (int i = 0; i < batch; ++i) {
      per_request[static_cast<size_t>(i)].push_back(
          NDArray::ShareStorage(big, shape, big.dtype(), i * per_bytes));
    }
  }
  return per_request;
}

}  // namespace serve
}  // namespace tvmcpp
