// Dynamic-batching support for the serving layer (see serve.h / docs/ARCHITECTURE.md):
//
//   - BatchedModelCache lazily compiles and caches batched variants of one base
//     CompiledGraph, keyed by batch factor. The default builder rebatches the base
//     model's own graph (CompiledGraph::Rebatched); a custom builder (e.g. a
//     frontend::* model constructor called with batch = N) can be supplied for
//     models whose batched form is built rather than derived.
//   - ShapesCoalesce is the request-compatibility half of the coalescing predicate:
//     identical input name sets with identical shapes and dtypes. (Model identity
//     is the other half, checked by the scheduler.)
//   - BindConcatenatedInputs / SliceBatchedOutputs implement the data movement:
//     inputs are concatenated along dimension 0 into batched tensors; outputs are
//     handed back as zero-copy ShareStorage slices of the batched output buffer.
//     Per-request results are bitwise-identical to batch-1 runs because batching
//     only widens the outermost (batch) loop extent — the FP operation order per
//     output element is unchanged.
//
// Batch variants and the tuning cache: Rebatched() compiles each variant with the
// batch-N workload keys, so the persistent tuning cache (TVMCPP_TUNE_CACHE; see
// src/autotune/cache.h) is consulted per batch size — a variant whose batch-N key
// hits gets its own tuned schedule, otherwise it inherits the base model's
// configs. Either way per-request results stay bitwise-identical (schedule
// configs never change reduction order). num_tuned_compiled() counts the hits.
#ifndef SRC_SERVE_BATCH_H_
#define SRC_SERVE_BATCH_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/executor.h"
#include "src/runtime/ndarray.h"

namespace tvmcpp {
namespace serve {

// Named input tensors of one request (the payload of serve::InferenceRequest; kept
// as a plain map here so this header does not depend on serve.h).
using NamedTensors = std::unordered_map<std::string, NDArray>;

// Per-model cache of batched compiled variants, keyed by batch factor. Thread-safe;
// compilation happens at most once per factor (under the cache lock, so two batches
// of a new size serialize on the compile).
class BatchedModelCache {
 public:
  // Builds the batch=N variant of the base model. Must produce a graph whose input
  // leading dimensions are the base model's scaled by N (validated in Get).
  using Builder =
      std::function<std::shared_ptr<const graph::CompiledGraph>(int batch)>;

  // `builder` == nullptr selects the generic path: base->Rebatched(factor).
  explicit BatchedModelCache(std::shared_ptr<const graph::CompiledGraph> base,
                             Builder builder = nullptr)
      : base_(std::move(base)), builder_(std::move(builder)) {}

  // The batch=`factor` variant; factor 1 is the base model itself. Lazy + cached.
  std::shared_ptr<const graph::CompiledGraph> Get(int factor);

  const graph::CompiledGraph* base() const { return base_.get(); }

  // True when this cache is the last owner of the base model (every client handle
  // dropped): the entry can be evicted, freeing the model and all batched variants.
  bool SoleOwnerOfBase() const { return base_.use_count() == 1; }

  // Number of distinct batched variants compiled so far (excluding factor 1).
  int num_compiled() const;

  // Of those, how many picked at least one schedule from the persistent tuning
  // cache (TVMCPP_TUNE_CACHE): the batch-N workload key — batch dimension
  // included — hit an entry tuned for that exact batch size, instead of
  // inheriting the base model's batch-1 config. This is the serving half of the
  // tuning loop: a fleet that tunes the batch sizes its traffic actually
  // produces sees this counter grow as variants lazily compile.
  int num_tuned_compiled() const;

 private:
  std::shared_ptr<const graph::CompiledGraph> base_;
  Builder builder_;
  mutable std::mutex mu_;
  std::unordered_map<int, std::shared_ptr<const graph::CompiledGraph>> by_factor_;
  int tuned_compiled_ = 0;
};

// True when two requests are shape-compatible for coalescing: same input names,
// and per name the same shape and dtype.
bool ShapesCoalesce(const NamedTensors& a, const NamedTensors& b);

// Concatenates the requests' inputs along dimension 0 and binds the batched tensors
// to `ctx` (a RunContext over the batch=reqs.size() model variant). All requests
// must be pairwise ShapesCoalesce-compatible.
void BindConcatenatedInputs(const std::vector<const NamedTensors*>& reqs,
                            graph::RunContext* ctx);

// Slices every batched output back per request: result[i][j] is request i's j-th
// output, a zero-copy view into the batched output buffer (the view keeps the
// underlying storage alive).
std::vector<std::vector<NDArray>> SliceBatchedOutputs(const graph::RunContext& ctx,
                                                      int batch);

}  // namespace serve
}  // namespace tvmcpp

#endif  // SRC_SERVE_BATCH_H_
