#include "src/serve/shm_arena.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "src/support/failpoint.h"
#include "src/support/logging.h"

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tvmcpp {
namespace serve {

namespace {

size_t EnvSizeOr(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

std::string NormalizeShmName(const std::string& name) {
  std::string n = name.empty() ? std::string("/tvmcpp_serve") : name;
  if (n[0] != '/') n.insert(n.begin(), '/');
  return n;
}

size_t AlignUp(size_t v, size_t a) { return (v + a - 1) & ~(a - 1); }

[[noreturn]] void Fail(const std::string& what) { throw std::runtime_error(what); }

}  // namespace

#ifndef _WIN32

void ShmArena::MapAndInit(size_t bytes, int ring_slots) {
  size_t slots_off = AlignUp(sizeof(ShmArenaHeader), kShmAlign);
  size_t heap_off =
      AlignUp(slots_off + static_cast<size_t>(ring_slots) * sizeof(ShmRequestSlot), kShmAlign);
  if (bytes < heap_off + kShmMinClass * 4) Fail("shm arena size too small for ring + heap");
  if (ftruncate(fd_, static_cast<off_t>(bytes)) != 0) Fail("shm arena ftruncate failed");
  void* m = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (m == MAP_FAILED) Fail("shm arena mmap failed");
  base_ = static_cast<char*>(m);
  mapped_bytes_ = bytes;
  slots_ = reinterpret_cast<ShmRequestSlot*>(base_ + slots_off);

  // Pages from ftruncate are zero-filled; construct the non-zero header fields
  // on top and publish with the ready flag last.
  ShmArenaHeader* hdr = header();
  hdr->version = kShmVersion;
  hdr->total_bytes = bytes;
  hdr->heap_offset = heap_off;
  hdr->heap_bytes = bytes - heap_off;
  hdr->num_slots = static_cast<uint32_t>(ring_slots);
  for (int i = 0; i < kShmNumClasses; ++i) {
    hdr->free_heads[i].store(ShmPackHead(0, static_cast<uint32_t>(kShmFreeListNil)),
                             std::memory_order_relaxed);
  }
  hdr->magic = kShmMagic;
  hdr->ready.store(1, std::memory_order_release);
}

std::shared_ptr<ShmArena> ShmArena::Create(const std::string& name, Options opts) {
  FAILPOINT("serve.shm_attach");
  size_t bytes = opts.bytes > 0 ? opts.bytes : EnvSizeOr("TVMCPP_SHM_BYTES", 64u << 20);
  int slots = opts.ring_slots > 0
                  ? opts.ring_slots
                  : static_cast<int>(EnvSizeOr("TVMCPP_SHM_SLOTS", 64));
  auto arena = std::shared_ptr<ShmArena>(new ShmArena());
  arena->name_ = NormalizeShmName(name);
  arena->owner_ = true;
  // Replace any stale object left by a crashed server: existing mappings in
  // other processes stay valid but are detached from the new name.
  shm_unlink(arena->name_.c_str());
  arena->fd_ = shm_open(arena->name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (arena->fd_ < 0) Fail("shm_open(create " + arena->name_ + ") failed: " + strerror(errno));
  arena->MapAndInit(bytes, slots);
  return arena;
}

std::shared_ptr<ShmArena> ShmArena::Attach(const std::string& name, double timeout_ms) {
  FAILPOINT("serve.shm_attach");
  auto arena = std::shared_ptr<ShmArena>(new ShmArena());
  arena->name_ = NormalizeShmName(name);
  int64_t give_up = ShmMonotonicMs() + static_cast<int64_t>(timeout_ms);
  // The creator's shm_open / ftruncate / header init are not atomic as a
  // whole, so attach retries until the object exists, has its final size, and
  // carries the ready flag — or the timeout lapses.
  while (true) {
    if (arena->fd_ < 0) arena->fd_ = shm_open(arena->name_.c_str(), O_RDWR, 0600);
    if (arena->fd_ >= 0) {
      struct stat st;
      if (fstat(arena->fd_, &st) != 0) Fail("shm arena fstat failed");
      if (static_cast<size_t>(st.st_size) >= sizeof(ShmArenaHeader)) {
        void* m = mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ | PROT_WRITE,
                       MAP_SHARED, arena->fd_, 0);
        if (m == MAP_FAILED) Fail("shm arena mmap failed");
        arena->base_ = static_cast<char*>(m);
        arena->mapped_bytes_ = static_cast<size_t>(st.st_size);
        while (arena->header()->ready.load(std::memory_order_acquire) != 1) {
          if (ShmMonotonicMs() > give_up) Fail("shm arena " + arena->name_ + " never became ready");
          usleep(200);
        }
        ShmArenaHeader* hdr = arena->header();
        if (hdr->magic != kShmMagic) Fail("shm arena " + arena->name_ + ": bad magic");
        if (hdr->version != kShmVersion) {
          Fail("shm arena " + arena->name_ + ": version " + std::to_string(hdr->version) +
               " != expected " + std::to_string(kShmVersion));
        }
        if (hdr->total_bytes != arena->mapped_bytes_) {
          Fail("shm arena " + arena->name_ + ": header size disagrees with mapping");
        }
        size_t slots_off = AlignUp(sizeof(ShmArenaHeader), kShmAlign);
        arena->slots_ = reinterpret_cast<ShmRequestSlot*>(arena->base_ + slots_off);
        return arena;
      }
    }
    if (ShmMonotonicMs() > give_up) {
      Fail("shm arena " + arena->name_ + " not found (is the server running?)");
    }
    usleep(1000);
  }
}

ShmArena::~ShmArena() {
  if (base_ != nullptr) munmap(base_, mapped_bytes_);
  if (fd_ >= 0) close(fd_);
  if (owner_) shm_unlink(name_.c_str());
}

void ShmArena::Unlink() { shm_unlink(name_.c_str()); }

#else  // _WIN32: the shm transport is POSIX-only; fail loudly if reached.

void ShmArena::MapAndInit(size_t, int) { Fail("shm transport is not supported on this platform"); }
std::shared_ptr<ShmArena> ShmArena::Create(const std::string&, Options) {
  Fail("shm transport is not supported on this platform");
}
std::shared_ptr<ShmArena> ShmArena::Attach(const std::string&, double) {
  Fail("shm transport is not supported on this platform");
}
ShmArena::~ShmArena() = default;
void ShmArena::Unlink() {}

#endif

int64_t ShmArena::AllocOffset(size_t bytes) {
  ShmArenaHeader* hdr = header();
  size_t need = bytes + kShmAlign;  // block header + payload alignment pad
  int cls = 0;
  while (cls < kShmNumClasses && (kShmMinClass << cls) < need) ++cls;
  if (cls >= kShmNumClasses) {
    hdr->failed_allocs.fetch_add(1, std::memory_order_relaxed);
    return kShmNoOffset;
  }
  size_t block_bytes = kShmMinClass << cls;
  char* heap = base_ + hdr->heap_offset;
  char* block = nullptr;

  // Fast path: pop this class's Treiber free list. The head packs a
  // generation with the offset so a concurrent pop/push cycle (ABA) makes the
  // CAS fail instead of corrupting the chain.
  std::atomic<uint64_t>& head = hdr->free_heads[cls];
  uint64_t h = head.load(std::memory_order_acquire);
  while (ShmHeadOff(h) != static_cast<uint32_t>(kShmFreeListNil)) {
    char* cand = heap + static_cast<uint64_t>(ShmHeadOff(h)) * kShmAlign;
    uint32_t next_units = static_cast<uint32_t>(
        reinterpret_cast<std::atomic<uint64_t>*>(cand + sizeof(ShmBlockHeader))
            ->load(std::memory_order_relaxed));
    uint64_t new_head = ShmPackHead(ShmHeadGen(h) + 1, next_units);
    if (head.compare_exchange_weak(h, new_head, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      block = cand;
      break;
    }
  }

  // Slow path: carve a fresh block off the bump frontier.
  if (block == nullptr) {
    uint64_t cur = hdr->bump.load(std::memory_order_relaxed);
    while (true) {
      if (cur + block_bytes > hdr->heap_bytes) {
        hdr->failed_allocs.fetch_add(1, std::memory_order_relaxed);
        return kShmNoOffset;
      }
      if (hdr->bump.compare_exchange_weak(cur, cur + block_bytes, std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        block = heap + cur;
        break;
      }
    }
  }

  ShmBlockHeader* bh = reinterpret_cast<ShmBlockHeader*>(block);
  bh->magic = kShmBlockMagic;
  bh->cls = static_cast<uint32_t>(cls);
  std::memset(block + kShmAlign, 0, bytes);  // match NDArray::Empty's zero-fill
  hdr->live_blocks.fetch_add(1, std::memory_order_relaxed);
  hdr->total_allocs.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int64_t>(hdr->heap_offset) + (block - heap) + kShmAlign;
}

bool ShmArena::FreeOffset(int64_t offset) {
  ShmArenaHeader* hdr = header();
  int64_t block_off = offset - static_cast<int64_t>(kShmAlign);
  int64_t heap_lo = static_cast<int64_t>(hdr->heap_offset);
  int64_t frontier = heap_lo + static_cast<int64_t>(hdr->bump.load(std::memory_order_acquire));
  if (block_off < heap_lo || block_off >= frontier || block_off % kShmAlign != 0) return false;
  char* block = base_ + block_off;
  ShmBlockHeader* bh = reinterpret_cast<ShmBlockHeader*>(block);
  if (bh->magic != kShmBlockMagic || bh->cls >= kShmNumClasses) return false;
  bh->magic = kShmBlockFreeMagic;
  uint32_t units =
      static_cast<uint32_t>((block_off - heap_lo) / static_cast<int64_t>(kShmAlign));
  std::atomic<uint64_t>& head = hdr->free_heads[bh->cls];
  auto* next_slot = reinterpret_cast<std::atomic<uint64_t>*>(block + sizeof(ShmBlockHeader));
  uint64_t h = head.load(std::memory_order_acquire);
  while (true) {
    next_slot->store(ShmHeadOff(h), std::memory_order_relaxed);
    uint64_t new_head = ShmPackHead(ShmHeadGen(h) + 1, units);
    if (head.compare_exchange_weak(h, new_head, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      break;
    }
  }
  hdr->live_blocks.fetch_add(-1, std::memory_order_relaxed);
  hdr->total_frees.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ShmArena::Contains(const void* ptr, size_t bytes) const {
  const char* p = static_cast<const char*>(ptr);
  const char* heap = base_ + header()->heap_offset;
  return p >= heap && p + bytes <= base_ + header()->total_bytes;
}

bool ShmArena::ValidPayload(int64_t offset, size_t bytes) const {
  const ShmArenaHeader* hdr = header();
  int64_t lo = static_cast<int64_t>(hdr->heap_offset + kShmAlign);
  return offset >= lo &&
         static_cast<uint64_t>(offset) + bytes <= hdr->heap_offset + hdr->heap_bytes;
}

std::shared_ptr<NDStorage> ShmStoragePool::Allocate(size_t bytes) {
  int64_t off = arena_->AllocOffset(bytes > 0 ? bytes : 1);
  if (off == kShmNoOffset) return nullptr;  // caller falls back to the heap
  std::shared_ptr<ShmArena> arena = arena_;
  std::shared_ptr<void> keeper(static_cast<void*>(arena->At(off)),
                               [arena, off](void*) { arena->FreeOffset(off); });
  return std::make_shared<NDStorage>(arena_->At(off), bytes, std::move(keeper));
}

}  // namespace serve
}  // namespace tvmcpp
