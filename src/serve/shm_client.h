// ShmClient: the client side of the shared-memory serving transport. Runs in
// a separate process from the server: attaches to the named arena, allocates
// request/response tensors directly in the arena's slab heap (zero-copy in
// both directions), claims a ring slot, and futex-waits on the slot's
// completion word. All failures — attach faults, ring full, injected
// fail-points, timeouts, server-reported errors — surface as typed Status.
//
// One ShmClient is not thread-safe; the unit of concurrency is the process
// (or one ShmClient per thread over the same arena — slot claiming and the
// slab allocator are lock-free and multi-client safe).
#ifndef SRC_SERVE_SHM_CLIENT_H_
#define SRC_SERVE_SHM_CLIENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/serve/serve.h"
#include "src/serve/shm_arena.h"

namespace tvmcpp {
namespace serve {

// Decoded model-directory entry: enough to size and allocate request/response
// tensors without any channel besides the arena.
struct ShmTensorMeta {
  std::string name;
  std::vector<int64_t> shape;
  DataType dtype;
};
struct ShmModelMeta {
  std::string name;
  std::vector<ShmTensorMeta> inputs;
  std::vector<ShmTensorMeta> outputs;
};

struct ShmCallOptions {
  int priority = 0;
  double deadline_ms = -1;    // server-side deadline (serve.h semantics)
  double timeout_ms = 30000;  // client-side bound on waiting for completion
};

class ShmClient {
 public:
  using CallOptions = ShmCallOptions;

  // Attaches to a serving arena (name resolution as in ShmTransport: "" uses
  // TVMCPP_SHM_NAME, default "/tvmcpp_serve"). Waits up to `attach_timeout_ms`
  // for the server to create + initialize the arena. On failure returns null
  // and, when `status` is non-null, fills it with kTransportFault.
  static std::unique_ptr<ShmClient> Connect(const std::string& shm_name, Status* status,
                                            double attach_timeout_ms = 5000);

  // Reads the model directory. Returns false when `model` is not published.
  bool GetModelMeta(const std::string& model, ShmModelMeta* out) const;
  std::vector<std::string> ListModels() const;

  // Allocates a tensor inside the arena (zero-filled). Returns an undefined
  // NDArray when the heap is exhausted. Tensors passed to Call that were
  // allocated here go by offset — zero-copy; any other tensor is staged into
  // the arena first (one copy, counted in staged_inputs()).
  NDArray AllocTensor(std::vector<int64_t> shape, DataType dtype);

  // Submits one request and blocks until completion or timeout. On success
  // *outputs holds arena-resident tensors owned by this call (their slabs are
  // freed when the NDArrays drop). `meta`, when non-null, receives the
  // server-reported timing/batching fields.
  Status Call(const std::string& model,
              const std::unordered_map<std::string, NDArray>& inputs,
              std::vector<NDArray>* outputs, const CallOptions& opts = CallOptions(),
              InferenceResponse* meta = nullptr);

  const std::shared_ptr<ShmArena>& arena() const { return arena_; }
  int64_t staged_inputs() const { return staged_inputs_; }

 private:
  ShmClient() = default;
  // Claims a free ring slot, retrying until `give_up_ms` (monotonic). Returns
  // slot index or -1 (ring full for the whole window).
  int ClaimSlot(int64_t give_up_ms);
  // Parks tensors of a timed-out/reclaimed call in a never-freed process-wide
  // graveyard: the server still owns their completion, so freeing the slabs
  // from this process could double-free or corrupt a reallocated block.
  static void LeakTensors(std::vector<std::pair<std::string, NDArray>>&& ins,
                          std::vector<NDArray>&& outs);

  std::shared_ptr<ShmArena> arena_;
  std::unique_ptr<ShmStoragePool> pool_;
  int64_t staged_inputs_ = 0;
};

}  // namespace serve
}  // namespace tvmcpp

#endif  // SRC_SERVE_SHM_CLIENT_H_
