// Bounded MPMC queue for the serving scheduler: many client threads push requests,
// many worker threads pop them. Push blocks while the queue is full (backpressure
// toward clients instead of unbounded memory growth); Close() wakes everyone, fails
// subsequent pushes, and lets pops drain what was already accepted.
//
// Ordering: entries live in a binary heap. An optional `before` comparator makes
// Pop/TryPop return the highest-priority entry (the serving layer orders by request
// class, then deadline); ties — and the entire queue when no comparator is given —
// fall back to push sequence, so the default behavior is exactly FIFO and the heap
// degenerates to a FIFO queue. The heap is maintained by std::push_heap/pop_heap
// (O(log n) per operation) with a full make_heap after bulk removal.
//
// Two extensions support dynamic batching (src/serve/serve.cc): DrainMatching
// extracts every entry matching a predicate (coalescing same-model requests without
// disturbing the pop order of the rest), and push_seq()/WaitPush let a worker
// linger for new arrivals without polling.
//
// Fail-points: "serve.queue_push" and "serve.queue_drain" are evaluated at the
// mutation seams in non-throwing mode (an injected delay widens the race windows
// the MPMC tests stress; an error must not fire inside the queue, where it would
// strand an entry — the serving layer evaluates the same points in throwing mode
// where its typed-error path can absorb them).
#ifndef SRC_SERVE_QUEUE_H_
#define SRC_SERVE_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "src/support/failpoint.h"

namespace tvmcpp {
namespace serve {

template <typename T>
class BoundedQueue {
 public:
  // Strict priority order: before(a, b) == true means a must pop before b. May be
  // null (pure FIFO). Entries neither before nor after each other pop in push order.
  using Before = std::function<bool(const T&, const T&)>;

  explicit BoundedQueue(size_t capacity, Before before = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity), before_(std::move(before)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false (dropping `item`) when the queue was closed.
  bool Push(T item) {
    FAILPOINT_SAFE("serve.queue_push");
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(Entry{push_seq_, std::move(item)});
    std::push_heap(items_.begin(), items_.end(), HeapComp());
    ++push_seq_;
    lock.unlock();
    // notify_all (not _one): a push must wake both a blocked Pop consumer and any
    // batching worker lingering in WaitPush — they share not_empty_.
    not_empty_.notify_all();
    return true;
  }

  // Blocks while empty; returns the highest-priority entry. Returns false only
  // when the queue is closed AND drained.
  bool Pop(T* out) {
    FAILPOINT_SAFE("serve.queue_drain");
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return false;
    }
    PopTopLocked(out);
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking pop for drain loops. Same contract as Pop, but returns false
  // immediately when the queue is currently empty (closed or not).
  bool TryPop(T* out) {
    FAILPOINT_SAFE("serve.queue_drain");
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) {
      return false;
    }
    PopTopLocked(out);
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Moves every entry for which `pred` returns true into `out`, up to `max_items`
  // total, taking matches in pop (priority) order; non-matching entries keep their
  // pop order. Returns the number of entries taken. Used by the batching scheduler
  // to coalesce same-model/same-shape requests from anywhere in the queue.
  template <typename Pred>
  size_t DrainMatching(Pred pred, size_t max_items, std::vector<T>* out) {
    FAILPOINT_SAFE("serve.queue_drain");
    std::unique_lock<std::mutex> lock(mu_);
    // Collect matching positions, order them by pop priority, take the first
    // max_items. The heap array is scanned in storage order; priority order is
    // recovered by sorting just the matches.
    std::vector<size_t> matches;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (pred(items_[i].item)) {
        matches.push_back(i);
      }
    }
    auto better = [this](size_t a, size_t b) {
      return Better(items_[a], items_[b]);
    };
    if (matches.size() > max_items) {
      std::partial_sort(matches.begin(), matches.begin() + max_items,
                        matches.end(), better);
      matches.resize(max_items);
    } else {
      std::sort(matches.begin(), matches.end(), better);
    }
    for (size_t i : matches) {
      out->push_back(std::move(items_[i].item));
    }
    if (!matches.empty()) {
      // Compact the holes (descending index so erasures do not shift later ones),
      // then rebuild the heap over the survivors.
      std::sort(matches.begin(), matches.end());
      for (size_t k = matches.size(); k > 0; --k) {
        items_.erase(items_.begin() + static_cast<ptrdiff_t>(matches[k - 1]));
      }
      std::make_heap(items_.begin(), items_.end(), HeapComp());
      lock.unlock();
      not_full_.notify_all();
    }
    return matches.size();
  }

  // Number of queued entries for which `pred` returns true (e.g. the backlog at or
  // above a priority class, for admission-control wait estimates).
  template <typename Pred>
  size_t CountIf(Pred pred) const {
    std::unique_lock<std::mutex> lock(mu_);
    size_t n = 0;
    for (const Entry& e : items_) {
      if (pred(e.item)) {
        ++n;
      }
    }
    return n;
  }

  // Monotone counter bumped by every successful Push. Snapshot it before a
  // DrainMatching scan, then WaitPush(snapshot, ...) to sleep until a push that the
  // scan could have missed (or close/timeout) — the linger primitive for batching.
  uint64_t push_seq() const {
    std::unique_lock<std::mutex> lock(mu_);
    return push_seq_;
  }

  // Blocks until a push after `seen`, the queue is closed, or `deadline` passes.
  // Returns true iff a new push happened (push_seq() != seen).
  bool WaitPush(uint64_t seen, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_until(lock, deadline,
                          [this, seen] { return closed_ || push_seq_ != seen; });
    return push_seq_ != seen;
  }

  void Close() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::unique_lock<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::unique_lock<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  struct Entry {
    uint64_t seq;
    T item;
  };

  // True when a must pop before b: comparator first, push order as tiebreak (and
  // as the whole order when no comparator is set — global FIFO).
  bool Better(const Entry& a, const Entry& b) const {
    if (before_) {
      if (before_(a.item, b.item)) {
        return true;
      }
      if (before_(b.item, a.item)) {
        return false;
      }
    }
    return a.seq < b.seq;
  }

  // std::push_heap keeps the element for which comp(x, top) holds for all x on
  // top, i.e. comp(a, b) == "b outranks a".
  auto HeapComp() const {
    return [this](const Entry& a, const Entry& b) { return Better(b, a); };
  }

  void PopTopLocked(T* out) {
    std::pop_heap(items_.begin(), items_.end(), HeapComp());
    *out = std::move(items_.back().item);
    items_.pop_back();
  }

  const size_t capacity_;
  const Before before_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<Entry> items_;  // binary heap per HeapComp()
  uint64_t push_seq_ = 0;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace tvmcpp

#endif  // SRC_SERVE_QUEUE_H_
