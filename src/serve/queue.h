// Bounded MPMC queue for the serving scheduler: many client threads push requests,
// many worker threads pop them. Push blocks while the queue is full (backpressure
// toward clients instead of unbounded memory growth); Close() wakes everyone, fails
// subsequent pushes, and lets pops drain what was already accepted.
#ifndef SRC_SERVE_QUEUE_H_
#define SRC_SERVE_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace tvmcpp {
namespace serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false (dropping `item`) when the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns false only when the queue is closed AND drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking pop for drain loops. Same contract as Pop, but returns false
  // immediately when the queue is currently empty (closed or not).
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  void Close() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::unique_lock<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::unique_lock<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace tvmcpp

#endif  // SRC_SERVE_QUEUE_H_
