// Bounded MPMC queue for the serving scheduler: many client threads push requests,
// many worker threads pop them. Push blocks while the queue is full (backpressure
// toward clients instead of unbounded memory growth); Close() wakes everyone, fails
// subsequent pushes, and lets pops drain what was already accepted.
//
// Two extensions support dynamic batching (src/serve/serve.cc): DrainMatching
// extracts every entry matching a predicate (coalescing same-model requests without
// disturbing the FIFO order of the rest), and push_seq()/WaitPush let a worker
// linger for new arrivals without polling.
#ifndef SRC_SERVE_QUEUE_H_
#define SRC_SERVE_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace tvmcpp {
namespace serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false (dropping `item`) when the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    ++push_seq_;
    lock.unlock();
    // notify_all (not _one): a push must wake both a blocked Pop consumer and any
    // batching worker lingering in WaitPush — they share not_empty_.
    not_empty_.notify_all();
    return true;
  }

  // Blocks while empty. Returns false only when the queue is closed AND drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking pop for drain loops. Same contract as Pop, but returns false
  // immediately when the queue is currently empty (closed or not).
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Scans the queue front-to-back and moves every entry for which `pred` returns
  // true into `out`, up to `max_items` total; non-matching entries keep their
  // relative FIFO order. Returns the number of entries taken. Used by the batching
  // scheduler to coalesce same-model/same-shape requests from anywhere in the queue.
  template <typename Pred>
  size_t DrainMatching(Pred pred, size_t max_items, std::vector<T>* out) {
    std::unique_lock<std::mutex> lock(mu_);
    size_t taken = 0;
    for (auto it = items_.begin(); it != items_.end() && taken < max_items;) {
      if (pred(*it)) {
        out->push_back(std::move(*it));
        it = items_.erase(it);
        ++taken;
      } else {
        ++it;
      }
    }
    if (taken > 0) {
      lock.unlock();
      not_full_.notify_all();
    }
    return taken;
  }

  // Monotone counter bumped by every successful Push. Snapshot it before a
  // DrainMatching scan, then WaitPush(snapshot, ...) to sleep until a push that the
  // scan could have missed (or close/timeout) — the linger primitive for batching.
  uint64_t push_seq() const {
    std::unique_lock<std::mutex> lock(mu_);
    return push_seq_;
  }

  // Blocks until a push after `seen`, the queue is closed, or `deadline` passes.
  // Returns true iff a new push happened (push_seq() != seen).
  bool WaitPush(uint64_t seen, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_until(lock, deadline,
                          [this, seen] { return closed_ || push_seq_ != seen; });
    return push_seq_ != seen;
  }

  void Close() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::unique_lock<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::unique_lock<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  uint64_t push_seq_ = 0;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace tvmcpp

#endif  // SRC_SERVE_QUEUE_H_
