#include "src/serve/shm_client.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/serve/shm_server.h"
#include "src/support/failpoint.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace tvmcpp {
namespace serve {

namespace {

std::string ReadName(const char* src, size_t cap) {
  return std::string(src, strnlen(src, cap));
}

void CopyName(char* dst, size_t cap, const std::string& src) {
  size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

ShmTensorMeta DecodeDesc(const ShmTensorDesc& d) {
  ShmTensorMeta m;
  m.name = ReadName(d.name, kShmNameLen);
  m.shape.assign(d.shape, d.shape + d.ndim);
  m.dtype = DataType(static_cast<TypeCode>(d.type_code), d.bits, 1);
  return m;
}

void SleepABit() {
#ifndef _WIN32
  usleep(500);
#endif
}

}  // namespace

std::unique_ptr<ShmClient> ShmClient::Connect(const std::string& shm_name, Status* status,
                                              double attach_timeout_ms) {
  auto client = std::unique_ptr<ShmClient>(new ShmClient());
  const char* env = std::getenv("TVMCPP_SHM_NAME");
  std::string name = !shm_name.empty()             ? shm_name
                     : (env != nullptr && *env)    ? std::string(env)
                                                  : std::string("/tvmcpp_serve");
  try {
    client->arena_ = ShmArena::Attach(name, attach_timeout_ms);
  } catch (const std::exception& e) {
    // Injected serve.shm_attach faults and real attach failures (missing
    // arena, version mismatch) land here identically: a typed transport fault.
    if (status != nullptr) *status = {StatusCode::kTransportFault, e.what()};
    return nullptr;
  }
  client->pool_.reset(new ShmStoragePool(client->arena_));
  if (status != nullptr) *status = Status{};
  return client;
}

bool ShmClient::GetModelMeta(const std::string& model, ShmModelMeta* out) const {
  const ShmArenaHeader* hdr = arena_->header();
  for (int i = 0; i < kShmMaxModels; ++i) {
    const ShmModelInfo& m = hdr->models[i];
    if (m.valid.load(std::memory_order_acquire) != 2) continue;
    if (ReadName(m.name, kShmNameLen) != model) continue;
    out->name = model;
    out->inputs.clear();
    out->outputs.clear();
    for (uint32_t j = 0; j < m.num_inputs && j < kShmMaxTensors; ++j) {
      out->inputs.push_back(DecodeDesc(m.inputs[j]));
    }
    for (uint32_t j = 0; j < m.num_outputs && j < kShmMaxTensors; ++j) {
      out->outputs.push_back(DecodeDesc(m.outputs[j]));
    }
    return true;
  }
  return false;
}

std::vector<std::string> ShmClient::ListModels() const {
  std::vector<std::string> names;
  const ShmArenaHeader* hdr = arena_->header();
  for (int i = 0; i < kShmMaxModels; ++i) {
    if (hdr->models[i].valid.load(std::memory_order_acquire) == 2) {
      names.push_back(ReadName(hdr->models[i].name, kShmNameLen));
    }
  }
  return names;
}

NDArray ShmClient::AllocTensor(std::vector<int64_t> shape, DataType dtype) {
  ScopedStoragePool scope(pool_.get());
  NDArray t = NDArray::Empty(std::move(shape), dtype);
  // Empty falls back to the heap when the pool declines (arena exhausted);
  // callers need arena residency, so report that as undefined instead.
  if (!arena_->Contains(t.Data<char>(), static_cast<size_t>(t.ByteSize()))) {
    return NDArray();
  }
  return t;
}

int ShmClient::ClaimSlot(int64_t give_up_ms) {
  while (true) {
    for (int i = 0; i < arena_->num_slots(); ++i) {
      ShmRequestSlot* slot = arena_->slot(i);
      uint32_t expect = kSlotFree;
      if (slot->state.compare_exchange_strong(expect, kSlotClaimed,
                                              std::memory_order_acq_rel)) {
#ifndef _WIN32
        slot->client_pid = static_cast<uint32_t>(getpid());
#endif
        slot->claim_ms = ShmMonotonicMs();
        slot->done.store(0, std::memory_order_relaxed);
        slot->abandoned.store(0, std::memory_order_relaxed);
        return i;
      }
    }
    // Ring full: back off briefly and retry until the caller's window closes.
    // Slots free up as other clients consume completions.
    if (ShmMonotonicMs() >= give_up_ms) return -1;
    SleepABit();
  }
}

Status ShmClient::Call(const std::string& model,
                       const std::unordered_map<std::string, NDArray>& inputs,
                       std::vector<NDArray>* outputs, const CallOptions& opts,
                       InferenceResponse* meta) {
  if (outputs != nullptr) outputs->clear();
  ShmModelMeta mm;
  if (!GetModelMeta(model, &mm)) {
    return {StatusCode::kTransportFault, "model '" + model + "' not in the arena directory"};
  }
  if (inputs.size() > static_cast<size_t>(kShmMaxTensors) ||
      mm.outputs.size() > static_cast<size_t>(kShmMaxTensors)) {
    return {StatusCode::kTransportFault, "too many tensors for a ring descriptor"};
  }
  const int64_t give_up = ShmMonotonicMs() + static_cast<int64_t>(opts.timeout_ms);

  // Arena-resident inputs travel by offset (zero-copy); anything else is
  // staged into the arena first — a convenience copy, counted so benchmarks
  // and tests can assert the hot path stays copy-free.
  std::vector<std::pair<std::string, NDArray>> resident;
  resident.reserve(inputs.size());
  for (const auto& kv : inputs) {
    NDArray t = kv.second;
    if (!arena_->Contains(t.Data<char>(), static_cast<size_t>(t.ByteSize()))) {
      NDArray staged = AllocTensor(t.shape(), t.dtype());
      if (!staged.defined()) {
        return {StatusCode::kTransportFault, "arena heap exhausted while staging input"};
      }
      staged.CopyFrom(t);
      ++staged_inputs_;
      t = std::move(staged);
    }
    resident.emplace_back(kv.first, std::move(t));
  }
  std::vector<NDArray> outs;
  outs.reserve(mm.outputs.size());
  for (const ShmTensorMeta& om : mm.outputs) {
    NDArray o = AllocTensor(om.shape, om.dtype);
    if (!o.defined()) {
      return {StatusCode::kTransportFault, "arena heap exhausted allocating outputs"};
    }
    outs.push_back(std::move(o));
  }

  const int idx = ClaimSlot(give_up);
  if (idx < 0) {
    return {StatusCode::kTransportFault,
            "request ring full for " + std::to_string(opts.timeout_ms) + " ms"};
  }
  ShmRequestSlot* slot = arena_->slot(idx);
  const uint32_t gen = slot->gen.load(std::memory_order_acquire);

  // Ring-push fault seam: an injected fault aborts the submission after the
  // claim, exercising the release path a crashing client would leave behind.
  try {
    FAILPOINT("serve.shm_ring_push");
  } catch (const failpoint::InjectedFault& e) {
    slot->gen.fetch_add(1, std::memory_order_acq_rel);
    slot->client_pid = 0;
    slot->state.store(kSlotFree, std::memory_order_release);
    return {StatusCode::kTransportFault, std::string("ring push fault: ") + e.what()};
  }

  CopyName(slot->model, kShmNameLen, model);
  slot->priority = opts.priority;
  slot->deadline_ms = opts.deadline_ms;
  slot->num_inputs = static_cast<uint32_t>(resident.size());
  slot->num_outputs = static_cast<uint32_t>(outs.size());
  for (size_t i = 0; i < resident.size(); ++i) {
    ShmDescribeTensor(resident[i].first, resident[i].second, &slot->inputs[i]);
    slot->inputs[i].arena_offset = arena_->OffsetOf(resident[i].second.Data<char>());
  }
  for (size_t i = 0; i < outs.size(); ++i) {
    ShmDescribeTensor(mm.outputs[i].name, outs[i], &slot->outputs[i]);
    slot->outputs[i].arena_offset = arena_->OffsetOf(outs[i].Data<char>());
  }
  slot->seq = arena_->header()->req_seq.fetch_add(1, std::memory_order_relaxed);
  slot->state.store(kSlotReady, std::memory_order_release);
  arena_->header()->doorbell.fetch_add(1, std::memory_order_release);
  ShmFutexWake(&arena_->header()->doorbell, 1);

  // Wait for the completion word. The server writes response fields, then
  // state=kDone, then done=1 (release), so done==1 implies a coherent slot.
  while (slot->done.load(std::memory_order_acquire) == 0) {
    if (slot->gen.load(std::memory_order_acquire) != gen) {
      // Reclaimed under us (only possible if the server judged this pid dead);
      // the server freed the slabs, so just drop our views without freeing.
      LeakTensors(std::move(resident), std::move(outs));
      return {StatusCode::kTransportFault, "ring slot reclaimed while waiting"};
    }
    if (ShmMonotonicMs() >= give_up) {
      slot->abandoned.store(1, std::memory_order_release);
      if (slot->done.load(std::memory_order_acquire) != 0) {
        // Completion raced the timeout: take the response after all.
        slot->abandoned.store(0, std::memory_order_release);
        break;
      }
      // The server will free the slot and slabs when the request eventually
      // completes (see ShmTransport::CompleteSlot); our views must therefore
      // never free them — leak them deliberately.
      LeakTensors(std::move(resident), std::move(outs));
      return {StatusCode::kTransportFault,
              "timed out after " + std::to_string(opts.timeout_ms) + " ms"};
    }
    ShmFutexWait(&slot->done, 0, 5.0);
  }

  Status st{static_cast<StatusCode>(slot->status_code),
            ReadName(slot->status_msg, kShmMsgLen)};
  if (meta != nullptr) {
    meta->status = st;
    meta->queue_ms = slot->queue_ms;
    meta->run_ms = slot->run_ms;
    meta->batch_size = slot->batch_size;
    meta->retries = slot->retries;
    meta->fell_back = slot->fell_back != 0;
  }
  // Free the slot before the tensors: the server's crash sweep assumes a
  // kReady/kDone slot's slabs are still allocated, so the slot must leave the
  // ring first. The response slabs stay alive as long as the caller holds the
  // returned NDArrays.
  slot->gen.fetch_add(1, std::memory_order_acq_rel);
  slot->done.store(0, std::memory_order_relaxed);
  slot->client_pid = 0;
  slot->state.store(kSlotFree, std::memory_order_release);

  if (st.ok() && outputs != nullptr) *outputs = std::move(outs);
  return st;
}

void ShmClient::LeakTensors(std::vector<std::pair<std::string, NDArray>>&& ins,
                            std::vector<NDArray>&& outs) {
  // Never freed: the server may still be writing into (or may later free)
  // these slabs, so releasing them from this process would double-free or
  // corrupt a reallocated block. Bounded by the arena; recovered when the
  // server recreates it.
  static std::mutex* mu = new std::mutex();
  static std::vector<NDArray>* graveyard = new std::vector<NDArray>();
  std::lock_guard<std::mutex> lock(*mu);
  for (auto& kv : ins) graveyard->push_back(std::move(kv.second));
  for (auto& t : outs) graveyard->push_back(std::move(t));
}

}  // namespace serve
}  // namespace tvmcpp
