#include "src/serve/shm_server.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/support/logging.h"

#ifndef _WIN32
#include <signal.h>
#endif

namespace tvmcpp {
namespace serve {

namespace {

std::string EnvStrOr(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : std::string(fallback);
}

double EnvMsOr(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  double parsed = std::atof(v);
  return parsed > 0 ? parsed : fallback;
}

void CopyName(char* dst, size_t cap, const std::string& src) {
  size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

std::string ReadName(const char* src, size_t cap) {
  return std::string(src, strnlen(src, cap));
}

int64_t DescByteSize(const ShmTensorDesc& d, std::vector<int64_t>* shape, DataType* dtype) {
  *dtype = DataType(static_cast<TypeCode>(d.type_code), d.bits, 1);
  shape->assign(d.shape, d.shape + d.ndim);
  int64_t n = 1;
  for (int64_t dim : *shape) n *= dim;
  return n * InterpElementBytes(*dtype);
}

bool DeadPid(uint32_t pid) {
#ifndef _WIN32
  return pid != 0 && kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH;
#else
  (void)pid;
  return false;
#endif
}

}  // namespace

void ShmDescribeTensor(const std::string& name, const NDArray& t, ShmTensorDesc* desc) {
  std::memset(desc, 0, sizeof(*desc));
  CopyName(desc->name, kShmNameLen, name);
  desc->type_code = static_cast<uint8_t>(t.dtype().code());
  desc->bits = static_cast<uint16_t>(t.dtype().bits());
  desc->ndim = static_cast<int32_t>(t.shape().size());
  for (size_t i = 0; i < t.shape().size(); ++i) desc->shape[i] = t.shape()[i];
  desc->arena_offset = kShmNoOffset;
}

bool ShmDecodeSlot(const std::shared_ptr<ShmArena>& arena, ShmRequestSlot* slot,
                   InferenceRequest* out, std::string* error) {
  if (slot->num_inputs > kShmMaxTensors || slot->num_outputs > kShmMaxTensors) {
    *error = "descriptor tensor count out of range";
    return false;
  }
  // The arena shared_ptr is the keeper: the mapping stays valid for as long as
  // any decoded tensor is alive, even if the transport is torn down first.
  std::shared_ptr<void> keeper = arena;
  InferenceRequest req;
  for (uint32_t i = 0; i < slot->num_inputs + slot->num_outputs; ++i) {
    bool is_input = i < slot->num_inputs;
    const ShmTensorDesc& d =
        is_input ? slot->inputs[i] : slot->outputs[i - slot->num_inputs];
    if (d.ndim < 0 || d.ndim > kShmMaxDims) {
      *error = "descriptor rank out of range";
      return false;
    }
    std::vector<int64_t> shape;
    DataType dtype;
    int64_t bytes = DescByteSize(d, &shape, &dtype);
    if (bytes <= 0 || !arena->ValidPayload(d.arena_offset, static_cast<size_t>(bytes))) {
      *error = std::string("descriptor payload for '") + ReadName(d.name, kShmNameLen) +
               "' outside the arena heap";
      return false;
    }
    NDArray t = NDArray::FromExternal(arena->At(d.arena_offset), std::move(shape), dtype, keeper);
    if (is_input) {
      req.inputs[ReadName(d.name, kShmNameLen)] = std::move(t);
    } else {
      req.bound_outputs.push_back(std::move(t));
    }
  }
  req.priority = slot->priority;
  req.deadline_ms = slot->deadline_ms;
  *out = std::move(req);
  return true;
}

ShmTransport::ShmTransport(InferenceServer* server, const Options& opts) : server_(server) {
  CHECK(server != nullptr) << "ShmTransport over a null InferenceServer";
  std::string name =
      !opts.shm_name.empty() ? opts.shm_name : EnvStrOr("TVMCPP_SHM_NAME", "/tvmcpp_serve");
  ShmArena::Options aopts;
  aopts.bytes = opts.arena_bytes;
  aopts.ring_slots = opts.ring_slots;
  arena_ = ShmArena::Create(name, aopts);
  reclaim_after_ms_ = opts.reclaim_after_ms >= 0 ? opts.reclaim_after_ms
                                                 : EnvMsOr("TVMCPP_SHM_RECLAIM_MS", 1000.0);
  poller_ = std::thread([this] { PollLoop(); });
}

ShmTransport::~ShmTransport() { Stop(); }

void ShmTransport::Stop() {
  bool was = stop_.exchange(true);
  if (!was && poller_.joinable()) {
    ShmFutexWake(&arena_->header()->doorbell, 1 << 30);
    poller_.join();
  }
}

void ShmTransport::RegisterModel(const std::string& name,
                                 std::shared_ptr<const graph::CompiledGraph> model) {
  CHECK(model != nullptr) << "RegisterModel with a null model";
  ShmArenaHeader* hdr = arena_->header();
  // Reuse the entry with this name if re-registering, else claim a free one.
  ShmModelInfo* entry = nullptr;
  for (int i = 0; i < kShmMaxModels && entry == nullptr; ++i) {
    ShmModelInfo& m = hdr->models[i];
    if (m.valid.load(std::memory_order_acquire) == 2 &&
        ReadName(m.name, kShmNameLen) == name) {
      entry = &m;
    }
  }
  for (int i = 0; i < kShmMaxModels && entry == nullptr; ++i) {
    uint32_t expect = 0;
    if (hdr->models[i].valid.compare_exchange_strong(expect, 1, std::memory_order_acq_rel)) {
      entry = &hdr->models[i];
    }
  }
  CHECK(entry != nullptr) << "model directory full (" << kShmMaxModels << " entries)";

  const graph::Graph& g = model->graph();
  uint32_t ni = 0, no = 0;
  for (const graph::Node& n : g.nodes()) {
    if (n.op != "input") continue;
    CHECK_LT(ni, static_cast<uint32_t>(kShmMaxTensors)) << "model has too many inputs for shm";
    ShmTensorDesc* d = &entry->inputs[ni++];
    std::memset(d, 0, sizeof(*d));
    CopyName(d->name, kShmNameLen, n.name);
    d->type_code = static_cast<uint8_t>(n.dtype.code());
    d->bits = static_cast<uint16_t>(n.dtype.bits());
    d->ndim = static_cast<int32_t>(n.shape.size());
    for (size_t k = 0; k < n.shape.size(); ++k) d->shape[k] = n.shape[k];
    d->arena_offset = kShmNoOffset;
  }
  for (int id : g.outputs) {
    const graph::Node& n = g.node(id);
    CHECK_LT(no, static_cast<uint32_t>(kShmMaxTensors)) << "model has too many outputs for shm";
    ShmTensorDesc* d = &entry->outputs[no++];
    std::memset(d, 0, sizeof(*d));
    CopyName(d->name, kShmNameLen, n.name);
    d->type_code = static_cast<uint8_t>(n.dtype.code());
    d->bits = static_cast<uint16_t>(n.dtype.bits());
    d->ndim = static_cast<int32_t>(n.shape.size());
    for (size_t k = 0; k < n.shape.size(); ++k) d->shape[k] = n.shape[k];
    d->arena_offset = kShmNoOffset;
  }
  entry->num_inputs = ni;
  entry->num_outputs = no;
  CopyName(entry->name, kShmNameLen, name);
  entry->valid.store(2, std::memory_order_release);

  std::lock_guard<std::mutex> lock(mu_);
  models_[name] = std::move(model);
}

void ShmTransport::WriteStatus(ShmRequestSlot* slot, const Status& status) {
  slot->status_code = static_cast<int32_t>(status.code);
  CopyName(slot->status_msg, kShmMsgLen, status.message);
}

void ShmTransport::CompleteSlot(int slot_idx, uint32_t gen, const InferenceResponse& resp) {
  ShmRequestSlot* slot = arena_->slot(slot_idx);
  if (slot->gen.load(std::memory_order_acquire) != gen) {
    return;  // slot was crash-reclaimed under this request; nobody is listening
  }
  WriteStatus(slot, resp.status);
  slot->queue_ms = resp.queue_ms;
  slot->run_ms = resp.run_ms;
  slot->batch_size = resp.batch_size;
  slot->retries = resp.retries;
  slot->fell_back = resp.fell_back ? 1 : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed;
    if (resp.status.ok()) {
      // The unbatched path writes outputs directly into the client's slabs
      // (bound_outputs); the batched path copied its slices into them inside
      // the server. Account for both honestly.
      if (resp.batch_size > 1) {
        stats_.copied_outputs += static_cast<int64_t>(resp.outputs.size());
      } else {
        ++stats_.zero_copy_requests;
      }
    }
  }
  if (slot->abandoned.load(std::memory_order_acquire) != 0) {
    // The client timed out and left: free its descriptor slabs and the slot on
    // its behalf (it quarantined its own views; see ShmClient::Call).
    for (uint32_t i = 0; i < slot->num_inputs; ++i) arena_->FreeOffset(slot->inputs[i].arena_offset);
    for (uint32_t i = 0; i < slot->num_outputs; ++i) {
      arena_->FreeOffset(slot->outputs[i].arena_offset);
    }
    slot->gen.fetch_add(1, std::memory_order_acq_rel);
    slot->abandoned.store(0, std::memory_order_relaxed);
    slot->done.store(0, std::memory_order_relaxed);
    slot->client_pid = 0;
    slot->state.store(kSlotFree, std::memory_order_release);
    return;
  }
  slot->state.store(kSlotDone, std::memory_order_release);
  slot->done.store(1, std::memory_order_release);
  ShmFutexWake(&slot->done, 1 << 30);
}

void ShmTransport::SubmitSlot(int slot_idx) {
  ShmRequestSlot* slot = arena_->slot(slot_idx);
  uint32_t gen = slot->gen.load(std::memory_order_acquire);
  std::string model_name = ReadName(slot->model, kShmNameLen);

  InferenceRequest req;
  std::string error;
  if (!ShmDecodeSlot(arena_, slot, &req, &error)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_descriptors;
    }
    InferenceResponse r;
    r.status = {StatusCode::kTransportFault, "bad descriptor: " + error};
    CompleteSlot(slot_idx, gen, r);
    return;
  }

  std::shared_ptr<const graph::CompiledGraph> model;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(model_name);
    if (it != models_.end()) model = it->second;
  }
  if (model == nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.unknown_model;
    }
    InferenceResponse r;
    r.status = {StatusCode::kTransportFault, "unknown model '" + model_name + "'"};
    CompleteSlot(slot_idx, gen, r);
    return;
  }
  // The descriptor's output signature must match the graph's before BindOutput
  // (whose shape CHECK would otherwise burn the whole retry ladder).
  const std::vector<int>& outs = model->graph().outputs;
  bool sig_ok = req.bound_outputs.size() == outs.size();
  for (size_t i = 0; sig_ok && i < outs.size(); ++i) {
    const graph::Node& n = model->graph().node(outs[i]);
    sig_ok = req.bound_outputs[i].shape() == n.shape && req.bound_outputs[i].dtype() == n.dtype;
  }
  if (!sig_ok) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.bad_descriptors;
    }
    InferenceResponse r;
    r.status = {StatusCode::kTransportFault,
                "descriptor output signature does not match model '" + model_name + "'"};
    CompleteSlot(slot_idx, gen, r);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.received;
  }
  // Completion is written by whichever server thread resolves the request —
  // worker on the normal path, the submitting poller on shed/reject — so the
  // poller never blocks on or polls a future.
  req.on_complete = [this, slot_idx, gen](const InferenceResponse& resp) {
    CompleteSlot(slot_idx, gen, resp);
  };
  server_->Submit(std::move(model), std::move(req));
}

void ShmTransport::ProcessReadySlots() {
  // Claim every ready slot, then submit in client-stamped order so the fault
  // stream and queue admission see a deterministic sequence.
  std::vector<std::pair<uint64_t, int>> ready;
  for (int i = 0; i < arena_->num_slots(); ++i) {
    ShmRequestSlot* slot = arena_->slot(i);
    uint32_t expect = kSlotReady;
    if (slot->state.compare_exchange_strong(expect, kSlotInFlight, std::memory_order_acq_rel)) {
      ready.emplace_back(slot->seq, i);
    }
  }
  std::sort(ready.begin(), ready.end());
  for (const auto& [seq, idx] : ready) {
    (void)seq;
    SubmitSlot(idx);
  }
}

int ShmTransport::ReclaimCrashedSlots() {
  int reclaimed = 0;
  int64_t now = ShmMonotonicMs();
  for (int i = 0; i < arena_->num_slots(); ++i) {
    ShmRequestSlot* slot = arena_->slot(i);
    uint32_t s = slot->state.load(std::memory_order_acquire);
    if (s != kSlotClaimed && s != kSlotReady && s != kSlotDone) continue;
    if (now - slot->claim_ms < static_cast<int64_t>(reclaim_after_ms_)) continue;
    if (!DeadPid(slot->client_pid)) continue;
    // Take ownership before touching anything; a racing state change (e.g. the
    // pid was reused and the "dead" client just freed the slot) fails the CAS.
    if (!slot->state.compare_exchange_strong(s, kSlotInFlight, std::memory_order_acq_rel)) {
      continue;
    }
    if (s != kSlotClaimed) {
      // kReady/kDone descriptors are fully written, so the dead client's slabs
      // can be returned. A kClaimed slot may hold a half-written descriptor —
      // its slabs leak (bounded by the arena) rather than risk a bad free.
      for (uint32_t j = 0; j < slot->num_inputs && j < kShmMaxTensors; ++j) {
        arena_->FreeOffset(slot->inputs[j].arena_offset);
      }
      for (uint32_t j = 0; j < slot->num_outputs && j < kShmMaxTensors; ++j) {
        arena_->FreeOffset(slot->outputs[j].arena_offset);
      }
    }
    slot->gen.fetch_add(1, std::memory_order_acq_rel);
    slot->done.store(0, std::memory_order_relaxed);
    slot->abandoned.store(0, std::memory_order_relaxed);
    slot->client_pid = 0;
    slot->state.store(kSlotFree, std::memory_order_release);
    ++reclaimed;
  }
  if (reclaimed > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.reclaimed_slots += reclaimed;
  }
  return reclaimed;
}

void ShmTransport::PollLoop() {
  ShmArenaHeader* hdr = arena_->header();
  int64_t last_reclaim = ShmMonotonicMs();
  while (!stop_.load(std::memory_order_acquire)) {
    uint32_t bell = hdr->doorbell.load(std::memory_order_acquire);
    ProcessReadySlots();
    int64_t now = ShmMonotonicMs();
    if (reclaim_after_ms_ > 0 && now - last_reclaim >= static_cast<int64_t>(reclaim_after_ms_)) {
      ReclaimCrashedSlots();
      last_reclaim = now;
    }
    if (hdr->doorbell.load(std::memory_order_acquire) == bell &&
        !stop_.load(std::memory_order_acquire)) {
      ShmFutexWait(&hdr->doorbell, bell, 20.0);
    }
  }
}

ShmTransport::Stats ShmTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace serve
}  // namespace tvmcpp
