// Wire format of the shared-memory serving transport: the arena header, the
// model directory, and the fixed-slot MPSC request ring, all of which live
// inside one POSIX shm object mapped by the server and every client process.
//
// Layout (all offsets relative to the mapping base):
//
//   [ShmArenaHeader | ShmRequestSlot x num_slots | slab heap ............]
//
// Versioning: `magic` + `version` are checked on attach; any change to the
// structs below that alters size or field meaning must bump kShmVersion.
// Attach fails cleanly (typed Status, no crash) on mismatch, so old clients
// cannot corrupt a new server's arena or vice versa.
//
// Cross-process atomics: every synchronization word is a std::atomic whose
// lock-freedom is static_asserted — a lock-based fallback would deadlock
// across processes. Completion and doorbell words double as futex words on
// Linux (4-byte aligned uint32), with a sleep-poll fallback elsewhere.
#ifndef SRC_SERVE_SHM_LAYOUT_H_
#define SRC_SERVE_SHM_LAYOUT_H_

#include <atomic>
#include <cstdint>

#ifdef __linux__
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#else
#include <chrono>
#include <thread>
#endif

namespace tvmcpp {
namespace serve {

constexpr uint32_t kShmMagic = 0x54564d41;  // "TVMA"
constexpr uint32_t kShmVersion = 1;

constexpr int kShmMaxDims = 6;      // max tensor rank in a descriptor
constexpr int kShmMaxTensors = 8;   // max inputs (and outputs) per request
constexpr int kShmMaxModels = 16;   // model directory capacity
constexpr int kShmNameLen = 64;     // model/tensor name capacity (NUL-terminated)
constexpr int kShmMsgLen = 120;     // status message capacity (truncated)
constexpr size_t kShmAlign = 64;    // slab payload alignment (cache line)
constexpr int kShmNumClasses = 22;  // slab size classes: 256 B << i, up to 512 MiB
constexpr size_t kShmMinClass = 256;

// Offset sentinel for "no tensor payload here".
constexpr int64_t kShmNoOffset = -1;

// One tensor in a request/response descriptor. `arena_offset` addresses the
// payload inside the arena's slab heap (absolute offset from the mapping
// base); shape/dtype describe the widened runtime layout (f16 stored as f32,
// sub-byte ints as int8 — identical across processes since both map the same
// bytes the same way).
struct ShmTensorDesc {
  char name[kShmNameLen];
  uint8_t type_code;  // ir::TypeCode
  uint8_t pad0;
  uint16_t bits;
  int32_t ndim;
  int64_t shape[kShmMaxDims];
  int64_t arena_offset;  // payload offset, or kShmNoOffset
};
static_assert(sizeof(ShmTensorDesc) == 128, "descriptor wire size is part of the ABI");

// Request-ring slot states. Clients drive kFree -> kClaimed -> kReady; the
// server drives kReady -> kInFlight -> kDone; the owning client frees
// kDone -> kFree after reading the response. Every transition CASes `state`,
// and freeing bumps `gen` so a reclaimed/reused slot is detectable by anyone
// holding a stale (slot, gen) handle.
enum ShmSlotState : uint32_t {
  kSlotFree = 0,
  kSlotClaimed = 1,
  kSlotReady = 2,
  kSlotInFlight = 3,
  kSlotDone = 4,
};

struct ShmRequestSlot {
  std::atomic<uint32_t> state;
  std::atomic<uint32_t> gen;   // bumped on every release; ABA/staleness guard
  std::atomic<uint32_t> done;  // completion word (futex): 0 pending, 1 complete
  // Set by a client that gave up waiting: the server frees the slot after
  // completion instead of the (departed) client.
  std::atomic<uint32_t> abandoned;
  uint32_t client_pid;  // for crash detection (kill(pid, 0))
  uint32_t pad0;
  int64_t claim_ms;  // CLOCK_MONOTONIC ms at claim; reclamation age base
  uint64_t seq;      // client-stamped submission order (header req_seq)
  char model[kShmNameLen];
  int32_t priority;
  uint32_t num_inputs;
  uint32_t num_outputs;
  uint32_t pad1;
  double deadline_ms;  // <= 0: no deadline
  ShmTensorDesc inputs[kShmMaxTensors];
  ShmTensorDesc outputs[kShmMaxTensors];
  // Response fields, written by the server before done -> 1.
  int32_t status_code;  // serve::StatusCode
  char status_msg[kShmMsgLen];
  double queue_ms;
  double run_ms;
  int32_t batch_size;
  int32_t retries;
  uint32_t fell_back;
  uint32_t pad2;
};

// One published model: name plus input/output signatures (arena_offset unused)
// so clients can size and allocate request/response tensors without any
// channel besides the arena itself. `valid` is 0 empty / 1 publishing / 2
// ready; readers accept only 2.
struct ShmModelInfo {
  std::atomic<uint32_t> valid;
  uint32_t num_inputs;
  uint32_t num_outputs;
  uint32_t pad0;
  char name[kShmNameLen];
  ShmTensorDesc inputs[kShmMaxTensors];
  ShmTensorDesc outputs[kShmMaxTensors];
};

// Slab free-list head: {generation : 32 | offset-in-kShmAlign-units : 32}
// packed into one atomic so Treiber push/pop is ABA-safe. Offset unit scaling
// lets 32 bits address 256 GiB of heap.
constexpr uint64_t kShmFreeListNil = 0xFFFFFFFFull;
inline uint64_t ShmPackHead(uint32_t gen, uint32_t off_units) {
  return (static_cast<uint64_t>(gen) << 32) | off_units;
}
inline uint32_t ShmHeadGen(uint64_t head) { return static_cast<uint32_t>(head >> 32); }
inline uint32_t ShmHeadOff(uint64_t head) { return static_cast<uint32_t>(head); }

struct ShmArenaHeader {
  uint32_t magic;
  uint32_t version;
  uint64_t total_bytes;
  uint64_t heap_offset;  // byte offset of the slab heap
  uint64_t heap_bytes;
  uint32_t num_slots;
  std::atomic<uint32_t> ready;     // creator stores 1 after init; attachers wait
  std::atomic<uint32_t> doorbell;  // futex word, bumped on every ready-push
  uint32_t pad0;
  std::atomic<uint64_t> req_seq;  // client-side submission order stamp
  std::atomic<uint64_t> bump;     // heap high-water mark (byte offset into heap)
  std::atomic<uint64_t> free_heads[kShmNumClasses];
  std::atomic<int64_t> live_blocks;
  std::atomic<int64_t> total_allocs;
  std::atomic<int64_t> total_frees;
  std::atomic<int64_t> failed_allocs;
  ShmModelInfo models[kShmMaxModels];
};

// Every block in the slab heap starts with this header, then pads the payload
// to the next kShmAlign boundary. Freed blocks reuse the payload's first 8
// bytes as the free-list next pointer (packed like the list head).
struct ShmBlockHeader {
  uint32_t magic;  // kShmBlockMagic while live, kShmBlockFreeMagic on the free list
  uint32_t cls;    // size-class index; block spans kShmMinClass << cls bytes
};
constexpr uint32_t kShmBlockMagic = 0x534c4142;      // "SLAB"
constexpr uint32_t kShmBlockFreeMagic = 0x46524545;  // "FREE"

static_assert(std::atomic<uint32_t>::is_always_lock_free,
              "cross-process shm sync requires lock-free 32-bit atomics");
static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "cross-process shm sync requires lock-free 64-bit atomics");

// --- Futex wrappers -------------------------------------------------------
// Wait until *word != expected (or timeout); wake up to `n` waiters. On
// non-Linux hosts these degrade to a sleep-poll loop, which is slower but
// semantically identical (waiters always recheck the word).

#ifdef __linux__
inline void ShmFutexWake(std::atomic<uint32_t>* word, int n) {
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), FUTEX_WAKE, n, nullptr, nullptr, 0);
}

inline void ShmFutexWait(std::atomic<uint32_t>* word, uint32_t expected, double timeout_ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
  ts.tv_nsec = static_cast<long>((timeout_ms - ts.tv_sec * 1000.0) * 1e6);
  syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), FUTEX_WAIT, expected, &ts, nullptr, 0);
}
#else
inline void ShmFutexWake(std::atomic<uint32_t>*, int) {}

inline void ShmFutexWait(std::atomic<uint32_t>* word, uint32_t expected, double timeout_ms) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double, std::milli>(timeout_ms);
  while (word->load(std::memory_order_acquire) == expected &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}
#endif

// Monotonic milliseconds shared across processes (reclamation age base).
inline int64_t ShmMonotonicMs() {
#ifdef __linux__
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
#else
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
#endif
}

}  // namespace serve
}  // namespace tvmcpp

#endif  // SRC_SERVE_SHM_LAYOUT_H_
