// ShmTransport: the server side of the shared-memory serving transport. Owns
// the arena (ring + slab heap), publishes registered models in the arena's
// model directory, and runs a poller thread that turns ready ring slots into
// InferenceServer::Submit calls — with request tensors wrapped as zero-copy
// NDArray views of the client's arena slabs, and graph outputs bound to the
// client's response slabs. Completions are written back into the slot (typed
// status + timing) by the server worker itself via the request's on_complete
// hook, so no thread ever polls futures.
#ifndef SRC_SERVE_SHM_SERVER_H_
#define SRC_SERVE_SHM_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/serve.h"
#include "src/serve/shm_arena.h"

namespace tvmcpp {
namespace serve {

// Decodes one ready ring slot into an InferenceRequest whose inputs are
// zero-copy views of the arena (`keeper` keeps the mapping alive) and whose
// bound_outputs alias the client's response slabs. Returns false with *error
// set on any malformed descriptor (bad rank/offset/size), touching nothing.
// Exposed standalone so tests can assert pointer identity with the arena.
bool ShmDecodeSlot(const std::shared_ptr<ShmArena>& arena, ShmRequestSlot* slot,
                   InferenceRequest* out, std::string* error);

// Fills a descriptor's shape/dtype fields from a tensor (offset untouched).
void ShmDescribeTensor(const std::string& name, const NDArray& t, ShmTensorDesc* desc);

class ShmTransport {
 public:
  struct Options {
    std::string shm_name;         // "" -> TVMCPP_SHM_NAME, default "/tvmcpp_serve"
    size_t arena_bytes = 0;       // 0 -> TVMCPP_SHM_BYTES, default 64 MiB
    int ring_slots = 0;           // 0 -> TVMCPP_SHM_SLOTS, default 64
    double reclaim_after_ms = -1; // <0 -> TVMCPP_SHM_RECLAIM_MS, default 1000
  };

  // Creates the arena and starts the poller. `server` must outlive this object.
  ShmTransport(InferenceServer* server, const Options& opts);
  ~ShmTransport();
  ShmTransport(const ShmTransport&) = delete;
  ShmTransport& operator=(const ShmTransport&) = delete;

  // Publishes `model` under `name` in the arena's model directory so clients
  // can size request/response tensors and submit against it.
  void RegisterModel(const std::string& name,
                     std::shared_ptr<const graph::CompiledGraph> model);

  // Stops the poller thread (idempotent). In-flight requests still complete
  // through the underlying server; their slots are written before this returns
  // only if the server has finished them — call server->Shutdown() first for a
  // full drain.
  void Stop();

  struct Stats {
    int64_t received = 0;         // slots decoded and submitted
    int64_t completed = 0;        // completions written back to slots
    int64_t bad_descriptors = 0;  // malformed slots answered with kTransportFault
    int64_t unknown_model = 0;    // slots naming an unregistered model
    int64_t reclaimed_slots = 0;  // crash-reclaimed ring slots
    int64_t zero_copy_requests = 0;  // completions whose outputs needed no copy
    int64_t copied_outputs = 0;      // output tensors copied (batched slices)
  };
  Stats stats() const;

  const std::shared_ptr<ShmArena>& arena() const { return arena_; }

  // One crash-reclamation sweep: frees ring slots (and their descriptor slabs)
  // whose owning client pid is gone and whose claim age exceeds the threshold.
  // Runs periodically on the poller thread; public so tests can force it.
  int ReclaimCrashedSlots();

 private:
  void PollLoop();
  void ProcessReadySlots();
  void SubmitSlot(int slot_idx);
  void CompleteSlot(int slot_idx, uint32_t gen, const InferenceResponse& resp);
  static void WriteStatus(ShmRequestSlot* slot, const Status& status);

  InferenceServer* server_;
  std::shared_ptr<ShmArena> arena_;
  double reclaim_after_ms_;
  std::map<std::string, std::shared_ptr<const graph::CompiledGraph>> models_;
  mutable std::mutex mu_;  // guards models_ and stats_
  Stats stats_;
  std::atomic<bool> stop_{false};
  std::thread poller_;
};

}  // namespace serve
}  // namespace tvmcpp

#endif  // SRC_SERVE_SHM_SERVER_H_
