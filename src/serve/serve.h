// Concurrent inference serving (the paper's "deployed inference" runtime side).
//
// An InferenceServer owns one process-wide ThreadPool and a bounded MPMC request
// queue, and multiplexes many logically-concurrent inference requests over the pool.
// Requests execute against shared, immutable graph::CompiledGraphs; each in-flight
// request gets its own graph::RunContext, so N requests share compiled code (lowered
// funcs + cached vm::Programs + memory plan) but never writable buffers.
//
// Scheduling is two-level:
//   level 1 (whole-request): each accepted request becomes one pool job; with a deep
//     queue, throughput comes from running W requests concurrently, and kernels
//     inside a request run with serial kParallel loops (chunking would only add
//     contention when the pool is already saturated with requests).
//   level 2 (intra-kernel): when the server is shallow (fewer active+pending
//     requests than workers), requests fan their kParallel loops out as chunk jobs
//     on the *same* pool via vm::ExecOptions, so a lone request still uses all
//     cores. A request thread waiting on its chunks helps drain the pool
//     (ThreadPool::TryRunOne), so the single shared pool cannot deadlock.
//
// Dynamic batching (ServerOptions::max_batch > 1): a worker that pops a request
// coalesces every queued same-model, shape-compatible request with it (up to
// max_batch, lingering up to batch_timeout_ms for late arrivals), concatenates the
// inputs along dimension 0, runs one batched CompiledGraph variant (compiled lazily
// per batch size, cached per model in a BatchedModelCache), and resolves each
// request's future with a zero-copy slice of the batched outputs. Per-request
// results stay bitwise-identical to unbatched runs; see src/serve/batch.h.
#ifndef SRC_SERVE_SERVE_H_
#define SRC_SERVE_SERVE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/executor.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/threadpool.h"
#include "src/serve/batch.h"
#include "src/serve/queue.h"

namespace tvmcpp {
namespace serve {

// One inference call: named input tensors for a shared compiled model.
struct InferenceRequest {
  std::unordered_map<std::string, NDArray> inputs;
};

struct InferenceResponse {
  std::vector<NDArray> outputs;  // one per graph output; per-request storage (a
                                 // zero-copy slice of the batched buffer when the
                                 // request was coalesced)
  double queue_ms = 0;           // time spent waiting in the request queue
  double run_ms = 0;             // kernel execution time (of the whole batch)
  int batch_size = 1;            // how many requests shared this kernel invocation
};

struct ServerOptions {
  // Worker threads in the shared pool. 0 = TVMCPP_SERVE_WORKERS env, else
  // TVMCPP_NUM_THREADS env, else std::thread::hardware_concurrency() — floored at 2
  // when defaulted, so request-level concurrency exists even on single-core hosts
  // (an explicit num_workers is used verbatim).
  int num_workers = 0;
  // Bounded request-queue capacity; Submit blocks when this many requests are
  // pending (backpressure toward clients).
  int queue_capacity = 64;
  // Dynamic batching: largest number of same-model, shape-compatible requests one
  // kernel invocation may coalesce. 1 disables batching (the pre-batching 1:1
  // request:run path, zero overhead); 0 = TVMCPP_SERVE_MAX_BATCH env, else 1.
  int max_batch = 0;
  // How long a worker holding a partial batch lingers for late arrivals before
  // flushing, in milliseconds. 0 coalesces only what is already queued (the right
  // choice for closed-loop clients and the default); negative =
  // TVMCPP_SERVE_BATCH_TIMEOUT_MS env, else 0. Ignored when max_batch == 1.
  // Trade-off: a lingering worker occupies a pool thread, so with few workers a
  // long linger delays queued requests of *other* models by up to the timeout;
  // linger-aware worker sizing / priority scheduling is a ROADMAP follow-on.
  double batch_timeout_ms = -1;
};

struct ServerStats {
  int64_t accepted = 0;   // requests admitted to the queue
  int64_t completed = 0;  // responses delivered (including errored)
  int64_t rejected = 0;   // submits after Shutdown
  int64_t chunked_runs = 0;  // executions that ran with intra-kernel parallelism
  int64_t serial_runs = 0;   // executions that ran with serial kParallel loops
  // Dynamic-batching counters (all zero while max_batch == 1). batches ==
  // full_batches + timeout_batches; mean batch size = batched_requests / batches.
  int64_t batches = 0;           // batched-path kernel invocations (any size >= 1)
  int64_t batched_requests = 0;  // requests executed through the batched path
  int64_t full_batches = 0;      // flushed because the batch reached max_batch
  int64_t timeout_batches = 0;   // flushed by the linger deadline (or queue close)
};

class InferenceServer {
 public:
  explicit InferenceServer(ServerOptions options = {});
  ~InferenceServer();  // implies Shutdown()

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Thread-safe. Enqueues one request against `model` and returns the future
  // response. Blocks while the queue is full. After Shutdown the future carries a
  // std::runtime_error instead.
  std::future<InferenceResponse> Submit(
      std::shared_ptr<const graph::CompiledGraph> model, InferenceRequest request);

  // Stops accepting new requests and blocks until every accepted request has been
  // executed and its future fulfilled (a partial batch lingering for arrivals is
  // flushed immediately by the queue close). The pool threads themselves are joined
  // by the destructor. Idempotent; thread-safe.
  void Shutdown();

  // Overrides how batched variants of `model` are compiled (default:
  // CompiledGraph::Rebatched on the model's own graph). Use this to route batched
  // compilation through a frontend model constructor's `batch` parameter. Replaces
  // the model's variant cache, so call before requests for `model` are submitted.
  void SetBatchBuilder(const std::shared_ptr<const graph::CompiledGraph>& model,
                       BatchedModelCache::Builder builder);

  int num_workers() const { return workers_; }
  int max_batch() const { return max_batch_; }
  ServerStats stats() const;

 private:
  struct Pending {
    std::shared_ptr<const graph::CompiledGraph> model;
    InferenceRequest request;
    std::shared_ptr<std::promise<InferenceResponse>> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void ExecuteOne();
  // Coalesces queued requests compatible with `head` (same model, ShapesCoalesce)
  // up to max_batch_, lingering up to batch_timeout_ms_ for late arrivals.
  std::vector<Pending> FormBatch(Pending head);
  // Returned as shared_ptr so a worker mid-execution keeps its cache alive even if
  // SetBatchBuilder concurrently replaces the map entry.
  std::shared_ptr<BatchedModelCache> CacheFor(
      const std::shared_ptr<const graph::CompiledGraph>& m);

  int workers_ = 0;
  int max_batch_ = 1;
  double batch_timeout_ms_ = 0;
  BoundedQueue<Pending> queue_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex caches_mu_;  // guards caches_ (per-model batched-variant caches)
  std::unordered_map<const graph::CompiledGraph*, std::shared_ptr<BatchedModelCache>>
      caches_;

  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> completed_{0};  // stats: bumped before the promise is set
  std::atomic<int64_t> delivered_{0};  // drain: bumped after the promise is set
  std::atomic<int64_t> submitting_{0};  // Submit calls currently touching members
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> chunked_runs_{0};
  std::atomic<int64_t> serial_runs_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> batched_requests_{0};
  std::atomic<int64_t> full_batches_{0};
  std::atomic<int64_t> timeout_batches_{0};
  std::atomic<int> active_{0};           // executions (jobs) in flight
  std::atomic<int> active_requests_{0};  // requests inside in-flight executions: a
                                         // batch of B counts B toward the backlog
                                         // the two-level policy sees

  mutable std::mutex mu_;
  std::condition_variable drained_;
  bool shutdown_ = false;
};

}  // namespace serve
}  // namespace tvmcpp

#endif  // SRC_SERVE_SERVE_H_
