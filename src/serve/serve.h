// Concurrent inference serving (the paper's "deployed inference" runtime side).
//
// An InferenceServer owns one process-wide ThreadPool and a bounded MPMC request
// queue, and multiplexes many logically-concurrent inference requests over the pool.
// Requests execute against shared, immutable graph::CompiledGraphs; each in-flight
// request gets its own graph::RunContext, so N requests share compiled code (lowered
// funcs + cached vm::Programs + memory plan) but never writable buffers.
//
// Scheduling is two-level:
//   level 1 (whole-request): each accepted request becomes one pool job; with a deep
//     queue, throughput comes from running W requests concurrently, and kernels
//     inside a request run with serial kParallel loops (chunking would only add
//     contention when the pool is already saturated with requests).
//   level 2 (intra-kernel): when the server is shallow (fewer active+pending
//     requests than workers), requests fan their kParallel loops out as chunk jobs
//     on the *same* pool via vm::ExecOptions, so a lone request still uses all
//     cores. A request thread waiting on its chunks helps drain the pool
//     (ThreadPool::TryRunOne), so the single shared pool cannot deadlock.
#ifndef SRC_SERVE_SERVE_H_
#define SRC_SERVE_SERVE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/executor.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/threadpool.h"
#include "src/serve/queue.h"

namespace tvmcpp {
namespace serve {

// One inference call: named input tensors for a shared compiled model.
struct InferenceRequest {
  std::unordered_map<std::string, NDArray> inputs;
};

struct InferenceResponse {
  std::vector<NDArray> outputs;  // one per graph output; per-request storage
  double queue_ms = 0;           // time spent waiting in the request queue
  double run_ms = 0;             // kernel execution time
};

struct ServerOptions {
  // Worker threads in the shared pool. 0 = TVMCPP_SERVE_WORKERS env, else
  // TVMCPP_NUM_THREADS env, else std::thread::hardware_concurrency() — floored at 2
  // when defaulted, so request-level concurrency exists even on single-core hosts
  // (an explicit num_workers is used verbatim).
  int num_workers = 0;
  // Bounded request-queue capacity; Submit blocks when this many requests are
  // pending (backpressure toward clients).
  int queue_capacity = 64;
};

struct ServerStats {
  int64_t accepted = 0;   // requests admitted to the queue
  int64_t completed = 0;  // responses delivered (including errored)
  int64_t rejected = 0;   // submits after Shutdown
  int64_t chunked_runs = 0;  // requests that ran with intra-kernel parallelism
  int64_t serial_runs = 0;   // requests that ran with serial kParallel loops
};

class InferenceServer {
 public:
  explicit InferenceServer(ServerOptions options = {});
  ~InferenceServer();  // implies Shutdown()

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Thread-safe. Enqueues one request against `model` and returns the future
  // response. Blocks while the queue is full. After Shutdown the future carries a
  // std::runtime_error instead.
  std::future<InferenceResponse> Submit(
      std::shared_ptr<const graph::CompiledGraph> model, InferenceRequest request);

  // Stops accepting new requests and blocks until every accepted request has been
  // executed and its future fulfilled. The pool threads themselves are joined by the
  // destructor. Idempotent; thread-safe.
  void Shutdown();

  int num_workers() const { return workers_; }
  ServerStats stats() const;

 private:
  struct Pending {
    std::shared_ptr<const graph::CompiledGraph> model;
    InferenceRequest request;
    std::shared_ptr<std::promise<InferenceResponse>> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void ExecuteOne();

  int workers_ = 0;
  BoundedQueue<Pending> queue_;
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> completed_{0};  // stats: bumped before the promise is set
  std::atomic<int64_t> delivered_{0};  // drain: bumped after the promise is set
  std::atomic<int64_t> submitting_{0};  // Submit calls currently touching members
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> chunked_runs_{0};
  std::atomic<int64_t> serial_runs_{0};
  std::atomic<int> active_{0};  // requests currently executing

  mutable std::mutex mu_;
  std::condition_variable drained_;
  bool shutdown_ = false;
};

}  // namespace serve
}  // namespace tvmcpp

#endif  // SRC_SERVE_SERVE_H_
