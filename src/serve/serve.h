// Concurrent inference serving (the paper's "deployed inference" runtime side).
//
// An InferenceServer owns one process-wide ThreadPool and a bounded MPMC request
// queue, and multiplexes many logically-concurrent inference requests over the pool.
// Requests execute against shared, immutable graph::CompiledGraphs; each in-flight
// request gets its own graph::RunContext, so N requests share compiled code (lowered
// funcs + cached vm::Programs + memory plan) but never writable buffers.
//
// Scheduling is two-level:
//   level 1 (whole-request): each accepted request becomes one pool job; with a deep
//     queue, throughput comes from running W requests concurrently, and kernels
//     inside a request run with serial kParallel loops (chunking would only add
//     contention when the pool is already saturated with requests).
//   level 2 (intra-kernel): when the server is shallow (fewer active+pending
//     requests than workers), requests fan their kParallel loops out as chunk jobs
//     on the *same* pool via vm::ExecOptions, so a lone request still uses all
//     cores. A request thread waiting on its chunks helps drain the pool
//     (ThreadPool::TryRunOne), so the single shared pool cannot deadlock.
//
// Dynamic batching (ServerOptions::max_batch > 1): a worker that pops a request
// coalesces every queued same-model, shape-compatible request with it (up to
// max_batch, lingering up to batch_timeout_ms for late arrivals), concatenates the
// inputs along dimension 0, runs one batched CompiledGraph variant (compiled lazily
// per batch size, cached per model in a BatchedModelCache), and resolves each
// request's future with a zero-copy slice of the batched outputs. Per-request
// results stay bitwise-identical to unbatched runs; see src/serve/batch.h.
//
// Fault tolerance & SLA (see docs/ARCHITECTURE.md):
//   - Every future carries a value; InferenceResponse::status is the typed outcome
//     (ok / rejected / shed / deadline-exceeded / queue-fault / compile-failed /
//     execution-failed). Futures never carry exceptions, so one poisoned request
//     fails alone and callers never need try/catch around get().
//   - Requests have a priority class and a deadline (server default + per-request
//     override); the queue pops by (priority desc, deadline asc, FIFO), entries
//     whose deadline already passed are failed at pop instead of executed, and —
//     when shedding is enabled — Submit sheds a request up front if the estimated
//     queue wait (EWMA of observed service times) already exceeds its deadline.
//   - An execution fault (injected via src/support/failpoint.h, or a real CHECK
//     failure) is retried with exponential backoff bounded by the deadline, then
//     down-tiered to the reference interpreter (vm::ExecOptions::force_interp; the
//     interp/VM differential guarantee makes the fallback result bitwise-identical)
//     before a typed failure is reported. A fault inside a coalesced batch splits
//     the batch into per-request runs so healthy cohabitants still succeed; a
//     batch-variant compile fault degrades to per-request runs on the base model.
#ifndef SRC_SERVE_SERVE_H_
#define SRC_SERVE_SERVE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/executor.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/threadpool.h"
#include "src/serve/batch.h"
#include "src/serve/queue.h"

namespace tvmcpp {
namespace serve {

// Typed per-request outcome. Every InferenceResponse carries one; futures always
// resolve with a value (never an exception), so errors are data, not control flow.
enum class StatusCode {
  kOk = 0,
  kRejected,          // submitted after Shutdown
  kShed,              // admission control: predicted queue wait exceeds the deadline
  kDeadlineExceeded,  // deadline passed while queued, retrying, or backing off
  kQueueFault,        // injected fault at the queue-admission seam
  kCompileFailed,     // model (or batch-variant) compilation failed for this request
  kExecutionFailed,   // all execution attempts (retries + fallback) failed
  kTransportFault,    // shm transport failure: attach/push fault, ring full,
                      // bad descriptor, unknown model, or client-side timeout
};

const char* StatusCodeName(StatusCode code);

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;  // human-readable cause for non-ok codes
  bool ok() const { return code == StatusCode::kOk; }
};

// One inference call: named input tensors for a shared compiled model, plus the
// request's SLA envelope.
struct InferenceResponse;

struct InferenceRequest {
  std::unordered_map<std::string, NDArray> inputs;
  // Larger pops first (e.g. interactive > batch). Ties pop FIFO.
  int priority = 0;
  // Per-request deadline override, in milliseconds from Submit: < 0 inherits
  // ServerOptions::default_deadline_ms, 0 means no deadline, > 0 overrides.
  double deadline_ms = -1;
  // Pre-bound output buffers (e.g. shared-memory slabs the client owns): when
  // non-empty there must be one tensor per graph output with matching
  // shape/dtype. The unbatched execution path then writes graph outputs
  // directly into these buffers (zero-copy response); the batched path copies
  // its output slice into them. Either way the response's outputs alias them.
  std::vector<NDArray> bound_outputs;
  // Invoked with the final response just before the future resolves, on every
  // path (ok, shed, rejected, expired, faulted). Runs on whichever thread
  // resolves the request; must not throw or block. The shm transport uses it
  // to write completion descriptors without polling futures.
  std::function<void(const InferenceResponse&)> on_complete;
};

struct InferenceResponse {
  Status status;                 // outcome; `outputs` is valid only when ok()
  std::vector<NDArray> outputs;  // one per graph output; per-request storage (a
                                 // zero-copy slice of the batched buffer when the
                                 // request was coalesced)
  double queue_ms = 0;           // time spent waiting in the request queue
  double run_ms = 0;             // kernel execution time (of the whole batch)
  int batch_size = 1;            // how many requests shared this kernel invocation
  int retries = 0;               // extra execution attempts (including fallback)
  bool fell_back = false;        // served by the interpreter down-tier
};

struct ServerOptions {
  // Worker threads in the shared pool. 0 = TVMCPP_SERVE_WORKERS env, else
  // TVMCPP_NUM_THREADS env, else std::thread::hardware_concurrency() — floored at 2
  // when defaulted, so request-level concurrency exists even on single-core hosts
  // (an explicit num_workers is used verbatim).
  int num_workers = 0;
  // Bounded request-queue capacity; Submit blocks when this many requests are
  // pending (backpressure toward clients).
  int queue_capacity = 64;
  // Dynamic batching: largest number of same-model, shape-compatible requests one
  // kernel invocation may coalesce. 1 disables batching (the pre-batching 1:1
  // request:run path, zero overhead); 0 = TVMCPP_SERVE_MAX_BATCH env, else 1.
  int max_batch = 0;
  // How long a worker holding a partial batch lingers for late arrivals before
  // flushing, in milliseconds. 0 coalesces only what is already queued (the right
  // choice for closed-loop clients and the default); negative =
  // TVMCPP_SERVE_BATCH_TIMEOUT_MS env, else 0. Ignored when max_batch == 1.
  // Trade-off: a lingering worker occupies a pool thread, so with few workers a
  // long linger delays queued requests of *other* models by up to the timeout.
  double batch_timeout_ms = -1;
  // --- SLA / fault-tolerance knobs (all env-resolvable; negative = use env) ----
  // Default per-request deadline in ms; 0 = no deadline. Negative =
  // TVMCPP_SERVE_DEADLINE_MS env, else 0.
  double default_deadline_ms = -1;
  // Extra VM execution attempts after the first fault, before the interpreter
  // fallback is tried. Negative = TVMCPP_SERVE_MAX_RETRIES env, else 1.
  int max_retries = -1;
  // Base of the exponential retry backoff (attempt k sleeps base * 2^k ms, never
  // past the deadline). Negative = TVMCPP_SERVE_RETRY_BACKOFF_MS env, else 0.5.
  double retry_backoff_ms = -1;
  // Down-tier to the reference interpreter after retries are exhausted (results
  // stay bitwise-identical). 0/1; negative = TVMCPP_SERVE_FALLBACK env, else 1.
  int enable_fallback = -1;
  // Shed doomed requests at admission when the EWMA-estimated queue wait already
  // exceeds their deadline. 0/1; negative = TVMCPP_SERVE_SHED env, else 1 (inert
  // anyway for requests without a deadline).
  int enable_shedding = -1;
  // Shorten the batching linger when the observed arrival rate says the batch
  // cannot fill within it (EWMA of arrival gaps). 0/1; negative =
  // TVMCPP_SERVE_ADAPTIVE_LINGER env, else 0.
  int adaptive_linger = -1;
};

struct ServerStats {
  int64_t accepted = 0;   // requests admitted to the queue
  int64_t completed = 0;  // responses delivered for accepted requests (any status)
  int64_t rejected = 0;   // submits after Shutdown
  int64_t shed = 0;       // refused at admission (predicted deadline miss)
  int64_t chunked_runs = 0;  // executions that ran with intra-kernel parallelism
  int64_t serial_runs = 0;   // executions that ran with serial kParallel loops
  // Dynamic-batching counters (all zero while max_batch == 1). batches ==
  // full_batches + timeout_batches; mean batch size = batched_requests / batches.
  int64_t batches = 0;           // batched-path kernel invocations (any size >= 1)
  int64_t batched_requests = 0;  // requests executed through the batched path
  int64_t full_batches = 0;      // flushed because the batch reached max_batch
  int64_t timeout_batches = 0;   // flushed by the linger deadline (or queue close)
  // Fault-tolerance counters.
  int64_t deadline_missed = 0;  // failed kDeadlineExceeded (at pop or mid-retry)
  int64_t retries = 0;          // extra execution attempts across all requests
  int64_t fallbacks = 0;        // requests served by the interpreter down-tier
  int64_t failed = 0;           // delivered responses with a non-ok status
  int64_t batch_splits = 0;     // faulted batched runs re-run per-request
  int64_t batch_compile_failures = 0;  // batch variants degraded to per-request

  // Per-priority-class breakdown, keyed by InferenceRequest::priority. Maintained
  // under the same mutex as the totals, so any snapshot satisfies e.g.
  // completed == sum over classes of completed.
  struct ClassStats {
    int64_t accepted = 0;
    int64_t completed = 0;
    int64_t ok = 0;
    int64_t shed = 0;
    int64_t deadline_missed = 0;
    int64_t retried = 0;   // requests that needed at least one retry
    int64_t fallback = 0;  // requests served by the interpreter down-tier
  };
  std::map<int, ClassStats> per_class;
};

class InferenceServer {
 public:
  explicit InferenceServer(ServerOptions options = {});
  ~InferenceServer();  // implies Shutdown()

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Thread-safe. Enqueues one request against `model` and returns the future
  // response. Blocks while the queue is full. The future always resolves with a
  // value: after Shutdown it carries status kRejected, a shed request kShed, and
  // execution outcomes their respective codes — get() never throws.
  std::future<InferenceResponse> Submit(
      std::shared_ptr<const graph::CompiledGraph> model, InferenceRequest request);

  // Stops accepting new requests and blocks until every accepted request has been
  // executed and its future fulfilled (a partial batch lingering for arrivals is
  // flushed immediately by the queue close). The pool threads themselves are joined
  // by the destructor. Idempotent; thread-safe.
  void Shutdown();

  // Overrides how batched variants of `model` are compiled (default:
  // CompiledGraph::Rebatched on the model's own graph). Use this to route batched
  // compilation through a frontend model constructor's `batch` parameter. Replaces
  // the model's variant cache, so call before requests for `model` are submitted.
  void SetBatchBuilder(const std::shared_ptr<const graph::CompiledGraph>& model,
                       BatchedModelCache::Builder builder);

  int num_workers() const { return workers_; }
  int max_batch() const { return max_batch_; }
  // One consistent snapshot: every field (totals and per_class) is read under the
  // single stats mutex that writers also hold, so cross-field invariants
  // (completed == sum of per-class completed, batches == full + timeout, ...)
  // hold in any snapshot, concurrent traffic or not.
  ServerStats stats() const;

 private:
  struct Pending {
    std::shared_ptr<const graph::CompiledGraph> model;
    InferenceRequest request;
    std::shared_ptr<std::promise<InferenceResponse>> promise;
    std::chrono::steady_clock::time_point enqueued;
    // Resolved absolute deadline; time_point::max() = none.
    std::chrono::steady_clock::time_point deadline;
    int priority = 0;
    // Admission sequence; seeds the deterministic per-request fail-point stream.
    uint64_t seq = 0;
  };

  void ExecuteOne();
  // Coalesces queued requests compatible with `head` (same model, ShapesCoalesce)
  // up to max_batch_, lingering up to batch_timeout_ms_ for late arrivals (less
  // when adaptive linger or the head's deadline says the wait is pointless).
  std::vector<Pending> FormBatch(Pending head);
  // One request through the full retry ladder: VM attempts with exponential
  // backoff bounded by the deadline, then the interpreter down-tier. Never throws.
  InferenceResponse RunOneWithRetry(const Pending& p, const vm::ExecOptions& exec);
  // Resolves a request: fires the on_complete hook (if any), then the promise.
  static void Deliver(const Pending& p, InferenceResponse&& r);
  // Returned as shared_ptr so a worker mid-execution keeps its cache alive even if
  // SetBatchBuilder concurrently replaces the map entry.
  std::shared_ptr<BatchedModelCache> CacheFor(
      const std::shared_ptr<const graph::CompiledGraph>& m);

  int workers_ = 0;
  int max_batch_ = 1;
  double batch_timeout_ms_ = 0;
  double default_deadline_ms_ = 0;
  int max_retries_ = 1;
  double retry_backoff_ms_ = 0.5;
  bool fallback_enabled_ = true;
  bool shedding_enabled_ = true;
  bool adaptive_linger_ = false;
  BoundedQueue<Pending> queue_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex caches_mu_;  // guards caches_ (per-model batched-variant caches)
  std::unordered_map<const graph::CompiledGraph*, std::shared_ptr<BatchedModelCache>>
      caches_;

  // Reporting counters live in one plain struct under one mutex, so stats() can
  // hand out a torn-free snapshot (the old per-field atomics could observe e.g.
  // completed > accepted mid-update). Only counters that scheduling decisions or
  // the Shutdown drain read on hot paths stay atomic, below.
  mutable std::mutex stats_mu_;
  ServerStats stats_;
  // EWMA of per-request service time (ms) and inter-arrival gap (ms); guarded by
  // stats_mu_. <= 0 means "no sample yet".
  double ewma_service_ms_ = 0;
  double ewma_arrival_gap_ms_ = 0;
  std::chrono::steady_clock::time_point last_arrival_{};
  bool have_arrival_ = false;

  std::atomic<int64_t> accepted_{0};   // drain: matched against delivered_
  std::atomic<int64_t> delivered_{0};  // drain: bumped after the promise is set
  std::atomic<int64_t> submitting_{0};  // Submit calls currently touching members
  std::atomic<uint64_t> submit_seq_{0};  // per-request fail-point stream ids
  std::atomic<int> active_{0};           // executions (jobs) in flight
  std::atomic<int> active_requests_{0};  // requests inside in-flight executions: a
                                         // batch of B counts B toward the backlog
                                         // the two-level policy sees

  mutable std::mutex mu_;
  std::condition_variable drained_;
  bool shutdown_ = false;
};

}  // namespace serve
}  // namespace tvmcpp

#endif  // SRC_SERVE_SERVE_H_
