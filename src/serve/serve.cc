#include "src/serve/serve.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/support/logging.h"

namespace tvmcpp {
namespace serve {

namespace {

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

int EnvInt(const char* name) {
  if (const char* s = std::getenv(name)) {
    int v = std::atoi(s);
    if (v > 0) {
      return v;
    }
  }
  return 0;
}

int ResolveWorkers(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (int v = EnvInt("TVMCPP_SERVE_WORKERS")) {
    return v;
  }
  if (int v = EnvInt("TVMCPP_NUM_THREADS")) {
    return v;
  }
  unsigned hc = std::thread::hardware_concurrency();
  // At least 2 so request-level concurrency (and its tests) are exercised even on
  // single-core machines.
  return std::max(2, hc > 0 ? static_cast<int>(hc) : 1);
}

int ResolveMaxBatch(int requested) {
  if (requested > 0) {
    return requested;  // 1 = batching explicitly disabled
  }
  if (int v = EnvInt("TVMCPP_SERVE_MAX_BATCH")) {
    return v;
  }
  return 1;
}

double ResolveBatchTimeoutMs(double requested) {
  if (requested >= 0) {
    return requested;
  }
  if (const char* s = std::getenv("TVMCPP_SERVE_BATCH_TIMEOUT_MS")) {
    double v = std::atof(s);
    if (v >= 0) {
      return v;
    }
  }
  return 0;
}

}  // namespace

InferenceServer::InferenceServer(ServerOptions options)
    : workers_(ResolveWorkers(options.num_workers)),
      max_batch_(ResolveMaxBatch(options.max_batch)),
      batch_timeout_ms_(ResolveBatchTimeoutMs(options.batch_timeout_ms)),
      queue_(static_cast<size_t>(options.queue_capacity > 0 ? options.queue_capacity
                                                            : 64)),
      pool_(std::make_unique<ThreadPool>(workers_)) {}

InferenceServer::~InferenceServer() {
  Shutdown();
  pool_.reset();
}

std::future<InferenceResponse> InferenceServer::Submit(
    std::shared_ptr<const graph::CompiledGraph> model, InferenceRequest request) {
  CHECK(model != nullptr) << "Submit with a null model";
  // Keeps Shutdown (and thus the destructor) from completing while this call still
  // touches pool_/mu_/drained_: the drain predicate requires submitting_ == 0, so a
  // Submit that began before destruction finishes before the members are freed.
  submitting_.fetch_add(1, std::memory_order_relaxed);
  struct SubmitGuard {
    InferenceServer* s;
    ~SubmitGuard() {
      // Decrement and notify under the lock: a Shutdown waiter can then only
      // observe the decrement after acquiring mu_, i.e. after this thread has
      // stopped touching the server's members.
      std::lock_guard<std::mutex> lock(s->mu_);
      s->submitting_.fetch_sub(1, std::memory_order_relaxed);
      s->drained_.notify_all();
    }
  } guard{this};
  Pending p;
  p.model = std::move(model);
  p.request = std::move(request);
  p.promise = std::make_shared<std::promise<InferenceResponse>>();
  p.enqueued = std::chrono::steady_clock::now();
  std::future<InferenceResponse> result = p.promise->get_future();

  // Count the request as accepted *before* the push so Shutdown's drain predicate
  // (completed == accepted) can never observe a queued request it is not waiting for.
  accepted_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<std::promise<InferenceResponse>> promise = p.promise;
  if (!queue_.Push(std::move(p))) {
    accepted_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    promise->set_exception(std::make_exception_ptr(
        std::runtime_error("InferenceServer is shut down")));
    return result;  // the SubmitGuard notifies any Shutdown waiter
  }
  // One pool job per accepted request: the job pops exactly one entry, so every
  // accepted request is matched by a job and the pop below can never block.
  pool_->Submit([this] { ExecuteOne(); });
  return result;
}

std::shared_ptr<BatchedModelCache> InferenceServer::CacheFor(
    const std::shared_ptr<const graph::CompiledGraph>& m) {
  std::lock_guard<std::mutex> lock(caches_mu_);
  auto it = caches_.find(m.get());
  if (it != caches_.end()) {
    return it->second;
  }
  // First batch for a new model: also sweep entries whose base model every client
  // has dropped (the cache is the sole owner), so a long-lived server cycling
  // through models does not retain every model and its batched variants forever.
  for (auto e = caches_.begin(); e != caches_.end();) {
    if (e->second->SoleOwnerOfBase()) {
      e = caches_.erase(e);
    } else {
      ++e;
    }
  }
  std::shared_ptr<BatchedModelCache>& slot = caches_[m.get()];
  slot = std::make_shared<BatchedModelCache>(m);
  return slot;
}

void InferenceServer::SetBatchBuilder(
    const std::shared_ptr<const graph::CompiledGraph>& model,
    BatchedModelCache::Builder builder) {
  std::lock_guard<std::mutex> lock(caches_mu_);
  // Replacing the slot is safe against in-flight batches: workers hold their own
  // shared_ptr to the old cache (CacheFor), which stays alive until they finish.
  caches_[model.get()] =
      std::make_shared<BatchedModelCache>(model, std::move(builder));
}

std::vector<InferenceServer::Pending> InferenceServer::FormBatch(Pending head) {
  std::vector<Pending> batch;
  // Reserve up front: the coalescing predicate reads batch.front() while
  // DrainMatching appends, so the vector must never reallocate.
  batch.reserve(static_cast<size_t>(max_batch_));
  batch.push_back(std::move(head));
  const graph::CompiledGraph* model = batch.front().model.get();
  auto pred = [&](const Pending& p) {
    return p.model.get() == model &&
           ShapesCoalesce(batch.front().request.inputs, p.request.inputs);
  };
  const size_t max = static_cast<size_t>(max_batch_);
  const std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(batch_timeout_ms_));
  for (;;) {
    // Snapshot the push counter *before* scanning so an arrival racing with the
    // scan makes the WaitPush below return immediately instead of being missed.
    uint64_t seen = queue_.push_seq();
    size_t taken = queue_.DrainMatching(pred, max - batch.size(), &batch);
    if (taken > 0) {
      // Drained entries leave queue_.size() but are not yet executing; keep them
      // visible to concurrent workers' backlog estimate (two-level policy) so a
      // forming batch doesn't make a saturated server look shallow.
      active_requests_.fetch_add(static_cast<int>(taken), std::memory_order_relaxed);
    }
    if (batch.size() >= max) {
      full_batches_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (queue_.closed() || std::chrono::steady_clock::now() >= deadline) {
      timeout_batches_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    queue_.WaitPush(seen, deadline);  // wakes on push, close, or deadline
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(static_cast<int64_t>(batch.size()),
                              std::memory_order_relaxed);
  return batch;
}

void InferenceServer::ExecuteOne() {
  Pending head;
  if (!queue_.TryPop(&head)) {
    // This job's entry was coalesced into an earlier job's batch (or, pre-batching,
    // unreachable). A job only returns empty-handed after observing an empty queue,
    // so entries can never be stranded: at all times pending jobs >= queued entries.
    return;
  }
  // The popped head (and every entry FormBatch later drains) counts toward the
  // request backlog until this execution finishes.
  active_requests_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Pending> batch;
  if (max_batch_ > 1) {
    batch = FormBatch(std::move(head));
  } else {
    batch.push_back(std::move(head));  // batching disabled: the 1:1 legacy path
  }
  const size_t batch_size = batch.size();

  int active = active_.fetch_add(1, std::memory_order_relaxed) + 1;
  int active_requests = active_requests_.load(std::memory_order_relaxed);
  std::chrono::steady_clock::time_point started = std::chrono::steady_clock::now();

  // Two-level policy: whole-request parallelism is already saturating the pool when
  // the backlog (running + still-queued *requests* — a batch of B counts as B)
  // reaches the worker count, so kParallel loops inside the kernels run serially;
  // with a shallow backlog the request (or batch) fans its kParallel chunks out
  // over the idle workers instead, so a lone request still uses all cores.
  vm::ExecOptions exec;
  exec.pool = pool_.get();
  int backlog = static_cast<int>(queue_.size()) + active_requests;
  if (backlog >= workers_) {
    exec.num_threads = 1;
    serial_runs_.fetch_add(1, std::memory_order_relaxed);
  } else {
    exec.num_threads = std::max(1, workers_ - active + 1);
    chunked_runs_.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<InferenceResponse> resps(batch_size);
  std::exception_ptr err;
  try {
    if (batch_size == 1) {
      // Single request (or batch of one): run the base model directly.
      const Pending& p = batch.front();
      graph::RunContext ctx(p.model);
      for (const auto& kv : p.request.inputs) {
        ctx.SetInput(kv.first, kv.second);
      }
      p.model->Run(&ctx, exec);
      size_t num_outputs = p.model->graph().outputs.size();
      resps[0].outputs.reserve(num_outputs);
      for (size_t i = 0; i < num_outputs; ++i) {
        resps[0].outputs.push_back(ctx.GetOutput(static_cast<int>(i)));
      }
    } else {
      // Coalesced batch: concat inputs along N, run the cached batched variant
      // (compiled lazily on first use of this batch size), slice outputs back.
      std::shared_ptr<const graph::CompiledGraph> batched =
          CacheFor(batch.front().model)->Get(static_cast<int>(batch_size));
      graph::RunContext ctx(batched);
      std::vector<const NamedTensors*> inputs;
      inputs.reserve(batch_size);
      for (const Pending& p : batch) {
        inputs.push_back(&p.request.inputs);
      }
      BindConcatenatedInputs(inputs, &ctx);
      batched->Run(&ctx, exec);
      std::vector<std::vector<NDArray>> slices =
          SliceBatchedOutputs(ctx, static_cast<int>(batch_size));
      for (size_t i = 0; i < batch_size; ++i) {
        resps[i].outputs = std::move(slices[i]);
      }
    }
    std::chrono::steady_clock::time_point done = std::chrono::steady_clock::now();
    for (size_t i = 0; i < batch_size; ++i) {
      resps[i].queue_ms = MsBetween(batch[i].enqueued, started);
      resps[i].run_ms = MsBetween(started, done);
      resps[i].batch_size = static_cast<int>(batch_size);
    }
  } catch (...) {
    err = std::current_exception();
  }

  // Stats bookkeeping strictly before the promises are fulfilled: a client that
  // returns from future.get() must observe its own request in stats().completed.
  active_.fetch_sub(1, std::memory_order_relaxed);
  active_requests_.fetch_sub(static_cast<int>(batch_size), std::memory_order_relaxed);
  completed_.fetch_add(static_cast<int64_t>(batch_size), std::memory_order_relaxed);
  for (size_t i = 0; i < batch_size; ++i) {
    if (err) {
      batch[i].promise->set_exception(err);
    } else {
      batch[i].promise->set_value(std::move(resps[i]));
    }
  }
  // Drain bookkeeping strictly after: Shutdown must not return until every accepted
  // request's future is actually fulfilled.
  delivered_.fetch_add(static_cast<int64_t>(batch_size), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
  }
  drained_.notify_all();
}

void InferenceServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  queue_.Close();  // new Submits fail; accepted entries stay poppable
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] {
    return delivered_.load(std::memory_order_relaxed) >=
               accepted_.load(std::memory_order_relaxed) &&
           submitting_.load(std::memory_order_relaxed) == 0;
  });
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.chunked_runs = chunked_runs_.load(std::memory_order_relaxed);
  s.serial_runs = serial_runs_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.full_batches = full_batches_.load(std::memory_order_relaxed);
  s.timeout_batches = timeout_batches_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace serve
}  // namespace tvmcpp
