#include "src/serve/serve.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <utility>

#include "src/support/failpoint.h"
#include "src/support/logging.h"

namespace tvmcpp {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

Clock::duration MsDuration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

int EnvInt(const char* name) {
  if (const char* s = std::getenv(name)) {
    int v = std::atoi(s);
    if (v > 0) {
      return v;
    }
  }
  return 0;
}

// For counts where 0 is a meaningful setting (e.g. max_retries).
int EnvIntOr(const char* name, int fallback) {
  if (const char* s = std::getenv(name)) {
    int v = std::atoi(s);
    if (v >= 0) {
      return v;
    }
  }
  return fallback;
}

double EnvDoubleOr(const char* name, double fallback) {
  if (const char* s = std::getenv(name)) {
    double v = std::atof(s);
    if (v >= 0) {
      return v;
    }
  }
  return fallback;
}

bool EnvFlagOr(const char* name, bool fallback) {
  if (const char* s = std::getenv(name)) {
    return std::atoi(s) != 0;
  }
  return fallback;
}

int ResolveWorkers(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (int v = EnvInt("TVMCPP_SERVE_WORKERS")) {
    return v;
  }
  if (int v = EnvInt("TVMCPP_NUM_THREADS")) {
    return v;
  }
  unsigned hc = std::thread::hardware_concurrency();
  // At least 2 so request-level concurrency (and its tests) are exercised even on
  // single-core machines.
  return std::max(2, hc > 0 ? static_cast<int>(hc) : 1);
}

int ResolveMaxBatch(int requested) {
  if (requested > 0) {
    return requested;  // 1 = batching explicitly disabled
  }
  if (int v = EnvInt("TVMCPP_SERVE_MAX_BATCH")) {
    return v;
  }
  return 1;
}

double ResolveBatchTimeoutMs(double requested) {
  if (requested >= 0) {
    return requested;
  }
  return EnvDoubleOr("TVMCPP_SERVE_BATCH_TIMEOUT_MS", 0);
}

}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kRejected:
      return "rejected";
    case StatusCode::kShed:
      return "shed";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kQueueFault:
      return "queue_fault";
    case StatusCode::kCompileFailed:
      return "compile_failed";
    case StatusCode::kExecutionFailed:
      return "execution_failed";
    case StatusCode::kTransportFault:
      return "transport_fault";
  }
  return "unknown";
}

void InferenceServer::Deliver(const Pending& p, InferenceResponse&& r) {
  if (p.request.on_complete) {
    try {
      p.request.on_complete(r);
    } catch (...) {
      // A completion hook must never take the worker (or submitter) down.
    }
  }
  p.promise->set_value(std::move(r));
}

InferenceServer::InferenceServer(ServerOptions options)
    : workers_(ResolveWorkers(options.num_workers)),
      max_batch_(ResolveMaxBatch(options.max_batch)),
      batch_timeout_ms_(ResolveBatchTimeoutMs(options.batch_timeout_ms)),
      default_deadline_ms_(options.default_deadline_ms >= 0
                               ? options.default_deadline_ms
                               : EnvDoubleOr("TVMCPP_SERVE_DEADLINE_MS", 0)),
      max_retries_(options.max_retries >= 0
                       ? options.max_retries
                       : EnvIntOr("TVMCPP_SERVE_MAX_RETRIES", 1)),
      retry_backoff_ms_(options.retry_backoff_ms >= 0
                            ? options.retry_backoff_ms
                            : EnvDoubleOr("TVMCPP_SERVE_RETRY_BACKOFF_MS", 0.5)),
      fallback_enabled_(options.enable_fallback >= 0
                            ? options.enable_fallback != 0
                            : EnvFlagOr("TVMCPP_SERVE_FALLBACK", true)),
      shedding_enabled_(options.enable_shedding >= 0
                            ? options.enable_shedding != 0
                            : EnvFlagOr("TVMCPP_SERVE_SHED", true)),
      adaptive_linger_(options.adaptive_linger >= 0
                           ? options.adaptive_linger != 0
                           : EnvFlagOr("TVMCPP_SERVE_ADAPTIVE_LINGER", false)),
      // Pop order: higher priority class first, earlier deadline within a class,
      // FIFO (push sequence, supplied by the queue) as the final tiebreak — which
      // also makes deadline-less same-priority traffic behave exactly as before
      // this ordering existed.
      queue_(static_cast<size_t>(options.queue_capacity > 0 ? options.queue_capacity
                                                            : 64),
             [](const Pending& a, const Pending& b) {
               if (a.priority != b.priority) {
                 return a.priority > b.priority;
               }
               return a.deadline < b.deadline;
             }),
      pool_(std::make_unique<ThreadPool>(workers_)) {}

InferenceServer::~InferenceServer() {
  Shutdown();
  pool_.reset();
}

std::future<InferenceResponse> InferenceServer::Submit(
    std::shared_ptr<const graph::CompiledGraph> model, InferenceRequest request) {
  CHECK(model != nullptr) << "Submit with a null model";
  // Keeps Shutdown (and thus the destructor) from completing while this call still
  // touches pool_/mu_/drained_: the drain predicate requires submitting_ == 0, so a
  // Submit that began before destruction finishes before the members are freed.
  submitting_.fetch_add(1, std::memory_order_relaxed);
  struct SubmitGuard {
    InferenceServer* s;
    ~SubmitGuard() {
      // Decrement and notify under the lock: a Shutdown waiter can then only
      // observe the decrement after acquiring mu_, i.e. after this thread has
      // stopped touching the server's members.
      std::lock_guard<std::mutex> lock(s->mu_);
      s->submitting_.fetch_sub(1, std::memory_order_relaxed);
      s->drained_.notify_all();
    }
  } guard{this};

  const Clock::time_point now = Clock::now();
  Pending p;
  p.model = std::move(model);
  p.promise = std::make_shared<std::promise<InferenceResponse>>();
  p.enqueued = now;
  p.priority = request.priority;
  const double deadline_ms =
      request.deadline_ms < 0 ? default_deadline_ms_ : request.deadline_ms;
  p.deadline = deadline_ms > 0 ? now + MsDuration(deadline_ms) : kNoDeadline;
  p.seq = submit_seq_.fetch_add(1, std::memory_order_relaxed);
  p.request = std::move(request);
  const int priority = p.priority;
  std::future<InferenceResponse> result = p.promise->get_future();
  std::shared_ptr<std::promise<InferenceResponse>> promise = p.promise;

  // Arrival-rate EWMA (feeds the adaptive batching linger) and the service-time
  // estimate used by admission control, in one lock hold.
  double svc_ms = 0;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (have_arrival_) {
      const double gap = MsBetween(last_arrival_, now);
      ewma_arrival_gap_ms_ = ewma_arrival_gap_ms_ <= 0
                                 ? gap
                                 : 0.2 * gap + 0.8 * ewma_arrival_gap_ms_;
    }
    have_arrival_ = true;
    last_arrival_ = now;
    svc_ms = ewma_service_ms_;
  }

  // Admission control: a request whose estimated queue wait already exceeds its
  // deadline would only waste a worker slot to report kDeadlineExceeded later —
  // shed it now instead, cheaply, so the capacity serves requests that can still
  // make their SLA. The estimate is conservative-simple: entries that would pop
  // before this one (higher class, or earlier deadline within the class) plus
  // requests already inside executions, each costing the EWMA service time,
  // spread over the worker count.
  if (shedding_enabled_ && p.deadline != kNoDeadline && svc_ms > 0) {
    const Clock::time_point dl = p.deadline;
    const size_t ahead = queue_.CountIf([priority, dl](const Pending& q) {
      return q.priority > priority ||
             (q.priority == priority && q.deadline <= dl);
    });
    const double backlog =
        static_cast<double>(ahead) +
        static_cast<double>(active_requests_.load(std::memory_order_relaxed));
    const double est_wait_ms = backlog * svc_ms / static_cast<double>(workers_);
    if (est_wait_ms > deadline_ms) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.shed;
        ++stats_.failed;
        ++stats_.per_class[priority].shed;
      }
      InferenceResponse r;
      r.status = {StatusCode::kShed,
                  "shed at admission: estimated queue wait " +
                      std::to_string(est_wait_ms) + " ms exceeds deadline " +
                      std::to_string(deadline_ms) + " ms"};
      Deliver(p, std::move(r));
      return result;
    }
  }

  // Queue-admission fault seam. Throwing evaluation happens here — not inside
  // BoundedQueue::Push, whose callers include raw producer threads with no error
  // path — so an injected fault surfaces as a typed per-request error.
  try {
    failpoint::ScopedRequestSeed seed(p.seq * 257 + 254);
    FAILPOINT("serve.queue_push");
  } catch (const failpoint::InjectedFault& e) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.failed;
    }
    InferenceResponse r;
    r.status = {StatusCode::kQueueFault, e.what()};
    Deliver(p, std::move(r));
    return result;
  }

  // Count the request as accepted *before* the push so Shutdown's drain predicate
  // (delivered == accepted) can never observe a queued request it is not waiting
  // for.
  accepted_.fetch_add(1, std::memory_order_relaxed);
  // Copied out first: a failed Push consumes p, but the rejection must still
  // reach the completion hook.
  std::function<void(const InferenceResponse&)> on_complete = p.request.on_complete;
  if (!queue_.Push(std::move(p))) {
    accepted_.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected;
      ++stats_.failed;
    }
    InferenceResponse r;
    r.status = {StatusCode::kRejected, "InferenceServer is shut down"};
    if (on_complete) {
      try {
        on_complete(r);
      } catch (...) {
      }
    }
    promise->set_value(std::move(r));
    return result;  // the SubmitGuard notifies any Shutdown waiter
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
    ++stats_.per_class[priority].accepted;
  }
  // One pool job per accepted request: the job pops exactly one entry, so every
  // accepted request is matched by a job and the pop below can never block.
  pool_->Submit([this] { ExecuteOne(); });
  return result;
}

std::shared_ptr<BatchedModelCache> InferenceServer::CacheFor(
    const std::shared_ptr<const graph::CompiledGraph>& m) {
  std::lock_guard<std::mutex> lock(caches_mu_);
  auto it = caches_.find(m.get());
  if (it != caches_.end()) {
    return it->second;
  }
  // First batch for a new model: also sweep entries whose base model every client
  // has dropped (the cache is the sole owner), so a long-lived server cycling
  // through models does not retain every model and its batched variants forever.
  for (auto e = caches_.begin(); e != caches_.end();) {
    if (e->second->SoleOwnerOfBase()) {
      e = caches_.erase(e);
    } else {
      ++e;
    }
  }
  std::shared_ptr<BatchedModelCache>& slot = caches_[m.get()];
  slot = std::make_shared<BatchedModelCache>(m);
  return slot;
}

void InferenceServer::SetBatchBuilder(
    const std::shared_ptr<const graph::CompiledGraph>& model,
    BatchedModelCache::Builder builder) {
  std::lock_guard<std::mutex> lock(caches_mu_);
  // Replacing the slot is safe against in-flight batches: workers hold their own
  // shared_ptr to the old cache (CacheFor), which stays alive until they finish.
  caches_[model.get()] =
      std::make_shared<BatchedModelCache>(model, std::move(builder));
}

std::vector<InferenceServer::Pending> InferenceServer::FormBatch(Pending head) {
  std::vector<Pending> batch;
  // Reserve up front: the coalescing predicate reads batch.front() while
  // DrainMatching appends, so the vector must never reallocate.
  batch.reserve(static_cast<size_t>(max_batch_));
  batch.push_back(std::move(head));
  const graph::CompiledGraph* model = batch.front().model.get();
  auto pred = [&](const Pending& p) {
    return p.model.get() == model &&
           ShapesCoalesce(batch.front().request.inputs, p.request.inputs);
  };
  const size_t max = static_cast<size_t>(max_batch_);

  double linger_ms = batch_timeout_ms_;
  double svc_ms = 0;
  double gap_ms = 0;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    svc_ms = ewma_service_ms_;
    gap_ms = ewma_arrival_gap_ms_;
  }
  if (adaptive_linger_ && gap_ms > 0) {
    // No point lingering longer than the observed arrival rate needs to deliver
    // the missing batch slots; under light traffic this collapses the linger
    // toward zero instead of stalling a worker for the full timeout.
    linger_ms = std::min(linger_ms,
                         gap_ms * static_cast<double>(max - batch.size()));
  }
  const Clock::time_point now = Clock::now();
  Clock::time_point deadline = now + MsDuration(linger_ms);
  if (batch.front().deadline != kNoDeadline) {
    // Leave the head enough budget to actually execute: flush early when
    // lingering to the full timeout would spend its deadline.
    const Clock::time_point cap = batch.front().deadline - MsDuration(svc_ms);
    if (cap < deadline) {
      deadline = std::max(now, cap);
    }
  }

  bool full = false;
  for (;;) {
    // Snapshot the push counter *before* scanning so an arrival racing with the
    // scan makes the WaitPush below return immediately instead of being missed.
    uint64_t seen = queue_.push_seq();
    size_t taken = queue_.DrainMatching(pred, max - batch.size(), &batch);
    if (taken > 0) {
      // Drained entries leave queue_.size() but are not yet executing; keep them
      // visible to concurrent workers' backlog estimate (two-level policy) so a
      // forming batch doesn't make a saturated server look shallow.
      active_requests_.fetch_add(static_cast<int>(taken), std::memory_order_relaxed);
    }
    if (batch.size() >= max) {
      full = true;
      break;
    }
    if (queue_.closed() || Clock::now() >= deadline) {
      break;
    }
    queue_.WaitPush(seen, deadline);  // wakes on push, close, or deadline
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches;
    stats_.batched_requests += static_cast<int64_t>(batch.size());
    if (full) {
      ++stats_.full_batches;
    } else {
      ++stats_.timeout_batches;
    }
  }
  return batch;
}

InferenceResponse InferenceServer::RunOneWithRetry(const Pending& p,
                                                   const vm::ExecOptions& exec) {
  InferenceResponse resp;
  std::string last_error;
  // Attempts [0, vm_attempts) run the configured engine; the final attempt (when
  // fallback is enabled) down-tiers to the reference interpreter, whose result is
  // bitwise-identical to the VM's by the differential guarantee, so a fallback
  // success is indistinguishable from a healthy run apart from the flag.
  const int vm_attempts = 1 + std::max(0, max_retries_);
  const int total_attempts = vm_attempts + (fallback_enabled_ ? 1 : 0);
  for (int attempt = 0; attempt < total_attempts; ++attempt) {
    if (Clock::now() >= p.deadline) {
      resp.status = {StatusCode::kDeadlineExceeded,
                     "deadline expired during retries; last error: " + last_error};
      return resp;
    }
    if (attempt > 0) {
      ++resp.retries;
    }
    const bool fallback = attempt >= vm_attempts;
    vm::ExecOptions attempt_exec = exec;
    attempt_exec.force_interp = fallback;
    // Mid-run cancellation: CompiledGraph::Run checks this between kernels, so a
    // request that crosses its deadline mid-graph stops instead of running the
    // remaining kernels to completion.
    attempt_exec.deadline = p.deadline;
    // Deterministic fault stream per (request, attempt): the same seed and
    // armed spec reproduce the same faults, and a retry draws a fresh stream
    // instead of deterministically re-hitting a probabilistic fault.
    failpoint::ScopedRequestSeed seed(p.seq * 257 +
                                      static_cast<uint64_t>(attempt));
    try {
      if (!fallback) {
        // Serving-layer execution fault seam (the VM has its own "vm.run" point).
        // Not evaluated on the fallback attempt: the down-tier exists to remove
        // the faulty component, mirroring how force_interp bypasses vm::Run.
        FAILPOINT("serve.run");
      }
      graph::RunContext ctx(p.model);
      for (const auto& kv : p.request.inputs) {
        ctx.SetInput(kv.first, kv.second);
      }
      // Pre-bound output buffers (shm transport): the graph writes its outputs
      // straight into client-visible memory — the zero-copy response path.
      // Rebound per attempt since each attempt builds a fresh context.
      for (size_t i = 0; i < p.request.bound_outputs.size(); ++i) {
        ctx.BindOutput(static_cast<int>(i), p.request.bound_outputs[i]);
      }
      p.model->Run(&ctx, attempt_exec);
      const size_t num_outputs = p.model->graph().outputs.size();
      resp.outputs.clear();
      resp.outputs.reserve(num_outputs);
      for (size_t i = 0; i < num_outputs; ++i) {
        resp.outputs.push_back(ctx.GetOutput(static_cast<int>(i)));
      }
      resp.status = Status{};
      resp.fell_back = fallback;
      return resp;
    } catch (const graph::DeadlineExceededError& e) {
      // Cancelled between kernels: the budget is already gone, so retrying (or
      // down-tiering to the slower interpreter) could never finish in time.
      resp.status = {StatusCode::kDeadlineExceeded, e.what()};
      return resp;
    } catch (const std::exception& e) {
      // InjectedFault and InternalError (CHECK failures) both land here: real
      // faults and injected ones take the same recovery path.
      last_error = e.what();
    }
    if (attempt + 1 < vm_attempts && retry_backoff_ms_ > 0) {
      const Clock::time_point wake =
          Clock::now() + MsDuration(retry_backoff_ms_ *
                                    static_cast<double>(int64_t{1} << attempt));
      if (wake >= p.deadline) {
        // Backing off would spend the deadline: skip the remaining same-engine
        // retries and go straight to the fallback attempt (or fail).
        attempt = vm_attempts - 1;
        continue;
      }
      std::this_thread::sleep_until(wake);
    }
  }
  resp.status = {StatusCode::kExecutionFailed, last_error};
  return resp;
}

void InferenceServer::ExecuteOne() {
  Pending head;
  if (!queue_.TryPop(&head)) {
    // This job's entry was coalesced into an earlier job's batch (or, pre-batching,
    // unreachable). A job only returns empty-handed after observing an empty queue,
    // so entries can never be stranded: at all times pending jobs >= queued entries.
    return;
  }
  // The popped head (and every entry FormBatch later drains) counts toward the
  // request backlog until this execution finishes.
  active_requests_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Pending> batch;
  if (max_batch_ > 1) {
    batch = FormBatch(std::move(head));
  } else {
    batch.push_back(std::move(head));  // batching disabled: the 1:1 legacy path
  }
  const size_t total = batch.size();
  const Clock::time_point started = Clock::now();

  // Deadline enforcement at pop: entries whose deadline already passed while
  // queued are failed here instead of executed, so an overloaded server spends
  // its cycles on requests whose answer someone still wants.
  std::vector<Pending> live;
  std::vector<Pending> expired;
  live.reserve(total);
  for (Pending& p : batch) {
    if (started > p.deadline) {
      expired.push_back(std::move(p));
    } else {
      live.push_back(std::move(p));
    }
  }

  const int active = active_.fetch_add(1, std::memory_order_relaxed) + 1;
  const int active_requests = active_requests_.load(std::memory_order_relaxed);

  // Two-level policy: whole-request parallelism is already saturating the pool when
  // the backlog (running + still-queued *requests* — a batch of B counts as B)
  // reaches the worker count, so kParallel loops inside the kernels run serially;
  // with a shallow backlog the request (or batch) fans its kParallel chunks out
  // over the idle workers instead, so a lone request still uses all cores.
  vm::ExecOptions exec;
  exec.pool = pool_.get();
  const int backlog = static_cast<int>(queue_.size()) + active_requests;
  const bool serial = backlog >= workers_;
  exec.num_threads = serial ? 1 : std::max(1, workers_ - active + 1);

  std::vector<InferenceResponse> resps(live.size());
  bool ran_batched = false;
  bool compile_failed = false;
  bool split = false;
  if (live.size() > 1) {
    // Coalesced batch: concat inputs along N, run the cached batched variant
    // (compiled lazily on first use of this batch size), slice outputs back.
    // Both steps can fault; neither failure mode may sink the whole batch:
    //   compile fault -> degrade to per-request runs on the base model,
    //   run fault     -> split into per-request retry ladders,
    // so one poisoned cohabitant (or a flaky variant) never fails the rest.
    std::shared_ptr<const graph::CompiledGraph> batched;
    try {
      failpoint::ScopedRequestSeed seed(live.front().seq * 257 + 255);
      batched = CacheFor(live.front().model)->Get(static_cast<int>(live.size()));
    } catch (const std::exception&) {
      compile_failed = true;
    }
    if (batched != nullptr) {
      try {
        failpoint::ScopedRequestSeed seed(live.front().seq * 257 + 255);
        FAILPOINT("serve.run");
        graph::RunContext ctx(batched);
        std::vector<const NamedTensors*> inputs;
        inputs.reserve(live.size());
        for (const Pending& p : live) {
          inputs.push_back(&p.request.inputs);
        }
        BindConcatenatedInputs(inputs, &ctx);
        batched->Run(&ctx, exec);
        std::vector<std::vector<NDArray>> slices =
            SliceBatchedOutputs(ctx, static_cast<int>(live.size()));
        const Clock::time_point done = Clock::now();
        for (size_t i = 0; i < live.size(); ++i) {
          const std::vector<NDArray>& bound = live[i].request.bound_outputs;
          if (!bound.empty()) {
            // Batched outputs are zero-copy slices of the shared batch buffer;
            // a request with pre-bound buffers (shm transport) instead needs its
            // result in memory the client can see, so copy the slice over — the
            // one copy batching costs on the shm response path.
            for (size_t j = 0; j < bound.size() && j < slices[i].size(); ++j) {
              NDArray dst = bound[j];  // shares storage; CopyFrom writes through
              dst.CopyFrom(slices[i][j]);
            }
            resps[i].outputs = bound;
          } else {
            resps[i].outputs = std::move(slices[i]);
          }
          resps[i].run_ms = MsBetween(started, done);
          resps[i].batch_size = static_cast<int>(live.size());
        }
        ran_batched = true;
      } catch (const std::exception&) {
        split = true;
      }
    }
  }
  if (!ran_batched) {
    // Single request, degraded batch, or split batch: each request gets its own
    // retry ladder, so they succeed and fail independently.
    for (size_t i = 0; i < live.size(); ++i) {
      const Clock::time_point t0 = Clock::now();
      resps[i] = RunOneWithRetry(live[i], exec);
      resps[i].run_ms = MsBetween(t0, Clock::now());
      resps[i].batch_size = 1;
    }
  }
  for (size_t i = 0; i < live.size(); ++i) {
    resps[i].queue_ms = MsBetween(live[i].enqueued, started);
  }

  active_.fetch_sub(1, std::memory_order_relaxed);
  active_requests_.fetch_sub(static_cast<int>(total), std::memory_order_relaxed);

  // Stats bookkeeping strictly before the promises are fulfilled: a client that
  // returns from future.get() must observe its own request in stats().completed.
  // One lock hold for the whole batch keeps totals and per-class counters
  // mutually consistent in any concurrent stats() snapshot.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (serial) {
      ++stats_.serial_runs;
    } else {
      ++stats_.chunked_runs;
    }
    if (compile_failed) {
      ++stats_.batch_compile_failures;
    }
    if (split) {
      ++stats_.batch_splits;
    }
    stats_.completed += static_cast<int64_t>(total);
    for (const Pending& p : expired) {
      ServerStats::ClassStats& c = stats_.per_class[p.priority];
      ++c.completed;
      ++c.deadline_missed;
      ++stats_.deadline_missed;
      ++stats_.failed;
    }
    for (size_t i = 0; i < live.size(); ++i) {
      ServerStats::ClassStats& c = stats_.per_class[live[i].priority];
      ++c.completed;
      const InferenceResponse& r = resps[i];
      if (r.status.ok()) {
        ++c.ok;
        const double svc = r.run_ms / std::max(1, r.batch_size);
        ewma_service_ms_ =
            ewma_service_ms_ <= 0 ? svc : 0.2 * svc + 0.8 * ewma_service_ms_;
      } else {
        ++stats_.failed;
        if (r.status.code == StatusCode::kDeadlineExceeded) {
          ++stats_.deadline_missed;
          ++c.deadline_missed;
        }
      }
      if (r.retries > 0) {
        stats_.retries += r.retries;
        ++c.retried;
      }
      if (r.fell_back) {
        ++stats_.fallbacks;
        ++c.fallback;
      }
    }
  }
  for (Pending& p : expired) {
    InferenceResponse r;
    r.status = {StatusCode::kDeadlineExceeded,
                "deadline expired after " +
                    std::to_string(MsBetween(p.enqueued, started)) +
                    " ms in queue"};
    r.queue_ms = MsBetween(p.enqueued, started);
    Deliver(p, std::move(r));
  }
  for (size_t i = 0; i < live.size(); ++i) {
    Deliver(live[i], std::move(resps[i]));
  }
  // Drain bookkeeping strictly after: Shutdown must not return until every accepted
  // request's future is actually fulfilled.
  delivered_.fetch_add(static_cast<int64_t>(total), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
  }
  drained_.notify_all();
}

void InferenceServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  queue_.Close();  // new Submits fail; accepted entries stay poppable
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] {
    return delivered_.load(std::memory_order_relaxed) >=
               accepted_.load(std::memory_order_relaxed) &&
           submitting_.load(std::memory_order_relaxed) == 0;
  });
}

ServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace serve
}  // namespace tvmcpp
