#include "src/serve/serve.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/support/logging.h"

namespace tvmcpp {
namespace serve {

namespace {

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

int EnvInt(const char* name) {
  if (const char* s = std::getenv(name)) {
    int v = std::atoi(s);
    if (v > 0) {
      return v;
    }
  }
  return 0;
}

int ResolveWorkers(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (int v = EnvInt("TVMCPP_SERVE_WORKERS")) {
    return v;
  }
  if (int v = EnvInt("TVMCPP_NUM_THREADS")) {
    return v;
  }
  unsigned hc = std::thread::hardware_concurrency();
  // At least 2 so request-level concurrency (and its tests) are exercised even on
  // single-core machines.
  return std::max(2, hc > 0 ? static_cast<int>(hc) : 1);
}

}  // namespace

InferenceServer::InferenceServer(ServerOptions options)
    : workers_(ResolveWorkers(options.num_workers)),
      queue_(static_cast<size_t>(options.queue_capacity > 0 ? options.queue_capacity
                                                            : 64)),
      pool_(std::make_unique<ThreadPool>(workers_)) {}

InferenceServer::~InferenceServer() {
  Shutdown();
  pool_.reset();
}

std::future<InferenceResponse> InferenceServer::Submit(
    std::shared_ptr<const graph::CompiledGraph> model, InferenceRequest request) {
  CHECK(model != nullptr) << "Submit with a null model";
  // Keeps Shutdown (and thus the destructor) from completing while this call still
  // touches pool_/mu_/drained_: the drain predicate requires submitting_ == 0, so a
  // Submit that began before destruction finishes before the members are freed.
  submitting_.fetch_add(1, std::memory_order_relaxed);
  struct SubmitGuard {
    InferenceServer* s;
    ~SubmitGuard() {
      // Decrement and notify under the lock: a Shutdown waiter can then only
      // observe the decrement after acquiring mu_, i.e. after this thread has
      // stopped touching the server's members.
      std::lock_guard<std::mutex> lock(s->mu_);
      s->submitting_.fetch_sub(1, std::memory_order_relaxed);
      s->drained_.notify_all();
    }
  } guard{this};
  Pending p;
  p.model = std::move(model);
  p.request = std::move(request);
  p.promise = std::make_shared<std::promise<InferenceResponse>>();
  p.enqueued = std::chrono::steady_clock::now();
  std::future<InferenceResponse> result = p.promise->get_future();

  // Count the request as accepted *before* the push so Shutdown's drain predicate
  // (completed == accepted) can never observe a queued request it is not waiting for.
  accepted_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<std::promise<InferenceResponse>> promise = p.promise;
  if (!queue_.Push(std::move(p))) {
    accepted_.fetch_sub(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    promise->set_exception(std::make_exception_ptr(
        std::runtime_error("InferenceServer is shut down")));
    return result;  // the SubmitGuard notifies any Shutdown waiter
  }
  // One pool job per accepted request: the job pops exactly one entry, so every
  // accepted request is matched by a job and the pop below can never block.
  pool_->Submit([this] { ExecuteOne(); });
  return result;
}

void InferenceServer::ExecuteOne() {
  Pending p;
  if (!queue_.TryPop(&p)) {
    return;  // unreachable: jobs and queue entries are 1:1
  }
  int active = active_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::chrono::steady_clock::time_point started = std::chrono::steady_clock::now();

  // Two-level policy: whole-request parallelism is already saturating the pool when
  // the backlog (running + still-queued requests) reaches the worker count, so
  // kParallel loops inside the kernels run serially; with a shallow backlog the
  // request fans its kParallel chunks out over the idle workers instead, so a lone
  // request still uses all cores.
  vm::ExecOptions exec;
  exec.pool = pool_.get();
  int backlog = static_cast<int>(queue_.size()) + active;
  if (backlog >= workers_) {
    exec.num_threads = 1;
    serial_runs_.fetch_add(1, std::memory_order_relaxed);
  } else {
    exec.num_threads = std::max(1, workers_ - active + 1);
    chunked_runs_.fetch_add(1, std::memory_order_relaxed);
  }

  InferenceResponse resp;
  std::exception_ptr err;
  try {
    graph::RunContext ctx(p.model);
    for (const auto& kv : p.request.inputs) {
      ctx.SetInput(kv.first, kv.second);
    }
    p.model->Run(&ctx, exec);
    size_t num_outputs = p.model->graph().outputs.size();
    resp.outputs.reserve(num_outputs);
    for (size_t i = 0; i < num_outputs; ++i) {
      resp.outputs.push_back(ctx.GetOutput(static_cast<int>(i)));
    }
    std::chrono::steady_clock::time_point done = std::chrono::steady_clock::now();
    resp.queue_ms = MsBetween(p.enqueued, started);
    resp.run_ms = MsBetween(started, done);
  } catch (...) {
    err = std::current_exception();
  }

  // Stats bookkeeping strictly before the promise is fulfilled: a client that
  // returns from future.get() must observe its own request in stats().completed.
  active_.fetch_sub(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (err) {
    p.promise->set_exception(err);
  } else {
    p.promise->set_value(std::move(resp));
  }
  // Drain bookkeeping strictly after: Shutdown must not return until every accepted
  // request's future is actually fulfilled.
  delivered_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
  }
  drained_.notify_all();
}

void InferenceServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  queue_.Close();  // new Submits fail; accepted entries stay poppable
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] {
    return delivered_.load(std::memory_order_relaxed) >=
               accepted_.load(std::memory_order_relaxed) &&
           submitting_.load(std::memory_order_relaxed) == 0;
  });
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.chunked_runs = chunked_runs_.load(std::memory_order_relaxed);
  s.serial_runs = serial_runs_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace serve
}  // namespace tvmcpp
