// ShmArena: a named POSIX shared-memory arena (shm_open + mmap) holding the
// serving transport's request ring and a lock-free slab allocator for tensor
// payloads. One server process Creates it; any number of client processes
// Attach. All allocator state lives inside the mapping, so every process sees
// the same free lists and the arena survives client crashes (the server's
// reclamation sweep returns slabs held by dead processes).
#ifndef SRC_SERVE_SHM_ARENA_H_
#define SRC_SERVE_SHM_ARENA_H_

#include <memory>
#include <string>

#include "src/runtime/ndarray.h"
#include "src/serve/shm_layout.h"

namespace tvmcpp {
namespace serve {

struct ShmArenaOptions {
  size_t bytes = 0;    // total mapping size; 0 -> TVMCPP_SHM_BYTES (default 64 MiB)
  int ring_slots = 0;  // request-ring capacity; 0 -> TVMCPP_SHM_SLOTS (default 64)
};

class ShmArena {
 public:
  using Options = ShmArenaOptions;

  // Creates (replacing any stale object of the same name) or attaches to the
  // arena `name` ("/tvmcpp_serve"-style; a leading '/' is added if missing).
  // Both throw std::runtime_error on failure — including version/magic
  // mismatch on attach — and evaluate the `serve.shm_attach` fail-point, so
  // callers can surface a typed Status. Attach waits up to `timeout_ms` for
  // the creator to finish initializing.
  static std::shared_ptr<ShmArena> Create(const std::string& name, Options opts = {});
  static std::shared_ptr<ShmArena> Attach(const std::string& name, double timeout_ms = 5000);

  ~ShmArena();
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  // Allocates a zero-filled slab of at least `bytes` from the heap and returns
  // the absolute arena offset of its payload, or kShmNoOffset when the heap is
  // exhausted. Lock-free; callable from any attached process.
  int64_t AllocOffset(size_t bytes);
  // Returns a payload obtained from AllocOffset to its size-class free list.
  // Returns false (and leaves the heap untouched) if the offset does not
  // address a live block — a corrupt descriptor must not take the server down.
  bool FreeOffset(int64_t offset);

  char* At(int64_t offset) { return base_ + offset; }
  const char* At(int64_t offset) const { return base_ + offset; }
  // True when [ptr, ptr+bytes) lies inside this mapping's slab heap.
  bool Contains(const void* ptr, size_t bytes) const;
  int64_t OffsetOf(const void* ptr) const {
    return static_cast<const char*>(ptr) - base_;
  }
  // Validates that a descriptor's payload [offset, offset+bytes) lies inside
  // the slab heap (the server runs this on every client-supplied offset).
  bool ValidPayload(int64_t offset, size_t bytes) const;

  ShmArenaHeader* header() { return reinterpret_cast<ShmArenaHeader*>(base_); }
  const ShmArenaHeader* header() const { return reinterpret_cast<const ShmArenaHeader*>(base_); }
  ShmRequestSlot* slot(int i) { return slots_ + i; }
  int num_slots() const { return static_cast<int>(header()->num_slots); }
  const std::string& name() const { return name_; }
  bool owner() const { return owner_; }

  // Removes the name from the shm namespace (existing mappings stay valid).
  void Unlink();

 private:
  ShmArena() = default;
  void MapAndInit(size_t bytes, int ring_slots);

  std::string name_;  // normalized ("/..."-prefixed) shm object name
  int fd_ = -1;
  char* base_ = nullptr;
  size_t mapped_bytes_ = 0;
  ShmRequestSlot* slots_ = nullptr;
  bool owner_ = false;
};

// StoragePool backed by an ShmArena: NDArray::Empty under a
// ScopedStoragePool(&pool) lands tensor bytes directly in the arena, making
// them addressable by offset from any attached process. The returned storage
// frees its slab when the last NDArray referencing it drops.
class ShmStoragePool : public StoragePool {
 public:
  explicit ShmStoragePool(std::shared_ptr<ShmArena> arena) : arena_(std::move(arena)) {}
  std::shared_ptr<NDStorage> Allocate(size_t bytes) override;

 private:
  std::shared_ptr<ShmArena> arena_;
};

}  // namespace serve
}  // namespace tvmcpp

#endif  // SRC_SERVE_SHM_ARENA_H_
