// The declarative tensor expression language (Section 4.1 of the paper).
//
// Users declare placeholders and compute operations whose bodies are index-formula
// expressions; no loop structure is specified. A Schedule later maps these to low-level
// loop programs.
//
// Example (the paper's transposed matmul):
//   Tensor A = placeholder({m, h}, DataType::Float32(), "A");
//   Tensor B = placeholder({n, h}, DataType::Float32(), "B");
//   IterVar k = reduce_axis(Range(make_int(0), h), "k");
//   Tensor C = compute({m, n}, [&](const std::vector<Var>& i) {
//     return sum(A({k->var, i[0]}) * B({k->var, i[1]}), {k});
//   }, "C");
#ifndef SRC_TE_TENSOR_H_
#define SRC_TE_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/ir/expr.h"

namespace tvmcpp {

class OperationNode;
using Operation = std::shared_ptr<OperationNode>;

// A symbolic multi-dimensional array: output `value_index` of an Operation.
class Tensor {
 public:
  Tensor() = default;
  Tensor(Operation op, int value_index);

  const Operation& op() const { return op_; }
  int value_index() const { return value_index_; }
  const std::vector<Expr>& shape() const;
  int ndim() const { return static_cast<int>(shape().size()); }
  DataType dtype() const;
  const std::string& name() const;
  bool defined() const { return op_ != nullptr; }

  // Element access: builds a TensorRead expression.
  Expr operator()(std::vector<Expr> indices) const;

  bool operator==(const Tensor& other) const {
    return op_.get() == other.op_.get() && value_index_ == other.value_index_;
  }
  bool operator!=(const Tensor& other) const { return !(*this == other); }

 private:
  Operation op_;
  int value_index_ = 0;
};

// Base class of tensor operations.
class OperationNode : public std::enable_shared_from_this<OperationNode> {
 public:
  explicit OperationNode(std::string name) : name(std::move(name)) {}
  virtual ~OperationNode() = default;

  virtual int num_outputs() const = 0;
  virtual const std::vector<Expr>& output_shape(int i) const = 0;
  virtual DataType output_dtype(int i) const = 0;
  // Tensors read by this operation's body (deduplicated, stable order).
  virtual std::vector<Tensor> InputTensors() const = 0;

  Tensor output(int i) { return Tensor(shared_from_this(), i); }

  const std::string name;
};

// An input placeholder with fixed shape and dtype.
class PlaceholderOpNode : public OperationNode {
 public:
  PlaceholderOpNode(std::string name, std::vector<Expr> shape, DataType dtype)
      : OperationNode(std::move(name)), shape(std::move(shape)), dtype(dtype) {}

  int num_outputs() const override { return 1; }
  const std::vector<Expr>& output_shape(int i) const override { return shape; }
  DataType output_dtype(int i) const override { return dtype; }
  std::vector<Tensor> InputTensors() const override { return {}; }

  const std::vector<Expr> shape;
  const DataType dtype;
};

// result = compute(shape, fcompute): one expression per output element.
// Multiple bodies (tuple-valued compute, e.g. argmax) share the same axis.
class ComputeOpNode : public OperationNode {
 public:
  ComputeOpNode(std::string name, std::vector<IterVar> axis, std::vector<IterVar> reduce_axis,
                std::vector<Expr> body)
      : OperationNode(std::move(name)),
        axis(std::move(axis)),
        reduce_axis(std::move(reduce_axis)),
        body(std::move(body)) {
    shape_.reserve(this->axis.size());
    for (const IterVar& iv : this->axis) {
      shape_.push_back(iv->dom.extent());
    }
  }

  int num_outputs() const override { return static_cast<int>(body.size()); }
  const std::vector<Expr>& output_shape(int i) const override { return shape_; }
  DataType output_dtype(int i) const override { return body[static_cast<size_t>(i)]->dtype; }
  std::vector<Tensor> InputTensors() const override;

  // All iteration variables: spatial axis then reduction axis.
  std::vector<IterVar> root_iter_vars() const {
    std::vector<IterVar> all = axis;
    all.insert(all.end(), reduce_axis.begin(), reduce_axis.end());
    return all;
  }

  std::vector<IterVar> axis;
  std::vector<IterVar> reduce_axis;
  std::vector<Expr> body;

 private:
  std::vector<Expr> shape_;
};

// ---------------------------------------------------------------------------
// DSL entry points
// ---------------------------------------------------------------------------

Tensor placeholder(std::vector<Expr> shape, DataType dtype = DataType::Float32(),
                   const std::string& name = "placeholder");

using FCompute = std::function<Expr(const std::vector<Var>&)>;

Tensor compute(std::vector<Expr> shape, const FCompute& fcompute,
               const std::string& name = "compute");

// Declares a reduction axis over [min, min+extent).
IterVar reduce_axis(Range dom, const std::string& name = "k");

// Reductions; `source` may reference the axis variables.
Expr sum(Expr source, std::vector<IterVar> axis);
Expr max_reduce(Expr source, std::vector<IterVar> axis);
Expr min_reduce(Expr source, std::vector<IterVar> axis);

// Walks `body`, collecting every distinct tensor it reads.
std::vector<Tensor> CollectInputTensors(const std::vector<Expr>& body);

}  // namespace tvmcpp

#endif  // SRC_TE_TENSOR_H_
