#include "src/te/tensor.h"

#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/ir/functor.h"

namespace tvmcpp {

Tensor::Tensor(Operation op, int value_index) : op_(std::move(op)), value_index_(value_index) {
  CHECK(op_ != nullptr);
  CHECK_LT(value_index, op_->num_outputs());
}

const std::vector<Expr>& Tensor::shape() const { return op_->output_shape(value_index_); }

DataType Tensor::dtype() const { return op_->output_dtype(value_index_); }

const std::string& Tensor::name() const { return op_->name; }

Expr Tensor::operator()(std::vector<Expr> indices) const {
  CHECK(defined()) << "access to undefined tensor";
  CHECK_EQ(indices.size(), shape().size())
      << "tensor " << name() << " expects " << shape().size() << " indices";
  return tensor_read(dtype(), std::static_pointer_cast<void>(op_), value_index_, name(),
                     std::move(indices));
}

std::vector<Tensor> CollectInputTensors(const std::vector<Expr>& body) {
  std::vector<Tensor> inputs;
  auto add = [&inputs](const Tensor& t) {
    for (const Tensor& u : inputs) {
      if (u == t) {
        return;
      }
    }
    inputs.push_back(t);
  };
  for (const Expr& e : body) {
    PostOrderVisit(e, [&](const Expr& x) {
      if (x->kind == ExprKind::kTensorRead) {
        const auto* n = static_cast<const TensorReadNode*>(x.get());
        Operation op = std::static_pointer_cast<OperationNode>(n->op);
        add(Tensor(op, n->value_index));
      }
    });
  }
  return inputs;
}

std::vector<Tensor> ComputeOpNode::InputTensors() const { return CollectInputTensors(body); }

Tensor placeholder(std::vector<Expr> shape, DataType dtype, const std::string& name) {
  auto op = std::make_shared<PlaceholderOpNode>(name, std::move(shape), dtype);
  return op->output(0);
}

Tensor compute(std::vector<Expr> shape, const FCompute& fcompute, const std::string& name) {
  std::vector<IterVar> axis;
  std::vector<Var> vars;
  axis.reserve(shape.size());
  static const char* kAxisNames[] = {"i0", "i1", "i2", "i3", "i4", "i5"};
  for (size_t i = 0; i < shape.size(); ++i) {
    std::string vname = i < 6 ? kAxisNames[i] : "i" + std::to_string(i);
    IterVar iv = make_itervar(name + "." + vname, shape[i], IterVarType::kDataPar);
    vars.push_back(iv->var);
    axis.push_back(std::move(iv));
  }
  Expr body = fcompute(vars);
  std::vector<IterVar> raxis;
  if (body->kind == ExprKind::kReduce) {
    raxis = static_cast<const ReduceNode*>(body.get())->axis;
  }
  auto op = std::make_shared<ComputeOpNode>(name, std::move(axis), std::move(raxis),
                                            std::vector<Expr>{std::move(body)});
  return op->output(0);
}

IterVar reduce_axis(Range dom, const std::string& name) {
  auto iv = std::make_shared<IterVarNode>(dom, make_var(name), IterVarType::kCommReduce, "");
  return iv;
}

Expr sum(Expr source, std::vector<IterVar> axis) {
  Expr identity = make_zero(source->dtype);
  return std::make_shared<ReduceNode>("sum", std::move(source), std::move(axis),
                                      std::move(identity));
}

Expr max_reduce(Expr source, std::vector<IterVar> axis) {
  DataType t = source->dtype;
  Expr identity = t.is_float() ? make_const(t, -std::numeric_limits<double>::infinity())
                               : make_const(t, std::numeric_limits<int32_t>::min());
  return std::make_shared<ReduceNode>("max", std::move(source), std::move(axis),
                                      std::move(identity));
}

Expr min_reduce(Expr source, std::vector<IterVar> axis) {
  DataType t = source->dtype;
  Expr identity = t.is_float() ? make_const(t, std::numeric_limits<double>::infinity())
                               : make_const(t, std::numeric_limits<int32_t>::max());
  return std::make_shared<ReduceNode>("min", std::move(source), std::move(axis),
                                      std::move(identity));
}

}  // namespace tvmcpp
