// Reference interpreter for lowered loop programs.
//
// Executes a LoweredFunc directly over flat host buffers. All loop kinds run serially
// (which preserves semantics: parallel/vectorized/thread-bound loops in this IR are
// data-parallel by construction), so the interpreter serves as the functional oracle
// against which schedule transformations are verified. Hardware performance is modeled
// separately (src/sim, src/vdla).
#ifndef SRC_INTERP_INTERP_H_
#define SRC_INTERP_INTERP_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/lower/lower.h"

namespace tvmcpp {

// A host buffer bound to a function argument. Sub-32-bit types are stored widened:
// float16 as float, int8/int4/int2/int1 as int8.
struct BufferBinding {
  void* data = nullptr;
  DataType dtype;
  int64_t num_elements = 0;
};

// Which engine RunLowered dispatches to. The bytecode VM (src/vm) is the default; the
// tree-walking interpreter remains the reference semantics and the fallback for
// programs the VM cannot compile; kNative (src/codegen) is the AOT tier-2 backend,
// which falls back down-tier native -> VM -> interp per function. Overridable via
// env TVMCPP_ENGINE=vm|interp|native.
// The slot is atomic: concurrent serving threads may read it while a test flips it,
// and each Run observes one coherent value (see src/vm/README.md, "Concurrency").
enum class ExecEngine { kVm, kInterp, kNative };
void SetExecEngine(ExecEngine engine);
ExecEngine GetExecEngine();

// Executes `func` with `args` bound positionally to func.args, dispatching to the
// engine selected by SetExecEngine / TVMCPP_ENGINE (VM by default, with automatic
// interpreter fallback when the VM cannot compile the function).
void RunLowered(const LoweredFunc& func, const std::vector<BufferBinding>& args);

// Always executes on the tree-walking reference interpreter.
void RunLoweredInterp(const LoweredFunc& func, const std::vector<BufferBinding>& args);

// Storage bytes per element as the interpreter lays data out (see BufferBinding).
int InterpElementBytes(DataType t);

}  // namespace tvmcpp

#endif  // SRC_INTERP_INTERP_H_
